package gputopo

import (
	"strings"
	"testing"
)

// The facade tests double as integration tests over the whole stack: they
// exercise the public API end to end the way a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	topo := NewPower8Minsky()
	if topo.NumGPUs() != 4 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	j := NewJob("j", AlexNet, 1, 2, 0.5, 0)
	j.Iterations = 200
	res, err := Simulate(SimConfig{Topology: topo, Policy: TopoAwareP}, []*Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || !res.Jobs[0].P2P {
		t.Fatalf("result = %+v", res.Jobs)
	}
}

func TestAllTopologyBuilders(t *testing.T) {
	cases := map[string]struct {
		topo *Topology
		gpus int
	}{
		"minsky":  {NewPower8Minsky(), 4},
		"dgx1":    {NewDGX1(), 8},
		"pcie":    {NewPCIeBox(), 4},
		"cluster": {NewMinskyCluster(3), 12},
	}
	for name, c := range cases {
		if c.topo.NumGPUs() != c.gpus {
			t.Fatalf("%s: GPUs = %d, want %d", name, c.topo.NumGPUs(), c.gpus)
		}
	}
}

func TestDiscoverTopologyFacade(t *testing.T) {
	matrix := NewPower8Minsky().RenderMatrix()
	topo, err := DiscoverTopology(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 4 {
		t.Fatalf("discovered GPUs = %d", topo.NumGPUs())
	}
}

func TestDiscoverTopologyRejectsGarbage(t *testing.T) {
	if _, err := DiscoverTopology("garbage"); err == nil {
		t.Fatal("garbage matrix accepted")
	}
}

func TestPrototypeFacade(t *testing.T) {
	topo := NewPower8Minsky()
	res, err := RunPrototype(PrototypeConfig{Topology: topo, Policy: TopoAwareP}, Table1Workload())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 6 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	if len(res.Bandwidth) == 0 {
		t.Fatal("prototype produced no bandwidth series")
	}
}

func TestWorkloadFacade(t *testing.T) {
	topo := NewMinskyCluster(2)
	jobs, err := GenerateWorkload(WorkloadConfig{Jobs: 20, Seed: 1}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	res, err := Simulate(SimConfig{Topology: topo, Policy: BestFit}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 20 {
		t.Fatalf("results = %d", len(res.Jobs))
	}
}

func TestProfilesFacade(t *testing.T) {
	store := GenerateProfiles(NewPower8Minsky(), 4)
	if store.Len() != 48 {
		t.Fatalf("profiles = %d", store.Len())
	}
}

func TestPolicyOrdering(t *testing.T) {
	ps := AllPolicies()
	if len(ps) != 4 {
		t.Fatalf("policies = %d", len(ps))
	}
	// Paper presentation order: BF, FCFS, TOPO-AWARE, TOPO-AWARE-P.
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	want := "BF FCFS TOPO-AWARE TOPO-AWARE-P"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestDefaultWeightsFacade(t *testing.T) {
	w := DefaultWeights()
	if w.CommCost <= 0 || w.Interference <= 0 || w.Fragmentation <= 0 {
		t.Fatalf("weights = %+v", w)
	}
}

func TestTable1WorkloadFresh(t *testing.T) {
	// Each call returns fresh jobs so callers can mutate safely.
	a := Table1Workload()
	b := Table1Workload()
	a[0].Iterations = 1
	if b[0].Iterations == 1 {
		t.Fatal("Table1Workload shares state across calls")
	}
}
