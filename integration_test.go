package gputopo

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/manifest"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/stats"
	"gputopo/internal/topology"
	"gputopo/internal/trace"
	"gputopo/internal/workload"
)

// TestEndToEndTraceWorkflow exercises the full §5.3 pipeline: generate a
// workload, run the prototype engine, convert the run into a trace, replay
// the trace in the simulator, and check the outcomes line up.
func TestEndToEndTraceWorkflow(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 25, Seed: 17}, topo)
	if err != nil {
		t.Fatal(err)
	}
	protoRes, err := RunPrototype(PrototypeConfig{Topology: topo, Policy: TopoAwareP}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.FromRun("e2e", topo.Name, &protoRes.Result)

	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayJobs, err := loaded.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := Simulate(SimConfig{Topology: topo, Policy: TopoAwareP}, replayJobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(simRes.Jobs) != len(protoRes.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(simRes.Jobs), len(protoRes.Jobs))
	}
	rel := math.Abs(simRes.Makespan-protoRes.Makespan) / protoRes.Makespan
	if rel > 0.05 {
		t.Fatalf("replayed makespan diverges %.1f%%", rel*100)
	}
}

// TestEndToEndManifestWorkflow runs the Table 1 experiment through the
// declarative manifest interface in both engine modes.
func TestEndToEndManifestWorkflow(t *testing.T) {
	exp := &manifest.Experiment{
		System: manifest.SystemConfig{Simulation: true, Topology: "minsky"},
		Algorithms: []manifest.AlgorithmConfig{
			{Name: "BF"}, {Name: "TOPO-AWARE-P"},
		},
		Jobs: []manifest.JobManifest{
			{ID: "J3", Model: "AlexNet", BatchSize: 4, GPUs: 2, MinUtility: 0.5, Arrival: 0, Iterations: 400},
			{ID: "J4", Model: "AlexNet", BatchSize: 1, GPUs: 2, MinUtility: 0.5, Arrival: 1, Iterations: 400},
		},
	}
	runs, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	// Both jobs fit the machine simultaneously, one per socket; the
	// topology-aware policy must not be slower than Best-Fit.
	if runs[1].Result.Makespan > runs[0].Result.Makespan+1e-9 {
		t.Fatalf("TOPO-AWARE-P (%.1f) slower than BF (%.1f)",
			runs[1].Result.Makespan, runs[0].Result.Makespan)
	}
}

// TestDGX1EightGPUScheduling schedules a mixed workload on a DGX-1 and
// checks P2P-rich placements.
func TestDGX1EightGPUScheduling(t *testing.T) {
	topo := NewDGX1()
	jobs := []*Job{
		NewJob("quad", AlexNet, 1, 4, 0.5, 0),
		NewJob("pair", CaffeRef, 4, 2, 0.5, 0.5),
		NewJob("solo", GoogLeNet, 128, 1, 0.3, 1),
	}
	for _, j := range jobs {
		j.Iterations = 200
	}
	res, err := Simulate(SimConfig{Topology: topo, Policy: TopoAwareP}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if jr.Wait > 0 {
			t.Fatalf("job %s queued on an 8-GPU machine with 7 GPUs requested", jr.Job.ID)
		}
		if jr.Job.GPUs >= 2 && !jr.P2P {
			t.Fatalf("job %s placed without P2P on a DGX-1: %v", jr.Job.ID, jr.GPUs)
		}
	}
}

// TestMultiNodeAntiCollocation verifies the §4.4 anti-collocation policy
// end to end: tasks land on different machines.
func TestMultiNodeAntiCollocation(t *testing.T) {
	topo := NewMinskyCluster(3)
	j := NewJob("spread", AlexNet, 128, 2, 0.0, 0)
	j.SingleNode = false
	j.AntiCollocate = true
	j.Iterations = 50
	res, err := Simulate(SimConfig{Topology: topo, Policy: TopoAware}, []*Job{j})
	if err != nil {
		t.Fatal(err)
	}
	gpus := res.Jobs[0].GPUs
	if topo.SameMachine(gpus[0], gpus[1]) {
		t.Fatalf("anti-collocated tasks share a machine: %v", gpus)
	}
}

// TestDRBPlacementInvariants property-tests the DRB mapper over random
// cluster states: placements always use free candidate GPUs, never
// duplicate, and score utilities within [0, 1].
func TestDRBPlacementInvariants(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	profiles := profile.Generate(topo, 4)
	mapper, err := core.NewMapper(profiles, core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, gpuReq, batchPick uint8) bool {
		rng := stats.NewRNG(seed)
		st := cluster.NewState(topo)
		// Randomly occupy some GPUs with dummy jobs.
		occupied := 0
		for pos := 0; pos < topo.NumGPUs(); pos++ {
			if rng.Float64() < 0.4 {
				tr := perfmodel.Traits{Model: perfmodel.NN(rng.Intn(3)), Class: 1, GPUs: 1}
				if st.Allocate(jobNameForTest(pos), []int{pos}, 0.5, tr) != nil {
					return false
				}
				occupied++
			}
		}
		req := 1 + int(gpuReq%4)
		batch := []int{1, 4, 32, 128}[batchPick%4]
		j := job.New("probe", perfmodel.AlexNet, batch, req, 0.5, 0)
		j.SingleNode = false
		free := st.FreeGPUs()
		if len(free) < req {
			return true // nothing to check
		}
		p, err := mapper.Place(j, st, free)
		if err != nil {
			return false
		}
		if len(p.GPUs) != req {
			return false
		}
		seen := map[int]bool{}
		freeSet := map[int]bool{}
		for _, g := range free {
			freeSet[g] = true
		}
		for _, g := range p.GPUs {
			if seen[g] || !freeSet[g] {
				return false
			}
			seen[g] = true
		}
		return p.Utility >= 0 && p.Utility <= 1+1e-9 &&
			p.Interference >= 1 && p.Fragmentation >= 0 && p.Fragmentation <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func jobNameForTest(pos int) string {
	return "occ" + string(rune('a'+pos))
}

// TestSchedulerConservationInvariant property-tests the scheduler: across
// random submission/finish sequences, every GPU is owned by at most one
// job and free counts stay consistent.
func TestSchedulerConservationInvariant(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	profiles := profile.Generate(topo, 4)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		mapper, err := core.NewMapper(profiles, core.DefaultWeights())
		if err != nil {
			return false
		}
		st := cluster.NewState(topo)
		s := sched.New(sched.TopoAwareP, st, mapper)
		placed := map[string]bool{}
		id := 0
		for step := 0; step < 40; step++ {
			if rng.Float64() < 0.6 {
				id++
				j := job.New(jobID(id), perfmodel.NN(rng.Intn(3)), 1+rng.Intn(64), 1+rng.Intn(2), 0.3, float64(step))
				if s.Submit(j) != nil {
					return false
				}
			} else if len(placed) > 0 {
				for name := range placed {
					if s.Release(name) != nil {
						return false
					}
					delete(placed, name)
					break
				}
			}
			for _, d := range s.Schedule() {
				if !d.Postponed {
					placed[d.Job.ID] = true
				}
			}
			// Conservation: owned + free == total.
			owned := 0
			for pos := 0; pos < topo.NumGPUs(); pos++ {
				if st.Owner(pos) != "" {
					owned++
				}
			}
			if owned+st.FreeGPUCount() != topo.NumGPUs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func jobID(i int) string {
	return "j" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// TestSimulatorMatchesHandComputedScenario cross-checks the simulator on a
// scenario small enough to verify with arithmetic: two sequential solo
// jobs on one machine.
func TestSimulatorMatchesHandComputedScenario(t *testing.T) {
	topo := topology.Power8Minsky()
	a := job.New("a", perfmodel.AlexNet, 128, 4, 0.0, 0)
	a.Iterations = 10
	b := job.New("b", perfmodel.AlexNet, 128, 4, 0.0, 1)
	b.Iterations = 10
	res, err := simulator.Run(simulator.Config{Topology: topo, Policy: sched.FCFS}, []*job.Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	iterTime := perfmodel.IterationTime(perfmodel.AlexNet, 128, topo, []int{0, 1, 2, 3}, 1)
	wantAFinish := 10 * iterTime
	wantBFinish := wantAFinish + 10*iterTime // b starts when a finishes
	var ja, jb simulator.JobResult
	for _, jr := range res.Jobs {
		if jr.Job.ID == "a" {
			ja = jr
		} else {
			jb = jr
		}
	}
	if math.Abs(ja.Finish-wantAFinish) > 1e-6 {
		t.Fatalf("a finish %.4f, want %.4f", ja.Finish, wantAFinish)
	}
	if math.Abs(jb.Finish-wantBFinish) > 1e-6 {
		t.Fatalf("b finish %.4f, want %.4f", jb.Finish, wantBFinish)
	}
	if math.Abs(jb.Wait-(wantAFinish-1)) > 1e-6 {
		t.Fatalf("b wait %.4f, want %.4f", jb.Wait, wantAFinish-1)
	}
}
