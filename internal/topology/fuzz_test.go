package topology_test

import (
	"reflect"
	"strings"
	"testing"

	"gputopo/internal/topology"
)

// FuzzParseMix throws arbitrary mix descriptions at the parser. Accepted
// input must produce buildable specs whose canonical rendering
// (MixString) parses back to the identical specs — the property the
// sweep cell keys and the toposerve -topology flag rely on.
func FuzzParseMix(f *testing.F) {
	f.Add("minsky:2")
	f.Add("minsky:2+minsky-1g:1+dgx1:1")
	f.Add("power8-minsky:1+dgx-1:2+pciebox:1")
	f.Add("pcie:3+minsky-3g:2")
	f.Add("minsky:0")
	f.Add("minsky:+2")
	f.Add(":::+:::")
	f.Add("minsky-99g:1")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 {
			t.Skip()
		}
		specs, err := topology.ParseMix(s)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatalf("ParseMix(%q) accepted input but returned no specs", s)
		}
		total := 0
		for _, sp := range specs {
			if sp.Count < 1 {
				t.Fatalf("ParseMix(%q) produced count %d", s, sp.Count)
			}
			total += sp.Count
		}
		again, err := topology.ParseMix(topology.MixString(specs))
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", topology.MixString(specs), s, err)
		}
		if !reflect.DeepEqual(specs, again) {
			t.Fatalf("round trip diverged:\n in:  %+v\n out: %+v", specs, again)
		}
		// Accepted specs must build (bounded, so fuzzing stays fast).
		if total <= 8 {
			if _, err := topology.HeterogeneousCluster(specs); err != nil {
				t.Fatalf("ParseMix(%q) accepted specs the builder rejects: %v", s, err)
			}
		}
	})
}

// FuzzParseMatrix feeds arbitrary text to the nvidia-smi matrix parser.
// Accepted matrices must re-render and re-parse to a fixed point: the
// RenderMatrix inverse is what the topoviz round-trip and the sweep
// matrix[...] cells depend on.
func FuzzParseMatrix(f *testing.F) {
	f.Add(topology.Power8Minsky().RenderMatrix())
	f.Add(topology.DGX1().RenderMatrix())
	f.Add(topology.PCIeBox().RenderMatrix())
	f.Add("     GPU0 CPUAffinity\nGPU0 X    0-7\n")
	f.Add("garbage\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			t.Skip()
		}
		topo, err := topology.ParseMatrix(s)
		if err != nil {
			return
		}
		if topo.NumGPUs() < 1 {
			t.Fatalf("ParseMatrix accepted a matrix with %d GPUs", topo.NumGPUs())
		}
		rendered := topo.RenderMatrix()
		topo2, err := topology.ParseMatrix(rendered)
		if err != nil {
			t.Fatalf("rendered matrix does not reparse: %v\ninput: %q\nrendered:\n%s", err, s, rendered)
		}
		if again := topo2.RenderMatrix(); again != rendered {
			t.Fatalf("render/parse has no fixed point:\n first:\n%s\n second:\n%s", rendered, again)
		}
	})
}

// guard against seed drift: the builder topologies used as FuzzParseMatrix
// seeds must stay single-machine (RenderMatrix is defined on those).
func TestFuzzMatrixSeedsSingleMachine(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.Power8Minsky(), topology.DGX1(), topology.PCIeBox()} {
		if m := topo.NumMachines(); m != 1 {
			t.Fatalf("%s: %d machines", topo.Name, m)
		}
		if !strings.Contains(topo.RenderMatrix(), "CPUAffinity") {
			t.Fatalf("%s: matrix rendering lost its header", topo.Name)
		}
	}
}
