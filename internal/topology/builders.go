package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// LevelWeights parameterizes the qualitative distance weights so the
// ablation experiments (and sweep topology specs) can vary them. Zero
// values fall back to the defaults of Figure 7. The JSON form is used by
// grid spec files (see internal/sweep and docs/sweeps.md).
type LevelWeights struct {
	GPUPeer float64 `json:"gpu_peer,omitempty"` // direct GPU-GPU edge
	GPULink float64 `json:"gpu_link,omitempty"` // GPU to switch/socket
	Switch  float64 `json:"switch,omitempty"`   // switch to socket
	Socket  float64 `json:"socket,omitempty"`   // socket to machine
	Machine float64 `json:"machine,omitempty"`  // machine to network
}

// DefaultWeights returns the weights of Figure 7.
func DefaultWeights() LevelWeights {
	return LevelWeights{
		GPUPeer: WeightGPUPeer,
		GPULink: WeightGPULink,
		Switch:  WeightSwitch,
		Socket:  WeightSocket,
		Machine: WeightMachine,
	}
}

func (w LevelWeights) orDefault() LevelWeights {
	d := DefaultWeights()
	if w.GPUPeer == 0 {
		w.GPUPeer = d.GPUPeer
	}
	if w.GPULink == 0 {
		w.GPULink = d.GPULink
	}
	if w.Switch == 0 {
		w.Switch = d.Switch
	}
	if w.Socket == 0 {
		w.Socket = d.Socket
	}
	if w.Machine == 0 {
		w.Machine = d.Machine
	}
	return w
}

// Power8Minsky builds the IBM Power8 S822LC "Minsky" machine of §3.1 and
// Figure 1: two sockets, two P100 GPUs per socket, dual-lane NVLink
// (40 GB/s) both between the GPUs of a socket and from each GPU to its
// socket, and an X-Bus between the sockets.
func Power8Minsky() *Topology { return Power8MinskyWeights(DefaultWeights()) }

// Power8MinskyWeights is Power8Minsky with custom level weights.
func Power8MinskyWeights(w LevelWeights) *Topology {
	b := NewBuilder("Power8-Minsky")
	b.SetRoutingPenalty(3.5)
	addMinskyMachine(b, 0, w.orDefault(), -1, 0)
	return b.Build()
}

// addMinskyMachine appends one Minsky machine (index m) to the builder.
// If netID >= 0 the machine vertex is linked to that network vertex.
// failed removes that many GPUs from the top of the index range (a
// degraded machine; see DegradedMachine).
func addMinskyMachine(b *Builder, m int, w LevelWeights, netID, failed int) {
	mID := b.AddNode(LevelMachine, fmt.Sprintf("M%d", m), m, -1, -1)
	if netID >= 0 {
		b.AddLink(netID, mID, LinkNetwork, BandwidthNetwork, w.Machine)
	}
	keep := 4 - failed
	for s := 0; s < 2; s++ {
		sID := b.AddNode(LevelSocket, fmt.Sprintf("M%d/S%d", m, s), m, s, -1)
		b.AddLink(mID, sID, LinkXBus, BandwidthXBus, w.Socket)
		g0, g1 := -1, -1
		if 2*s < keep {
			g0 = b.AddNode(LevelGPU, fmt.Sprintf("M%d/GPU%d", m, 2*s), m, s, 2*s)
		}
		if 2*s+1 < keep {
			g1 = b.AddNode(LevelGPU, fmt.Sprintf("M%d/GPU%d", m, 2*s+1), m, s, 2*s+1)
		}
		// Dual NVLink GPU-to-GPU within the socket and GPU-to-CPU.
		if g0 >= 0 && g1 >= 0 {
			b.AddLink(g0, g1, LinkNVLink2, BandwidthNVLink2, w.GPUPeer)
		}
		if g0 >= 0 {
			b.AddLink(g0, sID, LinkNVLink2, BandwidthNVLink2, w.GPULink)
		}
		if g1 >= 0 {
			b.AddLink(g1, sID, LinkNVLink2, BandwidthNVLink2, w.GPULink)
		}
	}
}

// PCIeBox builds the PCIe-Gen3 comparison machine of §3.2: the same
// two-socket, four-GPU layout but with K80-class GPUs attached through
// PCIe switches instead of NVLink. Its routing penalty is lower (2.5 vs
// the NVLink machine's 3.5) because transfers were already staged over
// PCIe, matching the smaller pack-vs-spread gap measured on that machine.
func PCIeBox() *Topology { return PCIeBoxWeights(DefaultWeights()) }

// PCIeBoxWeights is PCIeBox with custom level weights.
func PCIeBoxWeights(w LevelWeights) *Topology {
	w = w.orDefault()
	b := NewBuilder("Power8-PCIe")
	b.SetRoutingPenalty(2.5)
	m := 0
	mID := b.AddNode(LevelMachine, "M0", m, -1, -1)
	for s := 0; s < 2; s++ {
		sID := b.AddNode(LevelSocket, fmt.Sprintf("M0/S%d", s), m, s, -1)
		b.AddLink(mID, sID, LinkXBus, BandwidthXBus, w.Socket)
		swID := b.AddNode(LevelSwitch, fmt.Sprintf("M0/SW%d", s), m, s, -1)
		b.AddLink(sID, swID, LinkPCIe, BandwidthPCIe, w.Switch)
		for k := 0; k < 2; k++ {
			idx := 2*s + k
			g := b.AddNode(LevelGPU, fmt.Sprintf("M0/GPU%d", idx), m, s, idx)
			b.AddLink(g, swID, LinkPCIe, BandwidthPCIe, w.GPULink)
		}
	}
	return b.Build()
}

// DGX1 builds the NVIDIA DGX-1 of Figure 1: eight P100s in a hybrid
// cube-mesh of single-lane NVLinks (the 12 cube edges plus the diagonals of
// two faces), each GPU also hanging off a PCIe switch (two GPUs per switch,
// two switches per socket).
func DGX1() *Topology { return DGX1Weights(DefaultWeights()) }

// DGX1Weights is DGX1 with custom level weights.
func DGX1Weights(w LevelWeights) *Topology {
	w = w.orDefault()
	b := NewBuilder("DGX-1")
	b.SetRoutingPenalty(3.5)
	m := 0
	mID := b.AddNode(LevelMachine, "M0", m, -1, -1)
	var sw [4]int
	for s := 0; s < 2; s++ {
		sID := b.AddNode(LevelSocket, fmt.Sprintf("M0/S%d", s), m, s, -1)
		b.AddLink(mID, sID, LinkXBus, BandwidthXBus, w.Socket)
		for k := 0; k < 2; k++ {
			swIdx := 2*s + k
			sw[swIdx] = b.AddNode(LevelSwitch, fmt.Sprintf("M0/SW%d", swIdx), m, s, -1)
			b.AddLink(sID, sw[swIdx], LinkPCIe, BandwidthPCIe, w.Switch)
		}
	}
	var gpu [8]int
	for i := 0; i < 8; i++ {
		s := i / 4
		gpu[i] = b.AddNode(LevelGPU, fmt.Sprintf("M0/GPU%d", i), m, s, i)
		b.AddLink(gpu[i], sw[i/2], LinkPCIe, BandwidthPCIe, w.GPULink)
	}
	// Hybrid cube-mesh NVLink edges: cube edges + two face diagonals.
	nvPairs := [][2]int{
		// Top face (socket 0) ring and bottom face (socket 1) ring.
		{0, 1}, {1, 3}, {3, 2}, {2, 0},
		{4, 5}, {5, 7}, {7, 6}, {6, 4},
		// Vertical cube edges.
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
		// Diagonals of two faces.
		{0, 3}, {1, 2}, {4, 7}, {5, 6},
	}
	for _, p := range nvPairs {
		b.AddLink(gpu[p[0]], gpu[p[1]], LinkNVLink, BandwidthNVLink, w.GPUPeer)
	}
	return b.Build()
}

// MachineKind selects the per-machine layout for cluster topologies.
type MachineKind int

// Supported machine layouts.
const (
	KindMinsky MachineKind = iota
	KindDGX1
	KindPCIeBox
)

// String returns the canonical builder name ("minsky", "dgx1", "pcie")
// accepted by ParseMachineKind and by sweep topology specs.
func (k MachineKind) String() string {
	switch k {
	case KindMinsky:
		return "minsky"
	case KindDGX1:
		return "dgx1"
	case KindPCIeBox:
		return "pcie"
	default:
		return fmt.Sprintf("MachineKind(%d)", int(k))
	}
}

// ParseMachineKind maps a builder name to its MachineKind. It accepts the
// canonical names returned by String plus a few common aliases.
func ParseMachineKind(name string) (MachineKind, error) {
	switch name {
	case "minsky", "power8", "power8-minsky":
		return KindMinsky, nil
	case "dgx1", "dgx-1":
		return KindDGX1, nil
	case "pcie", "pciebox", "power8-pcie":
		return KindPCIeBox, nil
	default:
		return 0, fmt.Errorf("topology: unknown builder %q (use one of %v)", name, MachineKindNames())
	}
}

// MachineKindNames lists the canonical builder names, in declaration order.
func MachineKindNames() []string {
	return []string{KindMinsky.String(), KindDGX1.String(), KindPCIeBox.String()}
}

// Machine builds a single standalone machine of the given kind (no network
// root) with custom level weights — the Table 1 / prototype substrate.
func Machine(kind MachineKind, w LevelWeights) (*Topology, error) {
	switch kind {
	case KindMinsky:
		return Power8MinskyWeights(w), nil
	case KindDGX1:
		return DGX1Weights(w), nil
	case KindPCIeBox:
		return PCIeBoxWeights(w), nil
	default:
		return nil, fmt.Errorf("topology: unknown machine kind %v", kind)
	}
}

// kindGPUs returns the healthy GPU count of a machine kind.
func (k MachineKind) kindGPUs() int {
	if k == KindDGX1 {
		return 8
	}
	return 4
}

// DegradedMachine builds a standalone machine of the given kind with
// failedGPUs GPUs removed from the top of the index range — the
// intra-kind asymmetry of a partially failed node (e.g. a 3-GPU Minsky).
// Production fleets carry such machines for weeks between repair windows,
// and they break every "by symmetry" shortcut an allocator is tempted to
// take: the extremal-allocation search treats a degraded machine as its
// own machine shape (see seedCandidates).
func DegradedMachine(kind MachineKind, failedGPUs int) (*Topology, error) {
	return DegradedMachineWeights(kind, failedGPUs, DefaultWeights())
}

// DegradedMachineWeights is DegradedMachine with custom level weights.
func DegradedMachineWeights(kind MachineKind, failedGPUs int, w LevelWeights) (*Topology, error) {
	if err := validateFailed(kind, failedGPUs); err != nil {
		return nil, err
	}
	if failedGPUs == 0 {
		return Machine(kind, w)
	}
	w = w.orDefault()
	b := NewBuilder(fmt.Sprintf("%s-%dg", kindTitle(kind), failedGPUs))
	if kind.usesNVLink() {
		b.SetRoutingPenalty(3.5)
	} else {
		b.SetRoutingPenalty(2.5)
	}
	if kind == KindMinsky {
		addMinskyMachine(b, 0, w, -1, failedGPUs)
	} else {
		addClusterMachine(b, 0, kind, w, -1, failedGPUs)
	}
	return b.Build(), nil
}

// kindTitle is the display name used in degraded-machine topology names.
func kindTitle(kind MachineKind) string {
	switch kind {
	case KindMinsky:
		return "Power8-Minsky"
	case KindDGX1:
		return "DGX-1"
	default:
		return "Power8-PCIe"
	}
}

// validateFailed checks a degraded-GPU count against the kind's size: at
// least one GPU must survive.
func validateFailed(kind MachineKind, failed int) error {
	if failed < 0 || failed >= kind.kindGPUs() {
		return fmt.Errorf("topology: %s has %d GPUs; failed count %d must be in [0, %d]",
			kind, kind.kindGPUs(), failed, kind.kindGPUs()-1)
	}
	return nil
}

// Cluster builds a homogeneous cluster of n machines joined by a network
// vertex. The simulated large-scale scenarios of §5.5 use Minsky machines
// ("all simulated machines are homogeneous and follow the hardware topology
// described in Section 3.1").
func Cluster(n int, kind MachineKind) *Topology {
	return ClusterWeights(n, kind, DefaultWeights())
}

// ClusterWeights is Cluster with custom level weights.
func ClusterWeights(n int, kind MachineKind, w LevelWeights) *Topology {
	w = w.orDefault()
	name := fmt.Sprintf("Cluster-%dx", n)
	b := NewBuilder(name)
	switch kind {
	case KindMinsky:
		b.t.Name += "Minsky"
		b.SetRoutingPenalty(3.5)
	case KindDGX1:
		b.t.Name += "DGX1"
		b.SetRoutingPenalty(3.5)
	case KindPCIeBox:
		b.t.Name += "PCIe"
		b.SetRoutingPenalty(2.5)
	}
	netID := b.AddNode(LevelNetwork, "Net", -1, -1, -1)
	for m := 0; m < n; m++ {
		addMachineOfKind(b, m, kind, w, netID, 0)
	}
	return b.Build()
}

// addMachineOfKind appends one machine of the given kind to the builder,
// with failed GPUs removed from the top of its index range.
func addMachineOfKind(b *Builder, m int, kind MachineKind, w LevelWeights, netID, failed int) {
	switch kind {
	case KindMinsky:
		addMinskyMachine(b, m, w, netID, failed)
	case KindDGX1, KindPCIeBox:
		// For cluster simulations the paper uses Minsky nodes; DGX-1
		// and PCIe clusters are provided for completeness.
		addClusterMachine(b, m, kind, w, netID, failed)
	}
}

// usesNVLink reports whether the machine kind attaches GPUs over NVLink.
// It decides the routing penalty of mixed clusters: NVLink machines stage
// routed transfers through host memory (penalty 3.5), while all-PCIe
// systems already paid the staging cost (2.5, matching PCIeBox — see
// §3.2).
func (k MachineKind) usesNVLink() bool { return k != KindPCIeBox }

// MachineSpec is one run of identical machines inside a heterogeneous
// cluster: Count machines of the given Kind, each with Failed GPUs
// removed (0 = healthy; see DegradedMachine).
type MachineSpec struct {
	Kind   MachineKind
	Count  int
	Failed int
}

// Label renders the spec's kind in the mix syntax: the builder name,
// suffixed "-<n>g" for degraded machines ("minsky-1g" = 3-GPU Minsky).
func (s MachineSpec) Label() string {
	if s.Failed > 0 {
		return fmt.Sprintf("%s-%dg", s.Kind, s.Failed)
	}
	return s.Kind.String()
}

// MixString renders a machine mix in the canonical
// "minsky:2+minsky-1g:1+dgx1:1" form accepted by ParseMix and used in
// sweep cell keys.
func MixString(specs []MachineSpec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = fmt.Sprintf("%s:%d", s.Label(), s.Count)
	}
	return strings.Join(parts, "+")
}

// ParseMixKind parses a mix kind name: a builder name accepted by
// ParseMachineKind, optionally suffixed "-<n>g" marking n failed GPUs
// ("minsky-1g" is a Minsky with one failed GPU, i.e. 3 healthy ones).
// The failed count must leave at least one GPU.
func ParseMixKind(name string) (MachineKind, int, error) {
	base, failed := name, 0
	if i := strings.LastIndex(name, "-"); i > 0 && strings.HasSuffix(name, "g") {
		if n, err := strconv.Atoi(name[i+1 : len(name)-1]); err == nil {
			base, failed = name[:i], n
		}
	}
	kind, err := ParseMachineKind(base)
	if err != nil {
		// The unsuffixed name may itself be a builder alias containing a
		// dash (e.g. "power8-minsky", "dgx-1"); retry verbatim.
		if k2, err2 := ParseMachineKind(name); err2 == nil {
			return k2, 0, nil
		}
		return 0, 0, err
	}
	if err := validateFailed(kind, failed); err != nil {
		return 0, 0, err
	}
	return kind, failed, nil
}

// ParseMix parses a "minsky:2+minsky-1g:1+dgx1:1" mix description into
// machine specs. Every entry needs a registered builder name (optionally
// degraded with a "-<n>g" suffix) and a count >= 1.
func ParseMix(s string) ([]MachineSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("topology: empty machine mix")
	}
	var specs []MachineSpec
	for _, part := range strings.Split(s, "+") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("topology: mix entry %q is not builder:count", part)
		}
		kind, failed, err := ParseMixKind(name)
		if err != nil {
			return nil, err
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return nil, fmt.Errorf("topology: mix entry %q needs a machine count >= 1", part)
		}
		specs = append(specs, MachineSpec{Kind: kind, Count: count, Failed: failed})
	}
	return specs, nil
}

// HeterogeneousCluster builds a mixed-kind cluster joined by a network
// vertex: the machines of each spec in order, so "minsky:2+dgx1:1" yields
// machines M0,M1 (Minsky) and M2 (DGX-1). Mixed-generation fleets are the
// norm in production datacenters, and the allocator's Eq. 1 normalizers
// are only meaningful on them when the extremal search considers every
// distinct machine shape (see extremeAllocation).
func HeterogeneousCluster(specs []MachineSpec) (*Topology, error) {
	return HeterogeneousClusterWeights(specs, DefaultWeights())
}

// HeterogeneousClusterWeights is HeterogeneousCluster with custom level
// weights.
func HeterogeneousClusterWeights(specs []MachineSpec, w LevelWeights) (*Topology, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("topology: heterogeneous cluster needs at least one machine spec")
	}
	w = w.orDefault()
	b := NewBuilder("Cluster-" + MixString(specs))
	penalty := 2.5
	for _, s := range specs {
		switch s.Kind {
		case KindMinsky, KindDGX1, KindPCIeBox:
		default:
			return nil, fmt.Errorf("topology: unknown machine kind %v in mix", s.Kind)
		}
		if s.Count < 1 {
			return nil, fmt.Errorf("topology: machine spec %s:%d needs a count >= 1", s.Kind, s.Count)
		}
		if err := validateFailed(s.Kind, s.Failed); err != nil {
			return nil, err
		}
		if s.Kind.usesNVLink() {
			penalty = 3.5
		}
	}
	b.SetRoutingPenalty(penalty)
	netID := b.AddNode(LevelNetwork, "Net", -1, -1, -1)
	m := 0
	for _, s := range specs {
		for i := 0; i < s.Count; i++ {
			addMachineOfKind(b, m, s.Kind, w, netID, s.Failed)
			m++
		}
	}
	return b.Build(), nil
}

func addClusterMachine(b *Builder, m int, kind MachineKind, w LevelWeights, netID, failed int) {
	mID := b.AddNode(LevelMachine, fmt.Sprintf("M%d", m), m, -1, -1)
	if netID >= 0 {
		b.AddLink(netID, mID, LinkNetwork, BandwidthNetwork, w.Machine)
	}
	switch kind {
	case KindPCIeBox:
		keep := 4 - failed
		for s := 0; s < 2; s++ {
			sID := b.AddNode(LevelSocket, fmt.Sprintf("M%d/S%d", m, s), m, s, -1)
			b.AddLink(mID, sID, LinkXBus, BandwidthXBus, w.Socket)
			swID := b.AddNode(LevelSwitch, fmt.Sprintf("M%d/SW%d", m, s), m, s, -1)
			b.AddLink(sID, swID, LinkPCIe, BandwidthPCIe, w.Switch)
			for k := 0; k < 2; k++ {
				idx := 2*s + k
				if idx >= keep {
					continue
				}
				g := b.AddNode(LevelGPU, fmt.Sprintf("M%d/GPU%d", m, idx), m, s, idx)
				b.AddLink(g, swID, LinkPCIe, BandwidthPCIe, w.GPULink)
			}
		}
	case KindDGX1:
		keep := 8 - failed
		var sw [4]int
		for s := 0; s < 2; s++ {
			sID := b.AddNode(LevelSocket, fmt.Sprintf("M%d/S%d", m, s), m, s, -1)
			b.AddLink(mID, sID, LinkXBus, BandwidthXBus, w.Socket)
			for k := 0; k < 2; k++ {
				swIdx := 2*s + k
				sw[swIdx] = b.AddNode(LevelSwitch, fmt.Sprintf("M%d/SW%d", m, swIdx), m, s, -1)
				b.AddLink(sID, sw[swIdx], LinkPCIe, BandwidthPCIe, w.Switch)
			}
		}
		var gpu [8]int
		for i := 0; i < keep; i++ {
			s := i / 4
			gpu[i] = b.AddNode(LevelGPU, fmt.Sprintf("M%d/GPU%d", m, i), m, s, i)
			b.AddLink(gpu[i], sw[i/2], LinkPCIe, BandwidthPCIe, w.GPULink)
		}
		nvPairs := [][2]int{
			{0, 1}, {1, 3}, {3, 2}, {2, 0},
			{4, 5}, {5, 7}, {7, 6}, {6, 4},
			{0, 4}, {1, 5}, {2, 6}, {3, 7},
			{0, 3}, {1, 2}, {4, 7}, {5, 6},
		}
		for _, p := range nvPairs {
			if p[0] >= keep || p[1] >= keep {
				continue
			}
			b.AddLink(gpu[p[0]], gpu[p[1]], LinkNVLink, BandwidthNVLink, w.GPUPeer)
		}
	}
}
