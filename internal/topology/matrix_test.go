package topology

import (
	"errors"
	"math"
	"strings"
	"testing"
)

const minskyMatrix = `
     GPU0  GPU1  GPU2  GPU3  CPUAffinity
GPU0 X     NV2   SYS   SYS   0-7
GPU1 NV2   X     SYS   SYS   0-7
GPU2 SYS   SYS   X     NV2   8-15
GPU3 SYS   SYS   NV2   X     8-15
`

func TestParseMatrixMinsky(t *testing.T) {
	topo, err := ParseMatrix(minskyMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 4 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	if !topo.SameSocket(0, 1) || topo.SameSocket(0, 2) {
		t.Fatal("socket inference wrong")
	}
	if !topo.P2P(0, 1) {
		t.Fatal("NV2 pair should be P2P")
	}
	if topo.P2P(0, 2) {
		t.Fatal("SYS pair should not be P2P")
	}
	if topo.Distance(0, 1) >= topo.Distance(0, 2) {
		t.Fatal("NV2 distance should beat SYS distance")
	}
}

func TestParseMatrixRoundTripMinsky(t *testing.T) {
	built := Power8Minsky()
	rendered := built.RenderMatrix()
	parsed, err := ParseMatrix(rendered)
	if err != nil {
		t.Fatalf("round trip parse: %v\nmatrix:\n%s", err, rendered)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if built.P2P(i, j) != parsed.P2P(i, j) {
				t.Fatalf("P2P(%d,%d) changed in round trip", i, j)
			}
			if built.SameSocket(i, j) != parsed.SameSocket(i, j) {
				t.Fatalf("SameSocket(%d,%d) changed in round trip", i, j)
			}
		}
	}
}

func TestParseMatrixPIXSwitch(t *testing.T) {
	matrix := `
     GPU0  GPU1  GPU2  GPU3
GPU0 X     PIX   SYS   SYS
GPU1 PIX   X     SYS   SYS
GPU2 SYS   SYS   X     PIX
GPU3 SYS   SYS   PIX   X
`
	topo, err := ParseMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.P2P(0, 1) {
		t.Fatal("PIX pair should be P2P through the switch")
	}
	// PIX distance: GPU -> switch -> GPU = 2.
	if d := topo.Distance(0, 1); d != 2 {
		t.Fatalf("PIX distance = %v", d)
	}
	if topo.P2P(0, 2) {
		t.Fatal("SYS pair should not be P2P")
	}
}

func TestParseMatrixPHB(t *testing.T) {
	matrix := `
     GPU0  GPU1
GPU0 X     PHB
GPU1 PHB   X
`
	topo, err := ParseMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.SameSocket(0, 1) {
		t.Fatal("PHB pair shares a socket")
	}
	if topo.P2P(0, 1) {
		t.Fatal("PHB pair is routed through the host bridge, not P2P")
	}
}

// TestMatrixRoundTripEquivalence is the full discovery-equivalence check:
// rendering a built machine and parsing the result back must reproduce
// the same GPU-to-GPU distances, P2P relations, effective bandwidths and
// routing penalty — otherwise discovered and built versions of the same
// machine would score allocations differently. DGX-1 is the hard case:
// its cube-mesh NVLink joins every GPU transitively (socket structure
// only survives via the CPU-affinity column) and its PCIe switches are
// shadowed by NV1 tokens (ParseMatrix must re-synthesize the switch hop).
func TestMatrixRoundTripEquivalence(t *testing.T) {
	for _, built := range []*Topology{Power8Minsky(), DGX1(), PCIeBox()} {
		parsed, err := ParseMatrix(built.RenderMatrix())
		if err != nil {
			t.Fatalf("%s: round trip parse: %v\nmatrix:\n%s", built.Name, err, built.RenderMatrix())
		}
		if parsed.NumGPUs() != built.NumGPUs() {
			t.Fatalf("%s: GPU count %d -> %d", built.Name, built.NumGPUs(), parsed.NumGPUs())
		}
		if parsed.RoutingPenalty != built.RoutingPenalty {
			t.Fatalf("%s: routing penalty %v -> %v", built.Name, built.RoutingPenalty, parsed.RoutingPenalty)
		}
		n := built.NumGPUs()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if b, p := built.Distance(i, j), parsed.Distance(i, j); b != p {
					t.Fatalf("%s: Distance(%d,%d) %v -> %v", built.Name, i, j, b, p)
				}
				if b, p := built.P2P(i, j), parsed.P2P(i, j); b != p {
					t.Fatalf("%s: P2P(%d,%d) %v -> %v", built.Name, i, j, b, p)
				}
				if b, p := built.EffectiveBandwidth(i, j), parsed.EffectiveBandwidth(i, j); math.Abs(b-p) > 1e-9 {
					t.Fatalf("%s: EffectiveBandwidth(%d,%d) %v -> %v", built.Name, i, j, b, p)
				}
				if b, p := built.SameSocket(i, j), parsed.SameSocket(i, j); b != p {
					t.Fatalf("%s: SameSocket(%d,%d) %v -> %v", built.Name, i, j, b, p)
				}
			}
		}
	}
}

// TestParseMatrixRoutingPenalty pins the discovery-penalty fix: an
// all-PCIe matrix must score like PCIeBox (2.5), not like an NVLink
// machine — ParseMatrix used to hard-code 3.5 for everything.
func TestParseMatrixRoutingPenalty(t *testing.T) {
	pcieMatrix := `
     GPU0  GPU1  GPU2  GPU3
GPU0 X     PIX   SYS   SYS
GPU1 PIX   X     SYS   SYS
GPU2 SYS   SYS   X     PIX
GPU3 SYS   SYS   PIX   X
`
	topo, err := ParseMatrix(pcieMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if want := PCIeBox().RoutingPenalty; topo.RoutingPenalty != want {
		t.Fatalf("all-PCIe discovered penalty = %v, want %v", topo.RoutingPenalty, want)
	}
	nvTopo, err := ParseMatrix(minskyMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if nvTopo.RoutingPenalty != 3.5 {
		t.Fatalf("NVLink discovered penalty = %v, want 3.5", nvTopo.RoutingPenalty)
	}
}

// TestParseMatrixRowCount pins the trailing-row fix: rows beyond the GPU
// header count used to be silently ignored; both directions now fail with
// ErrMatrixRows. A trailing nvidia-smi legend block stays tolerated.
func TestParseMatrixRowCount(t *testing.T) {
	tooMany := `
     GPU0  GPU1
GPU0 X     NV2
GPU1 NV2   X
GPU2 NV2   NV2
`
	if _, err := ParseMatrix(tooMany); !errors.Is(err, ErrMatrixRows) {
		t.Fatalf("trailing row error = %v, want ErrMatrixRows", err)
	}
	tooFew := `
     GPU0  GPU1
GPU0 X     NV2
`
	if _, err := ParseMatrix(tooFew); !errors.Is(err, ErrMatrixRows) {
		t.Fatalf("missing row error = %v, want ErrMatrixRows", err)
	}
	withLegend := `
     GPU0  GPU1
GPU0 X     NV2
GPU1 NV2   X
Legend:
  NV2 = dual NVLink
`
	if _, err := ParseMatrix(withLegend); err != nil {
		t.Fatalf("legend block rejected: %v", err)
	}
	// Real RDMA-equipped machines list NIC rows after the GPU rows.
	withNIC := `
     GPU0  GPU1
GPU0 X     NV2
GPU1 NV2   X
NIC0 SYS   SYS
Legend:
  NV2 = dual NVLink
`
	if _, err := ParseMatrix(withNIC); err != nil {
		t.Fatalf("NIC row rejected: %v", err)
	}
}

func TestMatrixCluster(t *testing.T) {
	topo, err := MatrixCluster(minskyMatrix, 3)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 12 || topo.NumMachines() != 3 {
		t.Fatalf("matrix cluster: %d GPUs on %d machines", topo.NumGPUs(), topo.NumMachines())
	}
	// Each stamped machine reproduces the single-machine distances.
	single, err := ParseMatrix(minskyMatrix)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		gpus := topo.GPUsOfMachine(m)
		if len(gpus) != 4 {
			t.Fatalf("machine %d has %d GPUs", m, len(gpus))
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if got, want := topo.Distance(gpus[i], gpus[j]), single.Distance(i, j); got != want {
					t.Fatalf("machine %d Distance(%d,%d) = %v, single machine %v", m, i, j, got, want)
				}
			}
		}
	}
	// Cross-machine pairs route over the network.
	if topo.P2P(0, 4) {
		t.Fatal("cross-machine pair reported P2P")
	}
	if topo.Distance(0, 4) <= topo.Distance(0, 2) {
		t.Fatalf("cross-machine %v <= cross-socket %v", topo.Distance(0, 4), topo.Distance(0, 2))
	}
	// The inferred penalty carries over from the matrix.
	if topo.RoutingPenalty != 3.5 {
		t.Fatalf("cluster penalty = %v", topo.RoutingPenalty)
	}
	if _, err := MatrixCluster(minskyMatrix, 0); err == nil {
		t.Fatal("zero machines did not error")
	}
	if _, err := MatrixCluster("garbage", 2); err == nil {
		t.Fatal("bad matrix did not error")
	}
}

func TestParseMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"no GPUs":    "     CPU\nrow 1\nrow 2",
		"bad token":  "     GPU0  GPU1\nGPU0 X     ZZZ\nGPU1 ZZZ   X",
		"asymmetric": "     GPU0  GPU1\nGPU0 X     NV2\nGPU1 PIX   X",
		"bad diag":   "     GPU0  GPU1\nGPU0 NV2   NV2\nGPU1 NV2   X",
		"short row":  "     GPU0  GPU1\nGPU0 X\nGPU1 NV2 X",
		"wrong name": "     GPU0  GPU1\nGPUX X     NV2\nGPU1 NV2   X",
		"few rows":   "     GPU0  GPU1\nGPU0 X     NV2",
	}
	for name, m := range cases {
		if _, err := ParseMatrix(m); err == nil {
			t.Fatalf("case %q: expected error", name)
		}
	}
}

func TestRenderMatrixTokens(t *testing.T) {
	out := Power8Minsky().RenderMatrix()
	for _, tok := range []string{"NV2", "SYS", "X", "GPU0", "GPU3"} {
		if !strings.Contains(out, tok) {
			t.Fatalf("matrix missing %q:\n%s", tok, out)
		}
	}
	dgx := DGX1().RenderMatrix()
	if !strings.Contains(dgx, "NV1") {
		t.Fatalf("DGX-1 matrix missing NV1:\n%s", dgx)
	}
}

func TestRenderTree(t *testing.T) {
	out := Power8Minsky().RenderTree()
	for _, frag := range []string{"M0", "M0/S0", "M0/GPU0", "NVLink2", "peer links:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("tree missing %q:\n%s", frag, out)
		}
	}
	clusterOut := Cluster(2, KindMinsky).RenderTree()
	if !strings.Contains(clusterOut, "Net") {
		t.Fatalf("cluster tree missing network root:\n%s", clusterOut)
	}
}

func TestParsedMatrixUsableForPlacementQueries(t *testing.T) {
	topo, err := ParseMatrix(minskyMatrix)
	if err != nil {
		t.Fatal(err)
	}
	best := topo.BestAllocation(2)
	if !topo.SameSocket(best[0], best[1]) {
		t.Fatalf("best allocation %v on parsed topology not packed", best)
	}
}
