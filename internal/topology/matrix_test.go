package topology

import (
	"strings"
	"testing"
)

const minskyMatrix = `
     GPU0  GPU1  GPU2  GPU3  CPUAffinity
GPU0 X     NV2   SYS   SYS   0-7
GPU1 NV2   X     SYS   SYS   0-7
GPU2 SYS   SYS   X     NV2   8-15
GPU3 SYS   SYS   NV2   X     8-15
`

func TestParseMatrixMinsky(t *testing.T) {
	topo, err := ParseMatrix(minskyMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 4 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	if !topo.SameSocket(0, 1) || topo.SameSocket(0, 2) {
		t.Fatal("socket inference wrong")
	}
	if !topo.P2P(0, 1) {
		t.Fatal("NV2 pair should be P2P")
	}
	if topo.P2P(0, 2) {
		t.Fatal("SYS pair should not be P2P")
	}
	if topo.Distance(0, 1) >= topo.Distance(0, 2) {
		t.Fatal("NV2 distance should beat SYS distance")
	}
}

func TestParseMatrixRoundTripMinsky(t *testing.T) {
	built := Power8Minsky()
	rendered := built.RenderMatrix()
	parsed, err := ParseMatrix(rendered)
	if err != nil {
		t.Fatalf("round trip parse: %v\nmatrix:\n%s", err, rendered)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if built.P2P(i, j) != parsed.P2P(i, j) {
				t.Fatalf("P2P(%d,%d) changed in round trip", i, j)
			}
			if built.SameSocket(i, j) != parsed.SameSocket(i, j) {
				t.Fatalf("SameSocket(%d,%d) changed in round trip", i, j)
			}
		}
	}
}

func TestParseMatrixPIXSwitch(t *testing.T) {
	matrix := `
     GPU0  GPU1  GPU2  GPU3
GPU0 X     PIX   SYS   SYS
GPU1 PIX   X     SYS   SYS
GPU2 SYS   SYS   X     PIX
GPU3 SYS   SYS   PIX   X
`
	topo, err := ParseMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.P2P(0, 1) {
		t.Fatal("PIX pair should be P2P through the switch")
	}
	// PIX distance: GPU -> switch -> GPU = 2.
	if d := topo.Distance(0, 1); d != 2 {
		t.Fatalf("PIX distance = %v", d)
	}
	if topo.P2P(0, 2) {
		t.Fatal("SYS pair should not be P2P")
	}
}

func TestParseMatrixPHB(t *testing.T) {
	matrix := `
     GPU0  GPU1
GPU0 X     PHB
GPU1 PHB   X
`
	topo, err := ParseMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.SameSocket(0, 1) {
		t.Fatal("PHB pair shares a socket")
	}
	if topo.P2P(0, 1) {
		t.Fatal("PHB pair is routed through the host bridge, not P2P")
	}
}

func TestParseMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"no GPUs":    "     CPU\nrow 1\nrow 2",
		"bad token":  "     GPU0  GPU1\nGPU0 X     ZZZ\nGPU1 ZZZ   X",
		"asymmetric": "     GPU0  GPU1\nGPU0 X     NV2\nGPU1 PIX   X",
		"bad diag":   "     GPU0  GPU1\nGPU0 NV2   NV2\nGPU1 NV2   X",
		"short row":  "     GPU0  GPU1\nGPU0 X\nGPU1 NV2 X",
		"wrong name": "     GPU0  GPU1\nGPUX X     NV2\nGPU1 NV2   X",
		"few rows":   "     GPU0  GPU1\nGPU0 X     NV2",
	}
	for name, m := range cases {
		if _, err := ParseMatrix(m); err == nil {
			t.Fatalf("case %q: expected error", name)
		}
	}
}

func TestRenderMatrixTokens(t *testing.T) {
	out := Power8Minsky().RenderMatrix()
	for _, tok := range []string{"NV2", "SYS", "X", "GPU0", "GPU3"} {
		if !strings.Contains(out, tok) {
			t.Fatalf("matrix missing %q:\n%s", tok, out)
		}
	}
	dgx := DGX1().RenderMatrix()
	if !strings.Contains(dgx, "NV1") {
		t.Fatalf("DGX-1 matrix missing NV1:\n%s", dgx)
	}
}

func TestRenderTree(t *testing.T) {
	out := Power8Minsky().RenderTree()
	for _, frag := range []string{"M0", "M0/S0", "M0/GPU0", "NVLink2", "peer links:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("tree missing %q:\n%s", frag, out)
		}
	}
	clusterOut := Cluster(2, KindMinsky).RenderTree()
	if !strings.Contains(clusterOut, "Net") {
		t.Fatalf("cluster tree missing network root:\n%s", clusterOut)
	}
}

func TestParsedMatrixUsableForPlacementQueries(t *testing.T) {
	topo, err := ParseMatrix(minskyMatrix)
	if err != nil {
		t.Fatal(err)
	}
	best := topo.BestAllocation(2)
	if !topo.SameSocket(best[0], best[1]) {
		t.Fatalf("best allocation %v on parsed topology not packed", best)
	}
}
