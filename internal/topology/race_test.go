package topology

import (
	"sync"
	"testing"
)

// TestSharedTopologyConcurrentReaders hammers one shared topology from
// many goroutines through every read API the sweep engine's substrate
// cache exposes to concurrent workers — most importantly the lazily
// memoized extreme allocations. Run under -race (CI does), this test
// fails if sharing a built *Topology between workers is ever unsafe.
func TestSharedTopologyConcurrentReaders(t *testing.T) {
	topos := []*Topology{
		Cluster(6, KindMinsky),
		mustHetero(t, []MachineSpec{{Kind: KindMinsky, Count: 2}, {Kind: KindDGX1, Count: 1}}),
	}
	for _, topo := range topos {
		topo := topo
		t.Run(topo.Name, func(t *testing.T) {
			const workers = 8
			n := topo.NumGPUs()
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				w := w
				go func() {
					defer wg.Done()
					for round := 0; round < 20; round++ {
						// Every worker asks for every size so the memoized
						// entries are initialized under maximal contention.
						for g := 1; g <= 8; g++ {
							best := topo.BestAllocation(g)
							if len(best) != g {
								t.Errorf("BestAllocation(%d) returned %d GPUs", g, len(best))
								return
							}
							worst := topo.WorstAllocation(g)
							if len(worst) != g {
								t.Errorf("WorstAllocation(%d) returned %d GPUs", g, len(worst))
								return
							}
							if c := topo.BestCommCost(g); g >= 2 && c <= 0 {
								t.Errorf("BestCommCost(%d) = %g, want > 0", g, c)
								return
							}
							if c := topo.WorstCommCost(g); g >= 2 && c <= 0 {
								t.Errorf("WorstCommCost(%d) = %g, want > 0", g, c)
								return
							}
						}
						a := (w * 3) % n
						b := (w*7 + round) % n
						if d := topo.Distance(a, b); a != b && d <= 0 {
							t.Errorf("Distance(%d,%d) = %g, want > 0", a, b, d)
							return
						}
						topo.EffectiveBandwidth((w+round)%n, w%n)
						topo.P2P(w%n, (w+1)%n)
						if topo.MinPairDistance() <= 0 || topo.MaxPairDistance() <= 0 {
							t.Error("degenerate pair-distance extremes")
							return
						}
						topo.PairwiseDistance(topo.BestAllocation(4))
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestExtremeAllocationStableUnderConcurrency asserts the memoized results
// are identical no matter which goroutine initialized them: the cache must
// never expose a partially built or divergent entry.
func TestExtremeAllocationStableUnderConcurrency(t *testing.T) {
	topo := Cluster(4, KindMinsky)
	want := map[int][]int{}
	for g := 1; g <= 8; g++ {
		want[g] = append([]int(nil), topo.BestAllocation(g)...)
	}
	fresh := Cluster(4, KindMinsky)
	var wg sync.WaitGroup
	results := make([][][]int, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 1; g <= 8; g++ {
				results[w] = append(results[w], fresh.BestAllocation(g))
			}
		}()
	}
	wg.Wait()
	for w := range results {
		for gi, set := range results[w] {
			g := gi + 1
			if len(set) != len(want[g]) {
				t.Fatalf("worker %d size %d: got %v want %v", w, g, set, want[g])
			}
			for i := range set {
				if set[i] != want[g][i] {
					t.Fatalf("worker %d size %d: got %v want %v", w, g, set, want[g])
				}
			}
		}
	}
}

func mustHetero(t *testing.T, specs []MachineSpec) *Topology {
	t.Helper()
	topo, err := HeterogeneousCluster(specs)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}
