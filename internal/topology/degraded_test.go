package topology

import (
	"math"
	"testing"
)

// TestDegradedMachineBuilders checks the standalone degraded builders:
// GPU counts, surviving interconnect structure, and the healthy-machine
// passthrough.
func TestDegradedMachineBuilders(t *testing.T) {
	cases := []struct {
		kind     MachineKind
		failed   int
		wantGPUs int
	}{
		{KindMinsky, 1, 3},
		{KindMinsky, 2, 2},
		{KindMinsky, 3, 1},
		{KindDGX1, 5, 3},
		{KindPCIeBox, 1, 3},
	}
	for _, tc := range cases {
		topo, err := DegradedMachine(tc.kind, tc.failed)
		if err != nil {
			t.Fatalf("%s-%dg: %v", tc.kind, tc.failed, err)
		}
		if topo.NumGPUs() != tc.wantGPUs {
			t.Fatalf("%s-%dg: %d GPUs, want %d", tc.kind, tc.failed, topo.NumGPUs(), tc.wantGPUs)
		}
		if topo.NumMachines() != 1 {
			t.Fatalf("%s-%dg: %d machines", tc.kind, tc.failed, topo.NumMachines())
		}
		// Every surviving pair must still be reachable.
		for a := 0; a < topo.NumGPUs(); a++ {
			for b := a + 1; b < topo.NumGPUs(); b++ {
				if math.IsInf(topo.Distance(a, b), 1) {
					t.Fatalf("%s-%dg: GPUs %d,%d disconnected", tc.kind, tc.failed, a, b)
				}
			}
		}
	}
	// A 3-GPU Minsky keeps the socket-0 NVLink pair at distance 1 and the
	// lone socket-1 GPU across the X-Bus.
	m3, err := DegradedMachine(KindMinsky, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := m3.Distance(0, 1); d != WeightGPUPeer { // direct NVLink edge
		t.Fatalf("minsky-1g intra-socket distance = %g, want %g", d, WeightGPUPeer)
	}
	if !m3.P2P(0, 1) {
		t.Fatal("minsky-1g socket pair lost P2P")
	}
	if m3.P2P(0, 2) {
		t.Fatal("minsky-1g cross-socket pair must route through hosts")
	}

	// Healthy passthrough: failed=0 is the ordinary machine.
	h, err := DegradedMachine(KindMinsky, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumGPUs() != 4 {
		t.Fatalf("failed=0 built %d GPUs", h.NumGPUs())
	}

	// Error paths: no GPUs left, negative count.
	if _, err := DegradedMachine(KindMinsky, 4); err == nil {
		t.Fatal("failed=4 on a 4-GPU machine accepted")
	}
	if _, err := DegradedMachine(KindDGX1, 8); err == nil {
		t.Fatal("failed=8 on an 8-GPU machine accepted")
	}
	if _, err := DegradedMachine(KindPCIeBox, -1); err == nil {
		t.Fatal("negative failed count accepted")
	}
}

// TestParseMixKindDegraded covers the "-<n>g" suffix syntax and its
// interaction with dash-bearing builder aliases.
func TestParseMixKindDegraded(t *testing.T) {
	cases := []struct {
		name   string
		kind   MachineKind
		failed int
	}{
		{"minsky", KindMinsky, 0},
		{"minsky-1g", KindMinsky, 1},
		{"minsky-3g", KindMinsky, 3},
		{"dgx1-5g", KindDGX1, 5},
		{"pcie-2g", KindPCIeBox, 2},
		{"power8-minsky", KindMinsky, 0}, // dash alias, no suffix
		{"dgx-1", KindDGX1, 0},           // dash alias ending in a digit
	}
	for _, tc := range cases {
		kind, failed, err := ParseMixKind(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if kind != tc.kind || failed != tc.failed {
			t.Fatalf("%s: got (%v, %d), want (%v, %d)", tc.name, kind, failed, tc.kind, tc.failed)
		}
	}
	for _, bad := range []string{"minsky-4g", "dgx1-8g", "nosuch", "nosuch-1g"} {
		if _, _, err := ParseMixKind(bad); err == nil {
			t.Fatalf("%s accepted", bad)
		}
	}
}

// TestMixRoundTripDegraded pins ParseMix <-> MixString symmetry for
// degraded entries, and that HeterogeneousCluster stamps the degraded
// machines with the right sizes.
func TestMixRoundTripDegraded(t *testing.T) {
	const mix = "minsky:2+minsky-1g:1+dgx1:1"
	specs, err := ParseMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	if got := MixString(specs); got != mix {
		t.Fatalf("round trip %q -> %q", mix, got)
	}
	topo, err := HeterogeneousCluster(specs)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumMachines() != 4 {
		t.Fatalf("machines = %d", topo.NumMachines())
	}
	wantSizes := []int{4, 4, 3, 8}
	for m, want := range wantSizes {
		if got := len(topo.GPUsOfMachine(m)); got != want {
			t.Fatalf("machine %d has %d GPUs, want %d", m, got, want)
		}
	}
	if topo.NumGPUs() != 19 {
		t.Fatalf("total GPUs = %d, want 19", topo.NumGPUs())
	}
}

// bruteForceExtreme exhaustively searches all g-subsets for the extreme
// pairwise-distance sum (test oracle; exponential, keep g and n small).
func bruteForceExtreme(topo *Topology, g int, maximize bool) float64 {
	n := topo.NumGPUs()
	set := make([]int, 0, g)
	best := math.Inf(1)
	if maximize {
		best = math.Inf(-1)
	}
	var rec func(start int)
	rec = func(start int) {
		if len(set) == g {
			c := topo.PairwiseDistance(set)
			if (maximize && c > best) || (!maximize && c < best) {
				best = c
			}
			return
		}
		for v := start; v < n; v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return best
}

// TestExtremeAllocationSeedsDegradedShape is the allocator-coverage
// regression for degraded machines: on a large cluster (shape-based seed
// limiting active: >2 machines, >16 GPUs) whose best dense allocation
// hides inside the one degraded machine, the extremal search must treat
// the degraded machine as its own shape and seed it — a
// first-two-machines-of-each-healthy-kind heuristic would never reach
// the NVLink triangle of a 3-GPU DGX-1.
func TestExtremeAllocationSeedsDegradedShape(t *testing.T) {
	specs, err := ParseMix("minsky:4+dgx1-5g:1")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := HeterogeneousCluster(specs)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 19 || topo.NumMachines() != 5 {
		t.Fatalf("unexpected cluster: %d GPUs, %d machines", topo.NumGPUs(), topo.NumMachines())
	}
	for _, g := range []int{2, 3} {
		got := topo.PairwiseDistance(topo.BestAllocation(g))
		want := bruteForceExtreme(topo, g, false)
		if got != want {
			t.Fatalf("BestAllocation(%d) cost %g, brute force %g — degraded shape not seeded", g, got, want)
		}
	}
	// The 3-GPU optimum is the degraded DGX-1's all-NVLink triangle: all
	// three pairs are direct weight-1 edges.
	best3 := topo.BestAllocation(3)
	ms := map[int]bool{}
	for _, pos := range best3 {
		ms[topo.GPU(pos).Machine] = true
	}
	if len(ms) != 1 || !ms[4] {
		t.Fatalf("best 3-GPU allocation %v not inside the degraded DGX-1 (machine 4)", best3)
	}
	if got := topo.PairwiseDistance(best3); got != 3*WeightGPUPeer {
		t.Fatalf("best 3-GPU cost = %g, want the NVLink triangle %g", got, 3*WeightGPUPeer)
	}
	// Worst allocations must agree with brute force too (Eq. 1 normalizer).
	if got, want := topo.PairwiseDistance(topo.WorstAllocation(2)), bruteForceExtreme(topo, 2, true); got != want {
		t.Fatalf("WorstAllocation(2) cost %g, brute force %g", got, want)
	}
}

// TestStateHandlesDegradedFragmentation checks Eq. 5 bookkeeping on a
// degraded machine: a 1-GPU socket contributes integer fractions without
// breaking the incremental fragmentation sum.
func TestStateHandlesDegradedFragmentation(t *testing.T) {
	topo, err := DegradedMachine(KindMinsky, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.GPUsOfSocket(0, 1)); got != 1 {
		t.Fatalf("socket 1 has %d GPUs, want 1", got)
	}
	if got := len(topo.Sockets(0)); got != 2 {
		t.Fatalf("sockets = %d, want 2", got)
	}
}
