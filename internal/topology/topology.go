// Package topology models the physical GPU system topology graph of §4.1.2
// of the paper: a multi-level weighted graph whose first level is the
// network, followed by machines, sockets, optional PCIe/NVLink switches,
// and finally GPUs. GPU vertices may additionally be connected directly to
// each other, representing NVLink peer-to-peer connections.
//
// Edge weights are qualitative distances: levels right above the GPUs have
// weight 1 and higher levels have progressively larger weights (the paper
// uses 1, 10, 20, 40 and 100 in Figure 7; the only constraint is that
// higher levels weigh more). Each link also carries a nominal unidirectional
// bandwidth used for the capacity constraint t_bw <= p_bw and for the
// effective-bandwidth estimates of the performance model.
package topology

import (
	"fmt"
	"sort"
	"sync"

	"gputopo/internal/graph"
)

// Level identifies the hierarchy level of a topology vertex (§4.1.2).
type Level int

// Levels from the root of the hierarchy down to the leaves.
const (
	LevelNetwork Level = iota
	LevelMachine
	LevelSocket
	LevelSwitch
	LevelGPU
)

// String returns the short name used in labels and renderings.
func (l Level) String() string {
	switch l {
	case LevelNetwork:
		return "Net"
	case LevelMachine:
		return "M"
	case LevelSocket:
		return "S"
	case LevelSwitch:
		return "SW"
	case LevelGPU:
		return "GPU"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// LinkType identifies the interconnect technology of an edge.
type LinkType int

// Interconnect technologies present in the paper's systems (Figure 1).
const (
	LinkNVLink  LinkType = iota // single-lane NVLink, 20 GB/s unidirectional
	LinkNVLink2                 // dual-lane NVLink, 40 GB/s unidirectional
	LinkPCIe                    // PCIe Gen3 x16, 16 GB/s unidirectional
	LinkXBus                    // inter-socket bus (X-Bus / QPI), bandwidth varies
	LinkNetwork                 // machine-to-machine network
)

// String returns the conventional name of the link technology.
func (t LinkType) String() string {
	switch t {
	case LinkNVLink:
		return "NVLink"
	case LinkNVLink2:
		return "NVLink2"
	case LinkPCIe:
		return "PCIe"
	case LinkXBus:
		return "X-Bus"
	case LinkNetwork:
		return "Network"
	default:
		return fmt.Sprintf("LinkType(%d)", int(t))
	}
}

// Nominal unidirectional bandwidths in GB/s (§1, §3.1 of the paper).
const (
	BandwidthNVLink  = 20.0
	BandwidthNVLink2 = 40.0
	BandwidthPCIe    = 16.0
	BandwidthXBus    = 32.0
	BandwidthNetwork = 12.5 // 100 Gb/s InfiniBand-class fabric
)

// Default qualitative level weights (Figure 7). Only their ordering
// matters; the ablation benchmark varies them to demonstrate insensitivity.
const (
	WeightGPUPeer = 1.0   // GPU-GPU direct NVLink edge
	WeightGPULink = 1.0   // GPU to its switch or socket
	WeightSwitch  = 10.0  // switch to socket
	WeightSocket  = 20.0  // socket to machine
	WeightMachine = 100.0 // machine to network
)

// Node is a vertex of the physical topology graph.
type Node struct {
	ID      int
	Level   Level
	Name    string
	Machine int // machine index, -1 for the network root
	Socket  int // socket index within the machine, -1 above socket level
	Index   int // GPU index within the machine, -1 for non-GPU nodes
}

// Link describes one physical interconnect edge.
type Link struct {
	A, B      int // node IDs, A < B
	Type      LinkType
	Bandwidth float64 // GB/s, unidirectional
	Weight    float64 // qualitative distance weight
}

// Topology is an immutable physical topology graph plus the derived
// GPU-to-GPU distance and bandwidth matrices. Build one with a builder
// (Power8Minsky, DGX1, PCIeBox, Cluster, or ParseMatrix) and share it
// freely: all methods are safe for concurrent readers.
type Topology struct {
	Name string
	// RoutingPenalty divides the bottleneck bandwidth of routed (non-P2P)
	// paths, modelling the staging of transfers through host memory and
	// the contention on the inter-socket bus. Calibrated per machine
	// class against §3.2 of the paper (see DESIGN.md).
	RoutingPenalty float64

	nodes []Node
	links []Link
	g     *graph.Graph

	gpus     []int // node IDs of GPU vertices, ordered by (machine, index)
	machines []int // node IDs of machine vertices

	// Per-machine dense matrices (GPU positions of a machine are
	// contiguous, so machineStart[m] maps positions to local indices).
	// Paths never route through other GPUs: real GPUs do not forward
	// traffic, so distances use a restricted Dijkstra that only expands
	// host-infrastructure vertices.
	machineOf    []int // GPU position -> machine order index (0..NumMachines-1)
	machineStart []int // machine order index -> first GPU position
	intraDist    [][][]float64
	intraBW      [][][]float64
	intraP2P     [][][]bool

	// Cross-machine composition: GPU -> machine-vertex distance plus
	// machine -> network-root distance, composed hierarchically so
	// cluster topologies need no dense GPU×GPU matrix.
	toRootDist []float64 // per GPU position
	toRootBW   []float64
	netDist    []float64 // per machine order index: machine vertex -> network root
	netBW      []float64
	hasNet     bool

	// Lookup tables built once: machine value -> GPU positions, socket
	// membership, and socket indices per machine.
	machineGPUs    map[int][]int
	socketGPUs     map[socketKey][]int
	machineSockets map[int][]int

	adj     [][]adjEdge
	adjOnce sync.Once

	// Extreme pair distances, precomputed at Build time so the placement
	// hot path (core.sideUtility calls MinPairDistance per recursion step)
	// reads two floats instead of re-scanning every GPU of the cluster.
	minPairDist float64
	maxPairDist float64

	// Extreme-allocation memoization. The maps are guarded by mu; each
	// size's result is computed exactly once inside its entry's sync.Once,
	// so concurrent readers sharing one topology (the sweep engine's
	// substrate cache) neither race nor duplicate the expensive greedy
	// search. Cached slices are returned as-is and must not be mutated.
	mu         sync.Mutex
	extremeMin map[int]*extremeEntry // cached BestAllocation by g
	extremeMax map[int]*extremeEntry // cached WorstAllocation by g
}

// extremeEntry memoizes one extreme allocation and its pairwise-distance
// sum. The once gate makes initialization safe and single-shot under
// concurrent readers without holding the topology mutex during the search.
type extremeEntry struct {
	once sync.Once
	set  []int
	cost float64
}

// Builder incrementally constructs a Topology.
type Builder struct {
	t *Topology
}

// NewBuilder returns a Builder for a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: &Topology{
		Name:           name,
		RoutingPenalty: 3.5,
		g:              graph.New(),
	}}
}

// SetRoutingPenalty overrides the routed-path bandwidth penalty.
func (b *Builder) SetRoutingPenalty(p float64) *Builder {
	b.t.RoutingPenalty = p
	return b
}

// AddNode adds a vertex at the given level and returns its ID.
func (b *Builder) AddNode(level Level, name string, machine, socket, index int) int {
	id := b.t.g.AddVertex(name)
	b.t.nodes = append(b.t.nodes, Node{
		ID: id, Level: level, Name: name,
		Machine: machine, Socket: socket, Index: index,
	})
	switch level {
	case LevelGPU:
		b.t.gpus = append(b.t.gpus, id)
	case LevelMachine:
		b.t.machines = append(b.t.machines, id)
	}
	return id
}

// AddLink connects two nodes with the given technology, bandwidth (GB/s)
// and qualitative weight.
func (b *Builder) AddLink(a, c int, typ LinkType, bandwidth, weight float64) *Builder {
	lo, hi := a, c
	if lo > hi {
		lo, hi = hi, lo
	}
	b.t.links = append(b.t.links, Link{A: lo, B: hi, Type: typ, Bandwidth: bandwidth, Weight: weight})
	b.t.g.AddEdge(a, c, weight)
	return b
}

// Build finalizes the topology, computing the GPU distance, bandwidth and
// P2P matrices. The Builder must not be reused afterwards.
func (b *Builder) Build() *Topology {
	t := b.t
	b.t = nil
	// Order GPUs by (machine, index) so that GPU positions are stable.
	sort.Slice(t.gpus, func(i, j int) bool {
		ni, nj := t.nodes[t.gpus[i]], t.nodes[t.gpus[j]]
		if ni.Machine != nj.Machine {
			return ni.Machine < nj.Machine
		}
		return ni.Index < nj.Index
	})
	t.computeMatrices()
	return t
}

// NumGPUs returns the number of GPU vertices.
func (t *Topology) NumGPUs() int { return len(t.gpus) }

// NumMachines returns the number of machine vertices.
func (t *Topology) NumMachines() int { return len(t.machines) }

// NumNodes returns the total number of vertices at all levels.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the metadata of node id.
func (t *Topology) Node(id int) Node { return t.nodes[id] }

// Links returns a copy of all physical links.
func (t *Topology) Links() []Link { return append([]Link(nil), t.links...) }

// GPUID returns the node ID of the GPU at position pos (0-based, ordered by
// machine then local index).
func (t *Topology) GPUID(pos int) int { return t.gpus[pos] }

// GPUPosition returns the position of the GPU with the given node ID, or -1.
func (t *Topology) GPUPosition(nodeID int) int {
	for i, id := range t.gpus {
		if id == nodeID {
			return i
		}
	}
	return -1
}

// GPU returns the node metadata of the GPU at position pos.
func (t *Topology) GPU(pos int) Node { return t.nodes[t.gpus[pos]] }

// GPUsOfMachine returns the GPU positions belonging to machine m. The
// returned slice is shared and must not be mutated.
func (t *Topology) GPUsOfMachine(m int) []int {
	if lst, ok := t.machineGPUs[m]; ok {
		return lst
	}
	return nil
}

// GPUsOfSocket returns the GPU positions of socket s on machine m. The
// returned slice is shared and must not be mutated.
func (t *Topology) GPUsOfSocket(m, s int) []int {
	return t.socketGPUs[socketKey{m, s}]
}

// Sockets returns the distinct socket indices on machine m, ascending.
// The returned slice is shared and must not be mutated.
func (t *Topology) Sockets(m int) []int {
	return t.machineSockets[m]
}

// NumSockets returns the total socket count across all machines.
func (t *Topology) NumSockets() int { return len(t.socketGPUs) }

// Distance returns the shortest-path topological distance between the GPUs
// at positions a and b (0 when a == b). This realizes the path-distance
// definition of §4.1.2, with the physical restriction that paths never
// route through third GPUs (GPUs do not forward traffic).
func (t *Topology) Distance(a, b int) float64 {
	if a == b {
		return 0
	}
	ma, mb := t.machineOf[a], t.machineOf[b]
	if ma == mb {
		la, lb := a-t.machineStart[ma], b-t.machineStart[ma]
		return t.intraDist[ma][la][lb]
	}
	if !t.hasNet {
		return graph.Inf
	}
	return t.toRootDist[a] + t.netDist[ma] + t.netDist[mb] + t.toRootDist[b]
}

// RootDistance returns the attachment cost of the GPU at pos toward the
// network root: the toRootDist component of every cross-machine Distance.
// 0 when the topology has no network fabric (cross-machine distances are
// then infinite and the component never contributes).
func (t *Topology) RootDistance(pos int) float64 {
	if !t.hasNet {
		return 0
	}
	return t.toRootDist[pos]
}

// PathBandwidth returns the nominal bottleneck bandwidth (GB/s) along the
// shortest path between GPU positions a and b.
func (t *Topology) PathBandwidth(a, b int) float64 {
	if a == b {
		return 0
	}
	ma, mb := t.machineOf[a], t.machineOf[b]
	if ma == mb {
		la, lb := a-t.machineStart[ma], b-t.machineStart[ma]
		return t.intraBW[ma][la][lb]
	}
	if !t.hasNet {
		return 0
	}
	return min4(t.toRootBW[a], t.netBW[ma], t.netBW[mb], t.toRootBW[b])
}

// EffectiveBandwidth returns the bandwidth usable by GPU-to-GPU
// communication between positions a and b: the nominal bottleneck for
// peer-to-peer paths, or the bottleneck divided by the routing penalty when
// the transfer must be staged through host memory (§1: "communication ...
// routed through the main memory of the processors").
func (t *Topology) EffectiveBandwidth(a, b int) float64 {
	if a == b {
		return 0
	}
	if t.P2P(a, b) {
		return t.PathBandwidth(a, b)
	}
	return t.PathBandwidth(a, b) / t.RoutingPenalty
}

// P2P reports whether GPUs at positions a and b can communicate
// peer-to-peer: they share a direct NVLink edge, or their path traverses
// only PCIe switch vertices (no host routing).
func (t *Topology) P2P(a, b int) bool {
	if a == b {
		return false
	}
	ma, mb := t.machineOf[a], t.machineOf[b]
	if ma != mb {
		return false
	}
	la, lb := a-t.machineStart[ma], b-t.machineStart[ma]
	return t.intraP2P[ma][la][lb]
}

func min4(a, b, c, d float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}

// SameMachine reports whether two GPU positions are on the same machine.
func (t *Topology) SameMachine(a, b int) bool {
	return t.nodes[t.gpus[a]].Machine == t.nodes[t.gpus[b]].Machine
}

// SameSocket reports whether two GPU positions share machine and socket.
func (t *Topology) SameSocket(a, b int) bool {
	na, nb := t.nodes[t.gpus[a]], t.nodes[t.gpus[b]]
	return na.Machine == nb.Machine && na.Socket == nb.Socket
}

// MinPairDistance returns the smallest non-zero GPU-to-GPU distance in the
// topology — the best case used to normalize communication cost. The value
// is precomputed at Build time: this accessor sits on the placement hot
// path (once per DRB recursion step) and profiles showed the former
// rescan-the-cluster implementation dominating scenario-2 runs.
func (t *Topology) MinPairDistance() float64 { return t.minPairDist }

// MaxPairDistance returns the largest GPU-to-GPU distance — the worst case
// t_w used by the objective function normalization (Eq. 1). Precomputed at
// Build time.
func (t *Topology) MaxPairDistance() float64 { return t.maxPairDist }

// computeMinPairDistance scans for the smallest non-zero pair distance.
func (t *Topology) computeMinPairDistance() float64 {
	best := graph.Inf
	// Intra-machine candidates.
	for mi := range t.intraDist {
		m := t.intraDist[mi]
		for i := range m {
			for j := i + 1; j < len(m); j++ {
				if m[i][j] < best {
					best = m[i][j]
				}
			}
		}
	}
	// Cross-machine candidates: the two cheapest GPU-to-root attachments
	// on distinct machines.
	if t.hasNet && len(t.machineStart) > 1 {
		best = minFloat(best, t.extremeCrossPair(false))
	}
	return best
}

// computeMaxPairDistance scans for the largest finite pair distance.
func (t *Topology) computeMaxPairDistance() float64 {
	worst := 0.0
	for mi := range t.intraDist {
		m := t.intraDist[mi]
		for i := range m {
			for j := i + 1; j < len(m); j++ {
				if m[i][j] > worst && m[i][j] < graph.Inf {
					worst = m[i][j]
				}
			}
		}
	}
	if t.hasNet && len(t.machineStart) > 1 {
		if c := t.extremeCrossPair(true); c > worst && c < graph.Inf {
			worst = c
		}
	}
	return worst
}

// extremeCrossPair returns the minimal (or maximal) cross-machine pair
// distance: the sum of the two extreme GPU-to-network attachment costs on
// distinct machines.
func (t *Topology) extremeCrossPair(maximize bool) float64 {
	type att struct {
		cost    float64
		machine int
	}
	best1 := att{cost: graph.Inf, machine: -1}
	best2 := att{cost: graph.Inf, machine: -1}
	if maximize {
		best1.cost, best2.cost = -1, -1
	}
	better := func(a, b float64) bool {
		if maximize {
			return a > b
		}
		return a < b
	}
	for pos := range t.gpus {
		mi := t.machineOf[pos]
		c := t.toRootDist[pos] + t.netDist[mi]
		if better(c, best1.cost) {
			if best1.machine != mi {
				best2 = best1
			}
			best1 = att{cost: c, machine: mi}
		} else if mi != best1.machine && better(c, best2.cost) {
			best2 = att{cost: c, machine: mi}
		}
	}
	if best1.machine == -1 || best2.machine == -1 {
		if maximize {
			return 0
		}
		return graph.Inf
	}
	return best1.cost + best2.cost
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Graph exposes the underlying weighted graph (read-only use).
func (t *Topology) Graph() *graph.Graph { return t.g }

// socketKey identifies a socket by (machine value, socket index).
type socketKey struct{ Machine, Socket int }

// computeMatrices derives the per-machine distance/bandwidth/P2P matrices
// and the hierarchical cross-machine aggregates. Distances use a
// restricted Dijkstra that never expands a GPU vertex other than the
// source: physical GPUs do not forward traffic, so a GPU can terminate a
// path but never relay one.
func (t *Topology) computeMatrices() {
	t.extremeMin = map[int]*extremeEntry{}
	t.extremeMax = map[int]*extremeEntry{}

	t.machineGPUs = map[int][]int{}
	t.socketGPUs = map[socketKey][]int{}
	t.machineSockets = map[int][]int{}
	for pos, id := range t.gpus {
		nd := t.nodes[id]
		t.machineGPUs[nd.Machine] = append(t.machineGPUs[nd.Machine], pos)
		k := socketKey{nd.Machine, nd.Socket}
		if len(t.socketGPUs[k]) == 0 {
			t.machineSockets[nd.Machine] = append(t.machineSockets[nd.Machine], nd.Socket)
		}
		t.socketGPUs[k] = append(t.socketGPUs[k], pos)
	}
	for m := range t.machineSockets {
		sort.Ints(t.machineSockets[m])
	}

	n := len(t.gpus)
	t.machineOf = make([]int, n)
	// Machine order indices follow the sorted GPU ordering, so each
	// machine's GPU positions are contiguous.
	var machineIDs []int // distinct Node.Machine values, in position order
	for pos, id := range t.gpus {
		m := t.nodes[id].Machine
		if len(machineIDs) == 0 || machineIDs[len(machineIDs)-1] != m {
			machineIDs = append(machineIDs, m)
			t.machineStart = append(t.machineStart, pos)
		}
		t.machineOf[pos] = len(machineIDs) - 1
	}

	t.toRootDist = make([]float64, n)
	t.toRootBW = make([]float64, n)
	t.intraDist = make([][][]float64, len(machineIDs))
	t.intraBW = make([][][]float64, len(machineIDs))
	t.intraP2P = make([][][]bool, len(machineIDs))

	// Machine-vertex node ID per machine order index.
	machineNode := make([]int, len(machineIDs))
	for mi, mID := range machineIDs {
		machineNode[mi] = -1
		for _, nodeID := range t.machines {
			if t.nodes[nodeID].Machine == mID {
				machineNode[mi] = nodeID
				break
			}
		}
	}

	for mi := range machineIDs {
		start := t.machineStart[mi]
		end := n
		if mi+1 < len(t.machineStart) {
			end = t.machineStart[mi+1]
		}
		k := end - start
		t.intraDist[mi] = make([][]float64, k)
		t.intraBW[mi] = make([][]float64, k)
		t.intraP2P[mi] = make([][]bool, k)
		for li := 0; li < k; li++ {
			src := t.gpus[start+li]
			dist, bw, crossHost := t.restrictedDijkstra(src)
			t.intraDist[mi][li] = make([]float64, k)
			t.intraBW[mi][li] = make([]float64, k)
			t.intraP2P[mi][li] = make([]bool, k)
			for lj := 0; lj < k; lj++ {
				dst := t.gpus[start+lj]
				t.intraDist[mi][li][lj] = dist[dst]
				t.intraBW[mi][li][lj] = bw[dst]
				t.intraP2P[mi][li][lj] = li != lj && dist[dst] < graph.Inf && !crossHost[dst]
			}
			if mv := machineNode[mi]; mv >= 0 {
				t.toRootDist[start+li] = dist[mv]
				t.toRootBW[start+li] = bw[mv]
			}
		}
	}

	// Network aggregates: distance and widest-path bandwidth from each
	// machine vertex to the (single) network root.
	netRoot := -1
	for _, nd := range t.nodes {
		if nd.Level == LevelNetwork {
			netRoot = nd.ID
			break
		}
	}
	t.hasNet = netRoot >= 0
	t.netDist = make([]float64, len(machineIDs))
	t.netBW = make([]float64, len(machineIDs))
	if t.hasNet {
		dist, bw, _ := t.restrictedDijkstra(netRoot)
		for mi, mv := range machineNode {
			if mv >= 0 {
				t.netDist[mi] = dist[mv]
				t.netBW[mi] = bw[mv]
			} else {
				t.netDist[mi] = graph.Inf
			}
		}
	}

	t.minPairDist = t.computeMinPairDistance()
	t.maxPairDist = t.computeMaxPairDistance()
}

// restrictedDijkstra runs Dijkstra from src over the topology where GPU
// vertices other than src are never expanded (they can terminate but not
// relay paths — physical GPUs do not forward traffic) and network vertices
// other than src are likewise terminal (confining GPU-sourced searches to
// their machine; cross-machine distances compose hierarchically). It
// returns, per node: the distance, the bottleneck bandwidth of the best
// path, and whether that path crossed a host vertex (socket, machine or
// network) — the P2P criterion.
func (t *Topology) restrictedDijkstra(src int) (dist, bw []float64, crossHost []bool) {
	nn := len(t.nodes)
	dist = make([]float64, nn)
	bw = make([]float64, nn)
	crossHost = make([]bool, nn)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	bw[src] = graph.Inf

	t.adjOnce.Do(t.buildAdjacency)

	pq := &topoHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heapPop(pq)
		if it.d > dist[it.v] {
			continue
		}
		lvl := t.nodes[it.v].Level
		// GPUs and network roots other than the source terminate paths.
		if it.v != src && (lvl == LevelGPU || lvl == LevelNetwork) {
			continue
		}
		relayIsHost := lvl != LevelGPU && lvl != LevelSwitch
		for _, e := range t.adj[it.v] {
			nd := it.d + e.w
			if nd < dist[e.to]-1e-12 {
				dist[e.to] = nd
				nb := bw[it.v]
				if e.bw < nb {
					nb = e.bw
				}
				bw[e.to] = nb
				crossHost[e.to] = crossHost[it.v] || relayIsHost
				heapPush(pq, topoItem{v: e.to, d: nd})
			}
		}
	}
	return dist, bw, crossHost
}

type adjEdge struct {
	to int
	w  float64
	bw float64
}

// buildAdjacency materializes the link adjacency with per-edge bandwidths,
// shared by all restrictedDijkstra calls.
func (t *Topology) buildAdjacency() {
	t.adj = make([][]adjEdge, len(t.nodes))
	for _, l := range t.links {
		t.adj[l.A] = append(t.adj[l.A], adjEdge{to: l.B, w: l.Weight, bw: l.Bandwidth})
		t.adj[l.B] = append(t.adj[l.B], adjEdge{to: l.A, w: l.Weight, bw: l.Bandwidth})
	}
}

type topoItem struct {
	v int
	d float64
}

type topoHeap []topoItem

func (h topoHeap) less(i, j int) bool { return h[i].d < h[j].d }
func (h topoHeap) Len() int           { return len(h) }

func heapPush(h *topoHeap, it topoItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func heapPop(h *topoHeap) topoItem {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && (*h).less(l, smallest) {
			smallest = l
		}
		if r < len(*h) && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
