package topology

import (
	"math"
	"testing"
)

func TestMinskyStructure(t *testing.T) {
	topo := Power8Minsky()
	if topo.NumGPUs() != 4 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	if topo.NumMachines() != 1 {
		t.Fatalf("machines = %d", topo.NumMachines())
	}
	// 1 machine + 2 sockets + 4 GPUs.
	if topo.NumNodes() != 7 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
	if got := topo.Sockets(0); len(got) != 2 {
		t.Fatalf("sockets = %v", got)
	}
	if got := topo.GPUsOfSocket(0, 0); len(got) != 2 {
		t.Fatalf("socket 0 GPUs = %v", got)
	}
}

func TestMinskyDistances(t *testing.T) {
	topo := Power8Minsky()
	// Same socket: direct NVLink edge, weight 1.
	if d := topo.Distance(0, 1); d != 1 {
		t.Fatalf("intra-socket distance = %v", d)
	}
	if d := topo.Distance(2, 3); d != 1 {
		t.Fatalf("intra-socket distance (socket 1) = %v", d)
	}
	// Cross socket: GPU -> socket (1) -> machine (20) -> socket (20) ->
	// GPU (1) = 42.
	if d := topo.Distance(0, 2); d != 42 {
		t.Fatalf("cross-socket distance = %v", d)
	}
	// Symmetry and zero diagonal.
	for i := 0; i < 4; i++ {
		if topo.Distance(i, i) != 0 {
			t.Fatalf("self distance nonzero at %d", i)
		}
		for j := 0; j < 4; j++ {
			if topo.Distance(i, j) != topo.Distance(j, i) {
				t.Fatalf("asymmetric distance %d-%d", i, j)
			}
		}
	}
}

func TestMinskyP2PAndBandwidth(t *testing.T) {
	topo := Power8Minsky()
	if !topo.P2P(0, 1) || !topo.P2P(2, 3) {
		t.Fatal("intra-socket pairs must be P2P (direct NVLink)")
	}
	if topo.P2P(0, 2) || topo.P2P(1, 3) {
		t.Fatal("cross-socket pairs must not be P2P")
	}
	if topo.P2P(1, 1) {
		t.Fatal("self pair cannot be P2P")
	}
	if bw := topo.PathBandwidth(0, 1); bw != BandwidthNVLink2 {
		t.Fatalf("intra-socket bandwidth = %v", bw)
	}
	if bw := topo.PathBandwidth(0, 2); bw != BandwidthXBus {
		t.Fatalf("cross-socket bottleneck = %v", bw)
	}
	// Effective bandwidth: P2P keeps nominal; routed takes the penalty.
	if e := topo.EffectiveBandwidth(0, 1); e != BandwidthNVLink2 {
		t.Fatalf("P2P effective bandwidth = %v", e)
	}
	want := BandwidthXBus / topo.RoutingPenalty
	if e := topo.EffectiveBandwidth(0, 2); math.Abs(e-want) > 1e-9 {
		t.Fatalf("routed effective bandwidth = %v, want %v", e, want)
	}
}

func TestMinskySameSocketSameMachine(t *testing.T) {
	topo := Power8Minsky()
	if !topo.SameSocket(0, 1) || topo.SameSocket(0, 2) {
		t.Fatal("SameSocket wrong")
	}
	if !topo.SameMachine(0, 3) {
		t.Fatal("SameMachine wrong")
	}
}

func TestDGX1Structure(t *testing.T) {
	topo := DGX1()
	if topo.NumGPUs() != 8 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	// Every GPU has exactly 4 NVLink peers (hybrid cube mesh).
	for i := 0; i < 8; i++ {
		peers := 0
		for _, l := range topo.Links() {
			if l.Type != LinkNVLink {
				continue
			}
			na, nb := topo.Node(l.A), topo.Node(l.B)
			if na.Level == LevelGPU && nb.Level == LevelGPU &&
				(na.Index == i || nb.Index == i) {
				peers++
			}
		}
		if peers != 4 {
			t.Fatalf("GPU%d has %d NVLink peers, want 4", i, peers)
		}
	}
	// NVLink-adjacent GPUs are at distance 1 and P2P.
	if d := topo.Distance(0, 1); d != 1 {
		t.Fatalf("NVLink pair distance = %v", d)
	}
	if !topo.P2P(0, 1) {
		t.Fatal("NVLink pair not P2P")
	}
	// GPU0 and GPU5 share no NVLink; their path crosses PCIe/QPI.
	if topo.P2P(0, 5) {
		t.Fatal("GPU0-GPU5 should not be P2P on DGX-1")
	}
	// GPUs under the same PCIe switch without NVLink would be P2P via the
	// switch; on the P100 DGX-1 all same-switch pairs also have NVLink.
	if d := topo.Distance(0, 5); d <= 1 {
		t.Fatalf("distant pair distance = %v", d)
	}
}

func TestPCIeBoxStructure(t *testing.T) {
	topo := PCIeBox()
	if topo.NumGPUs() != 4 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	// Same-switch pairs communicate P2P over the switch.
	if !topo.P2P(0, 1) {
		t.Fatal("same-switch PCIe pair should be P2P")
	}
	if topo.P2P(0, 2) {
		t.Fatal("cross-socket PCIe pair should not be P2P")
	}
	if bw := topo.PathBandwidth(0, 1); bw != BandwidthPCIe {
		t.Fatalf("PCIe switch bandwidth = %v", bw)
	}
	// Same-switch distance: GPU -> switch -> GPU = 2.
	if d := topo.Distance(0, 1); d != 2 {
		t.Fatalf("same-switch distance = %v", d)
	}
}

func TestClusterTopology(t *testing.T) {
	topo := Cluster(3, KindMinsky)
	if topo.NumGPUs() != 12 {
		t.Fatalf("GPUs = %d", topo.NumGPUs())
	}
	if topo.NumMachines() != 3 {
		t.Fatalf("machines = %d", topo.NumMachines())
	}
	// Cross-machine pairs are connected through the network and never P2P.
	if topo.P2P(0, 4) {
		t.Fatal("cross-machine pair reported P2P")
	}
	if topo.SameMachine(0, 4) {
		t.Fatal("GPUs 0 and 4 are on different machines")
	}
	// Cross-machine distance must exceed any intra-machine distance.
	if topo.Distance(0, 4) <= topo.Distance(0, 2) {
		t.Fatalf("cross-machine %v <= cross-socket %v", topo.Distance(0, 4), topo.Distance(0, 2))
	}
	// GPUsOfMachine partitioning.
	total := 0
	for m := 0; m < 3; m++ {
		total += len(topo.GPUsOfMachine(m))
	}
	if total != 12 {
		t.Fatalf("machine partition covers %d GPUs", total)
	}
}

func TestClusterKinds(t *testing.T) {
	if got := Cluster(2, KindDGX1).NumGPUs(); got != 16 {
		t.Fatalf("DGX1 cluster GPUs = %d", got)
	}
	if got := Cluster(2, KindPCIeBox).NumGPUs(); got != 8 {
		t.Fatalf("PCIe cluster GPUs = %d", got)
	}
}

func TestMinMaxPairDistance(t *testing.T) {
	topo := Power8Minsky()
	if min := topo.MinPairDistance(); min != 1 {
		t.Fatalf("min pair distance = %v", min)
	}
	if max := topo.MaxPairDistance(); max != 42 {
		t.Fatalf("max pair distance = %v", max)
	}
}

func TestGPUPositionRoundTrip(t *testing.T) {
	topo := DGX1()
	for pos := 0; pos < topo.NumGPUs(); pos++ {
		id := topo.GPUID(pos)
		if got := topo.GPUPosition(id); got != pos {
			t.Fatalf("position %d -> id %d -> position %d", pos, id, got)
		}
	}
	if topo.GPUPosition(-1) != -1 {
		t.Fatal("unknown node should map to -1")
	}
}

func TestBestWorstAllocationMinsky(t *testing.T) {
	topo := Power8Minsky()
	best2 := topo.BestAllocation(2)
	if !topo.SameSocket(best2[0], best2[1]) {
		t.Fatalf("best 2-GPU allocation %v not same socket", best2)
	}
	worst2 := topo.WorstAllocation(2)
	if topo.SameSocket(worst2[0], worst2[1]) {
		t.Fatalf("worst 2-GPU allocation %v same socket", worst2)
	}
	if topo.BestCommCost(2) != 1 || topo.WorstCommCost(2) != 42 {
		t.Fatalf("comm costs = %v, %v", topo.BestCommCost(2), topo.WorstCommCost(2))
	}
	if topo.BestCommCost(1) != 0 {
		t.Fatal("single GPU comm cost must be 0")
	}
	// Requesting more GPUs than exist clamps.
	if got := topo.BestAllocation(10); len(got) != 4 {
		t.Fatalf("clamped allocation = %v", got)
	}
	if topo.BestAllocation(0) != nil {
		t.Fatal("zero GPUs should yield nil")
	}
}

// TestBestAllocationMatchesBruteForce verifies the greedy extremal search
// against exhaustive enumeration on Minsky and DGX-1.
func TestBestAllocationMatchesBruteForce(t *testing.T) {
	for _, topo := range []*Topology{Power8Minsky(), DGX1()} {
		n := topo.NumGPUs()
		for g := 2; g <= 4; g++ {
			bestBrute := math.Inf(1)
			worstBrute := 0.0
			enumerate(n, g, func(set []int) {
				d := topo.PairwiseDistance(set)
				if d < bestBrute {
					bestBrute = d
				}
				if d > worstBrute {
					worstBrute = d
				}
			})
			if got := topo.BestCommCost(g); math.Abs(got-bestBrute) > 1e-9 {
				t.Fatalf("%s best(%d) = %v, brute force %v", topo.Name, g, got, bestBrute)
			}
			if got := topo.WorstCommCost(g); math.Abs(got-worstBrute) > 1e-9 {
				t.Fatalf("%s worst(%d) = %v, brute force %v", topo.Name, g, got, worstBrute)
			}
		}
	}
}

func enumerate(n, k int, f func([]int)) {
	set := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			f(set)
			return
		}
		for v := start; v < n; v++ {
			set[idx] = v
			rec(v+1, idx+1)
		}
	}
	rec(0, 0)
}

func TestHeterogeneousClusterStructure(t *testing.T) {
	topo, err := HeterogeneousCluster([]MachineSpec{
		{Kind: KindMinsky, Count: 2},
		{Kind: KindDGX1, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 2*4+8 {
		t.Fatalf("GPUs = %d, want 16", topo.NumGPUs())
	}
	if topo.NumMachines() != 3 {
		t.Fatalf("machines = %d, want 3", topo.NumMachines())
	}
	if topo.Name != "Cluster-minsky:2+dgx1:1" {
		t.Fatalf("name = %q", topo.Name)
	}
	// Machines appear in spec order: M0,M1 Minsky (4 GPUs), M2 DGX-1 (8).
	if got := len(topo.GPUsOfMachine(0)); got != 4 {
		t.Fatalf("machine 0 has %d GPUs, want 4", got)
	}
	if got := len(topo.GPUsOfMachine(2)); got != 8 {
		t.Fatalf("machine 2 has %d GPUs, want 8", got)
	}
	// Cross-machine pairs route over the network, never P2P.
	if topo.P2P(0, 8) || topo.SameMachine(0, 8) {
		t.Fatal("minsky GPU 0 and dgx1 GPU 8 must be on different machines, not P2P")
	}
	if topo.Distance(0, 8) <= topo.Distance(0, 2) {
		t.Fatalf("cross-machine %v <= cross-socket %v", topo.Distance(0, 8), topo.Distance(0, 2))
	}
	// NVLink machines present: the mixed cluster stages routed transfers
	// through host memory like its NVLink members.
	if topo.RoutingPenalty != 3.5 {
		t.Fatalf("routing penalty = %v, want 3.5", topo.RoutingPenalty)
	}
	// All-PCIe mixes keep the PCIe penalty.
	pcie, err := HeterogeneousCluster([]MachineSpec{{Kind: KindPCIeBox, Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if pcie.RoutingPenalty != 2.5 {
		t.Fatalf("all-PCIe mix penalty = %v, want 2.5", pcie.RoutingPenalty)
	}
}

func TestHeterogeneousClusterErrors(t *testing.T) {
	if _, err := HeterogeneousCluster(nil); err == nil {
		t.Fatal("empty spec list did not error")
	}
	if _, err := HeterogeneousCluster([]MachineSpec{{Kind: KindMinsky, Count: 0}}); err == nil {
		t.Fatal("zero machine count did not error")
	}
	if _, err := HeterogeneousCluster([]MachineSpec{{Kind: MachineKind(99), Count: 1}}); err == nil {
		t.Fatal("unknown machine kind did not error")
	}
}

func TestParseMix(t *testing.T) {
	specs, err := ParseMix("minsky:2+dgx1:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []MachineSpec{{Kind: KindMinsky, Count: 2}, {Kind: KindDGX1, Count: 1}}
	if len(specs) != 2 || specs[0] != want[0] || specs[1] != want[1] {
		t.Fatalf("ParseMix = %v, want %v", specs, want)
	}
	if got := MixString(specs); got != "minsky:2+dgx1:1" {
		t.Fatalf("MixString = %q", got)
	}
	for _, bad := range []string{"", "minsky", "minsky:0", "minsky:x", "tpu:2", "minsky:2+"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) did not error", bad)
		}
	}
}

// TestHeteroAllocationMatchesBruteForce is the regression test for the
// allocation-symmetry bug: extremeAllocation used to seed only from the
// first two machines "by symmetry", but on minsky,minsky,minsky,dgx1 the
// true best 8-GPU allocation is the DGX-1's own eight GPUs — unreachable
// from a Minsky seed, because every greedy set contains its seed. The
// cluster is sized past the seed-limiting threshold (20 GPUs > 16, 4
// machines > 2) so the heuristic path is the one under test.
func TestHeteroAllocationMatchesBruteForce(t *testing.T) {
	topo, err := HeterogeneousCluster([]MachineSpec{
		{Kind: KindMinsky, Count: 3},
		{Kind: KindDGX1, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NumGPUs()
	if n != 20 {
		t.Fatalf("GPUs = %d, want 20", n)
	}
	for _, g := range []int{2, 4, 6, 8} {
		bestBrute := math.Inf(1)
		worstBrute := 0.0
		enumerate(n, g, func(set []int) {
			d := topo.PairwiseDistance(set)
			if d < bestBrute {
				bestBrute = d
			}
			if d > worstBrute {
				worstBrute = d
			}
		})
		if got := topo.BestCommCost(g); math.Abs(got-bestBrute) > 1e-9 {
			t.Fatalf("best(%d) = %v, brute force %v", g, got, bestBrute)
		}
		if got := topo.WorstCommCost(g); math.Abs(got-worstBrute) > 1e-9 {
			t.Fatalf("worst(%d) = %v, brute force %v", g, got, worstBrute)
		}
	}
	// The optimal 8-GPU allocation lives entirely inside the DGX-1
	// (positions 12..19) — the witness the old first-two-machines seeding
	// could never produce.
	for _, pos := range topo.BestAllocation(8) {
		if pos < 12 {
			t.Fatalf("best 8-GPU allocation %v leaks out of the DGX-1", topo.BestAllocation(8))
		}
	}
}

func TestCustomLevelWeightsPreserveOrdering(t *testing.T) {
	for _, w := range []float64{5, 50, 500} {
		topo := Power8MinskyWeights(LevelWeights{Socket: w})
		if topo.Distance(0, 1) >= topo.Distance(0, 2) {
			t.Fatalf("socket weight %v: intra >= cross distance", w)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("test")
	a := b.AddNode(LevelMachine, "M0", 0, -1, -1)
	c := b.AddNode(LevelGPU, "G0", 0, 0, 0)
	b.AddLink(a, c, LinkPCIe, BandwidthPCIe, 1)
	topo := b.Build()
	if topo.NumGPUs() != 1 || topo.NumMachines() != 1 {
		t.Fatal("builder produced wrong counts")
	}
	if topo.Name != "test" {
		t.Fatalf("name = %q", topo.Name)
	}
}

func TestLevelAndLinkStrings(t *testing.T) {
	cases := map[string]string{
		LevelNetwork.String(): "Net",
		LevelGPU.String():     "GPU",
		LinkNVLink2.String():  "NVLink2",
		LinkXBus.String():     "X-Bus",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("string %q, want %q", got, want)
		}
	}
	if Level(99).String() == "" || LinkType(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}
