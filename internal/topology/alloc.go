package topology

import "sort"

// PairwiseDistance returns the sum of pairwise shortest-path distances
// among the GPU positions in set — the communication cost t of Eq. 3.
func (t *Topology) PairwiseDistance(set []int) float64 {
	var sum float64
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			sum += t.Distance(set[i], set[j])
		}
	}
	return sum
}

// BestAllocation returns g GPU positions minimizing the pairwise distance
// sum on an empty topology — the ideal placement the utility function
// normalizes against. Results are cached per g and must not be mutated.
func (t *Topology) BestAllocation(g int) []int {
	return t.extremeAllocation(g, false)
}

// WorstAllocation returns g GPU positions maximizing the pairwise distance
// sum — the worst case t_w of the objective function (Eq. 1). Results are
// cached per g and must not be mutated.
func (t *Topology) WorstAllocation(g int) []int {
	return t.extremeAllocation(g, true)
}

// BestCommCost returns the pairwise-distance sum of the best allocation of
// g GPUs (0 for g < 2).
func (t *Topology) BestCommCost(g int) float64 {
	if g < 2 {
		return 0
	}
	return t.PairwiseDistance(t.BestAllocation(g))
}

// WorstCommCost returns the pairwise-distance sum of the worst allocation
// of g GPUs (0 for g < 2).
func (t *Topology) WorstCommCost(g int) float64 {
	if g < 2 {
		return 0
	}
	return t.PairwiseDistance(t.WorstAllocation(g))
}

// extremeAllocation greedily grows a GPU set from a set of seeds, keeping
// the set with extreme pairwise distance. Machines hold at most 8 GPUs, so
// greedy growth matches the exhaustive optimum on the topologies built
// here (verified by tests against brute force). On clusters with many
// identical machines the seed set is limited to the first two machines —
// by symmetry every extreme allocation is reachable from them.
func (t *Topology) extremeAllocation(g int, maximize bool) []int {
	n := len(t.gpus)
	if g <= 0 {
		return nil
	}
	if g > n {
		g = n
	}
	t.mu.Lock()
	cache := t.extremeMin
	if maximize {
		cache = t.extremeMax
	}
	if got, ok := cache[g]; ok {
		t.mu.Unlock()
		return got
	}
	t.mu.Unlock()

	var result []int
	if g == n {
		result = make([]int, n)
		for i := range result {
			result[i] = i
		}
	} else {
		seedLimit := n
		if len(t.machineStart) > 2 && n > 16 {
			seedLimit = t.machineStart[2] // GPUs of the first two machines
		}
		bestScore := 0.0
		var bestSet []int
		used := make([]bool, n)
		for seed := 0; seed < seedLimit; seed++ {
			set := append(make([]int, 0, g), seed)
			for i := range used {
				used[i] = false
			}
			used[seed] = true
			for len(set) < g {
				cand, candScore := -1, 0.0
				for v := 0; v < n; v++ {
					if used[v] {
						continue
					}
					var d float64
					for _, u := range set {
						d += t.Distance(u, v)
					}
					if cand == -1 || (maximize && d > candScore) || (!maximize && d < candScore) {
						cand, candScore = v, d
					}
				}
				set = append(set, cand)
				used[cand] = true
			}
			score := t.PairwiseDistance(set)
			if bestSet == nil || (maximize && score > bestScore) || (!maximize && score < bestScore) {
				bestScore, bestSet = score, set
			}
		}
		sort.Ints(bestSet)
		result = bestSet
	}

	t.mu.Lock()
	cache[g] = result
	t.mu.Unlock()
	return result
}
