package topology

import (
	"fmt"
	"sort"
	"strings"
)

// PairwiseDistance returns the sum of pairwise shortest-path distances
// among the GPU positions in set — the communication cost t of Eq. 3.
func (t *Topology) PairwiseDistance(set []int) float64 {
	var sum float64
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			sum += t.Distance(set[i], set[j])
		}
	}
	return sum
}

// BestAllocation returns g GPU positions minimizing the pairwise distance
// sum on an empty topology — the ideal placement the utility function
// normalizes against. Results are cached per g and must not be mutated.
func (t *Topology) BestAllocation(g int) []int {
	return t.extremeAllocation(g, false)
}

// WorstAllocation returns g GPU positions maximizing the pairwise distance
// sum — the worst case t_w of the objective function (Eq. 1). Results are
// cached per g and must not be mutated.
func (t *Topology) WorstAllocation(g int) []int {
	return t.extremeAllocation(g, true)
}

// BestCommCost returns the pairwise-distance sum of the best allocation of
// g GPUs (0 for g < 2). The value is memoized with the allocation, so hot
// callers (utilityTerms scores one per placement candidate) pay a map
// lookup, not an O(g²) distance sum.
func (t *Topology) BestCommCost(g int) float64 {
	if g < 2 {
		return 0
	}
	if n := len(t.gpus); g > n {
		g = n
	}
	return t.extremeEntryFor(g, false).cost
}

// WorstCommCost returns the pairwise-distance sum of the worst allocation
// of g GPUs (0 for g < 2).
func (t *Topology) WorstCommCost(g int) float64 {
	if g < 2 {
		return 0
	}
	if n := len(t.gpus); g > n {
		g = n
	}
	return t.extremeEntryFor(g, true).cost
}

// extremeAllocation greedily grows a GPU set from a set of seeds, keeping
// the set with extreme pairwise distance. Machines hold at most 8 GPUs, so
// greedy growth matches the exhaustive optimum on the topologies built
// here (verified by tests against brute force). On large clusters the
// seed set is limited to the first two machines of each distinct machine
// shape (see seedCandidates) — by symmetry among same-shape machines
// every extreme allocation is reachable from them.
func (t *Topology) extremeAllocation(g int, maximize bool) []int {
	if g <= 0 {
		return nil
	}
	if n := len(t.gpus); g > n {
		g = n
	}
	return t.extremeEntryFor(g, maximize).set
}

// extremeEntryFor returns the fully initialized memo entry for size g
// (g already clamped to [1, NumGPUs]). The topology mutex only guards the
// map; the expensive greedy search runs inside the entry's sync.Once, so
// concurrent readers sharing the topology block on the entry being built
// rather than serializing unrelated sizes — and never race on the maps.
func (t *Topology) extremeEntryFor(g int, maximize bool) *extremeEntry {
	t.mu.Lock()
	cache := t.extremeMin
	if maximize {
		cache = t.extremeMax
	}
	e, ok := cache[g]
	if !ok {
		e = &extremeEntry{}
		cache[g] = e
	}
	t.mu.Unlock()
	e.once.Do(func() {
		e.set = t.searchExtreme(g, maximize)
		e.cost = t.PairwiseDistance(e.set)
	})
	return e
}

// searchExtreme performs the greedy extremal search for size g.
func (t *Topology) searchExtreme(g int, maximize bool) []int {
	n := len(t.gpus)
	if g == n {
		result := make([]int, n)
		for i := range result {
			result[i] = i
		}
		return result
	}
	bestScore := 0.0
	var bestSet []int
	used := make([]bool, n)
	for _, seed := range t.seedCandidates() {
		set := append(make([]int, 0, g), seed)
		for i := range used {
			used[i] = false
		}
		used[seed] = true
		for len(set) < g {
			cand, candScore := -1, 0.0
			for v := 0; v < n; v++ {
				if used[v] {
					continue
				}
				var d float64
				for _, u := range set {
					d += t.Distance(u, v)
				}
				if cand == -1 || (maximize && d > candScore) || (!maximize && d < candScore) {
					cand, candScore = v, d
				}
			}
			set = append(set, cand)
			used[cand] = true
		}
		score := t.PairwiseDistance(set)
		if bestSet == nil || (maximize && score > bestScore) || (!maximize && score < bestScore) {
			bestScore, bestSet = score, set
		}
	}
	sort.Ints(bestSet)
	return bestSet
}

// seedCandidates returns the GPU positions extremeAllocation grows greedy
// sets from, in ascending order. Small topologies seed from every GPU. On
// large clusters the seeds are the GPUs of the first two machines of each
// *distinct machine shape*: same-shape machines are interchangeable under
// relabeling, so any extreme allocation maps onto one seeded there — but
// a heterogeneous cluster (e.g. minsky,minsky,dgx1) hides its best dense
// allocation inside the odd machine, which a first-two-machines-only
// heuristic can never reach.
func (t *Topology) seedCandidates() []int {
	n := len(t.gpus)
	if len(t.machineStart) <= 2 || n <= 16 {
		seeds := make([]int, n)
		for i := range seeds {
			seeds[i] = i
		}
		return seeds
	}
	var seeds []int
	seen := map[string]int{}
	for mi := range t.machineStart {
		sig := t.machineShape(mi)
		if seen[sig] >= 2 {
			continue
		}
		seen[sig]++
		end := n
		if mi+1 < len(t.machineStart) {
			end = t.machineStart[mi+1]
		}
		for pos := t.machineStart[mi]; pos < end; pos++ {
			seeds = append(seeds, pos)
		}
	}
	return seeds
}

// MachineShape exposes machineShape: the static fingerprint of machine
// mi covering everything a placement evaluation can observe about the
// empty machine — GPU count, network attachment, the full intra-machine
// distance matrix and the per-GPU root-attachment costs. Machines with
// equal shapes are interchangeable under GPU relabeling; the placement
// cache builds its per-machine keys on top of this.
func (t *Topology) MachineShape(mi int) string { return t.machineShape(mi) }

// machineShape fingerprints machine mi by everything the extremal search
// can observe: its intra-machine distance matrix and its attachment costs
// toward the network root. Machines with equal shapes are interchangeable
// for allocation purposes.
func (t *Topology) machineShape(mi int) string {
	start := t.machineStart[mi]
	end := len(t.gpus)
	if mi+1 < len(t.machineStart) {
		end = t.machineStart[mi+1]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "k%d;net%g", end-start, t.netDist[mi])
	for _, row := range t.intraDist[mi] {
		for _, d := range row {
			fmt.Fprintf(&sb, ",%g", d)
		}
	}
	sb.WriteString(";root")
	for pos := start; pos < end; pos++ {
		fmt.Fprintf(&sb, ",%g", t.toRootDist[pos])
	}
	return sb.String()
}
