package topology

import (
	"fmt"
	"sort"
	"strings"
)

// The prototype in the paper discovers the GPU topology at startup by
// running `nvidia-smi topo --matrix` and `numactl --hardware` (§5.1). We
// reproduce that code path with a parser for the same matrix format, so a
// Topology can be built from discovery output instead of a hard-coded
// builder. The recognized connectivity tokens follow nvidia-smi:
//
//	NV2  dual-lane NVLink between the two GPUs
//	NV1  single-lane NVLink
//	PIX  same PCIe switch
//	PHB  same socket, through the host bridge
//	SYS  across sockets, through the system bus
//	X    the diagonal
//
// Socket membership is inferred from connectivity: GPUs joined by NV#, PIX
// or PHB share a socket; SYS separates sockets.

// ParseMatrix builds a single-machine topology from an nvidia-smi-style
// connectivity matrix. The first line must be a header of GPU names; each
// subsequent line is "GPUi TOKEN TOKEN ..." with exactly one token per GPU.
// Extra columns (e.g. "CPU Affinity") are ignored.
func ParseMatrix(text string) (*Topology, error) {
	lines := nonEmptyLines(text)
	if len(lines) < 2 {
		return nil, fmt.Errorf("topology: matrix needs a header and at least one row")
	}
	header := strings.Fields(lines[0])
	var gpuNames []string
	for _, h := range header {
		if strings.HasPrefix(h, "GPU") {
			gpuNames = append(gpuNames, h)
		}
	}
	n := len(gpuNames)
	if n == 0 {
		return nil, fmt.Errorf("topology: no GPU columns in header %q", lines[0])
	}
	if len(lines)-1 < n {
		return nil, fmt.Errorf("topology: matrix has %d rows for %d GPUs", len(lines)-1, n)
	}

	tokens := make([][]string, n)
	for i := 0; i < n; i++ {
		fields := strings.Fields(lines[i+1])
		if len(fields) < n+1 {
			return nil, fmt.Errorf("topology: row %q has %d fields, want >= %d", lines[i+1], len(fields), n+1)
		}
		if fields[0] != gpuNames[i] {
			return nil, fmt.Errorf("topology: row %d is %q, want %q", i, fields[0], gpuNames[i])
		}
		tokens[i] = fields[1 : n+1]
	}

	// Validate tokens and symmetry.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tok := tokens[i][j]
			if i == j {
				if tok != "X" {
					return nil, fmt.Errorf("topology: diagonal entry (%d,%d) is %q, want X", i, j, tok)
				}
				continue
			}
			switch tok {
			case "NV1", "NV2", "PIX", "PHB", "SYS":
			default:
				return nil, fmt.Errorf("topology: unknown connectivity token %q at (%d,%d)", tok, i, j)
			}
			if tokens[j][i] != tok {
				return nil, fmt.Errorf("topology: matrix asymmetric at (%d,%d): %q vs %q", i, j, tok, tokens[j][i])
			}
		}
	}

	// Union-find over "same socket" relations (anything but SYS).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if tokens[i][j] != "SYS" {
				union(i, j)
			}
		}
	}
	socketOf := make([]int, n)
	next := 0
	rootSocket := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := rootSocket[r]; !ok {
			rootSocket[r] = next
			next++
		}
		socketOf[i] = rootSocket[r]
	}
	numSockets := next

	w := DefaultWeights()
	b := NewBuilder("discovered")
	b.SetRoutingPenalty(3.5)
	mID := b.AddNode(LevelMachine, "M0", 0, -1, -1)
	socketID := make([]int, numSockets)
	for s := 0; s < numSockets; s++ {
		socketID[s] = b.AddNode(LevelSocket, fmt.Sprintf("M0/S%d", s), 0, s, -1)
		b.AddLink(mID, socketID[s], LinkXBus, BandwidthXBus, w.Socket)
	}

	// PIX pairs share a switch; build one switch per PIX-connected group.
	switchOf := make([]int, n) // switch node ID per GPU, 0 = none yet
	for i := range switchOf {
		switchOf[i] = -1
	}
	gpuID := make([]int, n)
	for i := 0; i < n; i++ {
		gpuID[i] = b.AddNode(LevelGPU, fmt.Sprintf("M0/GPU%d", i), 0, socketOf[i], i)
	}
	swCount := 0
	needsSwitch := func(i int) bool {
		for j := 0; j < n; j++ {
			if j != i && tokens[i][j] == "PIX" {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		if switchOf[i] != -1 || !needsSwitch(i) {
			continue
		}
		sw := b.AddNode(LevelSwitch, fmt.Sprintf("M0/SW%d", swCount), 0, socketOf[i], -1)
		swCount++
		b.AddLink(socketID[socketOf[i]], sw, LinkPCIe, BandwidthPCIe, w.Switch)
		switchOf[i] = sw
		b.AddLink(gpuID[i], sw, LinkPCIe, BandwidthPCIe, w.GPULink)
		for j := i + 1; j < n; j++ {
			if tokens[i][j] == "PIX" && switchOf[j] == -1 {
				switchOf[j] = sw
				b.AddLink(gpuID[j], sw, LinkPCIe, BandwidthPCIe, w.GPULink)
			}
		}
	}
	// GPUs without a switch attach straight to their socket. NVLink-to-host
	// machines (Minsky) use NVLink2 for the host link when the GPU has any
	// NV2 peer; otherwise PCIe.
	for i := 0; i < n; i++ {
		if switchOf[i] != -1 {
			continue
		}
		hostNVLink := false
		for j := 0; j < n; j++ {
			if j != i && tokens[i][j] == "NV2" {
				hostNVLink = true
			}
		}
		if hostNVLink {
			b.AddLink(gpuID[i], socketID[socketOf[i]], LinkNVLink2, BandwidthNVLink2, w.GPULink)
		} else {
			b.AddLink(gpuID[i], socketID[socketOf[i]], LinkPCIe, BandwidthPCIe, w.GPULink)
		}
	}
	// Direct NVLink edges.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch tokens[i][j] {
			case "NV2":
				b.AddLink(gpuID[i], gpuID[j], LinkNVLink2, BandwidthNVLink2, w.GPUPeer)
			case "NV1":
				b.AddLink(gpuID[i], gpuID[j], LinkNVLink, BandwidthNVLink, w.GPUPeer)
			}
		}
	}
	return b.Build(), nil
}

// RenderMatrix emits the nvidia-smi-style connectivity matrix of a
// single-machine topology — the inverse of ParseMatrix, used by the topoviz
// tool and by round-trip tests.
func (t *Topology) RenderMatrix() string {
	n := t.NumGPUs()
	var sb strings.Builder
	sb.WriteString("     ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%-6s", fmt.Sprintf("GPU%d", i))
	}
	sb.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%-5s", fmt.Sprintf("GPU%d", i))
		for j := 0; j < n; j++ {
			fmt.Fprintf(&sb, "%-6s", t.connectivityToken(i, j))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func (t *Topology) connectivityToken(i, j int) string {
	if i == j {
		return "X"
	}
	gi, gj := t.gpus[i], t.gpus[j]
	lo, hi := gi, gj
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, l := range t.links {
		if l.A == lo && l.B == hi {
			if l.Type == LinkNVLink2 {
				return "NV2"
			}
			if l.Type == LinkNVLink {
				return "NV1"
			}
		}
	}
	if !t.SameMachine(i, j) {
		return "SYS"
	}
	if !t.SameSocket(i, j) {
		return "SYS"
	}
	if t.P2P(i, j) {
		return "PIX"
	}
	return "PHB"
}

// RenderTree emits an indented textual rendering of the topology hierarchy
// with link annotations, for the topoviz tool and documentation.
func (t *Topology) RenderTree() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (routing penalty %.1f)\n", t.Name, t.RoutingPenalty)
	type adj struct {
		to   int
		link Link
	}
	children := map[int][]adj{}
	isChild := make([]bool, len(t.nodes))
	for _, l := range t.links {
		na, nb := t.nodes[l.A], t.nodes[l.B]
		switch {
		case na.Level < nb.Level:
			children[l.A] = append(children[l.A], adj{to: l.B, link: l})
			isChild[l.B] = true
		case nb.Level < na.Level:
			children[l.B] = append(children[l.B], adj{to: l.A, link: l})
			isChild[l.A] = true
		}
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), t.nodes[id].Name)
		kids := children[id]
		sort.Slice(kids, func(i, j int) bool { return kids[i].to < kids[j].to })
		for _, k := range kids {
			fmt.Fprintf(&sb, "%s[%s %.0fGB/s w=%.0f]\n",
				strings.Repeat("  ", depth+1), k.link.Type, k.link.Bandwidth, k.link.Weight)
			walk(k.to, depth+1)
		}
	}
	for _, n := range t.nodes {
		if !isChild[n.ID] && n.Level != LevelGPU {
			walk(n.ID, 0)
		}
	}
	// Peer NVLink edges are not part of the tree; list them separately.
	var peers []Link
	for _, l := range t.links {
		if t.nodes[l.A].Level == LevelGPU && t.nodes[l.B].Level == LevelGPU {
			peers = append(peers, l)
		}
	}
	if len(peers) > 0 {
		sb.WriteString("peer links:\n")
		for _, l := range peers {
			fmt.Fprintf(&sb, "  %s -- %s [%s %.0fGB/s w=%.0f]\n",
				t.nodes[l.A].Name, t.nodes[l.B].Name, l.Type, l.Bandwidth, l.Weight)
		}
	}
	return sb.String()
}

func nonEmptyLines(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}
