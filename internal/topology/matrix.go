package topology

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// The prototype in the paper discovers the GPU topology at startup by
// running `nvidia-smi topo --matrix` and `numactl --hardware` (§5.1). We
// reproduce that code path with a parser for the same matrix format, so a
// Topology can be built from discovery output instead of a hard-coded
// builder. The recognized connectivity tokens follow nvidia-smi:
//
//	NV2  dual-lane NVLink between the two GPUs
//	NV1  single-lane NVLink
//	PIX  same PCIe switch
//	PHB  same socket, through the host bridge
//	SYS  across sockets, through the system bus
//	X    the diagonal
//
// Socket membership comes from the CPU-affinity column when the dump has
// one (GPUs sharing an affinity range share a socket — that is how the
// prototype combines `nvidia-smi topo --matrix` with `numactl --hardware`);
// otherwise it is inferred from connectivity: GPUs joined by NV#, PIX or
// PHB share a socket; SYS separates sockets.

// ErrMatrixRows reports a mismatch between the GPU count of the header
// and the number of matrix rows — both missing rows and unexpected
// trailing GPU rows. Trailing non-GPU device rows (NIC0, mlx5_0, ...)
// and legend text are tolerated, matching real nvidia-smi output.
var ErrMatrixRows = errors.New("topology: matrix row count does not match GPU header count")

// matrixLayout is the validated content of one connectivity matrix: the
// per-pair tokens plus the socket partition. It can be stamped into a
// builder any number of times (ParseMatrix stamps it once; MatrixCluster
// stamps it per machine under a network root).
type matrixLayout struct {
	n          int
	tokens     [][]string
	socketOf   []int
	numSockets int
	hasNVLink  bool // any NV1/NV2 token — decides the routing penalty
}

// parseMatrixLayout validates an nvidia-smi-style connectivity matrix.
// The first line must be a header of GPU names; each subsequent line is
// "GPUi TOKEN TOKEN ..." with exactly one token per GPU, optionally
// followed by a CPU-affinity column. Exactly one row per header GPU is
// required (ErrMatrixRows otherwise).
func parseMatrixLayout(text string) (*matrixLayout, error) {
	lines := nonEmptyLines(text)
	if len(lines) < 2 {
		return nil, fmt.Errorf("topology: matrix needs a header and at least one row")
	}
	header := strings.Fields(lines[0])
	var gpuNames []string
	for _, h := range header {
		if strings.HasPrefix(h, "GPU") {
			gpuNames = append(gpuNames, h)
		}
	}
	n := len(gpuNames)
	if n == 0 {
		return nil, fmt.Errorf("topology: no GPU columns in header %q", lines[0])
	}
	if len(lines)-1 < n {
		return nil, fmt.Errorf("%w: %d rows for %d GPUs", ErrMatrixRows, len(lines)-1, n)
	}
	for _, line := range lines[n+1:] {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "Legend") {
			break // real nvidia-smi output ends with a legend block
		}
		// Real dumps list NIC/HCA rows after the GPUs; only a trailing
		// *GPU* row means the header and body disagree.
		if strings.HasPrefix(trimmed, "GPU") {
			return nil, fmt.Errorf("%w: unexpected trailing row %q after %d GPU rows", ErrMatrixRows, line, n)
		}
	}

	tokens := make([][]string, n)
	affinity := make([]string, n)
	haveAffinity := len(header) > n
	for i := 0; i < n; i++ {
		fields := strings.Fields(lines[i+1])
		if len(fields) < n+1 {
			return nil, fmt.Errorf("topology: row %q has %d fields, want >= %d", lines[i+1], len(fields), n+1)
		}
		if fields[0] != gpuNames[i] {
			return nil, fmt.Errorf("topology: row %d is %q, want %q", i, fields[0], gpuNames[i])
		}
		tokens[i] = fields[1 : n+1]
		if len(fields) > n+1 {
			affinity[i] = fields[n+1]
		} else {
			haveAffinity = false
		}
	}

	// Validate tokens and symmetry.
	hasNV := false
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tok := tokens[i][j]
			if i == j {
				if tok != "X" {
					return nil, fmt.Errorf("topology: diagonal entry (%d,%d) is %q, want X", i, j, tok)
				}
				continue
			}
			switch tok {
			case "NV1", "NV2":
				hasNV = true
			case "PIX", "PHB", "SYS":
			default:
				return nil, fmt.Errorf("topology: unknown connectivity token %q at (%d,%d)", tok, i, j)
			}
			if tokens[j][i] != tok {
				return nil, fmt.Errorf("topology: matrix asymmetric at (%d,%d): %q vs %q", i, j, tok, tokens[j][i])
			}
		}
	}

	lay := &matrixLayout{n: n, tokens: tokens, hasNVLink: hasNV}
	if haveAffinity {
		// CPU-affinity column: GPUs with identical affinity share a
		// socket. This survives formats where NVLink spans sockets (the
		// DGX-1 cube mesh joins every GPU pair transitively, so
		// connectivity alone would collapse the machine to one socket).
		lay.socketOf = make([]int, n)
		seen := map[string]int{}
		for i, a := range affinity {
			s, ok := seen[a]
			if !ok {
				s = len(seen)
				seen[a] = s
			}
			lay.socketOf[i] = s
		}
		lay.numSockets = len(seen)
		return lay, nil
	}

	// No affinity column: union-find over "same socket" relations
	// (anything but SYS).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if tokens[i][j] != "SYS" {
				union(i, j)
			}
		}
	}
	lay.socketOf = make([]int, n)
	rootSocket := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := rootSocket[r]; !ok {
			rootSocket[r] = len(rootSocket)
		}
		lay.socketOf[i] = rootSocket[r]
	}
	lay.numSockets = len(rootSocket)
	return lay, nil
}

// routingPenalty infers the staging penalty of the discovered machine
// class: NVLink systems behave like the Minsky/DGX-1 builders (3.5), while
// all-PCIe systems already staged transfers over PCIe and match PCIeBox
// (2.5, §3.2). Without this, the discovered and built versions of the same
// machine would score allocations differently.
func (lay *matrixLayout) routingPenalty() float64 {
	if lay.hasNVLink {
		return 3.5
	}
	return 2.5
}

// stamp appends one machine with this layout to the builder (machine index
// m, linked to netID when >= 0). GPUs behind a shared PIX switch hang off
// one switch vertex; GPUs with NV2 peers take an NVLink2 host link
// (Minsky style); GPUs with only NV1 peers sit behind a private PCIe
// switch (DGX-1 style — the switch is invisible in the matrix because
// NVLink tokens shadow PCIe relations, but its hop cost is real); the rest
// attach straight to their socket over PCIe.
func (lay *matrixLayout) stamp(b *Builder, m int, w LevelWeights, netID int) {
	n := lay.n
	mID := b.AddNode(LevelMachine, fmt.Sprintf("M%d", m), m, -1, -1)
	if netID >= 0 {
		b.AddLink(netID, mID, LinkNetwork, BandwidthNetwork, w.Machine)
	}
	socketID := make([]int, lay.numSockets)
	for s := 0; s < lay.numSockets; s++ {
		socketID[s] = b.AddNode(LevelSocket, fmt.Sprintf("M%d/S%d", m, s), m, s, -1)
		b.AddLink(mID, socketID[s], LinkXBus, BandwidthXBus, w.Socket)
	}

	// PIX pairs share a switch; build one switch per PIX-connected group.
	switchOf := make([]int, n) // switch node ID per GPU, -1 = none yet
	for i := range switchOf {
		switchOf[i] = -1
	}
	gpuID := make([]int, n)
	for i := 0; i < n; i++ {
		gpuID[i] = b.AddNode(LevelGPU, fmt.Sprintf("M%d/GPU%d", m, i), m, lay.socketOf[i], i)
	}
	swCount := 0
	hasToken := func(i int, want string) bool {
		for j := 0; j < n; j++ {
			if j != i && lay.tokens[i][j] == want {
				return true
			}
		}
		return false
	}
	addSwitch := func(socket int) int {
		sw := b.AddNode(LevelSwitch, fmt.Sprintf("M%d/SW%d", m, swCount), m, socket, -1)
		swCount++
		b.AddLink(socketID[socket], sw, LinkPCIe, BandwidthPCIe, w.Switch)
		return sw
	}
	for i := 0; i < n; i++ {
		if switchOf[i] != -1 || !hasToken(i, "PIX") {
			continue
		}
		sw := addSwitch(lay.socketOf[i])
		switchOf[i] = sw
		b.AddLink(gpuID[i], sw, LinkPCIe, BandwidthPCIe, w.GPULink)
		for j := i + 1; j < n; j++ {
			if lay.tokens[i][j] == "PIX" && switchOf[j] == -1 {
				switchOf[j] = sw
				b.AddLink(gpuID[j], sw, LinkPCIe, BandwidthPCIe, w.GPULink)
			}
		}
	}
	for i := 0; i < n; i++ {
		if switchOf[i] != -1 {
			continue
		}
		switch {
		case hasToken(i, "NV2"):
			// NVLink-to-host (Minsky): the host link is NVLink2.
			b.AddLink(gpuID[i], socketID[lay.socketOf[i]], LinkNVLink2, BandwidthNVLink2, w.GPULink)
		case hasToken(i, "NV1"):
			// Single-lane NVLink peers but a PCIe host path (DGX-1): the
			// GPU sits behind a PCIe switch the matrix cannot show.
			sw := addSwitch(lay.socketOf[i])
			b.AddLink(gpuID[i], sw, LinkPCIe, BandwidthPCIe, w.GPULink)
		default:
			b.AddLink(gpuID[i], socketID[lay.socketOf[i]], LinkPCIe, BandwidthPCIe, w.GPULink)
		}
	}
	// Direct NVLink edges.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch lay.tokens[i][j] {
			case "NV2":
				b.AddLink(gpuID[i], gpuID[j], LinkNVLink2, BandwidthNVLink2, w.GPUPeer)
			case "NV1":
				b.AddLink(gpuID[i], gpuID[j], LinkNVLink, BandwidthNVLink, w.GPUPeer)
			}
		}
	}
}

// ParseMatrix builds a single-machine topology from an nvidia-smi-style
// connectivity matrix (see parseMatrixLayout for the accepted format).
func ParseMatrix(text string) (*Topology, error) {
	return ParseMatrixWeights(text, DefaultWeights())
}

// ParseMatrixWeights is ParseMatrix with custom level weights.
func ParseMatrixWeights(text string, w LevelWeights) (*Topology, error) {
	lay, err := parseMatrixLayout(text)
	if err != nil {
		return nil, err
	}
	b := NewBuilder("discovered")
	b.SetRoutingPenalty(lay.routingPenalty())
	lay.stamp(b, 0, w.orDefault(), -1)
	return b.Build(), nil
}

// MatrixCluster builds a homogeneous cluster of n machines joined by a
// network vertex, each stamped from the same discovered connectivity
// matrix — real nvidia-smi dumps become sweepable cluster substrates.
func MatrixCluster(text string, n int) (*Topology, error) {
	return MatrixClusterWeights(text, n, DefaultWeights())
}

// MatrixClusterWeights is MatrixCluster with custom level weights.
func MatrixClusterWeights(text string, n int, w LevelWeights) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: matrix cluster needs at least one machine, got %d", n)
	}
	lay, err := parseMatrixLayout(text)
	if err != nil {
		return nil, err
	}
	w = w.orDefault()
	b := NewBuilder(fmt.Sprintf("Cluster-%dxdiscovered", n))
	b.SetRoutingPenalty(lay.routingPenalty())
	netID := b.AddNode(LevelNetwork, "Net", -1, -1, -1)
	for m := 0; m < n; m++ {
		lay.stamp(b, m, w, netID)
	}
	return b.Build(), nil
}

// RenderMatrix emits the nvidia-smi-style connectivity matrix of a
// single-machine topology — the inverse of ParseMatrix, used by the topoviz
// tool and by round-trip tests. The CPU-affinity column encodes socket
// membership (eight synthetic CPU ids per socket), which is what lets
// ParseMatrix recover the socket partition even when NVLink edges span
// sockets (DGX-1's cube mesh).
func (t *Topology) RenderMatrix() string {
	n := t.NumGPUs()
	var sb strings.Builder
	sb.WriteString("     ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%-6s", fmt.Sprintf("GPU%d", i))
	}
	sb.WriteString("CPUAffinity\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%-5s", fmt.Sprintf("GPU%d", i))
		for j := 0; j < n; j++ {
			fmt.Fprintf(&sb, "%-6s", t.connectivityToken(i, j))
		}
		s := t.GPU(i).Socket
		fmt.Fprintf(&sb, "%d-%d\n", 8*s, 8*s+7)
	}
	return sb.String()
}

func (t *Topology) connectivityToken(i, j int) string {
	if i == j {
		return "X"
	}
	gi, gj := t.gpus[i], t.gpus[j]
	lo, hi := gi, gj
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, l := range t.links {
		if l.A == lo && l.B == hi {
			if l.Type == LinkNVLink2 {
				return "NV2"
			}
			if l.Type == LinkNVLink {
				return "NV1"
			}
		}
	}
	if !t.SameMachine(i, j) {
		return "SYS"
	}
	if !t.SameSocket(i, j) {
		return "SYS"
	}
	if t.P2P(i, j) {
		return "PIX"
	}
	return "PHB"
}

// RenderTree emits an indented textual rendering of the topology hierarchy
// with link annotations, for the topoviz tool and documentation.
func (t *Topology) RenderTree() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (routing penalty %.1f)\n", t.Name, t.RoutingPenalty)
	type adj struct {
		to   int
		link Link
	}
	children := map[int][]adj{}
	isChild := make([]bool, len(t.nodes))
	for _, l := range t.links {
		na, nb := t.nodes[l.A], t.nodes[l.B]
		switch {
		case na.Level < nb.Level:
			children[l.A] = append(children[l.A], adj{to: l.B, link: l})
			isChild[l.B] = true
		case nb.Level < na.Level:
			children[l.B] = append(children[l.B], adj{to: l.A, link: l})
			isChild[l.A] = true
		}
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), t.nodes[id].Name)
		kids := children[id]
		sort.Slice(kids, func(i, j int) bool { return kids[i].to < kids[j].to })
		for _, k := range kids {
			fmt.Fprintf(&sb, "%s[%s %.0fGB/s w=%.0f]\n",
				strings.Repeat("  ", depth+1), k.link.Type, k.link.Bandwidth, k.link.Weight)
			walk(k.to, depth+1)
		}
	}
	for _, n := range t.nodes {
		if !isChild[n.ID] && n.Level != LevelGPU {
			walk(n.ID, 0)
		}
	}
	// Peer NVLink edges are not part of the tree; list them separately.
	var peers []Link
	for _, l := range t.links {
		if t.nodes[l.A].Level == LevelGPU && t.nodes[l.B].Level == LevelGPU {
			peers = append(peers, l)
		}
	}
	if len(peers) > 0 {
		sb.WriteString("peer links:\n")
		for _, l := range peers {
			fmt.Fprintf(&sb, "  %s -- %s [%s %.0fGB/s w=%.0f]\n",
				t.nodes[l.A].Name, t.nodes[l.B].Name, l.Type, l.Bandwidth, l.Weight)
		}
	}
	return sb.String()
}

func nonEmptyLines(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}
