package trace

import (
	"bytes"
	"strings"
	"testing"

	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

func TestFromJobsReplayRoundTrip(t *testing.T) {
	jobs := workload.Table1()
	tr := FromJobs("table1", "Power8-Minsky", jobs)
	if len(tr.Jobs) != 6 {
		t.Fatalf("records = %d", len(tr.Jobs))
	}
	back, err := tr.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("replayed %d jobs", len(back))
	}
	for i := range jobs {
		if back[i].ID != jobs[i].ID || back[i].Model != jobs[i].Model ||
			back[i].BatchSize != jobs[i].BatchSize || back[i].GPUs != jobs[i].GPUs ||
			back[i].MinUtility != jobs[i].MinUtility || back[i].Arrival != jobs[i].Arrival ||
			back[i].Iterations != jobs[i].Iterations {
			t.Fatalf("job %d changed in round trip", i)
		}
	}
}

func TestFromRunRecordsOutcomes(t *testing.T) {
	topo := topology.Power8Minsky()
	res, err := simulator.Run(simulator.Config{Topology: topo, Policy: sched.TopoAwareP}, workload.Table1())
	if err != nil {
		t.Fatal(err)
	}
	tr := FromRun("fig8", topo.Name, res)
	if tr.Policy != "TOPO-AWARE-P" {
		t.Fatalf("policy = %q", tr.Policy)
	}
	for _, r := range tr.Jobs {
		if !r.Placed {
			t.Fatalf("record %s not marked placed", r.ID)
		}
		if r.Finish <= r.Start {
			t.Fatalf("record %s times inverted", r.ID)
		}
		if len(r.GPUList) == 0 {
			t.Fatalf("record %s without GPUs", r.ID)
		}
	}
	// Records are sorted by ID.
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i-1].ID > tr.Jobs[i].ID {
			t.Fatal("records unsorted")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := FromJobs("rt", "topo", workload.Table1())
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "rt" || back.Topology != "topo" || len(back.Jobs) != 6 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"name":"empty","jobs":[]}`)); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayRejectsUnknownModel(t *testing.T) {
	tr := &Trace{Name: "bad", Jobs: []JobRecord{{
		ID: "x", Model: "ResNet", BatchSize: 1, GPUs: 1, MinUtility: 0.3,
	}}}
	if _, err := tr.ReplayJobs(); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestReplayRejectsInvalidRecord(t *testing.T) {
	tr := &Trace{Name: "bad", Jobs: []JobRecord{{
		ID: "x", Model: "AlexNet", BatchSize: 1, GPUs: 0, MinUtility: 0.3,
	}}}
	if _, err := tr.ReplayJobs(); err == nil {
		t.Fatal("zero-GPU record accepted")
	}
}

func TestReplaySortsByArrival(t *testing.T) {
	tr := &Trace{Name: "shuffled", Jobs: []JobRecord{
		{ID: "late", Model: "AlexNet", BatchSize: 1, GPUs: 1, MinUtility: 0.3, Arrival: 50, Iterations: 10},
		{ID: "early", Model: "AlexNet", BatchSize: 1, GPUs: 1, MinUtility: 0.3, Arrival: 5, Iterations: 10},
	}}
	jobs, err := tr.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].ID != "early" {
		t.Fatal("replay did not sort by arrival")
	}
}

func TestReplayedTraceSimulatesIdentically(t *testing.T) {
	// Record a run, replay the trace, and verify the simulation repeats
	// exactly — the trace-driven workflow of §5.3.
	topo := topology.Power8Minsky()
	original, err := simulator.Run(simulator.Config{Topology: topo, Policy: sched.FCFS}, workload.Table1())
	if err != nil {
		t.Fatal(err)
	}
	tr := FromRun("rec", topo.Name, original)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := back.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := simulator.Run(simulator.Config{Topology: topo, Policy: sched.FCFS}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Makespan != original.Makespan {
		t.Fatalf("replayed makespan %.3f != original %.3f", replayed.Makespan, original.Makespan)
	}
}

func TestSummarize(t *testing.T) {
	topo := topology.Power8Minsky()
	res, err := simulator.Run(simulator.Config{Topology: topo, Policy: sched.FCFS}, workload.Table1())
	if err != nil {
		t.Fatal(err)
	}
	tr := FromRun("s", topo.Name, res)
	s := tr.Summarize()
	if s.Jobs != 6 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
	if s.TotalGPUs != 9 { // 1+1+1+2+2+2
		t.Fatalf("total GPUs = %d", s.TotalGPUs)
	}
	if s.ByModel["AlexNet"] != 4 {
		t.Fatalf("AlexNet count = %d", s.ByModel["AlexNet"])
	}
	if s.PlacedRecords != 6 || s.MeanRun <= 0 {
		t.Fatalf("placed stats: %+v", s)
	}
	if s.Span <= 0 {
		t.Fatal("span not computed")
	}
	// Empty trace summary is safe.
	empty := (&Trace{}).Summarize()
	if empty.Jobs != 0 {
		t.Fatal("empty summary wrong")
	}
}
