// Package trace implements the trace-driven workflow of §5.3: logs from
// prototype runs are parsed into trace files, and the trace files feed the
// large-scale simulator. A trace records each job's submission parameters
// (the paper's JSON job manifests) plus, when produced from a run, the
// measured placement and timing — the "application and resource usage
// profiles" the simulator consumes.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/simulator"
)

// JobRecord is one job of a trace: submission parameters plus measured
// outcomes (zero-valued when the trace was generated rather than recorded).
type JobRecord struct {
	ID         string  `json:"id"`
	Model      string  `json:"model"`
	BatchSize  int     `json:"batch_size"`
	GPUs       int     `json:"gpus"`
	MinUtility float64 `json:"min_utility"`
	Arrival    float64 `json:"arrival"`
	Iterations int     `json:"iterations"`

	// Measured fields from the recorded run.
	Placed  bool    `json:"placed,omitempty"`
	GPUList []int   `json:"gpu_list,omitempty"`
	Start   float64 `json:"start,omitempty"`
	Finish  float64 `json:"finish,omitempty"`
	Wait    float64 `json:"wait,omitempty"`
	Run     float64 `json:"run,omitempty"`
	Utility float64 `json:"utility,omitempty"`
}

// Trace is a set of job records with provenance metadata.
type Trace struct {
	Name     string      `json:"name"`
	Topology string      `json:"topology"`
	Policy   string      `json:"policy,omitempty"`
	Jobs     []JobRecord `json:"jobs"`
}

// FromJobs builds a submission-only trace from a job stream.
func FromJobs(name, topoName string, jobs []*job.Job) *Trace {
	t := &Trace{Name: name, Topology: topoName}
	for _, j := range jobs {
		t.Jobs = append(t.Jobs, JobRecord{
			ID:         j.ID,
			Model:      j.Model.String(),
			BatchSize:  j.BatchSize,
			GPUs:       j.GPUs,
			MinUtility: j.MinUtility,
			Arrival:    j.Arrival,
			Iterations: j.Iterations,
		})
	}
	return t
}

// FromRun builds a trace from a finished run, recording measured
// placements and timings — the prototype-log-to-trace conversion of §5.3.
func FromRun(name, topoName string, res *simulator.Result) *Trace {
	t := &Trace{Name: name, Topology: topoName, Policy: res.Policy.String()}
	for _, jr := range res.Jobs {
		t.Jobs = append(t.Jobs, JobRecord{
			ID:         jr.Job.ID,
			Model:      jr.Job.Model.String(),
			BatchSize:  jr.Job.BatchSize,
			GPUs:       jr.Job.GPUs,
			MinUtility: jr.Job.MinUtility,
			Arrival:    jr.Job.Arrival,
			Iterations: jr.Job.Iterations,
			Placed:     true,
			GPUList:    jr.GPUs,
			Start:      jr.Start,
			Finish:     jr.Finish,
			Wait:       jr.Wait,
			Run:        jr.Run,
			Utility:    jr.Utility,
		})
	}
	sort.Slice(t.Jobs, func(i, j int) bool { return t.Jobs[i].ID < t.Jobs[j].ID })
	return t
}

// ReplayJobs reconstructs the submittable jobs of the trace, ready to be
// fed to either engine.
func (t *Trace) ReplayJobs() ([]*job.Job, error) {
	jobs := make([]*job.Job, 0, len(t.Jobs))
	for _, r := range t.Jobs {
		m, err := perfmodel.ParseNN(r.Model)
		if err != nil {
			return nil, fmt.Errorf("trace %s: job %s: %w", t.Name, r.ID, err)
		}
		j := job.New(r.ID, m, r.BatchSize, r.GPUs, r.MinUtility, r.Arrival)
		if r.Iterations > 0 {
			j.Iterations = r.Iterations
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace %s: %w", t.Name, err)
		}
		jobs = append(jobs, j)
	}
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })
	return jobs, nil
}

// Write serializes the trace as indented JSON.
func Write(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Read parses a JSON trace.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(t.Jobs) == 0 {
		return nil, fmt.Errorf("trace %q: no jobs", t.Name)
	}
	return &t, nil
}

// Summary holds aggregate statistics of a trace.
type Summary struct {
	Jobs          int
	TotalGPUs     int
	MeanGPUs      float64
	Span          float64 // last arrival - first arrival
	ByModel       map[string]int
	ByGPUs        map[int]int
	MeanWait      float64 // recorded traces only
	MeanRun       float64
	PlacedRecords int
}

// Summarize computes aggregate statistics over the trace.
func (t *Trace) Summarize() Summary {
	s := Summary{ByModel: map[string]int{}, ByGPUs: map[int]int{}}
	if len(t.Jobs) == 0 {
		return s
	}
	first, last := t.Jobs[0].Arrival, t.Jobs[0].Arrival
	var waitSum, runSum float64
	for _, r := range t.Jobs {
		s.Jobs++
		s.TotalGPUs += r.GPUs
		s.ByModel[r.Model]++
		s.ByGPUs[r.GPUs]++
		if r.Arrival < first {
			first = r.Arrival
		}
		if r.Arrival > last {
			last = r.Arrival
		}
		if r.Placed {
			s.PlacedRecords++
			waitSum += r.Wait
			runSum += r.Run
		}
	}
	s.MeanGPUs = float64(s.TotalGPUs) / float64(s.Jobs)
	s.Span = last - first
	if s.PlacedRecords > 0 {
		s.MeanWait = waitSum / float64(s.PlacedRecords)
		s.MeanRun = runSum / float64(s.PlacedRecords)
	}
	return s
}
