package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent: %d/100 equal", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(42)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ≈0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 1000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(11)
	rate := 0.5
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.05 {
		t.Fatalf("exponential mean %v, want ≈%v", mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(13)
	mean := 4.0
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(mean))
	}
	got := sum / float64(n)
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("poisson mean %v, want ≈%v", got, mean)
	}
}

func TestBinomialBoundsAndMean(t *testing.T) {
	r := NewRNG(17)
	n, p := 3, 0.5
	counts := make([]int, n+1)
	trials := 100000
	var sum float64
	for i := 0; i < trials; i++ {
		v := r.Binomial(n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial(3,0.5) = %d", v)
		}
		counts[v]++
		sum += float64(v)
	}
	if mean := sum / float64(trials); math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("binomial mean %v, want ≈1.5", mean)
	}
	// Distribution should be 1/8, 3/8, 3/8, 1/8.
	for v, want := range []float64{0.125, 0.375, 0.375, 0.125} {
		got := float64(counts[v]) / float64(trials)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("P(X=%d) = %v, want ≈%v", v, got, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(23)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %v, want ≈10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev %v, want ≈2", math.Sqrt(variance))
	}
}

func TestFloat64PropertyInUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
