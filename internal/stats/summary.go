package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics for a sample. The JSON form uses
// snake_case keys, matching the sweep artifact format (docs/sweeps.md).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Summarize computes descriptive statistics over xs. A nil or empty slice
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample using linear interpolation between closest ranks. The paper's
// profiles store the 95th percentile of five runs (§5.1).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins xs into n equal-width buckets across [min, max] and
// returns the bucket counts. Values exactly at max land in the last bucket.
func Histogram(xs []float64, n int, min, max float64) []int {
	counts := make([]int, n)
	if n == 0 || max <= min {
		return counts
	}
	width := (max - min) / float64(n)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / width)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
