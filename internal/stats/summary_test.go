package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 3 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %v", s.P50)
	}
	// Sample stddev of 1..5 is sqrt(2.5).
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.Stddev != 0 {
		t.Fatalf("single-value summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 {
		t.Fatal("P0 should be min")
	}
	if Percentile(sorted, 100) != 40 {
		t.Fatal("P100 should be max")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Interpolation: P50 of 4 elements = midpoint of 20 and 30.
	if got := Percentile(sorted, 50); got != 25 {
		t.Fatalf("P50 = %v, want 25", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, 3.9, 4.0}
	counts := Histogram(xs, 4, 0, 4)
	want := []int{1, 2, 1, 2} // 4.0 lands in the last bucket
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
}

func TestHistogramIgnoresOutOfRange(t *testing.T) {
	counts := Histogram([]float64{-1, 5, 2}, 4, 0, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1 {
		t.Fatalf("total counted %d, want 1", total)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if c := Histogram([]float64{1, 2}, 0, 0, 4); len(c) != 0 {
		t.Fatal("zero buckets should yield empty")
	}
	c := Histogram([]float64{1, 2}, 3, 5, 5)
	for _, v := range c {
		if v != 0 {
			t.Fatal("degenerate range should count nothing")
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("mean of 2,4,6 should be 4")
	}
}

func TestHistogramTotalNeverExceedsInput(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		counts := Histogram(xs, 8, -100, 100)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total <= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
