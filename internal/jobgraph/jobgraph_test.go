package jobgraph

import (
	"testing"
	"testing/quick"

	"gputopo/internal/graph"
)

func TestBatchClassString(t *testing.T) {
	want := map[BatchClass]string{
		BatchTiny: "tiny", BatchSmall: "small", BatchMedium: "medium", BatchBig: "big",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if BatchClass(9).String() == "" {
		t.Fatal("unknown class must render")
	}
}

func TestBatchClassSizes(t *testing.T) {
	// Representative sizes per §3.1 (batch range 1..128).
	if BatchTiny.Size() != 1 || BatchSmall.Size() != 4 || BatchMedium.Size() != 32 || BatchBig.Size() != 128 {
		t.Fatalf("sizes: %d %d %d %d", BatchTiny.Size(), BatchSmall.Size(), BatchMedium.Size(), BatchBig.Size())
	}
}

func TestClassOfSizeRoundTrip(t *testing.T) {
	for c := BatchTiny; c <= BatchBig; c++ {
		if got := ClassOfSize(c.Size()); got != c {
			t.Fatalf("ClassOfSize(%d) = %v, want %v", c.Size(), got, c)
		}
	}
}

func TestClassOfSizeBoundaries(t *testing.T) {
	cases := map[int]BatchClass{
		1: BatchTiny, 2: BatchTiny,
		3: BatchSmall, 8: BatchSmall,
		9: BatchMedium, 32: BatchMedium,
		33: BatchBig, 128: BatchBig, 1000: BatchBig,
	}
	for size, want := range cases {
		if got := ClassOfSize(size); got != want {
			t.Fatalf("ClassOfSize(%d) = %v, want %v", size, got, want)
		}
	}
}

func TestCommWeightsMatchPaper(t *testing.T) {
	// §5.1: "ranging from 4 to 1, where 4 represents the smallest batch".
	want := map[BatchClass]float64{BatchTiny: 4, BatchSmall: 3, BatchMedium: 2, BatchBig: 1}
	for c, w := range want {
		if c.CommWeight() != w {
			t.Fatalf("CommWeight(%v) = %v, want %v", c, c.CommWeight(), w)
		}
	}
}

func TestAllToAllShape(t *testing.T) {
	g := AllToAll(4, 2.5)
	if g.Tasks() != 4 {
		t.Fatalf("tasks = %d", g.Tasks())
	}
	if len(g.Edges()) != 6 { // C(4,2)
		t.Fatalf("edges = %d", len(g.Edges()))
	}
	for _, e := range g.Edges() {
		if e.Weight != 2.5 {
			t.Fatalf("edge weight = %v", e.Weight)
		}
	}
	if g.Weight(0, 3) != 2.5 || g.Weight(3, 0) != 2.5 {
		t.Fatal("pairwise weight lookup failed")
	}
}

func TestAllToAllSingleTask(t *testing.T) {
	g := AllToAll(1, 4)
	if g.Tasks() != 1 || len(g.Edges()) != 0 {
		t.Fatal("single task graph should have no edges")
	}
	if g.CommIntensity() != 0 {
		t.Fatal("single task comm intensity should be 0")
	}
}

func TestRingShape(t *testing.T) {
	g := Ring(5, 1)
	if len(g.Edges()) != 5 {
		t.Fatalf("5-ring edges = %d", len(g.Edges()))
	}
	// Two tasks: a single edge, not a double edge.
	if g2 := Ring(2, 1); len(g2.Edges()) != 1 {
		t.Fatalf("2-ring edges = %d", len(g2.Edges()))
	}
	if g1 := Ring(1, 1); len(g1.Edges()) != 0 {
		t.Fatalf("1-ring edges = %d", len(g1.Edges()))
	}
}

func TestStarShape(t *testing.T) {
	g := Star(5, 2)
	if len(g.Edges()) != 4 {
		t.Fatalf("star edges = %d", len(g.Edges()))
	}
	for i := 1; i < 5; i++ {
		if g.Weight(0, i) != 2 {
			t.Fatalf("hub edge 0-%d missing", i)
		}
	}
	if g.Weight(1, 2) != 0 {
		t.Fatal("leaves must not be connected")
	}
}

func TestCustomValidation(t *testing.T) {
	if _, err := Custom(3, []graph.Edge{{U: 0, V: 3, Weight: 1}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := Custom(3, []graph.Edge{{U: 1, V: 1, Weight: 1}}); err == nil {
		t.Fatal("self-edge accepted")
	}
	if _, err := Custom(3, []graph.Edge{{U: 0, V: 1, Weight: -2}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	g, err := Custom(3, []graph.Edge{{U: 0, V: 1, Weight: 1}, {U: 1, V: 2, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalWeight() != 4 {
		t.Fatalf("total weight = %v", g.TotalWeight())
	}
	if g.CommIntensity() != 3 {
		t.Fatalf("comm intensity = %v", g.CommIntensity())
	}
}

func TestNormalized(t *testing.T) {
	g := AllToAll(3, 8)
	n := g.Normalized(4)
	for _, e := range n.Edges() {
		if e.Weight != 2 {
			t.Fatalf("normalized weight = %v", e.Weight)
		}
	}
	// Zero bandwidth leaves weights untouched.
	same := g.Normalized(0)
	if same.Weight(0, 1) != 8 {
		t.Fatal("zero-bandwidth normalization changed weights")
	}
	// Original unchanged.
	if g.Weight(0, 1) != 8 {
		t.Fatal("Normalized mutated the original")
	}
}

func TestAllToAllEdgeCountProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%10) + 1
		g := AllToAll(n, 1)
		return len(g.Edges()) == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommWeightMonotoneInClass(t *testing.T) {
	// Smaller batches communicate more: weights strictly decrease.
	for c := BatchTiny; c < BatchBig; c++ {
		if c.CommWeight() <= (c + 1).CommWeight() {
			t.Fatalf("weight not decreasing at %v", c)
		}
	}
}
