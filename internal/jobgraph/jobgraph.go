// Package jobgraph models the job communication graph of §4.1.1 of the
// paper: vertices represent the GPUs (tasks) a job requests and edge
// weights denote communication volume between them, normalized so that 0
// means no communication and larger values mean more.
//
// For data-parallel deep-learning frameworks like Caffe, all GPUs perform
// similar work and exchange gradients with each other, so the prototype
// defines an all-to-all graph with a uniform weight derived from the batch
// size: weights range from 4 (smallest batch, most communication) down to
// 1 (largest batch) (§5.1). Other shapes (ring, star, custom) are provided
// for model-parallel and parameter-server style workloads.
package jobgraph

import (
	"fmt"
	"sync"

	"gputopo/internal/graph"
)

// BatchClass buckets training batch sizes the way the paper's workload
// generator does (§5.3): 0=tiny, 1=small, 2=medium, 3=big.
type BatchClass int

// Batch classes used throughout the evaluation.
const (
	BatchTiny BatchClass = iota
	BatchSmall
	BatchMedium
	BatchBig
)

// String returns the class name used in the paper's figures.
func (b BatchClass) String() string {
	switch b {
	case BatchTiny:
		return "tiny"
	case BatchSmall:
		return "small"
	case BatchMedium:
		return "medium"
	case BatchBig:
		return "big"
	default:
		return fmt.Sprintf("BatchClass(%d)", int(b))
	}
}

// Size returns the representative per-GPU batch size of the class, matching
// the prototype's configurations (batch sizes 1..128, §3.1: tiny=1,
// small=4, medium=32, big=128).
func (b BatchClass) Size() int {
	switch b {
	case BatchTiny:
		return 1
	case BatchSmall:
		return 4
	case BatchMedium:
		return 32
	case BatchBig:
		return 128
	}
	return 1
}

// ClassOfSize maps a concrete per-GPU batch size to its class.
func ClassOfSize(size int) BatchClass {
	switch {
	case size <= 2:
		return BatchTiny
	case size <= 8:
		return BatchSmall
	case size <= 32:
		return BatchMedium
	default:
		return BatchBig
	}
}

// CommWeight returns the paper's §5.1 job-graph edge weight for the batch
// class: "for different batch sizes, different weights are used, ranging
// from 4 to 1, where 4 represents the smallest batch size and 1 the
// largest one."
func (b BatchClass) CommWeight() float64 {
	switch b {
	case BatchTiny:
		return 4
	case BatchSmall:
		return 3
	case BatchMedium:
		return 2
	case BatchBig:
		return 1
	}
	return 1
}

// Graph is a job communication graph: task vertices plus weighted
// communication edges.
type Graph struct {
	g *graph.Graph
}

// AllToAll builds the uniform all-to-all communication graph used for
// data-parallel training: every pair of the job's tasks communicates with
// the same weight.
func AllToAll(tasks int, weight float64) *Graph {
	jg := &Graph{g: graph.New()}
	for i := 0; i < tasks; i++ {
		jg.g.AddVertex(fmt.Sprintf("task%d", i))
	}
	for i := 0; i < tasks; i++ {
		for j := i + 1; j < tasks; j++ {
			jg.g.AddEdge(i, j, weight)
		}
	}
	return jg
}

// allToAllKey identifies a shared all-to-all graph: the batch-class comm
// weight and the task count fully determine it.
type allToAllKey struct {
	tasks  int
	weight float64
}

var allToAllCache sync.Map // allToAllKey -> *Graph

// SharedAllToAll returns a process-wide cached all-to-all graph for the
// (tasks, weight) pair. A scenario-2 workload holds 10k jobs drawn from a
// handful of (GPU count, batch class) combinations; building each job's
// identical graph privately was pure allocation overhead. The returned
// graph is shared — treat it as immutable (job.SetCommGraph replaces, it
// must never mutate in place).
func SharedAllToAll(tasks int, weight float64) *Graph {
	key := allToAllKey{tasks: tasks, weight: weight}
	if g, ok := allToAllCache.Load(key); ok {
		return g.(*Graph)
	}
	g, _ := allToAllCache.LoadOrStore(key, AllToAll(tasks, weight))
	return g.(*Graph)
}

// Ring builds a ring communication graph (each task talks to its two
// neighbors), the pattern of ring all-reduce implementations.
func Ring(tasks int, weight float64) *Graph {
	jg := &Graph{g: graph.New()}
	for i := 0; i < tasks; i++ {
		jg.g.AddVertex(fmt.Sprintf("task%d", i))
	}
	if tasks == 2 {
		jg.g.AddEdge(0, 1, weight)
		return jg
	}
	for i := 0; i < tasks && tasks > 1; i++ {
		jg.g.AddEdge(i, (i+1)%tasks, weight)
	}
	return jg
}

// Star builds a star communication graph with task 0 as the hub — the
// pattern of a parameter-server deployment.
func Star(tasks int, weight float64) *Graph {
	jg := &Graph{g: graph.New()}
	for i := 0; i < tasks; i++ {
		jg.g.AddVertex(fmt.Sprintf("task%d", i))
	}
	for i := 1; i < tasks; i++ {
		jg.g.AddEdge(0, i, weight)
	}
	return jg
}

// Custom builds a job graph from explicit edges over tasks [0,n).
func Custom(tasks int, edges []graph.Edge) (*Graph, error) {
	jg := &Graph{g: graph.New()}
	for i := 0; i < tasks; i++ {
		jg.g.AddVertex(fmt.Sprintf("task%d", i))
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= tasks || e.V < 0 || e.V >= tasks || e.U == e.V {
			return nil, fmt.Errorf("jobgraph: invalid edge %d-%d for %d tasks", e.U, e.V, tasks)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("jobgraph: negative weight on edge %d-%d", e.U, e.V)
		}
		jg.g.AddEdge(e.U, e.V, e.Weight)
	}
	return jg, nil
}

// Tasks returns the number of task vertices (= GPUs requested).
func (jg *Graph) Tasks() int { return jg.g.NumVertices() }

// Edges returns the communication edges.
func (jg *Graph) Edges() []graph.Edge { return jg.g.Edges() }

// Weight returns the communication weight between tasks a and b (0 when
// they do not communicate directly).
func (jg *Graph) Weight(a, b int) float64 {
	w, ok := jg.g.EdgeWeight(a, b)
	if !ok {
		return 0
	}
	return w
}

// TotalWeight returns the sum of all communication edge weights.
func (jg *Graph) TotalWeight() float64 { return jg.g.TotalWeight() }

// CommIntensity returns the maximum edge weight — the job-level
// communication intensity used to scale the communication term of the
// utility function (0 for single-task jobs, which never communicate).
func (jg *Graph) CommIntensity() float64 {
	var max float64
	for _, e := range jg.g.Edges() {
		if e.Weight > max {
			max = e.Weight
		}
	}
	return max
}

// Normalized returns a copy of the graph with every edge weight divided by
// the given total machine bandwidth, implementing §4.1.1: "this weight is
// normalized by the total available bandwidth in the physical machine."
func (jg *Graph) Normalized(totalBandwidth float64) *Graph {
	out := &Graph{g: graph.New()}
	for i := 0; i < jg.Tasks(); i++ {
		out.g.AddVertex(jg.g.Label(i))
	}
	for _, e := range jg.g.Edges() {
		w := e.Weight
		if totalBandwidth > 0 {
			w /= totalBandwidth
		}
		out.g.AddEdge(e.U, e.V, w)
	}
	return out
}

// Underlying exposes the raw graph for the partitioner.
func (jg *Graph) Underlying() *graph.Graph { return jg.g }
