package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gputopo/internal/eventlog"
	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
	"gputopo/internal/serveapi/client"
	"gputopo/internal/workload"
)

// pinnedState fetches /v1/state, strips the volatile fields and returns
// both the struct and its canonical JSON bytes.
func pinnedState(t *testing.T, c *client.Client) (*serveapi.StateResponse, []byte) {
	t.Helper()
	st, err := c.State(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	st.ClearVolatile()
	js, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return st, js
}

// TestKillAndRestartRecovery is the acceptance test of the durability
// tentpole: drive a realistic mixed workload (submits saturating the
// cluster, releases waking queued jobs) against a durable server, kill
// it WITHOUT the shutdown snapshot, restart on the same log, and pin
// /v1/state byte-for-byte (volatile fields cleared). Then shut down
// gracefully and check the snapshot bounds the next replay to a single
// record while still reproducing the state byte-for-byte.
func TestKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	spec := specArg(t, "minsky:2")
	cfg := Config{Spec: spec, Policy: schedcore.TopoAwareP, LogPath: logPath, SnapshotEvery: -1}

	topo, err := spec.Build(spec.EffectiveMachines(1), false)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 30, Seed: 42, ArrivalRate: 10}, topo)
	if err != nil {
		t.Fatal(err)
	}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	ctx := ctxT(t)

	// Mixed traffic: every 6th submit is followed by releasing the oldest
	// still-running job, so the log carries release + wake-up rounds, not
	// just a submit burst.
	var placed []string
	released := 0
	for i, j := range jobs {
		jr, err := c1.SubmitJob(ctx, serveapi.JobRequest{
			ID: j.ID, Model: j.Model.String(), BatchSize: j.BatchSize,
			GPUs: j.GPUs, MinUtility: j.MinUtility, Iterations: j.Iterations,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", j.ID, err)
		}
		if jr.Status == "placed" {
			placed = append(placed, jr.ID)
		}
		if i%6 == 5 && released < len(placed) {
			rr, err := c1.ReleaseJob(ctx, placed[released])
			if err != nil || rr.Status != "released" {
				t.Fatalf("release %s: %+v %v", placed[released], rr, err)
			}
			released++
		}
	}
	st1, js1 := pinnedState(t, c1)
	if len(st1.Running) == 0 || len(st1.Queue) == 0 {
		t.Fatalf("workload left no mixed state to recover: %+v", st1)
	}
	dec1, _, err := c1.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Kill() // crash: no shutdown snapshot

	// Restart on the raw log: replay re-drives every record.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if srv2.Replayed() == 0 {
		t.Fatal("restart replayed nothing")
	}
	ts2 := httptest.NewServer(srv2.Handler())
	c2 := client.New(ts2.URL)

	_, js2 := pinnedState(t, c2)
	if string(js1) != string(js2) {
		t.Fatalf("/v1/state diverged across kill+restart:\n before: %s\n after:  %s", js1, js2)
	}
	dec2, _, err := c2.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec1, dec2) {
		t.Fatalf("decision ring diverged: %d vs %d records", len(dec1), len(dec2))
	}

	// The recovered server keeps serving: submit once more, then shut
	// down gracefully — the final snapshot truncates the log.
	if _, err := c2.SubmitJob(ctx, serveapi.JobRequest{ID: "post-crash", GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	_, js2b := pinnedState(t, c2)
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation: replay is bounded to exactly the snapshot record.
	srv3, err := New(cfg)
	if err != nil {
		t.Fatalf("post-snapshot recovery failed: %v", err)
	}
	if srv3.Replayed() != 1 {
		t.Fatalf("snapshot did not bound replay: %d records replayed, want 1", srv3.Replayed())
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	defer srv3.Close()
	_, js3 := pinnedState(t, client.New(ts3.URL))
	if string(js2b) != string(js3) {
		t.Fatalf("/v1/state diverged across snapshot restore:\n before: %s\n after:  %s", js2b, js3)
	}
}

// TestSnapshotEveryBoundsReplay: with SnapshotEvery=8 a long submit
// stream keeps the log short — the next open replays far fewer records
// than the operations performed.
func TestSnapshotEveryBoundsReplay(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	cfg := Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP, LogPath: logPath, SnapshotEvery: 8}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL)
	ctx := ctxT(t)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("s%d", i), GPUs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var since int
	srv.do(func() { since = srv.log.SinceRewrite() })
	if since >= n {
		t.Fatalf("log never snapshotted: %d records since rewrite after %d ops", since, n)
	}
	ts.Close()
	srv.Kill() // keep the raw post-snapshot tail

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	// Replay = 1 snapshot + the bounded tail; far below 2*n records a
	// raw log of n submits+rounds+places would hold.
	if srv2.Replayed() > 2*8+2 {
		t.Fatalf("replay not bounded: %d records", srv2.Replayed())
	}
	var queued, running int
	srv2.do(func() {
		queued = srv2.core.QueueLen()
		running = len(srv2.core.State().Jobs())
	})
	if running+queued != n {
		t.Fatalf("recovered %d running + %d queued, want %d total", running, queued, n)
	}
}

// TestReplayDivergenceFailsLoudly hand-writes a log whose place record
// contradicts what the policies recompute: recovery must refuse to
// start rather than serve a cluster its journal does not describe.
func TestReplayDivergenceFailsLoudly(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	l, err := eventlog.Open(logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := serveapi.JobSpec{
		JobRequest: serveapi.JobRequest{ID: "d1", Model: "AlexNet", BatchSize: 4, GPUs: 2},
		Arrival:    0.5,
	}
	records := []eventlog.Record{
		{Type: eventlog.TypeSubmit, Time: 0.5, Job: &spec},
		{Type: eventlog.TypeRound, Time: 0.5},
		// The recomputed round will place d1 — but on whatever GPUs the
		// policy picks, with seq 1. This record claims a different
		// placement entirely.
		{Type: eventlog.TypePlace, Time: 0.5, Decision: &serveapi.DecisionRecord{
			Seq: 1, JobID: "d1", Placed: true, GPUs: []int{97, 98},
		}},
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP, LogPath: logPath})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergent log accepted: %v", err)
	}
}

// TestReplayToleratesTornBatch: a crash can persist a round record but
// lose the place records behind it (the batch never synced). Recovery
// must accept the log — the round's recomputed placements were never
// acked, so there is nothing to verify them against.
func TestReplayToleratesTornBatch(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	l, err := eventlog.Open(logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := serveapi.JobSpec{
		JobRequest: serveapi.JobRequest{ID: "t1", Model: "AlexNet", BatchSize: 4, GPUs: 2},
		Arrival:    1,
	}
	for _, r := range []eventlog.Record{
		{Type: eventlog.TypeSubmit, Time: 1, Job: &spec},
		{Type: eventlog.TypeRound, Time: 1},
		// ...and the place records are gone with the crash.
	} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP, LogPath: logPath})
	if err != nil {
		t.Fatalf("torn batch rejected: %v", err)
	}
	defer srv.Close()
	var running int
	srv.do(func() { running = len(srv.core.State().Jobs()) })
	if running != 1 {
		t.Fatalf("t1 not recovered as running: %d jobs", running)
	}
}

// TestRecoveryMonotonicClock: the restarted server's clock resumes past
// the log's highest timestamp, so post-restart arrivals never precede
// recovered ones.
func TestRecoveryMonotonicClock(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	var fake float64
	cfg := Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP, LogPath: logPath,
		Now: func() float64 { return fake }}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL)
	ctx := ctxT(t)
	fake = 100
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "early", GPUs: 4, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "waits", GPUs: 4, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	srv.Kill()

	fake = 0 // the process restarted; its time source reset
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	c2 := client.New(ts2.URL)
	jr, err := c2.SubmitJob(ctx, serveapi.JobRequest{ID: "later", GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Time < 100 {
		t.Fatalf("clock went backwards after restart: t=%v", jr.Time)
	}
	st, err := c2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range st.Queue {
		if q.ID == "later" && q.Arrival < 100 {
			t.Fatalf("post-restart arrival %v precedes recovered arrivals", q.Arrival)
		}
	}
}

// TestFsyncEveryBatchesSyncs pins the group-commit relaxation: with
// FsyncEvery=4, eight sequential submits (one batch each) pay exactly
// two fsyncs where the default pays eight — that IS the durability
// trade the flag documents, counted rather than simulated. Graceful
// close still syncs the tail, so a restart recovers every job either
// way.
func TestFsyncEveryBatchesSyncs(t *testing.T) {
	syncsAfter := func(fsyncEvery int) (int, Config) {
		logPath := filepath.Join(t.TempDir(), "events.log")
		cfg := Config{
			Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP,
			LogPath: logPath, SnapshotEvery: -1, FsyncEvery: fsyncEvery,
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		c := client.New(ts.URL)
		ctx := ctxT(t)
		for i := 0; i < 8; i++ {
			if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("s%d", i), GPUs: 1}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := c.State(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Log == nil {
			t.Fatal("durable server reports no log gauges")
		}
		if st.Log.Records == 0 || st.Log.BytesSinceSnapshot == 0 {
			t.Fatalf("log gauges empty after 8 submits: %+v", st.Log)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		return st.Log.Syncs, cfg
	}

	def, _ := syncsAfter(0)
	if def != 8 {
		t.Fatalf("default group commit issued %d fsyncs for 8 batches, want 8", def)
	}
	batched, cfg := syncsAfter(4)
	if batched != 2 {
		t.Fatalf("FsyncEvery=4 issued %d fsyncs for 8 batches, want 2", batched)
	}

	// Durability after graceful close is unaffected: all 8 jobs recover.
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var total int
	srv.do(func() { total = srv.core.QueueLen() + len(srv.core.State().Jobs()) })
	if total != 8 {
		t.Fatalf("recovered %d jobs under FsyncEvery, want 8", total)
	}
}
