// Package serve is the durable toposerve engine behind the /v1 HTTP
// API. One single-writer goroutine owns the scheduling core; HTTP
// handlers enqueue typed operations and wait. The loop drains every
// operation that is ready into one batch, applies them, runs ONE
// scheduling round over the whole batch, journals everything to the
// event log and fsyncs once (group commit) before replying — so the
// marginal cost of an arrival under load is an O(1) queue insert plus a
// share of one Schedule call and one fsync.
//
// Durability: every accepted submit/release/withdraw is an event-log
// record; every Schedule call is a round record; every placement is a
// place record. On start the log replays through the same code paths
// (rounds re-run Schedule at exactly the batch boundaries live traffic
// produced), recomputed placements are verified against the journaled
// ones, and a snapshot record — written on graceful shutdown and every
// SnapshotEvery appended records — bounds the replay.
//
// Admission control: when the wait queue is at MaxQueue, submits are
// rejected with 429 and a Retry-After hint before touching the core.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/eventlog"
	"gputopo/internal/job"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
	"gputopo/internal/sweep"
	"gputopo/internal/topology"
)

const (
	// decisionLogCap bounds the in-memory decision ring: old entries are
	// dropped once the ring is full, appends stay O(1) on the writer loop.
	decisionLogCap = 4096
	// maxBatch bounds how many queued operations one scheduling round
	// amortizes, so a flood cannot starve reads on the same loop.
	maxBatch = 256
	// DefaultSnapshotEvery is the replay bound when Config.SnapshotEvery
	// is zero: once this many records accumulate after the last snapshot,
	// the loop rewrites the log to a fresh snapshot.
	DefaultSnapshotEvery = 4096
	// DefaultRetryAfterSec is the Retry-After hint on 429 responses when
	// Config.RetryAfterSec is zero.
	DefaultRetryAfterSec = 1
)

// Config configures a Server.
type Config struct {
	// Spec is the physical topology to serve (sweep's canonical specs, so
	// a served cluster and a simulated one are bit-compatible).
	Spec sweep.TopologySpec
	// Policy is the placement policy.
	Policy schedcore.Policy
	// Discipline selects the queue discipline (schedcore.ParseDiscipline
	// names: "fifo", "priority"). Empty means FIFO-by-arrival, which is
	// byte-compatible with logs written before disciplines existed.
	Discipline string
	// Preemption enables topology-aware preemption: positive-priority
	// jobs that cannot place may evict strictly lower-priority running
	// jobs. A durable server must be reopened with the same Discipline
	// and Preemption it logged under, or replay diverges.
	Preemption bool
	// LogPath enables durability: the event log lives there, is replayed
	// on start and group-committed per batch. Empty means in-memory only.
	LogPath string
	// MaxQueue is the admission-control depth limit: submits arriving
	// with the wait queue at this length get 429 + Retry-After. Zero
	// means unlimited.
	MaxQueue int
	// SnapshotEvery bounds replay: after this many records accumulate
	// past the last snapshot the log is rewritten. Zero = default;
	// negative disables automatic snapshots (graceful Close still writes
	// one).
	SnapshotEvery int
	// RetryAfterSec is the Retry-After hint (seconds) on 429. Zero =
	// default.
	RetryAfterSec int
	// FsyncEvery relaxes group commit: the log is fsynced once every N
	// batches instead of every batch, trading the durability of up to
	// N-1 acked batches for lower tail latency under bursty load. 0 or 1
	// keeps the default (every batch durable before its acks). Draining,
	// snapshots and Close always sync regardless.
	FsyncEvery int
	// Now overrides the server's time source (seconds, monotonic) for
	// tests. The served clock is Now() plus the base recovered from the
	// log, so time stays monotonic across restarts. Nil = wall time
	// since start.
	Now func() float64
	// DisablePlaceCache turns off the canonical-shape placement cache.
	// Decisions are identical either way, so — unlike Discipline and
	// Preemption — the switch may differ between a log's writer and its
	// replayer without diverging.
	DisablePlaceCache bool
}

// Server drives one scheduling core against one physical topology. All
// core access happens on the single writer goroutine (loop); HTTP
// handlers enqueue ops or closures and wait — the core itself is never
// touched concurrently, which is the invariant its purity contract
// requires.
type Server struct {
	cfg     Config
	core    *schedcore.Core
	clk     *schedcore.ManualClock
	topo    *topology.Topology
	topoKey string
	started time.Time

	// pubFree, pubMaxFree and pubFreeMach publish the cluster's free
	// counters (total free GPUs, the largest free block on one machine,
	// machines with any free GPU) after every batch, so a multi-domain
	// router can read them without a loop round-trip. Atomic because
	// readers live on other goroutines.
	pubFree     atomic.Int64
	pubMaxFree  atomic.Int64
	pubFreeMach atomic.Int64

	// clockBase shifts the time source so the served clock resumes from
	// the recovered log's highest timestamp — arrivals stay monotonic
	// across restarts.
	clockBase float64

	ops       chan *op
	cmds      chan func()
	quit      chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
	draining  atomic.Bool

	log *eventlog.Log
	// logErr is sticky: once an append/sync/rewrite fails the journal no
	// longer matches the core, so the server refuses further writes (500)
	// rather than diverge silently.
	logErr error

	// Owned by the writer goroutine.
	jobs map[string]*job.Job // every accepted, not-yet-released job
	// decisions is a circular buffer: once it reaches decisionLogCap,
	// decHead marks the oldest record and appends overwrite in place.
	decisions []serveapi.DecisionRecord
	decHead   int
	decSeq    int
	// statsBase carries the scheduler counters a snapshot absorbed;
	// reported stats are statsBase + the live core's counters.
	statsBase schedcore.Stats
	// batches / batchedOps instrument group commit (batchedOps/batches =
	// mean amortization); replayed counts log records applied at start.
	batches    int
	batchedOps int
	replayed   int
	// unsynced counts batches committed since the last fsync (fsync
	// batching); snapshots counts snapshot rewrites this process wrote.
	unsynced  int
	snapshots int

	// replayExpect holds the current replay round's recomputed
	// placements, consumed and verified by the following place records.
	replayExpect []serveapi.DecisionRecord
	replayMax    float64
	replaySaw    bool
}

type opKind int

const (
	opSubmit opKind = iota
	opRelease
)

// op is one write operation enqueued to the batching loop. The loop
// fills the response fields and closes done.
type op struct {
	kind opKind
	req  serveapi.JobRequest // opSubmit
	id   string              // opRelease in; resolved ID out for opSubmit

	status     int // HTTP status; 0 means 200 with the typed response
	errCode    string
	errMsg     string
	retryAfter int
	accepted   bool // mutated core state (and journaled)
	released   bool // opRelease freed GPUs (schedule ran)
	jobResp    serveapi.JobResponse
	relResp    serveapi.ReleaseResponse
	done       chan struct{}
}

func (o *op) fail(status int, code, format string, args ...any) {
	o.status = status
	o.errCode = code
	o.errMsg = fmt.Sprintf(format, args...)
}

// New builds the substrate for the topology spec (the same
// profile-store construction the sweep engine uses), replays the event
// log when one is configured, and starts the writer loop.
func New(cfg Config) (*Server, error) {
	topo, err := cfg.Spec.Build(cfg.Spec.EffectiveMachines(1), false)
	if err != nil {
		return nil, err
	}
	maxGPUs := topo.NumGPUs()
	if maxGPUs > 8 {
		maxGPUs = 8
	}
	profiles := profile.Generate(topo, maxGPUs)
	mapper, err := core.NewMapper(profiles, core.DefaultWeights())
	if err != nil {
		return nil, err
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.RetryAfterSec == 0 {
		cfg.RetryAfterSec = DefaultRetryAfterSec
	}
	disc, err := schedcore.ParseDiscipline(cfg.Discipline)
	if err != nil {
		return nil, err
	}
	clk := schedcore.NewManualClock(0)
	sched := schedcore.New(cfg.Policy, cluster.NewState(topo), mapper,
		schedcore.WithClock(clk), schedcore.WithQueueDiscipline(disc))
	if cfg.Preemption {
		sched.SetPreemption(true)
	}
	if cfg.DisablePlaceCache {
		sched.SetPlaceCache(false)
	}
	s := &Server{
		cfg:      cfg,
		core:     sched,
		clk:      clk,
		topo:     topo,
		topoKey:  cfg.Spec.Key(),
		ops:      make(chan *op),
		cmds:     make(chan func()),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
		jobs:     map[string]*job.Job{},
	}
	if cfg.LogPath != "" {
		l, err := eventlog.Open(cfg.LogPath, s.applyRecord)
		if err != nil {
			return nil, fmt.Errorf("serve: recovering %s: %w", cfg.LogPath, err)
		}
		s.log = l
		// Leftover expected placements mean the tail lost place records
		// after a committed round — the aftermath of a crash mid-batch.
		// The recomputed decisions are already in the ring; nothing to
		// verify them against, which is fine: they were never acked.
		s.replayExpect = nil
		if s.replayMax > s.clockBase {
			s.clockBase = s.replayMax
		}
	}
	s.publishFree()
	s.started = time.Now()
	go s.loop()
	return s, nil
}

// publishFree refreshes the atomic free-GPU counters from the cluster
// state. Called wherever allocations may have changed, always from the
// goroutine that owns the core.
func (s *Server) publishFree() {
	st := s.core.State()
	s.pubFree.Store(int64(st.FreeGPUCount()))
	s.pubMaxFree.Store(int64(st.MaxFreeGPUs()))
	s.pubFreeMach.Store(int64(st.FreeMachines()))
}

// FreeCounters reads the published free counters: the cluster's total
// free GPUs, the largest free block on one machine and the number of
// machines with any free GPU, as of the last completed batch. Safe from
// any goroutine.
func (s *Server) FreeCounters() (free, maxOnMachine, freeMachines int) {
	return int(s.pubFree.Load()), int(s.pubMaxFree.Load()), int(s.pubFreeMach.Load())
}

// JobIDs returns the IDs of every accepted, not-yet-released job
// (running and queued), sorted, read on the writer goroutine. After a
// durable start this is the replayed population — the state a sharded
// front-end must rebuild its routing table from. Returns false when the
// server is shut down.
func (s *Server) JobIDs() ([]string, bool) {
	var ids []string
	ok := s.do(func() {
		ids = make([]string, 0, len(s.jobs))
		for id := range s.jobs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	})
	return ids, ok
}

// Topology returns the served physical topology (immutable).
func (s *Server) Topology() *topology.Topology { return s.topo }

// now returns the served clock: the recovered base plus the time
// source's reading.
func (s *Server) now() float64 {
	if s.cfg.Now != nil {
		return s.clockBase + s.cfg.Now()
	}
	return s.clockBase + time.Since(s.started).Seconds()
}

// Replayed returns the number of event-log records applied at startup —
// the measured replay bound.
func (s *Server) Replayed() int { return s.replayed }

// Durable reports whether an event log backs this server.
func (s *Server) Durable() bool { return s.log != nil }

// loop is the single writer: it owns the core and every mutable server
// field. Ready operations are drained into one batch per iteration.
func (s *Server) loop() {
	defer close(s.loopDone)
	batch := make([]*op, 0, maxBatch)
	for {
		select {
		case o := <-s.ops:
			batch = append(batch[:0], o)
		drain:
			for len(batch) < maxBatch {
				select {
				case o2 := <-s.ops:
					batch = append(batch, o2)
				default:
					break drain
				}
			}
			s.processBatch(batch)
		case fn := <-s.cmds:
			fn()
		case <-s.quit:
			return
		}
	}
}

// submit enqueues an op and waits for the loop to process it. Returns
// false when the server is shut down before the op is accepted.
func (s *Server) submit(o *op) bool {
	select {
	case s.ops <- o:
	case <-s.quit:
		return false
	}
	<-o.done
	return true
}

// do runs fn on the writer goroutine and waits for it. Returns false
// when the server is shut down.
func (s *Server) do(fn func()) bool {
	done := make(chan struct{})
	select {
	case s.cmds <- func() { fn(); close(done) }:
		<-done
		return true
	case <-s.quit:
		return false
	}
}

// processBatch applies every op in order, runs one scheduling round if
// any op changed scheduler state, journals the batch and fsyncs once,
// then fills each op's response.
func (s *Server) processBatch(batch []*op) {
	now := s.now()
	s.clk.Set(now)
	s.batches++
	s.batchedOps += len(batch)

	needRound := false
	for _, o := range batch {
		switch o.kind {
		case opSubmit:
			s.applySubmit(o, now, &needRound)
		case opRelease:
			s.applyRelease(o, &needRound)
		}
	}

	var roundRecs []serveapi.DecisionRecord
	if needRound {
		// Each iteration journals its own round record so replay batches
		// at exactly the same boundaries; place and evict records journal
		// the results for divergence checking. A round that evicted is
		// followed by another round at the same clock: the victims are
		// back in the queue and deserve an immediate re-placement attempt,
		// exactly like the simulator's multi-round loop. Termination: each
		// preemptive placement swaps strictly lower-priority victims for a
		// higher-priority runner, so the running set's priority multiset
		// strictly climbs.
		for {
			s.logAppend(eventlog.Record{Type: eventlog.TypeRound, Time: now})
			recs := s.appendDecisions(s.core.Schedule())
			evicted := false
			for i := range recs {
				switch {
				case recs[i].Evicted:
					evicted = true
					s.logAppend(eventlog.Record{Type: eventlog.TypeEvict, Time: now, Decision: &recs[i]})
				case recs[i].Placed:
					s.logAppend(eventlog.Record{Type: eventlog.TypePlace, Time: now, Decision: &recs[i]})
				}
			}
			roundRecs = append(roundRecs, recs...)
			if !evicted {
				break
			}
		}
	}

	// Group commit: one fsync covers every record of the batch. Ops are
	// answered only after their records are durable.
	commitErr := s.commit()

	submitted := map[string]bool{}
	for _, o := range batch {
		if o.kind == opSubmit && o.accepted {
			submitted[o.id] = true
		}
	}
	for _, o := range batch {
		s.finish(o, now, roundRecs, submitted, commitErr)
		close(o.done)
	}
	s.maybeSnapshot(now)
	s.publishFree()
}

// applySubmit admits, validates and submits one job (no scheduling yet).
func (s *Server) applySubmit(o *op, now float64, needRound *bool) {
	if s.log != nil && s.logErr != nil {
		o.fail(500, serveapi.CodeInternal, "event log unavailable: %v", s.logErr)
		return
	}
	id := o.req.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", len(s.jobs)+1)
		for s.jobs[id] != nil {
			id = "x" + id
		}
	}
	o.id = id
	if s.jobs[id] != nil {
		o.fail(409, serveapi.CodeJobExists, "job %s already exists", id)
		return
	}
	if s.cfg.MaxQueue > 0 && s.core.QueueLen() >= s.cfg.MaxQueue {
		o.retryAfter = s.cfg.RetryAfterSec
		o.fail(429, serveapi.CodeQueueFull, "queue depth %d at limit %d", s.core.QueueLen(), s.cfg.MaxQueue)
		return
	}
	spec := serveapi.JobSpec{JobRequest: o.req, Arrival: now}
	spec.ID = id
	j, err := spec.Job()
	if err != nil {
		o.fail(400, serveapi.CodeInvalidJob, "%v", err)
		return
	}
	if err := s.core.Submit(j); err != nil {
		o.fail(400, serveapi.CodeInvalidJob, "%v", err)
		return
	}
	s.jobs[id] = j
	o.accepted = true
	// Journal the fully resolved spec so replay rebuilds the exact job
	// without re-running the defaulting.
	resolved := serveapi.SpecOf(j)
	s.logAppend(eventlog.Record{Type: eventlog.TypeSubmit, Time: now, Job: &resolved})
	*needRound = true
}

// applyRelease frees a running job's GPUs (a scheduling round follows)
// or withdraws a queued one.
func (s *Server) applyRelease(o *op, needRound *bool) {
	id := o.id
	if s.jobs[id] == nil {
		o.fail(404, serveapi.CodeJobNotFound, "no queued or running job %q", id)
		return
	}
	if s.log != nil && s.logErr != nil {
		o.fail(500, serveapi.CodeInternal, "event log unavailable: %v", s.logErr)
		return
	}
	now := s.clk.Now()
	if s.core.State().Allocation(id) != nil {
		if err := s.core.Release(id); err != nil {
			o.fail(500, serveapi.CodeInternal, "%v", err)
			return
		}
		delete(s.jobs, id)
		o.accepted = true
		o.released = true
		s.logAppend(eventlog.Record{Type: eventlog.TypeRelease, Time: now, JobID: id})
		*needRound = true
		return
	}
	if s.core.Withdraw(id) {
		delete(s.jobs, id)
		o.accepted = true
		s.logAppend(eventlog.Record{Type: eventlog.TypeWithdraw, Time: now, JobID: id})
		o.relResp = serveapi.ReleaseResponse{ID: id, Status: "withdrawn"}
		return
	}
	o.fail(404, serveapi.CodeJobNotFound, "no queued or running job %q", id)
}

// finish fills op responses from the round's decisions.
func (s *Server) finish(o *op, now float64, roundRecs []serveapi.DecisionRecord, submitted map[string]bool, commitErr error) {
	if o.errCode != "" {
		return
	}
	if commitErr != nil && o.accepted {
		// The op mutated the core but its record is not durable; the
		// journal is now behind and logErr (sticky) blocks further
		// writes. Answer 500 so the client does not trust the ack.
		o.fail(500, serveapi.CodeInternal, "event log commit failed: %v", commitErr)
		return
	}
	switch o.kind {
	case opSubmit:
		resp := serveapi.JobResponse{ID: o.id, Time: now}
		// The LAST record wins: under preemption a job can be placed in
		// one round of the batch and evicted in a later one — its final
		// status is back-in-queue, reason "preempted".
		var mine *serveapi.DecisionRecord
		for i := len(roundRecs) - 1; i >= 0; i-- {
			if roundRecs[i].JobID == o.id {
				mine = &roundRecs[i]
				break
			}
		}
		if mine != nil && mine.Placed {
			resp.Status = "placed"
			resp.GPUs = mine.GPUs
			resp.Utility = mine.Utility
			resp.SLOViolated = mine.SLOViolated
		} else {
			resp.Status = "queued"
			if mine != nil {
				resp.Reason = mine.Reason
			}
			if resp.Reason == "" {
				resp.Reason = "no-capacity"
			}
			for i, qj := range s.core.Queued() {
				if qj.ID == o.id {
					resp.QueuePosition = i + 1
					break
				}
			}
		}
		o.jobResp = resp
	case opRelease:
		if o.released {
			// Unblocked: jobs this batch's round placed from the wait
			// queue — arrivals admitted in the same batch placed on their
			// own account, not the release's.
			var unblocked []string
			for i := range roundRecs {
				if roundRecs[i].Placed && !submitted[roundRecs[i].JobID] {
					unblocked = append(unblocked, roundRecs[i].JobID)
				}
			}
			o.relResp = serveapi.ReleaseResponse{ID: o.id, Status: "released", Unblocked: unblocked}
		}
		// Withdrawn responses were filled in applyRelease.
	}
}

// appendDecisions assigns sequence numbers to a round's decisions and
// appends them to the ring; shared verbatim between live batches and
// replay so the ring reconstructs identically. A preemptive placement
// expands into its eviction notices (one ring record per victim, so
// /v1/decisions clients learn about displaced jobs) followed by the
// preemptor's own placement record.
func (s *Server) appendDecisions(ds []*schedcore.Decision) []serveapi.DecisionRecord {
	recs := make([]serveapi.DecisionRecord, 0, len(ds))
	ring := func(r serveapi.DecisionRecord) {
		if len(s.decisions) == decisionLogCap {
			s.decisions[s.decHead] = r
			s.decHead = (s.decHead + 1) % decisionLogCap
		} else {
			s.decisions = append(s.decisions, r)
		}
		recs = append(recs, r)
	}
	for _, d := range ds {
		for _, ev := range d.Evictions {
			s.decSeq++
			ring(serveapi.DecisionRecord{
				Seq:         s.decSeq,
				Time:        d.Time,
				JobID:       ev.Job.ID,
				Reason:      "preempted",
				Evicted:     true,
				PreemptedBy: d.Job.ID,
				GPUs:        append([]int(nil), ev.GPUs...),
			})
		}
		s.decSeq++
		r := serveapi.DecisionRecord{
			Seq:    s.decSeq,
			Time:   d.Time,
			JobID:  d.Job.ID,
			Placed: !d.Postponed,
			Reason: d.Reason,
		}
		if !d.Postponed {
			r.GPUs = append([]int(nil), d.Placement.GPUs...)
			r.Utility = d.Placement.Utility
			r.SLOViolated = d.SLOViolated
			r.Postponements = d.Postponements
		}
		ring(r)
	}
	return recs
}

// logAppend journals one record, making log failures sticky.
func (s *Server) logAppend(rec eventlog.Record) {
	if s.log == nil || s.logErr != nil {
		return
	}
	if err := s.log.Append(rec); err != nil {
		s.logErr = err
	}
}

// commit is the group-commit fsync for the batch. With FsyncEvery > 1
// the fsync itself is batched further: only every Nth batch pays it,
// and the acks of the batches between ride on the next sync — the
// relaxed-durability mode Config.FsyncEvery documents. Draining always
// syncs so a graceful shutdown loses nothing.
func (s *Server) commit() error {
	if s.log == nil {
		return nil
	}
	if s.logErr != nil {
		return s.logErr
	}
	s.unsynced++
	if s.cfg.FsyncEvery > 1 && s.unsynced < s.cfg.FsyncEvery && !s.draining.Load() {
		return nil
	}
	s.unsynced = 0
	if err := s.log.Sync(); err != nil {
		s.logErr = err
		return err
	}
	return nil
}

// combinedStats merges the live core's counters with the snapshot base.
func (s *Server) combinedStats() schedcore.Stats {
	cur := s.core.Stats()
	b := s.statsBase
	cur.Decisions += b.Decisions
	cur.Placements += b.Placements
	cur.Postponements += b.Postponements
	cur.SLOViolations += b.SLOViolations
	cur.GateSkips += b.GateSkips
	cur.WakeSkips += b.WakeSkips
	cur.Preemptions += b.Preemptions
	cur.Evictions += b.Evictions
	cur.DecisionTime += b.DecisionTime
	if b.MaxDecision > cur.MaxDecision {
		cur.MaxDecision = b.MaxDecision
	}
	return cur
}

// BeginDrain stops admitting submissions (503 draining); releases and
// reads continue so running work can finish. Safe from any goroutine.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close shuts down gracefully: stop the loop, write a final snapshot
// (bounding the next start's replay to zero records) and close the log.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.quit)
		<-s.loopDone
		if s.log != nil {
			if s.logErr == nil {
				// The loop has exited; single-threaded access is ours.
				s.writeSnapshot(s.now())
				err = s.logErr
			} else {
				err = s.logErr
			}
			if cerr := s.log.Close(); err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Kill stops the server WITHOUT the final snapshot — the shutdown path
// of a crash, kept honest for the kill-and-restart recovery tests. All
// acked operations are already fsynced, so nothing is lost; the next
// start replays the raw log.
func (s *Server) Kill() {
	s.closeOnce.Do(func() {
		close(s.quit)
		<-s.loopDone
		if s.log != nil {
			s.log.Close()
		}
	})
}
