package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gputopo/internal/perfmodel"
	"gputopo/internal/serveapi"
)

// Handler wires the /v1 HTTP API. Every response body is a serveapi
// type; every non-2xx response is the uniform error envelope.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/decisions", s.handleDecisions)
	mux.HandleFunc("GET /v1/state", s.handleState)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleSubmit is POST /v1/jobs: decode, fast-fail obvious rejects,
// then enqueue into the batching loop and answer with this job's
// decision once its record is durable.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serveapi.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidJSON, "invalid job JSON: %v", err)
		return
	}
	// Model parse is read-only: reject before taking a loop slot. The
	// loop re-validates the full job either way.
	if req.Model != "" {
		if _, err := perfmodel.ParseNN(req.Model); err != nil {
			serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidJob, "%v", err)
			return
		}
	}
	if s.draining.Load() {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is draining; not admitting jobs")
		return
	}
	o := &op{kind: opSubmit, req: req, done: make(chan struct{})}
	if !s.submit(o) {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	if o.errCode != "" {
		if o.errCode == serveapi.CodeQueueFull {
			serveapi.WriteRetryAfter(w, o.retryAfter, "%s", o.errMsg)
			return
		}
		serveapi.WriteError(w, o.status, o.errCode, "%s", o.errMsg)
		return
	}
	serveapi.WriteJSON(w, o.jobResp)
}

// handleRelease is DELETE /v1/jobs/{id}: release a running job (the
// batch's round lets waiting jobs take the freed GPUs) or withdraw a
// queued one. Releases are allowed while draining so work can finish.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	o := &op{kind: opRelease, id: r.PathValue("id"), done: make(chan struct{})}
	if !s.submit(o) {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	if o.errCode != "" {
		serveapi.WriteError(w, o.status, o.errCode, "%s", o.errMsg)
		return
	}
	serveapi.WriteJSON(w, o.relResp)
}

// handleDecisions is GET /v1/decisions?after=S&limit=N: cursor-paged
// reads of the decision ring, oldest first, with explicit truncation
// reporting when the cursor points below the ring's surviving window.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	limit := decisionLogCap
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidParam, "limit %q must be an integer >= 1", q)
			return
		}
		if n < limit {
			limit = n
		}
	}
	after := 0
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidParam, "after %q must be an integer >= 0", q)
			return
		}
		after = n
	}
	var resp serveapi.DecisionsResponse
	if !s.do(func() { resp = s.decisionsPage(after, limit) }) {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	serveapi.WriteJSON(w, resp)
}

// decisionsPage builds one page: records with seq > after, oldest
// first, at most limit. Runs on the writer goroutine.
func (s *Server) decisionsPage(after, limit int) serveapi.DecisionsResponse {
	resp := serveapi.DecisionsResponse{Decisions: []serveapi.DecisionRecord{}, NextAfter: after}
	n := len(s.decisions)
	if n == 0 {
		return resp
	}
	oldest := s.decisions[s.decHead%n].Seq
	resp.OldestSeq = oldest
	resp.LatestSeq = s.decSeq
	// Records in (after, oldest) were dropped from the ring: the cursor
	// missed them, and the client deserves to know rather than silently
	// skipping the gap.
	resp.Truncated = after < oldest-1
	start := 0
	if after >= oldest {
		start = after - oldest + 1
	}
	for i := start; i < n && len(resp.Decisions) < limit; i++ {
		resp.Decisions = append(resp.Decisions, s.decisions[(s.decHead+i)%n])
	}
	if len(resp.Decisions) > 0 {
		resp.NextAfter = resp.Decisions[len(resp.Decisions)-1].Seq
	}
	return resp
}

// handleState is GET /v1/state.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	var resp serveapi.StateResponse
	ok := s.do(func() { resp = s.stateSnapshot() })
	if !ok {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	serveapi.WriteJSON(w, resp)
}

// logStats gauges the event log (nil when in-memory). Runs on the
// writer goroutine.
func (s *Server) logStats() *serveapi.LogStats {
	if s.log == nil {
		return nil
	}
	return &serveapi.LogStats{
		Records:            s.log.Records(),
		SinceSnapshot:      s.log.SinceRewrite(),
		BytesSinceSnapshot: s.log.BytesSinceRewrite(),
		Snapshots:          s.snapshots,
		ReplayedAtBoot:     s.replayed,
		Syncs:              s.log.Syncs(),
	}
}

// stateSnapshot assembles the full GET /v1/state response. Must run on
// the writer goroutine; the sharded MultiServer calls it per domain and
// merges.
func (s *Server) stateSnapshot() serveapi.StateResponse {
	st := s.core.State()
	topo := st.Topology()
	stats := s.combinedStats()
	resp := serveapi.StateResponse{
		Topology:   s.topoKey,
		Policy:     s.core.Policy().String(),
		Machines:   topo.NumMachines(),
		GPUs:       topo.NumGPUs(),
		FreeGPUs:   st.FreeGPUCount(),
		UptimeSec:  time.Since(s.started).Seconds(),
		ClockSec:   s.now(),
		Durable:    s.log != nil,
		Draining:   s.draining.Load(),
		MaxQueue:   s.cfg.MaxQueue,
		Running:    []serveapi.RunningEntry{},
		Queue:      []serveapi.QueuedEntry{},
		Fragments:  st.Fragmentation(),
		Decisions:  len(s.decisions),
		Discipline: s.core.Discipline(),
		Preemption: s.core.PreemptionEnabled(),
		Stats: serveapi.SchedStats{
			Decisions:       stats.Decisions,
			Placements:      stats.Placements,
			Postponements:   stats.Postponements,
			SLOViolations:   stats.SLOViolations,
			GateSkips:       stats.GateSkips,
			WakeSkips:       stats.WakeSkips,
			Preemptions:     stats.Preemptions,
			Evictions:       stats.Evictions,
			MeanDecisionUs:  float64(stats.MeanDecisionTime()) / float64(time.Microsecond),
			MaxDecisionUs:   float64(stats.MaxDecision) / float64(time.Microsecond),
			TotalDecisionMs: float64(stats.DecisionTime) / float64(time.Millisecond),
		},
		Log: s.logStats(),
	}
	if s.core.PlaceCache() != nil {
		// Live core counters, not combinedStats: the cache runs cold
		// after a recovery, so its traffic is volatile by design and
		// never folds into the durable statsBase.
		live := s.core.Stats()
		resp.PlaceCache = &serveapi.PlaceCacheStats{
			Hits:      live.PlaceCacheHits,
			Misses:    live.PlaceCacheMisses,
			Evictions: live.PlaceCacheEvictions,
		}
	}
	for _, id := range st.Jobs() {
		resp.Running = append(resp.Running, serveapi.RunningEntry{ID: id, GPUs: st.Allocation(id).GPUs})
	}
	for _, qj := range s.core.Queued() {
		resp.Queue = append(resp.Queue, serveapi.QueuedEntry{
			ID: qj.ID, GPUs: qj.GPUs, MinUtility: qj.MinUtility, Arrival: qj.Arrival,
			Priority: qj.Priority,
		})
	}
	for m := 0; m < topo.NumMachines(); m++ {
		resp.Bandwidth = append(resp.Bandwidth, serveapi.BandwidthEntry{Machine: m, FreeGBs: st.FreeBusBandwidth(m)})
	}
	return resp
}
