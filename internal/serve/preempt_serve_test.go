package serve

import (
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
	"gputopo/internal/serveapi/client"
)

// TestServePriorityPreemption drives the preemption path over HTTP: fill
// the cluster with priority-0 jobs, submit a priority-1 job, and check
// the eviction shows up everywhere a client could look — the preemptor's
// placement, the victim back in /v1/queue, eviction notices in
// /v1/decisions, and the stats counters.
func TestServePriorityPreemption(t *testing.T) {
	srv, c := startServer(t, Config{
		Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP,
		Discipline: "priority", Preemption: true,
	})
	ctx := ctxT(t)

	for _, id := range []string{"low1", "low2"} {
		jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: id, GPUs: 2})
		if err != nil || jr.Status != "placed" {
			t.Fatalf("submit %s: %+v %v", id, jr, err)
		}
	}
	jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "high", GPUs: 2, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Status != "placed" {
		t.Fatalf("high-priority job not placed preemptively: %+v", jr)
	}

	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Preemption || st.Discipline != "priority-arrival" {
		t.Fatalf("state misreports config: discipline=%q preemption=%v", st.Discipline, st.Preemption)
	}
	if st.Stats.Preemptions != 1 || st.Stats.Evictions != 1 {
		t.Fatalf("stats: preemptions=%d evictions=%d", st.Stats.Preemptions, st.Stats.Evictions)
	}
	// The victim (youngest priority-0 job) is back in the queue.
	if len(st.Queue) != 1 || st.Queue[0].ID != "low2" || st.Queue[0].Priority != 0 {
		t.Fatalf("queue after eviction: %+v", st.Queue)
	}

	// The decision stream carries the eviction notice before the
	// preemptor's placement.
	decs, _, err := c.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var evict *serveapi.DecisionRecord
	for i := range decs {
		if decs[i].Evicted {
			evict = &decs[i]
		}
	}
	if evict == nil {
		t.Fatalf("no eviction record in decisions: %+v", decs)
	}
	if evict.JobID != "low2" || evict.PreemptedBy != "high" || evict.Reason != "preempted" || len(evict.GPUs) != 2 {
		t.Fatalf("eviction record: %+v", evict)
	}

	// Releasing the preemptor lets the victim resume.
	if _, err := c.ReleaseJob(ctx, "high"); err != nil {
		t.Fatal(err)
	}
	st, err = c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Queue) != 0 || len(st.Running) != 2 {
		t.Fatalf("victim did not resume: queue=%+v running=%+v", st.Queue, st.Running)
	}
	_ = srv
}

// TestKillAndRestartRecoveryWithEvictions extends the durability
// acceptance test to logs that contain evict records: preempt, crash
// without a snapshot, restart, and pin /v1/state and the decision ring
// byte-for-byte. A graceful shutdown then proves a snapshot taken AFTER
// an eviction restores a cluster where preemption still works — running
// jobs restored from the snapshot must remain evictable.
func TestKillAndRestartRecoveryWithEvictions(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	cfg := Config{
		Spec: specArg(t, "minsky:2"), Policy: schedcore.TopoAwareP,
		Discipline: "priority", Preemption: true,
		LogPath: logPath, SnapshotEvery: -1,
	}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	ctx := ctxT(t)

	// Saturate both machines with priority-0 jobs, then preempt twice and
	// queue extra work so the recovered state mixes running, queued and
	// evicted-then-requeued jobs.
	for _, id := range []string{"a", "b", "c", "d"} {
		if jr, err := c1.SubmitJob(ctx, serveapi.JobRequest{ID: id, GPUs: 2}); err != nil || jr.Status != "placed" {
			t.Fatalf("submit %s: %+v %v", id, jr, err)
		}
	}
	if jr, err := c1.SubmitJob(ctx, serveapi.JobRequest{ID: "high1", GPUs: 2, Priority: 1}); err != nil || jr.Status != "placed" {
		t.Fatalf("high1: %+v %v", jr, err)
	}
	if jr, err := c1.SubmitJob(ctx, serveapi.JobRequest{ID: "high2", GPUs: 2, Priority: 2}); err != nil || jr.Status != "placed" {
		t.Fatalf("high2: %+v %v", jr, err)
	}
	if _, err := c1.SubmitJob(ctx, serveapi.JobRequest{ID: "waiter", GPUs: 4}); err != nil {
		t.Fatal(err)
	}
	st1, js1 := pinnedState(t, c1)
	if st1.Stats.Evictions < 2 {
		t.Fatalf("workload produced %d evictions, want >= 2", st1.Stats.Evictions)
	}
	if len(st1.Queue) < 2 {
		t.Fatalf("no evicted jobs waiting: %+v", st1.Queue)
	}
	dec1, _, err := c1.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Kill() // crash: the raw log now contains evict records

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery over evictions failed: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	c2 := client.New(ts2.URL)
	_, js2 := pinnedState(t, c2)
	if string(js1) != string(js2) {
		t.Fatalf("/v1/state diverged across kill+restart with evictions:\n before: %s\n after:  %s", js1, js2)
	}
	dec2, _, err := c2.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec1, dec2) {
		t.Fatalf("decision ring diverged: %d vs %d records", len(dec1), len(dec2))
	}

	// Graceful shutdown writes a snapshot; the restored server must keep
	// the running registry intact so snapshot-restored jobs stay
	// evictable.
	_, js2b := pinnedState(t, c2)
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3, err := New(cfg)
	if err != nil {
		t.Fatalf("post-snapshot recovery failed: %v", err)
	}
	if srv3.Replayed() != 1 {
		t.Fatalf("snapshot did not bound replay: %d records, want 1", srv3.Replayed())
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	defer srv3.Close()
	c3 := client.New(ts3.URL)
	_, js3 := pinnedState(t, c3)
	if string(js2b) != string(js3) {
		t.Fatalf("/v1/state diverged across snapshot restore:\n before: %s\n after:  %s", js2b, js3)
	}
	if jr, err := c3.SubmitJob(ctx, serveapi.JobRequest{ID: "high3", GPUs: 2, Priority: 3}); err != nil || jr.Status != "placed" {
		t.Fatalf("preemption against snapshot-restored jobs failed: %+v %v", jr, err)
	}
	st3, err := c3.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Stats.Evictions <= st1.Stats.Evictions {
		t.Fatalf("no new eviction after snapshot restore: %d vs %d", st3.Stats.Evictions, st1.Stats.Evictions)
	}
}
