package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/eventlog"
	"gputopo/internal/job"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
	"gputopo/internal/serveapi/client"
	"gputopo/internal/sweep"
	"gputopo/internal/workload"
)

// startServer builds a Server and wraps it in httptest plus the typed
// client every test drives the API through.
func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	if cfg.Spec.Key() == "" {
		t.Fatal("startServer: zero spec")
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(ts.URL)
	c.MaxRetryWait = 20 * time.Millisecond
	return srv, c
}

func specArg(t *testing.T, arg string) sweep.TopologySpec {
	t.Helper()
	spec, err := sweep.ParseTopologyArg(arg)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// cloneJob copies a generated job so the reference core and any other
// consumer never share mutable state.
func cloneJob(j *job.Job) *job.Job {
	c := job.New(j.ID, j.Model, j.BatchSize, j.GPUs, j.MinUtility, j.Arrival)
	c.Iterations = j.Iterations
	c.SingleNode = j.SingleNode
	c.AntiCollocate = j.AntiCollocate
	c.Parallelism = j.Parallelism
	return c
}

// TestEndToEndScenario1BurstMatchesSimulator is the acceptance test of
// the serving stack: a scenario-1-style burst submitted over HTTP in
// arrival order must receive exactly the placements a simulator-driven
// core produces for the same arrival order on the same substrate — the
// serving front-end and the simulator are two drivers of one core, so
// their decisions may differ only in clock readings, never in GPUs.
func TestEndToEndScenario1BurstMatchesSimulator(t *testing.T) {
	const topoArg = "minsky:2"
	spec := specArg(t, topoArg)
	topo, err := spec.Build(spec.EffectiveMachines(1), false)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 30, Seed: 42, ArrivalRate: 10}, topo)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the simulator's construction of the core (ManualClock,
	// same profile store), driven submit-by-submit in arrival order with
	// no completions — exactly what the HTTP burst is.
	maxGPUs := topo.NumGPUs()
	if maxGPUs > 8 {
		maxGPUs = 8
	}
	mapper, err := core.NewMapper(profile.Generate(topo, maxGPUs), core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	clk := schedcore.NewManualClock(0)
	ref := schedcore.New(schedcore.TopoAwareP, cluster.NewState(topo), mapper, schedcore.WithClock(clk))
	wantGPUs := map[string][]int{}
	for _, j := range jobs {
		clk.Set(j.Arrival)
		if err := ref.Submit(cloneJob(j)); err != nil {
			t.Fatal(err)
		}
		for _, d := range ref.Schedule() {
			if !d.Postponed {
				wantGPUs[d.Job.ID] = append([]int(nil), d.Placement.GPUs...)
			}
		}
	}

	_, c := startServer(t, Config{Spec: spec, Policy: schedcore.TopoAwareP})
	ctx := ctxT(t)
	gotGPUs := map[string][]int{}
	queued := 0
	for _, j := range jobs {
		jr, err := c.SubmitJob(ctx, serveapi.JobRequest{
			ID:         j.ID,
			Model:      j.Model.String(),
			BatchSize:  j.BatchSize,
			GPUs:       j.GPUs,
			MinUtility: j.MinUtility,
			Iterations: j.Iterations,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", j.ID, err)
		}
		if jr.Status == "placed" {
			gotGPUs[j.ID] = jr.GPUs
		} else {
			queued++
		}
	}
	// Later rounds may also place previously queued jobs (the epoch moves
	// on every placement); those decisions live in the log, not in the
	// submitting POST's response.
	all, truncated, err := c.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("decision ring truncated during a 30-job burst")
	}
	for _, d := range all {
		if d.Placed {
			if _, ok := gotGPUs[d.JobID]; !ok {
				gotGPUs[d.JobID] = d.GPUs
				queued--
			}
		}
	}

	if len(gotGPUs) != len(wantGPUs) {
		t.Fatalf("server placed %d jobs, reference placed %d", len(gotGPUs), len(wantGPUs))
	}
	for id, want := range wantGPUs {
		got, ok := gotGPUs[id]
		if !ok {
			t.Fatalf("job %s placed by reference but queued by server", id)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("job %s: server GPUs %v, reference GPUs %v", id, got, want)
		}
	}
	if queued == 0 {
		t.Fatal("burst never saturated the cluster; the equivalence proves nothing about queuing")
	}
}

// TestServerLifecycle walks the full API surface through the typed
// client: health, submit, duplicate (409 job_exists), state, release
// with wake-up, withdraw, decisions paging and every error envelope.
func TestServerLifecycle(t *testing.T) {
	srv, c := startServer(t, Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP})
	ctx := ctxT(t)

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// Fill the machine (4 GPUs) with two 2-GPU jobs.
	for i := 1; i <= 2; i++ {
		jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("run%d", i), GPUs: 2, BatchSize: 4})
		if err != nil || jr.Status != "placed" {
			t.Fatalf("run%d: %+v %v", i, jr, err)
		}
	}
	// A third 2-GPU job queues.
	jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "waiter", GPUs: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Status != "queued" || jr.QueuePosition != 1 {
		t.Fatalf("waiter response: %+v", jr)
	}

	// Duplicate IDs conflict with the envelope code.
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "waiter", GPUs: 1}); !client.IsCode(err, serveapi.CodeJobExists) {
		t.Fatalf("duplicate: %v", err)
	}
	// Unknown model and invalid fields are invalid_job.
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "bad", GPUs: 1, Model: "ResNet"}); !client.IsCode(err, serveapi.CodeInvalidJob) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "zero", GPUs: 0}); !client.IsCode(err, serveapi.CodeInvalidJob) {
		t.Fatalf("zero GPUs: %v", err)
	}
	// Malformed JSON is invalid_json (raw HTTP: the client cannot emit it).
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %v %v", resp, err)
	}
	resp.Body.Close()

	// State reflects 2 running + 1 queued.
	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Running) != 2 || len(st.Queue) != 1 || st.FreeGPUs != 0 {
		t.Fatalf("state: %+v", st)
	}
	if st.Topology != "minsky:1" || st.Policy != "TOPO-AWARE-P" {
		t.Fatalf("state header: %+v", st)
	}
	if st.Durable || st.MaxQueue != 0 || st.Draining {
		t.Fatalf("in-memory server flags: %+v", st)
	}

	// Releasing a running job frees its GPUs and unblocks the waiter —
	// via the wake-up index, not a queue walk.
	rr, err := c.ReleaseJob(ctx, "run1")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status != "released" || !slices.Contains(rr.Unblocked, "waiter") {
		t.Fatalf("release: %+v", rr)
	}

	// Withdraw a queued job.
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "cancelme", GPUs: 4, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	rr, err = c.ReleaseJob(ctx, "cancelme")
	if err != nil || rr.Status != "withdrawn" {
		t.Fatalf("withdraw: %+v %v", rr, err)
	}
	// Unknown deletes get the job_not_found envelope.
	if _, err := c.ReleaseJob(ctx, "nosuch"); !client.IsCode(err, serveapi.CodeJobNotFound) {
		t.Fatalf("delete nosuch: %v", err)
	}

	// The decision log saw every decision, in order, with monotonic seq.
	all, truncated, err := c.AllDecisions(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(all) == 0 {
		t.Fatalf("decision log: %d records, truncated=%v", len(all), truncated)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatal("decision log out of order")
		}
	}
	// Bad query params get invalid_param envelopes (raw HTTP).
	for _, q := range []string{"limit=zero", "limit=-3", "limit=0", "after=x", "after=-1"} {
		resp, err := http.Get(ts.URL + "/v1/decisions?" + q)
		if err != nil {
			t.Fatal(err)
		}
		var envelope serveapi.ErrorResponse
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d", q, resp.StatusCode)
		}
		if err := decodeBody(resp, &envelope); err != nil || envelope.Error.Code != serveapi.CodeInvalidParam {
			t.Fatalf("%s: envelope %+v (%v)", q, envelope, err)
		}
	}
}

// TestDecisionsPagination drives the after/limit cursor end to end.
func TestDecisionsPagination(t *testing.T) {
	_, c := startServer(t, Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP})
	ctx := ctxT(t)
	// 6 submits: 2 place, 4 queue (each submit is one round deciding the
	// whole queue, so the decision count grows quadratically-ish).
	for i := 0; i < 6; i++ {
		if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("p%d", i), GPUs: 2, BatchSize: 4}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := c.Decisions(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Decisions) != 2 || first.Decisions[0].Seq != 1 || first.NextAfter != 2 {
		t.Fatalf("first page: %+v", first)
	}
	if first.OldestSeq != 1 || first.Truncated {
		t.Fatalf("first page window: %+v", first)
	}
	// Follow the cursor to the end; the concatenation must be gap-free.
	all, truncated, err := c.AllDecisions(ctx, 0)
	if err != nil || truncated {
		t.Fatalf("paging: %v truncated=%v", err, truncated)
	}
	if len(all) == 0 || all[len(all)-1].Seq != first.LatestSeq {
		t.Fatalf("cursor missed the tail: %d records, latest %d", len(all), first.LatestSeq)
	}
	for i := range all {
		if all[i].Seq != i+1 {
			t.Fatalf("gap at %d: seq %d", i, all[i].Seq)
		}
	}
	// A cursor beyond the latest record yields an empty page, echoing the
	// cursor back.
	past, err := c.Decisions(ctx, first.LatestSeq+100, 0)
	if err != nil || len(past.Decisions) != 0 || past.NextAfter != first.LatestSeq+100 {
		t.Fatalf("past-the-end page: %+v %v", past, err)
	}
}

// TestDecisionRingWraps pushes the ring past capacity and checks the
// oldest records drop, pages stay ordered and the truncation is
// reported to cursors that point below the surviving window.
func TestDecisionRingWraps(t *testing.T) {
	srv, c := startServer(t, Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP})
	ctx := ctxT(t)
	srv.do(func() {
		for i := 0; i < decisionLogCap+10; i++ {
			srv.decSeq++
			r := serveapi.DecisionRecord{Seq: srv.decSeq, JobID: "ring"}
			if len(srv.decisions) == decisionLogCap {
				srv.decisions[srv.decHead] = r
				srv.decHead = (srv.decHead + 1) % decisionLogCap
			} else {
				srv.decisions = append(srv.decisions, r)
			}
		}
	})
	page, err := c.Decisions(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Decisions) != decisionLogCap {
		t.Fatalf("ring holds %d, want %d", len(page.Decisions), decisionLogCap)
	}
	if page.OldestSeq != 11 || page.Decisions[0].Seq != 11 {
		t.Fatalf("oldest surviving seq = %d, want 11 (first 10 dropped)", page.Decisions[0].Seq)
	}
	if !page.Truncated {
		t.Fatal("cursor below the window did not report truncation")
	}
	for i := 1; i < len(page.Decisions); i++ {
		if page.Decisions[i].Seq != page.Decisions[i-1].Seq+1 {
			t.Fatalf("ring not flattened in order at %d", i)
		}
	}
	// A cursor inside the surviving window is not truncated.
	page, err = c.Decisions(ctx, 11, 5)
	if err != nil || page.Truncated || page.Decisions[0].Seq != 12 {
		t.Fatalf("in-window page: %+v %v", page, err)
	}
}

// TestAdmissionControl fills the wait queue to MaxQueue and checks the
// 429 + Retry-After envelope, then frees a slot and re-admits.
func TestAdmissionControl(t *testing.T) {
	_, c := startServer(t, Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP, MaxQueue: 2})
	ctx := ctxT(t)
	// Saturate the 4 GPUs, then fill the queue.
	if jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "hog", GPUs: 4, BatchSize: 4}); err != nil || jr.Status != "placed" {
		t.Fatalf("hog: %+v %v", jr, err)
	}
	for i := 0; i < 2; i++ {
		if jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("w%d", i), GPUs: 1}); err != nil || jr.Status != "queued" {
			t.Fatalf("w%d: %+v %v", i, jr, err)
		}
	}
	// The queue is full: the client retries per Retry-After, then
	// surfaces the queue_full APIError.
	rejecting := client.New(baseURL(c), client.WithMaxRetries(1))
	rejecting.MaxRetryWait = time.Millisecond
	_, err := rejecting.SubmitJob(ctx, serveapi.JobRequest{ID: "overflow", GPUs: 1})
	if !client.IsCode(err, serveapi.CodeQueueFull) {
		t.Fatalf("overflow: %v", err)
	}
	var ae *client.APIError
	if !asAPIError(err, &ae) || ae.Status != 429 || ae.RetryAfter < time.Second {
		t.Fatalf("429 shape: %+v", ae)
	}
	if st, err := c.State(ctx); err != nil || st.MaxQueue != 2 || len(st.Queue) != 2 {
		t.Fatalf("state under admission control: %+v %v", st, err)
	}
	// Freeing a queue slot re-admits the next submit without retries.
	if _, err := c.ReleaseJob(ctx, "w0"); err != nil {
		t.Fatal(err)
	}
	if jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "overflow", GPUs: 1}); err != nil || jr.Status != "queued" {
		t.Fatalf("after free: %+v %v", jr, err)
	}
}

// TestGracefulDrain: draining rejects submissions with the draining
// envelope but keeps serving releases and reads.
func TestGracefulDrain(t *testing.T) {
	srv, c := startServer(t, Config{Spec: specArg(t, "minsky:1"), Policy: schedcore.TopoAwareP})
	ctx := ctxT(t)
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "stay", GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "late", GPUs: 1}); !client.IsCode(err, serveapi.CodeDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	st, err := c.State(ctx)
	if err != nil || !st.Draining {
		t.Fatalf("draining state: %+v %v", st, err)
	}
	if rr, err := c.ReleaseJob(ctx, "stay"); err != nil || rr.Status != "released" {
		t.Fatalf("release while draining: %+v %v", rr, err)
	}
}

// TestServerConcurrentSubmissions hammers the batching loop from many
// goroutines — under -race (CI runs it) this is the proof that the
// event-loop serialization protects the core. Conservation must hold:
// every job is either running or queued, and no GPU is double-owned.
func TestServerConcurrentSubmissions(t *testing.T) {
	srv, c := startServer(t, Config{Spec: specArg(t, "mix[minsky:2+dgx1:1]"), Policy: schedcore.TopoAwareP})
	ctx := ctxT(t)
	const n = 40
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.SubmitJob(ctx, serveapi.JobRequest{
				ID: fmt.Sprintf("c%02d", i), GPUs: 1 + i%2, BatchSize: 1 + i%8,
			})
			if err != nil {
				errs <- fmt.Errorf("c%02d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var running, queued, free, gpus, owned, batches, batchedOps int
	srv.do(func() {
		st := srv.core.State()
		running = len(st.Jobs())
		queued = srv.core.QueueLen()
		free = st.FreeGPUCount()
		gpus = st.Topology().NumGPUs()
		for _, id := range st.Jobs() {
			owned += len(st.Allocation(id).GPUs)
		}
		batches = srv.batches
		batchedOps = srv.batchedOps
	})
	if running+queued != n {
		t.Fatalf("running %d + queued %d != submitted %d", running, queued, n)
	}
	if owned+free != gpus {
		t.Fatalf("owned %d + free %d != %d GPUs", owned, free, gpus)
	}
	if batchedOps != n || batches < 1 || batches > n {
		t.Fatalf("batching accounting: %d ops over %d batches", batchedOps, batches)
	}
}

// TestBatchingAmortizesSchedule drives one batch of 8 submits directly
// through the loop and proves the group-commit contract: one scheduling
// round, one round record, every submit journaled — deterministically,
// no goroutine timing involved.
func TestBatchingAmortizesSchedule(t *testing.T) {
	logPath := t.TempDir() + "/events.log"
	srv, err := New(Config{Spec: specArg(t, "minsky:2"), Policy: schedcore.TopoAwareP, LogPath: logPath})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	batch := make([]*op, n)
	for i := range batch {
		batch[i] = &op{
			kind: opSubmit,
			req:  serveapi.JobRequest{ID: fmt.Sprintf("b%d", i), GPUs: 1, BatchSize: 1},
			done: make(chan struct{}),
		}
	}
	srv.do(func() { srv.processBatch(batch) })
	placed := 0
	for _, o := range batch {
		select {
		case <-o.done:
		default:
			t.Fatalf("op %s not finished", o.id)
		}
		if o.errCode != "" {
			t.Fatalf("op %s failed: %s %s", o.id, o.errCode, o.errMsg)
		}
		if o.jobResp.Status == "placed" {
			placed++
		}
	}
	if placed != n { // 8 single-GPU jobs on 8 free GPUs
		t.Fatalf("placed %d of %d", placed, n)
	}
	var batches int
	srv.do(func() { batches = srv.batches })
	if batches != 1 {
		t.Fatalf("batches = %d, want 1", batches)
	}
	srv.Kill() // keep the raw log: no shutdown snapshot

	counts := map[string]int{}
	l, err := openCounting(logPath, counts)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if counts["round"] != 1 {
		t.Fatalf("one batch wrote %d round records, want 1 (Schedule not amortized)", counts["round"])
	}
	if counts["submit"] != n || counts["place"] != n {
		t.Fatalf("journal: %v", counts)
	}
}

func baseURL(c *client.Client) string { return c.BaseURL() }

func asAPIError(err error, out **client.APIError) bool {
	ae, ok := err.(*client.APIError)
	if ok {
		*out = ae
	}
	return ok
}

func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// openCounting opens an event log counting records by type.
func openCounting(path string, counts map[string]int) (*eventlog.Log, error) {
	return eventlog.Open(path, func(r eventlog.Record) error {
		counts[r.Type]++
		return nil
	})
}
