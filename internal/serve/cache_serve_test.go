package serve

import (
	"fmt"
	"sync"
	"testing"

	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
)

// TestStateExposesPlaceCache pins the observability contract: a server
// with the placement cache on reports its counters in /v1/state, and a
// server with the cache disabled omits the block entirely (clients can
// distinguish "cache off" from "no traffic yet").
func TestStateExposesPlaceCache(t *testing.T) {
	_, c := startServer(t, Config{Spec: specArg(t, "minsky:2"), Policy: schedcore.TopoAware})
	ctx := ctxT(t)

	// Identical 2-GPU jobs against identical machines: the second
	// placement of each round is a canonical-shape hit.
	for i := 0; i < 4; i++ {
		if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("j%d", i), GPUs: 2}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlaceCache == nil {
		t.Fatal("cache-on server omits place_cache from /v1/state")
	}
	if st.PlaceCache.Misses == 0 {
		t.Fatalf("no cache traffic after 4 topo-aware placements: %+v", st.PlaceCache)
	}
	if st.PlaceCache.Hits == 0 {
		t.Fatalf("identical jobs on identical machines never hit: %+v", st.PlaceCache)
	}

	_, off := startServer(t, Config{
		Spec: specArg(t, "minsky:2"), Policy: schedcore.TopoAware, DisablePlaceCache: true,
	})
	if _, err := off.SubmitJob(ctx, serveapi.JobRequest{ID: "x", GPUs: 2}); err != nil {
		t.Fatal(err)
	}
	stOff, err := off.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stOff.PlaceCache != nil {
		t.Fatalf("cache-off server still reports place_cache: %+v", stOff.PlaceCache)
	}
}

// TestMultiServerPlaceCacheAggregation checks the sharded state merge:
// each domain reports its own counters and the top-level block is their
// sum, mirroring how Decisions and Preemptions aggregate.
func TestMultiServerPlaceCacheAggregation(t *testing.T) {
	_, _, c := startMulti(t, Config{
		Spec: specArg(t, "minsky:4/domains[hash:2]"), Policy: schedcore.TopoAwareP,
	})
	ctx := ctxT(t)
	for i := 0; i < 8; i++ {
		if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: fmt.Sprintf("j%d", i), GPUs: 2}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlaceCache == nil {
		t.Fatal("sharded state omits aggregated place_cache")
	}
	var hits, misses, evs int
	for _, d := range st.Domains {
		if d.PlaceCache == nil {
			t.Fatalf("domain %d omits place_cache", d.Domain)
		}
		hits += d.PlaceCache.Hits
		misses += d.PlaceCache.Misses
		evs += d.PlaceCache.Evictions
	}
	if st.PlaceCache.Hits != hits || st.PlaceCache.Misses != misses || st.PlaceCache.Evictions != evs {
		t.Fatalf("top-level place_cache %+v is not the domain sum {%d %d %d}", st.PlaceCache, hits, misses, evs)
	}
	if misses == 0 {
		t.Fatal("no cache traffic across 8 sharded placements")
	}
}

// TestMultiServerPlaceCacheConcurrent hammers a sharded server with
// concurrent submits, releases and state polls. Each domain's cache is
// shared between its placement path and its preemption victim search on
// that domain's single writer loop; this test (run under -race in CI)
// proves no cross-domain or reader path touches a cache without
// synchronization.
func TestMultiServerPlaceCacheConcurrent(t *testing.T) {
	_, _, c := startMulti(t, Config{
		Spec: specArg(t, "minsky:8/domains[hash:4]"), Policy: schedcore.TopoAwareP,
		Discipline: "priority", Preemption: true,
	})
	ctx := ctxT(t)

	const workers = 8
	const perWorker = 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-j%d", w, i)
				jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: id, GPUs: 1 + i%4, Priority: i % 2})
				if err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				if jr.Status == "placed" && i%3 == 0 {
					if _, err := c.ReleaseJob(ctx, id); err != nil {
						t.Errorf("release %s: %v", id, err)
						return
					}
				}
				if i%5 == 0 {
					if _, err := c.State(ctx); err != nil {
						t.Errorf("state: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlaceCache == nil || st.PlaceCache.Misses == 0 {
		t.Fatalf("no cache traffic under concurrent sharded load: %+v", st.PlaceCache)
	}
}
