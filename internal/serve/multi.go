package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gputopo/internal/schedcore/domains"
	"gputopo/internal/serveapi"
)

// MultiServer serves a sharded cluster: one Server (single-writer loop,
// core, event log) per scheduling domain, behind the same /v1 API a
// single-core server exposes. Submissions route through a
// domains.Router fed by each domain's published free-GPU counters and
// spill to the next admissible domain when the preferred one cannot
// seat the job now; every other operation follows the job to its home
// domain. Durability is per domain — LogPath becomes one log per domain
// (path + ".dN"), each replayed independently on start, so recovery
// parallelizes with the fleet split. docs/sharding.md documents the
// model and its API deltas (global job-ID namespace, per-domain
// /v1/decisions cursors, per-domain MaxQueue).
type MultiServer struct {
	cfg     Config
	spec    domains.Spec
	servers []*Server
	router  *domains.Router
	// machines[d] holds the global machine indices domain d owns;
	// gpuMaps[d] maps the domain's local GPU positions to global ones so
	// every wire-visible placement uses cluster-wide coordinates.
	machines [][]int
	gpuMaps  [][]int
	started  time.Time

	draining atomic.Bool

	// mu guards the routing state: the home map (accepted job → domain),
	// the in-flight set (IDs submitted but not yet answered) and the
	// generated-ID counter. Routing itself happens under mu so the
	// counter reads and the spill decision are atomic per submission.
	mu     sync.Mutex
	home   map[string]int
	isPend map[string]bool
	seq    int
}

// NewMulti partitions the spec's cluster into its scheduling domains
// and starts one Server per domain. The spec must carry a domains[...]
// split; use New for single-core serving.
func NewMulti(cfg Config) (*MultiServer, error) {
	sp, subs, groups, err := cfg.Spec.PartitionDomains(1)
	if err != nil {
		return nil, err
	}
	if !sp.Enabled() {
		return nil, fmt.Errorf("serve: NewMulti needs a domains[...] split in the topology spec (got %q)", cfg.Spec.Key())
	}
	ms := &MultiServer{
		cfg:      cfg,
		spec:     sp,
		machines: groups,
		home:     map[string]int{},
		isPend:   map[string]bool{},
		started:  time.Now(),
	}
	// The global topology orders every wire-visible GPU index; domain
	// substrates are slices of it, machine by machine.
	global, err := cfg.Spec.Build(cfg.Spec.EffectiveMachines(1), false)
	if err != nil {
		return nil, err
	}
	caps := make([]domains.Capacity, len(subs))
	for d, sub := range subs {
		dcfg := cfg
		dcfg.Spec = sub
		if cfg.LogPath != "" {
			dcfg.LogPath = fmt.Sprintf("%s.d%d", cfg.LogPath, d)
		}
		srv, err := New(dcfg)
		if err != nil {
			for _, prev := range ms.servers {
				prev.Close()
			}
			return nil, fmt.Errorf("serve: domain %d (%s): %w", d, sub.Key(), err)
		}
		ms.servers = append(ms.servers, srv)
		caps[d] = domains.CapacityOf(srv.Topology())
		gm := make([]int, 0, srv.Topology().NumGPUs())
		for k, g := range groups[d] {
			local := srv.Topology().GPUsOfMachine(k)
			glob := global.GPUsOfMachine(g)
			if len(local) != len(glob) {
				for _, prev := range ms.servers {
					prev.Close()
				}
				return nil, fmt.Errorf("serve: domain %d machine %d has %d GPUs, global machine %d has %d", d, k, len(local), g, len(glob))
			}
			gm = append(gm, glob...)
		}
		ms.gpuMaps = append(ms.gpuMaps, gm)
	}
	ms.router = domains.NewRouter(caps, func(d int) (int, int, int) {
		return ms.servers[d].FreeCounters()
	})
	// Recovery rebuilds the routing state the per-domain replays cannot:
	// the home map and the generated-ID counter live up here, not in any
	// domain's log. Every replayed job is homed to the domain that
	// journaled it — so releases and withdrawals of pre-crash jobs find
	// their loop — and the counter resumes above the largest recovered
	// job-N, so fresh generated IDs never collide with replayed ones.
	// Explicit resubmissions of recovered IDs 409 through the ordinary
	// home-map check in handleSubmit.
	for d, srv := range ms.servers {
		ids, ok := srv.JobIDs()
		if !ok {
			ms.Close()
			return nil, fmt.Errorf("serve: domain %d shut down during recovery", d)
		}
		for _, id := range ids {
			if prev, taken := ms.home[id]; taken {
				ms.Close()
				return nil, fmt.Errorf("serve: job %q recovered in domains %d and %d: per-domain logs violate the global ID namespace", id, prev, d)
			}
			ms.home[id] = d
			if rest, isGen := strings.CutPrefix(id, "job-"); isGen {
				if n, err := strconv.Atoi(rest); err == nil && n > ms.seq {
					ms.seq = n
				}
			}
		}
	}
	return ms, nil
}

// Domains returns the number of scheduling domains.
func (ms *MultiServer) Domains() int { return len(ms.servers) }

// Replayed sums the event-log records each domain replayed at startup.
func (ms *MultiServer) Replayed() int {
	n := 0
	for _, s := range ms.servers {
		n += s.Replayed()
	}
	return n
}

// Durable reports whether event logs back the domains.
func (ms *MultiServer) Durable() bool { return ms.cfg.LogPath != "" }

// BeginDrain stops admitting submissions on every domain.
func (ms *MultiServer) BeginDrain() {
	ms.draining.Store(true)
	for _, s := range ms.servers {
		s.BeginDrain()
	}
}

// Close shuts every domain down gracefully (final snapshot per log) and
// returns the first error.
func (ms *MultiServer) Close() error {
	var err error
	for _, s := range ms.servers {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Kill stops every domain without final snapshots (the crash path).
func (ms *MultiServer) Kill() {
	for _, s := range ms.servers {
		s.Kill()
	}
}

// globalGPUs translates a domain's local GPU positions to cluster-wide
// indices, returning a fresh slice (ring records must not be mutated).
func (ms *MultiServer) globalGPUs(d int, gpus []int) []int {
	if len(gpus) == 0 {
		return nil
	}
	gm := ms.gpuMaps[d]
	out := make([]int, len(gpus))
	for i, g := range gpus {
		out[i] = gm[g]
	}
	return out
}

// Handler wires the sharded /v1 API: same routes and wire types as the
// single-core Handler, with routing on submit and home-domain lookup on
// everything job-addressed.
func (ms *MultiServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", ms.handleSubmit)
	mux.HandleFunc("DELETE /v1/jobs/{id}", ms.handleRelease)
	mux.HandleFunc("GET /v1/decisions", ms.handleDecisions)
	mux.HandleFunc("GET /v1/state", ms.handleState)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleSubmit routes one submission: resolve the ID in the global
// namespace, pick the domain by admissible free-capacity heuristic, and
// forward into that domain's batching loop.
func (ms *MultiServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serveapi.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidJSON, "invalid job JSON: %v", err)
		return
	}
	if ms.draining.Load() {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is draining; not admitting jobs")
		return
	}
	ms.mu.Lock()
	id := req.ID
	if id == "" {
		for {
			ms.seq++
			id = fmt.Sprintf("job-%d", ms.seq)
			if _, taken := ms.home[id]; !taken && !ms.isPend[id] {
				break
			}
		}
		req.ID = id
	} else if _, taken := ms.home[id]; taken || ms.isPend[id] {
		ms.mu.Unlock()
		serveapi.WriteError(w, http.StatusConflict, serveapi.CodeJobExists, "job %s already exists", id)
		return
	}
	// Materialize the job once for the admissibility check — the same
	// defaulting the domain's loop will re-run.
	j, err := serveapi.JobSpec{JobRequest: req}.Job()
	if err != nil {
		ms.mu.Unlock()
		serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidJob, "%v", err)
		return
	}
	d, err := ms.router.Route(j)
	if err != nil {
		ms.mu.Unlock()
		serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidJob, "%v", err)
		return
	}
	ms.isPend[id] = true
	ms.mu.Unlock()

	o := &op{kind: opSubmit, req: req, done: make(chan struct{})}
	ok := ms.servers[d].submit(o)

	ms.mu.Lock()
	delete(ms.isPend, id)
	if ok && o.accepted {
		ms.home[id] = d
	}
	ms.mu.Unlock()

	if !ok {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	if o.errCode != "" {
		if o.errCode == serveapi.CodeQueueFull {
			serveapi.WriteRetryAfter(w, o.retryAfter, "%s", o.errMsg)
			return
		}
		serveapi.WriteError(w, o.status, o.errCode, "%s", o.errMsg)
		return
	}
	resp := o.jobResp
	resp.GPUs = ms.globalGPUs(d, resp.GPUs)
	serveapi.WriteJSON(w, resp)
}

// handleRelease forwards the release to the job's home domain and
// unbinds it on success.
func (ms *MultiServer) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ms.mu.Lock()
	d, ok := ms.home[id]
	ms.mu.Unlock()
	if !ok {
		serveapi.WriteError(w, http.StatusNotFound, serveapi.CodeJobNotFound, "no queued or running job %q", id)
		return
	}
	o := &op{kind: opRelease, id: id, done: make(chan struct{})}
	if !ms.servers[d].submit(o) {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	if o.accepted {
		ms.mu.Lock()
		delete(ms.home, id)
		ms.mu.Unlock()
	}
	if o.errCode != "" {
		serveapi.WriteError(w, o.status, o.errCode, "%s", o.errMsg)
		return
	}
	serveapi.WriteJSON(w, o.relResp)
}

// handleDecisions pages one domain's decision ring (domains journal and
// sequence decisions independently, so the cursor is per domain). The
// domain query parameter selects it; default 0. GPU positions are
// translated to cluster-wide indices.
func (ms *MultiServer) handleDecisions(w http.ResponseWriter, r *http.Request) {
	d := 0
	if q := r.URL.Query().Get("domain"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 || n >= len(ms.servers) {
			serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidParam, "domain %q must be an integer in [0,%d)", q, len(ms.servers))
			return
		}
		d = n
	}
	limit := decisionLogCap
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidParam, "limit %q must be an integer >= 1", q)
			return
		}
		if n < limit {
			limit = n
		}
	}
	after := 0
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			serveapi.WriteError(w, http.StatusBadRequest, serveapi.CodeInvalidParam, "after %q must be an integer >= 0", q)
			return
		}
		after = n
	}
	var resp serveapi.DecisionsResponse
	if !ms.servers[d].do(func() { resp = ms.servers[d].decisionsPage(after, limit) }) {
		serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
		return
	}
	for i := range resp.Decisions {
		resp.Decisions[i].GPUs = ms.globalGPUs(d, resp.Decisions[i].GPUs)
	}
	serveapi.WriteJSON(w, resp)
}

// handleState merges every domain's snapshot into one cluster-wide
// state response, with the per-domain breakdown alongside.
func (ms *MultiServer) handleState(w http.ResponseWriter, r *http.Request) {
	states := make([]serveapi.StateResponse, len(ms.servers))
	for d, s := range ms.servers {
		d, s := d, s
		if !s.do(func() { states[d] = s.stateSnapshot() }) {
			serveapi.WriteError(w, http.StatusServiceUnavailable, serveapi.CodeDraining, "server is shut down")
			return
		}
	}
	serveapi.WriteJSON(w, ms.mergeStates(states))
}

// mergeStates folds the per-domain snapshots into the cluster view:
// counters sum, the clock is the furthest domain's, fragmentation is
// GPU-weighted, and machine/GPU indices translate to global positions.
func (ms *MultiServer) mergeStates(states []serveapi.StateResponse) serveapi.StateResponse {
	first := states[0]
	out := serveapi.StateResponse{
		Topology:   ms.cfg.Spec.Key(),
		Policy:     first.Policy,
		UptimeSec:  time.Since(ms.started).Seconds(),
		Durable:    ms.Durable(),
		Draining:   ms.draining.Load(),
		MaxQueue:   ms.cfg.MaxQueue,
		Running:    []serveapi.RunningEntry{},
		Queue:      []serveapi.QueuedEntry{},
		Discipline: first.Discipline,
		Preemption: first.Preemption,
	}
	var fragWeighted float64
	var agg serveapi.LogStats
	var cacheAgg serveapi.PlaceCacheStats
	anyCache := false
	for d, st := range states {
		out.Machines += st.Machines
		out.GPUs += st.GPUs
		out.FreeGPUs += st.FreeGPUs
		out.Decisions += st.Decisions
		if st.ClockSec > out.ClockSec {
			out.ClockSec = st.ClockSec
		}
		fragWeighted += st.Fragments * float64(st.GPUs)
		out.Stats.Decisions += st.Stats.Decisions
		out.Stats.Placements += st.Stats.Placements
		out.Stats.Postponements += st.Stats.Postponements
		out.Stats.SLOViolations += st.Stats.SLOViolations
		out.Stats.GateSkips += st.Stats.GateSkips
		out.Stats.WakeSkips += st.Stats.WakeSkips
		out.Stats.Preemptions += st.Stats.Preemptions
		out.Stats.Evictions += st.Stats.Evictions
		out.Stats.TotalDecisionMs += st.Stats.TotalDecisionMs
		if st.Stats.MaxDecisionUs > out.Stats.MaxDecisionUs {
			out.Stats.MaxDecisionUs = st.Stats.MaxDecisionUs
		}
		for _, re := range st.Running {
			out.Running = append(out.Running, serveapi.RunningEntry{ID: re.ID, GPUs: ms.globalGPUs(d, re.GPUs)})
		}
		out.Queue = append(out.Queue, st.Queue...)
		for i, be := range st.Bandwidth {
			out.Bandwidth = append(out.Bandwidth, serveapi.BandwidthEntry{
				Machine: ms.machines[d][i], FreeGBs: be.FreeGBs,
			})
		}
		if st.Log != nil {
			agg.Records += st.Log.Records
			agg.SinceSnapshot += st.Log.SinceSnapshot
			agg.BytesSinceSnapshot += st.Log.BytesSinceSnapshot
			agg.Snapshots += st.Log.Snapshots
			agg.ReplayedAtBoot += st.Log.ReplayedAtBoot
			agg.Syncs += st.Log.Syncs
		}
		if st.PlaceCache != nil {
			anyCache = true
			cacheAgg.Hits += st.PlaceCache.Hits
			cacheAgg.Misses += st.PlaceCache.Misses
			cacheAgg.Evictions += st.PlaceCache.Evictions
		}
		out.Domains = append(out.Domains, serveapi.DomainState{
			Domain:     d,
			Topology:   st.Topology,
			Machines:   st.Machines,
			GPUs:       st.GPUs,
			FreeGPUs:   st.FreeGPUs,
			Running:    len(st.Running),
			Queued:     len(st.Queue),
			Decisions:  st.Decisions,
			Log:        st.Log,
			PlaceCache: st.PlaceCache,
		})
	}
	sort.Slice(out.Bandwidth, func(i, j int) bool { return out.Bandwidth[i].Machine < out.Bandwidth[j].Machine })
	if out.GPUs > 0 {
		out.Fragments = fragWeighted / float64(out.GPUs)
	}
	if out.Stats.Decisions > 0 {
		out.Stats.MeanDecisionUs = out.Stats.TotalDecisionMs * 1000 / float64(out.Stats.Decisions)
	}
	if ms.Durable() {
		out.Log = &agg
	}
	if anyCache {
		out.PlaceCache = &cacheAgg
	}
	return out
}
