package serve

import (
	"fmt"
	"time"

	"gputopo/internal/eventlog"
	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
)

// applyRecord replays one event-log record into the core. Submits,
// releases and withdrawals re-drive the same mutations the live path
// ran; a round record re-runs Schedule at exactly the batch boundary
// live traffic produced; the place records that follow are checked
// against the recomputed placements — any divergence means the log and
// the policies disagree, and recovery fails loudly rather than serve a
// cluster whose journal does not describe it.
func (s *Server) applyRecord(rec eventlog.Record) error {
	switch rec.Type {
	case eventlog.TypeSnapshot:
		if s.replaySaw {
			return fmt.Errorf("serve: snapshot record is not first in the log")
		}
		if rec.Snapshot == nil {
			return fmt.Errorf("serve: snapshot record without payload")
		}
		if err := s.restoreSnapshot(rec.Snapshot); err != nil {
			return err
		}
		if rec.Snapshot.ClockSec > s.replayMax {
			s.replayMax = rec.Snapshot.ClockSec
		}
	case eventlog.TypeSubmit:
		if rec.Job == nil {
			return fmt.Errorf("serve: submit record without job")
		}
		j, err := rec.Job.Job()
		if err != nil {
			return fmt.Errorf("serve: replaying submit %q: %w", rec.Job.ID, err)
		}
		s.clk.Set(j.Arrival)
		if err := s.core.Submit(j); err != nil {
			return fmt.Errorf("serve: replaying submit %q: %w", j.ID, err)
		}
		s.jobs[j.ID] = j
	case eventlog.TypeRelease:
		if err := s.core.Release(rec.JobID); err != nil {
			return fmt.Errorf("serve: replaying release %q: %w", rec.JobID, err)
		}
		delete(s.jobs, rec.JobID)
	case eventlog.TypeWithdraw:
		if !s.core.Withdraw(rec.JobID) {
			return fmt.Errorf("serve: replaying withdraw %q: job not queued", rec.JobID)
		}
		delete(s.jobs, rec.JobID)
	case eventlog.TypeRound:
		// Append-order within a batch is submit/release records, then the
		// round, then its place records; a new round with unconsumed
		// expectations means place records vanished mid-log — impossible
		// short of corruption the framing missed.
		if len(s.replayExpect) > 0 {
			return fmt.Errorf("serve: replay: round at t=%.3f follows %d unmatched place records", rec.Time, len(s.replayExpect))
		}
		s.clk.Set(rec.Time)
		for _, r := range s.appendDecisions(s.core.Schedule()) {
			if r.Placed || r.Evicted {
				s.replayExpect = append(s.replayExpect, r)
			}
		}
	case eventlog.TypePlace, eventlog.TypeEvict:
		if rec.Decision == nil {
			return fmt.Errorf("serve: %s record without decision", rec.Type)
		}
		if len(s.replayExpect) == 0 {
			return fmt.Errorf("serve: replay diverged: log has %s %s (seq %d) but the recomputed round produced nothing more", rec.Type, rec.Decision.JobID, rec.Decision.Seq)
		}
		got := s.replayExpect[0]
		s.replayExpect = s.replayExpect[1:]
		if !sameDecision(got, *rec.Decision) {
			return fmt.Errorf("serve: replay diverged: log places %s (seq %d) on %v, replay places %s (seq %d) on %v",
				rec.Decision.JobID, rec.Decision.Seq, rec.Decision.GPUs, got.JobID, got.Seq, got.GPUs)
		}
	default:
		return fmt.Errorf("serve: unknown event-log record type %q", rec.Type)
	}
	if rec.Time > s.replayMax {
		s.replayMax = rec.Time
	}
	s.replaySaw = true
	s.replayed++
	return nil
}

// sameDecision compares the deterministic identity of a placement or an
// eviction notice.
func sameDecision(a, b serveapi.DecisionRecord) bool {
	if a.Seq != b.Seq || a.JobID != b.JobID || a.Placed != b.Placed || len(a.GPUs) != len(b.GPUs) {
		return false
	}
	if a.Evicted != b.Evicted || a.PreemptedBy != b.PreemptedBy {
		return false
	}
	for i := range a.GPUs {
		if a.GPUs[i] != b.GPUs[i] {
			return false
		}
	}
	return true
}

// restoreSnapshot rebuilds explicit state: exact allocations for running
// jobs (placements depend on the full truncated history, so they are
// restored, never recomputed), the wait queue in order, the decision
// ring, the sequence counter, the stats base and the clock.
func (s *Server) restoreSnapshot(sn *eventlog.Snapshot) error {
	s.statsBase = schedcore.Stats{
		Decisions:     sn.Stats.Decisions,
		Placements:    sn.Stats.Placements,
		Postponements: sn.Stats.Postponements,
		SLOViolations: sn.Stats.SLOViolations,
		GateSkips:     sn.Stats.GateSkips,
		WakeSkips:     sn.Stats.WakeSkips,
		Preemptions:   sn.Stats.Preemptions,
		Evictions:     sn.Stats.Evictions,
		DecisionTime:  time.Duration(sn.Stats.DecisionTimeNs),
		MaxDecision:   time.Duration(sn.Stats.MaxDecisionNs),
	}
	s.decSeq = sn.DecSeq
	s.decisions = append([]serveapi.DecisionRecord(nil), sn.Decisions...)
	s.decHead = 0
	for _, rj := range sn.Running {
		j, err := rj.Job.Job()
		if err != nil {
			return fmt.Errorf("serve: snapshot running job %q: %w", rj.Job.ID, err)
		}
		// Restore through the core (not the raw cluster state) so its
		// running registry is rebuilt — preemption selects victims from
		// that registry, and a job restored behind its back could never
		// be evicted.
		if err := s.core.Restore(j, rj.GPUs, rj.Bandwidth); err != nil {
			return fmt.Errorf("serve: snapshot running job %q: %w", j.ID, err)
		}
		s.jobs[j.ID] = j
	}
	for _, spec := range sn.Queued {
		j, err := spec.Job()
		if err != nil {
			return fmt.Errorf("serve: snapshot queued job %q: %w", spec.ID, err)
		}
		s.clk.Set(j.Arrival)
		if err := s.core.Submit(j); err != nil {
			return fmt.Errorf("serve: snapshot queued job %q: %w", j.ID, err)
		}
		s.jobs[j.ID] = j
	}
	s.clockBase = sn.ClockSec
	return nil
}

// maybeSnapshot rewrites the log once enough records accumulated past
// the last snapshot, keeping replay bounded.
func (s *Server) maybeSnapshot(now float64) {
	if s.log == nil || s.logErr != nil || s.cfg.SnapshotEvery <= 0 {
		return
	}
	if s.log.SinceRewrite() >= s.cfg.SnapshotEvery {
		s.writeSnapshot(now)
	}
}

// writeSnapshot captures the full state and atomically truncates the
// log to it. Must run on the writer goroutine (or after the loop
// stopped). Failures are sticky via logErr.
func (s *Server) writeSnapshot(now float64) {
	if s.log == nil || s.logErr != nil {
		return
	}
	stats := s.combinedStats()
	sn := &eventlog.Snapshot{
		ClockSec: now,
		DecSeq:   s.decSeq,
		Stats: eventlog.SnapStats{
			Decisions:      stats.Decisions,
			Placements:     stats.Placements,
			Postponements:  stats.Postponements,
			SLOViolations:  stats.SLOViolations,
			GateSkips:      stats.GateSkips,
			WakeSkips:      stats.WakeSkips,
			Preemptions:    stats.Preemptions,
			Evictions:      stats.Evictions,
			DecisionTimeNs: int64(stats.DecisionTime),
			MaxDecisionNs:  int64(stats.MaxDecision),
		},
	}
	st := s.core.State()
	for _, id := range st.Jobs() {
		alloc := st.Allocation(id)
		j := s.jobs[id]
		if j == nil || alloc == nil {
			s.logErr = fmt.Errorf("serve: snapshot: running job %q has no tracked spec", id)
			return
		}
		sn.Running = append(sn.Running, eventlog.RunningJob{
			Job:       serveapi.SpecOf(j),
			GPUs:      append([]int(nil), alloc.GPUs...),
			Bandwidth: alloc.Bandwidth,
		})
	}
	for _, j := range s.core.Queued() {
		sn.Queued = append(sn.Queued, serveapi.SpecOf(j))
	}
	n := len(s.decisions)
	for i := 0; i < n; i++ {
		sn.Decisions = append(sn.Decisions, s.decisions[(s.decHead+i)%n])
	}
	if err := s.log.Rewrite(eventlog.Record{Type: eventlog.TypeSnapshot, Time: now, Snapshot: sn}); err != nil {
		s.logErr = err
		return
	}
	s.snapshots++
}
