package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"gputopo/internal/schedcore"
	"gputopo/internal/serveapi"
	"gputopo/internal/serveapi/client"
	"gputopo/internal/workload"
)

// startMulti builds a sharded MultiServer plus httptest wrapper and the
// typed client.
func startMulti(t *testing.T, cfg Config) (*MultiServer, *httptest.Server, *client.Client) {
	t.Helper()
	ms, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ms.Handler())
	t.Cleanup(func() {
		ts.Close()
		ms.Close()
	})
	c := client.New(ts.URL)
	return ms, ts, c
}

// domainDecisions fetches one domain's decision page through the wire
// (the domain cursor is a query parameter the typed client doesn't
// carry).
func domainDecisions(t *testing.T, baseURL string, domain int) serveapi.DecisionsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/decisions?domain=" + itoa(domain))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decisions?domain=%d: HTTP %d", domain, resp.StatusCode)
	}
	var dr serveapi.DecisionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// TestMultiServerShardedEndToEnd is the acceptance test of the sharded
// serving engine: minsky:4 split hash:2 into two domains of two
// machines, driven through the same /v1 wire surface as a single-core
// server. Submissions must spill across domains until the whole cluster
// is seated, and every wire-visible GPU index must be a cluster-wide
// coordinate, not a domain-local one.
func TestMultiServerShardedEndToEnd(t *testing.T) {
	ms, ts, c := startMulti(t, Config{
		Spec: specArg(t, "minsky:4/domains[hash:2]"), Policy: schedcore.TopoAwareP,
	})
	if ms.Domains() != 2 {
		t.Fatalf("domains = %d, want 2", ms.Domains())
	}
	ctx := ctxT(t)

	// Four 4-GPU single-node jobs fill the four machines exactly — but
	// only if the router spills across both domains (each domain owns 8
	// GPUs) and placements come back in global coordinates.
	seen := map[int]string{}
	for _, id := range []string{"a", "b", "c", "d"} {
		jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: id, GPUs: 4})
		if err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		if jr.Status != "placed" || len(jr.GPUs) != 4 {
			t.Fatalf("submit %s: %+v", id, jr)
		}
		for _, g := range jr.GPUs {
			if prev, dup := seen[g]; dup {
				t.Fatalf("GPU %d handed to both %s and %s: placements overlap in global coordinates", g, prev, id)
			}
			seen[g] = id
		}
	}
	if len(seen) != 16 {
		t.Fatalf("4 placements cover %d distinct GPUs, want all 16", len(seen))
	}
	for g := 0; g < 16; g++ {
		if _, ok := seen[g]; !ok {
			t.Fatalf("global GPU %d never placed: indices are not cluster-wide", g)
		}
	}

	// The global job-ID namespace spans domains: re-submitting any taken
	// ID conflicts no matter which domain owns it.
	if _, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "a", GPUs: 1}); err == nil {
		t.Fatal("duplicate ID accepted")
	}

	// Full cluster: the next job queues in some domain.
	jr, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "e", GPUs: 4})
	if err != nil {
		t.Fatalf("submit e: %v", err)
	}
	if jr.Status != "queued" {
		t.Fatalf("submit e on a full cluster: %+v", jr)
	}

	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Topology != "minsky:4/domains[hash:2]" || st.Machines != 4 || st.GPUs != 16 {
		t.Fatalf("merged shape: %+v", st)
	}
	if st.FreeGPUs != 0 || len(st.Running) != 4 || len(st.Queue) != 1 {
		t.Fatalf("merged occupancy: free=%d running=%d queued=%d", st.FreeGPUs, len(st.Running), len(st.Queue))
	}
	if len(st.Domains) != 2 {
		t.Fatalf("domain breakdown: %+v", st.Domains)
	}
	gpus, running := 0, 0
	for i, ds := range st.Domains {
		if ds.Domain != i || ds.Topology != "minsky:2" || ds.Machines != 2 || ds.GPUs != 8 {
			t.Fatalf("domain %d breakdown: %+v", i, ds)
		}
		gpus += ds.GPUs
		running += ds.Running
	}
	if gpus != st.GPUs || running != len(st.Running) {
		t.Fatalf("domain breakdown does not sum to cluster: %d GPUs, %d running", gpus, running)
	}
	if len(st.Bandwidth) != 4 || st.Bandwidth[2].Machine != 2 {
		t.Fatalf("bandwidth entries not in global machine order: %+v", st.Bandwidth)
	}

	// Releasing a running job wakes the queued one through its domain's
	// own loop; the freed and re-used indices stay global.
	if _, err := c.ReleaseJob(ctx, "a"); err != nil {
		t.Fatalf("release a: %v", err)
	}
	st, err = c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Running) != 4 || len(st.Queue) != 0 {
		t.Fatalf("release did not wake the queued job: running=%d queued=%d", len(st.Running), len(st.Queue))
	}
	if _, err := c.ReleaseJob(ctx, "a"); err == nil {
		t.Fatal("released job still addressable")
	}

	// Decisions are per-domain cursors; each domain's records must use
	// that domain's global GPU range (machines 0,2 → domain 0; 1,3 →
	// domain 1 under hash:2).
	domGPUs := []map[int]bool{{}, {}}
	for m := 0; m < 4; m++ {
		for g := 4 * m; g < 4*m+4; g++ {
			domGPUs[m%2][g] = true
		}
	}
	total := 0
	for d := 0; d < 2; d++ {
		dr := domainDecisions(t, ts.URL, d)
		if len(dr.Decisions) == 0 {
			t.Fatalf("domain %d logged no decisions", d)
		}
		total += len(dr.Decisions)
		for _, rec := range dr.Decisions {
			for _, g := range rec.GPUs {
				if !domGPUs[d][g] {
					t.Fatalf("domain %d decision %s uses GPU %d outside its global range", d, rec.JobID, g)
				}
			}
		}
	}
	if total < 5 {
		t.Fatalf("%d decisions across domains, want at least the 5 placements", total)
	}
	if resp, err := http.Get(ts.URL + "/v1/decisions?domain=7"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range domain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestMultiServerGeneratedIDsUnique: server-assigned IDs come from the
// cluster-wide namespace, so concurrent-looking submissions across
// domains can never collide.
func TestMultiServerGeneratedIDsUnique(t *testing.T) {
	_, _, c := startMulti(t, Config{
		Spec: specArg(t, "minsky:4/domains[hash:4]"), Policy: schedcore.TopoAwareP,
	})
	ctx := ctxT(t)
	ids := map[string]bool{}
	for i := 0; i < 12; i++ {
		jr, err := c.SubmitJob(ctx, serveapi.JobRequest{GPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ids[jr.ID] {
			t.Fatalf("generated ID %q repeated", jr.ID)
		}
		ids[jr.ID] = true
	}
}

// TestMultiServerKillRestartRecovery extends the durability acceptance
// test to the sharded engine: each domain journals to its own log
// (path + .dN), a crash loses nothing synced, and a restart replays
// every domain independently to byte-identical merged state.
func TestMultiServerKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	spec := specArg(t, "minsky:4/domains[hash:2]")
	cfg := Config{Spec: spec, Policy: schedcore.TopoAwareP, LogPath: logPath, SnapshotEvery: -1}

	topo, err := spec.Build(spec.EffectiveMachines(1), false)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 40, Seed: 42, ArrivalRate: 10}, topo)
	if err != nil {
		t.Fatal(err)
	}

	ms1, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(ms1.Handler())
	c1 := client.New(ts1.URL)
	ctx := ctxT(t)

	var placed []string
	released := 0
	for i, j := range jobs {
		jr, err := c1.SubmitJob(ctx, serveapi.JobRequest{
			ID: j.ID, Model: j.Model.String(), BatchSize: j.BatchSize,
			GPUs: j.GPUs, MinUtility: j.MinUtility, Iterations: j.Iterations,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", j.ID, err)
		}
		if jr.Status == "placed" {
			placed = append(placed, jr.ID)
		}
		if i%6 == 5 && released < len(placed) {
			if _, err := c1.ReleaseJob(ctx, placed[released]); err != nil {
				t.Fatalf("release %s: %v", placed[released], err)
			}
			released++
		}
	}
	// One generated-ID job rides along so the restart must resume the ID
	// counter above it instead of reminting job-1.
	gen1, err := c1.SubmitJob(ctx, serveapi.JobRequest{GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	st1, js1 := pinnedState(t, c1)
	if len(st1.Running) == 0 || len(st1.Queue) == 0 {
		t.Fatalf("workload left no mixed state to recover: %+v", st1)
	}
	dec1 := []serveapi.DecisionsResponse{domainDecisions(t, ts1.URL, 0), domainDecisions(t, ts1.URL, 1)}
	ts1.Close()
	ms1.Kill() // crash: no shutdown snapshots

	for d := 0; d < 2; d++ {
		if _, err := os.Stat(logPath + ".d" + itoa(d)); err != nil {
			t.Fatalf("domain %d log missing: %v", d, err)
		}
	}

	ms2, err := NewMulti(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if ms2.Replayed() == 0 {
		t.Fatal("restart replayed nothing")
	}
	ts2 := httptest.NewServer(ms2.Handler())
	c2 := client.New(ts2.URL)

	_, js2 := pinnedState(t, c2)
	if string(js1) != string(js2) {
		t.Fatalf("merged /v1/state diverged across kill+restart:\n before: %s\n after:  %s", js1, js2)
	}
	for d := 0; d < 2; d++ {
		dec2 := domainDecisions(t, ts2.URL, d)
		a, _ := json.Marshal(dec1[d])
		b, _ := json.Marshal(dec2)
		if string(a) != string(b) {
			t.Fatalf("domain %d decision ring diverged:\n before: %s\n after:  %s", d, a, b)
		}
	}

	// The restart must rebuild the routing state from the replayed
	// domains, not just the cores: recovered IDs stay taken in the global
	// namespace, fresh generated IDs resume past replayed ones, and
	// pre-crash jobs stay addressable — a running one releases and a
	// queued one withdraws through their recovered home domains.
	if _, err := c2.SubmitJob(ctx, serveapi.JobRequest{ID: st1.Running[0].ID, GPUs: 1}); err == nil {
		t.Fatalf("recovered ID %s accepted for resubmission", st1.Running[0].ID)
	}
	gen2, err := c2.SubmitJob(ctx, serveapi.JobRequest{GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gen2.ID == gen1.ID {
		t.Fatalf("generated ID %q reminted after restart", gen2.ID)
	}
	// Withdraw before release: a release can wake the queued job, while a
	// withdraw never frees capacity, so the statuses stay deterministic.
	rel, err := c2.ReleaseJob(ctx, st1.Queue[0].ID)
	if err != nil {
		t.Fatalf("withdraw of pre-crash job %s after restart: %v", st1.Queue[0].ID, err)
	}
	if rel.Status != "withdrawn" {
		t.Fatalf("pre-crash queued job %s: %+v", st1.Queue[0].ID, rel)
	}
	if rel, err = c2.ReleaseJob(ctx, st1.Running[0].ID); err != nil {
		t.Fatalf("release of pre-crash job %s after restart: %v", st1.Running[0].ID, err)
	} else if rel.Status != "released" {
		t.Fatalf("pre-crash running job %s: %+v", st1.Running[0].ID, rel)
	}

	// The recovered MultiServer keeps routing: one more submit, then a
	// graceful close snapshots every domain and bounds the next replay to
	// one record per domain.
	if _, err := c2.SubmitJob(ctx, serveapi.JobRequest{ID: "post-crash", GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	_, js2b := pinnedState(t, c2)
	ts2.Close()
	if err := ms2.Close(); err != nil {
		t.Fatal(err)
	}

	ms3, err := NewMulti(cfg)
	if err != nil {
		t.Fatalf("post-snapshot recovery failed: %v", err)
	}
	if ms3.Replayed() != 2 {
		t.Fatalf("snapshots did not bound replay: %d records, want 1 per domain", ms3.Replayed())
	}
	ts3 := httptest.NewServer(ms3.Handler())
	defer ts3.Close()
	defer ms3.Close()
	_, js3 := pinnedState(t, client.New(ts3.URL))
	if string(js2b) != string(js3) {
		t.Fatalf("merged state diverged across snapshot restore:\n before: %s\n after:  %s", js2b, js3)
	}
}

// TestMultiServerRejectsUnsharded: a spec without domains[...] must go
// through New, not NewMulti.
func TestMultiServerRejectsUnsharded(t *testing.T) {
	if _, err := NewMulti(Config{Spec: specArg(t, "minsky:2"), Policy: schedcore.TopoAwareP}); err == nil {
		t.Fatal("NewMulti accepted an unsharded spec")
	}
}

// TestMultiServerStateLogAggregation: with durable domains the merged
// state carries both the per-domain log gauges and their cluster-wide
// aggregate.
func TestMultiServerStateLogAggregation(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.log")
	_, _, c := startMulti(t, Config{
		Spec: specArg(t, "minsky:2/domains[hash:2]"), Policy: schedcore.TopoAwareP,
		LogPath: logPath, SnapshotEvery: -1,
	})
	ctx := ctxT(t)
	for i := 0; i < 6; i++ {
		if _, err := c.SubmitJob(ctx, serveapi.JobRequest{GPUs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Log == nil {
		t.Fatal("durable sharded state has no aggregate log gauges")
	}
	sum := serveapi.LogStats{}
	for _, ds := range st.Domains {
		if ds.Log == nil {
			t.Fatalf("domain %d has no log gauges", ds.Domain)
		}
		sum.Records += ds.Log.Records
		sum.Syncs += ds.Log.Syncs
	}
	if sum.Records == 0 || sum.Records != st.Log.Records || sum.Syncs != st.Log.Syncs {
		t.Fatalf("aggregate gauges don't sum the domains: %+v vs %+v", st.Log, sum)
	}
	// Both domains took traffic: the router spreads 6 one-GPU jobs over
	// 2 one-machine domains rather than piling them on one.
	counts := []int{}
	for _, ds := range st.Domains {
		counts = append(counts, ds.Running+ds.Queued)
	}
	sort.Ints(counts)
	if counts[0] == 0 {
		t.Fatalf("router starved a domain: %v", counts)
	}
}
