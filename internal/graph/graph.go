// Package graph implements the weighted undirected graphs that underpin
// both topology representations in the paper (§4.1): the physical system
// topology graph and the job communication graph. It provides adjacency
// bookkeeping, Dijkstra shortest paths (path distance = sum of edge weights,
// §4.1.2), all-pairs distances, connectivity queries, and subgraph
// extraction used by the recursive bi-partitioning mapper.
package graph

import (
	"fmt"
	"slices"
)

// Edge is an undirected weighted edge between two vertices.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a weighted undirected graph over vertices identified by dense
// integer IDs assigned at AddVertex time. Vertices may carry an arbitrary
// label for callers that need to map back to domain objects (GPUs, sockets,
// job tasks, ...).
type Graph struct {
	labels []string
	adj    [][]halfEdge
	edges  int
}

type halfEdge struct {
	to int
	w  float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]string(nil), g.labels...),
		adj:    make([][]halfEdge, len(g.adj)),
		edges:  g.edges,
	}
	for i, hs := range g.adj {
		c.adj[i] = append([]halfEdge(nil), hs...)
	}
	return c
}

// AddVertex adds a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) int {
	g.labels = append(g.labels, label)
	g.adj = append(g.adj, nil)
	return len(g.labels) - 1
}

// AddEdge adds an undirected edge between u and v with the given weight.
// Parallel edges are allowed (the topology model never creates them, but
// the job graph may). It panics if u or v is out of range or u == v.
func (g *Graph) AddEdge(u, v int, weight float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.checkVertex(u)
	g.checkVertex(v)
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: weight})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: weight})
	g.edges++
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Label returns the label of vertex v.
func (g *Graph) Label(v int) string {
	g.checkVertex(v)
	return g.labels[v]
}

// SetLabel replaces the label of vertex v.
func (g *Graph) SetLabel(v int, label string) {
	g.checkVertex(v)
	g.labels[v] = label
}

// Neighbors returns the neighbor IDs of v in insertion order.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	out := make([]int, len(g.adj[v]))
	for i, h := range g.adj[v] {
		out[i] = h.to
	}
	return out
}

// EdgeWeight returns the weight of the minimum-weight edge between u and v
// and whether any edge exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	g.checkVertex(u)
	g.checkVertex(v)
	best, found := 0.0, false
	for _, h := range g.adj[u] {
		if h.to == v && (!found || h.w < best) {
			best, found = h.w, true
		}
	}
	return best, found
}

// Edges returns all undirected edges with U < V, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	return g.AppendEdges(make([]Edge, 0, g.edges))
}

// AppendEdges appends all undirected edges (U < V, sorted by (U, V)) to
// buf and returns it — the allocation-free variant of Edges for callers
// with a reusable buffer.
func (g *Graph) AppendEdges(buf []Edge) []Edge {
	start := len(buf)
	for u, hs := range g.adj {
		for _, h := range hs {
			if u < h.to {
				buf = append(buf, Edge{U: u, V: h.to, Weight: h.w})
			}
		}
	}
	out := buf[start:]
	slices.SortFunc(out, func(a, b Edge) int {
		if a.U != b.U {
			return a.U - b.U
		}
		return a.V - b.V
	})
	return buf
}

// Reset reinitializes the graph to n unlabeled, unconnected vertices,
// retaining the backing arrays of previous use. It exists for hot loops
// (the DRB mapper rebuilds a small affinity graph per recursion step)
// that would otherwise allocate a fresh graph each time.
func (g *Graph) Reset(n int) {
	for cap(g.adj) < n {
		g.adj = append(g.adj[:cap(g.adj)], nil)
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	for cap(g.labels) < n {
		g.labels = append(g.labels[:cap(g.labels)], "")
	}
	g.labels = g.labels[:n]
	for i := range g.labels {
		g.labels[i] = ""
	}
	g.edges = 0
}

// ForEachIncident calls fn for every half-edge incident to v, in
// insertion order, without allocating — the iteration primitive for hot
// partitioning loops that would otherwise copy Neighbors/EdgeWeight
// results per call.
func (g *Graph) ForEachIncident(v int, fn func(to int, w float64)) {
	g.checkVertex(v)
	for _, h := range g.adj[v] {
		fn(h.to, h.w)
	}
}

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// WeightedDegree returns the sum of incident edge weights of v.
func (g *Graph) WeightedDegree(v int) float64 {
	g.checkVertex(v)
	var sum float64
	for _, h := range g.adj[v] {
		sum += h.w
	}
	return sum
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for u, hs := range g.adj {
		for _, h := range hs {
			if u < h.to {
				sum += h.w
			}
		}
	}
	return sum
}
