package graph

import (
	"math"
	"testing"
)

func triangle() *Graph {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 2)
	g.AddEdge(a, c, 5)
	return g
}

func TestAddVertexAndLabels(t *testing.T) {
	g := New()
	v0 := g.AddVertex("x")
	v1 := g.AddVertex("y")
	if v0 != 0 || v1 != 1 {
		t.Fatalf("vertex IDs %d, %d", v0, v1)
	}
	if g.Label(v0) != "x" || g.Label(v1) != "y" {
		t.Fatal("labels mismatch")
	}
	g.SetLabel(v0, "z")
	if g.Label(v0) != "z" {
		t.Fatal("SetLabel did not apply")
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
}

func TestAddEdgeAndWeights(t *testing.T) {
	g := triangle()
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 1 {
		t.Fatalf("EdgeWeight(0,1) = %v, %v", w, ok)
	}
	// Undirected: both directions report.
	w, ok = g.EdgeWeight(1, 0)
	if !ok || w != 1 {
		t.Fatalf("EdgeWeight(1,0) = %v, %v", w, ok)
	}
	if _, ok := New2().EdgeWeight(0, 1); ok {
		t.Fatal("edge reported on edgeless graph")
	}
}

// New2 returns a two-vertex edgeless graph.
func New2() *Graph {
	g := New()
	g.AddVertex("a")
	g.AddVertex("b")
	return g
}

func TestParallelEdgesKeepMinWeight(t *testing.T) {
	g := New2()
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 2)
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 2 {
		t.Fatalf("min-weight parallel edge = %v", w)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	g := New()
	v := g.AddVertex("a")
	g.AddEdge(v, v, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New2().AddEdge(0, 7, 1)
}

func TestNeighbors(t *testing.T) {
	g := triangle()
	ns := g.Neighbors(0)
	if len(ns) != 2 {
		t.Fatalf("neighbors of 0: %v", ns)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := triangle()
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("edges: %v", es)
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].U > es[i].U || (es[i-1].U == es[i].U && es[i-1].V > es[i].V) {
			t.Fatalf("edges unsorted: %v", es)
		}
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %+v", e)
		}
	}
}

func TestDegreeAndWeightedDegree(t *testing.T) {
	g := triangle()
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d", g.Degree(0))
	}
	if g.WeightedDegree(0) != 6 { // 1 + 5
		t.Fatalf("WeightedDegree(0) = %v", g.WeightedDegree(0))
	}
}

func TestTotalWeight(t *testing.T) {
	if w := triangle().TotalWeight(); w != 8 {
		t.Fatalf("TotalWeight = %v", w)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.AddVertex("d")
	c.AddEdge(0, 3, 9)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatal("mutating clone affected original")
	}
	if c.NumVertices() != 4 || c.NumEdges() != 4 {
		t.Fatal("clone mutation lost")
	}
}

func TestShortestFrom(t *testing.T) {
	g := triangle()
	d := g.ShortestFrom(0)
	// a->b = 1, a->c = min(5, 1+2) = 3.
	if d[0] != 0 || d[1] != 1 || d[2] != 3 {
		t.Fatalf("distances = %v", d)
	}
}

func TestShortestPathRoute(t *testing.T) {
	g := triangle()
	path, dist, ok := g.ShortestPath(0, 2)
	if !ok || dist != 3 {
		t.Fatalf("path=%v dist=%v ok=%v", path, dist, ok)
	}
	want := []int{0, 1, 2}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New2()
	if d := g.ShortestFrom(0); !math.IsInf(d[1], 1) {
		t.Fatalf("unreachable distance = %v", d[1])
	}
	if _, _, ok := g.ShortestPath(0, 1); ok {
		t.Fatal("unreachable path reported ok")
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := triangle()
	path, dist, ok := g.ShortestPath(1, 1)
	if !ok || dist != 0 || len(path) != 1 || path[0] != 1 {
		t.Fatalf("self path = %v, %v, %v", path, dist, ok)
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g := triangle()
	d := g.AllPairsShortest()
	for i := range d {
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric distances %v", d)
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	g := ladder(8)
	d := g.AllPairsShortest()
	n := g.NumVertices()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				if d[a][c] > d[a][b]+d[b][c]+1e-9 {
					t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v+%v", a, c, d[a][c], d[a][b], d[b][c])
				}
			}
		}
	}
}

// ladder builds a 2×n grid graph with varying weights.
func ladder(n int) *Graph {
	g := New()
	for i := 0; i < 2*n; i++ {
		g.AddVertex("")
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, i+n, float64(1+i%3))
		if i+1 < n {
			g.AddEdge(i, i+1, float64(1+(i*7)%5))
			g.AddEdge(i+n, i+n+1, float64(1+(i*3)%4))
		}
	}
	return g
}

func TestComponents(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddVertex("")
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !triangle().Connected() {
		t.Fatal("triangle reported disconnected")
	}
	if !New().Connected() {
		t.Fatal("empty graph should be connected")
	}
}

func TestSubgraph(t *testing.T) {
	g := triangle()
	sub, orig := g.Subgraph([]int{0, 2})
	if sub.NumVertices() != 2 {
		t.Fatalf("subgraph vertices = %d", sub.NumVertices())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("subgraph edges = %d", sub.NumEdges())
	}
	w, ok := sub.EdgeWeight(0, 1)
	if !ok || w != 5 {
		t.Fatalf("subgraph edge weight = %v", w)
	}
	if orig[0] != 0 || orig[1] != 2 {
		t.Fatalf("orig mapping = %v", orig)
	}
}

func TestSubgraphDeduplicates(t *testing.T) {
	g := triangle()
	sub, orig := g.Subgraph([]int{1, 1, 2})
	if sub.NumVertices() != 2 || len(orig) != 2 {
		t.Fatalf("dedup failed: %d vertices, orig %v", sub.NumVertices(), orig)
	}
}

// TestDijkstraAgainstFloydWarshall cross-checks Dijkstra on a pseudo-random
// graph against an independent Floyd–Warshall implementation.
func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	g := New()
	const n = 24
	for i := 0; i < n; i++ {
		g.AddVertex("")
	}
	// Deterministic pseudo-random edges.
	state := uint64(99)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if next()%4 == 0 {
				g.AddEdge(i, j, float64(1+next()%9))
			}
		}
	}
	// Floyd–Warshall reference.
	ref := make([][]float64, n)
	for i := range ref {
		ref[i] = make([]float64, n)
		for j := range ref[i] {
			if i != j {
				ref[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Weight < ref[e.U][e.V] {
			ref[e.U][e.V] = e.Weight
			ref[e.V][e.U] = e.Weight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := ref[i][k] + ref[k][j]; d < ref[i][j] {
					ref[i][j] = d
				}
			}
		}
	}
	got := g.AllPairsShortest()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := got[i][j], ref[i][j]
			if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && math.Abs(a-b) > 1e-9) {
				t.Fatalf("d(%d,%d): dijkstra %v, floyd-warshall %v", i, j, a, b)
			}
		}
	}
}
