package graph

import (
	"container/heap"
	"math"
)

// Inf is the distance reported between disconnected vertices.
var Inf = math.Inf(1)

// ShortestFrom runs Dijkstra's algorithm from src and returns the distance
// to every vertex (Inf when unreachable). Path distance is the sum of edge
// weights along the path, matching the paper's definition of topological
// distance (§4.1.2).
func (g *Graph) ShortestFrom(src int) []float64 {
	g.checkVertex(src)
	dist := make([]float64, len(g.adj))
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		for _, h := range g.adj[item.v] {
			if nd := item.d + h.w; nd < dist[h.to] {
				dist[h.to] = nd
				heap.Push(pq, distItem{v: h.to, d: nd})
			}
		}
	}
	return dist
}

// ShortestPath returns the minimum-weight path from src to dst as a vertex
// sequence including both endpoints, together with its total weight. The
// second return is false when dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, bool) {
	g.checkVertex(src)
	g.checkVertex(dst)
	dist := make([]float64, len(g.adj))
	prev := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.v == dst {
			break
		}
		if item.d > dist[item.v] {
			continue
		}
		for _, h := range g.adj[item.v] {
			if nd := item.d + h.w; nd < dist[h.to] {
				dist[h.to] = nd
				prev[h.to] = item.v
				heap.Push(pq, distItem{v: h.to, d: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, Inf, false
	}
	var path []int
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], true
}

// AllPairsShortest returns the full distance matrix, computed by running
// Dijkstra from each vertex. The topology graphs here are tiny (tens of
// vertices per machine), so O(V·E·logV) is more than fast enough and avoids
// Floyd–Warshall's O(V³) on large clusters.
func (g *Graph) AllPairsShortest() [][]float64 {
	out := make([][]float64, len(g.adj))
	for v := range g.adj {
		out[v] = g.ShortestFrom(v)
	}
	return out
}

// Components returns the connected components as slices of vertex IDs, each
// sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	for start := range g.adj {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, h := range g.adj[v] {
				if !seen[h.to] {
					seen[h.to] = true
					stack = append(stack, h.to)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the graph has exactly one connected component.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	return len(g.adj) == 0 || len(g.Components()) == 1
}

// Subgraph returns the induced subgraph over keep (IDs in g), plus the
// mapping from new vertex IDs to original IDs. Edges with both endpoints in
// keep are retained with their weights.
func (g *Graph) Subgraph(keep []int) (*Graph, []int) {
	idx := make(map[int]int, len(keep))
	sub := New()
	orig := make([]int, 0, len(keep))
	for _, v := range keep {
		g.checkVertex(v)
		if _, dup := idx[v]; dup {
			continue
		}
		idx[v] = sub.AddVertex(g.labels[v])
		orig = append(orig, v)
	}
	for _, v := range orig {
		for _, h := range g.adj[v] {
			if v < h.to {
				if j, ok := idx[h.to]; ok {
					sub.AddEdge(idx[v], j, h.w)
				}
			}
		}
	}
	return sub, orig
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
