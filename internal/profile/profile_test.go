package profile

import (
	"encoding/json"
	"testing"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func TestGenerateCoversAllClasses(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 4)
	// 3 models × 4 batch classes × 4 GPU counts.
	if s.Len() != 48 {
		t.Fatalf("entries = %d, want 48", s.Len())
	}
	for m := perfmodel.NN(0); m < perfmodel.NumNN; m++ {
		for c := jobgraph.BatchTiny; c <= jobgraph.BatchBig; c++ {
			for g := 1; g <= 4; g++ {
				k := Key{Model: m, Class: c, GPUs: g}
				e, ok := s.Lookup(k)
				if !ok {
					t.Fatalf("missing entry %+v", k)
				}
				if e.BestIterTime <= 0 {
					t.Fatalf("entry %+v best time %v", k, e.BestIterTime)
				}
				if e.WorstIterTime < e.BestIterTime {
					t.Fatalf("entry %+v worst %v < best %v", k, e.WorstIterTime, e.BestIterTime)
				}
			}
		}
	}
}

func TestMultiGPUWorstStrictlyWorse(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 4)
	e, _ := s.Lookup(Key{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2})
	if e.WorstIterTime <= e.BestIterTime {
		t.Fatal("2-GPU worst placement should be strictly slower than best")
	}
	// Single-GPU jobs have no placement-dependent communication.
	e1, _ := s.Lookup(Key{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 1})
	if e1.WorstIterTime != e1.BestIterTime {
		t.Fatal("1-GPU best and worst should match")
	}
}

func TestLookupFallbackNearestClass(t *testing.T) {
	s := NewStore()
	s.Add(Entry{
		Key:          Key{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2},
		BestIterTime: 0.1, WorstIterTime: 0.2, Sensitivity: 0.5, Pressure: 0.3,
	})
	// Unknown class falls back to the nearest known one.
	e, ok := s.Lookup(Key{Model: perfmodel.AlexNet, Class: jobgraph.BatchBig, GPUs: 2})
	if !ok {
		t.Fatal("fallback lookup failed")
	}
	if e.BestIterTime != 0.1 {
		t.Fatalf("fallback entry = %+v", e)
	}
	if e.Key.Class != jobgraph.BatchBig {
		t.Fatal("fallback entry should be rekeyed to the query")
	}
	// Different model and GPU count: no fallback.
	if _, ok := s.Lookup(Key{Model: perfmodel.GoogLeNet, Class: jobgraph.BatchTiny, GPUs: 2}); ok {
		t.Fatal("cross-model fallback should not happen")
	}
}

func TestPredictInterference(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 4)
	victim := perfmodel.Traits{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
	causer := perfmodel.Traits{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}

	if got := s.PredictInterference(victim, nil); got != 1 {
		t.Fatalf("no co-runners: I = %v, want 1", got)
	}
	same := s.PredictInterference(victim, []CoRunner{{Traits: causer, Locality: perfmodel.SameMachine}})
	if same <= 1 {
		t.Fatalf("same-machine interference = %v, want > 1", same)
	}
	sock := s.PredictInterference(victim, []CoRunner{{Traits: causer, Locality: perfmodel.SameSocket}})
	if sock <= same {
		t.Fatal("same-socket interference should exceed same-machine")
	}
	far := s.PredictInterference(victim, []CoRunner{{Traits: causer, Locality: perfmodel.DifferentMachine}})
	if far != 1 {
		t.Fatalf("different-machine interference = %v, want 1", far)
	}
	// The Figure 6 anchor: tiny+tiny on the same machine ≈ 1.30.
	if same < 1.25 || same > 1.35 {
		t.Fatalf("tiny+tiny same-machine I = %v, want ≈1.30", same)
	}
}

func TestPredictInterferenceAccumulatesAndCaps(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 4)
	victim := perfmodel.Traits{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
	causer := CoRunner{
		Traits:   perfmodel.Traits{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2},
		Locality: perfmodel.SameSocket,
	}
	one := s.PredictInterference(victim, []CoRunner{causer})
	two := s.PredictInterference(victim, []CoRunner{causer, causer})
	if two <= one {
		t.Fatal("two co-runners should interfere more than one")
	}
	many := make([]CoRunner, 50)
	for i := range many {
		many[i] = causer
	}
	if got := s.PredictInterference(victim, many); got > 1+perfmodel.MaxSlowdown+1e-9 {
		t.Fatalf("interference uncapped: %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 2)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Store
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", back.Len(), s.Len())
	}
	for _, e := range s.Entries() {
		got, ok := back.Lookup(e.Key)
		if !ok || got != e {
			t.Fatalf("entry %+v changed to %+v", e, got)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Store
	if err := json.Unmarshal([]byte(`{"not":"a list"}`), &s); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEntriesSorted(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 3)
	es := s.Entries()
	for i := 1; i < len(es); i++ {
		a, b := es[i-1].Key, es[i].Key
		if a.Model > b.Model ||
			(a.Model == b.Model && a.Class > b.Class) ||
			(a.Model == b.Model && a.Class == b.Class && a.GPUs > b.GPUs) {
			t.Fatalf("entries unsorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestKeyOf(t *testing.T) {
	tr := perfmodel.Traits{Model: perfmodel.CaffeRef, Class: jobgraph.BatchSmall, GPUs: 3}
	k := KeyOf(tr)
	if k.Model != tr.Model || k.Class != tr.Class || k.GPUs != tr.GPUs {
		t.Fatalf("KeyOf = %+v", k)
	}
}

func TestGoogLeNetProfilesLessSensitive(t *testing.T) {
	s := Generate(topology.Power8Minsky(), 4)
	alex, _ := s.Lookup(Key{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2})
	goog, _ := s.Lookup(Key{Model: perfmodel.GoogLeNet, Class: jobgraph.BatchTiny, GPUs: 2})
	if goog.Sensitivity >= alex.Sensitivity {
		t.Fatal("GoogLeNet should be less sensitive than AlexNet")
	}
	if goog.Pressure >= alex.Pressure {
		t.Fatal("GoogLeNet should cause less pressure than AlexNet")
	}
}
