// Package profile implements the job profile of §4.2: for each workload
// class it records the solo completion time, the best- and worst-case
// placements, and a performance-prediction model for co-scheduled
// interference. The paper generates these profiles experimentally (95th
// percentile of five runs); here they are generated from the calibrated
// performance model through the same interface a measurement campaign
// would populate, and can be saved to / loaded from JSON like the
// prototype's manifests.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

// Key identifies a workload class: model × batch class × GPU count.
type Key struct {
	Model perfmodel.NN        `json:"model"`
	Class jobgraph.BatchClass `json:"class"`
	GPUs  int                 `json:"gpus"`
}

// KeyOf returns the profile key of a job's traits.
func KeyOf(t perfmodel.Traits) Key {
	return Key{Model: t.Model, Class: t.Class, GPUs: t.GPUs}
}

// Entry is one workload-class profile.
type Entry struct {
	Key Key `json:"key"`
	// BestIterTime is the per-iteration time (seconds) under the best
	// placement, running solo — the ideal the slowdown metrics compare
	// against.
	BestIterTime float64 `json:"best_iter_time"`
	// WorstIterTime is the per-iteration time under the worst placement
	// (fully routed communication), running solo.
	WorstIterTime float64 `json:"worst_iter_time"`
	// Sensitivity and Pressure parameterize the interference prediction
	// (suffered and caused, respectively), as calibrated from
	// co-location measurements (Figure 6).
	Sensitivity float64 `json:"sensitivity"`
	Pressure    float64 `json:"pressure"`
}

// Store holds the profiles of all known workload classes.
type Store struct {
	entries map[Key]Entry
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{entries: make(map[Key]Entry)}
}

// Generate populates a store with profiles for every (model, batch class,
// GPU count) combination up to maxGPUs, derived from the performance model
// over the given reference topology — the paper's "combinatorial
// collocation of a set of known applications" made cheap by simulation.
func Generate(topo *topology.Topology, maxGPUs int) *Store {
	s := NewStore()
	for m := perfmodel.NN(0); m < perfmodel.NumNN; m++ {
		for c := jobgraph.BatchTiny; c <= jobgraph.BatchBig; c++ {
			for g := 1; g <= maxGPUs; g++ {
				s.Add(makeEntry(topo, m, c, g))
			}
		}
	}
	return s
}

func makeEntry(topo *topology.Topology, m perfmodel.NN, c jobgraph.BatchClass, g int) Entry {
	t := perfmodel.Traits{Model: m, Class: c, GPUs: g}
	best, worst := placementExtremes(topo, m, c.Size(), g)
	return Entry{
		Key:           KeyOf(t),
		BestIterTime:  best,
		WorstIterTime: worst,
		Sensitivity:   perfmodel.Sensitivity(t),
		Pressure:      perfmodel.Pressure(t),
	}
}

// placementExtremes returns the best and worst solo iteration times of a
// g-GPU job on the topology by scoring allocations of minimal and maximal
// communication distance.
func placementExtremes(topo *topology.Topology, m perfmodel.NN, batch, g int) (best, worst float64) {
	if g <= 1 {
		t := perfmodel.IterationTime(m, batch, topo, []int{0}, 1)
		return t, t
	}
	if n := topo.NumGPUs(); g > n {
		g = n
	}
	return perfmodel.IterationTime(m, batch, topo, topo.BestAllocation(g), 1),
		perfmodel.IterationTime(m, batch, topo, topo.WorstAllocation(g), 1)
}

// Add inserts or replaces an entry.
func (s *Store) Add(e Entry) { s.entries[e.Key] = e }

// Lookup returns the entry for the key. Unknown classes fall back to a
// prediction from the nearest known class (same model and GPU count,
// closest batch class) — the paper's "performance prediction for unknown
// jobs using the models from known applications" (§4.2).
func (s *Store) Lookup(k Key) (Entry, bool) {
	if e, ok := s.entries[k]; ok {
		return e, true
	}
	// Nearest batch class with same model and GPU count.
	bestDist := -1
	var best Entry
	for have, e := range s.entries {
		if have.Model != k.Model || have.GPUs != k.GPUs {
			continue
		}
		d := int(have.Class) - int(k.Class)
		if d < 0 {
			d = -d
		}
		if bestDist == -1 || d < bestDist {
			bestDist, best = d, e
		}
	}
	if bestDist >= 0 {
		best.Key = k
		return best, true
	}
	return Entry{}, false
}

// Len returns the number of stored entries.
func (s *Store) Len() int { return len(s.entries) }

// Entries returns all entries sorted by key for deterministic output.
func (s *Store) Entries() []Entry {
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.GPUs < b.GPUs
	})
	return out
}

// CoRunner pairs a co-scheduled job's traits with its locality relative to
// the victim whose interference is being predicted.
type CoRunner struct {
	Traits   perfmodel.Traits
	Locality perfmodel.Locality
}

// PredictInterference implements the interference estimate of Eq. 4 with
// the factor convention fixed so that "less interference" means a value
// closer to 1: it returns the predicted slowdown factor I >= 1 of the
// victim when co-located with the given co-runners, using the stored
// sensitivity and pressure parameters. (As printed, Eq. 4 computes the
// reciprocal solo/collocated ratio; we use collocated/solo so that
// minimizing interference and maximizing utility agree — see DESIGN.md.)
func (s *Store) PredictInterference(victim perfmodel.Traits, coRunners []CoRunner) float64 {
	ve, ok := s.Lookup(KeyOf(victim))
	sens := perfmodel.Sensitivity(victim)
	if ok {
		sens = ve.Sensitivity
	}
	var sum float64
	for _, c := range coRunners {
		pres := perfmodel.Pressure(c.Traits)
		if ce, ok := s.Lookup(KeyOf(c.Traits)); ok {
			pres = ce.Pressure
		}
		f := 0.0
		switch c.Locality {
		case perfmodel.SameSocket:
			f = 2.0
		case perfmodel.SameMachine:
			f = 1.0
		}
		sum += sens * pres * f
	}
	return 1 + perfmodel.CapSlowdown(sum)
}

// MarshalJSON serializes the store as a sorted entry list.
func (s *Store) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Entries())
}

// UnmarshalJSON loads a store from an entry list.
func (s *Store) UnmarshalJSON(data []byte) error {
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	s.entries = make(map[Key]Entry, len(entries))
	for _, e := range entries {
		s.entries[e.Key] = e
	}
	return nil
}
