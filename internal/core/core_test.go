package core

import (
	"math"
	"testing"
	"testing/quick"

	"gputopo/internal/cluster"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/topology"
)

func minskyState() (*cluster.State, *Mapper) {
	topo := topology.Power8Minsky()
	st := cluster.NewState(topo)
	m, err := NewMapper(profile.Generate(topo, 4), DefaultWeights())
	if err != nil {
		panic(err)
	}
	return st, m
}

func TestWeightsValidation(t *testing.T) {
	if _, err := NewMapper(profile.NewStore(), Weights{CommCost: 1, Interference: 1, Fragmentation: 1}); err == nil {
		t.Fatal("weights summing to 3 accepted")
	}
	if _, err := NewMapper(profile.NewStore(), Weights{CommCost: -0.5, Interference: 1, Fragmentation: 0.5}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMapper(nil, DefaultWeights()); err == nil {
		t.Fatal("nil profile store accepted")
	}
	if _, err := NewMapper(profile.NewStore(), DefaultWeights()); err != nil {
		t.Fatalf("default weights rejected: %v", err)
	}
}

func TestDefaultWeightsSumToOne(t *testing.T) {
	w := DefaultWeights()
	if math.Abs(w.CommCost+w.Interference+w.Fragmentation-1) > 1e-9 {
		t.Fatal("default weights do not sum to 1")
	}
}

func TestPlacePacksTwoGPUJob(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	p, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.GPUs) != 2 {
		t.Fatalf("allocated %v", p.GPUs)
	}
	if !st.Topology().SameSocket(p.GPUs[0], p.GPUs[1]) {
		t.Fatalf("DRB did not pack the communicating pair: %v", p.GPUs)
	}
	if !p.P2P {
		t.Fatal("packed pair should be P2P")
	}
	if p.CommCost != 1 {
		t.Fatalf("comm cost = %v", p.CommCost)
	}
	if p.Utility < 0.9 {
		t.Fatalf("utility on empty machine = %v", p.Utility)
	}
	if p.Interference != 1 {
		t.Fatalf("interference on empty machine = %v", p.Interference)
	}
}

func TestPlaceFourGPUJobTakesMachine(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 4, 0.5, 0)
	p, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.GPUs) != 4 {
		t.Fatalf("allocated %v", p.GPUs)
	}
	// Four GPUs on Minsky necessarily span sockets; the utility's comm
	// term is still 1 because no better 4-GPU allocation exists.
	if p.CommCost != st.Topology().BestCommCost(4) {
		t.Fatalf("comm cost %v != best %v", p.CommCost, st.Topology().BestCommCost(4))
	}
}

func TestPlaceInsufficientCandidates(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 3, 0.5, 0)
	if _, err := m.Place(j, st, []int{0, 1}); err == nil {
		t.Fatal("3 GPUs from 2 candidates accepted")
	}
}

func TestPlaceRejectsOccupiedCandidate(t *testing.T) {
	st, m := minskyState()
	if err := st.Allocate("other", []int{0}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	j := job.New("j", perfmodel.AlexNet, 1, 1, 0.3, 0)
	if _, err := m.Place(j, st, []int{0, 1}); err == nil {
		t.Fatal("occupied candidate accepted")
	}
}

func TestPlaceRejectsInvalidJob(t *testing.T) {
	st, m := minskyState()
	j := job.New("", perfmodel.AlexNet, 1, 1, 0.3, 0)
	if _, err := m.Place(j, st, st.FreeGPUs()); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestPlaceAvoidsInterferingSocket(t *testing.T) {
	st, m := minskyState()
	// A tiny-batch job runs on GPU0 (socket 0).
	occupant := job.New("noisy", perfmodel.AlexNet, 1, 1, 0.3, 0)
	if err := st.Allocate("noisy", []int{0}, 0, occupant.Traits()); err != nil {
		t.Fatal(err)
	}
	// A new tiny single-GPU job should land on socket 1, away from the
	// interference (Figure 8's Job 1 behaviour).
	j := job.New("j", perfmodel.AlexNet, 1, 1, 0.3, 0)
	p, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	if sock := st.Topology().GPU(p.GPUs[0]).Socket; sock != 1 {
		t.Fatalf("placed on socket %d next to the noisy job", sock)
	}
}

func TestScoreCrossSocketWorseThanPacked(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 4, 2, 0.5, 0)
	packed := m.Score(j, st, []int{0, 1})
	cross := m.Score(j, st, []int{0, 2})
	if packed.Utility <= cross.Utility {
		t.Fatalf("packed utility %v <= cross %v", packed.Utility, cross.Utility)
	}
	if cross.P2P {
		t.Fatal("cross-socket pair cannot be P2P")
	}
	if cross.CommCost <= packed.CommCost {
		t.Fatal("cross-socket comm cost should be larger")
	}
	// The Table 1 thresholds separate the two: packed >= 0.5 > cross.
	if packed.Utility < 0.5 {
		t.Fatalf("packed utility %v below Table 1 threshold", packed.Utility)
	}
	if cross.Utility >= 0.5 {
		t.Fatalf("cross utility %v above Table 1 threshold", cross.Utility)
	}
}

func TestUtilityAndObjectiveAgree(t *testing.T) {
	// Lower objective (Eq. 1) must order placements the same way as
	// higher utility (Eq. 2) for a communication-heavy job.
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	packed := m.Score(j, st, []int{0, 1})
	cross := m.Score(j, st, []int{0, 2})
	objPacked := Objective(m.Weights(), j, []int{0, 1}, st, profile.Generate(st.Topology(), 4))
	objCross := Objective(m.Weights(), j, []int{0, 2}, st, profile.Generate(st.Topology(), 4))
	if (packed.Utility > cross.Utility) != (objPacked < objCross) {
		t.Fatalf("utility ordering (%.3f vs %.3f) disagrees with objective (%.3f vs %.3f)",
			packed.Utility, cross.Utility, objPacked, objCross)
	}
}

func TestSingleGPUUtilityIgnoresCommCost(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 1, 0.3, 0)
	p := m.Score(j, st, []int{0})
	// With no communication, utility is the mean of u_b and u_d.
	if p.CommCost != 0 {
		t.Fatalf("single GPU comm cost = %v", p.CommCost)
	}
	if p.Utility <= 0 || p.Utility > 1 {
		t.Fatalf("utility = %v", p.Utility)
	}
}

func TestUtilityBounds(t *testing.T) {
	f := func(w1, w2, w3, intensity uint8) bool {
		u1 := float64(w1%101) / 100
		u2 := float64(w2%101) / 100
		u3 := float64(w3%101) / 100
		ci := float64(intensity % 5)
		u := Utility(DefaultWeights(), ci, u1, u2, u3)
		return u >= -1e-9 && u <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityCommIntensityWeighting(t *testing.T) {
	w := DefaultWeights()
	// With low comm term but perfect others, a comm-heavy job scores
	// lower than a comm-light one.
	heavy := Utility(w, 4, 0.1, 1, 1)
	light := Utility(w, 1, 0.1, 1, 1)
	if heavy >= light {
		t.Fatalf("comm-heavy %v >= comm-light %v", heavy, light)
	}
	// Zero intensity: comm term fully ignored.
	if got := Utility(w, 0, 0.0, 1, 1); got != 1 {
		t.Fatalf("zero-intensity utility = %v", got)
	}
	if Utility(Weights{}, 0, 1, 1, 1) != 0 {
		t.Fatal("degenerate weights should yield 0")
	}
}

func TestPlaceOnClusterPrefersSingleMachine(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	st := cluster.NewState(topo)
	m, err := NewMapper(profile.Generate(topo, 4), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	j.SingleNode = false // allow spanning, DRB should still pack
	p, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	if !topo.SameMachine(p.GPUs[0], p.GPUs[1]) {
		t.Fatalf("DRB spread a communicating pair across machines: %v", p.GPUs)
	}
	if !topo.SameSocket(p.GPUs[0], p.GPUs[1]) {
		t.Fatalf("DRB did not pack within a socket: %v", p.GPUs)
	}
}

func TestAntiCollocateSpreadsAcrossMachines(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	st := cluster.NewState(topo)
	m, err := NewMapper(profile.Generate(topo, 4), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	j := job.New("j", perfmodel.AlexNet, 128, 2, 0.0, 0)
	j.SingleNode = false
	j.AntiCollocate = true
	p, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	if topo.SameSocket(p.GPUs[0], p.GPUs[1]) {
		t.Fatalf("anti-collocation ignored: %v", p.GPUs)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	first, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := m.Place(j, st, st.FreeGPUs())
		if err != nil {
			t.Fatal(err)
		}
		if len(p.GPUs) != len(first.GPUs) || p.GPUs[0] != first.GPUs[0] || p.GPUs[1] != first.GPUs[1] {
			t.Fatalf("placement not deterministic: %v vs %v", p.GPUs, first.GPUs)
		}
	}
}

func TestDRBOnDGX1UsesNVLinkPairs(t *testing.T) {
	topo := topology.DGX1()
	st := cluster.NewState(topo)
	m, err := NewMapper(profile.Generate(topo, 8), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	j := job.New("j", perfmodel.AlexNet, 1, 4, 0.5, 0)
	p, err := m.Place(j, st, st.FreeGPUs())
	if err != nil {
		t.Fatal(err)
	}
	// The best 4-GPU group on DGX-1 is fully NVLink-connected (e.g.
	// 0,1,2,3): every pair at distance 1.
	if got := topo.PairwiseDistance(p.GPUs); got != topo.BestCommCost(4) {
		t.Fatalf("4-GPU DRB placement %v has cost %v, best is %v",
			p.GPUs, got, topo.BestCommCost(4))
	}
	if !p.P2P {
		t.Fatalf("4-GPU NVLink clique should be P2P: %v", p.GPUs)
	}
}

func TestBusDemandPopulated(t *testing.T) {
	st, m := minskyState()
	j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	p := m.Score(j, st, []int{0, 2})
	if p.BusDemand <= 0 {
		t.Fatalf("bus demand = %v", p.BusDemand)
	}
}
