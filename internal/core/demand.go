package core

import (
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

// busDemand estimates the shared-bus bandwidth the job will commit on its
// machines under the candidate allocation — the t_bw of the capacity
// constraint t_bw <= p_bw (§4.3).
func busDemand(j *job.Job, topo *topology.Topology, gpus []int) float64 {
	return perfmodel.BusDemand(j.Model, j.BatchSize, topo, gpus)
}
