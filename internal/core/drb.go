package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"gputopo/internal/cluster"
	"gputopo/internal/fm"
	"gputopo/internal/graph"
	"gputopo/internal/job"
	"gputopo/internal/profile"
)

// Mapper is the topology-aware placement engine: it runs the Dual
// Recursive Bi-partitioning algorithm (Algorithm 2, based on Ercal et
// al.'s recursive mincut bipartitioning as implemented in SCOTCH) with the
// utility-based job-graph bi-partition of Algorithm 3.
type Mapper struct {
	profiles *profile.Store
	weights  Weights
}

// NewMapper returns a Mapper scoring placements with the given profile
// store and utility weights.
func NewMapper(profiles *profile.Store, weights Weights) (*Mapper, error) {
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	if profiles == nil {
		return nil, fmt.Errorf("core: nil profile store")
	}
	return &Mapper{profiles: profiles, weights: weights}, nil
}

// Weights returns the mapper's α coefficients.
func (m *Mapper) Weights() Weights { return m.weights }

// Place maps the job onto free GPUs drawn from candidates (GPU positions
// in st's topology, already host-filtered by the scheduler) and returns
// the scored placement. It does not mutate st. The mapping is ψ(A, P) → g
// from §4.4: the job graph A is the job's communication graph, the
// physical graph P is the candidate GPU set with the topology's distance
// matrix as the communication-cost array C.
func (m *Mapper) Place(j *job.Job, st *cluster.State, candidates []int) (*Placement, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if len(candidates) < j.GPUs {
		return nil, fmt.Errorf("core: job %s needs %d GPUs, only %d candidates", j.ID, j.GPUs, len(candidates))
	}
	for _, pos := range candidates {
		if st.Owner(pos) != "" {
			return nil, fmt.Errorf("core: candidate GPU %d is not free", pos)
		}
	}

	if j.AntiCollocate {
		return m.placeAntiCollocated(j, st, candidates)
	}

	// The recursion state is pooled: a scenario-2 simulation runs DRB
	// hundreds of thousands of times on tiny inputs, so the per-call
	// scratch (task list, sorted candidate copy, assignment array, the
	// affinity graph) is recycled instead of reallocated.
	d := drbPool.Get().(*drbRun)
	d.mapper, d.job, d.state = m, j, st
	tasks := d.tasksScratch[:0]
	for i := 0; i < j.GPUs; i++ {
		tasks = append(tasks, i)
	}
	d.tasksScratch = tasks
	gpus := append(d.gpusScratch[:0], candidates...)
	slices.Sort(gpus)
	d.gpusScratch = gpus
	d.assignment = d.assignment[:0]
	for i := 0; i < j.GPUs; i++ {
		d.assignment = append(d.assignment, -1)
	}
	err := d.recurse(tasks, gpus)
	release := func() {
		d.mapper, d.job, d.state = nil, nil, nil
		drbPool.Put(d)
	}
	if err != nil {
		release()
		return nil, err
	}

	alloc := make([]int, 0, j.GPUs)
	for task, gpu := range d.assignment {
		if gpu < 0 {
			release()
			return nil, fmt.Errorf("core: task %d of job %s left unmapped", task, j.ID)
		}
		alloc = append(alloc, gpu)
	}
	release()
	sort.Ints(alloc)
	return m.Score(j, st, alloc), nil
}

// placeAntiCollocated implements the §4.4 anti-collocation policy: "if a
// job wants to get all its tasks spread across different nodes ... they
// will be placed on different nodes." One GPU per machine, machines chosen
// by descending single-GPU placement utility.
func (m *Mapper) placeAntiCollocated(j *job.Job, st *cluster.State, candidates []int) (*Placement, error) {
	topo := st.Topology()
	bestPerMachine := map[int]int{}
	for _, pos := range candidates {
		mi := topo.GPU(pos).Machine
		cur, ok := bestPerMachine[mi]
		if !ok {
			bestPerMachine[mi] = pos
			continue
		}
		if m.Score(j, st, []int{pos}).Utility > m.Score(j, st, []int{cur}).Utility {
			bestPerMachine[mi] = pos
		}
	}
	if len(bestPerMachine) < j.GPUs {
		return nil, fmt.Errorf("core: anti-collocation needs %d machines, %d available", j.GPUs, len(bestPerMachine))
	}
	type cand struct {
		pos     int
		utility float64
	}
	var ranked []cand
	for _, pos := range bestPerMachine {
		ranked = append(ranked, cand{pos: pos, utility: m.Score(j, st, []int{pos}).Utility})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].utility != ranked[b].utility {
			return ranked[a].utility > ranked[b].utility
		}
		return ranked[a].pos < ranked[b].pos
	})
	gpus := make([]int, j.GPUs)
	for i := range gpus {
		gpus[i] = ranked[i].pos
	}
	sort.Ints(gpus)
	return m.Score(j, st, gpus), nil
}

// Score evaluates an arbitrary allocation for the job, producing the same
// Placement record DRB produces — used both for the final DRB solution and
// to score the greedy baselines' decisions on an equal footing.
func (m *Mapper) Score(j *job.Job, st *cluster.State, gpus []int) *Placement {
	topo := st.Topology()
	uCC, uB, uD, commCost, interference, frag := utilityTerms(j, gpus, st, m.profiles)
	p2p := len(gpus) >= 2
	for i := 0; i < len(gpus) && p2p; i++ {
		for k := i + 1; k < len(gpus); k++ {
			if !topo.P2P(gpus[i], gpus[k]) {
				p2p = false
				break
			}
		}
	}
	return &Placement{
		GPUs:          append([]int(nil), gpus...),
		Utility:       Utility(m.weights, j.CommIntensity(), uCC, uB, uD),
		CommCost:      commCost,
		Interference:  interference,
		Fragmentation: frag,
		P2P:           p2p,
		BusDemand:     busDemand(j, topo, gpus),
	}
}

// drbRun carries the recursion state of one DRB invocation plus the
// reusable scratch buffers (pooled via drbPool).
type drbRun struct {
	mapper     *Mapper
	job        *job.Job
	state      *cluster.State
	assignment []int // task -> GPU position, -1 while unmapped

	tasksScratch []int        // Place: initial task list
	gpusScratch  []int        // Place: sorted candidate copy
	affinity     *graph.Graph // physicalGraphBiPartition: reused affinity graph
	sideScratch  []int8       // jobGraphBiPartition: task -> side, -1 unassigned
	orderScratch []int        // jobGraphBiPartition: degree-ordered tasks
}

var drbPool = sync.Pool{New: func() interface{} { return &drbRun{affinity: graph.New()} }}

// recurse is Algorithm 2. Each call bi-partitions the physical GPU set
// with Fiduccia–Mattheyses over the affinity graph (physicalGraphBiPartition)
// and splits the tasks between the halves by utility
// (jobGraphBiPartition), recursing until a side holds a single GPU.
func (d *drbRun) recurse(tasks, gpus []int) error {
	if len(tasks) == 0 {
		return nil // this partition is not a candidate (Alg. 2 line 2)
	}
	if len(tasks) > len(gpus) {
		return fmt.Errorf("core: %d tasks cannot map onto %d GPUs", len(tasks), len(gpus))
	}
	if len(gpus) == 1 {
		// Map job's task to physical GPU (Alg. 2 line 5).
		d.assignment[tasks[0]] = gpus[0]
		return nil
	}
	p0, p1 := d.physicalGraphBiPartition(gpus)
	a0, a1, err := d.jobGraphBiPartition(tasks, p0, p1)
	if err != nil {
		return err
	}
	if err := d.recurse(a0, p0); err != nil {
		return err
	}
	return d.recurse(a1, p1)
}

// physicalGraphBiPartition splits the GPU set into two balanced halves
// using Fiduccia–Mattheyses over the affinity graph, where the affinity of
// two GPUs is the reciprocal of their topological distance. Minimizing the
// affinity cut keeps strongly connected GPUs (same socket, NVLink peers)
// on the same side, so the recursion descends the physical hierarchy the
// way SCOTCH's DRB does on the raw topology graph.
func (d *drbRun) physicalGraphBiPartition(gpus []int) (p0, p1 []int) {
	topo := d.state.Topology()
	// The affinity graph lives only for this call (FM consumes it before
	// returning), so one reused instance per drbRun suffices. Labels are
	// never read by the partitioner.
	g := d.affinity
	g.Reset(len(gpus))
	for i := 0; i < len(gpus); i++ {
		for k := i + 1; k < len(gpus); k++ {
			dist := topo.Distance(gpus[i], gpus[k])
			if dist <= 0 {
				continue
			}
			g.AddEdge(i, k, 1/dist)
		}
	}
	res := fm.Bipartition(g, fm.Options{})
	for i, pos := range gpus {
		if res.Side[i] == 0 {
			p0 = append(p0, pos)
		} else {
			p1 = append(p1, pos)
		}
	}
	// FM keeps sides within one vertex of balance, but guard against a
	// degenerate empty side (single-GPU input cannot reach here).
	if len(p0) == 0 {
		p0, p1 = p1[:1], p1[1:]
	} else if len(p1) == 0 {
		p1, p0 = p0[:1], p0[1:]
	}
	return p0, p1
}

// jobGraphBiPartition is Algorithm 3: it assigns each task to the physical
// sub-partition giving it higher utility, subject to capacity. Tasks are
// taken in descending weighted-degree order so the most communication-
// critical tasks choose first.
func (d *drbRun) jobGraphBiPartition(tasks, p0, p1 []int) (a0, a1 []int, err error) {
	comm := d.job.CommGraph()
	order := append(d.orderScratch[:0], tasks...)
	d.orderScratch = order
	slices.SortStableFunc(order, func(a, b int) int {
		da, db := comm.Underlying().WeightedDegree(a), comm.Underlying().WeightedDegree(b)
		switch {
		case da > db:
			return -1
		case da < db:
			return 1
		default:
			return 0
		}
	})

	// side is call-local (parents are done with it before recursing into
	// children), so the task-indexed scratch array replaces the former
	// per-call map. -1 marks unassigned. Iterating it in task order also
	// fixes the peer summation order in sideUtility, where map ranging
	// left it to Go's randomized iteration.
	side := d.sideScratch[:0]
	for i := 0; i < d.job.GPUs; i++ {
		side = append(side, -1)
	}
	d.sideScratch = side
	for _, task := range order {
		u0 := d.sideUtility(task, 0, p0, p1, side)
		u1 := d.sideUtility(task, 1, p0, p1, side)
		cap0 := len(p0) - len(a0)
		cap1 := len(p1) - len(a1)
		// Anti-collocation spreads tasks: prefer the emptier side.
		if d.job.AntiCollocate {
			u0, u1 = float64(cap0), float64(cap1)
		}
		pick := 1
		if (u0 >= u1 && cap0 > 0) || cap1 == 0 {
			pick = 0
		}
		if pick == 0 && cap0 == 0 {
			return nil, nil, fmt.Errorf("core: no capacity on either side for task %d", task)
		}
		if pick == 0 {
			a0 = append(a0, task)
		} else {
			if cap1 == 0 {
				return nil, nil, fmt.Errorf("core: no capacity on either side for task %d", task)
			}
			a1 = append(a1, task)
		}
		side[task] = int8(pick)
	}
	return a0, a1, nil
}

// sideUtility scores placing task into side y (Algorithm 3 lines 4–7): it
// combines the communication cost toward already-assigned peer tasks
// (getCommCost, using intra- and cross-partition mean distances from the
// global distance matrix C), the predicted interference from jobs running
// near the side's GPUs (getInter), and the fragmentation the side's
// machines already exhibit (getFragmentation).
func (d *drbRun) sideUtility(task, y int, p0, p1 []int, side []int8) float64 {
	topo := d.state.Topology()
	mine, other := p0, p1
	if y == 1 {
		mine, other = p1, p0
	}

	// getCommCost: expected distance to each already-assigned peer,
	// summed in ascending task order (deterministic by construction, not
	// by the luck of exactly representable partial sums).
	comm := d.job.CommGraph()
	intra := meanIntraDistance(topo, mine)
	cross := meanCrossDistance(topo, mine, other)
	var commCost float64
	for peer, peerSide := range side {
		if peerSide < 0 {
			continue
		}
		w := comm.Weight(task, peer)
		if w == 0 {
			continue
		}
		if int(peerSide) == y {
			commCost += w * intra
		} else {
			commCost += w * cross
		}
	}
	best := topo.MinPairDistance()
	uCC := 1.0
	if commCost > best {
		uCC = best / commCost
	}

	// getInter: predicted interference if the job lands on this side.
	interference := predictInterference(d.job, mine, d.state, d.mapper.profiles)
	uB := 1 / interference

	// getFragmentation: score the side by the fragmentation remaining
	// after taking its GPUs.
	take := len(mine)
	if take > d.job.GPUs {
		take = d.job.GPUs
	}
	uD := 1 - d.state.FragmentationAfter(mine[:take])

	return Utility(d.mapper.weights, d.job.CommIntensity(), uCC, uB, uD)
}

func meanIntraDistance(topo interface{ Distance(a, b int) float64 }, set []int) float64 {
	if len(set) < 2 {
		return 0
	}
	var sum float64
	n := 0
	for i := 0; i < len(set); i++ {
		for k := i + 1; k < len(set); k++ {
			sum += topo.Distance(set[i], set[k])
			n++
		}
	}
	return sum / float64(n)
}

func meanCrossDistance(topo interface{ Distance(a, b int) float64 }, a, b []int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var sum float64
	for _, x := range a {
		for _, y := range b {
			sum += topo.Distance(x, y)
		}
	}
	return sum / float64(len(a)*len(b))
}
