// Package core implements the paper's primary contribution: the
// topology-aware graph-mapping placement algorithm of §4. It contains the
// objective function and constraints (§4.3, Eq. 1), the utility function
// (Eq. 2) with its three terms — communication cost (Eq. 3), interference
// (Eq. 4) and fragmentation (Eq. 5) — and the Dual Recursive
// Bi-partitioning mapper (§4.4, Algorithms 2 and 3) that transforms a
// job's communication graph A and the physical topology graph P into a
// GPU allocation ψ(A, P) → g.
package core

import (
	"fmt"
	"math"
	"slices"

	"gputopo/internal/cluster"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
)

// Weights are the α coefficients of the objective and utility functions
// (Eq. 1 and 2): αcc weighs communication cost, αb interference, and αd
// fragmentation. They must sum to 1.
type Weights struct {
	CommCost      float64 // αcc
	Interference  float64 // αb
	Fragmentation float64 // αd
}

// DefaultWeights returns the equal weighting (0.33 each) used by the
// paper's experiments (§5.2.1).
func DefaultWeights() Weights {
	return Weights{CommCost: 1.0 / 3, Interference: 1.0 / 3, Fragmentation: 1.0 / 3}
}

// Validate reports whether the weights are non-negative and sum to 1.
func (w Weights) Validate() error {
	if w.CommCost < 0 || w.Interference < 0 || w.Fragmentation < 0 {
		return fmt.Errorf("core: negative α weight in %+v", w)
	}
	if sum := w.CommCost + w.Interference + w.Fragmentation; math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("core: α weights sum to %.4f, want 1", sum)
	}
	return nil
}

// Placement is the result of mapping a job onto GPUs, with the scored
// quality terms.
type Placement struct {
	// GPUs are the allocated GPU positions, sorted ascending.
	GPUs []int
	// Utility is the overall placement utility in [0, 1] (Eq. 2,
	// normalized); TOPO-AWARE-P postpones placements whose utility is
	// below the job's minimum.
	Utility float64
	// CommCost is the pairwise shortest-path distance sum (Eq. 3).
	CommCost float64
	// Interference is the predicted co-location slowdown factor I >= 1
	// (Eq. 4 with the collocated/solo convention).
	Interference float64
	// Fragmentation is ω_d after the placement (Eq. 5).
	Fragmentation float64
	// P2P reports whether every communicating GPU pair has a
	// peer-to-peer path (the property Figure 8 highlights).
	P2P bool
	// BusDemand is the shared-bus bandwidth (GB/s) the job will commit.
	BusDemand float64
}

// utilityTerms computes the three normalized [0,1] utility terms of a
// candidate allocation for the job.
//
// The paper's Eq. 2 uses raw reciprocals (1/t diverges for single-GPU
// jobs and the interference ratio direction is ambiguous between Eq. 1
// and Eq. 4); we use the equivalent normalized forms so utilities are
// comparable with the SLO thresholds of Table 1:
//
//	u_cc = t_best / max(t, t_best)  (1 when packed as well as possible)
//	u_b  = 1 / I                    (1 when no interference predicted)
//	u_d  = 1 - ω                    (1 when no fragmentation remains)
func utilityTerms(j *job.Job, gpus []int, st *cluster.State, profiles *profile.Store) (uCC, uB, uD, commCost, interference, frag float64) {
	topo := st.Topology()
	commCost = topo.PairwiseDistance(gpus)
	best := topo.BestCommCost(len(gpus))
	if len(gpus) < 2 || commCost <= best || best == 0 {
		uCC = 1
		if len(gpus) >= 2 && best == 0 {
			uCC = 1 // degenerate single-pair topologies
		}
	} else {
		uCC = best / commCost
	}

	interference = predictInterference(j, gpus, st, profiles)
	uB = 1 / interference

	frag = st.FragmentationAfter(gpus)
	uD = 1 - frag
	return uCC, uB, uD, commCost, interference, frag
}

// predictInterference gathers the co-runners sharing sockets or machines
// with the candidate GPUs and returns the profile-predicted slowdown
// factor I >= 1 (Eq. 4). Only jobs on the candidate's machines are
// examined, so the cost is independent of cluster size. The enumeration
// walks the owner table directly — machines ascending, job IDs sorted
// within a machine, cross-machine duplicates skipped — reproducing
// exactly the (machine, id) order the former MachinesOf/JobsOnMachine
// implementation summed co-runner terms in, without their per-call map
// and slice allocations (this sits on the innermost DRB scoring path).
func predictInterference(j *job.Job, gpus []int, st *cluster.State, profiles *profile.Store) float64 {
	topo := st.Topology()
	var machineBuf [8]int
	machines := machineBuf[:0]
	for _, pos := range gpus {
		m := topo.GPU(pos).Machine
		if !slices.Contains(machines, m) {
			machines = append(machines, m)
		}
	}
	slices.Sort(machines)

	var idBuf [16]string
	ids := idBuf[:0]
	for _, m := range machines {
		start := len(ids)
		for _, pos := range topo.GPUsOfMachine(m) {
			if o := st.Owner(pos); o != "" && !slices.Contains(ids, o) {
				ids = append(ids, o)
			}
		}
		slices.Sort(ids[start:])
	}

	var coBuf [16]profile.CoRunner
	coRunners := coBuf[:0]
	for _, other := range ids {
		alloc := st.Allocation(other)
		locality := perfmodel.SameMachine
		for _, g := range gpus {
			for _, og := range alloc.GPUs {
				if topo.SameSocket(g, og) {
					locality = perfmodel.SameSocket
				}
			}
		}
		coRunners = append(coRunners, profile.CoRunner{Traits: alloc.Traits, Locality: locality})
	}
	return profiles.PredictInterference(j.Traits(), coRunners)
}

// Utility combines the three terms into the overall placement utility.
// The communication term is weighted by the job's communication intensity
// (the §5.1 job-graph edge weight, 4 for tiny batches down to 1 for big,
// 0 for single-GPU jobs): a job that barely communicates should not have
// its placement vetoed by communication cost, while a tiny-batch job's
// utility is dominated by it. This realizes "applications express their
// performance objectives as SLOs that are translated into abstract
// utility functions" (§1).
func Utility(w Weights, commIntensity, uCC, uB, uD float64) float64 {
	num := w.CommCost*commIntensity*uCC + w.Interference*uB + w.Fragmentation*uD
	den := w.CommCost*commIntensity + w.Interference + w.Fragmentation
	if den == 0 {
		return 0
	}
	return num / den
}

// Objective evaluates the minimization objective of Eq. 1 for a candidate
// allocation: αcc·t/t_w + αb·I_n/I_w + αd·ω/ω_w, each term normalized
// against its worst case. Lower is better; the DRB mapper maximizes
// utility, and tests verify the two orderings agree.
func Objective(w Weights, j *job.Job, gpus []int, st *cluster.State, profiles *profile.Store) float64 {
	topo := st.Topology()
	_, _, _, commCost, interference, frag := utilityTerms(j, gpus, st, profiles)
	tw := topo.WorstCommCost(len(gpus))
	tTerm := 0.0
	if tw > 0 {
		tTerm = commCost / tw
	}
	iw := perfmodel.MaxSlowdown
	iTerm := (interference - 1) / iw
	return w.CommCost*tTerm + w.Interference*iTerm + w.Fragmentation*frag
}
