// Package metrics computes the evaluation metrics of §5 — per-job
// slowdown relative to the best-performing configuration (with and without
// queue waiting time), SLO violations, cumulative execution time — and
// renders the paper's tables and figures as ASCII so every experiment is
// regenerable from the command line.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gputopo/internal/simulator"
)

// SortedSlowdowns returns the per-job slowdowns ordered from worst to best
// — the x-axis convention of Figures 8e/f, 10 and 11. When includeWait is
// true the slowdown includes scheduler queue time (the "JOB'S QOS +
// WAITING TIME" panels).
func SortedSlowdowns(res *simulator.Result, includeWait bool) []float64 {
	out := make([]float64, len(res.Jobs))
	for i, jr := range res.Jobs {
		if includeWait {
			out[i] = jr.SlowdownQoSWait
		} else {
			out[i] = jr.SlowdownQoS
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Speedup returns how much faster b's cumulative execution time is than
// a's (a.Makespan / b.Makespan); §5.2.2 reports TOPO-AWARE-P affording
// ≈1.30x over BF this way.
func Speedup(a, b *simulator.Result) float64 {
	if b.Makespan == 0 {
		return math.Inf(1)
	}
	return a.Makespan / b.Makespan
}

// Table renders rows as a fixed-width ASCII table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is an (x, y) chart sample.
type Point struct{ X, Y float64 }

// LineChart renders series as an ASCII chart of the given size. Each
// series is drawn with its own rune; later series overwrite earlier ones
// on collisions.
func LineChart(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			c := int((p.X - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = mark
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%9.3f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&sb, "%9s  %-*.3f%*.3f\n", "", width/2, minX, width-width/2, maxX)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	sb.WriteString("          " + strings.Join(legend, "  ") + "\n")
	return sb.String()
}

// BarChart renders labeled values as horizontal ASCII bars.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for i, v := range values {
		n := int(v / maxV * float64(width))
		fmt.Fprintf(&sb, "%-*s |%s%s| %.3f\n",
			maxL, labels[i], strings.Repeat("=", n), strings.Repeat(" ", width-n), v)
	}
	return sb.String()
}

// Timeline renders the GPU allocation timeline of a run (Figure 8a–d):
// one row per GPU, one column per time bucket, letters identifying jobs.
func Timeline(res *simulator.Result, numGPUs, width int) string {
	if width < 20 {
		width = 20
	}
	end := res.Makespan
	if end == 0 {
		end = 1
	}
	rows := make([][]rune, numGPUs)
	for g := range rows {
		rows[g] = []rune(strings.Repeat(".", width))
	}
	// Stable letter per job ordered by first placement.
	intervals := append([]simulator.Interval(nil), res.Timeline...)
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].Start != intervals[j].Start {
			return intervals[i].Start < intervals[j].Start
		}
		return intervals[i].JobID < intervals[j].JobID
	})
	letters := map[string]rune{}
	next := 0
	letterOf := func(id string) rune {
		if r, ok := letters[id]; ok {
			return r
		}
		r := rune('A' + next%26)
		letters[id] = r
		next++
		return r
	}
	for _, iv := range intervals {
		c0 := int(iv.Start / end * float64(width-1))
		c1 := int(iv.Finish / end * float64(width-1))
		mark := letterOf(iv.JobID)
		for _, g := range iv.GPUs {
			if g < 0 || g >= numGPUs {
				continue
			}
			for c := c0; c <= c1 && c < width; c++ {
				rows[g][c] = mark
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] GPU allocation timeline (0 .. %.1fs)\n", res.Policy, end)
	for g := numGPUs - 1; g >= 0; g-- {
		fmt.Fprintf(&sb, "GPU%-2d |%s|\n", g, string(rows[g]))
	}
	var legend []string
	type entry struct {
		id string
		r  rune
	}
	var es []entry
	for id, r := range letters {
		es = append(es, entry{id, r})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].r < es[j].r })
	for _, e := range es {
		legend = append(legend, fmt.Sprintf("%c=%s", e.r, e.id))
	}
	sb.WriteString("      " + strings.Join(legend, " ") + "\n")
	return sb.String()
}

// CompareRuns renders the per-policy summary table of a multi-policy
// experiment: cumulative execution time, speedup of the best policy over
// each, SLO violations, mean slowdowns and waiting, and scheduler decision
// overhead (§5.2.2, §5.5.3).
func CompareRuns(results []*simulator.Result) string {
	best := results[0]
	for _, r := range results {
		if r.Makespan < best.Makespan {
			best = r
		}
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Policy.String(),
			fmt.Sprintf("%.1f", r.Makespan),
			fmt.Sprintf("%.2fx", Speedup(r, best)),
			fmt.Sprintf("%d", r.SLOViolations()),
			fmt.Sprintf("%.3f", r.MeanSlowdownQoS()),
			fmt.Sprintf("%.3f", r.MeanSlowdownQoSWait()),
			fmt.Sprintf("%.1f", r.TotalWait()),
			r.SchedStats.MeanDecisionTime().String(),
		})
	}
	return Table(
		[]string{"policy", "cumulative(s)", "best-speedup", "SLO-viol", "mean-QoS-slow", "mean-QoS+W-slow", "total-wait(s)", "decision-time"},
		rows,
	)
}

// SlowdownChart renders the sorted worst-to-best slowdown comparison of
// Figures 8e/f, 10 and 11 for several policies.
func SlowdownChart(title string, results []*simulator.Result, includeWait bool, width, height int) string {
	var series []Series
	for _, r := range results {
		sl := SortedSlowdowns(r, includeWait)
		pts := make([]Point, len(sl))
		for i, v := range sl {
			pts[i] = Point{X: float64(i), Y: v}
		}
		series = append(series, Series{Name: r.Policy.String(), Points: pts})
	}
	return LineChart(title, series, width, height)
}
