package metrics

import (
	"strings"
	"testing"

	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

func table1Results(t *testing.T) []*simulator.Result {
	t.Helper()
	topo := topology.Power8Minsky()
	var out []*simulator.Result
	for _, pol := range sched.AllPolicies() {
		res, err := simulator.Run(simulator.Config{Topology: topo, Policy: pol}, workload.Table1())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func TestSortedSlowdownsDescending(t *testing.T) {
	res := table1Results(t)[0]
	for _, includeWait := range []bool{false, true} {
		sl := SortedSlowdowns(res, includeWait)
		if len(sl) != 6 {
			t.Fatalf("slowdowns = %d", len(sl))
		}
		for i := 1; i < len(sl); i++ {
			if sl[i] > sl[i-1] {
				t.Fatal("slowdowns not sorted worst to best")
			}
		}
	}
}

func TestSpeedup(t *testing.T) {
	a := &simulator.Result{Makespan: 200}
	b := &simulator.Result{Makespan: 100}
	if Speedup(a, b) != 2 {
		t.Fatalf("speedup = %v", Speedup(a, b))
	}
	if got := Speedup(a, &simulator.Result{}); got <= 1e308 {
		t.Fatal("zero makespan should give +Inf speedup")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"col-a", "b"}, [][]string{{"x", "1"}, {"longer", "2"}})
	if !strings.Contains(out, "col-a") || !strings.Contains(out, "longer") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator width mismatch")
	}
}

func TestLineChart(t *testing.T) {
	out := LineChart("test chart", []Series{
		{Name: "s1", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		{Name: "s2", Points: []Point{{X: 0, Y: 1}, {X: 1, Y: 0}}},
	}, 32, 8)
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=s1") || !strings.Contains(out, "+=s2") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("marks missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", nil, 32, 8)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendering:\n%s", out)
	}
}

func TestLineChartDegenerateRange(t *testing.T) {
	// A single point must not divide by zero.
	out := LineChart("dot", []Series{{Name: "p", Points: []Point{{X: 5, Y: 5}}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("bars", []string{"a", "bb"}, []float64{1, 2}, 20)
	if !strings.Contains(out, "bars") || !strings.Contains(out, "2.000") {
		t.Fatalf("bar chart:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") >= strings.Count(lines[2], "=") {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
	// Zero values are safe.
	if z := BarChart("z", []string{"x"}, []float64{0}, 10); !strings.Contains(z, "0.000") {
		t.Fatal("zero bar chart failed")
	}
}

func TestTimelineRendering(t *testing.T) {
	res := table1Results(t)[0]
	out := Timeline(res, 4, 60)
	for _, frag := range []string{"GPU0", "GPU3", "A=J0", "F=J5"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("timeline missing %q:\n%s", frag, out)
		}
	}
}

func TestCompareRuns(t *testing.T) {
	results := table1Results(t)
	out := CompareRuns(results)
	for _, pol := range sched.AllPolicies() {
		if !strings.Contains(out, pol.String()) {
			t.Fatalf("comparison missing %v:\n%s", pol, out)
		}
	}
	if !strings.Contains(out, "1.00x") {
		t.Fatal("best policy should show 1.00x")
	}
}

func TestSlowdownChart(t *testing.T) {
	results := table1Results(t)
	out := SlowdownChart("qos", results, false, 48, 8)
	if !strings.Contains(out, "qos") || !strings.Contains(out, "TOPO-AWARE-P") {
		t.Fatalf("slowdown chart:\n%s", out)
	}
}
