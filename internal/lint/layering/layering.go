// Package layering implements the `layering` analyzer: it enforces the
// import DAG drawn in docs/architecture.md. Every package in the module
// is assigned to a named layer with a numeric rank; an import of a
// module package is legal only when it points at a strictly lower rank.
// That single rule encodes the invariants that matter here — the
// scheduling core (`internal/schedcore`) never imports an engine, the
// sweep engine never imports a front-end, serve handlers sit above the
// wire-type package they must speak — and it survives refactors: a new
// package fails the build until it is placed in the table (and, by
// review convention, in docs/architecture.md).
//
// The core's purity gets one extra tooth: packages listed in
// ForbiddenStd must not import I/O-shaped standard library packages at
// all.
package layering

import (
	"strconv"
	"strings"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "layering",
	Doc:  "enforces the docs/architecture.md import DAG: imports must point at strictly lower layers",
	Run:  run,
}

// Module is the module path prefix the DAG governs.
var Module = "gputopo"

// Layer couples a rank with the human name used in diagnostics.
type Layer struct {
	Rank int
	Name string
}

// Ranks places every module package. The ordering mirrors the layer
// diagram in docs/architecture.md (substrate → models → scheduling →
// engines → evaluation → front-ends); gaps leave room for new layers.
var Ranks = map[string]Layer{
	"gputopo/internal/graph": {100, "substrate"},
	"gputopo/internal/stats": {100, "substrate"},

	"gputopo/internal/topology": {200, "substrate"},
	"gputopo/internal/fm":       {200, "substrate"},
	"gputopo/internal/jobgraph": {200, "models"},

	"gputopo/internal/perfmodel": {300, "models"},
	"gputopo/internal/allreduce": {300, "models"},

	"gputopo/internal/job":     {400, "models"},
	"gputopo/internal/cluster": {400, "scheduling"},
	"gputopo/internal/profile": {400, "models"},

	"gputopo/internal/core":                 {500, "scheduling"},
	"gputopo/internal/workload":             {500, "evaluation"},
	"gputopo/internal/serveapi":             {500, "serving wire types"},
	"gputopo/internal/schedcore/placecache": {500, "placement memoization"},

	"gputopo/internal/schedcore": {600, "scheduling core"},
	"gputopo/internal/eventlog":  {600, "serving durability"},

	"gputopo/internal/schedcore/domains": {650, "scheduling domains"},

	"gputopo/internal/sched":              {700, "scheduling adapter"},
	"gputopo/internal/schedcore/difftest": {700, "scheduling reference"},

	"gputopo/internal/simulator": {800, "engines"},

	"gputopo/internal/caffesim": {900, "engines"},
	"gputopo/internal/metrics":  {900, "evaluation"},
	"gputopo/internal/trace":    {900, "evaluation"},

	"gputopo/internal/manifest": {950, "evaluation"},

	"gputopo/internal/sweep": {1000, "evaluation"},

	"gputopo/internal/experiments":     {1100, "front-ends"},
	"gputopo/internal/serve":           {1100, "front-ends"},
	"gputopo/internal/serveapi/client": {1100, "front-ends"},

	"gputopo": {1150, "public facade"},
}

// PrefixRanks places whole subtrees. Binaries and examples sit above
// everything; the lint suite sits just below them (cmd/topolint is its
// only consumer) and outside the scheduling DAG — no scheduling package
// may import it, and it imports none of them.
var PrefixRanks = []struct {
	Prefix string
	Layer  Layer
}{
	{"gputopo/cmd/", Layer{1200, "binaries"}},
	{"gputopo/examples/", Layer{1200, "examples"}},
	{"gputopo/internal/lint", Layer{1190, "lint suite"}},
}

// IntraPrefixes lists subtrees whose members may import each other
// freely: the lint suite is one tool, not a layered system.
var IntraPrefixes = []string{"gputopo/internal/lint"}

// ForbiddenStd bars I/O-shaped stdlib imports from pure packages: the
// scheduling core performs no I/O by contract (docs/architecture.md,
// "The scheduling core is pure and single-writer").
var ForbiddenStd = map[string][]string{
	"gputopo/internal/schedcore":            {"os", "io", "net", "net/http", "bufio", "os/exec", "syscall"},
	"gputopo/internal/schedcore/domains":    {"os", "io", "net", "net/http", "bufio", "os/exec", "syscall"},
	"gputopo/internal/schedcore/placecache": {"os", "io", "net", "net/http", "bufio", "os/exec", "syscall"},
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	my, ok := rankOf(path)
	if !ok {
		// Report once, on each file's package clause, so the finding
		// survives file-level suppression review.
		for _, f := range pass.Files {
			pass.Reportf(f.Name.Pos(),
				"package %s is not in the layering table; add it to internal/lint/layering and docs/architecture.md", path)
		}
		return nil
	}
	forbidden := ForbiddenStd[path]
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, bad := range forbidden {
				if ipath == bad {
					pass.Reportf(imp.Pos(),
						"%s is pure by contract and must not import %q (no I/O in the scheduling core)", path, ipath)
				}
			}
			if !inModule(ipath) {
				continue
			}
			ir, ok := rankOf(ipath)
			if !ok {
				pass.Reportf(imp.Pos(),
					"import %s is not in the layering table; add it to internal/lint/layering and docs/architecture.md", ipath)
				continue
			}
			if ir.Rank >= my.Rank && !intra(path, ipath) {
				pass.Reportf(imp.Pos(),
					"layering violation: %s (%s, rank %d) must not import %s (%s, rank %d); imports may only point at strictly lower layers",
					path, my.Name, my.Rank, ipath, ir.Name, ir.Rank)
			}
		}
	}
	return nil
}

// intra reports whether both packages live in one IntraPrefixes
// subtree, where same-rank imports are allowed.
func intra(a, b string) bool {
	for _, p := range IntraPrefixes {
		if (a == p || strings.HasPrefix(a, p+"/")) && (b == p || strings.HasPrefix(b, p+"/")) {
			return true
		}
	}
	return false
}

func inModule(path string) bool {
	return path == Module || strings.HasPrefix(path, Module+"/")
}

func rankOf(path string) (Layer, bool) {
	if l, ok := Ranks[path]; ok {
		return l, true
	}
	for _, pr := range PrefixRanks {
		if strings.HasPrefix(path, pr.Prefix) || path == strings.TrimSuffix(pr.Prefix, "/") {
			return pr.Layer, true
		}
	}
	return Layer{}, false
}
