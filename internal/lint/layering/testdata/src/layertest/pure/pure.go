// Package pure is barred from I/O imports in the fixture config.
package pure

import "os" // want `pure by contract and must not import "os"`

// Hostname leaks I/O into a pure package.
func Hostname() string {
	h, _ := os.Hostname()
	return h
}
