// Package unknown is deliberately absent from the fixture rank table.
package unknown // want `package .*unknown is not in the layering table`

// V anchors the package.
var V = 1
