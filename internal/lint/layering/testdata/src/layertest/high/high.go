// Package high is the fixture's top layer: it may import low, and does
// not get flagged for it.
package high

// Value anchors the package.
var Value = 42
