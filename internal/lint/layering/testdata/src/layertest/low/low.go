// Package low sits at the bottom of the fixture DAG; importing the
// high layer from here is the violation under test.
package low

import "gputopo/internal/lint/layering/testdata/src/layertest/high" // want `layering violation: .*low \(fixture-low, rank 100\) must not import .*high \(fixture-high, rank 900\)`

// Use keeps the import alive.
func Use() int { return high.Value }
