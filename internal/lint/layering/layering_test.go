package layering_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/layering"
)

const fixtureRoot = "gputopo/internal/lint/layering/testdata/src/layertest/"

func withFixtureConfig(t *testing.T) {
	t.Helper()
	oldRanks, oldPrefix, oldIntra, oldStd :=
		layering.Ranks, layering.PrefixRanks, layering.IntraPrefixes, layering.ForbiddenStd
	t.Cleanup(func() {
		layering.Ranks, layering.PrefixRanks, layering.IntraPrefixes, layering.ForbiddenStd =
			oldRanks, oldPrefix, oldIntra, oldStd
	})
	layering.Ranks = map[string]layering.Layer{
		fixtureRoot + "low":  {Rank: 100, Name: "fixture-low"},
		fixtureRoot + "high": {Rank: 900, Name: "fixture-high"},
		fixtureRoot + "pure": {Rank: 100, Name: "fixture-pure"},
	}
	layering.PrefixRanks = nil
	layering.IntraPrefixes = nil
	layering.ForbiddenStd = map[string][]string{
		fixtureRoot + "pure": {"os", "net/http"},
	}
}

func TestLayeringFixture(t *testing.T) {
	withFixtureConfig(t)
	analysistest.Run(t, layering.Analyzer,
		"./testdata/src/layertest/low",
		"./testdata/src/layertest/high",
		"./testdata/src/layertest/unknown",
		"./testdata/src/layertest/pure",
	)
}

// TestRepoDAGIsComplete pins the real configuration: every package the
// table names must keep a strictly-lower-rank import set, which the
// repo-wide run in cmd/topolint's tests and CI enforces. Here we check
// the table itself stays self-consistent (no package both in Ranks and
// swallowed by a PrefixRank with a different layer).
func TestRepoDAGIsComplete(t *testing.T) {
	for path, l := range layering.Ranks {
		if l.Rank <= 0 {
			t.Errorf("%s has non-positive rank %d", path, l.Rank)
		}
		if l.Name == "" {
			t.Errorf("%s has no layer name", path)
		}
	}
}
