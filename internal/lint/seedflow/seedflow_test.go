package seedflow_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/seedflow"
)

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, seedflow.Analyzer, "./testdata/src/seedflowtest")
}
