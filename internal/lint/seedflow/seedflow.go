// Package seedflow implements the `seedflow` analyzer: every RNG
// constructed anywhere in the repo must be seeded with a value that
// traceably derives from the deterministic seed-derivation helpers
// (stats.DeriveSeed / stats.ReplicaSeeds), from a constant, or from a
// value already flowing under a seed name. The anti-pattern it exists
// to kill is rand.NewSource(time.Now().UnixNano()) — one of those in a
// sweep worker and byte-identical artifacts are gone.
//
// Checked constructors ("sinks"): math/rand.NewSource,
// math/rand/v2.NewPCG / NewChaCha8, and the repo's own stats.NewRNG.
// A seed argument is accepted when every leaf of its expression is a
// constant, a conversion, arithmetic over accepted leaves, an
// identifier or field whose name contains "seed" (the caller threaded
// a derived seed through), or a call into the stats package. Anything
// else — clock reads, PIDs, env vars, unrelated function calls — is
// flagged.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "RNG seeds must derive from stats.DeriveSeed/ReplicaSeeds, constants, or seed-named values",
	Run:  run,
}

// StatsPkg is the blessed seed-derivation package; calls into it are
// accepted as derivation evidence.
var StatsPkg = "gputopo/internal/stats"

const fixMsg = "derive the seed with stats.DeriveSeed(base, key) or stats.ReplicaSeeds and thread it through a parameter named seed"

// sink describes one RNG constructor whose seed arguments are policed.
type sink struct {
	pkg  string
	name string
}

var sinks = []sink{
	{"math/rand", "NewSource"},
	{"math/rand/v2", "NewPCG"},
	{"math/rand/v2", "NewChaCha8"},
	{"gputopo/internal/stats", "NewRNG"},
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		for _, s := range sinks {
			if fn.Pkg().Path() == s.pkg && fn.Name() == s.name {
				for _, arg := range call.Args {
					if !derived(pass, arg) {
						pass.ReportfFix(arg.Pos(), fixMsg,
							"%s.%s seeded with %s, which does not derive from stats.DeriveSeed/ReplicaSeeds or a constant; this seed is not reproducible",
							pkgBase(s.pkg), s.name, describe(arg))
					}
				}
			}
		}
		return true
	})
	return nil
}

// derived reports whether e is an acceptable seed expression.
func derived(pass *analysis.Pass, e ast.Expr) bool {
	// Anything the type checker already evaluated to a constant is
	// reproducible by definition (literals, named constants, shifts of
	// constants, …).
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return derived(pass, x.X)
	case *ast.UnaryExpr:
		return derived(pass, x.X)
	case *ast.BinaryExpr:
		return derived(pass, x.X) && derived(pass, x.Y)
	case *ast.Ident:
		return seedNamed(x.Name)
	case *ast.SelectorExpr:
		// cfg.Seed, p.BaseSeed, …: accept on the field's name.
		return seedNamed(x.Sel.Name)
	case *ast.IndexExpr:
		// seeds[i]: accept on the collection's name.
		return derived(pass, x.X)
	case *ast.CallExpr:
		// A type conversion keeps the derivation of its operand.
		if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
			return len(x.Args) == 1 && derived(pass, x.Args[0])
		}
		// Calls into the stats package (DeriveSeed, ReplicaSeeds,
		// RNG.Uint64 on an already-seeded generator, …) are the
		// sanctioned derivation chain.
		if fn := pass.CalleeFunc(x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == StatsPkg {
			return true
		}
		return false
	default:
		return false
	}
}

func seedNamed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

func describe(e ast.Expr) string {
	return types.ExprString(e)
}

func pkgBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
