// Package seedflowtest is the seedflow analyzer fixture.
package seedflowtest

import (
	"math/rand"
	"os"
	"time"

	"gputopo/internal/stats"
)

type config struct {
	Seed     uint64
	BaseSeed int64
	Workers  int
}

// WallClockSeed is the canonical anti-pattern: fires.
func WallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `NewSource seeded with time\.Now\(\)\.UnixNano\(\), which does not derive`
}

// PIDSeed is just as bad: fires.
func PIDSeed() *stats.RNG {
	return stats.NewRNG(uint64(os.Getpid())) // want `stats.NewRNG seeded with uint64\(os\.Getpid\(\)\)`
}

// OpaqueVariable carries no seed lineage in its name: fires.
func OpaqueVariable(entropy int64) *rand.Rand {
	return rand.New(rand.NewSource(entropy)) // want `NewSource seeded with entropy`
}

// ThreadedSeed is the sanctioned shape — the caller derived it.
func ThreadedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ConvertedSeed keeps derivation through a conversion.
func ConvertedSeed(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}

// ConfigSeed accepts seed-named fields.
func ConfigSeed(cfg config) *stats.RNG {
	return stats.NewRNG(cfg.Seed)
}

// DerivedSeed calls the blessed helper directly.
func DerivedSeed(base uint64, key string) *stats.RNG {
	return stats.NewRNG(stats.DeriveSeed(base, key))
}

// ReplicaSeed indexes a derived-seed slice.
func ReplicaSeed(base uint64, i int) *stats.RNG {
	seeds := stats.ReplicaSeeds(base, 8)
	return stats.NewRNG(seeds[i])
}

// ConstantSeed is reproducible by definition.
func ConstantSeed() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// ArithmeticOverSeeds stays derived when every leaf carries lineage.
func ArithmeticOverSeeds(seed, workerSeed uint64) *stats.RNG {
	return stats.NewRNG(seed ^ workerSeed<<1)
}

// IndexMixedSeed hand-rolls a substream by folding a worker index into
// the seed; that is what stats.ReplicaSeeds is for: fires.
func IndexMixedSeed(seed uint64, i int) *stats.RNG {
	return stats.NewRNG(seed + uint64(i)) // want `stats.NewRNG seeded with seed \+ uint64\(i\)`
}
