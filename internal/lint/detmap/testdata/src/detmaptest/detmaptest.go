// Package detmaptest is the detmap analyzer fixture: every flagged
// line carries a // want expectation; everything else must stay silent.
package detmaptest

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// FloatSum accumulates floats in map order: fires.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum depends on map iteration order`
	}
	return sum
}

// FloatSumPlain uses the x = x + v spelling: fires.
func FloatSumPlain(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `float accumulation into total depends on map iteration order`
	}
	return total
}

// IntSum is commutative and exact: no finding.
func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// PerKey writes through the range key, deterministic per key: no finding.
func PerKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v * 2
	}
	return out
}

// AppendUnsorted leaks iteration order into the slice: fires.
func AppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range`
	}
	return keys
}

// CollectThenSort is the sanctioned idiom: no finding.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectThenSlicesSort uses a slices.SortFunc-style call via sort.Slice:
// no finding.
func CollectThenSlicesSort(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// CollectThenMethodSort hands the slice to a named sort helper — the
// method-shaped collect-then-sort idiom: no finding.
func CollectThenMethodSort(q *queue, m map[string]int) {
	for k := range m {
		q.items = append(q.items, k)
	}
	q.sortItems(q.items)
}

type queue struct{ items []string }

func (q *queue) sortItems(items []string) { sort.Strings(items) }

// LocalAppend appends to a slice born inside the loop body: no finding.
func LocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// EncodeInLoop serializes rows mid-iteration: fires.
func EncodeInLoop(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m {
		_ = enc.Encode(map[string]int{k: v}) // want `json.Encode inside a map range writes output in map iteration order`
	}
}

// MarshalInLoop builds JSON per entry: fires.
func MarshalInLoop(m map[string]int) [][]byte {
	rows := make([][]byte, 0, len(m))
	for k := range m {
		b, _ := json.Marshal(k) // want `json.Marshal inside a map range`
		rows = append(rows, b)  // want `append to rows inside a map range`
	}
	return rows
}

// CSVInLoop writes CSV records in map order: fires.
func CSVInLoop(w *csv.Writer, m map[string]string) {
	for k, v := range m {
		_ = w.Write([]string{k, v}) // want `csv.Write inside a map range`
	}
}

// PrintInLoop writes text output in map order: fires.
func PrintInLoop(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // want `fmt.Fprintln inside a map range`
	}
}

// SliceRange is not a map: no finding.
func SliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// NamedMapType still fires: the underlying type is a map.
type scores map[string]float64

func NamedMap(m scores) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum`
	}
	return sum
}
