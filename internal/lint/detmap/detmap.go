// Package detmap implements the `detmap` analyzer: it flags `range`
// loops over maps whose bodies leak Go's randomized iteration order
// into results — exactly the nondeterminism class that twice broke this
// repo's byte-identical artifacts (sorted co-runner sums in PR 1, the
// sideUtility float-sum hazard in PR 4).
//
// A map-range body is flagged when it
//
//   - accumulates floating point into a variable declared outside the
//     loop (float addition is not associative, so the sum depends on
//     visit order),
//   - appends to a slice declared outside the loop (element order
//     becomes iteration order), unless that slice is later passed to a
//     sort.*/slices.Sort* call or a helper with "sort" in its name in
//     the same function — the collect-then-sort idiom is the
//     sanctioned escape, or
//   - writes output mid-iteration through encoding/json, encoding/csv
//     or fmt.Fprint*/fmt.Print* (rows land in iteration order).
//
// Integer accumulation, per-key writes (out[k] = …, out[k] += …) and
// ranging over sorted key slices are all order-independent and never
// flagged.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flags map-range loops whose float sums, appends or output writes depend on map iteration order",
	Run:  run,
}

const fix = "iterate sorted keys (collect, sort.Strings/slices.Sort, then range the slice) or accumulate per key"

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkBody(pass, rs, enclosingFuncBody(stack))
		return true
	})
	return nil
}

// enclosingFuncBody returns the innermost function body on the stack,
// used to look for a sort call after the range loop.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, fnBody, keyObj, stmt)
		case *ast.CallExpr:
			checkOutputCall(pass, rs, stmt)
		case *ast.IncDecStmt:
			// x++ / x-- are integer-or-float single steps; float ±1 per
			// visit is commutative, so never flagged.
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt, keyObj types.Object, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if isFloat(pass.TypeOf(lhs)) && accumulatorOutside(pass, rs, keyObj, lhs) {
			pass.ReportfFix(as.Pos(), fix,
				"float accumulation into %s depends on map iteration order", exprName(lhs))
		}
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			rhs := as.Rhs[i]
			// x = x + v style float accumulation.
			if isFloat(pass.TypeOf(lhs)) && accumulatorOutside(pass, rs, keyObj, lhs) &&
				mentionsObj(pass, rhs, baseObj(pass, lhs)) && hasFloatArith(rhs) {
				pass.ReportfFix(as.Pos(), fix,
					"float accumulation into %s depends on map iteration order", exprName(lhs))
				continue
			}
			// s = append(s, …) into a slice declared outside the loop.
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				obj := baseObj(pass, lhs)
				if obj != nil && obj.Pos() < rs.Pos() && !sortedAfter(pass, fnBody, rs, obj) {
					pass.ReportfFix(as.Pos(), fix,
						"append to %s inside a map range makes element order follow map iteration order", exprName(lhs))
				}
			}
		}
	}
}

// checkOutputCall flags serialization mid-iteration: rows emitted in
// map order.
func checkOutputCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	bad := false
	switch pkg {
	case "encoding/json":
		bad = name == "Marshal" || name == "MarshalIndent" || name == "Encode"
	case "encoding/csv":
		bad = name == "Write" || name == "WriteAll"
	case "fmt":
		bad = strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")
	}
	if bad {
		pass.ReportfFix(call.Pos(), fix,
			"%s.%s inside a map range writes output in map iteration order", pathBase(pkg), name)
	}
}

// accumulatorOutside reports whether lhs names storage declared before
// the range statement, excluding per-key slots indexed by the range key
// (out[k] op= v is deterministic per key).
func accumulatorOutside(pass *analysis.Pass, rs *ast.RangeStmt, keyObj types.Object, lhs ast.Expr) bool {
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyObj != nil && mentionsObj(pass, idx.Index, keyObj) {
		return false
	}
	obj := baseObj(pass, lhs)
	return obj != nil && obj.Pos() < rs.Pos()
}

// sortedAfter reports whether obj is handed to a sort function after
// the range loop within the same function body.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		stdSort := (pkg == "sort" || pkg == "slices") &&
			(strings.Contains(fn.Name(), "Sort") || isSortShorthand(pkg, fn.Name()))
		// A helper whose name says it sorts (sortEntries, resortQueue)
		// and takes the slice as an argument counts too: the
		// collect-then-sort idiom frequently lives behind a method.
		namedSort := strings.Contains(strings.ToLower(fn.Name()), "sort")
		if !stdSort && !namedSort {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(pass, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortShorthand covers sort.Strings/Ints/Float64s, which do not
// contain "Sort" in their names.
func isSortShorthand(pkg, name string) bool {
	if pkg != "sort" {
		return false
	}
	switch name {
	case "Strings", "Ints", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}

func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

func baseObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id := analysis.RootIdent(e)
	if id == nil {
		return nil
	}
	return pass.ObjectOf(id)
}

func mentionsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// hasFloatArith reports whether e contains an additive/multiplicative
// binary operation — the shape of an accumulation, as opposed to a
// plain overwrite like x = m[k].
func hasFloatArith(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				found = true
			}
		}
		return !found
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func exprName(e ast.Expr) string {
	if id := analysis.RootIdent(e); id != nil {
		return id.Name
	}
	return "accumulator"
}

func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
