package detmap_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "./testdata/src/detmaptest")
}
