// Package analysistest runs one analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	s += v // want `float accumulation`
//
// Each `// want` holds one or more quoted or backquoted regular
// expressions; every diagnostic on that line must match one of them, in
// order, and every expectation must be consumed. Fixtures are real
// packages in the module (go list loads explicit testdata paths even
// though ./... skips them), so they must compile — deliberately broken
// *semantics*, valid Go.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gputopo/internal/lint/analysis"
	"gputopo/internal/lint/load"
)

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads each fixture package (a path relative to the test's working
// directory, e.g. "./testdata/src/detmaptest"), applies the analyzer
// raw — no //lint:ignore filtering — and reports every mismatch between
// diagnostics and // want expectations through t.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fixture := range fixtures {
		pkgs, err := load.Load(".", fixture)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fixture, err)
		}
		for _, pkg := range pkgs {
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture %s does not type-check: %v", pkg.ImportPath, pkg.TypeErrors[0])
			}
			runOne(t, a, pkg)
		}
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	wants := collectWants(t, pkg)

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			for _, w := range wants[fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)] {
				if !w.matched && w.rx.MatchString(d.Message) {
					w.matched = true
					return
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s failed on %s: %v", a.Name, pkg.ImportPath, err)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.rx)
			}
		}
	}
}

// collectWants parses `// want "rx" `rx`...` comments, keyed by
// "file:line".
func collectWants(t *testing.T, pkg *load.Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for _, rxText := range splitQuoted(t, p.String(), text) {
					rx, err := regexp.Compile(rxText)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, rxText, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts consecutive Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: malformed // want: expected quoted regexp at %q", at, s)
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: malformed // want: unterminated %q", at, s)
		}
		lit := s[:end+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: malformed // want literal %q: %v", at, lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
