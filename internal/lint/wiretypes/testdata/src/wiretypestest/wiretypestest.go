// Package wiretypestest is the wiretypes analyzer fixture; the test
// adds it to wiretypes.Scope before running.
package wiretypestest

import (
	"encoding/json"
	"net/http"
)

type reply struct {
	OK bool `json:"ok"`
}

// HandRolledMarshal encodes a response by hand: fires.
func HandRolledMarshal(w http.ResponseWriter, r *http.Request) {
	b, _ := json.Marshal(reply{OK: true}) // want `hand-rolled json.Marshal on an HTTP response path`
	w.Write(b)
}

// HandRolledEncoder streams a response by hand: fires.
func HandRolledEncoder(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(reply{OK: true}) // want `hand-rolled json.NewEncoder on an HTTP response path`
}

// RawError bypasses the error envelope: fires.
func RawError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error bypasses the serveapi error envelope`
}

// NestedClosure still sees the ResponseWriter: fires.
func NestedClosure(w http.ResponseWriter, r *http.Request) {
	emit := func(v any) {
		b, _ := json.Marshal(v) // want `hand-rolled json.Marshal`
		w.Write(b)
	}
	emit(reply{OK: true})
}

// DecodeRequest reads the request body; decoding is allowed.
func DecodeRequest(w http.ResponseWriter, r *http.Request) {
	var req reply
	_ = json.NewDecoder(r.Body).Decode(&req)
}

// SnapshotMarshal has no ResponseWriter in sight; log/snapshot
// serialization is allowed.
func SnapshotMarshal(v any) ([]byte, error) {
	return json.Marshal(v)
}
