package wiretypes_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/wiretypes"
)

func TestWiretypes(t *testing.T) {
	defer func(old []string) { wiretypes.Scope = old }(wiretypes.Scope)
	wiretypes.Scope = append(wiretypes.Scope,
		"gputopo/internal/lint/wiretypes/testdata/src/wiretypestest")
	analysistest.Run(t, wiretypes.Analyzer, "./testdata/src/wiretypestest")
}
