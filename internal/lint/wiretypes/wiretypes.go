// Package wiretypes implements the `wiretypes` analyzer: inside
// internal/serve, HTTP responses must be produced through the
// internal/serveapi wire-type helpers (WriteJSON / WriteError /
// WriteRetryAfter) so every body is a versioned wire type and every
// error is the uniform envelope. The analyzer flags, within any
// function that can see an http.ResponseWriter:
//
//   - hand-rolled response encoding — json.Marshal, json.MarshalIndent
//     or json.NewEncoder, and
//   - http.Error, which bypasses the error envelope.
//
// Request-side decoding (json.NewDecoder on r.Body) and non-HTTP
// serialization (snapshots, the event log) are untouched: the scope is
// exactly "functions holding a ResponseWriter".
package wiretypes

import (
	"go/ast"
	"go/types"
	"strings"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wiretypes",
	Doc:  "HTTP handlers in internal/serve must answer through serveapi wire types, never hand-rolled JSON or http.Error",
	Run:  run,
}

// Scope lists the import-path prefixes whose handlers are policed.
// serveapi itself is a sibling package, so the helpers' own bodies are
// naturally out of scope. Tests may override this.
var Scope = []string{"gputopo/internal/serve"}

const fixMsg = "respond with serveapi.WriteJSON / serveapi.WriteError / serveapi.WriteRetryAfter so the body is a wire type"

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		switch {
		case pkg == "net/http" && name == "Error":
			pass.ReportfFix(call.Pos(), fixMsg,
				"http.Error bypasses the serveapi error envelope")
		case pkg == "encoding/json" && (name == "Marshal" || name == "MarshalIndent" || name == "NewEncoder"):
			if seesResponseWriter(pass, stack) {
				pass.ReportfFix(call.Pos(), fixMsg,
					"hand-rolled json.%s on an HTTP response path; responses must go through serveapi", name)
			}
		}
		return true
	})
	return nil
}

func inScope(path string) bool {
	for _, p := range Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// seesResponseWriter reports whether any enclosing function on the
// stack takes an http.ResponseWriter parameter — the definition of "an
// HTTP response path".
func seesResponseWriter(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		switch f := n.(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if isResponseWriter(pass.TypeOf(field.Type)) {
				return true
			}
		}
	}
	return false
}

func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}
