// Package wallclock implements the `wallclock` analyzer: inside the
// deterministic zone — the scheduling core and every engine that must
// replay bit-for-bit (schedcore, simulator, caffesim, sweep,
// experiments) — time may only flow through the driver-injected
// schedcore.Clock and randomness only through seeds derived with
// stats.DeriveSeed/ReplicaSeeds. Calls to time.Now/Since/Until and to
// math/rand's implicitly-seeded global functions are flagged.
//
// The two sanctioned exceptions (the WallClock implementation itself
// and decision-latency instrumentation that never feeds a scheduling
// decision) carry //lint:ignore wallclock directives with their
// justification.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Until and global math/rand in the deterministic scheduling zone",
	Run:  run,
}

// Restricted lists the import-path prefixes of the deterministic zone.
// A package is in scope when its path equals a prefix or sits beneath
// it. Tests may override this to point at fixtures.
var Restricted = []string{
	"gputopo/internal/schedcore",
	"gputopo/internal/simulator",
	"gputopo/internal/caffesim",
	"gputopo/internal/sweep",
	"gputopo/internal/experiments",
}

const clockFix = "take time from the driver's schedcore.Clock (ManualClock in simulators, WallClock in toposerve)"
const seedFix = "use a stats.RNG seeded via stats.DeriveSeed/ReplicaSeeds so every run replays bit-for-bit"

func run(pass *analysis.Pass) error {
	if !restricted(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // methods (rand.Rand.Intn, time.Time.Sub, …) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.ReportfFix(call.Pos(), clockFix,
					"time.%s in %s breaks virtual-clock replay; the deterministic zone must not read the wall clock",
					fn.Name(), pkgBase(pass.Pkg.Path()))
			}
		case "math/rand", "math/rand/v2":
			if isGlobalRand(fn.Name()) {
				pass.ReportfFix(call.Pos(), seedFix,
					"global math/rand %s() draws from a process-wide, unseeded stream; the deterministic zone must not use it",
					fn.Name())
			}
		}
		return true
	})
	return nil
}

func restricted(path string) bool {
	for _, p := range Restricted {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isGlobalRand matches math/rand package-level draws from the shared
// source. Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8)
// are allowed here — the seedflow analyzer polices their seeds.
func isGlobalRand(name string) bool {
	switch name {
	case "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Int32", "Int32N", "Int64", "Int64N", "IntN", "N",
		"Uint", "Uint32", "Uint32N", "Uint64", "Uint64N", "UintN",
		"Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "Seed", "Read":
		return true
	}
	return false
}

func pkgBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
