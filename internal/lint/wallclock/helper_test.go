package wallclock_test

import (
	"testing"

	"gputopo/internal/lint/analysis"
	"gputopo/internal/lint/load"
	"gputopo/internal/lint/wallclock"
)

// requireNoFindings runs the wallclock analyzer raw over a fixture and
// fails on any diagnostic.
func requireNoFindings(t *testing.T, fixture string) {
	t.Helper()
	pkgs, err := load.Load(".", fixture)
	if err != nil {
		t.Fatalf("loading %s: %v", fixture, err)
	}
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Analyzer:  wallclock.Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report: func(d analysis.Diagnostic) {
				t.Errorf("%s: unexpected finding outside the restricted zone: %s",
					pkg.Fset.Position(d.Pos), d.Message)
			},
		}
		if err := wallclock.Analyzer.Run(pass); err != nil {
			t.Fatal(err)
		}
	}
}
