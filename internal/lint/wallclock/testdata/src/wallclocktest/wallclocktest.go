// Package wallclocktest is the wallclock analyzer fixture. The test
// adds this package to wallclock.Restricted before running.
package wallclocktest

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: fires.
func Stamp() float64 {
	return float64(time.Now().UnixNano()) // want `time.Now in wallclocktest breaks virtual-clock replay`
}

// Elapsed uses time.Since: fires.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in wallclocktest`
}

// Deadline uses time.Until: fires.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until in wallclocktest`
}

// GlobalDraw uses the process-wide source: fires.
func GlobalDraw() int {
	return rand.Intn(10) // want `global math/rand Intn\(\)`
}

// GlobalShuffle fires too.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand Shuffle\(\)`
}

// SeededDraw goes through an explicit source: wallclock stays silent
// (seedflow owns the seed argument).
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// TimeArithmetic on values (no clock read) is fine.
func TimeArithmetic(a, b time.Time, d time.Duration) time.Duration {
	return a.Sub(b) + d
}

// DurationConstants are fine.
func DurationConstants() time.Duration {
	return 3 * time.Second
}
