package wallclock_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/wallclock"
)

func TestWallclockInRestrictedPackage(t *testing.T) {
	defer func(old []string) { wallclock.Restricted = old }(wallclock.Restricted)
	wallclock.Restricted = append(wallclock.Restricted,
		"gputopo/internal/lint/wallclock/testdata/src/wallclocktest")
	analysistest.Run(t, wallclock.Analyzer, "./testdata/src/wallclocktest")
}

// TestWallclockOutsideZone proves the analyzer scopes itself: the same
// fixture, loaded without being listed in Restricted, yields nothing.
func TestWallclockOutsideZone(t *testing.T) {
	// The fixture's // want comments would fail the run if any
	// diagnostic were produced; analysistest also fails on unmatched
	// wants, so run the raw analyzer by hand instead.
	requireNoFindings(t, "./testdata/src/wallclocktest")
}
