package nilness_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, nilness.Analyzer, "./testdata/src/nilnesstest")
}
