// Package nilnesstest is the nilness analyzer fixture.
package nilnesstest

type node struct {
	value int
	next  *node
}

// DerefInNilBranch dereferences inside the proving branch: fires.
func DerefInNilBranch(p *node) int {
	if p == nil {
		return p.value // want `nil dereference: p is provably nil in this branch and gets field-accessed`
	}
	return p.value
}

// StarDeref explicit dereference: fires.
func StarDeref(p *int) int {
	if p == nil {
		return *p // want `nil dereference: p is provably nil in this branch and gets dereferenced`
	}
	return *p
}

// ElseOfNotNil reaches the nil case through the else branch: fires.
func ElseOfNotNil(p *node) int {
	if p != nil {
		return p.value
	} else {
		return p.next.value // want `nil dereference: p is provably nil in this branch and gets field-accessed`
	}
}

// IndexNilSlice indexes a slice proven nil: fires.
func IndexNilSlice(xs []int) int {
	if xs == nil {
		return xs[0] // want `nil dereference: xs is provably nil in this branch and gets indexed`
	}
	return xs[0]
}

// CallNilFunc calls a func value proven nil: fires.
func CallNilFunc(f func() int) int {
	if f == nil {
		return f() // want `nil dereference: f is provably nil in this branch and gets called`
	}
	return f()
}

// GuardAndReturn is the idiomatic guard: no finding.
func GuardAndReturn(p *node) int {
	if p == nil {
		return 0
	}
	return p.value
}

// ReassignedBeforeUse initializes inside the branch: no finding.
func ReassignedBeforeUse(p *node) int {
	if p == nil {
		p = &node{value: 7}
		return p.value
	}
	return p.value
}

// NilMapReadIsLegal reads from a nil map: no finding (zero value).
func NilMapReadIsLegal(m map[string]int) int {
	if m == nil {
		return m["absent"]
	}
	return m["present"]
}

// MethodOnNilReceiver may be deliberate: no finding.
func MethodOnNilReceiver(p *node) int {
	if p == nil {
		return p.depth()
	}
	return p.depth()
}

func (p *node) depth() int {
	if p == nil {
		return 0
	}
	return 1 + p.next.depth()
}
