// Package nilness implements the `nilness` analyzer: a dependency-free
// subset of the stock x/tools SSA-based check, covering its
// highest-value report — using a value inside the very branch that just
// proved it nil:
//
//	if p == nil {
//		return p.field // boom
//	}
//
// The analyzer flags, inside the nil-proven branch of an
// `x == nil` / `x != nil` condition: pointer dereference (*x, x.field),
// indexing a nil slice, and calling a nil function value. Map reads and
// method calls are never flagged (both can be legal on nil receivers).
// The branch is abandoned as soon as x is reassigned or its address is
// taken. No cross-block dataflow is attempted — this is the
// deliberately small, zero-false-positive core of the stock analyzer.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flags dereference, indexing or call of a value inside the branch that proved it nil",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		id, isNilCmp := nilComparand(pass, cond)
		if !isNilCmp {
			return true
		}
		var nilBranch ast.Stmt
		switch cond.Op {
		case token.EQL: // x == nil → then-branch has x nil
			nilBranch = ifs.Body
		case token.NEQ: // x != nil → else-branch has x nil
			nilBranch = ifs.Else
		}
		if nilBranch == nil {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		checkNilBranch(pass, nilBranch, obj)
		return true
	})
	return nil
}

// nilComparand matches `ident OP nil` / `nil OP ident` and returns the
// identifier when its type can actually be nil.
func nilComparand(pass *analysis.Pass, b *ast.BinaryExpr) (*ast.Ident, bool) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return nil, false
	}
	var idExpr ast.Expr
	switch {
	case isNil(pass, b.Y):
		idExpr = b.X
	case isNil(pass, b.X):
		idExpr = b.Y
	default:
		return nil, false
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return nil, false
	}
	return id, true
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.ObjectOf(id).(*types.Nil)
	return isNilConst
}

// checkNilBranch walks the branch in which obj is known nil, reporting
// fatal uses until obj is reassigned or escapes.
func checkNilBranch(pass *analysis.Pass, branch ast.Stmt, obj types.Object) {
	poisoned := false // set once obj is reassigned/escapes; stop reporting
	ast.Inspect(branch, func(n ast.Node) bool {
		if poisoned {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if refersTo(pass, lhs, obj) {
					poisoned = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && refersTo(pass, x.X, obj) {
				poisoned = true // &x: someone may initialize it
				return false
			}
		case *ast.StarExpr:
			if refersTo(pass, x.X, obj) {
				report(pass, x.Pos(), obj, "dereferenced")
			}
		case *ast.SelectorExpr:
			if refersTo(pass, x.X, obj) && isPointer(obj.Type()) && isFieldAccess(pass, x) {
				report(pass, x.Pos(), obj, "field-accessed")
			}
		case *ast.IndexExpr:
			if refersTo(pass, x.X, obj) && isSlice(obj.Type()) {
				report(pass, x.Pos(), obj, "indexed")
			}
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if pass.ObjectOf(fun) == obj && isFunc(obj.Type()) {
					report(pass, x.Pos(), obj, "called")
				}
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos, obj types.Object, how string) {
	pass.Reportf(pos, "nil dereference: %s is provably nil in this branch and gets %s", obj.Name(), how)
}

func refersTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// isFieldAccess distinguishes p.field (fatal on nil p) from p.Method()
// (possibly fine: methods may handle nil receivers).
func isFieldAccess(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isFunc(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
