package unusedwrite_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/unusedwrite"
)

func TestUnusedwrite(t *testing.T) {
	analysistest.Run(t, unusedwrite.Analyzer, "./testdata/src/unusedwritetest")
}
