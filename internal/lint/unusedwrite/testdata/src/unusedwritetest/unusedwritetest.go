// Package unusedwritetest is the unusedwrite analyzer fixture.
package unusedwritetest

type job struct {
	id    int
	state string
	score float64
}

// LostWrite mutates the loop copy and never reads it: fires.
func LostWrite(jobs []job) {
	for _, j := range jobs {
		j.state = "done" // want `unused write: j is a per-iteration copy of the range element; this assignment is lost`
	}
}

// TwoLostWrites fires once per lost assignment.
func TwoLostWrites(jobs []job) {
	for _, j := range jobs {
		j.state = "done" // want `unused write: j is a per-iteration copy`
		j.score = 0      // want `unused write: j is a per-iteration copy`
	}
}

// ArrayCopy ranges an array of structs: same copy semantics, fires.
func ArrayCopy(jobs [4]job) {
	for _, j := range jobs {
		j.id = -1 // want `unused write: j is a per-iteration copy`
	}
}

// WriteThenCollect reads the copy after writing: no finding.
func WriteThenCollect(jobs []job) []job {
	var out []job
	for _, j := range jobs {
		j.state = "done"
		out = append(out, j)
	}
	return out
}

// WriteThenPass hands the copy to a function: no finding.
func WriteThenPass(jobs []job) {
	for _, j := range jobs {
		j.state = "done"
		record(j)
	}
}

func record(job) {}

// IndexWrite mutates through the container: no finding.
func IndexWrite(jobs []job) {
	for i := range jobs {
		jobs[i].state = "done"
	}
}

// PointerElems ranges []*job so writes stick: no finding.
func PointerElems(jobs []*job) {
	for _, j := range jobs {
		j.state = "done"
	}
}

// ReadOnly never writes the copy: no finding.
func ReadOnly(jobs []job) int {
	n := 0
	for _, j := range jobs {
		if j.state == "done" {
			n++
		}
	}
	return n
}
