// Package unusedwrite implements the `unusedwrite` analyzer: a
// dependency-free subset of the stock x/tools check targeting its most
// common real-world catch — writing through the value variable of a
// range over a slice of structs:
//
//	for _, j := range jobs {
//		j.State = Done // lost: j is a copy
//	}
//
// A finding is reported for each field assignment through the range
// value when every use of that variable in the loop body is such an
// assignment — i.e. the copy is written and never read, so every write
// is provably lost. If the body reads the variable anywhere (passes it
// to a function, appends it, takes a field on the RHS), the loop is
// left alone: the writes may feed those reads.
package unusedwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "flags field writes through a range-value struct copy that no later code can observe",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		valIdent, ok := rs.Value.(*ast.Ident)
		if !ok || valIdent.Name == "_" {
			return true
		}
		obj := pass.ObjectOf(valIdent)
		if obj == nil || !isStruct(obj.Type()) {
			return true
		}
		// Only ranges over slices/arrays of struct VALUES copy per
		// iteration; []*T hands out real pointers.
		if !elemIsValue(pass.TypeOf(rs.X)) {
			return true
		}

		writes, escaped := classifyUses(pass, rs.Body, obj)
		if escaped || len(writes) == 0 {
			return true
		}
		for _, w := range writes {
			pass.ReportfFix(w.Pos(),
				"index the container (for i := range ...) or range over pointers instead",
				"unused write: %s is a per-iteration copy of the range element; this assignment is lost when the iteration ends", obj.Name())
		}
		return true
	})
	return nil
}

// classifyUses partitions uses of obj in body into field writes and
// everything else. escaped is true on any non-write use — a read, a
// method call, an address-of — meaning the writes might be observed.
func classifyUses(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (writes []ast.Expr, escaped bool) {
	writeExprs := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(base) == obj {
					writeExprs[sel] = true
					writeExprs[sel.X] = true
					writes = append(writes, sel)
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj {
			return true
		}
		if !partOfWrite(body, id, writeExprs) {
			escaped = true
		}
		return true
	})
	return writes, escaped
}

// partOfWrite reports whether ident occurs as the base of one of the
// recorded write LHS selector expressions.
func partOfWrite(body *ast.BlockStmt, id *ast.Ident, writeExprs map[ast.Expr]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if ok && writeExprs[e] {
			inner := false
			ast.Inspect(e, func(m ast.Node) bool {
				if m == ast.Node(id) {
					inner = true
				}
				return !inner
			})
			if inner {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isStruct(t types.Type) bool {
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

// elemIsValue reports whether ranging over t yields value copies of a
// struct element (slice or array of structs, directly or via pointer
// to array).
func elemIsValue(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isStruct(u.Elem())
	case *types.Array:
		return isStruct(u.Elem())
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return isStruct(arr.Elem())
		}
	}
	return false
}
