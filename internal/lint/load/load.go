// Package load turns package patterns into parsed, type-checked
// packages for the topolint analyzers, using only the standard library:
// `go list -export -deps -json` supplies the file lists and the compiled
// export data of every dependency, the target packages themselves are
// parsed from source, and go/importer's gc importer reads the export
// data through a lookup function. This is the offline, dependency-free
// stand-in for golang.org/x/tools/go/packages.
//
// Only non-test Go files are loaded: topolint checks the shipped
// sources, and `go list ./...` skips testdata trees, so deliberately
// broken analyzer fixtures never leak into a repo-wide run.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, non-test files only
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// TypeErrors collects type-checking problems. A package with type
	// errors still carries whatever partial information the checker
	// recovered, but drivers should refuse to trust analyzer silence
	// on it.
	TypeErrors []error
}

type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (the module root or any package dir) and
// returns every matched package, parsed and type-checked, sorted by
// import path. Dependencies are consumed as export data, never
// re-parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("load: no package patterns")
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("load: no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t listedPackage) (*Package, error) {
	p := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
	for _, gf := range t.GoFiles {
		path := gf
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, gf)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		p.GoFiles = append(p.GoFiles, path)
		p.Syntax = append(p.Syntax, f)
	}
	p.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(t.ImportPath, fset, p.Syntax, p.TypesInfo)
	p.Types = tpkg
	return p, nil
}
