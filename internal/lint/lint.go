// Package lint is the registry for the topolint analyzer suite.
//
// The suite mechanically enforces the load-bearing invariants listed in
// docs/architecture.md — determinism of iteration and seeding, clock
// injection, the package layering DAG, and serving wire-type discipline
// — plus stdlib-grade correctness checks (nilness, unusedwrite,
// sortslice). See docs/linting.md for the analyzer-by-analyzer
// reference and the suppression protocol.
package lint

import (
	"gputopo/internal/lint/analysis"
	"gputopo/internal/lint/detmap"
	"gputopo/internal/lint/layering"
	"gputopo/internal/lint/nilness"
	"gputopo/internal/lint/seedflow"
	"gputopo/internal/lint/sortslice"
	"gputopo/internal/lint/unusedwrite"
	"gputopo/internal/lint/wallclock"
	"gputopo/internal/lint/wiretypes"
)

// All returns every analyzer in the suite, in stable name order. The
// returned slice is fresh on each call; callers may filter it.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.Analyzer,
		layering.Analyzer,
		nilness.Analyzer,
		seedflow.Analyzer,
		sortslice.Analyzer,
		unusedwrite.Analyzer,
		wallclock.Analyzer,
		wiretypes.Analyzer,
	}
}

// ByName returns the subset of All() whose names appear in names, in
// registry order, plus the list of names that matched nothing.
func ByName(names []string) (matched []*analysis.Analyzer, unknown []string) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for _, a := range All() {
		if want[a.Name] {
			matched = append(matched, a)
			delete(want, a.Name)
		}
	}
	for _, n := range names {
		if want[n] {
			unknown = append(unknown, n)
			want[n] = false
		}
	}
	return matched, unknown
}
