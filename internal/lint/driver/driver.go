// Package driver runs a set of analyzers over loaded packages, applies
// //lint:ignore suppressions, and renders the surviving diagnostics.
// It is the engine behind cmd/topolint's standalone and vettool modes.
package driver

import (
	"fmt"
	"go/token"
	"io"
	"sort"

	"gputopo/internal/lint/analysis"
	"gputopo/internal/lint/load"
)

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      string

	// SuppressedBy holds the justification when a //lint:ignore
	// directive silenced this diagnostic.
	SuppressedBy string
}

// Result is the outcome of one Run.
type Result struct {
	// Diags are the live findings, sorted by file, line, column,
	// analyzer. Any entry means the lint run failed.
	Diags []Diagnostic

	// Suppressed are findings silenced by a justified //lint:ignore,
	// kept for reporting (the suppression count is part of the
	// contract: suppressions are visible, never free).
	Suppressed []Diagnostic
}

// Run applies every analyzer to every package. Packages with type
// errors fail the run: analyzer silence on a half-checked package
// proves nothing.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) (Result, error) {
	var res Result
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return res, fmt.Errorf("%s does not type-check: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		dirs, dirDiags := collectDirectives(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					raw = append(raw, Diagnostic{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
						Fix:      d.Fix,
					})
				},
			}
			if err := pass.Analyzer.Run(pass); err != nil {
				return res, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		for _, d := range raw {
			if dir := match(dirs, d); dir != nil {
				dir.used = true
				d.SuppressedBy = dir.reason
				res.Suppressed = append(res.Suppressed, d)
				continue
			}
			res.Diags = append(res.Diags, d)
		}
		res.Diags = append(res.Diags, dirDiags...)
		// A directive that suppresses nothing is stale and must go: it
		// would silently swallow a future, different finding on its
		// line. Only enforced when every analyzer it names actually
		// ran, so partial -analyzers runs cannot produce false alarms.
		for _, dir := range dirs {
			if dir.used {
				continue
			}
			ran := true
			for _, n := range dir.names {
				if !ranAnalyzer(analyzers, n) {
					ran = false
					break
				}
			}
			if ran {
				res.Diags = append(res.Diags, Diagnostic{
					Analyzer: DirectiveAnalyzer,
					Pos:      dir.pos,
					Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing; delete the stale directive", dir.nameList()),
				})
			}
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res, nil
}

func ranAnalyzer(analyzers []*analysis.Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func match(dirs []*directive, d Diagnostic) *directive {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename || dir.applies != d.Pos.Line {
			continue
		}
		for _, n := range dir.names {
			if n == d.Analyzer {
				return dir
			}
		}
	}
	return nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Format renders a result the way `go vet` renders findings:
// file:line:col: [analyzer] message, one per line, with suggested
// fixes indented beneath. With verbose set it also accounts for
// justified suppressions.
func Format(w io.Writer, res Result, verbose bool) {
	for _, d := range res.Diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
		if d.Fix != "" {
			fmt.Fprintf(w, "\tfix: %s\n", d.Fix)
		}
	}
	if verbose {
		for _, d := range res.Suppressed {
			fmt.Fprintf(w, "%s: [%s] suppressed (%s): %s\n", d.Pos, d.Analyzer, d.SuppressedBy, d.Message)
		}
	}
	if n := len(res.Suppressed); n > 0 && !verbose {
		fmt.Fprintf(w, "%d finding(s) suppressed by //lint:ignore (rerun with -v to list them)\n", n)
	}
}
