package driver_test

import (
	"strings"
	"testing"

	"gputopo/internal/lint/analysis"
	"gputopo/internal/lint/detmap"
	"gputopo/internal/lint/driver"
	"gputopo/internal/lint/load"
	"gputopo/internal/lint/nilness"
)

func runFixture(t *testing.T, analyzers ...*analysis.Analyzer) driver.Result {
	t.Helper()
	pkgs, err := load.Load(".", "./testdata/src/suppresstest")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	return res
}

// TestSuppression covers the //lint:ignore contract end to end:
// justified directives (trailing, standalone, multi-name) silence their
// finding, while missing justifications, unknown names and stale
// directives each fail the run.
func TestSuppression(t *testing.T) {
	res := runFixture(t, detmap.Analyzer, nilness.Analyzer)

	if got := len(res.Suppressed); got != 3 {
		t.Fatalf("want 3 suppressed findings (trailing, standalone, multi-name), got %d: %+v", got, res.Suppressed)
	}
	for _, d := range res.Suppressed {
		if d.Analyzer != "detmap" {
			t.Errorf("suppressed finding from %s, want detmap", d.Analyzer)
		}
		if d.SuppressedBy == "" {
			t.Errorf("suppressed finding at %s lost its justification", d.Pos)
		}
	}

	wantLive := []struct {
		analyzer string
		fragment string
	}{
		{"detmap", "float accumulation"}, // Unjustified's finding stays live
		{"detmap", "float accumulation"}, // UnknownName's finding stays live
		{driver.DirectiveAnalyzer, "malformed directive"},
		{driver.DirectiveAnalyzer, `unknown analyzer "nosuchcheck"`},
		{driver.DirectiveAnalyzer, "suppresses nothing"},
	}
	if got := len(res.Diags); got != len(wantLive) {
		var lines []string
		for _, d := range res.Diags {
			lines = append(lines, d.Pos.String()+" ["+d.Analyzer+"] "+d.Message)
		}
		t.Fatalf("want %d live diagnostics, got %d:\n%s", len(wantLive), got, strings.Join(lines, "\n"))
	}
	for _, w := range wantLive {
		found := false
		for _, d := range res.Diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.fragment) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing live diagnostic [%s] containing %q", w.analyzer, w.fragment)
		}
	}
}

// TestStaleSkippedOnPartialRun proves the stale-directive check stays
// quiet when the named analyzer did not run: a detmap-only directive
// cannot be judged stale by a nilness-only invocation.
func TestStaleSkippedOnPartialRun(t *testing.T) {
	res := runFixture(t, nilness.Analyzer)
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("stale directive reported on partial run: %s", d.Message)
		}
	}
}

// TestFormat checks the rendered shape the CI log shows.
func TestFormat(t *testing.T) {
	res := runFixture(t, detmap.Analyzer, nilness.Analyzer)

	var quiet strings.Builder
	driver.Format(&quiet, res, false)
	out := quiet.String()
	if !strings.Contains(out, "[detmap]") || !strings.Contains(out, "[lintignore]") {
		t.Errorf("Format output missing analyzer tags:\n%s", out)
	}
	if !strings.Contains(out, "3 finding(s) suppressed by //lint:ignore") {
		t.Errorf("Format output missing suppression accounting:\n%s", out)
	}

	var verbose strings.Builder
	driver.Format(&verbose, res, true)
	if !strings.Contains(verbose.String(), "suppressed (order-insensitive debug sum, callers never compare bytes)") {
		t.Errorf("verbose Format output missing justification:\n%s", verbose.String())
	}
}
