// Package suppresstest exercises the //lint:ignore protocol: justified
// trailing and standalone suppressions, a missing justification, an
// unknown analyzer name, and a stale directive. The driver test asserts
// the exact split between live and suppressed diagnostics.
package suppresstest

// Trailing justified suppression: the detmap finding on this line is
// silenced and accounted for under Suppressed.
func Trailing(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:ignore detmap order-insensitive debug sum, callers never compare bytes
	}
	return sum
}

// Standalone justified suppression: directive on its own line covers
// the line below.
func Standalone(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:ignore detmap order-insensitive debug sum, standalone form
		sum += v
	}
	return sum
}

// MultiName suppression: one directive naming several analyzers is
// used as soon as any of them matches.
func MultiName(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:ignore detmap,nilness shared justification for both checks
	}
	return sum
}

// Unjustified: no reason given, so the directive is malformed AND the
// underlying finding stays live.
func Unjustified(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:ignore detmap
	}
	return sum
}

// UnknownName: directive names an analyzer that does not exist; the
// finding stays live and the directive is reported.
func UnknownName(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:ignore nosuchcheck this name is wrong on purpose
	}
	return sum
}

// Stale directive: nothing on this line ever fires.
func Stale() int {
	x := 1 //lint:ignore detmap nothing here to suppress
	return x
}
