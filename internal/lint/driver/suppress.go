package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"gputopo/internal/lint/load"
)

// DirectiveAnalyzer is the pseudo-analyzer name under which the driver
// reports malformed, unknown or stale //lint:ignore directives. Those
// findings cannot themselves be suppressed.
const DirectiveAnalyzer = "lintignore"

// directivePrefix is the comment form topolint honors:
//
//	//lint:ignore analyzer[,analyzer...] justification
//
// The directive is scoped to the line it trails, or — when it stands
// alone — to the line immediately below it. The justification is
// mandatory: an unexplained suppression is itself a finding.
const directivePrefix = "//lint:ignore"

type directive struct {
	names   []string
	reason  string
	file    string
	line    int // line the directive text is on
	applies int // line whose diagnostics it suppresses
	pos     token.Position
	used    bool
}

func (d *directive) nameList() string { return strings.Join(d.names, ",") }

// collectDirectives scans one package's comments for //lint:ignore
// directives. Malformed ones (missing justification, unknown analyzer
// name) are returned as diagnostics so they fail the run instead of
// silently suppressing nothing.
func collectDirectives(pkg *load.Package, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		codeLines := lineSet(pkg, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Analyzer: DirectiveAnalyzer,
						Pos:      pos,
						Message:  "malformed directive: want //lint:ignore analyzer[,analyzer] justification",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, n := range names {
					if n == "" || !known[n] {
						diags = append(diags, Diagnostic{
							Analyzer: DirectiveAnalyzer,
							Pos:      pos,
							Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", n),
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				d := &directive{
					names:  names,
					reason: strings.Join(fields[1:], " "),
					file:   pos.Filename,
					line:   pos.Line,
					pos:    pos,
				}
				// Trailing comment suppresses its own line; a directive
				// alone on a line suppresses the next one.
				if codeLines[d.line] {
					d.applies = d.line
				} else {
					d.applies = d.line + 1
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, diags
}

// lineSet records which lines of file hold code tokens (identifiers,
// literals, keywords with positions), so a directive can tell whether
// it trails code or stands alone.
func lineSet(pkg *load.Package, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		lines[pkg.Fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}
