package sortslice_test

import (
	"testing"

	"gputopo/internal/lint/analysistest"
	"gputopo/internal/lint/sortslice"
)

func TestSortslice(t *testing.T) {
	analysistest.Run(t, sortslice.Analyzer, "./testdata/src/sortslicetest")
}
