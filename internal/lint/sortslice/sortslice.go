// Package sortslice implements the `sortslice` analyzer, a
// dependency-free port of the stock x/tools check of the same name:
// the first argument of sort.Slice / sort.SliceStable /
// sort.SliceIsSorted must have slice type. Passing anything else (an
// array, a pointer to a slice, a sort.Interface value) compiles — the
// parameter is `any` — and panics at run time.
package sortslice

import (
	"go/ast"
	"go/types"

	"gputopo/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sortslice",
	Doc:  "sort.Slice/SliceStable/SliceIsSorted must receive a slice; anything else panics at run time",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			return true
		}
		switch fn.Name() {
		case "Slice", "SliceStable", "SliceIsSorted":
		default:
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		t := pass.TypeOf(call.Args[0])
		if t == nil {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			return true
		case *types.Interface:
			// A value of static type any could be a slice; the stock
			// analyzer stays silent here too.
			return true
		}
		pass.ReportfFix(call.Pos(),
			"pass the slice itself, or use sort.Sort with a sort.Interface implementation",
			"sort.%s's argument must be a slice; %s will panic at run time", fn.Name(), types.TypeString(t, types.RelativeTo(pass.Pkg)))
		return true
	})
	return nil
}
