// Package sortslicetest is the sortslice analyzer fixture.
package sortslicetest

import "sort"

type byLen []string

func (b byLen) Len() int           { return len(b) }
func (b byLen) Less(i, j int) bool { return len(b[i]) < len(b[j]) }
func (b byLen) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

// SortArray passes an array, not a slice: fires.
func SortArray() {
	var a [8]int
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] }) // want `sort.Slice's argument must be a slice; \[8\]int will panic`
}

// SortPointer passes a pointer to a slice: fires.
func SortPointer(xs *[]int) {
	sort.SliceStable(xs, func(i, j int) bool { return (*xs)[i] < (*xs)[j] }) // want `sort.SliceStable's argument must be a slice`
}

type table struct{ rows []string }

func (t table) Len() int           { return len(t.rows) }
func (t table) Less(i, j int) bool { return t.rows[i] < t.rows[j] }
func (t table) Swap(i, j int)      { t.rows[i], t.rows[j] = t.rows[j], t.rows[i] }

// SortStruct passes a sort.Interface struct where a slice is needed:
// fires (use sort.Sort for these).
func SortStruct(t table) {
	sort.Slice(t, func(i, j int) bool { return t.Less(i, j) }) // want `sort.Slice's argument must be a slice; table will panic`
}

// SortNamedSlice is fine: byLen's underlying type is a slice.
func SortNamedSlice(b byLen) {
	sort.Slice(b, func(i, j int) bool { return b.Less(i, j) })
}

// SortSlice is correct: no finding.
func SortSlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// SliceIsSortedOK is correct: no finding.
func SliceIsSortedOK(xs []string) bool {
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// SortSortOK uses the sort.Interface path properly: no finding.
func SortSortOK(b byLen) {
	sort.Sort(b)
}
