// Package analysis is a minimal, dependency-free re-statement of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo
// cannot vendor x/tools (the module is deliberately dependency-free), so
// topolint's analyzers are written against this clean-room subset instead;
// the shapes match the upstream API closely enough that porting an
// analyzer either way is mechanical.
//
// Only the pieces the topolint suite needs exist: no Facts, no
// Requires/ResultOf plumbing, no SSA. Analyzers that want deeper
// semantic information work directly from go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// enforces and why; the first line is the summary.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report*; a non-nil error aborts the whole topolint run (use
	// it for internal failures, never for findings).
	Run func(*Pass) error
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns suppression,
	// ordering and formatting.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a position in the package.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Fix, when non-empty, is a human-readable suggested fix printed
	// beneath the diagnostic ("route time through the Clock", …).
	Fix string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// ReportfFix reports a formatted diagnostic carrying a suggested fix.
func (p *Pass) ReportfFix(pos token.Pos, fix string, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...), Fix: fix})
}

// Inspect walks every file of the pass in depth-first order, calling f
// exactly as ast.Inspect does.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// WithStack walks every file keeping the ancestor stack: f is invoked
// with the node and the path of its ancestors, outermost first (the
// node itself is not on the stack). Returning false prunes the subtree.
func (p *Pass) WithStack(f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := f(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (use or definition).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// CalleeFunc resolves a call expression to the *types.Func it invokes,
// looking through parentheses. It returns nil for calls of function
// values, type conversions and built-ins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods never match).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// RootIdent returns the identifier at the base of a chain of selector,
// index and paren expressions (a.b[i].c → a), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}
