package sched

import (
	"encoding/json"
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/topology"
)

// TestAdapterConstructsWorkingScheduler pins the compatibility surface:
// the historical sched.New + Policy constants drive the schedcore
// implementation end to end.
func TestAdapterConstructsWorkingScheduler(t *testing.T) {
	topo := topology.Power8Minsky()
	m, err := core.NewMapper(profile.Generate(topo, topo.NumGPUs()), core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range AllPolicies() {
		s := New(pol, cluster.NewState(topo), m)
		if s.Policy() != pol {
			t.Fatalf("policy = %v, want %v", s.Policy(), pol)
		}
		if err := s.Submit(job.New("j", perfmodel.AlexNet, 1, 2, 0.0, 0)); err != nil {
			t.Fatal(err)
		}
		ds := s.Schedule()
		if len(ds) != 1 || ds[0].Postponed {
			t.Fatalf("[%v] decisions = %+v", pol, ds)
		}
		if err := s.Release("j"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPolicyJSONRoundTrip keeps the sweep-artifact encoding stable
// through the alias.
func TestPolicyJSONRoundTrip(t *testing.T) {
	for _, p := range AllPolicies() {
		js, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Policy
		if err := json.Unmarshal(js, &back); err != nil || back != p {
			t.Fatalf("round trip %v via %s: %v, %v", p, js, back, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
