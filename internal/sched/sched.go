// Package sched implements the scheduler loop of §4.4 (Algorithm 1) and
// the four placement policies evaluated in §5: the two greedy baselines
// FCFS (first come first served over a FIFO queue) and Best-Fit (bin
// packing onto the most-used domains), and the paper's TOPO-AWARE and
// TOPO-AWARE-P policies driven by the DRB mapper. TOPO-AWARE places a job
// as soon as resources are available; TOPO-AWARE-P postpones jobs whose
// best placement scores below their SLO-derived minimum utility and allows
// out-of-order execution of the jobs behind them.
package sched

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
)

// Policy selects the placement strategy.
type Policy int

// The four policies of the evaluation (§5.2).
const (
	FCFS Policy = iota
	BestFit
	TopoAware
	TopoAwareP
)

// String returns the policy name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case BestFit:
		return "BF"
	case TopoAware:
		return "TOPO-AWARE"
	case TopoAwareP:
		return "TOPO-AWARE-P"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AllPolicies lists every policy, in the paper's presentation order.
func AllPolicies() []Policy { return []Policy{BestFit, FCFS, TopoAware, TopoAwareP} }

// MarshalJSON encodes the policy as its figure name, keeping sweep
// artifacts readable and stable across any renumbering of the constants.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes a policy from its figure name.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParsePolicy(name)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParsePolicy maps a policy name to its constant.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "FCFS", "fcfs":
		return FCFS, nil
	case "BF", "bf", "bestfit", "best-fit":
		return BestFit, nil
	case "TOPO-AWARE", "topo-aware", "topo":
		return TopoAware, nil
	case "TOPO-AWARE-P", "topo-aware-p", "topo-p":
		return TopoAwareP, nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q", name)
}

// Decision records the outcome of one placement attempt.
type Decision struct {
	Job       *job.Job
	Placement *core.Placement // nil when postponed
	// Postponed is true when the job stayed in the queue this round.
	Postponed bool
	// Reason explains a postponement ("no-capacity", "low-utility").
	Reason string
	// SLOViolated is true when the job was placed with a utility below
	// its declared minimum (greedy policies and TOPO-AWARE do this;
	// TOPO-AWARE-P by construction does not, except on an idle cluster
	// where no better placement can ever exist).
	SLOViolated bool
}

// Stats accumulates scheduler bookkeeping, including the decision-time
// measurements reported in §5.5.3.
type Stats struct {
	Decisions     int
	Placements    int
	Postponements int
	SLOViolations int
	// GateSkips counts queued jobs whose placement evaluation was skipped
	// because the cluster epoch had not moved since their last failed
	// attempt (version-gated rescheduling). Each skip replays the memoized
	// postponement decision instead of re-running the placement policy.
	GateSkips      int
	DecisionTime   time.Duration // total time spent deciding
	MaxDecision    time.Duration
	queuedAtSubmit int
}

// MeanDecisionTime returns the average time per placement decision.
func (s Stats) MeanDecisionTime() time.Duration {
	if s.Decisions == 0 {
		return 0
	}
	return s.DecisionTime / time.Duration(s.Decisions)
}

// failedAttempt memoizes the outcome of a failed placement attempt: the
// cluster epoch it was evaluated at and the postponement reason it
// produced. Until an Allocate or Release moves the epoch, re-evaluating
// the job is guaranteed to reproduce exactly this decision, so the
// scheduler replays it instead of re-running the placement policy.
type failedAttempt struct {
	epoch  uint64
	reason string
}

// Scheduler owns the waiting queue and the cluster allocation state.
type Scheduler struct {
	policy Policy
	state  *cluster.State
	mapper *core.Mapper
	// queue is kept sorted by arrival time (oldest first) to avoid
	// starvation (§4.4).
	queue []*job.Job
	stats Stats
	// lastFailed holds the version-gate memo per queued job ID. Entries
	// are dropped when the job places (it leaves the queue). gateOff
	// disables the gate — only the on/off equivalence tests use it.
	lastFailed map[string]failedAttempt
	gateOff    bool
	// decBuf and decPtrs are the reusable decision buffers: at scenario-2
	// queue depths every event produces O(queue) postponement decisions,
	// and allocating them fresh per Schedule call dominated the
	// scheduler's allocation profile. The returned slice is valid until
	// the next Schedule call.
	decBuf  []Decision
	decPtrs []*Decision
	// freeScratch and hostScratch are reused by the placement policies
	// for candidate GPU and host lists; their contents are dead once a
	// placement attempt returns.
	freeScratch []int
	hostScratch []int
}

// New returns a scheduler with the given policy over the state. The mapper
// is required for the topology-aware policies and used by the greedy ones
// only to score their decisions for the metrics.
func New(policy Policy, state *cluster.State, mapper *core.Mapper) *Scheduler {
	return &Scheduler{policy: policy, state: state, mapper: mapper, lastFailed: map[string]failedAttempt{}}
}

// SetEpochGate toggles the version-gated rescheduling (on by default).
// Gating never changes decisions — a placement attempt is a deterministic
// function of the cluster state, and the gate only skips attempts whose
// state provably has not changed — so the switch exists for the
// equivalence tests that prove exactly that, and as an escape hatch.
func (s *Scheduler) SetEpochGate(enabled bool) { s.gateOff = !enabled }

// Policy returns the scheduler's placement policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// State returns the cluster allocation state the scheduler mutates.
func (s *Scheduler) State() *cluster.State { return s.state }

// Stats returns a copy of the accumulated statistics.
func (s *Scheduler) Stats() Stats { return s.stats }

// Submit enqueues a job, keeping the queue sorted by arrival time. Jobs
// arriving in time order (the common case, driven by the event loop)
// append in O(1).
func (s *Scheduler) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	needSort := len(s.queue) > 0 && j.Arrival < s.queue[len(s.queue)-1].Arrival
	s.queue = append(s.queue, j)
	if needSort {
		sort.SliceStable(s.queue, func(i, k int) bool {
			return s.queue[i].Arrival < s.queue[k].Arrival
		})
	}
	return nil
}

// QueueLen returns the number of waiting jobs.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Queued returns the waiting jobs in queue order.
func (s *Scheduler) Queued() []*job.Job { return append([]*job.Job(nil), s.queue...) }

// Release frees the allocation of a finished job.
func (s *Scheduler) Release(jobID string) error { return s.state.Release(jobID) }

// Schedule runs one iteration of Algorithm 1: it walks the waiting queue
// in arrival order, attempting to place each job, and returns the
// decisions made. Jobs that cannot be placed stay queued. The in-order
// policies (FCFS, BF, TOPO-AWARE) stop at the first job blocked on
// capacity, preserving FIFO fairness; TOPO-AWARE-P skips postponed jobs
// and continues (out-of-order execution, §4.4).
//
// Version gate: a failed attempt is memoized with the cluster epoch it
// saw. While the epoch stands still the attempt would reproduce the exact
// same postponement, so the gate replays the memoized decision instead of
// re-running the placement policy — collapsing the O(queue × events)
// doomed re-evaluations of deep scenario-2 queues into map lookups.
// Decisions (and therefore every downstream metric) are bit-identical
// with the gate on or off; sched_test.go and the sweep equivalence tests
// prove it.
//
// The returned slice and the decisions it points to are reused by the
// next Schedule call — consume them before scheduling again (the
// simulation engines do); the queue itself is compacted in place.
func (s *Scheduler) Schedule() []*Decision {
	s.decBuf = s.decBuf[:0]
	// Surviving jobs are compacted into the queue's own backing array:
	// keep < idx always holds, so the write never clobbers an unread job.
	keep := 0
	blocked := false
	for idx, j := range s.queue {
		if blocked {
			keep += copy(s.queue[keep:], s.queue[idx:])
			break
		}
		// availableResources(P) gate: skip the placement evaluation
		// entirely when no machine (or, for multi-node jobs, the whole
		// cluster) can hold the request. O(1) thanks to the cluster
		// state's incremental free counters.
		enough := s.state.MaxFreeGPUs() >= j.GPUs
		if !j.SingleNode {
			enough = s.state.FreeGPUCount() >= j.GPUs
		}
		if !enough {
			s.stats.Postponements++
			s.decBuf = append(s.decBuf, Decision{Job: j, Postponed: true, Reason: "no-capacity"})
			s.queue[keep] = j
			keep++
			if s.policy != TopoAwareP {
				blocked = true
			}
			continue
		}

		if memo, ok := s.lastFailed[j.ID]; !s.gateOff && ok && memo.epoch == s.state.Epoch() {
			// Version gate hit: nothing changed since this job last failed
			// to place, so replay the memoized postponement verbatim.
			s.stats.GateSkips++
			s.stats.Postponements++
			s.decBuf = append(s.decBuf, Decision{Job: j, Postponed: true, Reason: memo.reason})
			s.queue[keep] = j
			keep++
			if s.policy != TopoAwareP {
				blocked = true
			}
			continue
		}

		start := time.Now()
		d := s.tryPlace(j)
		elapsed := time.Since(start)
		s.stats.Decisions++
		s.stats.DecisionTime += elapsed
		if elapsed > s.stats.MaxDecision {
			s.stats.MaxDecision = elapsed
		}
		s.decBuf = append(s.decBuf, d)
		if d.Postponed {
			s.lastFailed[j.ID] = failedAttempt{epoch: s.state.Epoch(), reason: d.Reason}
			s.stats.Postponements++
			s.queue[keep] = j
			keep++
			if s.policy != TopoAwareP {
				blocked = true
			}
			continue
		}
		delete(s.lastFailed, j.ID)
		s.stats.Placements++
		if d.SLOViolated {
			s.stats.SLOViolations++
		}
	}
	// Clear the dropped tail so placed jobs do not linger in the backing
	// array and keep their allocations reachable.
	for i := keep; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:keep]
	// Build the pointer view only after the value buffer stopped growing:
	// append may relocate decBuf, so taking addresses mid-walk would hand
	// out dangling pointers.
	s.decPtrs = s.decPtrs[:0]
	for i := range s.decBuf {
		s.decPtrs = append(s.decPtrs, &s.decBuf[i])
	}
	return s.decPtrs
}

// tryPlace attempts to place one job according to the policy, committing
// the allocation on success. It returns by value so Schedule can append
// into its reusable decision buffer.
func (s *Scheduler) tryPlace(j *job.Job) Decision {
	var placement *core.Placement
	var err error
	switch s.policy {
	case FCFS:
		placement, err = s.placeFCFS(j)
	case BestFit:
		placement, err = s.placeBestFit(j)
	case TopoAware, TopoAwareP:
		placement, err = s.placeTopoAware(j)
	}
	if err != nil {
		return Decision{Job: j, Postponed: true, Reason: "no-capacity"}
	}

	if s.policy == TopoAwareP && placement.Utility < j.MinUtility && !s.clusterIdle() {
		// Postpone: a better placement may open when jobs finish. On an
		// idle cluster no future placement can beat this one, so place
		// best-effort to avoid deadlock.
		return Decision{Job: j, Postponed: true, Reason: "low-utility"}
	}

	if err := s.state.Allocate(j.ID, placement.GPUs, placement.BusDemand, j.Traits()); err != nil {
		return Decision{Job: j, Postponed: true, Reason: "no-capacity"}
	}
	return Decision{
		Job:         j,
		Placement:   placement,
		SLOViolated: placement.Utility < j.MinUtility,
	}
}

// clusterIdle reports whether no job is currently running.
func (s *Scheduler) clusterIdle() bool { return len(s.state.Jobs()) == 0 }

// filterHosts implements filterHostsByConstraints (Algorithm 1): machines
// with enough free GPUs and enough uncommitted shared-bus bandwidth for
// the job. Returned machine indices are ascending.
func (s *Scheduler) filterHosts(j *job.Job) []int {
	topo := s.state.Topology()
	demand := estimateDemand(j, s.state)
	hosts := s.hostScratch[:0]
	for m := 0; m < topo.NumMachines(); m++ {
		if s.state.FreeCountOnMachine(m) < minGPUsPerHost(j) {
			continue
		}
		if s.state.FreeBusBandwidth(m) < demand {
			continue
		}
		hosts = append(hosts, m)
	}
	s.hostScratch = hosts
	return hosts
}

// minGPUsPerHost is the minimum free GPUs a host must offer to be a
// candidate: all of them for single-node jobs, one otherwise.
func minGPUsPerHost(j *job.Job) int {
	if j.SingleNode {
		return j.GPUs
	}
	return 1
}

// estimateDemand conservatively estimates the job's shared-bus demand
// using its best-case allocation on the empty topology.
func estimateDemand(j *job.Job, st *cluster.State) float64 {
	topo := st.Topology()
	g := j.GPUs
	if n := topo.NumGPUs(); g > n {
		g = n
	}
	return perfmodel.BusDemand(j.Model, j.BatchSize, topo, topo.BestAllocation(g))
}
