// Package sched is the thin compatibility adapter over the
// driver-agnostic scheduling core (internal/schedcore): the §4.4
// scheduler loop and the four §5 placement policies now live there,
// behind a Core API with a pluggable Clock and QueueDiscipline, so that
// both the discrete-event simulator and the real-time serving front-end
// (cmd/toposerve) drive the exact same code. This package re-exports the
// core's types under their historical names for the simulation engines,
// experiments and CLIs that grew up against them.
package sched

import (
	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/schedcore"
)

// Policy selects the placement strategy.
type Policy = schedcore.Policy

// The four policies of the evaluation (§5.2).
const (
	FCFS       = schedcore.FCFS
	BestFit    = schedcore.BestFit
	TopoAware  = schedcore.TopoAware
	TopoAwareP = schedcore.TopoAwareP
)

// Decision records the outcome of one placement attempt.
type Decision = schedcore.Decision

// Stats accumulates scheduler bookkeeping.
type Stats = schedcore.Stats

// Scheduler is the historical name of the scheduling core.
type Scheduler = schedcore.Core

// AllPolicies lists every policy, in the paper's presentation order.
func AllPolicies() []Policy { return schedcore.AllPolicies() }

// ParsePolicy maps a policy name to its constant.
func ParsePolicy(name string) (Policy, error) { return schedcore.ParsePolicy(name) }

// New returns a scheduler with the given policy over the state, a manual
// clock at 0 and the default arrival-FIFO queue discipline — the legacy
// construction every simulation engine uses. Drivers that need a
// different clock or discipline call schedcore.New directly.
func New(policy Policy, state *cluster.State, mapper *core.Mapper) *Scheduler {
	return schedcore.New(policy, state, mapper)
}
