// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 and §5). Each function runs the corresponding experiment
// on the simulated substrate and returns both structured results (asserted
// by tests and benchmarks) and an ASCII rendering (printed by
// cmd/topobench). EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"

	"gputopo/internal/caffesim"
	"gputopo/internal/job"
	"gputopo/internal/jobgraph"
	"gputopo/internal/metrics"
	"gputopo/internal/perfmodel"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/sweep"
	"gputopo/internal/topology"
)

// BatchSweep is the per-GPU batch sizes of Figures 3–5.
var BatchSweep = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig3Row is one bar group of Figure 3: the compute/communication split of
// a model × batch × strategy combination.
type Fig3Row struct {
	Model       perfmodel.NN
	Batch       int
	Strategy    string // "pack" or "spread"
	ComputeFrac float64
	CommFrac    float64
}

// Fig3Breakdown reproduces Figure 3: percentage of execution time spent in
// GPU computation vs. GPU communication for AlexNet, CaffeRef and
// GoogLeNet under pack (P2P) and spread (no P2P) placements.
func Fig3Breakdown() []Fig3Row {
	topo := topology.Power8Minsky()
	pack := []int{0, 1}
	spread := []int{0, 2}
	var rows []Fig3Row
	for m := perfmodel.NN(0); m < perfmodel.NumNN; m++ {
		for _, b := range []int{1, 4, 32, 128} {
			cp, mp := perfmodel.Breakdown(m, b, topo, pack)
			rows = append(rows, Fig3Row{Model: m, Batch: b, Strategy: "pack", ComputeFrac: cp, CommFrac: mp})
			cs, ms := perfmodel.Breakdown(m, b, topo, spread)
			rows = append(rows, Fig3Row{Model: m, Batch: b, Strategy: "spread", ComputeFrac: cs, CommFrac: ms})
		}
	}
	return rows
}

// RenderFig3 formats Figure 3 as a table.
func RenderFig3(rows []Fig3Row) string {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			r.Model.String(), fmt.Sprintf("%d", r.Batch), r.Strategy,
			fmt.Sprintf("%5.1f%%", r.ComputeFrac*100),
			fmt.Sprintf("%5.1f%%", r.CommFrac*100),
		})
	}
	return "Figure 3: GPU computation vs communication share of execution time\n" +
		metrics.Table([]string{"model", "batch", "strategy", "compute", "comm"}, tr)
}

// Fig4Row is one point of Figure 4: pack-vs-spread speedup.
type Fig4Row struct {
	Model   perfmodel.NN
	Batch   int
	Speedup float64
}

// Fig4PackSpread reproduces Figure 4: the speedup of pack (same-socket,
// P2P) over spread (cross-socket) placements as a function of batch size.
func Fig4PackSpread() []Fig4Row {
	topo := topology.Power8Minsky()
	var rows []Fig4Row
	for m := perfmodel.NN(0); m < perfmodel.NumNN; m++ {
		for _, b := range BatchSweep {
			rows = append(rows, Fig4Row{
				Model:   m,
				Batch:   b,
				Speedup: perfmodel.PackSpreadSpeedup(m, b, topo, 1),
			})
		}
	}
	return rows
}

// RenderFig4 formats Figure 4 as a table plus chart.
func RenderFig4(rows []Fig4Row) string {
	var tr [][]string
	series := map[perfmodel.NN][]metrics.Point{}
	for _, r := range rows {
		tr = append(tr, []string{r.Model.String(), fmt.Sprintf("%d", r.Batch), fmt.Sprintf("%.3f", r.Speedup)})
		series[r.Model] = append(series[r.Model], metrics.Point{X: float64(r.Batch), Y: r.Speedup})
	}
	var ss []metrics.Series
	for m := perfmodel.NN(0); m < perfmodel.NumNN; m++ {
		ss = append(ss, metrics.Series{Name: m.String(), Points: series[m]})
	}
	return "Figure 4: Pack (P2P) vs Spread (No-P2P) speedup; >1 means pack wins\n" +
		metrics.Table([]string{"model", "batch", "speedup"}, tr) + "\n" +
		metrics.LineChart("speedup vs batch size", ss, 64, 12)
}

// Fig5Series is the NVLink bandwidth usage over time for one batch size.
type Fig5Series struct {
	Batch  int
	Points []caffesim.BandwidthPoint
	Mean   float64
	Peak   float64
}

// Fig5Bandwidth reproduces Figure 5: the interconnect bandwidth usage over
// time of a solo 2-GPU AlexNet job at batch sizes 1, 4, 64 and 128,
// sampled in 1-second windows like the prototype's nvidia-smi polling.
// The four batch sizes run concurrently on the sweep engine's pool; each
// writes into its own slot, so the series order is fixed.
func Fig5Bandwidth(seed uint64) ([]Fig5Series, error) {
	batches := []int{1, 4, 64, 128}
	out := make([]Fig5Series, len(batches))
	err := sweep.ForEach(len(batches), 0, func(i int) error {
		b := batches[i]
		topo := topology.Power8Minsky()
		j := job.New("fig5", perfmodel.AlexNet, b, 2, 0.5, 0)
		// Run long enough to fill ~250 s of samples like the figure.
		iter := perfmodel.IterationTime(perfmodel.AlexNet, b, topo, []int{0, 1}, 1)
		j.Iterations = int(250 / iter)
		if j.Iterations < 10 {
			j.Iterations = 10
		}
		res, err := caffesim.Run(caffesim.Config{
			Topology: topo,
			Policy:   sched.TopoAware,
			Seed:     seed,
		}, []*job.Job{j})
		if err != nil {
			return fmt.Errorf("fig5 batch %d: %w", b, err)
		}
		pts := res.Bandwidth["fig5"]
		var sum, peak float64
		for _, p := range pts {
			sum += p.GBs
			if p.GBs > peak {
				peak = p.GBs
			}
		}
		mean := 0.0
		if len(pts) > 0 {
			mean = sum / float64(len(pts))
		}
		out[i] = Fig5Series{Batch: b, Points: pts, Mean: mean, Peak: peak}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFig5 formats the bandwidth time series.
func RenderFig5(series []Fig5Series) string {
	var ss []metrics.Series
	var tr [][]string
	for _, s := range series {
		pts := make([]metrics.Point, 0, len(s.Points))
		for _, p := range s.Points {
			if p.Time > 250 {
				break
			}
			pts = append(pts, metrics.Point{X: p.Time, Y: p.GBs})
		}
		ss = append(ss, metrics.Series{Name: fmt.Sprintf("batch %d", s.Batch), Points: pts})
		tr = append(tr, []string{
			fmt.Sprintf("%d", s.Batch),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Peak),
		})
	}
	return "Figure 5: NVLink bandwidth usage over time, AlexNet (1s windows)\n" +
		metrics.Table([]string{"batch", "mean GB/s", "peak GB/s"}, tr) + "\n" +
		metrics.LineChart("GB/s vs time (s)", ss, 64, 12)
}

// Fig6Cell is one cell of Figure 6's co-location slowdown matrix.
type Fig6Cell struct {
	Victim, Causer jobgraph.BatchClass
	Slowdown       float64
}

// Fig6Interference reproduces Figure 6: the slowdown a 2-GPU AlexNet job
// suffers when co-located with another 2-GPU AlexNet job on the same
// machine, for every pair of batch classes.
func Fig6Interference() []Fig6Cell {
	var cells []Fig6Cell
	for v := jobgraph.BatchTiny; v <= jobgraph.BatchBig; v++ {
		for c := jobgraph.BatchTiny; c <= jobgraph.BatchBig; c++ {
			victim := perfmodel.Traits{Model: perfmodel.AlexNet, Class: v, GPUs: 2}
			causer := perfmodel.Traits{Model: perfmodel.AlexNet, Class: c, GPUs: 2}
			cells = append(cells, Fig6Cell{
				Victim:   v,
				Causer:   c,
				Slowdown: perfmodel.CoLocationSlowdown(victim, causer, perfmodel.SameMachine),
			})
		}
	}
	return cells
}

// RenderFig6 formats the interference matrix.
func RenderFig6(cells []Fig6Cell) string {
	headers := []string{"victim \\ causer", "tiny", "small", "medium", "big"}
	rows := make([][]string, 4)
	for v := 0; v < 4; v++ {
		rows[v] = make([]string, 5)
		rows[v][0] = jobgraph.BatchClass(v).String()
	}
	for _, c := range cells {
		rows[c.Victim][int(c.Causer)+1] = fmt.Sprintf("%4.1f%%", c.Slowdown*100)
	}
	return "Figure 6: co-location slowdown (two 2-GPU AlexNet jobs, one machine)\n" +
		metrics.Table(headers, rows)
}

// PCIeRow is one point of the §3.2 NVLink-vs-PCIe comparison.
type PCIeRow struct {
	Batch         int
	NVLinkSpeedup float64
	PCIeSpeedup   float64
}

// PCIeComparison reproduces the §3.2 text experiment: pack-vs-spread
// speedups on the NVLink/P100 machine against the PCIe-Gen3/K80 machine.
func PCIeComparison() []PCIeRow {
	nv := topology.Power8Minsky()
	pcie := topology.PCIeBox()
	var rows []PCIeRow
	for _, b := range BatchSweep {
		rows = append(rows, PCIeRow{
			Batch:         b,
			NVLinkSpeedup: perfmodel.PackSpreadSpeedup(perfmodel.AlexNet, b, nv, 1),
			PCIeSpeedup:   perfmodel.PackSpreadSpeedup(perfmodel.AlexNet, b, pcie, perfmodel.K80ComputeScale),
		})
	}
	return rows
}

// RenderPCIe formats the NVLink-vs-PCIe comparison.
func RenderPCIe(rows []PCIeRow) string {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.3f", r.NVLinkSpeedup),
			fmt.Sprintf("%.3f", r.PCIeSpeedup),
		})
	}
	return "§3.2: AlexNet pack-vs-spread speedup, NVLink/P100 vs PCIe/K80\n" +
		metrics.Table([]string{"batch", "NVLink", "PCIe"}, tr)
}

// MultiPolicy holds the four-policy comparison of one scenario.
type MultiPolicy struct {
	Results []*simulator.Result // in sched.AllPolicies() order
}

// ByPolicy returns the result for the given policy.
func (m *MultiPolicy) ByPolicy(p sched.Policy) *simulator.Result {
	for _, r := range m.Results {
		if r.Policy == p {
			return r
		}
	}
	return nil
}

// multiPolicyFrom collects a single-cell sweep's results into the
// paper's presentation order.
func multiPolicyFrom(rep *sweep.Report) *MultiPolicy {
	out := &MultiPolicy{}
	for _, pol := range sched.AllPolicies() {
		if pr := rep.ByPolicy(pol); pr != nil {
			out.Results = append(out.Results, pr.Sim)
		}
	}
	return out
}

// Fig8Prototype reproduces the §5.2 prototype experiment: the Table 1 six
// job workload on one Minsky machine under all four policies, executed at
// iteration granularity by the prototype engine — a one-cell sweep over
// the policy axis.
func Fig8Prototype(seed uint64) (*MultiPolicy, map[sched.Policy]*caffesim.Result, error) {
	rep, err := sweep.Run(sweep.Grid{
		Name:   "fig8",
		Source: sweep.SourceTable1,
		Engine: sweep.EngineProto,
		Seeds:  []uint64{seed},
	}, sweep.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("fig8: %w", err)
	}
	protos := map[sched.Policy]*caffesim.Result{}
	for _, pol := range sched.AllPolicies() {
		if pr := rep.ByPolicy(pol); pr != nil {
			protos[pol] = pr.Proto
		}
	}
	return multiPolicyFrom(rep), protos, nil
}

// Fig9Validation reproduces §5.4: the same Table 1 scenario on the
// trace-driven simulator, for comparison against the prototype results
// (the two engines should agree within iteration-boundary noise).
func Fig9Validation(seed uint64) (*MultiPolicy, error) {
	rep, err := sweep.Run(sweep.Grid{
		Name:           "fig9",
		Source:         sweep.SourceTable1,
		Seeds:          []uint64{seed},
		SampleInterval: 4,
	}, sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	return multiPolicyFrom(rep), nil
}

// Scenario runs the large-scale simulation of §5.5 with the given scale
// (Scenario 1: 100 jobs / 5 machines; Scenario 2: 10k jobs / 1k machines)
// as a one-cell sweep over the policy axis, so the four policies run
// concurrently. The Poisson arrival rate scales with the cluster size so
// the per-machine pressure matches scenario 1's λ = 10 jobs/minute on 5
// machines (the paper specifies λ = 10 for the workload generator but not
// how scenario 2 stays "heavily loaded"; constant per-machine load is the
// substitution that preserves the queueing behaviour its figures show).
func Scenario(jobs, machines int, seed uint64) (*MultiPolicy, error) {
	rep, err := sweep.Run(sweep.Grid{
		Name:           "scenario",
		Machines:       []int{machines},
		Jobs:           []int{jobs},
		Seeds:          []uint64{seed},
		RatePerMachine: 2, // λ = 10 jobs/minute per 5 machines
	}, sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return multiPolicyFrom(rep), nil
}

// RenderScenario formats a multi-policy comparison with both slowdown
// charts (the two panels of Figures 10 and 11).
func RenderScenario(title string, mp *MultiPolicy) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(metrics.CompareRuns(mp.Results))
	sb.WriteString("\n")
	sb.WriteString(metrics.SlowdownChart("(a) JOB'S QOS — slowdown, jobs ordered worst to best", mp.Results, false, 64, 10))
	sb.WriteString("\n")
	sb.WriteString(metrics.SlowdownChart("(b) JOB'S QOS + WAITING TIME", mp.Results, true, 64, 10))
	return sb.String()
}
