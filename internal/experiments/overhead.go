package experiments

import (
	"fmt"
	"strings"
	"time"

	"gputopo/internal/metrics"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

// OverheadRow is one policy's scheduling-decision cost (§5.5.3).
type OverheadRow struct {
	Policy       sched.Policy
	MeanDecision time.Duration
	MaxDecision  time.Duration
	Decisions    int
}

// Overhead measures the average placement-decision time of every policy on
// a scenario of the given scale, reproducing §5.5.3 (the paper reports
// ≈3 s for the topology-aware policies vs ≈0.45 s for the greedy ones at
// scenario 2 scale — a ≈6.7x ratio; absolute times differ on our
// hardware, the ratio is the reproduced quantity).
func Overhead(jobs, machines int, seed uint64) ([]OverheadRow, error) {
	topo := topology.Cluster(machines, topology.KindMinsky)
	stream, err := workload.Generate(workload.GenConfig{Jobs: jobs, Seed: seed}, topo)
	if err != nil {
		return nil, err
	}
	var rows []OverheadRow
	for _, pol := range sched.AllPolicies() {
		res, err := simulator.Run(simulator.Config{Topology: topo, Policy: pol}, stream)
		if err != nil {
			return nil, fmt.Errorf("overhead %s: %w", pol, err)
		}
		st := res.SchedStats
		rows = append(rows, OverheadRow{
			Policy:       pol,
			MeanDecision: st.MeanDecisionTime(),
			MaxDecision:  st.MaxDecision,
			Decisions:    st.Decisions,
		})
	}
	return rows, nil
}

// RenderOverhead formats the decision-cost table with the topo/greedy
// ratio the paper highlights.
func RenderOverhead(rows []OverheadRow) string {
	var tr [][]string
	var greedy, topo time.Duration
	var greedyN, topoN int
	for _, r := range rows {
		tr = append(tr, []string{
			r.Policy.String(),
			r.MeanDecision.String(),
			r.MaxDecision.String(),
			fmt.Sprintf("%d", r.Decisions),
		})
		switch r.Policy {
		case sched.FCFS, sched.BestFit:
			greedy += r.MeanDecision
			greedyN++
		default:
			topo += r.MeanDecision
			topoN++
		}
	}
	var sb strings.Builder
	sb.WriteString("§5.5.3: scheduling decision overhead\n")
	sb.WriteString(metrics.Table([]string{"policy", "mean decision", "max decision", "decisions"}, tr))
	if greedyN > 0 && topoN > 0 && greedy > 0 {
		ratio := float64(topo/time.Duration(topoN)) / float64(greedy/time.Duration(greedyN))
		fmt.Fprintf(&sb, "topo/greedy mean-decision ratio: %.1fx (paper: ≈6.7x — 3s vs 0.45s)\n", ratio)
	}
	return sb.String()
}

// RenderFig8 formats the full prototype figure: per-policy timelines
// (panels a–d), the slowdown charts (panels e–f) and the cumulative
// execution time comparison of §5.2.2.
func RenderFig8(mp *MultiPolicy) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: prototype — Table 1 workload on one Power8 Minsky\n\n")
	for _, r := range mp.Results {
		sb.WriteString(metrics.Timeline(r, 4, 72))
		sb.WriteString("\n")
	}
	sb.WriteString(metrics.CompareRuns(mp.Results))
	sb.WriteString("\n")
	sb.WriteString(metrics.SlowdownChart("(e) JOB'S QOS — slowdown vs ideal, worst to best", mp.Results, false, 64, 10))
	sb.WriteString("\n")
	sb.WriteString(metrics.SlowdownChart("(f) JOB'S QOS + WAITING TIME", mp.Results, true, 64, 10))
	return sb.String()
}

// ValidationRow compares prototype and simulator outcomes for one policy
// (§5.4, Figure 9).
type ValidationRow struct {
	Policy            sched.Policy
	PrototypeMakespan float64
	SimulatorMakespan float64
	RelativeError     float64
}

// Validate runs the Table 1 scenario on both engines and reports the
// relative makespan differences — the §5.4 claim is that they "behave very
// similarly ... despite some expected small differences."
func Validate(seed uint64) ([]ValidationRow, error) {
	proto, _, err := Fig8Prototype(seed)
	if err != nil {
		return nil, err
	}
	sim, err := Fig9Validation(seed)
	if err != nil {
		return nil, err
	}
	var rows []ValidationRow
	for i, pr := range proto.Results {
		sr := sim.Results[i]
		rel := 0.0
		if pr.Makespan > 0 {
			rel = (sr.Makespan - pr.Makespan) / pr.Makespan
		}
		rows = append(rows, ValidationRow{
			Policy:            pr.Policy,
			PrototypeMakespan: pr.Makespan,
			SimulatorMakespan: sr.Makespan,
			RelativeError:     rel,
		})
	}
	return rows, nil
}

// RenderValidation formats the §5.4 validation table.
func RenderValidation(rows []ValidationRow) string {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			r.Policy.String(),
			fmt.Sprintf("%.1f", r.PrototypeMakespan),
			fmt.Sprintf("%.1f", r.SimulatorMakespan),
			fmt.Sprintf("%+.2f%%", r.RelativeError*100),
		})
	}
	return "Figure 9 / §5.4: prototype vs simulation validation (cumulative time)\n" +
		metrics.Table([]string{"policy", "prototype(s)", "simulator(s)", "rel. diff"}, tr)
}
