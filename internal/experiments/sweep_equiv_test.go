package experiments

import (
	"testing"

	"gputopo/internal/caffesim"
	"gputopo/internal/core"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

// These tests pin the sweep-engine refactor to the pre-refactor behaviour:
// each legacy* function is a verbatim copy of the hand-rolled serial loop
// the experiment used before it became a grid definition, and the results
// must agree exactly — same placements, same timings, bit for bit.

func legacyScenario(jobs, machines int, seed uint64) (*MultiPolicy, error) {
	topo := topology.Cluster(machines, topology.KindMinsky)
	rate := 10 * float64(machines) / 5
	stream, err := workload.Generate(workload.GenConfig{
		Jobs:        jobs,
		ArrivalRate: rate,
		Seed:        seed,
	}, topo)
	if err != nil {
		return nil, err
	}
	out := &MultiPolicy{}
	for _, pol := range sched.AllPolicies() {
		res, err := simulator.Run(simulator.Config{Topology: topo, Policy: pol}, stream)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

func legacyFig9(seed uint64) (*MultiPolicy, error) {
	topo := topology.Power8Minsky()
	out := &MultiPolicy{}
	for _, pol := range sched.AllPolicies() {
		res, err := simulator.Run(simulator.Config{
			Topology:       topo,
			Policy:         pol,
			Seed:           seed,
			SampleInterval: 4,
		}, workload.Table1())
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

func legacyFig8(seed uint64) (map[sched.Policy]*caffesim.Result, error) {
	topo := topology.Power8Minsky()
	protos := map[sched.Policy]*caffesim.Result{}
	for _, pol := range sched.AllPolicies() {
		res, err := caffesim.Run(caffesim.Config{
			Topology: topo,
			Policy:   pol,
			Seed:     seed,
		}, workload.Table1())
		if err != nil {
			return nil, err
		}
		protos[pol] = res
	}
	return protos, nil
}

func legacyAlphaSweep(alphas []float64, jobs, machines int, seed uint64) ([]AlphaRow, error) {
	topo := topology.Cluster(machines, topology.KindMinsky)
	stream, err := workload.Generate(workload.GenConfig{Jobs: jobs, Seed: seed}, topo)
	if err != nil {
		return nil, err
	}
	var rows []AlphaRow
	for _, a := range alphas {
		rest := (1 - a) / 2
		res, err := simulator.Run(simulator.Config{
			Topology: topo,
			Policy:   sched.TopoAwareP,
			Weights:  core.Weights{CommCost: a, Interference: rest, Fragmentation: rest},
		}, stream)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AlphaRow{
			AlphaCC:  a,
			Makespan: res.Makespan,
			SLO:      res.SLOViolations(),
			MeanQoS:  res.MeanSlowdownQoS(),
		})
	}
	return rows, nil
}

func legacyThresholdSweep(thresholds []float64, jobs, machines int, seed uint64) ([]ThresholdRow, error) {
	topo := topology.Cluster(machines, topology.KindMinsky)
	var rows []ThresholdRow
	for _, th := range thresholds {
		stream, err := workload.Generate(workload.GenConfig{Jobs: jobs, Seed: seed}, topo)
		if err != nil {
			return nil, err
		}
		for _, j := range stream {
			if j.GPUs > 1 {
				j.MinUtility = th
			}
		}
		res, err := simulator.Run(simulator.Config{
			Topology: topo,
			Policy:   sched.TopoAwareP,
		}, stream)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ThresholdRow{
			MinUtility: th,
			Makespan:   res.Makespan,
			SLO:        res.SLOViolations(),
			TotalWait:  res.TotalWait(),
		})
	}
	return rows, nil
}

func legacyLevelWeightAblation(socketWeights []float64) ([]WeightAblationRow, error) {
	var rows []WeightAblationRow
	for _, w := range socketWeights {
		topo := topology.Power8MinskyWeights(topology.LevelWeights{Socket: w})
		res, err := simulator.Run(simulator.Config{
			Topology: topo,
			Policy:   sched.TopoAwareP,
		}, workload.Table1())
		if err != nil {
			return nil, err
		}
		rows = append(rows, WeightAblationRow{
			SocketWeight: w,
			Makespan:     res.Makespan,
			SLO:          res.SLOViolations(),
		})
	}
	return rows, nil
}

// sameResult compares the observable outcome of two simulation runs
// exactly: per-job placements and timings must match bit for bit.
func sameResult(t *testing.T, label string, got, want *simulator.Result) {
	t.Helper()
	if got.Policy != want.Policy {
		t.Fatalf("%s: policy %v != %v", label, got.Policy, want.Policy)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("%s/%v: makespan %v != %v", label, got.Policy, got.Makespan, want.Makespan)
	}
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("%s/%v: %d jobs != %d", label, got.Policy, len(got.Jobs), len(want.Jobs))
	}
	for i := range got.Jobs {
		g, w := got.Jobs[i], want.Jobs[i]
		if g.Job.ID != w.Job.ID || g.Start != w.Start || g.Finish != w.Finish ||
			g.Wait != w.Wait || g.Utility != w.Utility || g.SLOViolated != w.SLOViolated ||
			g.SlowdownQoS != w.SlowdownQoS || len(g.GPUs) != len(w.GPUs) {
			t.Fatalf("%s/%v job %s: %+v != %+v", label, got.Policy, g.Job.ID, g, w)
		}
		for k := range g.GPUs {
			if g.GPUs[k] != w.GPUs[k] {
				t.Fatalf("%s/%v job %s: GPUs %v != %v", label, got.Policy, g.Job.ID, g.GPUs, w.GPUs)
			}
		}
	}
	if got.SLOViolations() != want.SLOViolations() || got.TotalWait() != want.TotalWait() {
		t.Fatalf("%s/%v: aggregate metrics diverged", label, got.Policy)
	}
}

func TestScenarioMatchesLegacy(t *testing.T) {
	got, err := Scenario(40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyScenario(40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		sameResult(t, "scenario", got.Results[i], want.Results[i])
	}
}

func TestFig9MatchesLegacy(t *testing.T) {
	got, err := Fig9Validation(42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyFig9(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		sameResult(t, "fig9", got.Results[i], want.Results[i])
		if len(got.Results[i].Samples) != len(want.Results[i].Samples) {
			t.Fatalf("fig9/%v: sample series length changed", want.Results[i].Policy)
		}
	}
}

func TestFig8MatchesLegacy(t *testing.T) {
	_, protos, err := Fig8Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyFig8(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range sched.AllPolicies() {
		sameResult(t, "fig8", &protos[pol].Result, &want[pol].Result)
		if len(protos[pol].Bandwidth) != len(want[pol].Bandwidth) {
			t.Fatalf("fig8/%v: bandwidth series changed", pol)
		}
	}
}

func TestAlphaSweepMatchesLegacy(t *testing.T) {
	alphas := []float64{0, 1.0 / 3, 0.8}
	got, err := AlphaSweep(alphas, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyAlphaSweep(alphas, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alpha row %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestLevelWeightAblationMatchesLegacy(t *testing.T) {
	weights := []float64{5, 20, 40, 100}
	got, err := LevelWeightAblation(weights)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyLevelWeightAblation(weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("level-weight row %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Empty inputs stay a no-op, like the legacy loops — not a grid
	// validation error.
	if rows, err := LevelWeightAblation(nil); err != nil || len(rows) != 0 {
		t.Fatalf("empty ablation: rows=%v err=%v", rows, err)
	}
	if rows, err := AlphaSweep(nil, 10, 1, 1); err != nil || len(rows) != 0 {
		t.Fatalf("empty alpha sweep: rows=%v err=%v", rows, err)
	}
	if rows, err := ThresholdSweep([]float64{}, 10, 1, 1); err != nil || len(rows) != 0 {
		t.Fatalf("empty threshold sweep: rows=%v err=%v", rows, err)
	}
}

func TestThresholdSweepMatchesLegacy(t *testing.T) {
	ths := []float64{0, 0.5, 0.9}
	got, err := ThresholdSweep(ths, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyThresholdSweep(ths, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("threshold row %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
