package experiments

import (
	"strings"
	"testing"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/sched"
)

// These tests assert the *shape* of every reproduced figure — who wins, by
// roughly what factor, where crossovers fall — as EXPERIMENTS.md records.

func TestFig3Shape(t *testing.T) {
	rows := Fig3Breakdown()
	if len(rows) != 3*4*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Fig3Row{}
	for _, r := range rows {
		byKey[r.Model.String()+r.Strategy+string(rune('0'+r.Batch%10))] = r
	}
	// AlexNet batch 1 packed: communication dominates (paper ≈2s of 3s).
	a1 := byKey["AlexNetpack1"]
	if a1.CommFrac < 0.55 || a1.CommFrac > 0.75 {
		t.Fatalf("AlexNet b=1 pack comm fraction %.2f, want ≈0.66", a1.CommFrac)
	}
	// Spread always has a larger comm share than pack.
	for _, r := range rows {
		if r.Strategy != "pack" {
			continue
		}
		spread := byKey[r.Model.String()+"spread"+string(rune('0'+r.Batch%10))]
		if spread.CommFrac <= r.CommFrac {
			t.Fatalf("%v b=%d: spread comm %.3f <= pack %.3f",
				r.Model, r.Batch, spread.CommFrac, r.CommFrac)
		}
	}
	// GoogLeNet communicates less than AlexNet at every batch.
	for _, b := range []int{1, 4, 32, 128} {
		g := byKey["GoogLeNetpack"+string(rune('0'+b%10))]
		a := byKey["AlexNetpack"+string(rune('0'+b%10))]
		if g.CommFrac >= a.CommFrac {
			t.Fatalf("b=%d: GoogLeNet comm %.3f >= AlexNet %.3f", b, g.CommFrac, a.CommFrac)
		}
	}
	if out := RenderFig3(rows); !strings.Contains(out, "AlexNet") {
		t.Fatal("render missing model")
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4PackSpread()
	byModel := map[perfmodel.NN]map[int]float64{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[int]float64{}
		}
		byModel[r.Model][r.Batch] = r.Speedup
	}
	// Headline: AlexNet ≈1.30x at batch 1.
	if s := byModel[perfmodel.AlexNet][1]; s < 1.25 || s > 1.37 {
		t.Fatalf("AlexNet b=1 speedup %.3f", s)
	}
	// Even performance for batch >= 16 (within 10%).
	for _, b := range []int{16, 32, 64, 128} {
		if s := byModel[perfmodel.AlexNet][b]; s > 1.10 {
			t.Fatalf("AlexNet b=%d speedup %.3f, want ≈1.0", b, s)
		}
	}
	// GoogLeNet flat.
	for b, s := range byModel[perfmodel.GoogLeNet] {
		if s > 1.06 {
			t.Fatalf("GoogLeNet b=%d speedup %.3f", b, s)
		}
	}
	if out := RenderFig4(rows); !strings.Contains(out, "speedup") {
		t.Fatal("render broken")
	}
}

func TestFig5Shape(t *testing.T) {
	series, err := Fig5Bandwidth(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Mean bandwidth decreases monotonically with batch size, with a
	// large gap between batch 1 and batch 128 (paper: ≈40 vs ≈6 GB/s).
	for i := 1; i < len(series); i++ {
		if series[i].Mean >= series[i-1].Mean {
			t.Fatalf("mean bandwidth not decreasing: batch %d %.2f >= batch %d %.2f",
				series[i].Batch, series[i].Mean, series[i-1].Batch, series[i-1].Mean)
		}
	}
	if ratio := series[0].Mean / series[3].Mean; ratio < 5 {
		t.Fatalf("b1/b128 bandwidth ratio %.1f, want > 5", ratio)
	}
	if out := RenderFig5(series); !strings.Contains(out, "batch") {
		t.Fatal("render broken")
	}
}

func TestFig6Shape(t *testing.T) {
	cells := Fig6Interference()
	if len(cells) != 16 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(v, c jobgraph.BatchClass) float64 {
		for _, cell := range cells {
			if cell.Victim == v && cell.Causer == c {
				return cell.Slowdown
			}
		}
		t.Fatalf("missing cell %v/%v", v, c)
		return 0
	}
	if s := get(jobgraph.BatchTiny, jobgraph.BatchTiny); s < 0.28 || s > 0.32 {
		t.Fatalf("tiny+tiny = %.3f, want ≈0.30", s)
	}
	if s := get(jobgraph.BatchTiny, jobgraph.BatchBig); s < 0.22 || s > 0.26 {
		t.Fatalf("big→tiny = %.3f, want ≈0.24", s)
	}
	if s := get(jobgraph.BatchSmall, jobgraph.BatchBig); s < 0.19 || s > 0.23 {
		t.Fatalf("big→small = %.3f, want ≈0.21", s)
	}
	if s := get(jobgraph.BatchBig, jobgraph.BatchBig); s > 0.05 {
		t.Fatalf("big+big = %.3f, want ≈0", s)
	}
	if out := RenderFig6(cells); !strings.Contains(out, "victim") {
		t.Fatal("render broken")
	}
}

func TestPCIeShape(t *testing.T) {
	rows := PCIeComparison()
	for _, r := range rows {
		if r.NVLinkSpeedup <= r.PCIeSpeedup && r.Batch <= 16 {
			t.Fatalf("b=%d: NVLink %.3f <= PCIe %.3f", r.Batch, r.NVLinkSpeedup, r.PCIeSpeedup)
		}
		if r.PCIeSpeedup < 1 {
			t.Fatalf("b=%d: PCIe speedup below 1", r.Batch)
		}
	}
	if out := RenderPCIe(rows); !strings.Contains(out, "NVLink") {
		t.Fatal("render broken")
	}
}

func TestFig8Shape(t *testing.T) {
	mp, protos, err := Fig8Prototype(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Results) != 4 || len(protos) != 4 {
		t.Fatal("missing policies")
	}
	bf := mp.ByPolicy(sched.BestFit)
	tp := mp.ByPolicy(sched.TopoAwareP)
	if tp.SLOViolations() != 0 {
		t.Fatalf("TOPO-AWARE-P violations = %d", tp.SLOViolations())
	}
	if bf.SLOViolations() == 0 {
		t.Fatal("BF should violate SLOs in the Table 1 scenario")
	}
	speedup := bf.Makespan / tp.Makespan
	if speedup < 1.15 || speedup > 1.45 {
		t.Fatalf("cumulative speedup %.3f, want ≈1.2-1.3x (paper ≈1.30x)", speedup)
	}
	out := RenderFig8(mp)
	for _, frag := range []string{"GPU allocation timeline", "JOB'S QOS", "WAITING"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q", frag)
		}
	}
}

func TestValidationAgreement(t *testing.T) {
	rows, err := Validate(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RelativeError > 0.05 || r.RelativeError < -0.05 {
			t.Fatalf("%v: prototype and simulator diverge %.1f%%", r.Policy, r.RelativeError*100)
		}
	}
	if out := RenderValidation(rows); !strings.Contains(out, "prototype") {
		t.Fatal("render broken")
	}
}

func TestScenarioShape(t *testing.T) {
	// Scenario 1 at its published scale (100 jobs, 5 machines) must show
	// the paper's Figure 10 ordering: TOPO-AWARE-P has no SLO violations,
	// the least waiting, and the best placement-quality slowdown.
	mp, err := Scenario(100, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	tp := mp.ByPolicy(sched.TopoAwareP)
	if tp.SLOViolations() != 0 {
		t.Fatalf("TOPO-AWARE-P violations = %d", tp.SLOViolations())
	}
	for _, r := range mp.Results {
		if r.Policy == sched.TopoAwareP {
			continue
		}
		if r.SLOViolations() == 0 {
			t.Fatalf("%v unexpectedly has zero SLO violations", r.Policy)
		}
		if r.TotalWait() < tp.TotalWait() {
			t.Fatalf("%v waits less than TOPO-AWARE-P (%f < %f)",
				r.Policy, r.TotalWait(), tp.TotalWait())
		}
		if r.MeanSlowdownQoS() < tp.MeanSlowdownQoS()-1e-9 {
			t.Fatalf("%v has better QoS slowdown than TOPO-AWARE-P", r.Policy)
		}
		if r.Makespan < tp.Makespan {
			t.Fatalf("%v has shorter cumulative time than TOPO-AWARE-P", r.Policy)
		}
	}
	if out := RenderScenario("s", mp); !strings.Contains(out, "cumulative") {
		t.Fatal("render broken")
	}
}

func TestOverheadShape(t *testing.T) {
	rows, err := Overhead(100, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	var greedy, topo float64
	for _, r := range rows {
		switch r.Policy {
		case sched.FCFS, sched.BestFit:
			greedy += float64(r.MeanDecision)
		default:
			topo += float64(r.MeanDecision)
		}
	}
	// §5.5.3: topology-aware decisions cost several times more.
	if topo <= greedy {
		t.Fatalf("topo decisions (%.0fns) not more expensive than greedy (%.0fns)", topo/2, greedy/2)
	}
	if out := RenderOverhead(rows); !strings.Contains(out, "decision") {
		t.Fatal("render broken")
	}
}

func TestLevelWeightAblation(t *testing.T) {
	rows, err := LevelWeightAblation([]float64{10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	// §4.1.2: only the ordering of weights matters; the schedule should
	// not change.
	for i := 1; i < len(rows); i++ {
		if rows[i].Makespan != rows[0].Makespan {
			t.Fatalf("socket weight %g changed the makespan: %.2f vs %.2f",
				rows[i].SocketWeight, rows[i].Makespan, rows[0].Makespan)
		}
	}
	if out := RenderWeightAblation(rows); !strings.Contains(out, "socket weight") {
		t.Fatal("render broken")
	}
}

func TestThresholdSweepShape(t *testing.T) {
	rows, err := ThresholdSweep([]float64{0, 0.9}, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0 disables postponement: zero low-utility postponements
	// means SLO violations can occur; a high threshold forces waiting.
	if rows[1].TotalWait < rows[0].TotalWait {
		t.Fatalf("higher threshold should not reduce waiting: %f vs %f",
			rows[1].TotalWait, rows[0].TotalWait)
	}
	if out := RenderThresholdSweep(rows); !strings.Contains(out, "min utility") {
		t.Fatal("render broken")
	}
}

func TestAlphaSweep(t *testing.T) {
	rows, err := AlphaSweep([]float64{0, 1.0 / 3, 0.8}, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if out := RenderAlphaSweep(rows); !strings.Contains(out, "αcc") {
		t.Fatal("render broken")
	}
}
