package experiments

import (
	"fmt"

	"gputopo/internal/metrics"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

// MPRow compares data- and model-parallel pack-vs-spread speedups at one
// batch size.
type MPRow struct {
	Batch     int
	DPSpeedup float64
	MPSpeedup float64
}

// ModelParallelStudy quantifies §2's expectation that "topology-aware
// scheduling is even more critical for model-parallelization workloads
// because of the higher communication requirements": the placement impact
// (pack vs spread) for 2-GPU AlexNet jobs in both parallelism modes.
// Data-parallel jobs stop caring about placement at large batches (their
// gradient volume is batch-independent while compute grows); model-
// parallel jobs exchange activations proportional to the batch, so the
// placement impact persists.
func ModelParallelStudy() []MPRow {
	topo := topology.Power8Minsky()
	var rows []MPRow
	for _, b := range BatchSweep {
		rows = append(rows, MPRow{
			Batch:     b,
			DPSpeedup: perfmodel.PackSpreadSpeedupMode(perfmodel.AlexNet, b, topo, 1, perfmodel.DataParallel),
			MPSpeedup: perfmodel.PackSpreadSpeedupMode(perfmodel.AlexNet, b, topo, 1, perfmodel.ModelParallel),
		})
	}
	return rows
}

// RenderModelParallel formats the §2 extension study.
func RenderModelParallel(rows []MPRow) string {
	var tr [][]string
	var dp, mp []metrics.Point
	for _, r := range rows {
		tr = append(tr, []string{
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.3f", r.DPSpeedup),
			fmt.Sprintf("%.3f", r.MPSpeedup),
		})
		dp = append(dp, metrics.Point{X: float64(r.Batch), Y: r.DPSpeedup})
		mp = append(mp, metrics.Point{X: float64(r.Batch), Y: r.MPSpeedup})
	}
	return "§2 extension: pack-vs-spread speedup, data- vs model-parallel AlexNet\n" +
		metrics.Table([]string{"batch", "data-parallel", "model-parallel"}, tr) + "\n" +
		metrics.LineChart("speedup vs batch", []metrics.Series{
			{Name: "data-parallel", Points: dp},
			{Name: "model-parallel", Points: mp},
		}, 64, 10)
}
