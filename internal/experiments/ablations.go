package experiments

import (
	"fmt"

	"gputopo/internal/metrics"
	"gputopo/internal/sched"
	"gputopo/internal/sweep"
	"gputopo/internal/topology"
)

// Ablations for the design choices DESIGN.md calls out. These have no
// direct counterpart figure in the paper; they substantiate claims the
// paper makes in passing (§4.1.2: level weights are qualitative; §5.2.1:
// equal α weights; §4.4: postponement threshold behavior).

// WeightAblationRow records the placement quality under one socket-level
// weight setting.
type WeightAblationRow struct {
	SocketWeight float64
	Makespan     float64
	SLO          int
}

// LevelWeightAblation re-runs the Table 1 scenario under TOPO-AWARE-P with
// different socket-level distance weights, supporting the §4.1.2 claim
// that only the ordering of level weights matters: placements — and
// therefore makespans — should not change. It is a thin grid over the
// topology axis — one TopologySpec per socket weight — executed
// concurrently by the sweep engine (the explicit zero seed matches the
// pre-port serial loop, which ran the simulator with its zero-value
// config seed).
func LevelWeightAblation(socketWeights []float64) ([]WeightAblationRow, error) {
	if len(socketWeights) == 0 {
		return nil, nil // like the pre-port serial loop over zero weights
	}
	specs := make([]sweep.TopologySpec, len(socketWeights))
	for i, w := range socketWeights {
		specs[i] = sweep.TopologySpec{
			Builder: topology.KindMinsky.String(),
			Weights: &topology.LevelWeights{Socket: w},
		}
	}
	rep, err := sweep.Run(sweep.Grid{
		Name:       "levelweights",
		Source:     sweep.SourceTable1,
		Policies:   []sched.Policy{sched.TopoAwareP},
		Topologies: specs,
		Seeds:      []uint64{0},
	}, sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("weight ablation: %w", err)
	}
	rows := make([]WeightAblationRow, len(rep.Points))
	for i, p := range rep.Points {
		rows[i] = WeightAblationRow{
			SocketWeight: p.Topology.Weights.Socket,
			Makespan:     p.Makespan,
			SLO:          p.SLOViolations,
		}
	}
	return rows, nil
}

// RenderWeightAblation formats the level-weight ablation.
func RenderWeightAblation(rows []WeightAblationRow) string {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			fmt.Sprintf("%g", r.SocketWeight),
			fmt.Sprintf("%.1f", r.Makespan),
			fmt.Sprintf("%d", r.SLO),
		})
	}
	return "Ablation: socket-level distance weight (§4.1.2 — only ordering matters)\n" +
		metrics.Table([]string{"socket weight", "makespan(s)", "SLO-viol"}, tr)
}

// AlphaRow records scenario quality for one αcc setting.
type AlphaRow struct {
	AlphaCC  float64
	Makespan float64
	SLO      int
	MeanQoS  float64
}

// AlphaSweep varies the communication-cost weight αcc (splitting the
// remainder equally between interference and fragmentation) on the
// scenario-1 workload under TOPO-AWARE-P. It is a thin grid over the
// α axis, executed concurrently by the sweep engine; every α point
// regenerates the identical workload stream from the shared seed.
func AlphaSweep(alphas []float64, jobs, machines int, seed uint64) ([]AlphaRow, error) {
	if len(alphas) == 0 {
		return nil, nil // like the pre-port serial loop over zero alphas
	}
	rep, err := sweep.Run(sweep.Grid{
		Name:     "alpha",
		Policies: []sched.Policy{sched.TopoAwareP},
		Machines: []int{machines},
		Jobs:     []int{jobs},
		AlphasCC: alphas,
		Seeds:    []uint64{seed},
	}, sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("alpha sweep: %w", err)
	}
	rows := make([]AlphaRow, len(rep.Points))
	for i, p := range rep.Points {
		rows[i] = AlphaRow{
			AlphaCC:  p.AlphaCC,
			Makespan: p.Makespan,
			SLO:      p.SLOViolations,
			MeanQoS:  p.MeanQoS,
		}
	}
	return rows, nil
}

// RenderAlphaSweep formats the α sweep.
func RenderAlphaSweep(rows []AlphaRow) string {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			fmt.Sprintf("%.2f", r.AlphaCC),
			fmt.Sprintf("%.1f", r.Makespan),
			fmt.Sprintf("%d", r.SLO),
			fmt.Sprintf("%.3f", r.MeanQoS),
		})
	}
	return "Ablation: utility weight αcc sweep (TOPO-AWARE-P, scenario 1)\n" +
		metrics.Table([]string{"αcc", "makespan(s)", "SLO-viol", "mean QoS slow"}, tr)
}

// ThresholdRow records scenario quality for one min-utility override.
type ThresholdRow struct {
	MinUtility float64
	Makespan   float64
	SLO        int
	TotalWait  float64
}

// ThresholdSweep overrides every multi-GPU job's minimum utility and
// re-runs scenario 1 under TOPO-AWARE-P, exposing the waiting-time/QoS
// trade-off that separates TOPO-AWARE-P from TOPO-AWARE (threshold 0
// makes P behave exactly like TOPO-AWARE). It is a thin grid over the
// threshold axis, executed concurrently by the sweep engine.
func ThresholdSweep(thresholds []float64, jobs, machines int, seed uint64) ([]ThresholdRow, error) {
	if len(thresholds) == 0 {
		return nil, nil // like the pre-port serial loop over zero thresholds
	}
	rep, err := sweep.Run(sweep.Grid{
		Name:       "threshold",
		Policies:   []sched.Policy{sched.TopoAwareP},
		Machines:   []int{machines},
		Jobs:       []int{jobs},
		Thresholds: thresholds,
		Seeds:      []uint64{seed},
	}, sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("threshold sweep: %w", err)
	}
	rows := make([]ThresholdRow, len(rep.Points))
	for i, p := range rep.Points {
		rows[i] = ThresholdRow{
			MinUtility: p.Point.Threshold,
			Makespan:   p.Makespan,
			SLO:        p.SLOViolations,
			TotalWait:  p.TotalWait,
		}
	}
	return rows, nil
}

// RenderThresholdSweep formats the postponement-threshold sweep.
func RenderThresholdSweep(rows []ThresholdRow) string {
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{
			fmt.Sprintf("%.2f", r.MinUtility),
			fmt.Sprintf("%.1f", r.Makespan),
			fmt.Sprintf("%d", r.SLO),
			fmt.Sprintf("%.1f", r.TotalWait),
		})
	}
	return "Ablation: TOPO-AWARE-P postponement threshold sweep (scenario 1)\n" +
		metrics.Table([]string{"min utility", "makespan(s)", "SLO-viol", "total wait(s)"}, tr)
}
