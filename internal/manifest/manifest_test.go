package manifest

import (
	"bytes"
	"strings"
	"testing"

	"gputopo/internal/perfmodel"
)

func sample() *Experiment {
	return &Experiment{
		System: SystemConfig{Simulation: true, Topology: "minsky"},
		Algorithms: []AlgorithmConfig{
			{Name: "FCFS"},
			{Name: "TOPO-AWARE-P"},
		},
		Jobs: []JobManifest{
			{ID: "a", Model: "AlexNet", BatchSize: 1, GPUs: 2, MinUtility: 0.5, Arrival: 0, Iterations: 100},
			{ID: "b", Model: "GoogLeNet", BatchSize: 128, GPUs: 1, MinUtility: 0.3, Arrival: 5, Iterations: 50},
		},
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 2 || len(back.Algorithms) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if !back.System.Simulation {
		t.Fatal("simulation flag lost")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidation(t *testing.T) {
	mutations := map[string]func(*Experiment){
		"no algorithms": func(e *Experiment) { e.Algorithms = nil },
		"no jobs":       func(e *Experiment) { e.Jobs = nil },
		"bad topology":  func(e *Experiment) { e.System.Topology = "abacus" },
		"bad policy":    func(e *Experiment) { e.Algorithms[0].Name = "LIFO" },
		"bad model":     func(e *Experiment) { e.Jobs[0].Model = "ResNet" },
		"bad pattern":   func(e *Experiment) { e.Jobs[0].CommPattern = "mesh" },
		"bad weights":   func(e *Experiment) { e.Algorithms[0].AlphaCC = 0.9 },
		"bad job":       func(e *Experiment) { e.Jobs[0].GPUs = 0 },
		"zero machines": func(e *Experiment) { e.System.Topology = "cluster"; e.System.Machines = 0 },
	}
	for name, mutate := range mutations {
		e := sample()
		mutate(e)
		if err := e.Validate(); err == nil {
			t.Fatalf("case %q: invalid experiment accepted", name)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid experiment rejected: %v", err)
	}
}

func TestBuildTopologyVariants(t *testing.T) {
	cases := map[string]int{"minsky": 4, "": 4, "dgx1": 8, "pcie": 4}
	for name, gpus := range cases {
		e := sample()
		e.System.Topology = name
		topo, err := e.BuildTopology()
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if topo.NumGPUs() != gpus {
			t.Fatalf("%q: GPUs = %d, want %d", name, topo.NumGPUs(), gpus)
		}
	}
	e := sample()
	e.System.Topology = "cluster"
	e.System.Machines = 3
	topo, err := e.BuildTopology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 12 {
		t.Fatalf("cluster GPUs = %d", topo.NumGPUs())
	}
}

func TestBuildJobsOptions(t *testing.T) {
	e := sample()
	e.Jobs = []JobManifest{
		{ID: "ring", Model: "AlexNet", BatchSize: 1, GPUs: 4, MinUtility: 0.5, CommPattern: "ring", Iterations: 10},
		{ID: "star", Model: "AlexNet", BatchSize: 1, GPUs: 3, MinUtility: 0.5, CommPattern: "star", Iterations: 10},
		{ID: "mp", Model: "CaffeRef", BatchSize: 8, GPUs: 2, MinUtility: 0.5, ModelParallel: true, Iterations: 10},
		{ID: "mn", Model: "AlexNet", BatchSize: 1, GPUs: 2, MinUtility: 0.5, MultiNode: true, AntiCollocate: true, Iterations: 10},
	}
	jobs, err := e.BuildJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs[0].CommGraph().Edges()) != 4 {
		t.Fatal("ring pattern not applied")
	}
	if len(jobs[1].CommGraph().Edges()) != 2 {
		t.Fatal("star pattern not applied")
	}
	if jobs[2].Parallelism != perfmodel.ModelParallel {
		t.Fatal("model-parallel flag not applied")
	}
	if jobs[3].SingleNode || !jobs[3].AntiCollocate {
		t.Fatal("multi-node / anti-collocation flags not applied")
	}
}

func TestRunSimulationMode(t *testing.T) {
	e := sample()
	runs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if len(r.Result.Jobs) != 2 {
			t.Fatalf("%s: jobs = %d", r.Algorithm.Name, len(r.Result.Jobs))
		}
		if r.Bandwidth != nil {
			t.Fatal("simulation mode should not produce bandwidth series")
		}
	}
}

func TestRunPrototypeMode(t *testing.T) {
	e := sample()
	e.System.Simulation = false
	runs, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if len(r.Bandwidth) == 0 {
			t.Fatalf("%s: prototype mode should record bandwidth", r.Algorithm.Name)
		}
	}
}

func TestRunModesAgree(t *testing.T) {
	// The §5.4 validation through the manifest interface: both engines
	// produce near-identical cumulative times.
	sim := sample()
	runsSim, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	proto := sample()
	proto.System.Simulation = false
	runsProto, err := proto.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range runsSim {
		a, b := runsSim[i].Result.Makespan, runsProto[i].Result.Makespan
		rel := (a - b) / b
		if rel < -0.05 || rel > 0.05 {
			t.Fatalf("%s: engines diverge %.1f%%", runsSim[i].Algorithm.Name, rel*100)
		}
	}
}

func TestCustomWeights(t *testing.T) {
	e := sample()
	e.Algorithms = []AlgorithmConfig{{Name: "TOPO-AWARE", AlphaCC: 0.5, AlphaB: 0.25, AlphaD: 0.25}}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
