// Package manifest implements the prototype's configuration workflow from
// the paper's artifact appendix: the system runs from a system config
// (etc/configs/sys-config.ini — most importantly the `simulation` switch
// between prototype and simulator mode), one config per scheduling
// algorithm (etc/configs/algo-name-config.ini — "if many are provided,
// the system will execute multiple runs"), and a stream of JSON job
// manifests ("the program continuously loads JSON files containing the
// necessary information about the submitted jobs", §5.1). We use JSON for
// all three so an experiment is a single declarative document.
package manifest

import (
	"encoding/json"
	"fmt"
	"io"

	"gputopo/internal/caffesim"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
)

// SystemConfig mirrors etc/configs/sys-config.ini: where to run and how.
type SystemConfig struct {
	// Simulation selects the trace-driven simulator (true) or the
	// iteration-granularity prototype engine (false) — the paper's
	// central config switch.
	Simulation bool `json:"simulation"`
	// Topology names the hardware: "minsky", "dgx1", "pcie" or "cluster".
	Topology string `json:"topology"`
	// Machines sizes a "cluster" topology (ignored otherwise).
	Machines int `json:"machines,omitempty"`
	// Seed drives run-to-run jitter (0 = deterministic, no jitter).
	Seed uint64 `json:"seed,omitempty"`
	// JitterStddev adds relative Gaussian noise to iteration times,
	// emulating the five repeated hardware runs of §3.1.
	JitterStddev float64 `json:"jitter_stddev,omitempty"`
	// SampleInterval enables the bandwidth/utility time series (seconds).
	SampleInterval float64 `json:"sample_interval,omitempty"`
}

// AlgorithmConfig mirrors etc/configs/algo-name-config.ini: one scheduling
// algorithm plus its utility weights.
type AlgorithmConfig struct {
	// Name is the policy: "FCFS", "BF", "TOPO-AWARE" or "TOPO-AWARE-P".
	Name string `json:"name"`
	// AlphaCC, AlphaB, AlphaD are the Eq. 1/2 weights; all zero means
	// the default equal weighting.
	AlphaCC float64 `json:"alpha_cc,omitempty"`
	AlphaB  float64 `json:"alpha_b,omitempty"`
	AlphaD  float64 `json:"alpha_d,omitempty"`
}

// JobManifest is the JSON job description the prototype loads (§5.1).
type JobManifest struct {
	ID         string  `json:"id"`
	Model      string  `json:"model"`
	BatchSize  int     `json:"batch_size"`
	GPUs       int     `json:"gpus"`
	MinUtility float64 `json:"min_utility"`
	Arrival    float64 `json:"arrival"`
	Iterations int     `json:"iterations,omitempty"`
	// CommPattern selects the communication graph: "all-to-all"
	// (default, data parallel), "ring" or "star".
	CommPattern string `json:"comm_pattern,omitempty"`
	// MultiNode permits spanning machines (single-node is the default,
	// matching data-parallel Caffe).
	MultiNode bool `json:"multi_node,omitempty"`
	// AntiCollocate spreads the job's tasks across machines (§4.4).
	AntiCollocate bool `json:"anti_collocate,omitempty"`
	// ModelParallel marks the job as model-parallel (§2): its tasks
	// exchange layer activations instead of gradients.
	ModelParallel bool `json:"model_parallel,omitempty"`
}

// Experiment is a full declarative run: system + algorithms + jobs.
type Experiment struct {
	System     SystemConfig      `json:"system"`
	Algorithms []AlgorithmConfig `json:"algorithms"`
	Jobs       []JobManifest     `json:"jobs"`
}

// Read parses an experiment document.
func Read(r io.Reader) (*Experiment, error) {
	var e Experiment
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Write serializes an experiment document.
func Write(w io.Writer, e *Experiment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Validate checks the experiment for structural problems.
func (e *Experiment) Validate() error {
	if len(e.Algorithms) == 0 {
		return fmt.Errorf("manifest: at least one algorithm config is required")
	}
	if len(e.Jobs) == 0 {
		return fmt.Errorf("manifest: no jobs")
	}
	if _, err := e.BuildTopology(); err != nil {
		return err
	}
	for _, a := range e.Algorithms {
		if _, err := sched.ParsePolicy(a.Name); err != nil {
			return err
		}
		if _, err := a.weights(); err != nil {
			return err
		}
	}
	if _, err := e.BuildJobs(); err != nil {
		return err
	}
	return nil
}

// BuildTopology constructs the configured topology.
func (e *Experiment) BuildTopology() (*topology.Topology, error) {
	switch e.System.Topology {
	case "minsky", "":
		return topology.Power8Minsky(), nil
	case "dgx1":
		return topology.DGX1(), nil
	case "pcie":
		return topology.PCIeBox(), nil
	case "cluster":
		n := e.System.Machines
		if n <= 0 {
			return nil, fmt.Errorf("manifest: cluster topology needs machines > 0")
		}
		return topology.Cluster(n, topology.KindMinsky), nil
	default:
		return nil, fmt.Errorf("manifest: unknown topology %q", e.System.Topology)
	}
}

// BuildJobs constructs the submittable jobs from the manifests.
func (e *Experiment) BuildJobs() ([]*job.Job, error) {
	jobs := make([]*job.Job, 0, len(e.Jobs))
	for _, m := range e.Jobs {
		model, err := perfmodel.ParseNN(m.Model)
		if err != nil {
			return nil, fmt.Errorf("manifest job %s: %w", m.ID, err)
		}
		j := job.New(m.ID, model, m.BatchSize, m.GPUs, m.MinUtility, m.Arrival)
		if m.Iterations > 0 {
			j.Iterations = m.Iterations
		}
		j.SingleNode = !m.MultiNode
		j.AntiCollocate = m.AntiCollocate
		if m.ModelParallel {
			j.Parallelism = perfmodel.ModelParallel
		}
		switch m.CommPattern {
		case "", "all-to-all":
			// job.New already built the all-to-all graph.
		case "ring":
			if err := j.SetCommGraph(jobgraph.Ring(m.GPUs, j.Class().CommWeight())); err != nil {
				return nil, err
			}
		case "star":
			if err := j.SetCommGraph(jobgraph.Star(m.GPUs, j.Class().CommWeight())); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("manifest job %s: unknown comm pattern %q", m.ID, m.CommPattern)
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("manifest: %w", err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func (a AlgorithmConfig) weights() (core.Weights, error) {
	if a.AlphaCC == 0 && a.AlphaB == 0 && a.AlphaD == 0 {
		return core.DefaultWeights(), nil
	}
	w := core.Weights{CommCost: a.AlphaCC, Interference: a.AlphaB, Fragmentation: a.AlphaD}
	if err := w.Validate(); err != nil {
		return core.Weights{}, fmt.Errorf("manifest algorithm %s: %w", a.Name, err)
	}
	return w, nil
}

// RunResult pairs an algorithm config with its outcome.
type RunResult struct {
	Algorithm AlgorithmConfig
	Result    *simulator.Result
	// Bandwidth is populated in prototype mode.
	Bandwidth map[string][]caffesim.BandwidthPoint
}

// Run executes the experiment: one run per algorithm config, prototype or
// simulator mode per the system config — the paper's `python main.py`.
func (e *Experiment) Run() ([]RunResult, error) {
	topo, err := e.BuildTopology()
	if err != nil {
		return nil, err
	}
	var out []RunResult
	for _, a := range e.Algorithms {
		policy, err := sched.ParsePolicy(a.Name)
		if err != nil {
			return nil, err
		}
		w, err := a.weights()
		if err != nil {
			return nil, err
		}
		jobs, err := e.BuildJobs()
		if err != nil {
			return nil, err
		}
		rr := RunResult{Algorithm: a}
		if e.System.Simulation {
			res, err := simulator.Run(simulator.Config{
				Topology:       topo,
				Policy:         policy,
				Weights:        w,
				Seed:           e.System.Seed,
				JitterStddev:   e.System.JitterStddev,
				SampleInterval: e.System.SampleInterval,
			}, jobs)
			if err != nil {
				return nil, fmt.Errorf("manifest run %s: %w", a.Name, err)
			}
			rr.Result = res
		} else {
			res, err := caffesim.Run(caffesim.Config{
				Topology:     topo,
				Policy:       policy,
				Weights:      w,
				Seed:         e.System.Seed,
				JitterStddev: e.System.JitterStddev,
			}, jobs)
			if err != nil {
				return nil, fmt.Errorf("manifest run %s: %w", a.Name, err)
			}
			rr.Result = &res.Result
			rr.Bandwidth = res.Bandwidth
		}
		out = append(out, rr)
	}
	return out, nil
}
