package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func traits() perfmodel.Traits {
	return perfmodel.Traits{Model: perfmodel.AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
}

func TestAllocateReleaseLifecycle(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	if err := st.Allocate("j1", []int{0, 1}, 5, traits()); err != nil {
		t.Fatal(err)
	}
	if st.Owner(0) != "j1" || st.Owner(1) != "j1" {
		t.Fatal("ownership not recorded")
	}
	if st.FreeGPUCount() != 2 {
		t.Fatalf("free = %d", st.FreeGPUCount())
	}
	a := st.Allocation("j1")
	if a == nil || len(a.GPUs) != 2 || a.Bandwidth != 5 {
		t.Fatalf("allocation = %+v", a)
	}
	if a.Traits != traits() {
		t.Fatalf("traits = %+v", a.Traits)
	}
	if err := st.Release("j1"); err != nil {
		t.Fatal(err)
	}
	if st.FreeGPUCount() != 4 {
		t.Fatal("release did not free GPUs")
	}
	if st.Allocation("j1") != nil {
		t.Fatal("allocation survived release")
	}
}

func TestAllocateErrors(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	if err := st.Allocate("", []int{0}, 0, traits()); err == nil {
		t.Fatal("empty job ID accepted")
	}
	if err := st.Allocate("j", nil, 0, traits()); err == nil {
		t.Fatal("empty GPU list accepted")
	}
	if err := st.Allocate("j", []int{9}, 0, traits()); err == nil {
		t.Fatal("out-of-range GPU accepted")
	}
	if err := st.Allocate("j", []int{1, 1}, 0, traits()); err == nil {
		t.Fatal("duplicate GPU accepted")
	}
	if err := st.Allocate("j", []int{0}, 0, traits()); err != nil {
		t.Fatal(err)
	}
	if err := st.Allocate("j", []int{1}, 0, traits()); err == nil {
		t.Fatal("double allocation for one job accepted")
	}
	if err := st.Allocate("k", []int{0}, 0, traits()); err == nil {
		t.Fatal("occupied GPU accepted")
	}
	if err := st.Release("ghost"); err == nil {
		t.Fatal("releasing unknown job accepted")
	}
}

func TestFreeGPUsAndMachines(t *testing.T) {
	st := NewState(topology.Cluster(2, topology.KindMinsky))
	if err := st.Allocate("j1", []int{0, 1}, 1, traits()); err != nil {
		t.Fatal(err)
	}
	free0 := st.FreeGPUsOnMachine(0)
	if len(free0) != 2 {
		t.Fatalf("machine 0 free = %v", free0)
	}
	if got := len(st.FreeGPUsOnMachine(1)); got != 4 {
		t.Fatalf("machine 1 free = %d", got)
	}
	if used := st.UsedGPUsOnMachine(0); len(used) != 2 {
		t.Fatalf("machine 0 used = %v", used)
	}
	if jobs := st.JobsOnMachine(0); len(jobs) != 1 || jobs[0] != "j1" {
		t.Fatalf("jobs on machine 0 = %v", jobs)
	}
	if jobs := st.JobsOnMachine(1); len(jobs) != 0 {
		t.Fatalf("jobs on machine 1 = %v", jobs)
	}
	if ms := st.MachinesOf([]int{0, 5}); len(ms) != 2 {
		t.Fatalf("machines of cross allocation = %v", ms)
	}
}

func TestFragmentationEq5(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	// Empty cluster: every socket fully free -> ω = 1.
	if got := st.Fragmentation(); got != 1 {
		t.Fatalf("empty fragmentation = %v", got)
	}
	// One GPU taken on socket 0: (0.5 + 1.0)/2 = 0.75.
	if err := st.Allocate("j1", []int{0}, 0, traits()); err != nil {
		t.Fatal(err)
	}
	if got := st.Fragmentation(); got != 0.75 {
		t.Fatalf("fragmentation = %v, want 0.75", got)
	}
	// FragmentationAfter previews without mutating.
	if got := st.FragmentationAfter([]int{1}); got != 0.5 {
		t.Fatalf("after = %v, want 0.5", got)
	}
	if got := st.Fragmentation(); got != 0.75 {
		t.Fatal("FragmentationAfter mutated state")
	}
	// Fully allocated machine: ω = 0.
	if err := st.Allocate("j2", []int{1, 2, 3}, 0, traits()); err != nil {
		t.Fatal(err)
	}
	if got := st.Fragmentation(); got != 0 {
		t.Fatalf("full fragmentation = %v", got)
	}
}

func TestFragmentationBoundsProperty(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	f := func(mask uint8) bool {
		st := NewState(topo)
		for pos := 0; pos < 8; pos++ {
			if mask&(1<<pos) != 0 {
				if err := st.Allocate(string(rune('a'+pos)), []int{pos}, 0, traits()); err != nil {
					return false
				}
			}
		}
		w := st.Fragmentation()
		return w >= 0 && w <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusBandwidthAccounting(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	cap0 := st.FreeBusBandwidth(0)
	if cap0 != st.BusCapacity() {
		t.Fatalf("initial free bandwidth = %v", cap0)
	}
	if err := st.Allocate("j1", []int{0, 2}, 10, traits()); err != nil {
		t.Fatal(err)
	}
	if got := st.FreeBusBandwidth(0); math.Abs(got-(cap0-10)) > 1e-9 {
		t.Fatalf("free bandwidth after alloc = %v", got)
	}
	if err := st.Release("j1"); err != nil {
		t.Fatal(err)
	}
	if got := st.FreeBusBandwidth(0); math.Abs(got-cap0) > 1e-9 {
		t.Fatalf("free bandwidth after release = %v", got)
	}
}

func TestBusBandwidthSpansMachines(t *testing.T) {
	st := NewState(topology.Cluster(2, topology.KindMinsky))
	if err := st.Allocate("j1", []int{3, 4}, 7, traits()); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		if got := st.BusCapacity() - st.FreeBusBandwidth(m); math.Abs(got-7) > 1e-9 {
			t.Fatalf("machine %d committed = %v", m, got)
		}
	}
}

func TestSetBusCapacity(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	st.SetBusCapacity(100)
	if st.BusCapacity() != 100 || st.FreeBusBandwidth(0) != 100 {
		t.Fatal("SetBusCapacity not applied")
	}
}

func TestUtilization(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	if st.Utilization() != 0 {
		t.Fatal("empty utilization nonzero")
	}
	if err := st.Allocate("j1", []int{0, 1}, 0, traits()); err != nil {
		t.Fatal(err)
	}
	if st.Utilization() != 0.5 {
		t.Fatalf("utilization = %v", st.Utilization())
	}
}

func TestJobsSorted(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	_ = st.Allocate("zeta", []int{0}, 0, traits())
	_ = st.Allocate("alpha", []int{1}, 0, traits())
	jobs := st.Jobs()
	if len(jobs) != 2 || jobs[0] != "alpha" || jobs[1] != "zeta" {
		t.Fatalf("jobs = %v", jobs)
	}
}

func TestCloneIndependence(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	_ = st.Allocate("j1", []int{0}, 3, traits())
	c := st.Clone()
	if err := c.Allocate("j2", []int{1}, 2, traits()); err != nil {
		t.Fatal(err)
	}
	if st.Owner(1) != "" {
		t.Fatal("clone mutation leaked to original")
	}
	if err := c.Release("j1"); err != nil {
		t.Fatal(err)
	}
	if st.Owner(0) != "j1" {
		t.Fatal("clone release leaked to original")
	}
	if c.Allocation("j1") != nil {
		t.Fatal("clone release failed")
	}
}

func TestAllocationGPUsSorted(t *testing.T) {
	st := NewState(topology.Power8Minsky())
	if err := st.Allocate("j1", []int{3, 0}, 0, traits()); err != nil {
		t.Fatal(err)
	}
	a := st.Allocation("j1")
	if a.GPUs[0] != 0 || a.GPUs[1] != 3 {
		t.Fatalf("GPUs not sorted: %v", a.GPUs)
	}
}
