package cluster

import (
	"fmt"
	"sort"
	"testing"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func dedupSorted(gpus []int) []int {
	sort.Ints(gpus)
	out := gpus[:0]
	for i, g := range gpus {
		if i == 0 || g != gpus[i-1] {
			out = append(out, g)
		}
	}
	return out
}

func jobClass(op int) jobgraph.BatchClass { return jobgraph.ClassOfSize(1 << (op % 8)) }

func jobName(n int) string { return fmt.Sprintf("fz%04d", n) }

func fpState(t *testing.T, mix string) *State {
	t.Helper()
	specs, err := topology.ParseMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.HeterogeneousCluster(specs)
	if err != nil {
		t.Fatal(err)
	}
	return NewState(topo)
}

// replayFingerprints rebuilds s's allocations on a fresh state and
// returns its fingerprints — the from-scratch answer the incrementally
// maintained one must always match.
func replayFingerprints(t *testing.T, s *State) []string {
	t.Helper()
	fresh := NewState(s.Topology())
	fresh.SetBusCapacity(s.BusCapacity())
	for _, id := range s.Jobs() {
		a := s.Allocation(id)
		if err := fresh.Allocate(id, a.GPUs, a.Bandwidth, a.Traits); err != nil {
			t.Fatalf("replaying %s: %v", id, err)
		}
	}
	out := make([]string, s.Topology().NumMachines())
	for m := range out {
		out[m] = fresh.MachineFingerprint(m)
	}
	return out
}

func checkFingerprints(t *testing.T, s *State, context string) {
	t.Helper()
	want := replayFingerprints(t, s)
	for m := range want {
		if got := s.MachineFingerprint(m); got != want[m] {
			t.Fatalf("%s: machine %d incremental fingerprint diverged from scratch recompute\n inc:     %q\n scratch: %q",
				context, m, got, want[m])
		}
	}
}

func TestMachineFingerprintIncremental(t *testing.T) {
	s := fpState(t, "minsky:2+minsky-1g:1+dgx1:1")
	tr := perfmodel.Traits{Model: perfmodel.AlexNet, Class: 1, GPUs: 2, Mode: perfmodel.DataParallel}

	// Force the lazy build before any mutation so the dirty-marking path
	// (not just first-touch recomputation) is what the test exercises.
	for m := 0; m < s.Topology().NumMachines(); m++ {
		s.MachineFingerprint(m)
	}

	if err := s.Allocate("a", []int{0, 1}, 1, tr); err != nil {
		t.Fatal(err)
	}
	checkFingerprints(t, s, "after first allocate")

	// A job spanning machines dirties each of them.
	g2 := s.Topology().GPUsOfMachine(2)
	g3 := s.Topology().GPUsOfMachine(3)
	if err := s.Allocate("wide", []int{g2[0], g3[0]}, 1, tr); err != nil {
		t.Fatal(err)
	}
	checkFingerprints(t, s, "after cross-machine allocate")

	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	checkFingerprints(t, s, "after release")

	// An untouched machine's fingerprint must be recomputation-stable.
	before := s.MachineFingerprint(1)
	if err := s.Allocate("b", []int{g3[1]}, 1, tr); err != nil {
		t.Fatal(err)
	}
	if got := s.MachineFingerprint(1); got != before {
		t.Fatalf("machine 1 fingerprint moved without a local change:\n%q\n%q", before, got)
	}
}

func TestFingerprintCloneAndCopyFrom(t *testing.T) {
	s := fpState(t, "minsky:2")
	tr := perfmodel.Traits{Model: perfmodel.GoogLeNet, Class: 2, GPUs: 2, Mode: perfmodel.DataParallel}
	if err := s.Allocate("a", []int{0, 1}, 1, tr); err != nil {
		t.Fatal(err)
	}
	s.MachineFingerprint(0)

	c := s.Clone()
	for m := 0; m < 2; m++ {
		if c.MachineFingerprint(m) != s.MachineFingerprint(m) {
			t.Fatalf("clone fingerprint differs on machine %d", m)
		}
	}
	// Mutating the clone must not leak into the source.
	if err := c.Release("a"); err != nil {
		t.Fatal(err)
	}
	checkFingerprints(t, c, "mutated clone")
	checkFingerprints(t, s, "source after clone mutation")

	// CopyFrom resets the clone back to the source, fingerprints included.
	c.CopyFrom(s)
	if c.FragSum() != s.FragSum() || c.FreeGPUCount() != s.FreeGPUCount() {
		t.Fatal("CopyFrom missed scalar state")
	}
	checkFingerprints(t, c, "after CopyFrom")
	if err := c.Release("a"); err != nil {
		t.Fatal(err)
	}
	if s.Allocation("a") == nil {
		t.Fatal("CopyFrom shared mutable allocation bookkeeping with the source")
	}
	checkFingerprints(t, s, "source after CopyFrom+mutation")
}

// FuzzShapeFingerprint drives random allocate/release sequences over
// mixed (healthy, degraded, heterogeneous) fleets and checks the
// fingerprint soundness invariant: the incrementally maintained
// fingerprint of every machine always equals the from-scratch
// fingerprint of a fresh state holding the same allocations. A
// divergence here is exactly a placement-cache correctness bug — a key
// that misdescribes its state.
func FuzzShapeFingerprint(f *testing.F) {
	f.Add("minsky:2+minsky-1g:1+dgx1:1", []byte{0, 2, 1, 3, 0x80, 7, 0, 1})
	f.Add("minsky:3", []byte{4, 4, 4, 0x81})
	f.Add("dgx1-2g:2+pcie:1", []byte{9, 0, 0x80, 3, 3})
	f.Fuzz(func(t *testing.T, mix string, ops []byte) {
		specs, err := topology.ParseMix(mix)
		if err != nil {
			t.Skip()
		}
		machines := 0
		for _, sp := range specs {
			machines += sp.Count
		}
		if machines == 0 || machines > 8 {
			t.Skip()
		}
		topo, err := topology.HeterogeneousCluster(specs)
		if err != nil {
			t.Skip()
		}
		s := NewState(topo)
		for m := 0; m < topo.NumMachines(); m++ {
			s.MachineFingerprint(m) // build eagerly; mutations must dirty correctly
		}
		next := 0
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			if op&0x80 != 0 {
				// Release the job selected by the low bits, if any.
				ids := s.Jobs()
				if len(ids) == 0 {
					continue
				}
				if err := s.Release(ids[int(op&0x7f)%len(ids)]); err != nil {
					t.Fatal(err)
				}
				continue
			}
			// Allocate 1-3 GPUs starting at a free-list offset, with traits
			// derived from the op byte so resident blocks vary.
			free := s.FreeGPUs()
			if len(free) == 0 {
				continue
			}
			n := 1 + int(op)%3
			if n > len(free) {
				n = len(free)
			}
			start := (int(op) / 3) % len(free)
			gpus := make([]int, 0, n)
			for k := 0; k < n; k++ {
				gpus = append(gpus, free[(start+k*2)%len(free)])
			}
			gpus = dedupSorted(gpus)
			tr := perfmodel.Traits{
				Model: perfmodel.NN(int(op) % 3),
				Class: jobClass(int(op)),
				GPUs:  len(gpus),
				Mode:  perfmodel.Parallelism(int(op/16) % 2),
			}
			id := jobName(next)
			next++
			if err := s.Allocate(id, gpus, float64(int(op)%5), tr); err != nil {
				t.Fatal(err)
			}
		}
		want := replayFingerprints(t, s)
		for m := range want {
			if got := s.MachineFingerprint(m); got != want[m] {
				t.Fatalf("machine %d: incremental %q != scratch %q", m, got, want[m])
			}
		}
	})
}
