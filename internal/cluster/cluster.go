// Package cluster tracks the runtime allocation state of a physical
// topology: which GPUs belong to which jobs, how much of each machine's
// shared bus bandwidth is committed, and the resource-fragmentation metric
// of Eq. 5. Jobs in this system never share a GPU ("sharing here means
// different applications get different sets of GPUs", §1), so allocation is
// exclusive per GPU.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

// Allocation records the placement of one job.
type Allocation struct {
	JobID     string
	GPUs      []int   // GPU positions in the topology
	Bandwidth float64 // GB/s of shared-bus demand committed on placement
	// Traits carries the interference-relevant summary of the job so
	// later placement decisions can predict co-location slowdowns
	// against the jobs already running (§4.2).
	Traits perfmodel.Traits
}

// State is the mutable allocation state over an immutable topology.
// It is not safe for concurrent mutation; the scheduler serializes access.
type State struct {
	topo   *topology.Topology
	owner  []string // GPU position -> job ID, "" when free
	allocs map[string]*Allocation
	// busCapacity is the per-machine shared-bus capacity (GB/s) used for
	// the t_bw <= p_bw constraint (§4.3). Two X-Bus-connected sockets give
	// the default.
	busCapacity float64
	busUsed     map[int]float64 // machine -> committed GB/s

	// Incremental bookkeeping so large-cluster simulations avoid full
	// scans: free GPUs per machine, the Eq. 5 fragmentation sum, and
	// lazily recomputed per-machine gauges (largest free-GPU count on one
	// machine, count of machines with any free GPU).
	freeOnMachine map[int]int
	freeTotal     int
	fragSum       float64 // Σ over sockets of freeGPUs/totalGPUs
	socketCount   int
	maxFree       int
	freeMachines  int
	maxFreeDirty  bool

	// epoch is a monotonic version counter bumped by every Allocate and
	// Release. A placement attempt is a pure function of the state, so a
	// scheduler can memoize "job X could not be placed at epoch E" and
	// skip re-evaluating X until the epoch moves — the version-gated
	// rescheduling that keeps scenario-2 queue depths cheap.
	epoch uint64

	// shapeStatic caches the topology's per-machine static shape strings
	// (topology.MachineShape), built once on the first fingerprint request
	// and shared read-only between clones. fp holds the lazily maintained
	// per-machine placement fingerprints for the placement-decision cache:
	// "" marks a machine dirty, Allocate/Release invalidate only the
	// machines whose GPUs they touch (same lazy style as FreeMachines),
	// and MachineFingerprint recomputes on demand. Fingerprints are never
	// empty by construction, so "" is unambiguous.
	shapeStatic []string
	fp          []string
}

// NewState returns an empty allocation state for the topology.
func NewState(topo *topology.Topology) *State {
	s := &State{
		topo:          topo,
		owner:         make([]string, topo.NumGPUs()),
		allocs:        make(map[string]*Allocation),
		busCapacity:   2 * topology.BandwidthXBus,
		busUsed:       make(map[int]float64),
		freeOnMachine: make(map[int]int),
	}
	for m := 0; m < topo.NumMachines(); m++ {
		k := len(topo.GPUsOfMachine(m))
		s.freeOnMachine[m] = k
		s.freeTotal += k
		if k > s.maxFree {
			s.maxFree = k
		}
		if k > 0 {
			s.freeMachines++
		}
		s.socketCount += len(topo.Sockets(m))
	}
	s.fragSum = float64(s.socketCount) // every socket fully free
	return s
}

// Topology returns the underlying physical topology.
func (s *State) Topology() *topology.Topology { return s.topo }

// SetBusCapacity overrides the per-machine shared-bus capacity (GB/s).
func (s *State) SetBusCapacity(gbs float64) { s.busCapacity = gbs }

// BusCapacity returns the per-machine shared-bus capacity (GB/s).
func (s *State) BusCapacity() float64 { return s.busCapacity }

// Owner returns the job occupying the GPU at pos ("" when free).
func (s *State) Owner(pos int) string { return s.owner[pos] }

// FreeGPUs returns the positions of all unallocated GPUs, ascending.
func (s *State) FreeGPUs() []int {
	return s.AppendFreeGPUs(nil)
}

// AppendFreeGPUs appends the positions of all unallocated GPUs
// (ascending) to buf and returns it — the allocation-free variant of
// FreeGPUs for schedulers with a reusable buffer.
func (s *State) AppendFreeGPUs(buf []int) []int {
	for pos, o := range s.owner {
		if o == "" {
			buf = append(buf, pos)
		}
	}
	return buf
}

// FreeGPUCount returns the number of unallocated GPUs in O(1).
func (s *State) FreeGPUCount() int { return s.freeTotal }

// FreeGPUsOnMachine returns the free GPU positions of machine m.
func (s *State) FreeGPUsOnMachine(m int) []int {
	return s.AppendFreeGPUsOnMachine(nil, m)
}

// AppendFreeGPUsOnMachine appends machine m's free GPU positions
// (ascending) to buf and returns it.
func (s *State) AppendFreeGPUsOnMachine(buf []int, m int) []int {
	for _, pos := range s.topo.GPUsOfMachine(m) {
		if s.owner[pos] == "" {
			buf = append(buf, pos)
		}
	}
	return buf
}

// UsedGPUsOnMachine returns the allocated GPU positions of machine m.
func (s *State) UsedGPUsOnMachine(m int) []int {
	var out []int
	for _, pos := range s.topo.GPUsOfMachine(m) {
		if s.owner[pos] != "" {
			out = append(out, pos)
		}
	}
	return out
}

// FreeBusBandwidth returns the uncommitted shared-bus bandwidth of machine
// m — the p_bw side of the constraint t_bw <= p_bw.
func (s *State) FreeBusBandwidth(m int) float64 {
	return s.busCapacity - s.busUsed[m]
}

// Allocate assigns the given GPUs to jobID, committing the stated
// shared-bus bandwidth on every machine the job touches and recording the
// job's interference traits. It fails if any GPU is already owned, the job
// already has an allocation, or a position is out of range.
func (s *State) Allocate(jobID string, gpus []int, bandwidth float64, traits perfmodel.Traits) error {
	if jobID == "" {
		return fmt.Errorf("cluster: empty job ID")
	}
	if _, exists := s.allocs[jobID]; exists {
		return fmt.Errorf("cluster: job %s already allocated", jobID)
	}
	if len(gpus) == 0 {
		return fmt.Errorf("cluster: job %s requests no GPUs", jobID)
	}
	seen := map[int]bool{}
	for _, pos := range gpus {
		if pos < 0 || pos >= len(s.owner) {
			return fmt.Errorf("cluster: GPU position %d out of range", pos)
		}
		if seen[pos] {
			return fmt.Errorf("cluster: duplicate GPU position %d", pos)
		}
		seen[pos] = true
		if s.owner[pos] != "" {
			return fmt.Errorf("cluster: GPU %d already owned by %s", pos, s.owner[pos])
		}
	}
	alloc := &Allocation{JobID: jobID, GPUs: append([]int(nil), gpus...), Bandwidth: bandwidth, Traits: traits}
	sort.Ints(alloc.GPUs)
	for _, pos := range alloc.GPUs {
		s.owner[pos] = jobID
		nd := s.topo.GPU(pos)
		s.freeOnMachine[nd.Machine]--
		s.freeTotal--
		s.fragSum -= 1 / float64(len(s.topo.GPUsOfSocket(nd.Machine, nd.Socket)))
		if s.fp != nil {
			s.fp[nd.Machine] = ""
		}
	}
	for _, m := range s.machinesOf(alloc.GPUs) {
		s.busUsed[m] += bandwidth
	}
	s.allocs[jobID] = alloc
	s.maxFreeDirty = true
	s.epoch++
	return nil
}

// Release frees the allocation of jobID. Releasing an unknown job is an
// error (it indicates a simulator bookkeeping bug).
func (s *State) Release(jobID string) error {
	alloc, ok := s.allocs[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %s has no allocation", jobID)
	}
	for _, pos := range alloc.GPUs {
		s.owner[pos] = ""
		nd := s.topo.GPU(pos)
		s.freeOnMachine[nd.Machine]++
		s.freeTotal++
		s.fragSum += 1 / float64(len(s.topo.GPUsOfSocket(nd.Machine, nd.Socket)))
		if s.fp != nil {
			s.fp[nd.Machine] = ""
		}
	}
	for _, m := range s.machinesOf(alloc.GPUs) {
		s.busUsed[m] -= alloc.Bandwidth
		if s.busUsed[m] < 1e-9 {
			delete(s.busUsed, m)
		}
	}
	delete(s.allocs, jobID)
	s.maxFreeDirty = true
	s.epoch++
	return nil
}

// Epoch returns the state's monotonic version: it changes exactly when an
// Allocate or Release mutates the allocation state. Two placement
// evaluations at the same epoch see the same state and therefore decide
// identically.
func (s *State) Epoch() uint64 { return s.epoch }

// Allocation returns the allocation of jobID, or nil.
func (s *State) Allocation(jobID string) *Allocation {
	return s.allocs[jobID]
}

// Jobs returns the IDs of all allocated jobs, sorted.
func (s *State) Jobs() []string {
	out := make([]string, 0, len(s.allocs))
	for id := range s.allocs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// JobsOnMachine returns the IDs of jobs with at least one GPU on machine
// m, sorted.
func (s *State) JobsOnMachine(m int) []string {
	seen := map[string]bool{}
	for _, pos := range s.topo.GPUsOfMachine(m) {
		if o := s.owner[pos]; o != "" && !seen[o] {
			seen[o] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// machinesOf returns the distinct machine indices spanned by positions.
func (s *State) machinesOf(gpus []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, pos := range gpus {
		m := s.topo.GPU(pos).Machine
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// MachinesOf exposes machinesOf for schedulers and metrics.
func (s *State) MachinesOf(gpus []int) []int { return s.machinesOf(gpus) }

// Fragmentation implements Eq. 5: the average over all sockets of the
// fraction of free GPUs per socket. 1 means the cluster is empty, 0 means
// every GPU is allocated. Maintained incrementally, so it is O(1).
func (s *State) Fragmentation() float64 {
	if s.socketCount == 0 {
		return 0
	}
	return s.fragSum / float64(s.socketCount)
}

// FragSum returns the raw Eq. 5 numerator: Σ over sockets of the free
// fraction, before the division by the socket count. The placement cache
// keys on its exact bits rather than on Fragmentation() — the division
// can round two distinct sums onto the same quotient, and a placement
// evaluation reads the sum (through FragmentationAfter), not the
// quotient.
func (s *State) FragSum() float64 { return s.fragSum }

// FragmentationAfter returns Eq. 5 evaluated as if the given (free,
// distinct) GPUs were additionally allocated — the ω_d the utility
// function scores for a candidate placement. O(len(gpus)).
func (s *State) FragmentationAfter(gpus []int) float64 {
	if s.socketCount == 0 {
		return 0
	}
	delta := 0.0
	for _, pos := range gpus {
		nd := s.topo.GPU(pos)
		delta += 1 / float64(len(s.topo.GPUsOfSocket(nd.Machine, nd.Socket)))
	}
	frag := (s.fragSum - delta) / float64(s.socketCount)
	if frag < 0 {
		frag = 0
	}
	return frag
}

// FreeCountOnMachine returns the number of free GPUs on machine m in O(1).
func (s *State) FreeCountOnMachine(m int) int { return s.freeOnMachine[m] }

// refreshFree recomputes the lazy per-machine gauges (largest free
// block, machines with any free GPU) after allocations changed.
func (s *State) refreshFree() {
	if !s.maxFreeDirty {
		return
	}
	s.maxFree, s.freeMachines = 0, 0
	for _, k := range s.freeOnMachine {
		if k > s.maxFree {
			s.maxFree = k
		}
		if k > 0 {
			s.freeMachines++
		}
	}
	s.maxFreeDirty = false
}

// MaxFreeGPUs returns the largest number of free GPUs on any single
// machine — the availableResources(P) gate of Algorithm 1. Lazily
// recomputed after allocations change.
func (s *State) MaxFreeGPUs() int {
	s.refreshFree()
	return s.maxFree
}

// FreeMachines returns the number of machines with at least one free
// GPU — the seats-now bound for anti-collocated jobs (one machine per
// task). Lazily recomputed alongside MaxFreeGPUs.
func (s *State) FreeMachines() int {
	s.refreshFree()
	return s.freeMachines
}

// MachineFingerprint returns machine m's canonical placement
// fingerprint: the static topology.MachineShape plus everything a
// placement evaluation can observe about the machine's current
// occupancy, expressed positionally over the machine's free-GPU list
// (ascending) so that two machines with equal fingerprints admit an
// order-preserving free-GPU relabeling under which every placement
// input is identical —
//
//   - the free count and the pairwise distance submatrix of the free
//     slots (DRB's affinity graph and all comm-cost terms),
//   - each free slot's socket size (the FragmentationAfter delta) and
//     root-attachment distance (the per-slot component of every
//     cross-machine distance; the machine-level component is in the
//     static shape),
//   - one block per co-resident job, in sorted-ID order (the order
//     predictInterference sums contributions in), carrying the job's
//     interference traits and a bitmask over the free slots marking
//     which of them share a socket with that job's GPUs here (the
//     SameSocket locality upgrade).
//
// Job IDs themselves are deliberately excluded: only the block order
// matters. Maintained lazily — Allocate/Release dirty only the machines
// they touch, recomputation is O(free² + jobs·free) on a single machine.
func (s *State) MachineFingerprint(m int) string {
	if s.shapeStatic == nil {
		shapes := make([]string, s.topo.NumMachines())
		for i := range shapes {
			shapes[i] = s.topo.MachineShape(i)
		}
		s.shapeStatic = shapes
	}
	if s.fp == nil {
		s.fp = make([]string, s.topo.NumMachines())
	}
	if s.fp[m] == "" {
		s.fp[m] = s.computeFingerprint(m)
	}
	return s.fp[m]
}

// computeFingerprint builds machine m's fingerprint from scratch.
func (s *State) computeFingerprint(m int) string {
	var sb strings.Builder
	sb.WriteString(s.shapeStatic[m])
	var freeBuf [8]int
	free := s.AppendFreeGPUsOnMachine(freeBuf[:0], m)
	fmt.Fprintf(&sb, "|f%d", len(free))
	for i, a := range free {
		for _, b := range free[i+1:] {
			fmt.Fprintf(&sb, ",%g", s.topo.Distance(a, b))
		}
	}
	sb.WriteString(";s")
	for _, pos := range free {
		nd := s.topo.GPU(pos)
		fmt.Fprintf(&sb, ",%d", len(s.topo.GPUsOfSocket(nd.Machine, nd.Socket)))
	}
	sb.WriteString(";r")
	for _, pos := range free {
		fmt.Fprintf(&sb, ",%g", s.topo.RootDistance(pos))
	}
	for _, id := range s.JobsOnMachine(m) {
		alloc := s.allocs[id]
		t := alloc.Traits
		fmt.Fprintf(&sb, ";j%d.%d.%d.%d:", int(t.Model), int(t.Class), t.GPUs, int(t.Mode))
		for _, pos := range free {
			share := byte('0')
			for _, og := range alloc.GPUs {
				if s.topo.SameSocket(pos, og) {
					share = '1'
					break
				}
			}
			sb.WriteByte(share)
		}
	}
	return sb.String()
}

// Utilization returns the fraction of GPUs currently allocated.
func (s *State) Utilization() float64 {
	if len(s.owner) == 0 {
		return 0
	}
	used := 0
	for _, o := range s.owner {
		if o != "" {
			used++
		}
	}
	return float64(used) / float64(len(s.owner))
}

// Clone returns a deep copy of the allocation state sharing the topology.
// The scheduler uses clones for what-if evaluation during placement.
func (s *State) Clone() *State {
	c := &State{
		topo:          s.topo,
		owner:         append([]string(nil), s.owner...),
		allocs:        make(map[string]*Allocation, len(s.allocs)),
		busCapacity:   s.busCapacity,
		busUsed:       make(map[int]float64, len(s.busUsed)),
		freeOnMachine: make(map[int]int, len(s.freeOnMachine)),
		freeTotal:     s.freeTotal,
		fragSum:       s.fragSum,
		socketCount:   s.socketCount,
		maxFree:       s.maxFree,
		freeMachines:  s.freeMachines,
		maxFreeDirty:  s.maxFreeDirty,
		epoch:         s.epoch,
		shapeStatic:   s.shapeStatic, // immutable once built; shared
	}
	if s.fp != nil {
		c.fp = append([]string(nil), s.fp...)
	}
	for m, v := range s.freeOnMachine {
		c.freeOnMachine[m] = v
	}
	for id, a := range s.allocs {
		c.allocs[id] = &Allocation{
			JobID:     a.JobID,
			GPUs:      append([]int(nil), a.GPUs...),
			Bandwidth: a.Bandwidth,
			Traits:    a.Traits,
		}
	}
	for m, v := range s.busUsed {
		c.busUsed[m] = v
	}
	return c
}

// CopyFrom resets s to a copy of src, reusing s's buffers — the
// allocation-free sibling of Clone for pooled what-if scratch states
// (the preemption victim search resets one scratch clone per candidate
// instead of cloning fresh each time). Both states must share the same
// topology. *Allocation values are shared, not copied: an Allocation is
// immutable once created (Allocate builds it, Release only drops the
// map entry), so a scratch state releasing a shared allocation never
// mutates the source's view.
func (s *State) CopyFrom(src *State) {
	if s.topo != src.topo {
		panic("cluster: CopyFrom across topologies")
	}
	copy(s.owner, src.owner)
	clear(s.allocs)
	for id, a := range src.allocs {
		s.allocs[id] = a
	}
	s.busCapacity = src.busCapacity
	clear(s.busUsed)
	for m, v := range src.busUsed {
		s.busUsed[m] = v
	}
	clear(s.freeOnMachine)
	for m, v := range src.freeOnMachine {
		s.freeOnMachine[m] = v
	}
	s.freeTotal = src.freeTotal
	s.fragSum = src.fragSum
	s.socketCount = src.socketCount
	s.maxFree = src.maxFree
	s.freeMachines = src.freeMachines
	s.maxFreeDirty = src.maxFreeDirty
	s.epoch = src.epoch
	s.shapeStatic = src.shapeStatic
	if src.fp == nil {
		s.fp = nil
	} else {
		s.fp = append(s.fp[:0], src.fp...)
	}
}
