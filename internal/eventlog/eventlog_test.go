package eventlog

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gputopo/internal/serveapi"
)

func openCollect(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	var recs []Record
	l, err := Open(path, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func submitRec(id string, at float64) Record {
	return Record{Type: TypeSubmit, Time: at, Job: &serveapi.JobSpec{
		JobRequest: serveapi.JobRequest{ID: id, Model: "AlexNet", BatchSize: 1, GPUs: 1},
		Arrival:    at,
	}}
}

// TestAppendReplayRoundTrip: records written in one session replay
// identically in the next.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, recs := openCollect(t, path)
	if len(recs) != 0 || l.Records() != 0 {
		t.Fatalf("fresh log not empty: %d records", len(recs))
	}
	want := []Record{
		submitRec("a", 1),
		{Type: TypeRound, Time: 1},
		{Type: TypePlace, Time: 1, Decision: &serveapi.DecisionRecord{Seq: 1, JobID: "a", Placed: true, GPUs: []int{0}}},
		{Type: TypeRelease, Time: 2, JobID: "a"},
		{Type: TypeRound, Time: 2},
		{Type: TypeWithdraw, Time: 3, JobID: "b"},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollect(t, path)
	defer l2.Close()
	if l2.TruncatedTail {
		t.Fatal("clean log reported a truncated tail")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Time != want[i].Time || got[i].JobID != want[i].JobID {
			t.Fatalf("record %d drifted: %+v vs %+v", i, got[i], want[i])
		}
	}
	if got[0].Job == nil || got[0].Job.ID != "a" || got[2].Decision == nil || got[2].Decision.GPUs[0] != 0 {
		t.Fatalf("payloads drifted: %+v", got)
	}
	if l2.Records() != len(want) || l2.SinceRewrite() != len(want) {
		t.Fatalf("counters: records=%d since=%d", l2.Records(), l2.SinceRewrite())
	}
}

// TestTruncatedTailTolerated chops the file at every byte boundary
// inside the final record: each prefix must open cleanly, replay all
// complete records, report the tail truncation, and append correctly
// afterwards.
func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	l, _ := openCollect(t, ref)
	for i, r := range []Record{submitRec("a", 1), submitRec("b", 2), submitRec("c", 3)} {
		if err := l.Append(r); err != nil {
			t.Fatal(i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the third record: two frames in.
	var off int
	for i := 0; i < 2; i++ {
		off += frameHeader + int(binary.LittleEndian.Uint32(data[off:]))
	}
	for cut := off + 1; cut < len(data); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs := openCollect(t, path)
		if !l2.TruncatedTail {
			t.Fatalf("cut at %d: truncated tail not reported", cut)
		}
		if len(recs) != 2 || recs[0].Job.ID != "a" || recs[1].Job.ID != "b" {
			t.Fatalf("cut at %d: replayed %+v", cut, recs)
		}
		// The partial tail must be gone: appending and reopening yields
		// exactly 3 records again.
		if err := l2.Append(submitRec("c2", 4)); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, recs3 := openCollect(t, path)
		if l3.TruncatedTail || len(recs3) != 3 || recs3[2].Job.ID != "c2" {
			t.Fatalf("cut at %d: after repair+append got %+v", cut, recs3)
		}
		l3.Close()
	}
}

// TestMidFileCorruptionFailsLoudly flips one payload byte in the middle
// record: Open must fail with a CRC error, never silently skip.
func TestMidFileCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	l, _ := openCollect(t, path)
	for _, r := range []Record{submitRec("a", 1), submitRec("b", 2), submitRec("c", 3)} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := frameHeader + int(binary.LittleEndian.Uint32(data[0:4]))
	data[firstLen+frameHeader+2] ^= 0xFF // a byte inside record b's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, nil)
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("corruption tolerated: %v", err)
	}
}

// TestCorruptLengthMidFile: garbling a mid-file length prefix (small
// value, frames misalign) must also fail loudly via the CRC.
func TestCorruptLengthMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, _ := openCollect(t, path)
	for _, r := range []Record{submitRec("a", 1), submitRec("b", 2), submitRec("c", 3)} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	firstLen := frameHeader + int(binary.LittleEndian.Uint32(data[0:4]))
	binary.LittleEndian.PutUint32(data[firstLen:], binary.LittleEndian.Uint32(data[firstLen:])-3)
	os.WriteFile(path, data, 0o644)
	if _, err := Open(path, nil); err == nil {
		t.Fatal("misaligned frames tolerated")
	}
}

// TestRewriteTruncates: Rewrite leaves exactly the snapshot record;
// subsequent appends land after it and SinceRewrite counts only them.
func TestRewriteTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, _ := openCollect(t, path)
	for i := 0; i < 10; i++ {
		if err := l.Append(submitRec("x", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := Record{Type: TypeSnapshot, Time: 10, Snapshot: &Snapshot{
		ClockSec: 10, DecSeq: 7,
		Running: []RunningJob{{Job: serveapi.JobSpec{JobRequest: serveapi.JobRequest{ID: "x", GPUs: 1}}, GPUs: []int{0}, Bandwidth: 1.5}},
	}}
	if err := l.Rewrite(snap); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 || l.SinceRewrite() != 0 {
		t.Fatalf("after rewrite: records=%d since=%d", l.Records(), l.SinceRewrite())
	}
	if err := l.Append(submitRec("y", 11)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openCollect(t, path)
	defer l2.Close()
	if len(recs) != 2 || recs[0].Type != TypeSnapshot || recs[1].Job.ID != "y" {
		t.Fatalf("after rewrite+append replayed %+v", recs)
	}
	if recs[0].Snapshot == nil || recs[0].Snapshot.DecSeq != 7 || len(recs[0].Snapshot.Running) != 1 {
		t.Fatalf("snapshot payload drifted: %+v", recs[0].Snapshot)
	}
	// A leading snapshot does not count toward the replay bound.
	if l2.SinceRewrite() != 1 {
		t.Fatalf("SinceRewrite after reopen = %d, want 1", l2.SinceRewrite())
	}
}

// TestSyncIdempotent: Sync with nothing appended is a no-op; Append
// marks dirty again.
func TestSyncIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, _ := openCollect(t, path)
	defer l.Close()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(submitRec("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.dirty {
		t.Fatal("dirty after sync")
	}
}

// TestApplyErrorAborts: an apply callback error aborts Open.
func TestApplyErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, _ := openCollect(t, path)
	l.Append(submitRec("a", 1))
	l.Close()
	_, err := Open(path, func(Record) error { return os.ErrInvalid })
	if err == nil {
		t.Fatal("apply error swallowed")
	}
}
