package eventlog

import "gputopo/internal/serveapi"

// Record types. The log is event-granular: submits, releases and
// withdrawals record what the server accepted; a round record marks
// every Schedule call the serving loop ran (so replay batches exactly
// like live traffic did); place records journal the resulting
// placements for divergence checking; a snapshot record — always alone,
// always first — summarizes everything truncated before it.
const (
	// TypeSubmit: a job was accepted into the scheduler. Job carries the
	// fully resolved spec including the stamped arrival.
	TypeSubmit = "submit"
	// TypePlace: a scheduling round placed a job. Decision carries the
	// ring record (seq, GPUs, utility). Replay recomputes placements by
	// re-driving the core, then verifies them against these records —
	// any divergence fails recovery loudly.
	TypePlace = "place"
	// TypeEvict: a scheduling round preempted a running job — Decision
	// carries the eviction notice (victim ID, freed GPUs, preemptor).
	// Like TypePlace, replay recomputes evictions by re-driving the core
	// and verifies them against these records.
	TypeEvict = "evict"
	// TypeRelease: a running job was released; its GPUs freed.
	TypeRelease = "release"
	// TypeWithdraw: a still-queued job was withdrawn.
	TypeWithdraw = "withdraw"
	// TypeRound: the serving loop ran one Schedule call over the batch
	// of events since the previous round record.
	TypeRound = "round"
	// TypeSnapshot: full state summary; Rewrite leaves exactly one as
	// the log's first record.
	TypeSnapshot = "snapshot"
)

// Record is one event-log entry. Exactly the fields for its Type are
// set; the rest stay zero and omitted from the JSON.
type Record struct {
	Type string  `json:"type"`
	Time float64 `json:"time_s,omitempty"`
	// Job is the submitted job (TypeSubmit).
	Job *serveapi.JobSpec `json:"job,omitempty"`
	// JobID names the affected job (TypeRelease, TypeWithdraw).
	JobID string `json:"job_id,omitempty"`
	// Decision is the placement the round produced (TypePlace).
	Decision *serveapi.DecisionRecord `json:"decision,omitempty"`
	// Snapshot is the full-state summary (TypeSnapshot).
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// Snapshot captures everything a restarted server needs that the
// truncated history would have rebuilt: the cluster allocations, the
// wait queue in order, the decision ring, the monotonic decision seq,
// the scheduler's accumulated stats and the clock.
type Snapshot struct {
	// ClockSec is the server clock at the snapshot; the restarted clock
	// resumes from the log's highest timestamp so arrivals stay
	// monotonic across restarts.
	ClockSec float64 `json:"clock_s"`
	// DecSeq is the last assigned decision sequence number.
	DecSeq int `json:"dec_seq"`
	// Stats carries the scheduler counters accumulated before the
	// snapshot (replay adds post-snapshot rounds on top).
	Stats SnapStats `json:"stats"`
	// Running lists the allocated jobs with their exact placements,
	// sorted by job ID (restore order does not matter — allocations are
	// explicit — but determinism keeps snapshots comparable).
	Running []RunningJob `json:"running,omitempty"`
	// Queued lists the waiting jobs in queue order.
	Queued []serveapi.JobSpec `json:"queued,omitempty"`
	// Decisions is the decision ring, oldest first.
	Decisions []serveapi.DecisionRecord `json:"decisions,omitempty"`
}

// RunningJob is one allocated job in a snapshot.
type RunningJob struct {
	Job serveapi.JobSpec `json:"job"`
	// GPUs is the exact allocation to restore.
	GPUs []int `json:"gpus"`
	// Bandwidth is the shared-bus demand (GB/s) committed on placement.
	Bandwidth float64 `json:"bandwidth_gbs"`
}

// SnapStats mirrors schedcore.Stats for the snapshot. Counters are
// deterministic state; the nanosecond totals are carried so the
// restarted server keeps accumulating rather than resetting.
type SnapStats struct {
	Decisions      int   `json:"decisions"`
	Placements     int   `json:"placements"`
	Postponements  int   `json:"postponements"`
	SLOViolations  int   `json:"slo_violations"`
	GateSkips      int   `json:"gate_skips"`
	WakeSkips      int   `json:"wake_skips"`
	Preemptions    int   `json:"preemptions,omitempty"`
	Evictions      int   `json:"evictions,omitempty"`
	DecisionTimeNs int64 `json:"decision_time_ns,omitempty"`
	MaxDecisionNs  int64 `json:"max_decision_ns,omitempty"`
}
