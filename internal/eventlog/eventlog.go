// Package eventlog is toposerve's durability layer: an append-only log
// of length-prefixed, checksummed JSON records (submit / place / release
// / withdraw / round / snapshot) with group-commit fsync batching and
// snapshot + truncate so replay stays bounded.
//
// On-disk framing, per record:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | JSON payload
//
// Crash tolerance follows from the framing: a record is visible only
// once its full frame is on disk, so a crash mid-append leaves a
// truncated tail that Open drops (and truncates away) without error —
// the record never committed. Anything else that fails the CRC or the
// frame arithmetic mid-file is real corruption and fails loudly; a
// scheduler must not silently resurrect from a damaged history.
//
// Append buffers in the OS; Sync issues the fsync. The single-writer
// serving loop appends every record of a request batch and syncs once —
// one fsync amortized over N arrivals (group commit).
package eventlog

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// maxRecord bounds one record's payload (a snapshot of a big cluster is
// comfortably under this); larger length prefixes mid-file are
// corruption, not data.
const maxRecord = 1 << 28 // 256 MiB

const frameHeader = 8 // uint32 length + uint32 crc

// A Log is an open event log. It is not safe for concurrent use — the
// serving loop's single-writer rule covers it.
type Log struct {
	path  string
	f     *os.File
	dirty bool

	records      int   // frames currently in the file
	sinceRewrite int   // records appended since the last Rewrite (or Open)
	bytesSince   int64 // bytes those records occupy on disk (frames included)
	syncs        int   // fsyncs issued (dirty Syncs; no-op Syncs don't count)

	// TruncatedTail reports that Open found (and truncated away) a
	// partial record at the end of the file — the expected aftermath of
	// a crash mid-append, surfaced for operators, not an error.
	TruncatedTail bool
}

// Open opens (creating if absent) the log at path, replays every
// complete record through apply in order, truncates a partial tail
// record if the file ends mid-frame, and positions the log for
// appending. Corruption anywhere before the tail — a CRC mismatch, an
// impossible length, invalid JSON — is a hard error: the caller must
// not serve from a damaged history.
func Open(path string, apply func(Record) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{path: path, f: f}
	if err := l.replay(apply); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replay scans the file from the start, applying complete records and
// truncating a partial tail.
func (l *Log) replay(apply func(Record) error) error {
	info, err := l.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	rd := bufio.NewReader(l.f)
	var offset int64
	var header [frameHeader]byte
	for offset < size {
		if size-offset < frameHeader {
			return l.truncateTail(offset)
		}
		if _, err := io.ReadFull(rd, header[:]); err != nil {
			return fmt.Errorf("eventlog: %s: reading frame header at %d: %w", l.path, offset, err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if int64(length) > size-offset-frameHeader {
			// The frame claims more bytes than the file holds: a crash
			// mid-append (or a corrupted length on the final record —
			// indistinguishable, and equally uncommitted).
			return l.truncateTail(offset)
		}
		if length > maxRecord {
			return fmt.Errorf("eventlog: %s: corrupt record at %d: length %d exceeds limit", l.path, offset, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(rd, payload); err != nil {
			return fmt.Errorf("eventlog: %s: reading record at %d: %w", l.path, offset, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return fmt.Errorf("eventlog: %s: corrupt record at %d: CRC %08x, want %08x", l.path, offset, got, sum)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("eventlog: %s: corrupt record at %d: %v", l.path, offset, err)
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return err
			}
		}
		if l.records > 0 || rec.Type != TypeSnapshot {
			// Everything but a leading snapshot counts toward the replay
			// bound SinceRewrite reports.
			l.sinceRewrite++
			l.bytesSince += frameHeader + int64(length)
		}
		l.records++
		offset += frameHeader + int64(length)
	}
	_, err = l.f.Seek(offset, io.SeekStart)
	return err
}

// truncateTail drops the partial record at offset and leaves the file
// positioned for appending.
func (l *Log) truncateTail(offset int64) error {
	l.TruncatedTail = true
	if err := l.f.Truncate(offset); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	_, err := l.f.Seek(offset, io.SeekStart)
	return err
}

// Append writes one record's frame. The record is durable only after
// the next Sync — callers batch appends and sync once per batch.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("eventlog: marshal %s record: %w", rec.Type, err)
	}
	if err := writeFrame(l.f, payload); err != nil {
		return fmt.Errorf("eventlog: append to %s: %w", l.path, err)
	}
	l.dirty = true
	l.records++
	l.sinceRewrite++
	l.bytesSince += frameHeader + int64(len(payload))
	return nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var header [frameHeader]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Sync flushes appended records to stable storage — the group-commit
// point. A no-op when nothing was appended since the last Sync.
func (l *Log) Sync() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	return nil
}

// Rewrite atomically replaces the whole log with the single snapshot
// record, truncating the history it summarizes: write a temp file,
// fsync it, rename over the log, fsync the directory. Replay after a
// Rewrite is bounded by the records appended since it.
func (l *Log) Rewrite(snapshot Record) error {
	payload, err := json.Marshal(snapshot)
	if err != nil {
		return fmt.Errorf("eventlog: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := writeFrame(tmp, payload); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		return fail(err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	old.Close()
	l.f = f
	l.dirty = false
	l.records = 1
	l.sinceRewrite = 0
	l.bytesSince = 0
	l.syncs++
	return nil
}

// Records returns the number of complete records currently in the file.
func (l *Log) Records() int { return l.records }

// SinceRewrite returns the records appended since the last Rewrite (or
// since Open when never rewritten) — the replay-length bound a caller
// watches to decide when to snapshot.
func (l *Log) SinceRewrite() int { return l.sinceRewrite }

// BytesSinceRewrite returns the on-disk bytes (frames included) those
// SinceRewrite records occupy — the compaction-pressure gauge surfaced
// in /v1/state.
func (l *Log) BytesSinceRewrite() int64 { return l.bytesSince }

// Syncs returns the number of fsyncs the log has issued (group commits
// plus rewrites); Syncs that found nothing dirty are not counted. The
// ratio of appended records to syncs measures group-commit batching.
func (l *Log) Syncs() int { return l.syncs }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the file.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
