package eventlog_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"gputopo/internal/eventlog"
)

// frame encodes one payload in the log's on-disk framing.
func frame(payload string) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE([]byte(payload)))
	copy(buf[8:], payload)
	return buf
}

// FuzzOpen feeds arbitrary bytes to the log's crash-recovery path as a
// pre-existing file. Open must never panic; when it accepts the file,
// the log must be append-ready — one more record and a reopen must
// replay everything cleanly with no truncated tail, because Open's
// contract is that it leaves a committed prefix positioned for writes.
func FuzzOpen(f *testing.F) {
	valid := frame(`{"type":"submit","seq":1}`)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), frame(`{"type":"round","t":0.5}`)...))
	f.Add(append(append([]byte{}, valid...), 0x09, 0x00, 0x00)) // crash tail
	corrupt := append([]byte{}, valid...)
	corrupt[4] ^= 0xff // CRC mismatch
	f.Add(corrupt)
	huge := frame("x")
	binary.LittleEndian.PutUint32(huge[0:4], 1<<30) // impossible length
	f.Add(huge)
	f.Add([]byte(`{"type":"submit"}`)) // raw JSON, no framing

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "events.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		applied := 0
		l, err := eventlog.Open(path, func(eventlog.Record) error {
			applied++
			return nil
		})
		if err != nil {
			return // corruption rejected: the interesting property is no panic
		}
		if l.Records() != applied {
			t.Fatalf("Records()=%d but apply ran %d times", l.Records(), applied)
		}
		if err := l.Append(eventlog.Record{Type: eventlog.TypeRound, Time: 1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, err := eventlog.Open(path, nil)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer l2.Close()
		if l2.TruncatedTail {
			t.Fatal("reopen of a recovered log reported a truncated tail")
		}
		if l2.Records() != applied+1 {
			t.Fatalf("reopen replayed %d records, want %d", l2.Records(), applied+1)
		}
	})
}
