// Package caffesim plays the role of the paper's prototype (§5.1): it
// executes training jobs at single-iteration granularity, the way the real
// system ran Caffe processes and watched them with nvidia-smi. Each
// iteration's duration is drawn from the performance model under the
// contention present when the iteration starts, and the bytes it moves
// over the GPU interconnect are accumulated into fixed sampling windows to
// produce the NVLink bandwidth time series of Figures 5 and 8.
//
// The trace-driven simulator (package simulator) models the same jobs with
// continuous rates. Running both on one scenario and comparing is the
// validation of §5.4 (Figure 9): results agree up to iteration-boundary
// effects, "acceptable when considering the standard deviations."
package caffesim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/stats"
	"gputopo/internal/topology"
)

// Config parameterizes a prototype run.
type Config struct {
	Topology     *topology.Topology
	Policy       sched.Policy
	Weights      core.Weights
	Profiles     *profile.Store
	ComputeScale float64
	// WindowSize is the bandwidth sampling window in seconds (default 1).
	WindowSize float64
	// JitterStddev perturbs each iteration's duration (relative Gaussian),
	// reproducing run-to-run variability; 0 disables.
	JitterStddev float64
	Seed         uint64
}

// BandwidthPoint is one sampling window of a job's interconnect usage.
type BandwidthPoint struct {
	Time float64 // window start (s)
	GBs  float64 // average GB/s over the window
}

// Result extends the simulator's result model with per-job bandwidth
// series — the prototype's nvidia-smi nvlink measurements.
type Result struct {
	simulator.Result
	// Bandwidth maps job ID to its interconnect usage time series.
	Bandwidth map[string][]BandwidthPoint
}

type iterEvent struct {
	time float64
	seq  int
	kind int // 0 = iteration end, 1 = arrival
	id   string
	job  *job.Job
}

type iterHeap []iterEvent

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h iterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x interface{}) { *h = append(*h, x.(iterEvent)) }
func (h *iterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type runningJob struct {
	job       *job.Job
	gpus      []int
	remaining int
	start     float64
	utility   float64
	p2p       bool
	violated  bool
	waited    int // scheduling rounds spent queued before placement
	baseIter  float64
	iterBytes float64 // bytes moved over the interconnect per iteration
}

// Run executes the prototype at iteration granularity.
func Run(cfg Config, jobs []*job.Job) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("caffesim: nil topology")
	}
	if cfg.ComputeScale == 0 {
		cfg.ComputeScale = 1
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 1
	}
	zero := core.Weights{}
	if cfg.Weights == zero {
		cfg.Weights = core.DefaultWeights()
	}
	if cfg.Profiles == nil {
		maxGPUs := cfg.Topology.NumGPUs()
		if maxGPUs > 8 {
			maxGPUs = 8
		}
		cfg.Profiles = profile.Generate(cfg.Topology, maxGPUs)
	}
	mapper, err := core.NewMapper(cfg.Profiles, cfg.Weights)
	if err != nil {
		return nil, err
	}

	st := cluster.NewState(cfg.Topology)
	scheduler := sched.New(cfg.Policy, st, mapper)
	rng := stats.NewRNG(cfg.Seed)

	e := &protoEngine{
		cfg:       cfg,
		scheduler: scheduler,
		running:   map[string]*runningJob{},
		windows:   map[string]map[int]float64{},
		rng:       rng,
	}
	ids := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if ids[j.ID] {
			return nil, fmt.Errorf("caffesim: duplicate job ID %q", j.ID)
		}
		ids[j.ID] = true
		heap.Push(&e.events, iterEvent{time: j.Arrival, seq: e.nextSeq(), kind: 1, job: j})
	}
	if err := e.loop(len(jobs)); err != nil {
		return nil, err
	}

	sort.Slice(e.results, func(i, j int) bool { return e.results[i].Job.ID < e.results[j].Job.ID })
	sort.Slice(e.timeline, func(i, j int) bool {
		if e.timeline[i].Start != e.timeline[j].Start {
			return e.timeline[i].Start < e.timeline[j].Start
		}
		return e.timeline[i].JobID < e.timeline[j].JobID
	})

	res := &Result{
		Result: simulator.Result{
			Policy:     cfg.Policy,
			Jobs:       e.results,
			Makespan:   e.makespan,
			Timeline:   e.timeline,
			SchedStats: scheduler.Stats(),
		},
		Bandwidth: map[string][]BandwidthPoint{},
	}
	for id, wins := range e.windows {
		// Big batches complete fewer than one iteration per window;
		// windows without a completion are genuine zero-usage samples
		// and must appear in the series (Figure 5's low plateaus).
		minW, maxW := -1, -1
		for w := range wins {
			if minW == -1 || w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
		}
		pts := make([]BandwidthPoint, 0, maxW-minW+1)
		for w := minW; w <= maxW; w++ {
			pts = append(pts, BandwidthPoint{
				Time: float64(w) * cfg.WindowSize,
				GBs:  wins[w] / cfg.WindowSize / 1e9,
			})
		}
		res.Bandwidth[id] = pts
	}
	return res, nil
}

type protoEngine struct {
	cfg       Config
	scheduler *sched.Scheduler
	events    iterHeap
	seq       int
	now       float64
	running   map[string]*runningJob
	results   []simulator.JobResult
	timeline  []simulator.Interval
	windows   map[string]map[int]float64 // job -> window index -> bytes
	makespan  float64
	finished  int
	rng       *stats.RNG
}

func (e *protoEngine) nextSeq() int {
	e.seq++
	return e.seq
}

func (e *protoEngine) loop(total int) error {
	guard := 0
	for e.events.Len() > 0 {
		guard++
		if guard > 100_000_000 {
			return fmt.Errorf("caffesim: iteration budget exceeded")
		}
		ev := heap.Pop(&e.events).(iterEvent)
		e.now = ev.time
		switch ev.kind {
		case 1: // arrival
			if err := e.scheduler.Submit(ev.job); err != nil {
				return err
			}
			e.runScheduler()
		case 0: // iteration end
			r, ok := e.running[ev.id]
			if !ok {
				continue
			}
			e.accountIteration(r)
			r.remaining--
			if r.remaining == 0 {
				if err := e.finish(r); err != nil {
					return err
				}
				e.runScheduler()
			} else {
				e.armIteration(r)
			}
		}
	}
	if e.finished != total {
		return fmt.Errorf("caffesim: only %d of %d jobs finished", e.finished, total)
	}
	return nil
}

func (e *protoEngine) runScheduler() {
	for _, d := range e.scheduler.Schedule() {
		if d.Postponed {
			continue
		}
		j := d.Job
		base := perfmodel.IterationTimeMode(j.Model, j.BatchSize, e.cfg.Topology, d.Placement.GPUs, e.cfg.ComputeScale, j.Parallelism)
		spec := perfmodel.GetSpec(j.Model)
		r := &runningJob{
			job:       j,
			gpus:      d.Placement.GPUs,
			remaining: j.Iterations,
			start:     e.now,
			utility:   d.Placement.Utility,
			p2p:       d.Placement.P2P,
			violated:  d.SLOViolated,
			waited:    d.Postponements,
			baseIter:  base,
			iterBytes: perfmodel.RingVolume(j.Model, len(d.Placement.GPUs)) + float64(j.BatchSize)*spec.InputBytesPerSample,
		}
		e.running[j.ID] = r
		e.armIteration(r)
	}
}

// armIteration schedules the end of the job's next iteration, whose
// duration reflects the co-location interference at its start.
func (e *protoEngine) armIteration(r *runningJob) {
	d := r.baseIter * (1 + e.interferenceOn(r))
	if e.cfg.JitterStddev > 0 {
		f := e.rng.Normal(1, e.cfg.JitterStddev)
		if f < 0.5 {
			f = 0.5
		}
		d *= f
	}
	heap.Push(&e.events, iterEvent{time: e.now + d, seq: e.nextSeq(), kind: 0, id: r.job.ID})
}

// accountIteration credits the iteration's interconnect bytes to the
// sampling window containing its completion time.
func (e *protoEngine) accountIteration(r *runningJob) {
	w := int(e.now / e.cfg.WindowSize)
	wins := e.windows[r.job.ID]
	if wins == nil {
		wins = map[int]float64{}
		e.windows[r.job.ID] = wins
	}
	wins[w] += r.iterBytes
}

func (e *protoEngine) interferenceOn(victim *runningJob) float64 {
	topo := e.cfg.Topology
	// Sum co-runner slowdowns in sorted ID order: float addition is not
	// associative, so map iteration order would otherwise leak into every
	// iteration duration and break bit-identical reproducibility.
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		if id != victim.job.ID {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var sum float64
	for _, id := range ids {
		other := e.running[id]
		locality := perfmodel.DifferentMachine
		for _, g := range victim.gpus {
			for _, og := range other.gpus {
				switch {
				case topo.SameSocket(g, og):
					locality = perfmodel.SameSocket
				case topo.SameMachine(g, og) && locality != perfmodel.SameSocket:
					locality = perfmodel.SameMachine
				}
			}
		}
		if locality == perfmodel.DifferentMachine {
			continue
		}
		sum += perfmodel.CoLocationSlowdown(victim.job.Traits(), other.job.Traits(), locality)
	}
	return perfmodel.CapSlowdown(sum)
}

func (e *protoEngine) finish(r *runningJob) error {
	if err := e.scheduler.Release(r.job.ID); err != nil {
		return err
	}
	delete(e.running, r.job.ID)
	e.finished++
	if e.now > e.makespan {
		e.makespan = e.now
	}
	topo := e.cfg.Topology
	g := r.job.GPUs
	if n := topo.NumGPUs(); g > n {
		g = n
	}
	ideal := float64(r.job.Iterations) *
		perfmodel.IterationTimeMode(r.job.Model, r.job.BatchSize, topo, topo.BestAllocation(g), e.cfg.ComputeScale, r.job.Parallelism)
	run := e.now - r.start
	e.results = append(e.results, simulator.JobResult{
		Job:             r.job,
		GPUs:            r.gpus,
		Start:           r.start,
		Finish:          e.now,
		Wait:            r.start - r.job.Arrival,
		Run:             run,
		Ideal:           ideal,
		Utility:         r.utility,
		P2P:             r.p2p,
		SlowdownQoS:     math.Max(0, run/ideal-1),
		SlowdownQoSWait: math.Max(0, (e.now-r.job.Arrival)/ideal-1),
		SLOViolated:     r.violated,
		Postponements:   r.waited,
	})
	e.timeline = append(e.timeline, simulator.Interval{
		JobID:  r.job.ID,
		GPUs:   r.gpus,
		Start:  r.start,
		Finish: e.now,
	})
	return nil
}
