package caffesim

import (
	"math"
	"testing"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

func TestRunRequiresTopology(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	bad := job.New("x", perfmodel.AlexNet, 0, 1, 0.3, 0)
	if _, err := Run(Config{Topology: topology.Power8Minsky()}, []*job.Job{bad}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestSoloJobDuration(t *testing.T) {
	topo := topology.Power8Minsky()
	j := job.New("solo", perfmodel.AlexNet, 1, 2, 0.5, 0)
	j.Iterations = 500
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	want := 500 * perfmodel.IterationTime(perfmodel.AlexNet, 1, topo, jr.GPUs, 1)
	if math.Abs(jr.Run-want) > 1e-6 {
		t.Fatalf("run %.4f, want %.4f", jr.Run, want)
	}
}

// TestValidationAgainstSimulator is the §5.4 check: the prototype engine
// (iteration granularity) and the trace-driven simulator (continuous rate)
// must agree on every policy's cumulative time within iteration-boundary
// noise (Figure 9).
func TestValidationAgainstSimulator(t *testing.T) {
	topo := topology.Power8Minsky()
	for _, pol := range sched.AllPolicies() {
		proto, err := Run(Config{Topology: topo, Policy: pol}, workload.Table1())
		if err != nil {
			t.Fatalf("%v proto: %v", pol, err)
		}
		sim, err := simulator.Run(simulator.Config{Topology: topo, Policy: pol}, workload.Table1())
		if err != nil {
			t.Fatalf("%v sim: %v", pol, err)
		}
		rel := math.Abs(proto.Makespan-sim.Makespan) / sim.Makespan
		if rel > 0.05 {
			t.Fatalf("%v: prototype %.1f vs simulator %.1f (%.1f%% apart)",
				pol, proto.Makespan, sim.Makespan, rel*100)
		}
		// Same placements job by job.
		for i := range proto.Jobs {
			pj, sj := proto.Jobs[i], sim.Jobs[i]
			if pj.Job.ID != sj.Job.ID || len(pj.GPUs) != len(sj.GPUs) {
				t.Fatalf("%v: job results misaligned", pol)
			}
			for k := range pj.GPUs {
				if pj.GPUs[k] != sj.GPUs[k] {
					t.Fatalf("%v: %s placed on %v vs %v", pol, pj.Job.ID, pj.GPUs, sj.GPUs)
				}
			}
		}
	}
}

func TestBandwidthSeriesShape(t *testing.T) {
	// Figure 5 shape: smaller batches sustain higher interconnect usage.
	topo := topology.Power8Minsky()
	means := map[int]float64{}
	for _, b := range []int{1, 128} {
		j := job.New("bw", perfmodel.AlexNet, b, 2, 0.5, 0)
		j.Iterations = 300
		res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{j})
		if err != nil {
			t.Fatal(err)
		}
		pts := res.Bandwidth["bw"]
		if len(pts) == 0 {
			t.Fatalf("batch %d: no bandwidth points", b)
		}
		var sum float64
		for _, p := range pts {
			if p.GBs < 0 {
				t.Fatalf("negative bandwidth %v", p.GBs)
			}
			sum += p.GBs
		}
		means[b] = sum / float64(len(pts))
	}
	if means[1] <= means[128] {
		t.Fatalf("batch 1 mean %.2f GB/s <= batch 128 mean %.2f GB/s", means[1], means[128])
	}
	if means[1]/means[128] < 5 {
		t.Fatalf("bandwidth gap %.1fx too small (paper shows ≈7x)", means[1]/means[128])
	}
}

func TestBandwidthWindowsCoverRun(t *testing.T) {
	topo := topology.Power8Minsky()
	j := job.New("w", perfmodel.AlexNet, 1, 2, 0.5, 0)
	j.Iterations = 1000 // ≈78s
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware, WindowSize: 1}, []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Bandwidth["w"]
	dur := res.Jobs[0].Run
	if float64(len(pts)) < dur*0.8 {
		t.Fatalf("only %d windows for a %.0fs run", len(pts), dur)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatal("window times not increasing")
		}
	}
}

func TestInterferenceAtIterationGranularity(t *testing.T) {
	topo := topology.Power8Minsky()
	a := job.New("a", perfmodel.AlexNet, 1, 2, 0.0, 0)
	a.Iterations = 500
	b := job.New("b", perfmodel.AlexNet, 1, 2, 0.0, 0)
	b.Iterations = 500
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if jr.SlowdownQoS < 0.2 || jr.SlowdownQoS > 0.35 {
			t.Fatalf("job %s slowdown %.3f, want ≈0.30", jr.Job.ID, jr.SlowdownQoS)
		}
	}
}

func TestJitterReproducible(t *testing.T) {
	topo := topology.Power8Minsky()
	mk := func() []*job.Job {
		j := job.New("j", perfmodel.AlexNet, 4, 2, 0.5, 0)
		j.Iterations = 200
		return []*job.Job{j}
	}
	r1, err := Run(Config{Topology: topo, Policy: sched.TopoAware, JitterStddev: 0.02, Seed: 11}, mk())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Topology: topo, Policy: sched.TopoAware, JitterStddev: 0.02, Seed: 11}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatal("same seed produced different runs")
	}
	r3, err := Run(Config{Topology: topo, Policy: sched.TopoAware, JitterStddev: 0.02, Seed: 12}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r3.Makespan {
		t.Fatal("different seeds produced identical jittered runs")
	}
}

func TestPostponementCountsPropagate(t *testing.T) {
	topo := topology.Power8Minsky()
	// Six jobs on one machine force queueing; postponement counts appear
	// in the results for the delayed jobs.
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAwareP}, workload.Table1())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, jr := range res.Jobs {
		total += jr.Postponements
	}
	if total == 0 {
		t.Fatal("no postponements recorded in a contended scenario")
	}
}

func TestDuplicateJobIDsRejected(t *testing.T) {
	topo := topology.Power8Minsky()
	a := job.New("dup", perfmodel.AlexNet, 1, 1, 0.3, 0)
	b := job.New("dup", perfmodel.AlexNet, 1, 1, 0.3, 1)
	if _, err := Run(Config{Topology: topo, Policy: sched.FCFS}, []*job.Job{a, b}); err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
}
