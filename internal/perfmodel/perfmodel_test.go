package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"gputopo/internal/jobgraph"
	"gputopo/internal/topology"
)

func TestNNStringAndParse(t *testing.T) {
	for n := NN(0); n < NumNN; n++ {
		parsed, err := ParseNN(n.String())
		if err != nil || parsed != n {
			t.Fatalf("round trip %v: %v, %v", n, parsed, err)
		}
	}
	// Table 1 single-letter codes.
	for letter, want := range map[string]NN{"A": AlexNet, "C": CaffeRef, "G": GoogLeNet} {
		got, err := ParseNN(letter)
		if err != nil || got != want {
			t.Fatalf("ParseNN(%q) = %v, %v", letter, got, err)
		}
	}
	if _, err := ParseNN("ResNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if NN(42).String() == "" {
		t.Fatal("unknown NN must render")
	}
}

func TestComputeTimeLinearInBatch(t *testing.T) {
	for n := NN(0); n < NumNN; n++ {
		prev := ComputeTime(n, 1)
		for _, b := range []int{2, 8, 64, 128} {
			cur := ComputeTime(n, b)
			if cur <= prev {
				t.Fatalf("%v compute not increasing at batch %d", n, b)
			}
			prev = cur
		}
	}
}

// TestCalibrationFig3 checks the absolute calibration anchors of §3.2:
// AlexNet computation ≈1 s per 40 iterations at batch 1 and ≈66 s at batch
// 128, with communication ≈2 s flat.
func TestCalibrationFig3(t *testing.T) {
	topo := topology.Power8Minsky()
	pack := []int{0, 1}
	comp1 := ComputeTime(AlexNet, 1) * 40
	comp128 := ComputeTime(AlexNet, 128) * 40
	comm := CommTime(AlexNet, 2, AllocBandwidth(topo, pack)) * 40
	if math.Abs(comp1-1.0) > 0.1 {
		t.Fatalf("AlexNet 40-iter compute at b=1: %.2fs, want ≈1s", comp1)
	}
	if math.Abs(comp128-66) > 3 {
		t.Fatalf("AlexNet 40-iter compute at b=128: %.2fs, want ≈66s", comp128)
	}
	if math.Abs(comm-2.0) > 0.2 {
		t.Fatalf("AlexNet 40-iter comm: %.2fs, want ≈2s", comm)
	}
}

// TestCalibrationFig4 checks the pack-vs-spread speedup shape of Figure 4:
// ≈1.30x at batch 1 decaying toward 1.0 at batch ≥16, GoogLeNet flat.
func TestCalibrationFig4(t *testing.T) {
	topo := topology.Power8Minsky()
	s1 := PackSpreadSpeedup(AlexNet, 1, topo, 1)
	if s1 < 1.25 || s1 > 1.37 {
		t.Fatalf("AlexNet b=1 speedup %.3f outside [1.25, 1.37]", s1)
	}
	s128 := PackSpreadSpeedup(AlexNet, 128, topo, 1)
	if s128 > 1.05 {
		t.Fatalf("AlexNet b=128 speedup %.3f, want ≈1.0", s128)
	}
	// Monotone decay.
	prev := math.Inf(1)
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		s := PackSpreadSpeedup(AlexNet, b, topo, 1)
		if s > prev+1e-9 {
			t.Fatalf("speedup increased at batch %d", b)
		}
		prev = s
	}
	// GoogLeNet is nearly flat (Inception modules shrink communication).
	for _, b := range []int{1, 16, 128} {
		if s := PackSpreadSpeedup(GoogLeNet, b, topo, 1); s > 1.06 {
			t.Fatalf("GoogLeNet b=%d speedup %.3f, want ≈1.0", b, s)
		}
	}
	// CaffeRef sits between GoogLeNet and AlexNet at batch 1.
	sc := PackSpreadSpeedup(CaffeRef, 1, topo, 1)
	sg := PackSpreadSpeedup(GoogLeNet, 1, topo, 1)
	if !(sg < sc && sc <= s1+0.02) {
		t.Fatalf("ordering GoogLeNet(%.3f) < CaffeRef(%.3f) <= AlexNet(%.3f) violated", sg, sc, s1)
	}
}

// TestCalibrationPCIe checks the §3.2 text numbers: on the PCIe/K80 box
// the speedup drops to ≈1.24/1.21/1.1 at batch 1/2/8, and NVLink beats
// PCIe at every batch size.
func TestCalibrationPCIe(t *testing.T) {
	nv := topology.Power8Minsky()
	pcie := topology.PCIeBox()
	cases := map[int]float64{1: 1.24, 2: 1.21, 8: 1.10}
	for b, want := range cases {
		got := PackSpreadSpeedup(AlexNet, b, pcie, K80ComputeScale)
		if math.Abs(got-want) > 0.06 {
			t.Fatalf("PCIe b=%d speedup %.3f, want ≈%.2f", b, got, want)
		}
	}
	for _, b := range []int{1, 2, 4, 8, 16} {
		if PackSpreadSpeedup(AlexNet, b, nv, 1) <= PackSpreadSpeedup(AlexNet, b, pcie, K80ComputeScale) {
			t.Fatalf("NVLink speedup should exceed PCIe at batch %d", b)
		}
	}
}

// TestCalibrationFig6 checks the co-location interference anchors:
// tiny+tiny ≈30%, big→tiny ≈24%, big→small ≈21%, big+big ≈0 (Figure 6).
func TestCalibrationFig6(t *testing.T) {
	j := func(c jobgraph.BatchClass) Traits {
		return Traits{Model: AlexNet, Class: c, GPUs: 2}
	}
	cases := []struct {
		victim, causer jobgraph.BatchClass
		want, tol      float64
	}{
		{jobgraph.BatchTiny, jobgraph.BatchTiny, 0.30, 0.02},
		{jobgraph.BatchTiny, jobgraph.BatchBig, 0.24, 0.02},
		{jobgraph.BatchSmall, jobgraph.BatchBig, 0.21, 0.02},
		{jobgraph.BatchBig, jobgraph.BatchBig, 0.02, 0.02},
	}
	for _, c := range cases {
		got := CoLocationSlowdown(j(c.victim), j(c.causer), SameMachine)
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("slowdown(%v victim, %v causer) = %.3f, want ≈%.2f",
				c.victim, c.causer, got, c.want)
		}
	}
}

func TestInterferenceLocalityOrdering(t *testing.T) {
	v := Traits{Model: AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
	o := Traits{Model: AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
	sSock := CoLocationSlowdown(v, o, SameSocket)
	sMach := CoLocationSlowdown(v, o, SameMachine)
	sDiff := CoLocationSlowdown(v, o, DifferentMachine)
	if !(sSock > sMach && sMach > sDiff && sDiff == 0) {
		t.Fatalf("locality ordering violated: %v %v %v", sSock, sMach, sDiff)
	}
}

func TestSingleGPUJobsInterfereLess(t *testing.T) {
	multi := Traits{Model: AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
	single := Traits{Model: AlexNet, Class: jobgraph.BatchTiny, GPUs: 1}
	if Pressure(single) >= Pressure(multi) {
		t.Fatal("single-GPU job should cause less interference")
	}
	if Sensitivity(single) >= Sensitivity(multi) {
		t.Fatal("single-GPU job should suffer less interference")
	}
}

func TestGoogLeNetInterferesLess(t *testing.T) {
	alex := Traits{Model: AlexNet, Class: jobgraph.BatchTiny, GPUs: 2}
	goog := Traits{Model: GoogLeNet, Class: jobgraph.BatchTiny, GPUs: 2}
	if Pressure(goog) >= Pressure(alex) {
		t.Fatal("GoogLeNet ships ≈9x less gradient data; its pressure must be lower")
	}
}

func TestRingVolume(t *testing.T) {
	if RingVolume(AlexNet, 1) != 0 {
		t.Fatal("single GPU exchanges nothing")
	}
	// 2 GPUs: 2*(1/2)*S = S.
	if got := RingVolume(AlexNet, 2); math.Abs(got-GetSpec(AlexNet).GradBytes) > 1 {
		t.Fatalf("2-GPU ring volume = %v", got)
	}
	// 4 GPUs: 1.5*S.
	if got := RingVolume(AlexNet, 4); math.Abs(got-1.5*GetSpec(AlexNet).GradBytes) > 1 {
		t.Fatalf("4-GPU ring volume = %v", got)
	}
}

func TestCommTimeEdgeCases(t *testing.T) {
	if CommTime(AlexNet, 1, 40) != 0 {
		t.Fatal("single GPU comm time must be 0")
	}
	if !math.IsInf(CommTime(AlexNet, 2, 0), 1) {
		t.Fatal("zero bandwidth must yield infinite comm time")
	}
	// More bandwidth, less time.
	if CommTime(AlexNet, 2, 40) >= CommTime(AlexNet, 2, 10) {
		t.Fatal("comm time not decreasing in bandwidth")
	}
}

func TestAllocBandwidthIsMinPair(t *testing.T) {
	topo := topology.Power8Minsky()
	// Pack pair: dual NVLink.
	if got := AllocBandwidth(topo, []int{0, 1}); got != topology.BandwidthNVLink2 {
		t.Fatalf("pack bandwidth = %v", got)
	}
	// Mixed set {0,1,2}: limited by the routed cross-socket pair.
	mixed := AllocBandwidth(topo, []int{0, 1, 2})
	cross := topo.EffectiveBandwidth(0, 2)
	if math.Abs(mixed-cross) > 1e-9 {
		t.Fatalf("mixed bandwidth = %v, want %v", mixed, cross)
	}
	if !math.IsInf(AllocBandwidth(topo, []int{0}), 1) {
		t.Fatal("single GPU alloc bandwidth should be +Inf")
	}
}

func TestIterationTimePackBeatsSpread(t *testing.T) {
	topo := topology.Power8Minsky()
	for n := NN(0); n < NumNN; n++ {
		for _, b := range []int{1, 8, 128} {
			pack := IterationTime(n, b, topo, []int{0, 1}, 1)
			spread := IterationTime(n, b, topo, []int{0, 2}, 1)
			if pack >= spread {
				t.Fatalf("%v b=%d: pack %.4f >= spread %.4f", n, b, pack, spread)
			}
		}
	}
}

func TestIterationTimeComputeScale(t *testing.T) {
	topo := topology.PCIeBox()
	base := IterationTime(AlexNet, 8, topo, []int{0, 1}, 1)
	scaled := IterationTime(AlexNet, 8, topo, []int{0, 1}, K80ComputeScale)
	if scaled <= base {
		t.Fatal("compute scale did not slow iteration")
	}
	// Zero scale falls back to 1.
	if IterationTime(AlexNet, 8, topo, []int{0, 1}, 0) != base {
		t.Fatal("zero compute scale should default to 1")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	topo := topology.Power8Minsky()
	for n := NN(0); n < NumNN; n++ {
		for _, b := range []int{1, 32, 128} {
			comp, comm := Breakdown(n, b, topo, []int{0, 1})
			if math.Abs(comp+comm-1) > 1e-9 {
				t.Fatalf("%v b=%d fractions sum to %v", n, b, comp+comm)
			}
		}
	}
}

func TestBreakdownCommDecreasesWithBatch(t *testing.T) {
	topo := topology.Power8Minsky()
	prev := math.Inf(1)
	for _, b := range []int{1, 4, 32, 128} {
		_, comm := Breakdown(AlexNet, b, topo, []int{0, 1})
		if comm >= prev {
			t.Fatalf("comm fraction not decreasing at batch %d", b)
		}
		prev = comm
	}
}

func TestAverageLinkUsageDecreasesWithBatch(t *testing.T) {
	topo := topology.Power8Minsky()
	pack := []int{0, 1}
	prev := math.Inf(1)
	for _, b := range []int{1, 4, 64, 128} {
		u := AverageLinkUsage(AlexNet, b, topo, pack)
		if u >= prev {
			t.Fatalf("link usage not decreasing at batch %d", b)
		}
		prev = u
	}
	// Figure 5 magnitude gap: batch 1 uses an order of magnitude more
	// bandwidth than batch 128.
	u1 := AverageLinkUsage(AlexNet, 1, topo, pack)
	u128 := AverageLinkUsage(AlexNet, 128, topo, pack)
	if u1/u128 < 6 {
		t.Fatalf("bandwidth ratio b1/b128 = %.1f, want > 6", u1/u128)
	}
}

func TestBusDemandPositive(t *testing.T) {
	topo := topology.Power8Minsky()
	if d := BusDemand(AlexNet, 4, topo, []int{0, 2}); d <= 0 {
		t.Fatalf("cross-socket bus demand = %v", d)
	}
	// Packed jobs stage only input data; demand is smaller.
	packed := BusDemand(AlexNet, 4, topo, []int{0, 1})
	routed := BusDemand(AlexNet, 4, topo, []int{0, 2})
	if packed >= routed {
		t.Fatalf("packed demand %.3f >= routed %.3f", packed, routed)
	}
}

func TestCapSlowdown(t *testing.T) {
	if CapSlowdown(0.3) != 0.3 {
		t.Fatal("cap changed in-range value")
	}
	if CapSlowdown(9) != MaxSlowdown {
		t.Fatal("cap did not clamp")
	}
}

func TestSlowdownNonNegativeProperty(t *testing.T) {
	f := func(vc, cc, vg, cg uint8) bool {
		v := Traits{Model: NN(vc % 3), Class: jobgraph.BatchClass(vc % 4), GPUs: 1 + int(vg%4)}
		c := Traits{Model: NN(cc % 3), Class: jobgraph.BatchClass(cc % 4), GPUs: 1 + int(cg%4)}
		for _, l := range []Locality{SameSocket, SameMachine, DifferentMachine} {
			s := CoLocationSlowdown(v, c, l)
			if s < 0 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpecsSane(t *testing.T) {
	for n := NN(0); n < NumNN; n++ {
		s := GetSpec(n)
		if s.Params <= 0 || s.GradBytes <= 0 || s.CompBase <= 0 ||
			s.CompPerSample <= 0 || s.CommOverhead <= 0 {
			t.Fatalf("%v spec has non-positive fields: %+v", n, s)
		}
		// FP32 gradient bytes ≈ 4·params.
		if math.Abs(s.GradBytes-4*float64(s.Params)) > 0.2*s.GradBytes {
			t.Fatalf("%v grad bytes %.0f inconsistent with %d params", n, s.GradBytes, s.Params)
		}
	}
	// GoogLeNet's Inception modules: far fewer parameters than AlexNet.
	if GetSpec(GoogLeNet).Params*5 > GetSpec(AlexNet).Params {
		t.Fatal("GoogLeNet should have ≈9x fewer parameters than AlexNet")
	}
}
