package perfmodel

import (
	"math"

	"gputopo/internal/topology"
)

// Parallelism selects how a job divides work across GPUs (§2 of the
// paper): data parallelism partitions the input batch and exchanges
// gradients; model parallelism partitions the network layers and
// exchanges activations at every stage boundary. The paper evaluates data
// parallelism ("model-based parallelism ... is still uncommon for cloud
// deployments") but expects "topology-aware scheduling is even more
// critical for model-parallelization workloads because of the higher
// communication requirements" — this extension implements that workload
// so the expectation can be tested.
type Parallelism int

// Work division strategies.
const (
	DataParallel Parallelism = iota
	ModelParallel
)

// String names the strategy.
func (p Parallelism) String() string {
	if p == ModelParallel {
		return "model-parallel"
	}
	return "data-parallel"
}

// activationBytes is the per-sample activation volume crossing stage
// boundaries each direction (forward activations, backward gradients).
// Model-parallel splits communicate at every cross-connected layer — the
// classic two-tower AlexNet exchanges at the conv2→conv3 boundary and at
// each fully-connected layer — so the aggregate is several megabytes per
// sample: ≈4.5 MB for AlexNet/CaffeRef, ≈6 MB for GoogLeNet's wider
// Inception outputs.
var activationBytes = [NumNN]float64{
	AlexNet:   4.5e6,
	CaffeRef:  4.5e6,
	GoogLeNet: 6e6,
}

// PipelineVolume returns the per-iteration bytes exchanged across the
// busiest stage boundary of a model-parallel job: batch × activation size,
// forward plus backward. Unlike gradient exchange, this volume scales
// with the batch size — which is why model parallelism keeps communicating
// hard even at large batches.
func PipelineVolume(n NN, batch, gpus int) float64 {
	if gpus < 2 {
		return 0
	}
	return 2 * float64(batch) * activationBytes[n]
}

// CommTimeMode returns the per-iteration communication time for either
// parallelism mode over the given effective bandwidth.
func CommTimeMode(n NN, batch, gpus int, effBW float64, mode Parallelism) float64 {
	if gpus < 2 {
		return 0
	}
	if mode == DataParallel {
		return CommTime(n, gpus, effBW)
	}
	if effBW <= 0 {
		return math.Inf(1)
	}
	s := specs[n]
	// Pipeline handoffs synchronize per stage rather than per ring step;
	// the per-iteration overhead is the same launch/sync cost.
	return s.CommOverhead + PipelineVolume(n, batch, gpus)/(ProtocolEfficiency*effBW*1e9)
}

// IterationTimeMode is IterationTime extended with the parallelism mode.
// Model-parallel jobs split layers across GPUs, so per-GPU compute is
// divided by the stage count (perfect balance assumed) while the
// activation exchange is added on top.
func IterationTimeMode(n NN, batch int, topo *topology.Topology, gpus []int, computeScale float64, mode Parallelism) float64 {
	if mode == DataParallel {
		return IterationTime(n, batch, topo, gpus, computeScale)
	}
	if computeScale <= 0 {
		computeScale = 1
	}
	s := specs[n]
	comp := computeScale * ComputeTime(n, batch)
	if len(gpus) > 1 {
		comp /= float64(len(gpus))
	}
	t := comp + s.HostOverhead
	if len(gpus) >= 2 {
		t += CommTimeMode(n, batch, len(gpus), AllocBandwidth(topo, gpus), ModelParallel)
	}
	return t
}

// PackSpreadSpeedupMode generalizes PackSpreadSpeedup to both parallelism
// modes, quantifying §2's expectation that model parallelism amplifies
// the placement impact.
func PackSpreadSpeedupMode(n NN, batch int, topo *topology.Topology, computeScale float64, mode Parallelism) float64 {
	packGPUs, spreadGPUs := packSpreadPairs(topo)
	pack := IterationTimeMode(n, batch, topo, packGPUs, computeScale, mode)
	spread := IterationTimeMode(n, batch, topo, spreadGPUs, computeScale, mode)
	return spread / pack
}

// modeScale amplifies interference for model-parallel jobs: their
// activation traffic flows continuously rather than in per-iteration
// bursts.
func modeScale(p Parallelism) float64 {
	if p == ModelParallel {
		return 1.5
	}
	return 1
}
