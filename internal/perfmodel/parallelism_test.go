package perfmodel

import (
	"testing"

	"gputopo/internal/jobgraph"
	"gputopo/internal/topology"
)

func TestParallelismString(t *testing.T) {
	if DataParallel.String() != "data-parallel" || ModelParallel.String() != "model-parallel" {
		t.Fatal("parallelism names wrong")
	}
}

func TestPipelineVolumeScalesWithBatch(t *testing.T) {
	if PipelineVolume(AlexNet, 8, 1) != 0 {
		t.Fatal("single GPU pipeline volume must be 0")
	}
	v1 := PipelineVolume(AlexNet, 1, 2)
	v128 := PipelineVolume(AlexNet, 128, 2)
	if v128 != 128*v1 {
		t.Fatalf("pipeline volume not linear in batch: %v vs %v", v1, v128)
	}
	// Unlike gradients, whose volume is batch-independent.
	if RingVolume(AlexNet, 2) != RingVolume(AlexNet, 2) {
		t.Fatal("unreachable")
	}
}

func TestModelParallelDividesCompute(t *testing.T) {
	topo := topology.Power8Minsky()
	mp2 := IterationTimeMode(AlexNet, 32, topo, []int{0, 1}, 1, ModelParallel)
	// Compute per stage is half of the full model's compute.
	comp := ComputeTime(AlexNet, 32)
	comm := CommTimeMode(AlexNet, 32, 2, AllocBandwidth(topo, []int{0, 1}), ModelParallel)
	want := comp/2 + GetSpec(AlexNet).HostOverhead + comm
	if diff := mp2 - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("MP iteration %v, want %v", mp2, want)
	}
}

func TestDataParallelModeMatchesBase(t *testing.T) {
	topo := topology.Power8Minsky()
	for _, b := range []int{1, 32, 128} {
		base := IterationTime(AlexNet, b, topo, []int{0, 1}, 1)
		mode := IterationTimeMode(AlexNet, b, topo, []int{0, 1}, 1, DataParallel)
		if base != mode {
			t.Fatalf("b=%d: DP mode diverges from IterationTime", b)
		}
	}
}

// TestModelParallelAmplifiesPlacementImpact verifies §2's expectation:
// "topology-aware scheduling is even more critical for model-parallelism
// workloads because of the higher communication requirements." At
// moderate-to-large batches, data-parallel jobs stop caring about
// placement (their gradient volume is batch-independent) while
// model-parallel jobs keep caring (their activation volume grows with the
// batch).
func TestModelParallelAmplifiesPlacementImpact(t *testing.T) {
	topo := topology.Power8Minsky()
	for _, b := range []int{32, 64, 128} {
		dp := PackSpreadSpeedupMode(AlexNet, b, topo, 1, DataParallel)
		mp := PackSpreadSpeedupMode(AlexNet, b, topo, 1, ModelParallel)
		if mp <= dp {
			t.Fatalf("b=%d: MP speedup %.3f <= DP %.3f", b, mp, dp)
		}
	}
	// The MP speedup stays substantial even at batch 128, where DP has
	// converged to ≈1.0.
	if mp := PackSpreadSpeedupMode(AlexNet, 128, topo, 1, ModelParallel); mp < 1.10 {
		t.Fatalf("MP b=128 speedup %.3f, want > 1.10", mp)
	}
	// At tiny batches MP ships very little (a few MB of activations vs
	// 244 MB of gradients), so DP is the more placement-sensitive mode —
	// the crossover the batch scaling implies.
	dp1 := PackSpreadSpeedupMode(AlexNet, 1, topo, 1, DataParallel)
	mp1 := PackSpreadSpeedupMode(AlexNet, 1, topo, 1, ModelParallel)
	if mp1 >= dp1 {
		t.Fatalf("b=1: MP %.3f should be below DP %.3f", mp1, dp1)
	}
}

func TestModelParallelTraitsInterfereMore(t *testing.T) {
	dp := Traits{Model: AlexNet, Class: jobgraph.BatchMedium, GPUs: 2, Mode: DataParallel}
	mp := Traits{Model: AlexNet, Class: jobgraph.BatchMedium, GPUs: 2, Mode: ModelParallel}
	if Sensitivity(mp) <= Sensitivity(dp) {
		t.Fatal("MP jobs should be more sensitive")
	}
	if Pressure(mp) <= Pressure(dp) {
		t.Fatal("MP jobs should cause more pressure")
	}
}

func TestCommTimeModeEdgeCases(t *testing.T) {
	if CommTimeMode(AlexNet, 8, 1, 40, ModelParallel) != 0 {
		t.Fatal("single GPU MP comm must be 0")
	}
	if got := CommTimeMode(AlexNet, 8, 2, 0, ModelParallel); got <= 1e300 {
		t.Fatalf("zero bandwidth MP comm = %v, want +Inf", got)
	}
	dp := CommTimeMode(AlexNet, 8, 2, 40, DataParallel)
	if dp != CommTime(AlexNet, 2, 40) {
		t.Fatal("DP mode diverges from CommTime")
	}
}
