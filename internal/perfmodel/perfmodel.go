// Package perfmodel is the analytic stand-in for Caffe training on real
// GPUs. The paper measures AlexNet, CaffeRef and GoogLeNet on a Power8
// "Minsky" with P100s (§3); we have no such testbed, so this package
// reproduces the measured *relationships* with a calibrated iteration-time
// model:
//
//	T_iter = T_comp(batch) + T_comm(placement)
//	T_comp = base + perSample·batch                      (GPU compute)
//	T_comm = overhead + ringVolume / (η·BW_eff)          (gradient exchange)
//
// ringVolume is the classic ring all-reduce transfer volume
// 2·(g−1)/g·gradientBytes, BW_eff is the bottleneck bandwidth of the
// allocated GPUs' communication paths (divided by the topology's routing
// penalty when the path is not peer-to-peer), and η is the fraction of
// nominal link bandwidth the communication library achieves.
//
// Calibration targets (see EXPERIMENTS.md for the resulting fits):
//   - Fig. 3: AlexNet compute ≈1 s per 40 iterations at batch 1, ≈66 s at
//     batch 128, communication ≈2 s flat across batch sizes.
//   - Fig. 4: pack-vs-spread speedup ≈1.30x at batch 1–2 decaying to ≈1.0
//     for batch ≥16; GoogLeNet nearly flat (its Inception modules shrink
//     layer outputs, so it ships only ≈28 MB of gradients).
//   - §3.2: on the PCIe/K80 machine the speedup drops to ≈1.24/1.21/1.1
//     at batch 1/2/8.
//   - Fig. 6: co-location slowdown ≈30 % (tiny+tiny), ≈24 % (big causer,
//     tiny sufferer), ≈21 % (big causer, small sufferer), ≈0 (big+big).
package perfmodel

import (
	"fmt"
	"math"

	"gputopo/internal/jobgraph"
	"gputopo/internal/topology"
)

// NN identifies one of the paper's neural network models (§2).
type NN int

// The three Caffe models evaluated in the paper.
const (
	AlexNet NN = iota
	CaffeRef
	GoogLeNet
)

// NumNN is the number of supported models.
const NumNN = 3

// String returns the model name as used in the paper's figures.
func (n NN) String() string {
	switch n {
	case AlexNet:
		return "AlexNet"
	case CaffeRef:
		return "CaffeRef"
	case GoogLeNet:
		return "GoogLeNet"
	default:
		return fmt.Sprintf("NN(%d)", int(n))
	}
}

// ParseNN maps a model name to its NN constant.
func ParseNN(name string) (NN, error) {
	switch name {
	case "AlexNet", "alexnet", "A":
		return AlexNet, nil
	case "CaffeRef", "cafferef", "C":
		return CaffeRef, nil
	case "GoogLeNet", "googlenet", "G":
		return GoogLeNet, nil
	}
	return 0, fmt.Errorf("perfmodel: unknown NN %q", name)
}

// Spec holds the calibrated per-model constants.
type Spec struct {
	Name string
	// Params is the parameter count; GradBytes = 4·Params (FP32).
	Params int64
	// GradBytes is the gradient volume exchanged per iteration (bytes).
	GradBytes float64
	// CompBase and CompPerSample define per-iteration compute time in
	// seconds: CompBase + CompPerSample·batch.
	CompBase      float64
	CompPerSample float64
	// CommOverhead is the per-iteration synchronization/launch cost of
	// the gradient exchange in seconds, independent of the path. The
	// paper's flat ≈2 s/40-iteration communication time implies this
	// constant dominates the volume term on NVLink.
	CommOverhead float64
	// InputBytesPerSample is the host-to-GPU input volume per sample
	// (ImageNet-sized images, ≈618 KB each).
	InputBytesPerSample float64
	// HostOverhead is the per-iteration host-side time (input staging,
	// solver bookkeeping) in seconds.
	HostOverhead float64
}

// ProtocolEfficiency is the fraction of nominal link bandwidth achieved by
// the gradient-exchange protocol (NCCL-style ring).
const ProtocolEfficiency = 0.85

// K80ComputeScale inflates compute time on the PCIe/K80 comparison machine
// of §3.2 (K80s are roughly 1.6x slower than P100s on these models).
const K80ComputeScale = 1.6

var specs = [NumNN]Spec{
	AlexNet: {
		Name:                "AlexNet",
		Params:              61_000_000,
		GradBytes:           244e6,
		CompBase:            0.0122,
		CompPerSample:       0.0128,
		CommOverhead:        0.0428,
		InputBytesPerSample: 618e3,
		HostOverhead:        0.003,
	},
	CaffeRef: {
		Name:                "CaffeRef",
		Params:              62_000_000,
		GradBytes:           233e6,
		CompBase:            0.014,
		CompPerSample:       0.011,
		CommOverhead:        0.055,
		InputBytesPerSample: 618e3,
		HostOverhead:        0.003,
	},
	GoogLeNet: {
		Name:                "GoogLeNet",
		Params:              7_000_000,
		GradBytes:           28e6,
		CompBase:            0.060,
		CompPerSample:       0.020,
		CommOverhead:        0.020,
		InputBytesPerSample: 618e3,
		HostOverhead:        0.003,
	},
}

// GetSpec returns the calibrated constants of the model.
func GetSpec(n NN) Spec { return specs[n] }

// ComputeTime returns the per-iteration GPU compute time in seconds for
// the given per-GPU batch size.
func ComputeTime(n NN, batch int) float64 {
	s := specs[n]
	return s.CompBase + s.CompPerSample*float64(batch)
}

// RingVolume returns the per-GPU bytes exchanged by a ring all-reduce of
// the model's gradients across g GPUs: 2·(g−1)/g·GradBytes.
func RingVolume(n NN, gpus int) float64 {
	if gpus < 2 {
		return 0
	}
	g := float64(gpus)
	return 2 * (g - 1) / g * specs[n].GradBytes
}

// CommTime returns the per-iteration gradient-exchange time in seconds for
// g GPUs over an effective path bandwidth of effBW GB/s (already including
// any routing penalty). Single-GPU jobs communicate nothing.
func CommTime(n NN, gpus int, effBW float64) float64 {
	if gpus < 2 {
		return 0
	}
	if effBW <= 0 {
		return math.Inf(1)
	}
	s := specs[n]
	return s.CommOverhead + RingVolume(n, gpus)/(ProtocolEfficiency*effBW*1e9)
}

// AllocBandwidth returns the effective GPU-to-GPU bandwidth (GB/s) of an
// allocation: the minimum effective pairwise bandwidth over all allocated
// GPU pairs, since a synchronous all-reduce advances at the pace of its
// slowest path. For single-GPU allocations it returns +Inf (no exchange).
func AllocBandwidth(topo *topology.Topology, gpus []int) float64 {
	if len(gpus) < 2 {
		return math.Inf(1)
	}
	bw := math.Inf(1)
	for i := 0; i < len(gpus); i++ {
		for j := i + 1; j < len(gpus); j++ {
			if e := topo.EffectiveBandwidth(gpus[i], gpus[j]); e < bw {
				bw = e
			}
		}
	}
	return bw
}

// IterationTime returns the solo per-iteration time in seconds of the
// model trained with the given per-GPU batch on the allocated GPUs.
// computeScale inflates compute time for slower GPU generations (1.0 for
// P100s, K80ComputeScale for the PCIe box).
func IterationTime(n NN, batch int, topo *topology.Topology, gpus []int, computeScale float64) float64 {
	if computeScale <= 0 {
		computeScale = 1
	}
	s := specs[n]
	t := computeScale*ComputeTime(n, batch) + s.HostOverhead
	if len(gpus) >= 2 {
		t += CommTime(n, len(gpus), AllocBandwidth(topo, gpus))
	}
	return t
}

// IterationTimeBW is IterationTime with an explicit effective bandwidth,
// used by the breakdown experiments that sweep bandwidths directly.
func IterationTimeBW(n NN, batch, gpus int, effBW, computeScale float64) float64 {
	if computeScale <= 0 {
		computeScale = 1
	}
	s := specs[n]
	t := computeScale*ComputeTime(n, batch) + s.HostOverhead
	if gpus >= 2 {
		t += CommTime(n, gpus, effBW)
	}
	return t
}

// Breakdown reports the compute and communication fractions of an
// iteration (Figure 3): fractions of total iteration time spent in GPU
// compute and in gradient exchange.
func Breakdown(n NN, batch int, topo *topology.Topology, gpus []int) (computeFrac, commFrac float64) {
	comp := ComputeTime(n, batch) + specs[n].HostOverhead
	comm := 0.0
	if len(gpus) >= 2 {
		comm = CommTime(n, len(gpus), AllocBandwidth(topo, gpus))
	}
	total := comp + comm
	return comp / total, comm / total
}

// PackSpreadSpeedup returns the ratio of spread (cross-socket) to pack
// (same-socket) iteration time for a 2-GPU job on a two-socket machine —
// the quantity plotted in Figure 4. Values above 1 mean pack wins.
func PackSpreadSpeedup(n NN, batch int, topo *topology.Topology, computeScale float64) float64 {
	packGPUs, spreadGPUs := packSpreadPairs(topo)
	pack := IterationTime(n, batch, topo, packGPUs, computeScale)
	spread := IterationTime(n, batch, topo, spreadGPUs, computeScale)
	return spread / pack
}

// packSpreadPairs picks a same-socket GPU pair and a cross-socket pair on
// machine 0 of the topology.
func packSpreadPairs(topo *topology.Topology) (pack, spread []int) {
	sockets := topo.Sockets(0)
	if len(sockets) < 2 {
		all := topo.GPUsOfMachine(0)
		return all[:2], all[:2]
	}
	s0 := topo.GPUsOfSocket(0, sockets[0])
	s1 := topo.GPUsOfSocket(0, sockets[1])
	return []int{s0[0], s0[1]}, []int{s0[0], s1[0]}
}

// AverageLinkUsage returns the average GPU-interconnect traffic in GB/s
// generated by the job: bytes moved per iteration (gradients plus input
// staging) divided by the iteration time. Figure 5 plots this usage over
// time; tiny batches sustain high usage because they communicate every few
// milliseconds, while big batches spend most of each iteration computing.
func AverageLinkUsage(n NN, batch int, topo *topology.Topology, gpus []int) float64 {
	s := specs[n]
	iter := IterationTime(n, batch, topo, gpus, 1)
	bytes := RingVolume(n, len(gpus)) + float64(batch)*s.InputBytesPerSample
	return bytes / iter / 1e9
}

// BusDemand estimates the shared-bus bandwidth (GB/s) a running job
// commits on its machine: the gradient traffic that crosses sockets plus
// input staging. Used for the t_bw <= p_bw capacity constraint.
func BusDemand(n NN, batch int, topo *topology.Topology, gpus []int) float64 {
	s := specs[n]
	iter := IterationTime(n, batch, topo, gpus, 1)
	input := float64(batch) * s.InputBytesPerSample * float64(len(gpus))
	cross := 0.0
	for i := 0; i < len(gpus); i++ {
		for j := i + 1; j < len(gpus); j++ {
			if !topo.P2P(gpus[i], gpus[j]) {
				cross = RingVolume(n, len(gpus))
				break
			}
		}
	}
	return (input + cross) / iter / 1e9
}

// Locality describes how two co-scheduled jobs share hardware, for the
// interference model.
type Locality int

// Co-location localities in decreasing degree of sharing.
const (
	SameSocket Locality = iota
	SameMachine
	DifferentMachine
)

// localityFactor scales interference: jobs sharing a socket contend for
// the CPU-GPU links and local DRAM (2x the cross-socket baseline), jobs on
// the same machine share the X-Bus and memory subsystem (the Figure 6
// calibration point), and jobs on different machines do not interfere.
func localityFactor(l Locality) float64 {
	switch l {
	case SameSocket:
		return 2.0
	case SameMachine:
		return 1.0
	default:
		return 0
	}
}

// sensitivity is how strongly a job of the given batch class suffers from
// bandwidth perturbation (calibrated to Figure 6: tiny jobs communicate
// constantly, big jobs barely notice).
var sensitivity = [4]float64{1.0, 0.875, 0.45, 0.05}

// pressure is how much perturbation a job of the given batch class causes
// to machine-level shared resources.
var pressure = [4]float64{0.30, 0.28, 0.26, 0.24}

// Traits summarizes the interference-relevant properties of a job.
type Traits struct {
	Model NN
	Class jobgraph.BatchClass
	GPUs  int
	// Mode distinguishes data- from model-parallel jobs; the latter
	// interfere more (continuous activation traffic, §2).
	Mode Parallelism
}

// scale halves both caused and suffered interference for single-GPU jobs:
// with no gradient exchange their bus traffic is input staging only.
func (t Traits) scale() float64 {
	if t.GPUs <= 1 {
		return 0.5
	}
	return 1
}

// commScale dampens interference for models that barely communicate:
// GoogLeNet's Inception modules shrink exchanged volume ≈9x vs AlexNet.
func (t Traits) commScale() float64 {
	ref := specs[AlexNet].GradBytes
	s := specs[t.Model].GradBytes / ref
	// Compress toward 1 so even low-communication models keep some
	// sensitivity through their input pipelines.
	return 0.5 + 0.5*math.Min(1, s*2.5)
}

// Sensitivity returns how strongly the job suffers co-location
// interference.
func Sensitivity(t Traits) float64 {
	return sensitivity[t.Class] * t.scale() * t.commScale() * modeScale(t.Mode)
}

// Pressure returns how much interference the job causes.
func Pressure(t Traits) float64 {
	return pressure[t.Class] * t.scale() * t.commScale() * modeScale(t.Mode)
}

// CoLocationSlowdown returns the fractional slowdown (0 = none, 0.30 = 30%
// slower) the victim job suffers from one co-scheduled job at the given
// locality. Multiple co-runners accumulate additively; callers should cap
// the total with CapSlowdown.
func CoLocationSlowdown(victim, other Traits, l Locality) float64 {
	return Sensitivity(victim) * Pressure(other) * localityFactor(l)
}

// MaxSlowdown caps the accumulated co-location slowdown: beyond ~1.5x the
// shared buses are saturated and additional co-runners queue rather than
// steal proportionally more bandwidth.
const MaxSlowdown = 1.5

// CapSlowdown clamps an accumulated slowdown sum to MaxSlowdown.
func CapSlowdown(sum float64) float64 {
	if sum > MaxSlowdown {
		return MaxSlowdown
	}
	return sum
}

// DefaultIterations is the paper's training length for the prototype
// experiments (§3.1: "the maximum number of iterations is 4000").
const DefaultIterations = 4000

// ProfileIterations is the shortened run used when profiling (§3.1).
const ProfileIterations = 40
