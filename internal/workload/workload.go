// Package workload builds job streams: the fixed six-job prototype
// scenario of Table 1 and the randomized large-scale workloads of §5.3
// (Poisson arrivals with λ = 10 jobs/minute, Binomial(3,½) batch classes
// where 0=tiny…3=big, and Binomial(2,½) network types where 0=AlexNet,
// 1=CaffeRef, 2=GoogLeNet).
package workload

import (
	"fmt"

	"gputopo/internal/job"
	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/stats"
	"gputopo/internal/topology"
)

// Table1 returns the six-job prototype scenario of §5.2 (Table 1): NN
// types A/G/A/A/A/C, batch sizes 1/4/1/4/1/1, GPU counts 1/1/1/2/2/2,
// minimum utilities 0.3/0.3/0.3/0.5/0.5/0.5, and the published arrival
// times. Iteration counts are calibrated so solo runtimes match the
// paper's Figure 8 timeline (Job 0 ≈70 s, Job 3 ≈116 s packed, Job 1's
// GoogLeNet spanning most of the experiment).
func Table1() []*job.Job {
	mk := func(id string, m perfmodel.NN, batch, gpus int, minU, arrival float64, iters int) *job.Job {
		j := job.New(id, m, batch, gpus, minU, arrival)
		j.Iterations = iters
		return j
	}
	return []*job.Job{
		mk("J0", perfmodel.AlexNet, 1, 1, 0.3, 0.51, 2500),
		mk("J1", perfmodel.GoogLeNet, 4, 1, 0.3, 15.03, 2100),
		mk("J2", perfmodel.AlexNet, 1, 1, 0.3, 24.36, 2500),
		mk("J3", perfmodel.AlexNet, 4, 2, 0.5, 25.33, 1000),
		mk("J4", perfmodel.AlexNet, 1, 2, 0.5, 29.33, 1000),
		mk("J5", perfmodel.CaffeRef, 1, 2, 0.5, 29.89, 1000),
	}
}

// GenConfig parameterizes the random workload generator.
type GenConfig struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// ArrivalRate is the Poisson arrival rate in jobs per minute
	// (the paper uses λ = 10).
	ArrivalRate float64
	// GPUWeights gives the relative probability of requesting 1, 2 or 4
	// GPUs. The zero value defaults to {40, 40, 20} — "jobs have varied
	// GPU requirements: some need a single GPU ... others need multiple
	// GPUs" (§5.2).
	GPUWeights [3]int
	// MeanDuration is the target mean solo runtime in seconds used to
	// derive iteration counts (default 120 s).
	MeanDuration float64
	// MinDuration and MaxDuration clamp the sampled duration
	// (defaults 30 s and 600 s).
	MinDuration, MaxDuration float64
	// HighPriorityShare is the fraction of jobs (0..1) tagged Priority 1,
	// modeling a latency-sensitive class mixed into the training stream.
	// At the default 0 the generator draws nothing extra from the RNG, so
	// every stream recorded before priorities existed is reproduced
	// byte-for-byte.
	HighPriorityShare float64
	// Seed makes the stream reproducible.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 10
	}
	if c.GPUWeights == [3]int{} {
		c.GPUWeights = [3]int{40, 40, 20}
	}
	if c.MeanDuration == 0 {
		c.MeanDuration = 120
	}
	if c.MinDuration == 0 {
		c.MinDuration = 30
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 600
	}
	return c
}

// Generate produces a reproducible job stream per §5.3. The reference
// topology is used only to translate target durations into iteration
// counts through the performance model.
func Generate(cfg GenConfig, topo *topology.Topology) ([]*job.Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("workload: non-positive job count %d", cfg.Jobs)
	}
	if cfg.HighPriorityShare < 0 || cfg.HighPriorityShare > 1 {
		return nil, fmt.Errorf("workload: high-priority share %g outside [0,1]", cfg.HighPriorityShare)
	}
	if topo == nil {
		return nil, fmt.Errorf("workload: nil topology")
	}
	rng := stats.NewRNG(cfg.Seed)
	totalW := cfg.GPUWeights[0] + cfg.GPUWeights[1] + cfg.GPUWeights[2]
	if totalW <= 0 {
		return nil, fmt.Errorf("workload: GPU weights sum to %d", totalW)
	}

	jobs := make([]*job.Job, 0, cfg.Jobs)
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		// Poisson process: exponential inter-arrival gaps, rate per second.
		now += rng.Exponential(cfg.ArrivalRate / 60)

		class := jobgraph.BatchClass(rng.Binomial(3, 0.5))
		nn := perfmodel.NN(rng.Binomial(2, 0.5))

		gpus := 1
		switch pick := rng.Intn(totalW); {
		case pick < cfg.GPUWeights[0]:
			gpus = 1
		case pick < cfg.GPUWeights[0]+cfg.GPUWeights[1]:
			gpus = 2
		default:
			gpus = 4
		}
		if gpus > topo.NumGPUs() {
			gpus = topo.NumGPUs()
		}

		minU := 0.3
		if gpus > 1 {
			minU = 0.5
		}

		duration := rng.Exponential(1 / cfg.MeanDuration)
		if duration < cfg.MinDuration {
			duration = cfg.MinDuration
		}
		if duration > cfg.MaxDuration {
			duration = cfg.MaxDuration
		}

		j := job.New(fmt.Sprintf("J%04d", i), nn, class.Size(), gpus, minU, now)
		best := topo.BestAllocation(gpus)
		iter := perfmodel.IterationTime(nn, class.Size(), topo, best, 1)
		iters := int(duration / iter)
		if iters < 1 {
			iters = 1
		}
		j.Iterations = iters
		if cfg.HighPriorityShare > 0 && rng.Float64() < cfg.HighPriorityShare {
			j.Priority = 1
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}
