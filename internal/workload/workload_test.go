package workload

import (
	"math"
	"testing"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func TestTable1MatchesPaper(t *testing.T) {
	jobs := Table1()
	if len(jobs) != 6 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	// Table 1 of the paper, column by column.
	wantModels := []perfmodel.NN{
		perfmodel.AlexNet, perfmodel.GoogLeNet, perfmodel.AlexNet,
		perfmodel.AlexNet, perfmodel.AlexNet, perfmodel.CaffeRef,
	}
	wantBatch := []int{1, 4, 1, 4, 1, 1}
	wantGPUs := []int{1, 1, 1, 2, 2, 2}
	wantMinU := []float64{0.3, 0.3, 0.3, 0.5, 0.5, 0.5}
	wantArrival := []float64{0.51, 15.03, 24.36, 25.33, 29.33, 29.89}
	for i, j := range jobs {
		if j.Model != wantModels[i] {
			t.Fatalf("J%d model = %v", i, j.Model)
		}
		if j.BatchSize != wantBatch[i] {
			t.Fatalf("J%d batch = %d", i, j.BatchSize)
		}
		if j.GPUs != wantGPUs[i] {
			t.Fatalf("J%d GPUs = %d", i, j.GPUs)
		}
		if j.MinUtility != wantMinU[i] {
			t.Fatalf("J%d min utility = %v", i, j.MinUtility)
		}
		if j.Arrival != wantArrival[i] {
			t.Fatalf("J%d arrival = %v", i, j.Arrival)
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("J%d invalid: %v", i, err)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	topo := topology.Power8Minsky()
	if _, err := Generate(GenConfig{Jobs: 0}, topo); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if _, err := Generate(GenConfig{Jobs: 10}, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Generate(GenConfig{Jobs: 10, GPUWeights: [3]int{0, 0, -1}}, topo); err == nil {
		t.Fatal("negative GPU weights accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	a, err := Generate(GenConfig{Jobs: 50, Seed: 4}, topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Jobs: 50, Seed: 4}, topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Model != b[i].Model || a[i].BatchSize != b[i].BatchSize ||
			a[i].GPUs != b[i].GPUs || a[i].Arrival != b[i].Arrival ||
			a[i].Iterations != b[i].Iterations {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
	c, err := Generate(GenConfig{Jobs: 50, Seed: 5}, topo)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Model == c[i].Model && a[i].BatchSize == c[i].BatchSize && a[i].GPUs == c[i].GPUs {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateArrivalsPoisson(t *testing.T) {
	topo := topology.Power8Minsky()
	jobs, err := Generate(GenConfig{Jobs: 2000, ArrivalRate: 10, Seed: 7}, topo)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = j.Arrival
	}
	// λ = 10 jobs/minute → mean gap 6 s.
	meanGap := jobs[len(jobs)-1].Arrival / float64(len(jobs)-1)
	if math.Abs(meanGap-6) > 0.5 {
		t.Fatalf("mean inter-arrival %.2fs, want ≈6s", meanGap)
	}
}

func TestGenerateDistributions(t *testing.T) {
	topo := topology.Cluster(3, topology.KindMinsky)
	jobs, err := Generate(GenConfig{Jobs: 4000, Seed: 11}, topo)
	if err != nil {
		t.Fatal(err)
	}
	classCounts := map[jobgraph.BatchClass]int{}
	modelCounts := map[perfmodel.NN]int{}
	gpuCounts := map[int]int{}
	for _, j := range jobs {
		classCounts[j.Class()]++
		modelCounts[j.Model]++
		gpuCounts[j.GPUs]++
		if j.GPUs > 1 && j.MinUtility != 0.5 {
			t.Fatalf("multi-GPU job with min utility %v", j.MinUtility)
		}
		if j.GPUs == 1 && j.MinUtility != 0.3 {
			t.Fatalf("single-GPU job with min utility %v", j.MinUtility)
		}
		if j.Iterations < 1 {
			t.Fatal("job with no iterations")
		}
	}
	// Binomial(3, ½): P(tiny)=P(big)=1/8, P(small)=P(medium)=3/8.
	n := float64(len(jobs))
	if f := float64(classCounts[jobgraph.BatchTiny]) / n; math.Abs(f-0.125) > 0.02 {
		t.Fatalf("P(tiny) = %.3f, want ≈0.125", f)
	}
	if f := float64(classCounts[jobgraph.BatchSmall]) / n; math.Abs(f-0.375) > 0.03 {
		t.Fatalf("P(small) = %.3f, want ≈0.375", f)
	}
	// Binomial(2, ½): AlexNet 1/4, CaffeRef 1/2, GoogLeNet 1/4.
	if f := float64(modelCounts[perfmodel.CaffeRef]) / n; math.Abs(f-0.5) > 0.03 {
		t.Fatalf("P(CaffeRef) = %.3f, want ≈0.5", f)
	}
	// GPU mix 40/40/20.
	if f := float64(gpuCounts[4]) / n; math.Abs(f-0.2) > 0.03 {
		t.Fatalf("P(4 GPUs) = %.3f, want ≈0.2", f)
	}
}

func TestGenerateDurationClamping(t *testing.T) {
	topo := topology.Power8Minsky()
	jobs, err := Generate(GenConfig{
		Jobs: 500, Seed: 3,
		MeanDuration: 100, MinDuration: 50, MaxDuration: 200,
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		best := topo.BestAllocation(j.GPUs)
		dur := float64(j.Iterations) * perfmodel.IterationTime(j.Model, j.BatchSize, topo, best, 1)
		// One iteration of slack for rounding.
		iter := perfmodel.IterationTime(j.Model, j.BatchSize, topo, best, 1)
		if dur < 50-iter || dur > 200+iter {
			t.Fatalf("job %s solo duration %.1fs outside [50, 200]", j.ID, dur)
		}
	}
}

func TestGenerateGPUCapClampedToTopology(t *testing.T) {
	topo := topology.Power8Minsky() // 4 GPUs
	jobs, err := Generate(GenConfig{Jobs: 200, Seed: 1, GPUWeights: [3]int{0, 0, 1}}, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.GPUs > 4 {
			t.Fatalf("job requests %d GPUs on a 4-GPU topology", j.GPUs)
		}
	}
}
