package simulator

import (
	"math"
	"testing"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/sched"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

func TestRunRequiresTopology(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	bad := job.New("", perfmodel.AlexNet, 1, 1, 0.3, 0)
	_, err := Run(Config{Topology: topology.Power8Minsky()}, []*job.Job{bad})
	if err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestSoloJobRunsAtIdealTime(t *testing.T) {
	topo := topology.Power8Minsky()
	j := job.New("solo", perfmodel.AlexNet, 1, 2, 0.5, 0)
	j.Iterations = 100
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if math.Abs(jr.Run-jr.Ideal) > 1e-6 {
		t.Fatalf("solo run %.4f != ideal %.4f", jr.Run, jr.Ideal)
	}
	if jr.SlowdownQoS != 0 || jr.Wait != 0 {
		t.Fatalf("solo job slowdown %.4f wait %.4f", jr.SlowdownQoS, jr.Wait)
	}
	if !jr.P2P {
		t.Fatal("solo 2-GPU job should get a P2P placement")
	}
	if res.Makespan != jr.Finish {
		t.Fatal("makespan mismatch")
	}
}

func TestCrossMachineJobsDoNotInterfere(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	a := job.New("a", perfmodel.AlexNet, 1, 4, 0.0, 0)
	a.Iterations = 100
	b := job.New("b", perfmodel.AlexNet, 1, 4, 0.0, 0)
	b.Iterations = 100
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if jr.SlowdownQoS > 1e-9 {
			t.Fatalf("job %s slowed %.4f on separate machines", jr.Job.ID, jr.SlowdownQoS)
		}
	}
}

func TestCoLocatedJobsInterfereMatchingFig6(t *testing.T) {
	// Two tiny-batch 2-GPU AlexNets on one Minsky: each packed on its
	// own socket, suffering the Figure 6 same-machine slowdown (≈30%).
	topo := topology.Power8Minsky()
	a := job.New("a", perfmodel.AlexNet, 1, 2, 0.0, 0)
	a.Iterations = 1000
	b := job.New("b", perfmodel.AlexNet, 1, 2, 0.0, 0)
	b.Iterations = 1000
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if jr.SlowdownQoS < 0.2 || jr.SlowdownQoS > 0.35 {
			t.Fatalf("job %s slowdown %.3f, want ≈0.30 (Figure 6)", jr.Job.ID, jr.SlowdownQoS)
		}
	}
}

func TestInterferenceEndsWhenCoRunnerFinishes(t *testing.T) {
	// A long job co-located with a short one: its effective slowdown is
	// between solo and fully-overlapped.
	topo := topology.Power8Minsky()
	long := job.New("long", perfmodel.AlexNet, 1, 2, 0.0, 0)
	long.Iterations = 2000
	short := job.New("short", perfmodel.AlexNet, 1, 2, 0.0, 0)
	short.Iterations = 200
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, []*job.Job{long, short})
	if err != nil {
		t.Fatal(err)
	}
	var longR JobResult
	for _, jr := range res.Jobs {
		if jr.Job.ID == "long" {
			longR = jr
		}
	}
	if longR.SlowdownQoS <= 0.0 {
		t.Fatal("long job should suffer some interference")
	}
	if longR.SlowdownQoS >= 0.29 {
		t.Fatalf("long job slowdown %.3f should be well below the full 0.30 (short co-runner left early)", longR.SlowdownQoS)
	}
}

func TestQueueedJobWaits(t *testing.T) {
	topo := topology.Power8Minsky()
	first := job.New("first", perfmodel.AlexNet, 128, 4, 0.0, 0)
	first.Iterations = 50
	second := job.New("second", perfmodel.AlexNet, 128, 4, 0.0, 1)
	second.Iterations = 50
	res, err := Run(Config{Topology: topo, Policy: sched.FCFS}, []*job.Job{first, second})
	if err != nil {
		t.Fatal(err)
	}
	var sec JobResult
	for _, jr := range res.Jobs {
		if jr.Job.ID == "second" {
			sec = jr
		}
	}
	if sec.Wait <= 0 {
		t.Fatal("second job should have waited for the first")
	}
	if sec.SlowdownQoSWait <= sec.SlowdownQoS {
		t.Fatal("waiting slowdown should exceed pure QoS slowdown")
	}
}

func TestDeterminism(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 30, Seed: 9}, topo)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(Config{Topology: topo, Policy: sched.TopoAwareP, Seed: 5}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Topology: topo, Policy: sched.TopoAwareP, Seed: 5}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("makespans differ: %v vs %v", r1.Makespan, r2.Makespan)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Finish != r2.Jobs[i].Finish {
			t.Fatalf("job %s finish differs", r1.Jobs[i].Job.ID)
		}
	}
}

func TestJitterChangesRuntimesButNotPlacements(t *testing.T) {
	topo := topology.Power8Minsky()
	mk := func() []*job.Job {
		j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
		j.Iterations = 500
		return []*job.Job{j}
	}
	base, err := Run(Config{Topology: topo, Policy: sched.TopoAware}, mk())
	if err != nil {
		t.Fatal(err)
	}
	jit, err := Run(Config{Topology: topo, Policy: sched.TopoAware, JitterStddev: 0.05, Seed: 3}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan == jit.Makespan {
		t.Fatal("jitter had no effect")
	}
	if jit.Jobs[0].GPUs[0] != base.Jobs[0].GPUs[0] {
		t.Fatal("jitter changed placement")
	}
}

func TestTable1Regression(t *testing.T) {
	// Locks in the Figure 8 reproduction shape: the topology-aware
	// policies beat the greedy ones by ≈1.2-1.3x in cumulative time with
	// zero SLO violations and fully P2P multi-GPU placements.
	topo := topology.Power8Minsky()
	results := map[sched.Policy]*Result{}
	for _, pol := range sched.AllPolicies() {
		res, err := Run(Config{Topology: topo, Policy: pol}, workload.Table1())
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		results[pol] = res
	}
	bf := results[sched.BestFit]
	fc := results[sched.FCFS]
	tp := results[sched.TopoAwareP]

	if bf.SLOViolations() < 2 {
		t.Fatalf("BF violations = %d, want >= 2", bf.SLOViolations())
	}
	if tp.SLOViolations() != 0 {
		t.Fatalf("TOPO-AWARE-P violations = %d, want 0", tp.SLOViolations())
	}
	speedup := bf.Makespan / tp.Makespan
	if speedup < 1.15 || speedup > 1.45 {
		t.Fatalf("TOPO-AWARE-P speedup over BF = %.3f, want ≈1.2-1.3 (paper ≈1.30)", speedup)
	}
	if fc.Makespan <= tp.Makespan {
		t.Fatal("FCFS should be slower than TOPO-AWARE-P")
	}
	// TOPO-AWARE-P gives every multi-GPU job a P2P placement (Figure 8d).
	for _, jr := range tp.Jobs {
		if jr.Job.GPUs >= 2 && !jr.P2P {
			t.Fatalf("job %s lacks P2P under TOPO-AWARE-P", jr.Job.ID)
		}
	}
	// The greedy policies route at least one multi-GPU job through the
	// CPU (no P2P).
	routed := 0
	for _, jr := range bf.Jobs {
		if jr.Job.GPUs >= 2 && !jr.P2P {
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("BF unexpectedly gave everyone P2P")
	}
}

func TestSamples(t *testing.T) {
	topo := topology.Power8Minsky()
	j := job.New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	j.Iterations = 1000
	res, err := Run(Config{Topology: topo, Policy: sched.TopoAware, SampleInterval: 5}, []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 10 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].Time <= res.Samples[i-1].Time {
			t.Fatal("sample times not increasing")
		}
	}
	// While the job runs, P2P bandwidth is positive and utility recorded.
	mid := res.Samples[len(res.Samples)/2]
	if mid.Running != 1 || mid.P2PBandwidth <= 0 || mid.MeanUtility <= 0 {
		t.Fatalf("mid sample = %+v", mid)
	}
}

func TestTimelineIntervals(t *testing.T) {
	topo := topology.Power8Minsky()
	res, err := Run(Config{Topology: topo, Policy: sched.FCFS}, workload.Table1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 6 {
		t.Fatalf("timeline intervals = %d", len(res.Timeline))
	}
	for _, iv := range res.Timeline {
		if iv.Finish <= iv.Start {
			t.Fatalf("interval %+v inverted", iv)
		}
		if len(iv.GPUs) == 0 {
			t.Fatalf("interval %+v without GPUs", iv)
		}
	}
}

func TestResultAggregates(t *testing.T) {
	topo := topology.Power8Minsky()
	res, err := Run(Config{Topology: topo, Policy: sched.BestFit}, workload.Table1())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWait() < 0 {
		t.Fatal("negative total wait")
	}
	if res.MeanSlowdownQoS() < 0 || res.MeanSlowdownQoSWait() < res.MeanSlowdownQoS() {
		t.Fatal("slowdown aggregates inconsistent")
	}
	if res.SchedStats.Placements != 6 {
		t.Fatalf("placements = %d", res.SchedStats.Placements)
	}
}

func TestDuplicateJobIDsRejected(t *testing.T) {
	topo := topology.Power8Minsky()
	a := job.New("dup", perfmodel.AlexNet, 1, 1, 0.3, 0)
	b := job.New("dup", perfmodel.AlexNet, 1, 1, 0.3, 1)
	if _, err := Run(Config{Topology: topo, Policy: sched.FCFS}, []*job.Job{a, b}); err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
}
