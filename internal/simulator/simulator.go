// Package simulator is the trace-driven cluster simulator of §5.3: a
// discrete-event engine that drives the scheduler with job arrivals and
// completions, models job progress as a piecewise-constant iteration rate
// (base iteration time from the performance model, inflated by the
// co-location interference of the jobs sharing its machines), and records
// the per-job and per-policy metrics the paper's figures report.
//
// The companion package caffesim plays the role of the paper's prototype:
// it executes jobs at single-iteration granularity. This simulator
// abstracts iterations into continuous rates, which is what makes the
// 10k-job/1k-machine scenarios of §5.5 tractable — mirroring exactly why
// the authors built a simulator next to their prototype.
package simulator

import (
	"container/heap"
	"fmt"
	"math"
	"slices"
	"strings"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/sched"
	"gputopo/internal/schedcore"
	"gputopo/internal/stats"
	"gputopo/internal/topology"
)

// Config parameterizes one simulation run.
type Config struct {
	// Topology is the physical cluster; required.
	Topology *topology.Topology
	// Policy selects the placement strategy.
	Policy sched.Policy
	// Weights are the utility α coefficients (DefaultWeights when zero).
	Weights core.Weights
	// Profiles is the job profile store (generated from the topology
	// when nil).
	Profiles *profile.Store
	// ComputeScale inflates compute times (1.0 = P100-class GPUs).
	ComputeScale float64
	// JitterStddev adds relative Gaussian jitter to every job's base
	// iteration time, emulating run-to-run hardware variability (the
	// paper repeats every experiment five times, §3.1). 0 disables.
	JitterStddev float64
	// Seed drives the jitter RNG.
	Seed uint64
	// SampleInterval is the spacing of the bandwidth/utility time series
	// (seconds); 0 disables sampling.
	SampleInterval float64
	// DisableEpochGate turns off the scheduler's version-gated
	// rescheduling. Decisions are bit-identical either way (the
	// equivalence tests prove it); the switch exists for those tests and
	// as an escape hatch.
	DisableEpochGate bool
	// DisableWakeIndex turns off the scheduler's wake-up index, forcing
	// the full-queue walk on every event. Artifacts are bit-identical
	// either way (TestWakeIndexEquivalence proves it); the switch exists
	// for those tests and as an escape hatch.
	DisableWakeIndex bool
	// DisablePlaceCache turns off the canonical-shape placement cache,
	// re-running the mapper on every decision. Like the gate and the
	// index, decisions are bit-identical either way (the differential
	// harness proves it across all gate×index×cache configurations);
	// the switch exists for those tests, for cache-on-vs-off benchmarks,
	// and as an escape hatch.
	DisablePlaceCache bool
	// Discipline selects the queue ordering by name ("fifo", "priority";
	// empty: the default arrival FIFO). See schedcore.ParseDiscipline.
	Discipline string
	// EnablePreemption turns on topology-aware preemption: positive-
	// priority jobs that cannot place may evict strictly lower-priority
	// running ones. Evicted jobs keep their progress (iterations already
	// completed are not repeated) and re-enter the queue.
	EnablePreemption bool
}

// JobResult records the outcome of one job.
type JobResult struct {
	Job     *job.Job
	GPUs    []int
	Start   float64 // placement time (s)
	Finish  float64 // completion time (s)
	Wait    float64 // Start - Arrival
	Run     float64 // Finish - Start
	Ideal   float64 // solo runtime under the best placement
	Utility float64 // placement utility at decision time
	P2P     bool
	// SlowdownQoS is Run/Ideal - 1 (Figure 8e: placement quality only).
	SlowdownQoS float64
	// SlowdownQoSWait is (Finish-Arrival)/Ideal - 1 (Figure 8f: placement
	// quality plus queue waiting).
	SlowdownQoSWait float64
	SLOViolated     bool
	Postponements   int
	// Preemptions counts how many times the job was evicted by a
	// higher-priority placement before finishing. Start/Wait anchor to
	// the FIRST placement, so an evicted job's wait does not restart.
	Preemptions int
}

// Sample is one point of the bandwidth/utility time series.
type Sample struct {
	Time float64
	// P2PBandwidth is the aggregate GPU traffic of jobs whose GPUs all
	// communicate peer-to-peer (GB/s); RoutedBandwidth covers jobs whose
	// traffic is routed through host memory (the "GPU-CPU-GPU" series of
	// Figure 8).
	P2PBandwidth    float64
	RoutedBandwidth float64
	// MeanUtility is the mean placement utility of running jobs
	// (Figure 9).
	MeanUtility float64
	// Running is the number of running jobs.
	Running int
}

// Interval is one allocation of a job onto GPUs, for timeline renderings.
type Interval struct {
	JobID  string
	GPUs   []int
	Start  float64
	Finish float64
}

// Result aggregates a full simulation run.
type Result struct {
	Policy sched.Policy
	// Jobs holds per-job results ordered by job ID.
	Jobs []JobResult
	// Makespan is the cumulative execution time: the time the last job
	// finishes (§5.2.2 compares BF ≈461.7s ... TOPO-AWARE-P ≈356.9s).
	Makespan float64
	// Timeline holds the placement intervals (Figure 8a–d).
	Timeline []Interval
	// Samples is the bandwidth/utility time series.
	Samples []Sample
	// SchedStats carries the decision-time measurements (§5.5.3).
	SchedStats sched.Stats
}

// SLOViolations counts jobs placed below their minimum utility.
func (r *Result) SLOViolations() int {
	n := 0
	for _, jr := range r.Jobs {
		if jr.SLOViolated {
			n++
		}
	}
	return n
}

// MeanSlowdownQoS returns the average placement-quality slowdown.
func (r *Result) MeanSlowdownQoS() float64 {
	xs := make([]float64, len(r.Jobs))
	for i, jr := range r.Jobs {
		xs[i] = jr.SlowdownQoS
	}
	return stats.Mean(xs)
}

// MeanSlowdownQoSWait returns the average slowdown including waiting.
func (r *Result) MeanSlowdownQoSWait() float64 {
	xs := make([]float64, len(r.Jobs))
	for i, jr := range r.Jobs {
		xs[i] = jr.SlowdownQoSWait
	}
	return stats.Mean(xs)
}

// TotalWait returns the summed queue waiting time.
func (r *Result) TotalWait() float64 {
	var sum float64
	for _, jr := range r.Jobs {
		sum += jr.Wait
	}
	return sum
}

// eventKind orders simultaneous events: finishes free resources before
// arrivals claim them.
type eventKind int

const (
	evFinish eventKind = iota
	evArrival
	evSample
)

type event struct {
	time float64
	kind eventKind
	seq  int
	job  *job.Job // arrival
	id   string   // finish
	gen  int      // finish generation; stale events are skipped
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// runningJob tracks the progress of a placed job.
type runningJob struct {
	job        *job.Job
	gpus       []int
	machines   []int   // distinct machines spanned by gpus
	baseIter   float64 // seconds per iteration, placement-dependent, solo
	remaining  float64 // iterations left
	rate       float64 // iterations per second right now
	lastUpdate float64
	gen        int
	start      float64
	utility    float64
	p2p        bool
	violated   bool
	waited     int     // scheduling rounds spent queued before placement
	linkUsage  float64 // GB/s while running
	firstStart float64 // first placement time; == start unless re-placed after eviction
	preempts   int     // times this job has been evicted so far
}

// evictedCarry preserves an evicted job's progress between placements:
// the iterations it still owes, its first start (so Wait does not
// restart), and how often it has been displaced.
type evictedCarry struct {
	remaining  float64
	firstStart float64
	preempts   int
}

// Run executes the simulation of the given jobs (arrival times inside the
// jobs) and returns the per-job metrics.
func Run(cfg Config, jobs []*job.Job) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("simulator: nil topology")
	}
	if cfg.ComputeScale == 0 {
		cfg.ComputeScale = 1
	}
	zero := core.Weights{}
	if cfg.Weights == zero {
		cfg.Weights = core.DefaultWeights()
	}
	if cfg.Profiles == nil {
		maxGPUs := cfg.Topology.NumGPUs()
		if maxGPUs > 8 {
			maxGPUs = 8
		}
		cfg.Profiles = profile.Generate(cfg.Topology, maxGPUs)
	}
	mapper, err := core.NewMapper(cfg.Profiles, cfg.Weights)
	if err != nil {
		return nil, err
	}

	st := cluster.NewState(cfg.Topology)
	// The simulator is one driver of the shared scheduling core: it owns
	// a ManualClock it advances to each event's virtual time, so the
	// core's decision timestamps line up with simulation seconds exactly
	// as toposerve's line up with wall seconds.
	clock := schedcore.NewManualClock(0)
	disc, err := schedcore.ParseDiscipline(cfg.Discipline)
	if err != nil {
		return nil, err
	}
	scheduler := schedcore.New(cfg.Policy, st, mapper,
		schedcore.WithClock(clock), schedcore.WithQueueDiscipline(disc))
	if cfg.DisableEpochGate {
		scheduler.SetEpochGate(false)
	}
	if cfg.DisableWakeIndex {
		scheduler.SetWakeIndex(false)
	}
	if cfg.DisablePlaceCache {
		scheduler.SetPlaceCache(false)
	}
	if cfg.EnablePreemption {
		scheduler.SetPreemption(true)
	}
	rng := stats.NewRNG(cfg.Seed)

	sim := &engine{
		cfg:       cfg,
		state:     st,
		scheduler: scheduler,
		clock:     clock,
		running:   map[string]*runningJob{},
		byMachine: map[int]map[string]*runningJob{},
		rng:       rng,
	}

	seq := 0
	ids := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if ids[j.ID] {
			return nil, fmt.Errorf("simulator: duplicate job ID %q", j.ID)
		}
		ids[j.ID] = true
		heap.Push(&sim.events, event{time: j.Arrival, kind: evArrival, seq: seq, job: j})
		seq++
	}
	sim.seq = seq
	if cfg.SampleInterval > 0 {
		heap.Push(&sim.events, event{time: 0, kind: evSample, seq: sim.nextSeq()})
	}

	if err := sim.loop(len(jobs)); err != nil {
		return nil, err
	}

	slices.SortFunc(sim.results, func(a, b JobResult) int {
		return strings.Compare(a.Job.ID, b.Job.ID)
	})
	slices.SortFunc(sim.timeline, func(a, b Interval) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		return strings.Compare(a.JobID, b.JobID)
	})
	return &Result{
		Policy:     cfg.Policy,
		Jobs:       sim.results,
		Makespan:   sim.makespan,
		Timeline:   sim.timeline,
		Samples:    sim.samples,
		SchedStats: scheduler.Stats(),
	}, nil
}

type engine struct {
	cfg       Config
	state     *cluster.State
	scheduler *schedcore.Core
	clock     *schedcore.ManualClock
	events    eventHeap
	seq       int
	now       float64
	running   map[string]*runningJob
	byMachine map[int]map[string]*runningJob
	evicted   map[string]*evictedCarry // progress banked across preemptions
	results   []JobResult
	timeline  []Interval
	samples   []Sample
	makespan  float64
	finished  int
	rng       *stats.RNG

	// Reusable scratch buffers for the per-event paths. Every event used
	// to allocate short-lived map[int]bool / map[string]bool sets and id
	// slices in runScheduler, refreshMachines and interferenceOn; at 10k
	// jobs that is millions of allocations doing no work. Each buffer is
	// owned by exactly one (non-reentrant) method.
	affectedScratch []int    // runScheduler/finish: machines to refresh
	refreshSeen     []string // refreshMachines: ids already re-armed
	refreshIDs      []string // refreshMachines: per-machine id batch
	interfIDs       []string // interferenceOn: co-runner ids
	sampleIDs       []string // takeSample: running ids
}

func (e *engine) nextSeq() int {
	e.seq++
	return e.seq
}

func (e *engine) loop(totalJobs int) error {
	guard := 0
	for e.events.Len() > 0 {
		guard++
		if guard > 200*totalJobs+1_000_000 {
			return fmt.Errorf("simulator: event budget exceeded (livelock?)")
		}
		ev := heap.Pop(&e.events).(event)
		if ev.time < e.now-1e-9 {
			return fmt.Errorf("simulator: time went backwards (%.6f -> %.6f)", e.now, ev.time)
		}
		if ev.time > e.now {
			e.now = ev.time
		}
		e.clock.Set(e.now)
		switch ev.kind {
		case evArrival:
			if err := e.scheduler.Submit(ev.job); err != nil {
				return err
			}
			e.runScheduler()
		case evFinish:
			r, ok := e.running[ev.id]
			if !ok || r.gen != ev.gen {
				continue // stale
			}
			if err := e.finish(r); err != nil {
				return err
			}
			e.runScheduler()
		case evSample:
			e.takeSample()
			if e.finished < totalJobs {
				heap.Push(&e.events, event{
					time: ev.time + e.cfg.SampleInterval,
					kind: evSample,
					seq:  e.nextSeq(),
				})
			}
		}
		if e.finished == totalJobs && e.scheduler.QueueLen() == 0 && !e.hasPending() {
			break
		}
	}
	if e.finished != totalJobs {
		return fmt.Errorf("simulator: only %d of %d jobs finished", e.finished, totalJobs)
	}
	return nil
}

func (e *engine) hasPending() bool {
	for _, ev := range e.events {
		if ev.kind != evSample {
			return true
		}
	}
	return false
}

// advanceJob integrates one job's progress up to time t at its current
// rate. Jobs advance lazily — only when their rate is about to change or
// they finish — so event cost scales with affected machines, not with the
// total number of running jobs.
func (e *engine) advanceJob(r *runningJob, t float64) {
	elapsed := t - r.lastUpdate
	if elapsed > 0 {
		r.remaining -= elapsed * r.rate
		if r.remaining < 0 {
			r.remaining = 0
		}
		r.lastUpdate = t
	}
}

// runScheduler performs Algorithm 1 iterations, starts any placed jobs,
// and refreshes the rates of every job on the machines those placements
// touched. A round that preempted re-enqueues its victims only after
// dispatch, so when evictions occurred the loop runs another round at the
// same virtual time — the victims get their shot at the capacity the
// preemptors left before the simulation moves on. Termination: every
// extra round is caused by a preemptive placement, and each such
// placement swaps strictly-lower-priority running jobs for a
// higher-priority one, so the running set's priority multiset strictly
// climbs and the chain is finite.
func (e *engine) runScheduler() {
	affected := e.affectedScratch[:0]
	for rounds := 0; ; rounds++ {
		if rounds > 10_000 {
			panic("simulator: preemption rounds did not converge")
		}
		decisions := e.scheduler.Schedule()
		evicted := false
		for _, d := range decisions {
			for i := range d.Evictions {
				affected = append(affected, e.evict(d.Evictions[i].Job.ID)...)
				evicted = true
			}
			if d.Postponed {
				continue
			}
			affected = append(affected, e.start(d)...)
		}
		if !evicted {
			break
		}
	}
	e.affectedScratch = affected
	if len(affected) > 0 {
		e.refreshMachines(affected)
	}
}

// evict removes a preempted job from the engine's bookkeeping, banking
// its progress (advanced to the current instant) so a later re-placement
// resumes where the job stopped. The in-flight finish event dies on the
// running-map lookup in loop(). The interval the job did run is recorded
// on the timeline; its machines are returned for the rate refresh.
func (e *engine) evict(id string) []int {
	r := e.running[id]
	e.advanceJob(r, e.now)
	if e.evicted == nil {
		e.evicted = map[string]*evictedCarry{}
	}
	e.evicted[id] = &evictedCarry{
		remaining:  r.remaining,
		firstStart: r.firstStart,
		preempts:   r.preempts + 1,
	}
	delete(e.running, id)
	for _, m := range r.machines {
		delete(e.byMachine[m], id)
		if len(e.byMachine[m]) == 0 {
			delete(e.byMachine, m)
		}
	}
	if e.now > r.start {
		e.timeline = append(e.timeline, Interval{JobID: id, GPUs: r.gpus, Start: r.start, Finish: e.now})
	}
	return r.machines
}

// sortedDedup sorts xs ascending and removes adjacent duplicates in
// place, returning the shortened slice.
func sortedDedup(xs []int) []int {
	slices.Sort(xs)
	return slices.Compact(xs)
}

func (e *engine) start(d *sched.Decision) []int {
	j := d.Job
	baseIter := perfmodel.IterationTimeMode(j.Model, j.BatchSize, e.cfg.Topology, d.Placement.GPUs, e.cfg.ComputeScale, j.Parallelism)
	if e.cfg.JitterStddev > 0 {
		f := e.rng.Normal(1, e.cfg.JitterStddev)
		if f < 0.5 {
			f = 0.5
		}
		baseIter *= f
	}
	r := &runningJob{
		job:        j,
		gpus:       d.Placement.GPUs,
		machines:   e.state.MachinesOf(d.Placement.GPUs),
		baseIter:   baseIter,
		remaining:  float64(j.Iterations),
		rate:       1 / baseIter,
		lastUpdate: e.now,
		start:      e.now,
		firstStart: e.now,
		utility:    d.Placement.Utility,
		p2p:        d.Placement.P2P,
		violated:   d.SLOViolated,
		waited:     d.Postponements,
		linkUsage:  perfmodel.AverageLinkUsage(j.Model, j.BatchSize, e.cfg.Topology, d.Placement.GPUs),
	}
	if c, ok := e.evicted[j.ID]; ok {
		// Re-placement after preemption: resume the remaining iterations
		// and keep the original start so Wait measures queue-to-first-GPU.
		r.remaining = c.remaining
		r.firstStart = c.firstStart
		r.preempts = c.preempts
		delete(e.evicted, j.ID)
	}
	e.running[j.ID] = r
	for _, m := range r.machines {
		jobs := e.byMachine[m]
		if jobs == nil {
			jobs = map[string]*runningJob{}
			e.byMachine[m] = jobs
		}
		jobs[j.ID] = r
	}
	return r.machines
}

// refreshMachines advances, re-rates and re-arms every job running on the
// given machines (passed as an unsorted, possibly duplicated scratch
// slice). Machines and jobs are visited in sorted order: iteration order
// decides event sequence numbers (tie-breaking of simultaneous finishes)
// and the addition order of interference terms, so ranging over the maps
// directly would let Go's randomized map order leak into results and
// break the bit-identical reproducibility the sweep engine asserts.
func (e *engine) refreshMachines(machines []int) {
	ms := sortedDedup(machines)
	seen := e.refreshSeen[:0]
	for _, m := range ms {
		ids := e.refreshIDs[:0]
		for id := range e.byMachine[m] {
			if !slices.Contains(seen, id) {
				//lint:ignore detmap seen is a membership set (only ever queried via slices.Contains); its element order is never observed
				seen = append(seen, id)
				ids = append(ids, id)
			}
		}
		slices.Sort(ids)
		for _, id := range ids {
			r := e.byMachine[m][id]
			e.advanceJob(r, e.now)
			slow := e.interferenceOn(r)
			r.rate = 1 / (r.baseIter * (1 + slow))
			r.gen++
			heap.Push(&e.events, event{
				time: e.now + r.remaining/r.rate,
				kind: evFinish,
				seq:  e.nextSeq(),
				id:   id,
				gen:  r.gen,
			})
		}
		e.refreshIDs = ids
	}
	e.refreshSeen = seen
}

func (e *engine) finish(r *runningJob) error {
	e.advanceJob(r, e.now)
	if err := e.scheduler.Release(r.job.ID); err != nil {
		return err
	}
	delete(e.running, r.job.ID)
	for _, m := range r.machines {
		delete(e.byMachine[m], r.job.ID)
		if len(e.byMachine[m]) == 0 {
			delete(e.byMachine, m)
		}
	}
	e.finished++
	if e.now > e.makespan {
		e.makespan = e.now
	}

	ideal := e.idealTime(r.job)
	// Run spans first placement to finish: for a preempted job it includes
	// the re-queued gaps, so SlowdownQoS charges the eviction delay to the
	// victim the same way interference slowdown is charged.
	run := e.now - r.firstStart
	wait := r.firstStart - r.job.Arrival
	e.results = append(e.results, JobResult{
		Job:             r.job,
		GPUs:            r.gpus,
		Start:           r.firstStart,
		Finish:          e.now,
		Wait:            wait,
		Run:             run,
		Ideal:           ideal,
		Utility:         r.utility,
		P2P:             r.p2p,
		SlowdownQoS:     math.Max(0, run/ideal-1),
		SlowdownQoSWait: math.Max(0, (e.now-r.job.Arrival)/ideal-1),
		SLOViolated:     r.violated,
		Postponements:   r.waited,
		Preemptions:     r.preempts,
	})
	e.timeline = append(e.timeline, Interval{
		JobID:  r.job.ID,
		GPUs:   r.gpus,
		Start:  r.start,
		Finish: e.now,
	})
	// Co-runners on the freed machines speed up.
	affected := append(e.affectedScratch[:0], r.machines...)
	e.affectedScratch = affected
	e.refreshMachines(affected)
	return nil
}

// idealTime is the job's solo runtime under its best possible placement on
// an empty cluster — the "fastest execution time" baseline of Figure 8e/f.
func (e *engine) idealTime(j *job.Job) float64 {
	topo := e.cfg.Topology
	g := j.GPUs
	if n := topo.NumGPUs(); g > n {
		g = n
	}
	best := topo.BestAllocation(g)
	return float64(j.Iterations) * perfmodel.IterationTimeMode(j.Model, j.BatchSize, topo, best, e.cfg.ComputeScale, j.Parallelism)
}

// interferenceOn returns the current fractional slowdown of the victim
// from the jobs co-running on its machines, using the same calibrated
// sensitivity×pressure model the profiles are generated from (Figure 6).
func (e *engine) interferenceOn(victim *runningJob) float64 {
	topo := e.cfg.Topology
	// Collect co-runners in sorted ID order: float addition is not
	// associative, so summing in map order would make the slowdown — and
	// with it every downstream metric — depend on map iteration order.
	// Sort-then-compact replaces the former per-call seen-map: same set,
	// same order, no allocation (the scratch buffer is reused).
	ids := e.interfIDs[:0]
	for _, m := range victim.machines {
		for id := range e.byMachine[m] {
			if id != victim.job.ID {
				ids = append(ids, id)
			}
		}
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	e.interfIDs = ids
	var sum float64
	for _, id := range ids {
		other := e.running[id]
		locality := perfmodel.SameMachine
		for _, g := range victim.gpus {
			for _, og := range other.gpus {
				if topo.SameSocket(g, og) {
					locality = perfmodel.SameSocket
				}
			}
		}
		sum += perfmodel.CoLocationSlowdown(victim.job.Traits(), other.job.Traits(), locality)
	}
	return perfmodel.CapSlowdown(sum)
}

func (e *engine) takeSample() {
	s := Sample{Time: e.now, Running: len(e.running)}
	ids := e.sampleIDs[:0]
	for id := range e.running {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	e.sampleIDs = ids
	var utilSum float64
	for _, id := range ids {
		r := e.running[id]
		if r.p2p || len(r.gpus) < 2 {
			s.P2PBandwidth += r.linkUsage
		} else {
			s.RoutedBandwidth += r.linkUsage
		}
		utilSum += r.utility
	}
	if len(e.running) > 0 {
		s.MeanUtility = utilSum / float64(len(e.running))
	}
	e.samples = append(e.samples, s)
}
