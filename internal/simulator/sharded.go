package simulator

import (
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"

	"gputopo/internal/job"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore/domains"
	"gputopo/internal/stats"
	"gputopo/internal/topology"
)

// Shard is one scheduling domain's substrate: a domain-local topology
// (machines renumbered 0..n-1) plus the global machine index each local
// machine stands for. Profiles may be nil (generated from the domain
// topology, like Config.Profiles).
type Shard struct {
	Topology *topology.Topology
	Profiles *profile.Store
	// Machines lists the global machine indices, in local machine order:
	// local machine k is global machine Machines[k].
	Machines []int
}

// RunSharded is the multi-domain mode of the simulator: jobs are routed
// across the domains up front (domains.RouteStatic over each domain's
// capacity), every domain then runs a full independent simulation on its
// own worker, and the per-domain results are merged back into the global
// machine/GPU numbering deterministically — job results re-sort by ID,
// timelines by (start, job), samples align on the shared sampling grid —
// so the merged artifact is byte-identical at any worker count, the same
// contract the sweep engine's ForEach honors.
//
// cfg.Topology must be the global topology the shards partition; it
// anchors the local→global GPU translation and job generation, so a
// 1-domain split runs the exact configuration of the unsharded engine
// (same substrate, same seed, identity GPU map) and reproduces its
// result byte for byte — TestShardedOneDomainIdentical pins that.
// Multi-domain runs derive one jitter stream per domain from cfg.Seed.
func RunSharded(cfg Config, shards []Shard, jobs []*job.Job, workers int) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("simulator: nil topology")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("simulator: sharded run needs at least one domain")
	}
	caps := make([]domains.Capacity, len(shards))
	gpuMaps := make([][]int, len(shards))
	for d, sh := range shards {
		if sh.Topology == nil {
			return nil, fmt.Errorf("simulator: domain %d: nil topology", d)
		}
		caps[d] = domains.CapacityOf(sh.Topology)
		gmap, err := shardGPUMap(cfg.Topology, sh)
		if err != nil {
			return nil, fmt.Errorf("simulator: domain %d: %w", d, err)
		}
		gpuMaps[d] = gmap
	}
	assign, err := domains.RouteStatic(caps, jobs)
	if err != nil {
		return nil, fmt.Errorf("simulator: %w", err)
	}

	routed := make([][]*job.Job, len(shards))
	for i, j := range jobs {
		routed[assign[i]] = append(routed[assign[i]], j)
	}

	// One simulation per domain, each on its own worker. Results land in
	// pre-assigned slots so merge order is independent of scheduling; the
	// lowest-indexed failure wins, like sweep.ForEach.
	results := make([]*Result, len(shards))
	errs := make([]error, len(shards))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for d := range idx {
				sub := cfg
				sub.Topology = shards[d].Topology
				sub.Profiles = shards[d].Profiles
				if len(shards) > 1 {
					// Independent jitter streams per domain; a single domain
					// keeps cfg.Seed so it replays the unsharded run exactly.
					sub.Seed = stats.DeriveSeed(cfg.Seed, fmt.Sprintf("domain-%d", d))
				}
				results[d], errs[d] = Run(sub, routed[d])
			}
		}()
	}
	for d := range shards {
		idx <- d
	}
	close(idx)
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("simulator: domain %d: %w", d, err)
		}
	}
	return mergeShardResults(cfg, results, gpuMaps), nil
}

// shardGPUMap pairs each local GPU position with its global counterpart
// by walking the domain's machines in local order and zipping the two
// per-machine GPU lists, which is robust to any per-machine enumeration
// as long as local and global machines share a shape.
func shardGPUMap(global *topology.Topology, sh Shard) ([]int, error) {
	if sh.Topology.NumMachines() != len(sh.Machines) {
		return nil, fmt.Errorf("topology has %d machines, %d global indices given", sh.Topology.NumMachines(), len(sh.Machines))
	}
	gmap := make([]int, sh.Topology.NumGPUs())
	for k, gm := range sh.Machines {
		if gm < 0 || gm >= global.NumMachines() {
			return nil, fmt.Errorf("global machine index %d out of range (%d machines)", gm, global.NumMachines())
		}
		local := sh.Topology.GPUsOfMachine(k)
		glob := global.GPUsOfMachine(gm)
		if len(local) != len(glob) {
			return nil, fmt.Errorf("machine shape mismatch: local machine %d has %d GPUs, global machine %d has %d", k, len(local), gm, len(glob))
		}
		for i := range local {
			gmap[local[i]] = glob[i]
		}
	}
	return gmap, nil
}

// remapGPUs translates a placement's GPU list into global numbering,
// preserving order (anti-collocated placements are utility-ranked, not
// sorted, and the identity map must be a byte-level no-op).
func remapGPUs(gmap []int, gpus []int) []int {
	out := make([]int, len(gpus))
	for i, g := range gpus {
		out[i] = gmap[g]
	}
	return out
}

// mergeShardResults folds per-domain results into one global Result
// under the engine's ordering contracts.
func mergeShardResults(cfg Config, results []*Result, gpuMaps [][]int) *Result {
	merged := &Result{Policy: cfg.Policy}
	maxSamples := 0
	for d, r := range results {
		gmap := gpuMaps[d]
		for _, jr := range r.Jobs {
			jr.GPUs = remapGPUs(gmap, jr.GPUs)
			merged.Jobs = append(merged.Jobs, jr)
		}
		for _, iv := range r.Timeline {
			iv.GPUs = remapGPUs(gmap, iv.GPUs)
			merged.Timeline = append(merged.Timeline, iv)
		}
		if r.Makespan > merged.Makespan {
			merged.Makespan = r.Makespan
		}
		if len(r.Samples) > maxSamples {
			maxSamples = len(r.Samples)
		}
		s := &merged.SchedStats
		s.Decisions += r.SchedStats.Decisions
		s.Placements += r.SchedStats.Placements
		s.Postponements += r.SchedStats.Postponements
		s.SLOViolations += r.SchedStats.SLOViolations
		s.GateSkips += r.SchedStats.GateSkips
		s.WakeSkips += r.SchedStats.WakeSkips
		s.Preemptions += r.SchedStats.Preemptions
		s.Evictions += r.SchedStats.Evictions
		s.PlaceCacheHits += r.SchedStats.PlaceCacheHits
		s.PlaceCacheMisses += r.SchedStats.PlaceCacheMisses
		s.PlaceCacheEvictions += r.SchedStats.PlaceCacheEvictions
		s.DecisionTime += r.SchedStats.DecisionTime
		if r.SchedStats.MaxDecision > s.MaxDecision {
			s.MaxDecision = r.SchedStats.MaxDecision
		}
	}
	slices.SortFunc(merged.Jobs, func(a, b JobResult) int {
		return strings.Compare(a.Job.ID, b.Job.ID)
	})
	slices.SortFunc(merged.Timeline, func(a, b Interval) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		return strings.Compare(a.JobID, b.JobID)
	})
	// Every domain samples the identical time grid (0, Δ, 2Δ, … by the
	// same float accumulation), so step k aligns exactly across domains;
	// domains that finished early simply stop contributing. Bandwidths and
	// running counts add; mean utility re-weights by running jobs — except
	// when one domain carries the step alone, whose value passes through
	// untouched so a 1-domain merge is bit-exact.
	for k := 0; k < maxSamples; k++ {
		var s Sample
		contributors := 0
		var last Sample
		var utilSum float64
		for _, r := range results {
			if k >= len(r.Samples) {
				continue
			}
			src := r.Samples[k]
			s.Time = src.Time
			s.P2PBandwidth += src.P2PBandwidth
			s.RoutedBandwidth += src.RoutedBandwidth
			s.Running += src.Running
			utilSum += src.MeanUtility * float64(src.Running)
			if src.Running > 0 {
				contributors++
				last = src
			}
		}
		switch {
		case contributors == 1:
			s.MeanUtility = last.MeanUtility
		case s.Running > 0:
			s.MeanUtility = utilSum / float64(s.Running)
		}
		merged.Samples = append(merged.Samples, s)
	}
	return merged
}
