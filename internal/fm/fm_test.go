package fm

import (
	"math"
	"testing"

	"gputopo/internal/graph"
)

// clusteredGraph builds two dense 4-vertex clusters joined by one weak
// edge — the obvious optimal cut is the weak edge.
func clusteredGraph() *graph.Graph {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.AddVertex("")
	}
	for _, c := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				g.AddEdge(c[i], c[j], 10)
			}
		}
	}
	g.AddEdge(3, 4, 1)
	return g
}

func sideCounts(side []int) (int, int) {
	c0, c1 := 0, 0
	for _, s := range side {
		if s == 0 {
			c0++
		} else {
			c1++
		}
	}
	return c0, c1
}

func TestBipartitionFindsWeakCut(t *testing.T) {
	g := clusteredGraph()
	res := Bipartition(g, Options{})
	if res.CutWeight != 1 {
		t.Fatalf("cut weight = %v, want 1 (the weak edge)", res.CutWeight)
	}
	// The clusters must be intact.
	for _, c := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for _, v := range c[1:] {
			if res.Side[v] != res.Side[c[0]] {
				t.Fatalf("cluster split: sides %v", res.Side)
			}
		}
	}
}

func TestBipartitionBalance(t *testing.T) {
	g := clusteredGraph()
	res := Bipartition(g, Options{})
	c0, c1 := sideCounts(res.Side)
	if d := c0 - c1; d < -1 || d > 1 {
		t.Fatalf("imbalanced: %d vs %d", c0, c1)
	}
}

func TestBipartitionEmptyAndSingle(t *testing.T) {
	res := Bipartition(graph.New(), Options{})
	if len(res.Side) != 0 {
		t.Fatal("empty graph should yield empty sides")
	}
	g := graph.New()
	g.AddVertex("")
	res = Bipartition(g, Options{})
	if len(res.Side) != 1 {
		t.Fatalf("single-vertex sides = %v", res.Side)
	}
}

func TestBipartitionSeedsPinned(t *testing.T) {
	g := clusteredGraph()
	res := Bipartition(g, Options{Seed0: []int{0}, Seed1: []int{4}})
	if res.Side[0] != 0 || res.Side[4] != 1 {
		t.Fatalf("seeds not respected: %v", res.Side)
	}
}

func TestBipartitionCutWeightConsistent(t *testing.T) {
	g := clusteredGraph()
	res := Bipartition(g, Options{})
	if got := CutWeight(g, res.Side); math.Abs(got-res.CutWeight) > 1e-9 {
		t.Fatalf("reported cut %v, recomputed %v", res.CutWeight, got)
	}
}

func TestExhaustiveMatchesKnownOptimum(t *testing.T) {
	g := clusteredGraph()
	res := ExhaustiveBipartition(g, 1)
	if res.CutWeight != 1 {
		t.Fatalf("exhaustive cut = %v, want 1", res.CutWeight)
	}
}

// TestFMNearOptimalOnRandomGraphs checks FM against the exhaustive optimum
// on deterministic pseudo-random graphs. FM is a heuristic; we require it
// to reach the optimum on these small instances (it does, given the
// rollback pass structure), which also guards against regressions.
func TestFMNearOptimalOnRandomGraphs(t *testing.T) {
	state := uint64(7)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for trial := 0; trial < 30; trial++ {
		g := graph.New()
		n := 6 + int(next()%5) // 6..10 vertices
		for i := 0; i < n; i++ {
			g.AddVertex("")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if next()%3 != 0 {
					g.AddEdge(i, j, float64(1+next()%7))
				}
			}
		}
		fmRes := Bipartition(g, Options{})
		exRes := ExhaustiveBipartition(g, 1)
		// Allow a small slack: FM must be within 25% of optimal on these
		// tiny graphs and usually matches it exactly.
		if fmRes.CutWeight > exRes.CutWeight*1.25+1e-9 {
			t.Fatalf("trial %d: FM cut %v vs optimal %v", trial, fmRes.CutWeight, exRes.CutWeight)
		}
		c0, c1 := sideCounts(fmRes.Side)
		if d := c0 - c1; d < -1 || d > 1 {
			t.Fatalf("trial %d imbalanced: %d vs %d", trial, c0, c1)
		}
	}
}

func TestBipartitionImprovesOverInterleaved(t *testing.T) {
	g := clusteredGraph()
	// Interleaved start: vertices alternate sides, cutting both clusters.
	interleaved := make([]int, g.NumVertices())
	for i := range interleaved {
		interleaved[i] = i % 2
	}
	start := CutWeight(g, interleaved)
	res := Bipartition(g, Options{})
	if res.CutWeight >= start {
		t.Fatalf("FM did not improve: %v >= %v", res.CutWeight, start)
	}
}

func TestBipartitionMaxImbalance(t *testing.T) {
	// A path graph with 6 vertices; allow imbalance 3 and verify the
	// result still respects the looser constraint.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddVertex("")
	}
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	res := Bipartition(g, Options{MaxImbalance: 3})
	c0, c1 := sideCounts(res.Side)
	if d := c0 - c1; d < -3 || d > 3 {
		t.Fatalf("imbalance beyond limit: %d vs %d", c0, c1)
	}
	// A path's optimal cut is a single edge.
	if res.CutWeight > 1 {
		t.Fatalf("path cut = %v, want 1", res.CutWeight)
	}
}

func TestGainComputation(t *testing.T) {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("")
	}
	g.AddEdge(0, 1, 2) // internal if same side
	g.AddEdge(0, 2, 3) // external if across
	side := []int{0, 0, 1, 1}
	// Moving 0 to side 1: edge (0,1) becomes external (-2), edge (0,2)
	// becomes internal (+3): gain = 3 - 2 = 1.
	var w workspace
	w.load(g)
	if got := w.gain(side, 0); got != 1 {
		t.Fatalf("gain = %v, want 1", got)
	}
}
