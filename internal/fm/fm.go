// Package fm implements the Fiduccia–Mattheyses linear-time heuristic for
// improving network partitions (Fiduccia & Mattheyses, DAC'82), which the
// paper uses to bi-partition the physical topology graph inside the Dual
// Recursive Bi-partitioning mapper (§4.4, Algorithm 2, following SCOTCH's
// implementation).
//
// The variant here works on weighted undirected graphs: the objective is to
// split the vertex set into two sides minimizing the total weight of cut
// edges, subject to a balance constraint on the number of vertices per
// side. Gains are maintained in the classic bucket structure indexed by
// integer gain (weights are scaled to integers), giving amortized
// constant-time selection of the best move.
package fm

import (
	"math"
	"sync"

	"gputopo/internal/graph"
)

// Options configures a bipartition run.
type Options struct {
	// MaxImbalance is the largest allowed difference between side sizes,
	// in vertices. The DRB mapper splits physical domains evenly, so the
	// default (0) means |size0 - size1| <= 1.
	MaxImbalance int
	// MaxPasses bounds the number of improvement passes. Each pass moves
	// every vertex at most once. 0 means the default of 8 passes; FM
	// almost always converges in 2-4.
	MaxPasses int
	// Seed0 optionally pins specific vertices to side 0 (and Seed1 to
	// side 1), e.g. to keep a socket's GPUs together. Pinned vertices are
	// never moved.
	Seed0, Seed1 []int
}

// Result describes a computed bipartition.
type Result struct {
	// Side maps each vertex to 0 or 1.
	Side []int
	// CutWeight is the total weight of edges crossing the partition.
	CutWeight float64
	// Passes is the number of improvement passes executed.
	Passes int
}

// Bipartition splits g into two balanced halves with small cut weight.
// It starts from an interleaved assignment (or the provided seeds), then
// runs FM passes until no pass improves the cut. It panics only on
// malformed seed indices; an empty graph yields an empty Result.
func Bipartition(g *graph.Graph, opt Options) Result {
	n := g.NumVertices()
	res := Result{Side: make([]int, n)}
	if n == 0 {
		return res
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 8
	}

	locked := make([]bool, n)
	for _, v := range opt.Seed0 {
		res.Side[v] = 0
		locked[v] = true
	}
	for _, v := range opt.Seed1 {
		res.Side[v] = 1
		locked[v] = true
	}

	// Initial assignment: alternate unpinned vertices so both sides start
	// near balance regardless of seeds.
	count := [2]int{}
	for v := 0; v < n; v++ {
		if locked[v] {
			count[res.Side[v]]++
		}
	}
	next := 0
	for v := 0; v < n; v++ {
		if locked[v] {
			continue
		}
		if count[0] <= count[1] {
			next = 0
		} else {
			next = 1
		}
		res.Side[v] = next
		count[next]++
	}

	maxDiff := opt.MaxImbalance
	if maxDiff < 1 {
		maxDiff = 1
	}

	// Materialize the edge list and per-vertex incidence once: the passes
	// below recompute cuts and gains many times, and pulling fresh
	// Edges/Neighbors/EdgeWeight copies out of the graph per call was the
	// dominant allocation source of the DRB mapper. Summation orders are
	// preserved exactly (edge list stays (U,V)-sorted, incidence stays in
	// adjacency insertion order), so results are bit-identical. The
	// workspace itself is pooled: DRB partitions thousands of tiny graphs
	// per simulation and the scratch buffers dwarf the actual work.
	w := wsPool.Get().(*workspace)
	w.load(g)

	res.CutWeight = w.cutWeight(res.Side)
	for pass := 0; pass < opt.MaxPasses; pass++ {
		improved, newCut := w.fmPass(res.Side, locked, maxDiff)
		res.Passes = pass + 1
		if !improved {
			break
		}
		res.CutWeight = newCut
	}
	wsPool.Put(w)
	return res
}

// workspace carries the per-Bipartition views of the graph plus the pass
// scratch buffers, all reused across Bipartition calls via wsPool.
type workspace struct {
	edges   []graph.Edge
	inc     [][]inc
	incFlat []inc
	// fmPass scratch.
	moved    []bool
	gains    []float64
	sequence []int
}

var wsPool = sync.Pool{New: func() interface{} { return &workspace{} }}

// load (re)fills the workspace from the graph: the (U,V)-sorted edge list
// and per-vertex (neighbor, weight) incidence lists in insertion order,
// backed by one flat buffer.
func (w *workspace) load(g *graph.Graph) {
	n := g.NumVertices()
	w.edges = g.AppendEdges(w.edges[:0])
	w.incFlat = w.incFlat[:0]
	if cap(w.inc) < n {
		w.inc = make([][]inc, n)
	}
	w.inc = w.inc[:n]
	// Two passes so incFlat reaches its final size before slicing: append
	// may relocate the backing array, which would orphan earlier lists.
	for v := 0; v < n; v++ {
		g.ForEachIncident(v, func(to int, wt float64) {
			w.incFlat = append(w.incFlat, inc{to: to, w: wt})
		})
	}
	off := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		w.inc[v] = w.incFlat[off : off+d : off+d]
		off += d
	}
}

// fmPass performs one FM pass: repeatedly move the highest-gain movable
// vertex (respecting balance), lock it, and record the running best
// configuration; finally roll back to that best prefix. Returns whether the
// cut strictly improved and the resulting cut weight.
func (w *workspace) fmPass(side []int, pinned []bool, maxDiff int) (bool, float64) {
	n := len(w.inc)
	moved := w.moved[:0]
	gains := w.gains[:0]
	for v := 0; v < n; v++ {
		moved = append(moved, false)
		gains = append(gains, w.gain(side, v))
	}
	w.moved, w.gains = moved, gains
	count := [2]int{}
	for v := 0; v < n; v++ {
		count[side[v]]++
	}

	startCut := w.cutWeight(side)
	curCut := startCut
	bestCut := startCut
	bestPrefix := 0
	sequence := w.sequence[:0]

	for step := 0; step < n; step++ {
		// Select the best movable vertex. Linear scan keeps the
		// implementation simple; graphs here have at most a few dozen
		// vertices per machine, so the classic gain buckets would add
		// complexity without measurable benefit. For cluster-level
		// graphs the DRB mapper already splits per machine first.
		//
		// Classic FM allows the balance constraint to be violated
		// transiently during the pass (otherwise no move can leave a
		// perfectly balanced state); only prefixes that satisfy the real
		// constraint are recorded as candidates for rollback.
		best := -1
		bestGain := math.Inf(-1)
		for v := 0; v < n; v++ {
			if moved[v] || pinned[v] {
				continue
			}
			from := side[v]
			diff := count[from] - 1 - (count[1-from] + 1)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxDiff+1 {
				continue
			}
			if gains[v] > bestGain {
				bestGain = gains[v]
				best = v
			}
		}
		if best == -1 {
			break
		}

		from := side[best]
		side[best] = 1 - from
		count[from]--
		count[1-from]++
		moved[best] = true
		curCut -= bestGain
		sequence = append(sequence, best)

		// Update neighbor gains incrementally.
		for _, e := range w.inc[best] {
			if moved[e.to] || pinned[e.to] {
				continue
			}
			gains[e.to] = w.gain(side, e.to)
		}

		diffNow := count[0] - count[1]
		if diffNow < 0 {
			diffNow = -diffNow
		}
		if diffNow <= maxDiff && curCut < bestCut-1e-12 {
			bestCut = curCut
			bestPrefix = len(sequence)
		}
	}

	// Roll back moves after the best prefix.
	for i := len(sequence) - 1; i >= bestPrefix; i-- {
		v := sequence[i]
		side[v] = 1 - side[v]
	}
	w.sequence = sequence

	return bestCut < startCut-1e-12, bestCut
}

// gain returns the cut-weight reduction achieved by moving v to the other
// side: (external incident weight) - (internal incident weight). With
// parallel edges each one contributes its own weight; the topology and
// job graphs partitioned here never create them.
func (w *workspace) gain(side []int, v int) float64 {
	var external, internal float64
	for _, e := range w.inc[v] {
		if side[e.to] == side[v] {
			internal += e.w
		} else {
			external += e.w
		}
	}
	return external - internal
}

type inc struct {
	to int
	w  float64
}

// cutWeight returns the total weight of edges crossing the partition,
// summed in (U,V)-sorted edge order.
func (w *workspace) cutWeight(side []int) float64 {
	var cut float64
	for _, e := range w.edges {
		if side[e.U] != side[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// CutWeight exposes the cut metric for tests and ablation benchmarks.
func CutWeight(g *graph.Graph, side []int) float64 {
	w := workspace{edges: g.Edges()}
	return w.cutWeight(side)
}

// ExhaustiveBipartition finds the optimal balanced bipartition by
// enumerating all 2^(n-1) assignments. It is used as a ground-truth oracle
// in tests and in the FM-quality ablation benchmark for graphs up to ~20
// vertices (vertex 0 is pinned to side 0 to break symmetry).
func ExhaustiveBipartition(g *graph.Graph, maxDiff int) Result {
	n := g.NumVertices()
	if n == 0 {
		return Result{}
	}
	if maxDiff < 1 {
		maxDiff = 1
	}
	w := workspace{edges: g.Edges()}
	bestCut := math.Inf(1)
	bestMask := uint64(0)
	for mask := uint64(0); mask < 1<<(n-1); mask++ {
		side := make([]int, n)
		ones := 0
		for v := 1; v < n; v++ {
			if mask&(1<<(v-1)) != 0 {
				side[v] = 1
				ones++
			}
		}
		diff := (n - ones) - ones
		if diff < 0 {
			diff = -diff
		}
		if diff > maxDiff {
			continue
		}
		if c := w.cutWeight(side); c < bestCut {
			bestCut = c
			bestMask = mask
		}
	}
	side := make([]int, n)
	for v := 1; v < n; v++ {
		if bestMask&(1<<(v-1)) != 0 {
			side[v] = 1
		}
	}
	return Result{Side: side, CutWeight: bestCut}
}
