// Package fm implements the Fiduccia–Mattheyses linear-time heuristic for
// improving network partitions (Fiduccia & Mattheyses, DAC'82), which the
// paper uses to bi-partition the physical topology graph inside the Dual
// Recursive Bi-partitioning mapper (§4.4, Algorithm 2, following SCOTCH's
// implementation).
//
// The variant here works on weighted undirected graphs: the objective is to
// split the vertex set into two sides minimizing the total weight of cut
// edges, subject to a balance constraint on the number of vertices per
// side. Gains are maintained in the classic bucket structure indexed by
// integer gain (weights are scaled to integers), giving amortized
// constant-time selection of the best move.
package fm

import (
	"math"

	"gputopo/internal/graph"
)

// Options configures a bipartition run.
type Options struct {
	// MaxImbalance is the largest allowed difference between side sizes,
	// in vertices. The DRB mapper splits physical domains evenly, so the
	// default (0) means |size0 - size1| <= 1.
	MaxImbalance int
	// MaxPasses bounds the number of improvement passes. Each pass moves
	// every vertex at most once. 0 means the default of 8 passes; FM
	// almost always converges in 2-4.
	MaxPasses int
	// Seed0 optionally pins specific vertices to side 0 (and Seed1 to
	// side 1), e.g. to keep a socket's GPUs together. Pinned vertices are
	// never moved.
	Seed0, Seed1 []int
}

// Result describes a computed bipartition.
type Result struct {
	// Side maps each vertex to 0 or 1.
	Side []int
	// CutWeight is the total weight of edges crossing the partition.
	CutWeight float64
	// Passes is the number of improvement passes executed.
	Passes int
}

// Bipartition splits g into two balanced halves with small cut weight.
// It starts from an interleaved assignment (or the provided seeds), then
// runs FM passes until no pass improves the cut. It panics only on
// malformed seed indices; an empty graph yields an empty Result.
func Bipartition(g *graph.Graph, opt Options) Result {
	n := g.NumVertices()
	res := Result{Side: make([]int, n)}
	if n == 0 {
		return res
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 8
	}

	locked := make([]bool, n)
	for _, v := range opt.Seed0 {
		res.Side[v] = 0
		locked[v] = true
	}
	for _, v := range opt.Seed1 {
		res.Side[v] = 1
		locked[v] = true
	}

	// Initial assignment: alternate unpinned vertices so both sides start
	// near balance regardless of seeds.
	count := [2]int{}
	for v := 0; v < n; v++ {
		if locked[v] {
			count[res.Side[v]]++
		}
	}
	next := 0
	for v := 0; v < n; v++ {
		if locked[v] {
			continue
		}
		if count[0] <= count[1] {
			next = 0
		} else {
			next = 1
		}
		res.Side[v] = next
		count[next]++
	}

	maxDiff := opt.MaxImbalance
	if maxDiff < 1 {
		maxDiff = 1
	}

	res.CutWeight = cutWeight(g, res.Side)
	for pass := 0; pass < opt.MaxPasses; pass++ {
		improved, newCut := fmPass(g, res.Side, locked, maxDiff)
		res.Passes = pass + 1
		if !improved {
			break
		}
		res.CutWeight = newCut
	}
	return res
}

// fmPass performs one FM pass: repeatedly move the highest-gain movable
// vertex (respecting balance), lock it, and record the running best
// configuration; finally roll back to that best prefix. Returns whether the
// cut strictly improved and the resulting cut weight.
func fmPass(g *graph.Graph, side []int, pinned []bool, maxDiff int) (bool, float64) {
	n := g.NumVertices()
	moved := make([]bool, n)
	count := [2]int{}
	for v := 0; v < n; v++ {
		count[side[v]]++
	}

	gains := make([]float64, n)
	for v := 0; v < n; v++ {
		gains[v] = gain(g, side, v)
	}

	startCut := cutWeight(g, side)
	curCut := startCut
	bestCut := startCut
	bestPrefix := 0
	var sequence []int

	for step := 0; step < n; step++ {
		// Select the best movable vertex. Linear scan keeps the
		// implementation simple; graphs here have at most a few dozen
		// vertices per machine, so the classic gain buckets would add
		// complexity without measurable benefit. For cluster-level
		// graphs the DRB mapper already splits per machine first.
		//
		// Classic FM allows the balance constraint to be violated
		// transiently during the pass (otherwise no move can leave a
		// perfectly balanced state); only prefixes that satisfy the real
		// constraint are recorded as candidates for rollback.
		best := -1
		bestGain := math.Inf(-1)
		for v := 0; v < n; v++ {
			if moved[v] || pinned[v] {
				continue
			}
			from := side[v]
			diff := count[from] - 1 - (count[1-from] + 1)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxDiff+1 {
				continue
			}
			if gains[v] > bestGain {
				bestGain = gains[v]
				best = v
			}
		}
		if best == -1 {
			break
		}

		from := side[best]
		side[best] = 1 - from
		count[from]--
		count[1-from]++
		moved[best] = true
		curCut -= bestGain
		sequence = append(sequence, best)

		// Update neighbor gains incrementally.
		for _, u := range g.Neighbors(best) {
			if moved[u] || pinned[u] {
				continue
			}
			gains[u] = gain(g, side, u)
		}

		diffNow := count[0] - count[1]
		if diffNow < 0 {
			diffNow = -diffNow
		}
		if diffNow <= maxDiff && curCut < bestCut-1e-12 {
			bestCut = curCut
			bestPrefix = len(sequence)
		}
	}

	// Roll back moves after the best prefix.
	for i := len(sequence) - 1; i >= bestPrefix; i-- {
		v := sequence[i]
		side[v] = 1 - side[v]
	}

	return bestCut < startCut-1e-12, bestCut
}

// gain returns the cut-weight reduction achieved by moving v to the other
// side: (external incident weight) - (internal incident weight).
func gain(g *graph.Graph, side []int, v int) float64 {
	var external, internal float64
	for _, e := range incident(g, v) {
		if side[e.to] == side[v] {
			internal += e.w
		} else {
			external += e.w
		}
	}
	return external - internal
}

type inc struct {
	to int
	w  float64
}

func incident(g *graph.Graph, v int) []inc {
	ns := g.Neighbors(v)
	out := make([]inc, 0, len(ns))
	for _, u := range ns {
		w, _ := g.EdgeWeight(v, u)
		out = append(out, inc{to: u, w: w})
	}
	return out
}

// cutWeight returns the total weight of edges crossing the partition.
func cutWeight(g *graph.Graph, side []int) float64 {
	var cut float64
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// CutWeight exposes the cut metric for tests and ablation benchmarks.
func CutWeight(g *graph.Graph, side []int) float64 { return cutWeight(g, side) }

// ExhaustiveBipartition finds the optimal balanced bipartition by
// enumerating all 2^(n-1) assignments. It is used as a ground-truth oracle
// in tests and in the FM-quality ablation benchmark for graphs up to ~20
// vertices (vertex 0 is pinned to side 0 to break symmetry).
func ExhaustiveBipartition(g *graph.Graph, maxDiff int) Result {
	n := g.NumVertices()
	if n == 0 {
		return Result{}
	}
	if maxDiff < 1 {
		maxDiff = 1
	}
	bestCut := math.Inf(1)
	bestMask := uint64(0)
	for mask := uint64(0); mask < 1<<(n-1); mask++ {
		side := make([]int, n)
		ones := 0
		for v := 1; v < n; v++ {
			if mask&(1<<(v-1)) != 0 {
				side[v] = 1
				ones++
			}
		}
		diff := (n - ones) - ones
		if diff < 0 {
			diff = -diff
		}
		if diff > maxDiff {
			continue
		}
		if c := cutWeight(g, side); c < bestCut {
			bestCut = c
			bestMask = mask
		}
	}
	side := make([]int, n)
	for v := 1; v < n; v++ {
		if bestMask&(1<<(v-1)) != 0 {
			side[v] = 1
		}
	}
	return Result{Side: side, CutWeight: bestCut}
}
