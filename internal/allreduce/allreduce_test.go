package allreduce

import (
	"math"
	"testing"

	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func TestStepsAndVolume(t *testing.T) {
	if Steps(1) != 0 || Steps(2) != 2 || Steps(4) != 6 || Steps(8) != 14 {
		t.Fatal("step counts wrong")
	}
	if PerGPUVolume(100, 1) != 0 {
		t.Fatal("single GPU volume must be 0")
	}
	if PerGPUVolume(100, 2) != 100 {
		t.Fatalf("2-GPU volume = %v", PerGPUVolume(100, 2))
	}
	if PerGPUVolume(100, 4) != 150 {
		t.Fatalf("4-GPU volume = %v", PerGPUVolume(100, 4))
	}
}

func TestVolumeMatchesPerfmodelRingFactor(t *testing.T) {
	// The analytic model's RingVolume and this package's PerGPUVolume
	// must be the same arithmetic.
	for g := 2; g <= 8; g++ {
		grad := perfmodel.GetSpec(perfmodel.AlexNet).GradBytes
		a := perfmodel.RingVolume(perfmodel.AlexNet, g)
		b := PerGPUVolume(grad, g)
		if math.Abs(a-b) > 1 {
			t.Fatalf("g=%d: perfmodel %v vs allreduce %v", g, a, b)
		}
	}
}

func TestRingOrderPrefersNVLinkOnDGX1(t *testing.T) {
	topo := topology.DGX1()
	// GPUs 0-3 form an NVLink clique; a ring over them must keep every
	// hop on NVLink (bottleneck 20 GB/s), never dropping to PCIe.
	order := RingOrder(topo, []int{0, 1, 2, 3})
	if got := ringBottleneck(topo, order); got != topology.BandwidthNVLink {
		t.Fatalf("ring %v bottleneck %v, want %v", order, got, topology.BandwidthNVLink)
	}
}

func TestRingOrderMatchesBruteForceOnMinsky(t *testing.T) {
	topo := topology.Power8Minsky()
	gpus := []int{0, 1, 2, 3}
	order := RingOrder(topo, gpus)
	greedy := ringBottleneck(topo, order)
	// Brute force over all permutations.
	best := -1.0
	perm := append([]int(nil), gpus...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			if bw := ringBottleneck(topo, perm); bw > best {
				best = bw
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if greedy < best {
		t.Fatalf("greedy ring bottleneck %v < optimal %v", greedy, best)
	}
}

func TestSimulateValidation(t *testing.T) {
	topo := topology.Power8Minsky()
	if _, err := Simulate(topo, []int{0, 1}, -5, 0.85, 0); err == nil {
		t.Fatal("negative payload accepted")
	}
	if _, err := Simulate(topo, []int{0, 1}, 1e6, 0, 0); err == nil {
		t.Fatal("zero efficiency accepted")
	}
	res, err := Simulate(topo, []int{0}, 1e6, 0.85, 0)
	if err != nil || res.Time != 0 {
		t.Fatalf("single GPU all-reduce = %+v, %v", res, err)
	}
}

func TestSimulateBandwidthBound(t *testing.T) {
	topo := topology.Power8Minsky()
	payload := 244e6
	res, err := Simulate(topo, []int{0, 1}, payload, 0.85, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With zero latency the total time equals the per-GPU volume over the
	// effective bandwidth — the analytic model's volume term.
	want := PerGPUVolume(payload, 2) / (0.85 * topology.BandwidthNVLink2 * 1e9)
	if math.Abs(res.Time-want) > 1e-9 {
		t.Fatalf("time %v, want %v", res.Time, want)
	}
}

func TestSimulatePackedBeatsSpread(t *testing.T) {
	topo := topology.Power8Minsky()
	packed, err := Simulate(topo, []int{0, 1}, 244e6, 0.85, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Simulate(topo, []int{0, 2}, 244e6, 0.85, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if packed.Time >= spread.Time {
		t.Fatalf("packed %v >= spread %v", packed.Time, spread.Time)
	}
	if spread.BottleneckBW >= packed.BottleneckBW {
		t.Fatal("spread bottleneck should be lower")
	}
}

// TestSimulateConsistentWithCommTime validates that the chunk-level ring
// simulation and the analytic CommTime agree on the volume-dependent term
// once the analytic overhead is assigned to step latencies.
func TestSimulateConsistentWithCommTime(t *testing.T) {
	topo := topology.Power8Minsky()
	spec := perfmodel.GetSpec(perfmodel.AlexNet)
	g := 2
	gpus := []int{0, 1}
	// Split the analytic per-iteration overhead evenly across steps.
	stepLatency := spec.CommOverhead / float64(Steps(g))
	res, err := Simulate(topo, gpus, spec.GradBytes, perfmodel.ProtocolEfficiency, stepLatency)
	if err != nil {
		t.Fatal(err)
	}
	analytic := perfmodel.CommTime(perfmodel.AlexNet, g, perfmodel.AllocBandwidth(topo, gpus))
	if math.Abs(res.Time-analytic)/analytic > 0.01 {
		t.Fatalf("ring simulation %v vs analytic %v", res.Time, analytic)
	}
}

func TestSimulateCrossMachineRing(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	res, err := Simulate(topo, []int{0, 1, 4, 5}, 100e6, 0.85, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A ring spanning machines is limited by the network hop.
	if res.BottleneckBW > topology.BandwidthNetwork {
		t.Fatalf("cross-machine bottleneck %v exceeds network bandwidth", res.BottleneckBW)
	}
}
