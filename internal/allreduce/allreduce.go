// Package allreduce simulates the ring all-reduce algorithm that
// data-parallel deep-learning frameworks use for gradient exchange (§2 of
// the paper cites Wang et al., "Efficient Communications in Training
// Large Scale Neural Networks", for the shared communication structure of
// Caffe/NCCL-style frameworks). It provides the step/volume arithmetic
// behind the performance model's ring factor 2·(g−1)/g and a chunk-level
// timing simulation over a physical topology, used to validate that the
// analytic CommTime of package perfmodel is a faithful summary.
package allreduce

import (
	"fmt"
	"math"

	"gputopo/internal/topology"
)

// Steps returns the number of communication steps of a ring all-reduce
// over g participants: g−1 reduce-scatter steps plus g−1 all-gather steps.
func Steps(g int) int {
	if g < 2 {
		return 0
	}
	return 2 * (g - 1)
}

// PerGPUVolume returns the bytes each participant sends in total:
// 2·(g−1)/g · payload.
func PerGPUVolume(payload float64, g int) float64 {
	if g < 2 {
		return 0
	}
	return 2 * float64(g-1) / float64(g) * payload
}

// RingOrder arranges the given GPU positions into a communication ring
// maximizing the bottleneck (minimum) effective bandwidth between ring
// neighbors. For the at-most-8-GPU rings of single machines a greedy
// nearest-neighbor construction from every start, keeping the best ring,
// matches the optimum (verified against brute force in tests).
func RingOrder(topo *topology.Topology, gpus []int) []int {
	g := len(gpus)
	if g <= 2 {
		return append([]int(nil), gpus...)
	}
	var best []int
	bestBW := -1.0
	for start := 0; start < g; start++ {
		order := []int{gpus[start]}
		used := map[int]bool{gpus[start]: true}
		for len(order) < g {
			last := order[len(order)-1]
			cand, candBW := -1, -1.0
			for _, v := range gpus {
				if used[v] {
					continue
				}
				if bw := topo.EffectiveBandwidth(last, v); bw > candBW {
					cand, candBW = v, bw
				}
			}
			order = append(order, cand)
			used[cand] = true
		}
		if bw := ringBottleneck(topo, order); bw > bestBW {
			bestBW, best = bw, order
		}
	}
	return best
}

// ringBottleneck returns the minimum effective bandwidth between adjacent
// ring members (including the wrap-around edge).
func ringBottleneck(topo *topology.Topology, order []int) float64 {
	bw := math.Inf(1)
	for i := range order {
		next := order[(i+1)%len(order)]
		if e := topo.EffectiveBandwidth(order[i], next); e < bw {
			bw = e
		}
	}
	return bw
}

// Result describes one simulated all-reduce.
type Result struct {
	// Time is the wall-clock duration in seconds.
	Time float64
	// Order is the ring arrangement used.
	Order []int
	// BottleneckBW is the slowest ring link's effective bandwidth (GB/s).
	BottleneckBW float64
	// Steps is the number of communication steps executed.
	Steps int
}

// Simulate runs a chunked ring all-reduce of payload bytes across the
// given GPUs at the given protocol efficiency (fraction of nominal link
// bandwidth achieved) with a per-step latency in seconds. Every step moves
// payload/g bytes between all neighbor pairs simultaneously; the step
// completes at the pace of the slowest link, which is how a synchronous
// ring behaves.
func Simulate(topo *topology.Topology, gpus []int, payload, efficiency, stepLatency float64) (*Result, error) {
	if len(gpus) < 2 {
		return &Result{Order: append([]int(nil), gpus...)}, nil
	}
	if payload <= 0 {
		return nil, fmt.Errorf("allreduce: non-positive payload %v", payload)
	}
	if efficiency <= 0 || efficiency > 1 {
		return nil, fmt.Errorf("allreduce: efficiency %v outside (0, 1]", efficiency)
	}
	order := RingOrder(topo, gpus)
	bw := ringBottleneck(topo, order)
	if bw <= 0 || math.IsInf(bw, 1) {
		return nil, fmt.Errorf("allreduce: ring over %v has no usable bandwidth", gpus)
	}
	g := len(gpus)
	chunk := payload / float64(g)
	stepTime := stepLatency + chunk/(efficiency*bw*1e9)
	return &Result{
		Time:         float64(Steps(g)) * stepTime,
		Order:        order,
		BottleneckBW: bw,
		Steps:        Steps(g),
	}, nil
}
