// Package job defines the unit of scheduling: a deep-learning training job
// with a GPU count, a neural network model, a per-GPU batch size, a
// communication graph, and the SLO-derived minimum utility used by the
// TOPO-AWARE-P postponement policy (§4.4, Table 1).
package job

import (
	"fmt"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
)

// Job describes a submitted training job. Fields mirror the manifest the
// paper's prototype loads from JSON (§5.1).
type Job struct {
	// ID uniquely identifies the job.
	ID string
	// Model is the neural network being trained.
	Model perfmodel.NN
	// BatchSize is the per-GPU training batch size (1–128 in the paper).
	BatchSize int
	// GPUs is the number of requested GPUs (tasks).
	GPUs int
	// MinUtility is the SLO-derived placement quality threshold: under
	// TOPO-AWARE-P a placement scoring below it is postponed (Table 1
	// uses 0.3 for 1-GPU jobs and 0.5 for 2-GPU jobs).
	MinUtility float64
	// Arrival is the submission time in seconds since experiment start.
	Arrival float64
	// Iterations is the training length (§3.1 uses 4000).
	Iterations int
	// SingleNode constrains all tasks to one machine ("if a job does not
	// support multi-node, it must be defined with a single-node
	// constraint in the profile", §4.4). Data-parallel Caffe jobs are
	// single-node.
	SingleNode bool
	// AntiCollocate asks for tasks to spread across machines (§4.4
	// anti-collocation policies).
	AntiCollocate bool
	// Parallelism selects data-parallel gradient exchange (the paper's
	// evaluated mode, the default) or model-parallel activation exchange
	// (§2's more communication-intensive extension).
	Parallelism perfmodel.Parallelism
	// Priority ranks the job for priority queue disciplines and
	// preemption: higher values are served first, and under a preemptive
	// scheduler may evict strictly lower-priority running jobs. Zero (the
	// default) reproduces the paper's single-class workload; the FIFO
	// discipline ignores the field entirely.
	Priority int

	comm *jobgraph.Graph
}

// New returns a job with the all-to-all communication graph of a
// data-parallel trainer, edge weights derived from the batch class (§5.1).
func New(id string, model perfmodel.NN, batchSize, gpus int, minUtility, arrival float64) *Job {
	j := &Job{
		ID:         id,
		Model:      model,
		BatchSize:  batchSize,
		GPUs:       gpus,
		MinUtility: minUtility,
		Arrival:    arrival,
		Iterations: perfmodel.DefaultIterations,
		SingleNode: true,
	}
	// The default data-parallel graph is fully determined by (gpus, batch
	// class), so all jobs of a class share one immutable instance.
	j.comm = jobgraph.SharedAllToAll(gpus, j.Class().CommWeight())
	return j
}

// Class returns the batch-size class of the job.
func (j *Job) Class() jobgraph.BatchClass { return jobgraph.ClassOfSize(j.BatchSize) }

// Traits returns the interference-relevant summary of the job.
func (j *Job) Traits() perfmodel.Traits {
	return perfmodel.Traits{Model: j.Model, Class: j.Class(), GPUs: j.GPUs, Mode: j.Parallelism}
}

// CommGraph returns the job's communication graph.
func (j *Job) CommGraph() *jobgraph.Graph { return j.comm }

// SetCommGraph overrides the default all-to-all communication graph, e.g.
// for model-parallel or parameter-server workloads.
func (j *Job) SetCommGraph(g *jobgraph.Graph) error {
	if g.Tasks() != j.GPUs {
		return fmt.Errorf("job %s: comm graph has %d tasks, job requests %d GPUs", j.ID, g.Tasks(), j.GPUs)
	}
	j.comm = g
	return nil
}

// CommIntensity returns the job's communication intensity: the maximum
// edge weight of its communication graph (0 for single-GPU jobs). The
// utility function uses it to weigh the communication-cost term.
// Model-parallel jobs always communicate at the highest intensity — their
// activation traffic scales with the batch instead of shrinking (§2).
func (j *Job) CommIntensity() float64 {
	if j.GPUs <= 1 {
		return 0
	}
	if j.Parallelism == perfmodel.ModelParallel {
		return jobgraph.BatchTiny.CommWeight()
	}
	return j.comm.CommIntensity()
}

// Validate checks the job definition for consistency.
func (j *Job) Validate() error {
	switch {
	case j.ID == "":
		return fmt.Errorf("job: empty ID")
	case j.GPUs <= 0:
		return fmt.Errorf("job %s: non-positive GPU count %d", j.ID, j.GPUs)
	case j.BatchSize <= 0:
		return fmt.Errorf("job %s: non-positive batch size %d", j.ID, j.BatchSize)
	case j.MinUtility < 0 || j.MinUtility > 1:
		return fmt.Errorf("job %s: min utility %.3f outside [0,1]", j.ID, j.MinUtility)
	case j.Iterations <= 0:
		return fmt.Errorf("job %s: non-positive iterations %d", j.ID, j.Iterations)
	case j.Arrival < 0:
		return fmt.Errorf("job %s: negative arrival time %.3f", j.ID, j.Arrival)
	case j.comm == nil || j.comm.Tasks() != j.GPUs:
		return fmt.Errorf("job %s: communication graph does not match GPU count", j.ID)
	case j.SingleNode && j.AntiCollocate && j.GPUs > 1:
		return fmt.Errorf("job %s: single-node and anti-collocation are mutually exclusive", j.ID)
	}
	return nil
}

// String returns a compact description for logs and timelines.
func (j *Job) String() string {
	return fmt.Sprintf("%s(%s b=%d g=%d u>=%.2f)", j.ID, j.Model, j.BatchSize, j.GPUs, j.MinUtility)
}
