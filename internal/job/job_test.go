package job

import (
	"strings"
	"testing"

	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
)

func TestNewJobDefaults(t *testing.T) {
	j := New("j1", perfmodel.AlexNet, 4, 2, 0.5, 10)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Iterations != perfmodel.DefaultIterations {
		t.Fatalf("iterations = %d", j.Iterations)
	}
	if !j.SingleNode {
		t.Fatal("jobs default to single-node (data-parallel Caffe)")
	}
	if j.Class() != jobgraph.BatchSmall {
		t.Fatalf("class = %v", j.Class())
	}
	if j.CommGraph().Tasks() != 2 {
		t.Fatal("comm graph tasks mismatch")
	}
	// §5.1 weight for a small batch is 3.
	if j.CommIntensity() != 3 {
		t.Fatalf("comm intensity = %v", j.CommIntensity())
	}
}

func TestSingleGPUNoCommIntensity(t *testing.T) {
	j := New("j", perfmodel.GoogLeNet, 128, 1, 0.3, 0)
	if j.CommIntensity() != 0 {
		t.Fatalf("single-GPU comm intensity = %v", j.CommIntensity())
	}
}

func TestTraits(t *testing.T) {
	j := New("j", perfmodel.CaffeRef, 1, 2, 0.5, 0)
	tr := j.Traits()
	if tr.Model != perfmodel.CaffeRef || tr.Class != jobgraph.BatchTiny || tr.GPUs != 2 {
		t.Fatalf("traits = %+v", tr)
	}
}

func TestSetCommGraph(t *testing.T) {
	j := New("j", perfmodel.AlexNet, 1, 3, 0.5, 0)
	if err := j.SetCommGraph(jobgraph.Ring(3, 2)); err != nil {
		t.Fatal(err)
	}
	if j.CommIntensity() != 2 {
		t.Fatalf("intensity after ring = %v", j.CommIntensity())
	}
	if err := j.SetCommGraph(jobgraph.Ring(2, 2)); err == nil {
		t.Fatal("mismatched task count accepted")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	cases := map[string]func(*Job){
		"empty id":        func(j *Job) { j.ID = "" },
		"zero gpus":       func(j *Job) { j.GPUs = 0 },
		"zero batch":      func(j *Job) { j.BatchSize = 0 },
		"bad utility":     func(j *Job) { j.MinUtility = 1.5 },
		"neg utility":     func(j *Job) { j.MinUtility = -0.1 },
		"zero iterations": func(j *Job) { j.Iterations = 0 },
		"neg arrival":     func(j *Job) { j.Arrival = -1 },
		"conflict":        func(j *Job) { j.AntiCollocate = true }, // with SingleNode
	}
	for name, mutate := range cases {
		j := New("ok", perfmodel.AlexNet, 1, 2, 0.5, 0)
		mutate(j)
		if err := j.Validate(); err == nil {
			t.Fatalf("case %q: invalid job accepted", name)
		}
	}
}

func TestAntiCollocateValidWhenMultiNode(t *testing.T) {
	j := New("j", perfmodel.AlexNet, 1, 2, 0.5, 0)
	j.SingleNode = false
	j.AntiCollocate = true
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	j := New("j7", perfmodel.GoogLeNet, 32, 2, 0.5, 0)
	s := j.String()
	for _, frag := range []string{"j7", "GoogLeNet", "b=32", "g=2"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
