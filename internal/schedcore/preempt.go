package schedcore

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"gputopo/internal/job"
)

// Eviction records one victim displaced by a preemptive placement: the
// job and the GPU positions its eviction freed (sorted ascending, as the
// cluster state keeps them).
type Eviction struct {
	Job  *job.Job
	GPUs []int
}

// SetPreemption toggles topology-aware preemption (off by default). When
// enabled, a preemption-eligible job (Priority > 0) that cannot place
// may evict strictly lower-priority running jobs: the core picks the
// victim set whose freed GPUs yield the best Eq. 1 placement for the
// arriving job, commits the placement, and re-enqueues the victims. With
// the switch off — or with every job at the default priority 0 — no code
// path changes, which is what keeps the priority-off artifacts
// byte-identical.
func (c *Core) SetPreemption(enabled bool) { c.preemptOn = enabled }

// PreemptionEnabled reports whether the preemption path is active.
func (c *Core) PreemptionEnabled() bool { return c.preemptOn }

// preemptEligible reports whether j may attempt preemption: the path is
// enabled and the job's priority is positive. Restricting eligibility to
// positive priorities is what keeps the wake-up index sound — only
// non-eligible jobs ever park, so a parked job's fate truly depends on
// free capacity alone, while eligible jobs stay on the active list and
// re-check their eviction opportunity every round exactly like a full
// queue walk would.
func (c *Core) preemptEligible(j *job.Job) bool { return c.preemptOn && j.Priority > 0 }

// preemptAndPlace runs the preemption path for the blocked entry and, on
// success, performs the placed-decision bookkeeping that examine does
// for regular placements. It returns false when no viable victim set
// exists, leaving the caller to postpone the job as usual.
func (c *Core) preemptAndPlace(e *entry, now float64) bool {
	start := time.Now() //lint:ignore wallclock decision-latency instrumentation, the documented exception: elapsed feeds Stats only, never scheduling decisions
	d, ok := c.tryPreempt(e.job)
	elapsed := time.Since(start) //lint:ignore wallclock decision-latency instrumentation, the documented exception
	if !ok {
		return false
	}
	c.stats.Decisions++
	c.stats.DecisionTime += elapsed
	if elapsed > c.stats.MaxDecision {
		c.stats.MaxDecision = elapsed
	}
	delete(c.lastFailed, e.job.ID)
	c.stats.Placements++
	c.stats.Preemptions++
	c.stats.Evictions += len(d.Evictions)
	if d.SLOViolated {
		c.stats.SLOViolations++
	}
	d.Time = now
	d.Postponements = c.waited(e)
	c.decBuf = append(c.decBuf, d)
	return true
}

// tryPreempt evicts the best victim set for j and places it on the freed
// capacity. Victims are released from the cluster state immediately (so
// the rest of the round sees the new capacity) and staged for re-entry
// into the queue after the round.
func (c *Core) tryPreempt(j *job.Job) (Decision, bool) {
	victims, placed := c.selectVictims(j)
	if len(victims) == 0 {
		return Decision{}, false
	}
	evs := make([]Eviction, len(victims))
	for i, v := range victims {
		alloc := c.state.Allocation(v.ID)
		evs[i] = Eviction{Job: v, GPUs: append([]int(nil), alloc.GPUs...)}
		if err := c.state.Release(v.ID); err != nil {
			panic(fmt.Sprintf("schedcore: evicting %s: %v", v.ID, err))
		}
		delete(c.running, v.ID)
		delete(c.lastFailed, v.ID)
	}
	c.evictedInRound = true
	c.pendingRequeue = append(c.pendingRequeue, victims...)

	// Re-running the policy on the live state must reproduce the clone
	// evaluation bit for bit: placement reads only allocations, never the
	// epoch, and Clone copies allocations exactly. A divergence here
	// means the evaluation and commit saw different cluster states — a
	// bug, not a recoverable condition.
	placement, reason := c.place.attempt(j)
	if placement == nil || placement.Utility != placed {
		panic(fmt.Sprintf("schedcore: preemptive placement of %s diverged from its victim evaluation (reason %q)", j.ID, reason))
	}
	if err := c.state.Allocate(j.ID, placement.GPUs, placement.BusDemand, j.Traits()); err != nil {
		panic(fmt.Sprintf("schedcore: committing preemptive placement of %s: %v", j.ID, err))
	}
	c.running[j.ID] = j
	return Decision{
		Job:         j,
		Placement:   placement,
		SLOViolated: placement.Utility < j.MinUtility,
		Evictions:   evs,
	}, true
}

// victimOrder ranks eviction candidates: lowest priority first (evict
// the least important tier), youngest arrival first within a tier (the
// job that has run least loses least progress), job ID as the final
// deterministic tie-break.
func victimOrder(a, b *job.Job) int {
	if a.Priority != b.Priority {
		return a.Priority - b.Priority
	}
	if a.Arrival != b.Arrival {
		if a.Arrival > b.Arrival {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// selectVictims picks the victim set for j: among the running jobs with
// strictly lower priority, the greedy prefix (in victimOrder) that frees
// enough GPUs for j's availableResources gate and whose post-eviction
// Eq. 1 placement scores best. For single-node jobs each machine
// proposes its own set (victims holding GPUs there, freed until the
// machine fits the job); multi-node jobs build one cluster-wide set.
// Candidate sets are evaluated on clones of the cluster state, so a
// rejected set has no side effects. Sets are compared by (highest victim
// priority, then victim count, then placement utility descending, then
// proposing machine) — evict from the lowest tier, as few jobs as
// possible, un-fragmenting the arrival the most. Returns the winning
// victims (eviction order) and the utility its evaluation achieved.
func (c *Core) selectVictims(j *job.Job) ([]*job.Job, float64) {
	cands := make([]*job.Job, 0, len(c.running))
	for _, v := range c.running {
		if v.Priority < j.Priority {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil, 0
	}
	slices.SortFunc(cands, victimOrder)

	type scored struct {
		victims []*job.Job
		maxPrio int
		utility float64
		machine int
	}
	var best *scored
	better := func(s, b *scored) bool {
		if s.maxPrio != b.maxPrio {
			return s.maxPrio < b.maxPrio
		}
		if len(s.victims) != len(b.victims) {
			return len(s.victims) < len(b.victims)
		}
		if s.utility != b.utility {
			return s.utility > b.utility
		}
		return s.machine < b.machine
	}
	// evaluate releases the victims on the pooled scratch clone and
	// re-runs the policy through the pooled victim placer. A feasible
	// set must both pass the capacity gate and actually place (bandwidth
	// and mapper constraints can still reject it). Pooling (CopyFrom
	// instead of Clone, one placer with persistent scratch buffers)
	// makes a rejected candidate prefix allocation-free; sharing the
	// core's placement cache is sound because cache keys are pure
	// functions of the state under evaluation, clone or not.
	evaluate := func(victims []*job.Job, machine int) {
		if c.victimScratch == nil {
			c.victimScratch = c.state.Clone()
			c.victimPlacer = placer{policy: c.policy, mapper: c.mapper, cache: c.cache}
		} else {
			c.victimScratch.CopyFrom(c.state)
		}
		cs := c.victimScratch
		for _, v := range victims {
			if err := cs.Release(v.ID); err != nil {
				panic(fmt.Sprintf("schedcore: evaluating eviction of %s: %v", v.ID, err))
			}
		}
		c.victimPlacer.state = cs
		placement, _ := c.victimPlacer.attempt(j)
		if placement == nil {
			return
		}
		s := &scored{victims: victims, maxPrio: victims[0].Priority, utility: placement.Utility, machine: machine}
		for _, v := range victims {
			if v.Priority > s.maxPrio {
				s.maxPrio = v.Priority
			}
		}
		if best == nil || better(s, best) {
			best = s
		}
	}

	if j.SingleNode {
		topo := c.state.Topology()
		gpuCountOn := func(v *job.Job, m int) int {
			n := 0
			for _, pos := range c.state.Allocation(v.ID).GPUs {
				if topo.GPU(pos).Machine == m {
					n++
				}
			}
			return n
		}
		for m := 0; m < topo.NumMachines(); m++ {
			freed := c.state.FreeCountOnMachine(m)
			if freed >= j.GPUs {
				continue // the machine fits without evictions; placement failed for other reasons eviction there cannot fix
			}
			var set []*job.Job
			for _, v := range cands {
				n := gpuCountOn(v, m)
				if n == 0 {
					continue
				}
				set = append(set, v)
				freed += n
				if freed >= j.GPUs {
					evaluate(slices.Clone(set), m)
					break
				}
			}
		}
	} else {
		freed := c.state.FreeGPUCount()
		var set []*job.Job
		for _, v := range cands {
			set = append(set, v)
			freed += len(c.state.Allocation(v.ID).GPUs)
			if freed >= j.GPUs {
				evaluate(slices.Clone(set), -1)
				break
			}
		}
	}
	if best == nil {
		return nil, 0
	}
	return best.victims, best.utility
}

// requeueVictims re-enqueues the round's evicted jobs after dispatch:
// each victim re-enters the queue as a fresh submission (new sequence
// number, postponement accounting restarted at the current round), in
// eviction order, so the walk and indexed paths rebuild identical queue
// orders.
func (c *Core) requeueVictims() {
	if len(c.pendingRequeue) == 0 {
		return
	}
	for _, v := range c.pendingRequeue {
		e := entry{job: v, seq: c.seq, enterRound: c.rounds}
		c.seq++
		if c.indexed() {
			c.active = c.insertOrdered(c.active, e)
		} else {
			c.queue = c.insertOrdered(c.queue, e)
		}
	}
	c.pendingRequeue = c.pendingRequeue[:0]
}

// Running returns the IDs of the jobs the core has placed and not yet
// released, sorted — a reporting accessor for drivers and tests.
func (c *Core) Running() []string {
	ids := make([]string, 0, len(c.running))
	for id := range c.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
