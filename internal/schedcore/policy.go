package schedcore

import (
	"encoding/json"
	"fmt"
)

// Policy selects the placement strategy.
type Policy int

// The four policies of the evaluation (§5.2).
const (
	FCFS Policy = iota
	BestFit
	TopoAware
	TopoAwareP
)

// String returns the policy name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case BestFit:
		return "BF"
	case TopoAware:
		return "TOPO-AWARE"
	case TopoAwareP:
		return "TOPO-AWARE-P"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AllPolicies lists every policy, in the paper's presentation order.
func AllPolicies() []Policy { return []Policy{BestFit, FCFS, TopoAware, TopoAwareP} }

// MarshalJSON encodes the policy as its figure name, keeping sweep
// artifacts readable and stable across any renumbering of the constants.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes a policy from its figure name.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParsePolicy(name)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParsePolicy maps a policy name to its constant.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "FCFS", "fcfs":
		return FCFS, nil
	case "BF", "bf", "bestfit", "best-fit":
		return BestFit, nil
	case "TOPO-AWARE", "topo-aware", "topo":
		return TopoAware, nil
	case "TOPO-AWARE-P", "topo-aware-p", "topo-p":
		return TopoAwareP, nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q", name)
}
