package difftest

import (
	"fmt"
	"reflect"
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
	"gputopo/internal/schedcore/domains"
	"gputopo/internal/topology"
)

// shardedDomain is one scheduling domain of a sharded trace run: the
// real Core and the naive reference over the same fleet slice, plus the
// cluster state backing the router's live free counters.
type shardedDomain struct {
	core  *schedcore.Core
	ref   *Reference
	state *cluster.State
}

// checkDomain runs one scheduling round on domain d through both sides
// and compares placements, queue order and running set.
func (sd *shardedDomain) checkDomain(t *testing.T, tr *Trace, d int, where string) {
	t.Helper()
	want := sd.ref.Schedule()
	wantQ, wantR := sd.ref.Queued(), sd.ref.Running()
	got := reduce(sd.core.Schedule())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s %s: domain %d placements diverged\n ref:  %+v\n core: %+v", tr, where, d, want, got)
	}
	if gotQ := queuedIDs(sd.core); !reflect.DeepEqual(gotQ, wantQ) {
		t.Fatalf("%s %s: domain %d queue diverged\n ref:  %v\n core: %v", tr, where, d, wantQ, gotQ)
	}
	if gotR := sd.core.Running(); !reflect.DeepEqual(gotR, wantR) {
		t.Fatalf("%s %s: domain %d running set diverged\n ref:  %v\n core: %v", tr, where, d, wantR, gotR)
	}
}

// runShardedTrace drives one trace through the sharded decomposition:
// the fleet splits hash-style into tr.Domains domains, submissions
// route through the live-counter Router, and each domain's Core must
// match a single-core reference driven with exactly the routed
// sub-trace. This is the differential proof that sharding changes which
// core schedules a job but never what that core decides.
func runShardedTrace(t *testing.T, tr *Trace) map[int]int {
	t.Helper()
	groups, err := domains.Spec{Strategy: "hash", N: tr.Domains}.Partition(tr.Machines, nil)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := schedcore.ParseDiscipline(tr.Discipline)
	if err != nil {
		t.Fatal(err)
	}
	doms := make([]*shardedDomain, len(groups))
	caps := make([]domains.Capacity, len(groups))
	for d, g := range groups {
		sub := topology.Cluster(len(g), tr.Kind)
		caps[d] = domains.CapacityOf(sub)
		ref, err := NewReference(tr.Policy, sub, disc, tr.Preempt)
		if err != nil {
			t.Fatal(err)
		}
		mapper, err := core.NewMapper(profile.Generate(sub, sub.NumGPUs()), core.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		st := cluster.NewState(sub)
		c := schedcore.New(tr.Policy, st, mapper, schedcore.WithQueueDiscipline(disc))
		c.SetPreemption(tr.Preempt)
		doms[d] = &shardedDomain{core: c, ref: ref, state: st}
	}
	router := domains.NewRouter(caps, func(d int) (int, int, int) {
		return doms[d].state.FreeGPUCount(), doms[d].state.MaxFreeGPUs(), doms[d].state.FreeMachines()
	})

	routed := map[int]int{}
	for step, ev := range tr.Events {
		where := fmt.Sprintf("step %d", step)
		switch ev.Kind {
		case Submit:
			d, err := router.Route(ev.Job)
			if err != nil {
				t.Fatalf("%s %s: route %s: %v", tr, where, ev.Job.ID, err)
			}
			routed[d]++
			router.Bind(ev.Job.ID, d)
			if err := doms[d].ref.Submit(CloneJob(ev.Job)); err != nil {
				t.Fatalf("%s %s: domain %d reference submit %s: %v", tr, where, d, ev.Job.ID, err)
			}
			if err := doms[d].core.Submit(CloneJob(ev.Job)); err != nil {
				t.Fatalf("%s %s: domain %d core submit %s: %v", tr, where, d, ev.Job.ID, err)
			}
			doms[d].checkDomain(t, tr, d, where)
		case Remove:
			// The Remove follows the target to its home domain — the same
			// lookup the serving layer performs — and resolves there.
			d, ok := router.Home(ev.Target)
			if !ok {
				continue
			}
			sd := doms[d]
			switch {
			case contains(sd.ref.Running(), ev.Target):
				if err := sd.ref.Release(ev.Target); err != nil {
					t.Fatalf("%s %s: domain %d reference release %s: %v", tr, where, d, ev.Target, err)
				}
				if err := sd.core.Release(ev.Target); err != nil {
					t.Fatalf("%s %s: domain %d core release %s: %v", tr, where, d, ev.Target, err)
				}
			case contains(sd.ref.Queued(), ev.Target):
				sd.ref.Withdraw(ev.Target)
				if !sd.core.Withdraw(ev.Target) {
					t.Fatalf("%s %s: domain %d core withdraw %s: not queued", tr, where, d, ev.Target)
				}
			default:
				router.Unbind(ev.Target)
				continue // evicted-then-removed or already gone
			}
			router.Unbind(ev.Target)
			sd.checkDomain(t, tr, d, where)
		}
	}

	// Drain every domain independently, as in the unsharded harness.
	for d, sd := range doms {
		for guard := 0; ; guard++ {
			if guard > 10*len(tr.Events) {
				t.Fatalf("%s: domain %d drain did not converge: queue=%v running=%v", tr, d, sd.ref.Queued(), sd.ref.Running())
			}
			run := sd.ref.Running()
			if len(run) == 0 && len(sd.ref.Queued()) == 0 {
				break
			}
			if len(run) > 0 {
				id := run[0]
				if err := sd.ref.Release(id); err != nil {
					t.Fatalf("%s drain: domain %d reference release %s: %v", tr, d, id, err)
				}
				if err := sd.core.Release(id); err != nil {
					t.Fatalf("%s drain: domain %d core release %s: %v", tr, d, id, err)
				}
			} else {
				id := sd.ref.Queued()[0]
				sd.ref.Withdraw(id)
				if !sd.core.Withdraw(id) {
					t.Fatalf("%s drain: domain %d core withdraw %s: not queued", tr, d, id)
				}
			}
			sd.checkDomain(t, tr, d, "drain")
		}
	}
	return routed
}

// TestShardedDifferentialTraces extends the differential harness to the
// sharded decomposition: every multi-machine trace the generator marks
// with Domains > 1 runs through the router + per-domain cores against
// per-domain references. The coverage tail guards against vacuity —
// the population must shard a healthy fraction of traces and actually
// route jobs to more than one domain.
func TestShardedDifferentialTraces(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	sharded, spread := 0, 0
	for seed := 0; seed < n; seed++ {
		tr := NewTrace(uint64(seed))
		if tr.Domains < 2 {
			continue
		}
		sharded++
		routed := runShardedTrace(t, tr)
		if len(routed) > 1 {
			spread++
		}
	}
	if sharded < n/8 {
		t.Errorf("sharded traces underrepresented: %d of %d", sharded, n)
	}
	if spread < sharded/2 {
		t.Errorf("router barely spreads: only %d of %d sharded traces hit 2+ domains", spread, sharded)
	}
}
