package difftest

import (
	"fmt"
	"math/rand"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/schedcore"
	"gputopo/internal/topology"
)

// EventKind enumerates trace events. Every event is followed by one
// Schedule call on every scheduler under test, so traces exercise the
// round boundaries both drivers (simulator, serving loop) produce.
type EventKind int

// Trace event kinds. Remove resolves dynamically at apply time: it
// becomes a Release when the target is running, a Withdraw when it is
// queued, and a no-op when it already finished — the schedulers under
// comparison agree on that state by invariant, so the resolution is
// identical on every side.
const (
	Submit EventKind = iota
	Remove
)

// Event is one step of a trace.
type Event struct {
	Kind EventKind
	// Job is the submission payload (Submit). Consumers must clone it —
	// schedulers may not share job objects.
	Job *job.Job
	// Target is the job ID a Remove aims at.
	Target string
}

// Trace is one randomized scheduling session: a substrate, a scheduler
// configuration, and an event sequence.
type Trace struct {
	Seed       uint64
	Topology   *topology.Topology
	TopoName   string
	Kind       topology.MachineKind
	Machines   int
	Policy     schedcore.Policy
	Discipline string // "" (fifo) or "priority"
	Preempt    bool
	// Domains > 1 additionally checks the trace under sharded
	// scheduling: the substrate splits hash-style into this many
	// domains, submissions route through domains.Router over live
	// free counters, and each routed sub-trace must match the
	// single-core reference on that domain's slice of the fleet.
	Domains int
	Events  []Event
}

// String identifies the trace in failure messages.
func (tr *Trace) String() string {
	return fmt.Sprintf("seed=%d topo=%s policy=%s disc=%q preempt=%v domains=%d events=%d",
		tr.Seed, tr.TopoName, tr.Policy, tr.Discipline, tr.Preempt, tr.Domains, len(tr.Events))
}

// CloneJob copies a generated job so schedulers never share mutable
// state.
func CloneJob(j *job.Job) *job.Job {
	c := job.New(j.ID, j.Model, j.BatchSize, j.GPUs, j.MinUtility, j.Arrival)
	c.Iterations = j.Iterations
	c.SingleNode = j.SingleNode
	c.AntiCollocate = j.AntiCollocate
	c.Parallelism = j.Parallelism
	c.Priority = j.Priority
	return c
}

// NewTrace generates a deterministic randomized trace from the seed:
// random substrate, random scheduler configuration, and a submit-heavy
// event mix with enough removals to churn capacity and wake parked jobs.
func NewTrace(seed uint64) *Trace {
	rng := rand.New(rand.NewSource(int64(seed)))
	tr := &Trace{Seed: seed}

	topos := []struct {
		name     string
		kind     topology.MachineKind
		machines int
	}{
		{"minsky:1", topology.KindMinsky, 1},
		{"minsky:2", topology.KindMinsky, 2},
		{"dgx1:1", topology.KindDGX1, 1},
		{"pcie:2", topology.KindPCIeBox, 2},
	}
	pick := topos[rng.Intn(len(topos))]
	tr.TopoName, tr.Kind, tr.Machines = pick.name, pick.kind, pick.machines
	tr.Topology = topology.Cluster(pick.machines, pick.kind)

	policies := []schedcore.Policy{schedcore.FCFS, schedcore.BestFit, schedcore.TopoAware, schedcore.TopoAwareP}
	tr.Policy = policies[rng.Intn(len(policies))]
	if rng.Intn(2) == 1 {
		tr.Discipline = "priority"
	}
	tr.Preempt = rng.Intn(2) == 1

	models := []perfmodel.NN{perfmodel.AlexNet, perfmodel.CaffeRef, perfmodel.GoogLeNet}
	nEvents := 20 + rng.Intn(21)
	var ids []string
	for i := 0; i < nEvents; i++ {
		if len(ids) > 0 && rng.Float64() < 0.35 {
			tr.Events = append(tr.Events, Event{Kind: Remove, Target: ids[rng.Intn(len(ids))]})
			continue
		}
		id := fmt.Sprintf("j%02d", len(ids))
		j := job.New(id, models[rng.Intn(len(models))], 1<<rng.Intn(4), 1+rng.Intn(4),
			[]float64{0, 0, 0.4, 0.7}[rng.Intn(4)], float64(i))
		if rng.Float64() < 0.2 {
			j.SingleNode = false
		}
		// Positive priorities drive the priority discipline and the
		// preemption path; the mix keeps plenty of priority-0 victims.
		if rng.Float64() < 0.35 {
			j.Priority = 1 + rng.Intn(2)
		}
		ids = append(ids, id)
		tr.Events = append(tr.Events, Event{Kind: Submit, Job: j})
	}
	// Drawn last so the sharding decision never perturbs the event
	// stream a seed generated before domains existed. Every generated
	// job (<= 4 GPUs, never anti-collocated) stays admissible in a
	// single-machine domain of these kinds, so hash:Machines is safe.
	if tr.Machines > 1 && rng.Intn(2) == 1 {
		tr.Domains = tr.Machines
	}
	return tr
}
