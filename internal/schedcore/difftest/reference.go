// Package difftest is the differential proving ground for the scheduling
// core: a deliberately naive reference scheduler that re-implements the
// §4.4 queue mechanics from scratch — full stable re-sort and full queue
// walk every round, no epoch gate, no wake-up index, no incremental
// anything — plus a seeded randomized trace generator. The harness
// (diff_test.go) drives thousands of traces through the reference and
// through the real Core under every gate/index configuration and demands
// placement-for-placement equality.
//
// The reference shares exactly one piece of code with the Core: the
// placement-policy arithmetic, via the exported schedcore.Placer facade.
// That sharing is deliberate — Eq. 1 scoring is covered by its own unit
// tests, and re-deriving the mapper here would make every diff chase
// floating-point deltas instead of the queue, gating, wake-index and
// preemption bookkeeping this harness exists to falsify.
package difftest

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
	"gputopo/internal/topology"
)

// Placement is one committed placement of a reference round, reduced to
// the deterministic identity the harness compares.
type Placement struct {
	JobID   string
	GPUs    []int
	Utility float64
	// Evictions lists the victims this placement preempted, in eviction
	// order, as (victim ID, freed GPU positions) pairs.
	Evictions []EvictionRec
}

// EvictionRec is one evicted victim of a preemptive placement.
type EvictionRec struct {
	JobID string
	GPUs  []int
}

// refEntry is one queued job plus its submission sequence (the
// discipline's tie-break).
type refEntry struct {
	job *job.Job
	seq int
}

// Reference is the naive scheduler. It maintains a single slice as the
// wait queue, stably re-sorts it from scratch at every Schedule call, and
// walks it front to back with no memoization whatsoever.
type Reference struct {
	policy  schedcore.Policy
	state   *cluster.State
	mapper  *core.Mapper
	placer  *schedcore.Placer
	disc    schedcore.QueueDiscipline
	preempt bool

	queue   []refEntry
	running map[string]*job.Job
	seq     int
}

// NewReference builds a reference scheduler over a fresh state for the
// topology, mirroring the substrate construction the Core's drivers use.
func NewReference(policy schedcore.Policy, topo *topology.Topology, disc schedcore.QueueDiscipline, preempt bool) (*Reference, error) {
	mapper, err := core.NewMapper(profile.Generate(topo, topo.NumGPUs()), core.DefaultWeights())
	if err != nil {
		return nil, err
	}
	st := cluster.NewState(topo)
	return &Reference{
		policy:  policy,
		state:   st,
		mapper:  mapper,
		placer:  schedcore.NewPlacer(policy, st, mapper),
		disc:    disc,
		preempt: preempt,
		running: map[string]*job.Job{},
	}, nil
}

// Submit enqueues a job.
func (r *Reference) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	r.queue = append(r.queue, refEntry{job: j, seq: r.seq})
	r.seq++
	return nil
}

// Release frees a running job's allocation.
func (r *Reference) Release(id string) error {
	if err := r.state.Release(id); err != nil {
		return err
	}
	delete(r.running, id)
	return nil
}

// Withdraw removes a still-queued job; false when none has the ID.
func (r *Reference) Withdraw(id string) bool {
	for i := range r.queue {
		if r.queue[i].job.ID == id {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Queued returns the waiting job IDs in discipline order.
func (r *Reference) Queued() []string {
	r.sortQueue()
	ids := make([]string, len(r.queue))
	for i, e := range r.queue {
		ids[i] = e.job.ID
	}
	return ids
}

// Running returns the running job IDs, sorted.
func (r *Reference) Running() []string {
	ids := make([]string, 0, len(r.running))
	for id := range r.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// sortQueue re-sorts the whole queue, stably, from scratch — the naive
// counterpart of the Core's insert-ordered queue and wake-up index.
// Stability makes submission order the tie-break, as specified.
func (r *Reference) sortQueue() {
	sort.SliceStable(r.queue, func(i, k int) bool {
		return r.disc.Less(r.queue[i].job, r.queue[k].job)
	})
}

// Schedule runs one naive round of Algorithm 1: sort, walk everything,
// attempt everything eligible, requeue any victims at the end. Returns
// the round's placements in decision order.
func (r *Reference) Schedule() []Placement {
	r.sortQueue()
	var placements []Placement
	var victims []*job.Job
	keep := r.queue[:0]
	blocked := false
	for _, e := range r.queue {
		if blocked {
			keep = append(keep, e)
			continue
		}
		p, evs, ok := r.examine(e.job, &victims)
		if !ok {
			keep = append(keep, e)
			// The in-order policies preserve FIFO fairness: the first job
			// that fails to place blocks everything behind it.
			if r.policy != schedcore.TopoAwareP {
				blocked = true
			}
			continue
		}
		placements = append(placements, Placement{JobID: e.job.ID, GPUs: p.GPUs, Utility: p.Utility, Evictions: evs})
	}
	r.queue = keep
	for _, v := range victims {
		r.queue = append(r.queue, refEntry{job: v, seq: r.seq})
		r.seq++
	}
	return placements
}

func (r *Reference) eligible(j *job.Job) bool { return r.preempt && j.Priority > 0 }

// examine attempts one job: the availableResources gate, the placement
// policy, and — for eligible blocked jobs — the preemption path. On
// success the allocation is committed and any victims are appended to
// *victims for post-round requeue.
func (r *Reference) examine(j *job.Job, victims *[]*job.Job) (*core.Placement, []EvictionRec, bool) {
	enough := r.state.MaxFreeGPUs() >= j.GPUs
	if !j.SingleNode {
		enough = r.state.FreeGPUCount() >= j.GPUs
	}
	if enough {
		p, reason := r.placer.Attempt(j)
		if p != nil {
			r.commit(j, p)
			return p, nil, true
		}
		if reason != "no-capacity" || !r.eligible(j) {
			return nil, nil, false
		}
	} else if !r.eligible(j) {
		return nil, nil, false
	}
	return r.tryPreempt(j, victims)
}

func (r *Reference) commit(j *job.Job, p *core.Placement) {
	if err := r.state.Allocate(j.ID, p.GPUs, p.BusDemand, j.Traits()); err != nil {
		panic(fmt.Sprintf("difftest: committing %s: %v", j.ID, err))
	}
	r.running[j.ID] = j
}

// tryPreempt is the naive mirror of the Core's victim selection, written
// against the exported state/placer APIs only: rank candidates by
// (priority asc, arrival desc, ID), grow greedy prefixes (per machine
// for single-node jobs, cluster-wide otherwise), evaluate each candidate
// set on a clone, keep the best by (max victim priority, count, utility
// desc, machine), then evict on the live state and place.
func (r *Reference) tryPreempt(j *job.Job, victims *[]*job.Job) (*core.Placement, []EvictionRec, bool) {
	cands := make([]*job.Job, 0, len(r.running))
	for _, v := range r.running {
		if v.Priority < j.Priority {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil, nil, false
	}
	slices.SortFunc(cands, func(a, b *job.Job) int {
		if a.Priority != b.Priority {
			return a.Priority - b.Priority
		}
		if a.Arrival != b.Arrival {
			if a.Arrival > b.Arrival {
				return -1
			}
			return 1
		}
		return strings.Compare(a.ID, b.ID)
	})

	type scored struct {
		set     []*job.Job
		maxPrio int
		utility float64
		machine int
	}
	var best *scored
	evaluate := func(set []*job.Job, machine int) {
		cs := r.state.Clone()
		for _, v := range set {
			if err := cs.Release(v.ID); err != nil {
				panic(fmt.Sprintf("difftest: evaluating eviction of %s: %v", v.ID, err))
			}
		}
		p, _ := schedcore.NewPlacer(r.policy, cs, r.mapper).Attempt(j)
		if p == nil {
			return
		}
		s := &scored{set: set, maxPrio: set[0].Priority, utility: p.Utility, machine: machine}
		for _, v := range set {
			if v.Priority > s.maxPrio {
				s.maxPrio = v.Priority
			}
		}
		if best == nil ||
			s.maxPrio < best.maxPrio ||
			(s.maxPrio == best.maxPrio && (len(s.set) < len(best.set) ||
				(len(s.set) == len(best.set) && (s.utility > best.utility ||
					(s.utility == best.utility && s.machine < best.machine))))) {
			best = s
		}
	}

	if j.SingleNode {
		topo := r.state.Topology()
		for m := 0; m < topo.NumMachines(); m++ {
			freed := r.state.FreeCountOnMachine(m)
			if freed >= j.GPUs {
				continue
			}
			var set []*job.Job
			for _, v := range cands {
				n := 0
				for _, pos := range r.state.Allocation(v.ID).GPUs {
					if topo.GPU(pos).Machine == m {
						n++
					}
				}
				if n == 0 {
					continue
				}
				set = append(set, v)
				freed += n
				if freed >= j.GPUs {
					evaluate(slices.Clone(set), m)
					break
				}
			}
		}
	} else {
		freed := r.state.FreeGPUCount()
		var set []*job.Job
		for _, v := range cands {
			set = append(set, v)
			freed += len(r.state.Allocation(v.ID).GPUs)
			if freed >= j.GPUs {
				evaluate(slices.Clone(set), -1)
				break
			}
		}
	}
	if best == nil {
		return nil, nil, false
	}

	evs := make([]EvictionRec, len(best.set))
	for i, v := range best.set {
		evs[i] = EvictionRec{JobID: v.ID, GPUs: append([]int(nil), r.state.Allocation(v.ID).GPUs...)}
		if err := r.state.Release(v.ID); err != nil {
			panic(fmt.Sprintf("difftest: evicting %s: %v", v.ID, err))
		}
		delete(r.running, v.ID)
	}
	*victims = append(*victims, best.set...)
	p, reason := r.placer.Attempt(j)
	if p == nil {
		panic(fmt.Sprintf("difftest: preemptive placement of %s failed after eviction (reason %q)", j.ID, reason))
	}
	r.commit(j, p)
	return p, evs, true
}
