package difftest

import (
	"fmt"
	"reflect"
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
)

// coreConfigs are the fast-path configurations of the real Core the
// reference must match placement-for-placement. The epoch gate, the
// wake-up index and the placement cache are documented as never
// changing decisions; this is where that claim gets falsified if it is
// ever wrong. (The reference itself runs cache-off, so every cached
// configuration is compared against uncached arithmetic.)
var coreConfigs = []struct {
	name               string
	gate, index, cache bool
}{
	{"gate+index+cache", true, true, true},
	{"gate+index", true, true, false},
	{"gate+cache", true, false, true},
	{"gate", true, false, false},
	{"index+cache", false, true, true},
	{"index", false, true, false},
	{"cache", false, false, true},
	{"plain", false, false, false},
}

// schedUnder builds a real Core over its own fresh substrate for the
// trace's configuration.
func schedUnder(t *testing.T, tr *Trace, gate, index, cache bool) *schedcore.Core {
	t.Helper()
	disc, err := schedcore.ParseDiscipline(tr.Discipline)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := core.NewMapper(profile.Generate(tr.Topology, tr.Topology.NumGPUs()), core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	c := schedcore.New(tr.Policy, cluster.NewState(tr.Topology), mapper, schedcore.WithQueueDiscipline(disc))
	c.SetEpochGate(gate)
	c.SetWakeIndex(index)
	c.SetPlaceCache(cache)
	c.SetPreemption(tr.Preempt)
	return c
}

// reduce projects a Core round onto the reference's Placement identity:
// placement decisions only, in decision order, with their eviction
// lists. Postponement records are not compared — the wake-up index
// legitimately materializes none for parked jobs.
func reduce(decs []*schedcore.Decision) []Placement {
	var out []Placement
	for _, d := range decs {
		if d.Postponed {
			continue
		}
		p := Placement{JobID: d.Job.ID, GPUs: d.Placement.GPUs, Utility: d.Placement.Utility}
		for _, ev := range d.Evictions {
			p.Evictions = append(p.Evictions, EvictionRec{JobID: ev.Job.ID, GPUs: ev.GPUs})
		}
		out = append(out, p)
	}
	return out
}

func queuedIDs(c *schedcore.Core) []string {
	q := c.Queued()
	ids := make([]string, len(q))
	for i, j := range q {
		ids[i] = j.ID
	}
	return ids
}

// runTrace drives one trace through the reference and every Core
// configuration, comparing placements, queue order and running set
// after every round.
func runTrace(t *testing.T, tr *Trace) {
	t.Helper()
	disc, err := schedcore.ParseDiscipline(tr.Discipline)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReference(tr.Policy, tr.Topology, disc, tr.Preempt)
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]*schedcore.Core, len(coreConfigs))
	for i, cc := range coreConfigs {
		cores[i] = schedUnder(t, tr, cc.gate, cc.index, cc.cache)
	}

	for step, ev := range tr.Events {
		switch ev.Kind {
		case Submit:
			if err := ref.Submit(CloneJob(ev.Job)); err != nil {
				t.Fatalf("%s step %d: reference submit %s: %v", tr, step, ev.Job.ID, err)
			}
			for i, c := range cores {
				if err := c.Submit(CloneJob(ev.Job)); err != nil {
					t.Fatalf("%s step %d: %s submit %s: %v", tr, step, coreConfigs[i].name, ev.Job.ID, err)
				}
			}
		case Remove:
			// Resolve against the reference; the equality invariant makes
			// the resolution identical on every core, and the per-core
			// checks below fail loudly if it ever is not.
			switch {
			case contains(ref.Running(), ev.Target):
				if err := ref.Release(ev.Target); err != nil {
					t.Fatalf("%s step %d: reference release %s: %v", tr, step, ev.Target, err)
				}
				for i, c := range cores {
					if err := c.Release(ev.Target); err != nil {
						t.Fatalf("%s step %d: %s release %s: %v", tr, step, coreConfigs[i].name, ev.Target, err)
					}
				}
			case contains(ref.Queued(), ev.Target):
				ref.Withdraw(ev.Target)
				for i, c := range cores {
					if !c.Withdraw(ev.Target) {
						t.Fatalf("%s step %d: %s withdraw %s: not queued", tr, step, coreConfigs[i].name, ev.Target)
					}
				}
			default:
				continue // already released or withdrawn earlier
			}
		}

		want := ref.Schedule()
		wantQ, wantR := ref.Queued(), ref.Running()
		for i, c := range cores {
			got := reduce(c.Schedule())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s step %d: %s placements diverged\n ref:  %+v\n core: %+v",
					tr, step, coreConfigs[i].name, want, got)
			}
			if gotQ := queuedIDs(c); !reflect.DeepEqual(gotQ, wantQ) {
				t.Fatalf("%s step %d: %s queue diverged\n ref:  %v\n core: %v",
					tr, step, coreConfigs[i].name, wantQ, gotQ)
			}
			if gotR := c.Running(); !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("%s step %d: %s running set diverged\n ref:  %v\n core: %v",
					tr, step, coreConfigs[i].name, wantR, gotR)
			}
		}
	}

	// Drain: keep scheduling over releases until everything finishes, so
	// traces also cover the tail where parked jobs wake as capacity frees.
	for guard := 0; ; guard++ {
		if guard > 10*len(tr.Events) {
			t.Fatalf("%s: drain did not converge: queue=%v running=%v", tr, ref.Queued(), ref.Running())
		}
		run := ref.Running()
		if len(run) == 0 && len(ref.Queued()) == 0 {
			break
		}
		if len(run) > 0 {
			id := run[0]
			if err := ref.Release(id); err != nil {
				t.Fatalf("%s drain: reference release %s: %v", tr, id, err)
			}
			for i, c := range cores {
				if err := c.Release(id); err != nil {
					t.Fatalf("%s drain: %s release %s: %v", tr, coreConfigs[i].name, id, err)
				}
			}
		} else {
			// Nothing runs but jobs still wait: they can never place (e.g.
			// a multi-node job larger than the cluster). Withdraw the head.
			id := ref.Queued()[0]
			ref.Withdraw(id)
			for i, c := range cores {
				if !c.Withdraw(id) {
					t.Fatalf("%s drain: %s withdraw %s: not queued", tr, coreConfigs[i].name, id)
				}
			}
		}
		want := ref.Schedule()
		wantQ, wantR := ref.Queued(), ref.Running()
		for i, c := range cores {
			got := reduce(c.Schedule())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s drain: %s placements diverged\n ref:  %+v\n core: %+v",
					tr, coreConfigs[i].name, want, got)
			}
			if gotQ := queuedIDs(c); !reflect.DeepEqual(gotQ, wantQ) {
				t.Fatalf("%s drain: %s queue diverged\n ref:  %v\n core: %v",
					tr, coreConfigs[i].name, wantQ, gotQ)
			}
			if gotR := c.Running(); !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("%s drain: %s running set diverged\n ref:  %v\n core: %v",
					tr, coreConfigs[i].name, wantR, gotR)
			}
		}
	}
}

func contains(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// TestDifferentialTraces is the harness: ≥1000 seeded random traces,
// each run through the naive reference and the real Core under all four
// gate/index configurations, with placements, queue order and running
// sets compared after every scheduling round. Seeds are the subtest
// names, so a failure reproduces with -run 'TestDifferentialTraces/seed0042'.
func TestDifferentialTraces(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	for seed := 0; seed < n; seed++ {
		tr := NewTrace(uint64(seed))
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			runTrace(t, tr)
		})
	}
}

// TestTraceCoverage guards the harness against vacuity: the seeded
// trace population must actually exercise every policy, both
// disciplines, preemption with real evictions, and multi-node jobs —
// otherwise a regression in one of those paths could slip through a
// green differential run.
func TestTraceCoverage(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	policies := map[schedcore.Policy]int{}
	var priority, preempt, multiNode, evictions int
	for seed := 0; seed < n; seed++ {
		tr := NewTrace(uint64(seed))
		policies[tr.Policy]++
		if tr.Discipline == "priority" {
			priority++
		}
		if tr.Preempt {
			preempt++
		}
		for _, ev := range tr.Events {
			if ev.Kind == Submit && !ev.Job.SingleNode {
				multiNode++
			}
		}
		if !tr.Preempt {
			continue
		}
		disc, err := schedcore.ParseDiscipline(tr.Discipline)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewReference(tr.Policy, tr.Topology, disc, tr.Preempt)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range tr.Events {
			switch ev.Kind {
			case Submit:
				if err := ref.Submit(CloneJob(ev.Job)); err != nil {
					t.Fatal(err)
				}
			case Remove:
				if contains(ref.Running(), ev.Target) {
					if err := ref.Release(ev.Target); err != nil {
						t.Fatal(err)
					}
				} else {
					ref.Withdraw(ev.Target)
				}
			}
			for _, p := range ref.Schedule() {
				evictions += len(p.Evictions)
			}
		}
	}
	for _, pol := range []schedcore.Policy{schedcore.FCFS, schedcore.BestFit, schedcore.TopoAware, schedcore.TopoAwareP} {
		if policies[pol] < n/20 {
			t.Errorf("policy %s underrepresented: %d of %d traces", pol, policies[pol], n)
		}
	}
	if priority < n/4 || preempt < n/4 {
		t.Errorf("config mix too thin: priority=%d preempt=%d of %d", priority, preempt, n)
	}
	if multiNode < n {
		t.Errorf("multi-node submissions too rare: %d across %d traces", multiNode, n)
	}
	if evictions < n/20 {
		t.Errorf("preemption path barely exercised: %d evictions across %d traces", evictions, n)
	}
}
