package schedcore

import (
	"testing"

	"gputopo/internal/topology"
)

// TestPlaceCacheHitsAcrossEquivalentMachines: a homogeneous fleet fed
// identical jobs is the cache's home turf — after the first machine is
// solved, every further identical subproblem must replay from the
// cache, and the decisions must be the same as an uncached core's.
func TestPlaceCacheHitsAcrossEquivalentMachines(t *testing.T) {
	topo := topology.Cluster(8, topology.KindMinsky)
	cached := newSchedWith(t, TopoAware, topo)
	uncached := newSchedWith(t, TopoAware, topo)
	uncached.SetPlaceCache(false)

	for i := 0; i < 16; i++ {
		j := mkJob(jobID(i), 16, 2, 0, float64(i))
		if err := cached.Submit(j); err != nil {
			t.Fatal(err)
		}
		if err := uncached.Submit(mkJob(jobID(i), 16, 2, 0, float64(i))); err != nil {
			t.Fatal(err)
		}
		want := placedIDs(uncached.Schedule())
		got := placedIDs(cached.Schedule())
		if len(got) != len(want) || (len(got) == 1 && got[0] != want[0]) {
			t.Fatalf("round %d: cached %v, uncached %v", i, got, want)
		}
	}
	cd := cached.State()
	ud := uncached.State()
	for _, id := range ud.Jobs() {
		ca, ua := cd.Allocation(id), ud.Allocation(id)
		if ca == nil {
			t.Fatalf("job %s missing under cache", id)
		}
		for k := range ua.GPUs {
			if ca.GPUs[k] != ua.GPUs[k] {
				t.Fatalf("job %s placed on %v cached vs %v uncached", id, ca.GPUs, ua.GPUs)
			}
		}
	}

	st := cached.Stats()
	if st.PlaceCacheHits == 0 {
		t.Fatalf("no cache hits on a homogeneous fleet of identical jobs: %+v", st)
	}
	if us := uncached.Stats(); us.PlaceCacheHits != 0 || us.PlaceCacheMisses != 0 {
		t.Fatalf("disabled cache reported traffic: %+v", us)
	}
}

func jobID(i int) string {
	return string([]byte{'j', byte('a' + i/26), byte('a' + i%26)})
}

func TestSetPlaceCacheToggle(t *testing.T) {
	s := newSchedWith(t, TopoAware, topology.Power8Minsky())
	if s.PlaceCache() == nil {
		t.Fatal("cache must default on")
	}
	s.SetPlaceCache(false)
	if s.PlaceCache() != nil || s.place.cache != nil {
		t.Fatal("SetPlaceCache(false) left a cache wired")
	}
	_ = s.Submit(mkJob("a", 16, 2, 0, 0))
	if ids := placedIDs(s.Schedule()); len(ids) != 1 {
		t.Fatalf("placements with cache off: %v", ids)
	}
	s.SetPlaceCache(true)
	if s.PlaceCache() == nil || s.place.cache == nil {
		t.Fatal("SetPlaceCache(true) did not rewire")
	}
	_ = s.Submit(mkJob("b", 16, 2, 0, 1))
	if ids := placedIDs(s.Schedule()); len(ids) != 1 {
		t.Fatalf("placements with cache back on: %v", ids)
	}
}

// TestVictimSearchAllocs pins the preemption satellite: evaluating a
// victim candidate must reuse the pooled scratch clone, not allocate a
// fresh deep copy per prefix. The cycle below preempts, restores, and
// re-places every iteration; with clone-per-candidate on a 16-machine
// fleet it costs thousands of allocations, with the pooled scratch a
// few hundred (decision records, eviction lists, queue churn).
func TestVictimSearchAllocs(t *testing.T) {
	topo := topology.Cluster(16, topology.KindMinsky)
	s := newSchedWith(t, TopoAwareP, topo, WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	// Fill the cluster with low-priority 4-GPU jobs so any arrival must
	// preempt and the victim search walks all 16 machine proposals.
	for i := 0; i < 16; i++ {
		if err := s.Submit(mkPrioJob(jobID(i), 4, 0, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if ids := placedIDs(s.Schedule()); len(ids) != 16 {
		t.Fatalf("setup placed %d jobs", len(ids))
	}

	n := 0
	avg := testing.AllocsPerRun(20, func() {
		hi := mkPrioJob("hi", 4, 1, 100)
		if err := s.Submit(hi); err != nil {
			t.Fatal(err)
		}
		decs := s.Schedule()
		var victim string
		for _, d := range decs {
			if d.Job.ID == "hi" && len(d.Evictions) > 0 {
				victim = d.Evictions[0].Job.ID
			}
		}
		if victim == "" {
			t.Fatal("expected a preemptive placement")
		}
		// Undo: release the high-priority job; the victim re-places on
		// the freed capacity, restoring the all-full steady state.
		if err := s.Release("hi"); err != nil {
			t.Fatal(err)
		}
		if ids := placedIDs(s.Schedule()); len(ids) != 1 {
			t.Fatalf("victim did not re-place: %v", ids)
		}
		n++
	})
	// Clone-per-candidate costs >60 allocations per evaluated machine
	// (owner slice, maps, per-allocation copies) — about 2000/op on this
	// fleet before pooling. 600 leaves slack for queue and decision
	// bookkeeping while still failing loudly on a clone regression.
	if avg > 600 {
		t.Fatalf("preemption cycle allocates %.0f/op, want <= 600", avg)
	}
}
