package schedcore

import (
	"testing"

	"gputopo/internal/topology"
)

// TestEpochGateSkipsUntilRelease is the unit-level proof of the version
// gate: a job postponed by tryPlace (here: low utility under
// TOPO-AWARE-P) is not re-evaluated on subsequent Schedule calls while
// the cluster epoch stands still, and is re-evaluated — and placed — as
// soon as a release moves the epoch.
func TestEpochGateSkipsUntilRelease(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())

	// Occupy a GPU so the cluster is not idle (an idle cluster places
	// best-effort instead of postponing) and so the picky job's best
	// placement is poor enough to score below its demanding SLO.
	blocker := mkJob("blocker", 1, 1, 0.0, 0)
	if err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	if ds := s.Schedule(); len(ds) != 1 || ds[0].Postponed {
		t.Fatalf("blocker did not place: %+v", ds)
	}

	// A tiny-batch 2-GPU job with an unreachable SLO: capacity exists
	// (the gate must not be a capacity artifact), but utility < 0.99.
	picky := mkJob("picky", 1, 2, 0.99, 1)
	if err := s.Submit(picky); err != nil {
		t.Fatal(err)
	}
	d := s.Schedule()
	if len(d) != 1 || !d[0].Postponed || d[0].Reason != "low-utility" {
		t.Fatalf("want low-utility postponement, got %+v", d[0])
	}
	base := s.Stats()
	if base.Decisions == 0 {
		t.Fatal("postponement must have cost a decision")
	}

	// Epoch unchanged: every further Schedule call must replay the memo
	// without spending a decision.
	for i := 0; i < 5; i++ {
		d := s.Schedule()
		if len(d) != 1 || !d[0].Postponed || d[0].Reason != "low-utility" {
			t.Fatalf("round %d: want replayed postponement, got %+v", i, d[0])
		}
	}
	st := s.Stats()
	if st.Decisions != base.Decisions {
		t.Fatalf("gated rounds spent decisions: %d -> %d", base.Decisions, st.Decisions)
	}
	if st.GateSkips != base.GateSkips+5 {
		t.Fatalf("GateSkips = %d, want %d", st.GateSkips, base.GateSkips+5)
	}
	if st.Postponements != base.Postponements+5 {
		t.Fatalf("Postponements = %d, want %d (replays must count)", st.Postponements, base.Postponements+5)
	}

	// A release bumps the epoch; the next Schedule must re-evaluate. With
	// the machine to itself the cluster is idle, so TOPO-AWARE-P places
	// best-effort.
	if err := s.Release("blocker"); err != nil {
		t.Fatal(err)
	}
	d = s.Schedule()
	if len(d) != 1 || d[0].Postponed {
		t.Fatalf("after release: want placement, got %+v", d[0])
	}
	after := s.Stats()
	if after.Decisions != st.Decisions+1 {
		t.Fatalf("release did not trigger re-evaluation: decisions %d -> %d", st.Decisions, after.Decisions)
	}
	if len(s.lastFailed) != 0 {
		t.Fatalf("memo not cleared after placement: %v", s.lastFailed)
	}
}

// TestEpochGateDisabled asserts SetEpochGate(false) restores the
// re-evaluate-every-round behavior with identical decisions.
func TestEpochGateDisabled(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	s.SetEpochGate(false)
	if err := s.Submit(mkJob("blocker", 1, 1, 0.0, 0)); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	if err := s.Submit(mkJob("picky", 1, 2, 0.99, 1)); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	base := s.Stats()
	for i := 0; i < 3; i++ {
		d := s.Schedule()
		if len(d) != 1 || !d[0].Postponed || d[0].Reason != "low-utility" {
			t.Fatalf("round %d: got %+v", i, d[0])
		}
	}
	st := s.Stats()
	if st.GateSkips != 0 {
		t.Fatalf("disabled gate recorded %d skips", st.GateSkips)
	}
	if st.Decisions != base.Decisions+3 {
		t.Fatalf("disabled gate must re-decide each round: %d -> %d", base.Decisions, st.Decisions)
	}
}

// TestEpochGateAllocationInvalidatesMemo covers the intra-walk epoch
// move: when another job's placement changes the state mid-walk, a
// memoized postponement from an earlier epoch must not be replayed.
func TestEpochGateAllocationInvalidatesMemo(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	if err := s.Submit(mkJob("blocker", 1, 1, 0.0, 0)); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	if err := s.Submit(mkJob("picky", 1, 2, 0.99, 1)); err != nil {
		t.Fatal(err)
	}
	s.Schedule() // memoizes picky at the current epoch
	base := s.Stats()

	// A new 1-GPU job arrives and places in the same walk — the walk
	// visits picky first (older arrival, epoch unchanged → replay), then
	// places the newcomer (epoch moves). The walk after that must
	// re-evaluate picky.
	if err := s.Submit(mkJob("newcomer", 1, 1, 0.0, 2)); err != nil {
		t.Fatal(err)
	}
	d := s.Schedule()
	if len(d) != 2 {
		t.Fatalf("want 2 decisions, got %d", len(d))
	}
	if !d[0].Postponed || d[1].Postponed {
		t.Fatalf("want [postponed picky, placed newcomer], got %+v %+v", d[0], d[1])
	}
	st := s.Stats()
	if st.GateSkips != base.GateSkips+1 {
		t.Fatalf("GateSkips = %d, want %d", st.GateSkips, base.GateSkips+1)
	}
	d = s.Schedule()
	if len(d) != 1 {
		t.Fatalf("want 1 decision, got %d", len(d))
	}
	if s.Stats().Decisions != st.Decisions+1 {
		t.Fatal("epoch move did not invalidate the memo")
	}
}
