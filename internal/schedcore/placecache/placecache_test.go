package placecache

import (
	"reflect"
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/job"
	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func mustState(t *testing.T, mix string) *cluster.State {
	t.Helper()
	specs, err := topology.ParseMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.HeterogeneousCluster(specs)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.NewState(topo)
}

func alloc(t *testing.T, st *cluster.State, id string, gpus []int, traits perfmodel.Traits) {
	t.Helper()
	if err := st.Allocate(id, gpus, 1, traits); err != nil {
		t.Fatal(err)
	}
}

func TestJobSig(t *testing.T) {
	a := job.New("a", perfmodel.AlexNet, 16, 2, 0.5, 0)
	b := job.New("b", perfmodel.AlexNet, 16, 2, 0.9, 3) // same shape, different identity/SLO/arrival
	sigA, okA := JobSig(a)
	sigB, okB := JobSig(b)
	if !okA || !okB {
		t.Fatal("default data-parallel jobs must be cacheable")
	}
	if sigA != sigB {
		t.Fatalf("identity-only differences changed the signature: %q vs %q", sigA, sigB)
	}

	// Every mapper-visible field must move the signature.
	variants := []*job.Job{
		job.New("v", perfmodel.GoogLeNet, 16, 2, 0.5, 0), // model
		job.New("v", perfmodel.AlexNet, 128, 2, 0.5, 0),  // batch class
		job.New("v", perfmodel.AlexNet, 16, 4, 0.5, 0),   // gpus
	}
	multi := job.New("v", perfmodel.AlexNet, 16, 2, 0.5, 0)
	multi.SingleNode = false
	anti := job.New("v", perfmodel.AlexNet, 16, 2, 0.5, 0)
	anti.SingleNode, anti.AntiCollocate = false, true
	mp := job.New("v", perfmodel.AlexNet, 16, 2, 0.5, 0)
	mp.Parallelism = perfmodel.ModelParallel
	variants = append(variants, multi, anti, mp)
	seen := map[string]bool{sigA: true}
	for _, v := range variants {
		sig, ok := JobSig(v)
		if !ok {
			t.Fatalf("%v: not cacheable", v)
		}
		if seen[sig] {
			t.Fatalf("variant %v collided with an earlier signature %q", v, sig)
		}
		seen[sig] = true
	}

	// A custom communication graph is invisible to the signature, so the
	// job must refuse caching outright.
	custom := job.New("c", perfmodel.AlexNet, 16, 2, 0.5, 0)
	if err := custom.SetCommGraph(jobgraph.Ring(2, 99)); err != nil {
		t.Fatal(err)
	}
	if _, ok := JobSig(custom); ok {
		t.Fatal("custom comm graph must not be cacheable")
	}
}

func TestSlotsOf(t *testing.T) {
	cands := []int{3, 5, 8, 9, 12}
	slots, ok := SlotsOf(cands, []int{8, 3, 12})
	if !ok || !reflect.DeepEqual(slots, []int{2, 0, 4}) {
		t.Fatalf("SlotsOf = %v, %v", slots, ok)
	}
	if _, ok := SlotsOf(cands, []int{7}); ok {
		t.Fatal("non-candidate GPU must not resolve")
	}
}

func TestCacheLRU(t *testing.T) {
	c := New(2)
	k := func(i byte) Key { return Key{Job: string(i), Frag: 1, Shape: "s"} }
	sc := func(u float64) Score { return Score{Utility: u, P2P: true} }
	c.Store(k(1), []int{0}, sc(0.25), false)
	c.Store(k(2), []int{1}, sc(0.5), false)
	if _, score, _, ok := c.Lookup(k(1)); !ok || score != sc(0.25) { // promotes 1 over 2
		t.Fatalf("key 1 = (%+v, %v), want hit with stored score", score, ok)
	}
	c.Store(k(3), nil, Score{}, true) // evicts 2, the LRU entry
	if _, _, _, ok := c.Lookup(k(2)); ok {
		t.Fatal("key 2 should have been evicted")
	}
	if slots, _, negative, ok := c.Lookup(k(3)); !ok || !negative || slots != nil {
		t.Fatalf("negative entry = (%v, %v, %v)", slots, negative, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Storing a slice then mutating the caller's copy must not reach the
	// cache, and an update-in-place must replace the payload and score.
	src := []int{4, 5}
	c.Store(k(3), src, sc(0.75), false)
	src[0] = 99
	if slots, score, negative, _ := c.Lookup(k(3)); negative || score != sc(0.75) || !reflect.DeepEqual(slots, []int{4, 5}) {
		t.Fatalf("updated entry = %v %+v (negative=%v)", slots, score, negative)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if got := New(0); got.cap != DefaultCapacity {
		t.Fatalf("New(0) capacity = %d", got.cap)
	}
	if got := New(-1); got.cap != DefaultCapacity {
		t.Fatalf("New(-1) capacity = %d", got.cap)
	}
}

// TestSingleHostKeyEquivalence: two machines of the same kind with the
// same occupancy pattern must key identically — that is the hit the
// cache lives for — while every observable difference must split keys.
func TestSingleHostKeyEquivalence(t *testing.T) {
	st := mustState(t, "minsky:3")
	topo := st.Topology()
	tr := perfmodel.Traits{Model: perfmodel.AlexNet, Class: 1, GPUs: 2, Mode: perfmodel.DataParallel}
	// Same pattern on machines 0 and 1: first two GPUs busy.
	alloc(t, st, "a", topo.GPUsOfMachine(0)[:2], tr)
	alloc(t, st, "b", topo.GPUsOfMachine(1)[:2], tr)
	k0 := SingleHostKey("sig", st, 0)
	k1 := SingleHostKey("sig", st, 1)
	if k0 != k1 {
		t.Fatalf("equivalent machines keyed apart:\n%q\n%q", k0.Shape, k1.Shape)
	}
	if k2 := SingleHostKey("sig", st, 2); k2 == k0 {
		t.Fatal("empty machine keyed as occupied machine")
	}
	if kj := SingleHostKey("other", st, 0); kj == k0 {
		t.Fatal("job signature not part of the key")
	}
}

// TestSingleHostKeyAdversarial drives the canonicalization edge cases
// of the issue: a degraded machine vs a partially allocated healthy
// one, differing resident traits, and differing free-set geometry must
// never collide.
func TestSingleHostKeyAdversarial(t *testing.T) {
	tr := perfmodel.Traits{Model: perfmodel.AlexNet, Class: 1, GPUs: 1, Mode: perfmodel.DataParallel}

	// minsky-1g (3 healthy GPUs) vs minsky with one GPU allocated: both
	// offer 3 free GPUs, but the occupied machine carries an interfering
	// tenant and different socket arithmetic.
	degraded := mustState(t, "minsky-1g:1")
	full := mustState(t, "minsky:1")
	alloc(t, full, "tenant", []int{0}, tr)
	kd := SingleHostKey("sig", degraded, 0)
	kf := SingleHostKey("sig", full, 0)
	if kd.Shape == kf.Shape {
		t.Fatal("degraded machine collided with occupied healthy machine")
	}

	// Same free set, different resident traits.
	s1 := mustState(t, "minsky:1")
	s2 := mustState(t, "minsky:1")
	alloc(t, s1, "x", []int{0, 1}, tr)
	heavy := tr
	heavy.Model = perfmodel.GoogLeNet
	alloc(t, s2, "x", []int{0, 1}, heavy)
	if SingleHostKey("sig", s1, 0).Shape == SingleHostKey("sig", s2, 0).Shape {
		t.Fatal("resident job traits not part of the shape")
	}

	// Same free count, different geometry: two free GPUs on one socket
	// vs split across sockets.
	g1 := mustState(t, "minsky:1")
	g2 := mustState(t, "minsky:1")
	topo := g1.Topology()
	sockets := topo.Sockets(0)
	a := topo.GPUsOfSocket(0, sockets[0])
	b := topo.GPUsOfSocket(0, sockets[1])
	alloc(t, g1, "x", []int{b[0], b[1]}, tr) // free = all of socket 0
	alloc(t, g2, "x", []int{a[1], b[1]}, tr) // free = one per socket
	if SingleHostKey("sig", g1, 0).Shape == SingleHostKey("sig", g2, 0).Shape {
		t.Fatal("free-set geometry not part of the shape")
	}

	// Matrix-discovered substrate with asymmetric peer links: socket 0's
	// pair is NVLink-connected, socket 1's pair only routes through the
	// system bus. Freeing one pair or the other leaves the same free
	// count, the same socket sizes and intra-socket locality — only the
	// pairwise distance differs, and the keys must still split.
	m, err := topology.ParseMatrix(`
     GPU0  GPU1  GPU2  GPU3  CPUAffinity
GPU0 X     NV2   SYS   SYS   0-7
GPU1 NV2   X     SYS   SYS   0-7
GPU2 SYS   SYS   X     SYS   8-15
GPU3 SYS   SYS   SYS   X     8-15
`)
	if err != nil {
		t.Fatal(err)
	}
	fastFree := cluster.NewState(m)
	slowFree := cluster.NewState(m)
	alloc(t, fastFree, "x", []int{2, 3}, tr) // free = NV2 pair
	alloc(t, slowFree, "x", []int{0, 1}, tr) // free = SYS pair
	if SingleHostKey("sig", fastFree, 0).Shape == SingleHostKey("sig", slowFree, 0).Shape {
		t.Fatal("matrix substrate: NV2 free pair collided with SYS free pair")
	}
}

// TestMultiHostKeyLinkage: a job spanning two candidate hosts is a
// different interference subproblem than two distinct same-trait jobs,
// one per host — predictInterference counts the spanning job once. The
// linkage trailer must split those keys, and host order must matter.
func TestMultiHostKeyLinkage(t *testing.T) {
	tr := perfmodel.Traits{Model: perfmodel.AlexNet, Class: 1, GPUs: 2, Mode: perfmodel.DataParallel}
	span := mustState(t, "minsky:2")
	topo := span.Topology()
	g0 := topo.GPUsOfMachine(0)
	g1 := topo.GPUsOfMachine(1)
	alloc(t, span, "wide", []int{g0[0], g1[0]}, tr)

	separate := mustState(t, "minsky:2")
	alloc(t, separate, "p", []int{g0[0]}, tr)
	alloc(t, separate, "q", []int{g1[0]}, tr)

	hosts := []int{0, 1}
	kSpan := MultiHostKey("sig", span, hosts)
	kSep := MultiHostKey("sig", separate, hosts)
	if kSpan.Shape == kSep.Shape {
		t.Fatal("spanning job collided with per-host jobs of equal traits")
	}

	// Anti-collocated placements enumerate hosts in candidate order; the
	// ordered shape must distinguish permutations on a heterogeneous
	// candidate list.
	het := mustState(t, "minsky:1+dgx1:1")
	if MultiHostKey("sig", het, []int{0, 1}).Shape == MultiHostKey("sig", het, []int{1, 0}).Shape {
		t.Fatal("host order not part of the multi-node shape")
	}
}
