// Package placecache memoizes placement decisions across equivalent
// subproblems. The paper's Eq. 1 mapper is a pure function of (job,
// cluster state, candidate GPU set); on a large homogeneous fleet the
// scheduler solves the same subproblem thousands of times — identical
// jobs landing on machines whose free-GPU sets are pairwise equivalent
// up to relabeling. The cache keys each evaluation by a canonical
// fingerprint of everything the mapper can observe and stores the
// decision as *slot indices* into the candidate list plus the scored
// quality terms. A hit replays the slots onto the concrete machine's
// free GPUs (the relabeling map) and rebuilds the placement from the
// stored terms; because every term is itself a pure function of the
// key, a hit is bit-for-bit identical to the miss it replays.
//
// Keys are total by construction: two subproblems with equal keys
// present the DRB recursion, the utility terms (communication cost,
// interference prediction, fragmentation) and the deterministic error
// paths with identical inputs up to an order-preserving relabeling of
// the candidate GPUs, so the mapper makes the same choice expressed in
// the same slot positions. See docs/performance.md for the full key
// construction and docs/architecture.md for the invariant.
package placecache

import (
	"container/list"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"gputopo/internal/cluster"
	"gputopo/internal/job"
	"gputopo/internal/jobgraph"
)

// Key canonically identifies one placement subproblem.
type Key struct {
	// Job is the job signature from JobSig: every job field the mapper
	// reads, excluding identity.
	Job string
	// Frag pins the global fragmentation context: the raw bits of the
	// state's Eq. 5 numerator (cluster.FragSum). The ω_d utility term
	// reads the global sum, so two otherwise-equal machines score
	// differently when the rest of the cluster differs.
	Frag uint64
	// Shape is the canonical shape of the candidate set: one machine
	// fingerprint for single-node placements, an ordered host sequence
	// with cross-host job linkage for multi-node ones.
	Shape string
}

// JobSig returns the canonical signature of every job field a placement
// evaluation reads, and whether the job is cacheable at all. Jobs with
// a custom communication graph (SetCommGraph) are not cacheable: the
// graph's edge weights feed the comm-cost term but are not summarized
// by any job field, so the signature cannot cover them. The default
// data-parallel graph is fully determined by (GPUs, batch class) and is
// process-wide shared, making the check a pointer comparison.
//
// BatchSize is deliberately absent: the mapper reads it only through
// Class(). MinUtility and Priority are absent because they gate what
// happens *after* placement (postponement, preemption), never the
// placement itself.
func JobSig(j *job.Job) (string, bool) {
	if j.CommGraph() != jobgraph.SharedAllToAll(j.GPUs, j.Class().CommWeight()) {
		return "", false
	}
	return fmt.Sprintf("g%d.m%d.c%d.p%d.a%t.s%t",
		j.GPUs, int(j.Model), int(j.Class()), int(j.Parallelism),
		j.AntiCollocate, j.SingleNode), true
}

// SingleHostKey builds the key for placing the job onto the free GPUs
// of machine m.
func SingleHostKey(sig string, st *cluster.State, m int) Key {
	return Key{
		Job:   sig,
		Frag:  math.Float64bits(st.FragSum()),
		Shape: st.MachineFingerprint(m),
	}
}

// MultiHostKey builds the key for placing the job onto the concatenated
// free GPUs of hosts. The shape is the *ordered* host sequence — the
// mapper's bipartition numbers its vertices by candidate order, so host
// order is part of the subproblem — with each host's fingerprint
// followed by a cross-host linkage trailer: per co-resident job (in the
// same sorted order the host fingerprint lists its blocks) either "n,"
// for a job not seen on an earlier host, or "b<h>.<b>," naming the
// host and block index of its first occurrence. The linkage is what
// predictInterference observes: a job spanning two candidate hosts
// contributes once, at its first host, so two states are equivalent
// only if their spanning patterns match.
func MultiHostKey(sig string, st *cluster.State, hosts []int) Key {
	var sb strings.Builder
	firstSeen := make(map[string][2]int) // job ID -> (host idx, block idx); lookup-only
	for hi, m := range hosts {
		sb.WriteByte('#')
		sb.WriteString(st.MachineFingerprint(m))
		sb.WriteByte('~')
		for bi, id := range st.JobsOnMachine(m) {
			if at, ok := firstSeen[id]; ok {
				fmt.Fprintf(&sb, "b%d.%d,", at[0], at[1])
			} else {
				firstSeen[id] = [2]int{hi, bi}
				sb.WriteString("n,")
			}
		}
	}
	return Key{
		Job:   sig,
		Frag:  math.Float64bits(st.FragSum()),
		Shape: sb.String(),
	}
}

// SlotsOf converts a placement's GPU positions into slot indices within
// the ascending candidate list — the relabeling-independent payload the
// cache stores. Returns false if any GPU is not a candidate (a mapper
// bug; callers skip caching rather than corrupt it).
func SlotsOf(candidates, gpus []int) ([]int, bool) {
	slots := make([]int, len(gpus))
	for i, g := range gpus {
		idx, ok := slices.BinarySearch(candidates, g)
		if !ok {
			return nil, false
		}
		slots[i] = idx
	}
	return slots, true
}

// DefaultCapacity bounds the LRU when New is given a non-positive
// capacity. A scenario-2 fleet cycles through a few hundred distinct
// (job class × machine occupancy) shapes; 4096 holds them with room
// for fragmentation-context variants.
const DefaultCapacity = 4096

// Stats counts cache traffic since creation.
type Stats struct {
	Hits      int
	Misses    int
	Evictions int
}

// Score carries the scored quality terms of a cached placement — every
// field of the mapper's Placement except the GPU positions themselves.
// Each term is a pure function of the cache key: communication cost and
// P2P reachability follow from the static machine shape and the chosen
// slots, interference from the co-resident job traits and socket
// localities the shape fingerprint encodes, fragmentation from the
// key's global FragSum plus the machine-local free shape, and bus
// demand from the job and the chosen slots alone. A hit therefore
// rebuilds the full Placement without re-running the utility terms.
type Score struct {
	Utility       float64
	CommCost      float64
	Interference  float64
	Fragmentation float64
	P2P           bool
	BusDemand     float64
}

type entry struct {
	key      Key
	slots    []int
	score    Score
	negative bool
}

// Cache is a bounded LRU from subproblem keys to slot decisions. Safe
// for concurrent use; the sharded scheduler shares one cache per
// domain between the placement path and the preemption victim search.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	stats Stats
}

// New returns a cache bounded to capacity entries (DefaultCapacity when
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element, capacity),
	}
}

// Lookup returns the cached decision for k: the slot indices and scored
// terms of the placement, or negative=true for a remembered
// deterministic infeasibility. The returned slice must not be mutated.
func (c *Cache) Lookup(k Key) (slots []int, score Score, negative, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[k]
	if !found {
		c.stats.Misses++
		return nil, Score{}, false, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return e.slots, e.score, e.negative, true
}

// Store records the decision for k, copying slots. negative marks a
// deterministic placement failure (e.g. anti-collocation machine
// shortage) so the failure is replayed without re-running the mapper.
func (c *Cache) Store(k Key, slots []int, score Score, negative bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.items[k]; found {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry)
		e.slots = append(e.slots[:0], slots...)
		e.score = score
		e.negative = negative
		return
	}
	c.items[k] = c.ll.PushFront(&entry{
		key:      k,
		slots:    append([]int(nil), slots...),
		score:    score,
		negative: negative,
	})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of cached decisions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
