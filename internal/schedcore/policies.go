package schedcore

import (
	"errors"
	"fmt"
	"slices"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/schedcore/placecache"
)

// placer evaluates the placement policies of §5 against one cluster
// state without committing anything. The Core owns one bound to its live
// state; the preemption path builds throwaway placers over state clones
// to evaluate victim sets, and the exported Placer facade hands the same
// arithmetic to the differential test harness — so every caller scores
// placements with bit-identical code.
type placer struct {
	policy Policy
	state  *cluster.State
	mapper *core.Mapper
	// freeScratch and hostScratch are reused for candidate GPU and host
	// lists; their contents are dead once the owning call returns.
	freeScratch []int
	hostScratch []int
	// cache memoizes mapper decisions across equivalent subproblems
	// (nil disables). Only the TOPO-AWARE paths consult it — FCFS and
	// Best-Fit pick GPUs greedily and only Score the pick, which is
	// already cheap.
	cache *placecache.Cache
}

// errCachedInfeasible replays a remembered deterministic mapper failure
// (Place is a pure function of the key, so its errors are part of the
// decision). Callers only branch on err != nil.
var errCachedInfeasible = errors.New("sched: placement infeasible (cached)")

// attempt runs the placement policy on the job and applies the
// TOPO-AWARE-P low-utility postponement rule. It returns the chosen
// placement, or nil and the postponement reason ("no-capacity",
// "low-utility"). Nothing is committed: the caller allocates.
func (p *placer) attempt(j *job.Job) (*core.Placement, string) {
	var placement *core.Placement
	var err error
	switch p.policy {
	case FCFS:
		placement, err = p.placeFCFS(j)
	case BestFit:
		placement, err = p.placeBestFit(j)
	case TopoAware, TopoAwareP:
		placement, err = p.placeTopoAware(j)
	}
	if err != nil {
		return nil, "no-capacity"
	}
	if p.policy == TopoAwareP && placement.Utility < j.MinUtility && !p.clusterIdle() {
		// Postpone: a better placement may open when jobs finish. On an
		// idle cluster no future placement can beat this one, so place
		// best-effort to avoid deadlock.
		return nil, "low-utility"
	}
	return placement, ""
}

// clusterIdle reports whether no job is currently running.
func (p *placer) clusterIdle() bool { return len(p.state.Jobs()) == 0 }

// placeFCFS is the First-Come-First-Served baseline of §5.2: the job at
// the head of the FIFO queue receives the first free GPUs in index order,
// with no topology consideration beyond the single-node constraint.
func (p *placer) placeFCFS(j *job.Job) (*core.Placement, error) {
	if j.SingleNode {
		topo := p.state.Topology()
		for m := 0; m < topo.NumMachines(); m++ {
			if p.state.FreeCountOnMachine(m) < j.GPUs {
				continue
			}
			free := p.state.AppendFreeGPUsOnMachine(p.freeScratch[:0], m)
			p.freeScratch = free
			return p.mapper.Score(j, p.state, free[:j.GPUs]), nil
		}
		return nil, fmt.Errorf("sched: no machine with %d free GPUs", j.GPUs)
	}
	free := p.state.AppendFreeGPUs(p.freeScratch[:0])
	p.freeScratch = free
	if len(free) < j.GPUs {
		return nil, fmt.Errorf("sched: %d free GPUs for request of %d", len(free), j.GPUs)
	}
	return p.mapper.Score(j, p.state, free[:j.GPUs]), nil
}

// placeBestFit is the Best-Fit bin-packing baseline of §5.2: it allocates
// "first the GPUs from highly used domains" — machines are tried from the
// fewest free GPUs that still fit, and within a machine the GPUs of the
// most-used sockets are taken first.
func (p *placer) placeBestFit(j *job.Job) (*core.Placement, error) {
	topo := p.state.Topology()
	type hostFit struct {
		machine int
		free    int
	}
	var hostBuf [64]hostFit
	hosts := hostBuf[:0]
	for m := 0; m < topo.NumMachines(); m++ {
		// O(1) per machine via the state's incremental free counters —
		// materializing every machine's free-GPU list just to count it
		// dominated the greedy baselines' decision time at 1k machines.
		free := p.state.FreeCountOnMachine(m)
		if free > 0 {
			hosts = append(hosts, hostFit{machine: m, free: free})
		}
	}
	// Tightest fit first; ties by machine index for determinism.
	slices.SortFunc(hosts, func(a, b hostFit) int {
		if a.free != b.free {
			return a.free - b.free
		}
		return a.machine - b.machine
	})

	if j.SingleNode {
		for _, h := range hosts {
			if h.free >= j.GPUs {
				gpus := p.bestFitGPUs(h.machine, j.GPUs)
				return p.mapper.Score(j, p.state, gpus), nil
			}
		}
		return nil, fmt.Errorf("sched: no machine fits %d GPUs", j.GPUs)
	}

	gpus := p.freeScratch[:0]
	for _, h := range hosts {
		need := j.GPUs - len(gpus)
		if need == 0 {
			break
		}
		take := need
		if take > h.free {
			take = h.free
		}
		gpus = append(gpus, p.bestFitGPUs(h.machine, take)...)
	}
	p.freeScratch = gpus
	if len(gpus) < j.GPUs {
		return nil, fmt.Errorf("sched: %d free GPUs for request of %d", len(gpus), j.GPUs)
	}
	return p.mapper.Score(j, p.state, gpus), nil
}

// bestFitGPUs picks n free GPUs on the machine, preferring the sockets
// with the most GPUs already in use (bin packing within the machine).
func (p *placer) bestFitGPUs(machine, n int) []int {
	topo := p.state.Topology()
	type socketFit struct {
		socket int
		used   int
	}
	var socketBuf [8]socketFit
	sockets := socketBuf[:0]
	for _, sk := range topo.Sockets(machine) {
		used, free := 0, 0
		for _, pos := range topo.GPUsOfSocket(machine, sk) {
			if p.state.Owner(pos) == "" {
				free++
			} else {
				used++
			}
		}
		if free > 0 {
			sockets = append(sockets, socketFit{socket: sk, used: used})
		}
	}
	slices.SortFunc(sockets, func(a, b socketFit) int {
		if a.used != b.used {
			return b.used - a.used
		}
		return a.socket - b.socket
	})
	out := make([]int, 0, n)
	for _, sf := range sockets {
		for _, pos := range topo.GPUsOfSocket(machine, sf.socket) {
			if p.state.Owner(pos) != "" {
				continue
			}
			if len(out) == n {
				return out
			}
			out = append(out, pos)
		}
	}
	return out
}

// placeTopoAware implements the topology-aware policies: filter hosts by
// constraints (Algorithm 1), then run the DRB mapper over each candidate
// host (or over the whole candidate set for multi-node jobs) and keep the
// highest-utility solution.
func (p *placer) placeTopoAware(j *job.Job) (*core.Placement, error) {
	hosts := p.filterHosts(j)
	if len(hosts) == 0 {
		return nil, fmt.Errorf("sched: no host satisfies constraints of %s", j.ID)
	}

	var sig string
	cacheable := false
	if p.cache != nil {
		sig, cacheable = placecache.JobSig(j)
	}

	if !j.SingleNode {
		candidates := p.freeScratch[:0]
		for _, m := range hosts {
			candidates = p.state.AppendFreeGPUsOnMachine(candidates, m)
		}
		p.freeScratch = candidates
		if len(candidates) < j.GPUs {
			return nil, fmt.Errorf("sched: %d candidate GPUs for request of %d", len(candidates), j.GPUs)
		}
		if cacheable {
			return p.placeCached(j, placecache.MultiHostKey(sig, p.state, hosts), candidates)
		}
		return p.mapper.Place(j, p.state, candidates)
	}

	var best *core.Placement
	for _, m := range hosts {
		free := p.state.AppendFreeGPUsOnMachine(p.freeScratch[:0], m)
		p.freeScratch = free
		var pl *core.Placement
		var err error
		if cacheable {
			pl, err = p.placeCached(j, placecache.SingleHostKey(sig, p.state, m), free)
		} else {
			pl, err = p.mapper.Place(j, p.state, free)
		}
		if err != nil {
			continue
		}
		if best == nil || pl.Utility > best.Utility {
			best = pl
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: DRB found no feasible mapping for %s", j.ID)
	}
	return best, nil
}

// placeCached runs one mapper evaluation through the cache. candidates
// must be ascending (free lists are). A hit relabels the stored slot
// indices onto the concrete candidates and rebuilds the Placement from
// the stored quality terms — every term is a pure function of the key
// (placecache.Score documents why), so a hit is bit-for-bit identical
// to the miss it replays. A miss runs the mapper and stores the
// decision, including deterministic failures (negative entries): Place
// is a pure function of the key's inputs, so "no feasible mapping here"
// is as cacheable as a mapping.
func (p *placer) placeCached(j *job.Job, key placecache.Key, candidates []int) (*core.Placement, error) {
	if slots, score, negative, ok := p.cache.Lookup(key); ok {
		if negative {
			return nil, errCachedInfeasible
		}
		if replayable := len(slots) == j.GPUs; replayable {
			gpus := make([]int, 0, len(slots))
			for _, sl := range slots {
				if sl < 0 || sl >= len(candidates) {
					gpus = nil // defensive: corrupt entry, fall through to miss
					break
				}
				gpus = append(gpus, candidates[sl])
			}
			if gpus != nil {
				return &core.Placement{
					GPUs:          gpus,
					Utility:       score.Utility,
					CommCost:      score.CommCost,
					Interference:  score.Interference,
					Fragmentation: score.Fragmentation,
					P2P:           score.P2P,
					BusDemand:     score.BusDemand,
				}, nil
			}
		}
	}
	pl, err := p.mapper.Place(j, p.state, candidates)
	if err != nil {
		p.cache.Store(key, nil, placecache.Score{}, true)
		return nil, err
	}
	if slots, ok := placecache.SlotsOf(candidates, pl.GPUs); ok {
		p.cache.Store(key, slots, placecache.Score{
			Utility:       pl.Utility,
			CommCost:      pl.CommCost,
			Interference:  pl.Interference,
			Fragmentation: pl.Fragmentation,
			P2P:           pl.P2P,
			BusDemand:     pl.BusDemand,
		}, false)
	}
	return pl, nil
}

// filterHosts implements filterHostsByConstraints (Algorithm 1): machines
// with enough free GPUs and enough uncommitted shared-bus bandwidth for
// the job. Returned machine indices are ascending.
func (p *placer) filterHosts(j *job.Job) []int {
	topo := p.state.Topology()
	demand := estimateDemand(j, p.state)
	hosts := p.hostScratch[:0]
	for m := 0; m < topo.NumMachines(); m++ {
		if p.state.FreeCountOnMachine(m) < minGPUsPerHost(j) {
			continue
		}
		if p.state.FreeBusBandwidth(m) < demand {
			continue
		}
		hosts = append(hosts, m)
	}
	p.hostScratch = hosts
	return hosts
}

// Placer exposes the placement evaluation to packages outside the core —
// the differential harness's naive reference scheduler reimplements the
// queue mechanics from scratch but must score placements with exactly
// the same policy arithmetic, or every comparison would chase mapper
// deltas instead of queue bugs.
type Placer struct{ p placer }

// NewPlacer returns a placement evaluator for the policy over the state.
func NewPlacer(policy Policy, state *cluster.State, mapper *core.Mapper) *Placer {
	return &Placer{p: placer{policy: policy, state: state, mapper: mapper}}
}

// Attempt evaluates the policy on the job without committing. It returns
// the placement, or nil and the postponement reason ("no-capacity",
// "low-utility").
func (pl *Placer) Attempt(j *job.Job) (*core.Placement, string) { return pl.p.attempt(j) }
