package schedcore

import (
	"fmt"
	"slices"

	"gputopo/internal/core"
	"gputopo/internal/job"
)

// placeFCFS is the First-Come-First-Served baseline of §5.2: the job at
// the head of the FIFO queue receives the first free GPUs in index order,
// with no topology consideration beyond the single-node constraint.
func (c *Core) placeFCFS(j *job.Job) (*core.Placement, error) {
	if j.SingleNode {
		topo := c.state.Topology()
		for m := 0; m < topo.NumMachines(); m++ {
			if c.state.FreeCountOnMachine(m) < j.GPUs {
				continue
			}
			free := c.state.AppendFreeGPUsOnMachine(c.freeScratch[:0], m)
			c.freeScratch = free
			return c.mapper.Score(j, c.state, free[:j.GPUs]), nil
		}
		return nil, fmt.Errorf("sched: no machine with %d free GPUs", j.GPUs)
	}
	free := c.state.AppendFreeGPUs(c.freeScratch[:0])
	c.freeScratch = free
	if len(free) < j.GPUs {
		return nil, fmt.Errorf("sched: %d free GPUs for request of %d", len(free), j.GPUs)
	}
	return c.mapper.Score(j, c.state, free[:j.GPUs]), nil
}

// placeBestFit is the Best-Fit bin-packing baseline of §5.2: it allocates
// "first the GPUs from highly used domains" — machines are tried from the
// fewest free GPUs that still fit, and within a machine the GPUs of the
// most-used sockets are taken first.
func (c *Core) placeBestFit(j *job.Job) (*core.Placement, error) {
	topo := c.state.Topology()
	type hostFit struct {
		machine int
		free    int
	}
	var hostBuf [64]hostFit
	hosts := hostBuf[:0]
	for m := 0; m < topo.NumMachines(); m++ {
		// O(1) per machine via the state's incremental free counters —
		// materializing every machine's free-GPU list just to count it
		// dominated the greedy baselines' decision time at 1k machines.
		free := c.state.FreeCountOnMachine(m)
		if free > 0 {
			hosts = append(hosts, hostFit{machine: m, free: free})
		}
	}
	// Tightest fit first; ties by machine index for determinism.
	slices.SortFunc(hosts, func(a, b hostFit) int {
		if a.free != b.free {
			return a.free - b.free
		}
		return a.machine - b.machine
	})

	if j.SingleNode {
		for _, h := range hosts {
			if h.free >= j.GPUs {
				gpus := c.bestFitGPUs(h.machine, j.GPUs)
				return c.mapper.Score(j, c.state, gpus), nil
			}
		}
		return nil, fmt.Errorf("sched: no machine fits %d GPUs", j.GPUs)
	}

	gpus := c.freeScratch[:0]
	for _, h := range hosts {
		need := j.GPUs - len(gpus)
		if need == 0 {
			break
		}
		take := need
		if take > h.free {
			take = h.free
		}
		gpus = append(gpus, c.bestFitGPUs(h.machine, take)...)
	}
	c.freeScratch = gpus
	if len(gpus) < j.GPUs {
		return nil, fmt.Errorf("sched: %d free GPUs for request of %d", len(gpus), j.GPUs)
	}
	return c.mapper.Score(j, c.state, gpus), nil
}

// bestFitGPUs picks n free GPUs on the machine, preferring the sockets
// with the most GPUs already in use (bin packing within the machine).
func (c *Core) bestFitGPUs(machine, n int) []int {
	topo := c.state.Topology()
	type socketFit struct {
		socket int
		used   int
	}
	var socketBuf [8]socketFit
	sockets := socketBuf[:0]
	for _, sk := range topo.Sockets(machine) {
		used, free := 0, 0
		for _, pos := range topo.GPUsOfSocket(machine, sk) {
			if c.state.Owner(pos) == "" {
				free++
			} else {
				used++
			}
		}
		if free > 0 {
			sockets = append(sockets, socketFit{socket: sk, used: used})
		}
	}
	slices.SortFunc(sockets, func(a, b socketFit) int {
		if a.used != b.used {
			return b.used - a.used
		}
		return a.socket - b.socket
	})
	out := make([]int, 0, n)
	for _, sf := range sockets {
		for _, pos := range topo.GPUsOfSocket(machine, sf.socket) {
			if c.state.Owner(pos) != "" {
				continue
			}
			if len(out) == n {
				return out
			}
			out = append(out, pos)
		}
	}
	return out
}

// placeTopoAware implements the topology-aware policies: filter hosts by
// constraints (Algorithm 1), then run the DRB mapper over each candidate
// host (or over the whole candidate set for multi-node jobs) and keep the
// highest-utility solution.
func (c *Core) placeTopoAware(j *job.Job) (*core.Placement, error) {
	hosts := c.filterHosts(j)
	if len(hosts) == 0 {
		return nil, fmt.Errorf("sched: no host satisfies constraints of %s", j.ID)
	}

	if !j.SingleNode {
		candidates := c.freeScratch[:0]
		for _, m := range hosts {
			candidates = c.state.AppendFreeGPUsOnMachine(candidates, m)
		}
		c.freeScratch = candidates
		if len(candidates) < j.GPUs {
			return nil, fmt.Errorf("sched: %d candidate GPUs for request of %d", len(candidates), j.GPUs)
		}
		return c.mapper.Place(j, c.state, candidates)
	}

	var best *core.Placement
	for _, m := range hosts {
		free := c.state.AppendFreeGPUsOnMachine(c.freeScratch[:0], m)
		c.freeScratch = free
		p, err := c.mapper.Place(j, c.state, free)
		if err != nil {
			continue
		}
		if best == nil || p.Utility > best.Utility {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: DRB found no feasible mapping for %s", j.ID)
	}
	return best, nil
}
