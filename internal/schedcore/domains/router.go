package domains

import (
	"fmt"

	"gputopo/internal/job"
)

// FreeFunc reports a domain's live occupancy: its free GPU count, the
// largest free-GPU count on any single machine, and the number of
// machines with any free GPU (the seats-now bound for anti-collocated
// jobs). The serving layer backs this with counters its domain
// event-loops publish after every batch — the router never touches a
// core directly, so a Route call costs three counter reads per domain
// and no cross-loop synchronization.
type FreeFunc func(domain int) (freeGPUs, maxFreeOnMachine, freeMachines int)

// Router picks a domain per submission over live free-GPU counters and
// remembers each job's home domain so releases and withdrawals find
// their way back. It is not concurrency-safe: the serving layer calls
// it from one dispatch goroutine, matching the single-writer discipline
// of the cores underneath.
type Router struct {
	caps []Capacity
	free FreeFunc
	home map[string]int
}

// NewRouter builds a router over the domains' capacities and the live
// counter source.
func NewRouter(caps []Capacity, free FreeFunc) *Router {
	return &Router{caps: caps, free: free, home: map[string]int{}}
}

// Domains returns the domain count.
func (r *Router) Domains() int { return len(r.caps) }

// Route picks the job's domain: among admissible domains (Capacity.Admits
// — the job can ever place there), prefer the one with the most free GPUs
// that can seat the job right now; when every admissible domain is at its
// capacity watermark (the job would queue anywhere), spill resolves to
// the admissible domain with the most free GPUs so the job queues where
// capacity frees soonest. Ties break on the lowest domain index, keeping
// routing deterministic for a fixed counter sequence.
func (r *Router) Route(j *job.Job) (int, error) {
	bestNow, bestNowFree := -1, -1
	bestAny, bestAnyFree := -1, -1
	for d, c := range r.caps {
		if !c.Admits(j) {
			continue
		}
		freeGPUs, maxMachine, freeMachines := r.free(d)
		if freeGPUs > bestAnyFree {
			bestAny, bestAnyFree = d, freeGPUs
		}
		seatsNow := freeGPUs >= j.GPUs &&
			(!j.SingleNode || maxMachine >= j.GPUs) &&
			(!j.AntiCollocate || freeMachines >= j.GPUs)
		if seatsNow && freeGPUs > bestNowFree {
			bestNow, bestNowFree = d, freeGPUs
		}
	}
	if bestNow >= 0 {
		return bestNow, nil
	}
	if bestAny >= 0 {
		return bestAny, nil
	}
	return -1, fmt.Errorf("domains: job %s (gpus=%d single_node=%v anti_collocate=%v) is admissible in no domain", j.ID, j.GPUs, j.SingleNode, j.AntiCollocate)
}

// Bind records the job's home domain after a successful submit.
func (r *Router) Bind(jobID string, domain int) { r.home[jobID] = domain }

// Home returns the job's recorded domain.
func (r *Router) Home(jobID string) (int, bool) {
	d, ok := r.home[jobID]
	return d, ok
}

// Unbind forgets a finished or withdrawn job.
func (r *Router) Unbind(jobID string) { delete(r.home, jobID) }
