// Package domains partitions a cluster into disjoint scheduling domains
// and routes jobs between them: the multi-agent decomposition of the
// paper's single-writer core. Each domain owns a contiguous slice of the
// machine fleet and runs its own schedcore.Core, so an N-domain cluster
// schedules on N independent single-writer loops; a cheap admissible
// router on top picks a domain per submission from per-domain free-GPU
// counters (the same signal the wake-up index keys on), spilling to the
// next admissible domain when the preferred one is at its capacity
// watermark. The Eq. 1 placement math is untouched — it runs unchanged
// inside every domain.
//
// Determinism contract: a partition is a pure function of (strategy,
// machine count, machine kinds) and routing is a pure function of the
// observed counter sequence, so the same submissions in the same order
// route identically on every run. docs/sharding.md records the model.
package domains

import (
	"fmt"
	"strconv"
	"strings"

	"gputopo/internal/job"
	"gputopo/internal/topology"
)

// Spec declares how a cluster splits into scheduling domains. The zero
// value means "unsharded": one core over the whole cluster, the legacy
// configuration every recorded artifact uses.
type Spec struct {
	// Strategy selects the partition function:
	//
	//	hash   machine i joins domain i mod N (spreads every machine
	//	       kind across all domains)
	//	block  machines split into N contiguous index blocks (the
	//	       rack-prefix analog: neighbors stay together)
	//	kind   one domain per distinct machine kind, in first-seen
	//	       machine order (N is ignored and must be omitted)
	Strategy string
	// N is the domain count for hash and block. Domains left without
	// machines (N > machine count) are dropped rather than materialized
	// empty.
	N int
}

// Parse decodes the compact spec syntax used in cell keys and CLI flags:
// "hash:4", "block:2", "kind". The empty string parses to the zero
// (unsharded) spec.
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, nil
	}
	name, count, hasCount := strings.Cut(s, ":")
	sp := Spec{Strategy: name}
	if hasCount {
		n, err := strconv.Atoi(count)
		if err != nil {
			return Spec{}, fmt.Errorf("domains: spec %q: domain count %q must be an integer", s, count)
		}
		sp.N = n
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Enabled reports whether the spec asks for sharded scheduling at all.
func (s Spec) Enabled() bool { return s.Strategy != "" }

// Key renders the canonical compact form Parse accepts ("" for the zero
// spec), used in cell keys and artifacts.
func (s Spec) Key() string {
	if !s.Enabled() {
		return ""
	}
	if s.Strategy == "kind" {
		return s.Strategy
	}
	return fmt.Sprintf("%s:%d", s.Strategy, s.N)
}

// Validate checks the strategy name and count range.
func (s Spec) Validate() error {
	switch s.Strategy {
	case "":
		if s.N != 0 {
			return fmt.Errorf("domains: a domain count needs a strategy")
		}
	case "hash", "block":
		if s.N < 1 {
			return fmt.Errorf("domains: %s needs a domain count >= 1, got %d", s.Strategy, s.N)
		}
	case "kind":
		if s.N != 0 {
			return fmt.Errorf("domains: kind derives its domain count from the machine kinds; omit :%d", s.N)
		}
	default:
		return fmt.Errorf("domains: unknown strategy %q (use hash:N, block:N or kind)", s.Strategy)
	}
	return nil
}

// Partition assigns machine indices 0..machines-1 to domains. kinds
// optionally labels each machine for the kind strategy (nil means one
// kind, i.e. a single domain); hash and block ignore it. Empty domains
// are dropped, so every returned group is non-empty and the groups cover
// the machines exactly once, each in ascending index order.
func (s Spec) Partition(machines int, kinds []string) ([][]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if machines < 1 {
		return nil, fmt.Errorf("domains: partitioning needs >= 1 machine, got %d", machines)
	}
	if kinds != nil && len(kinds) != machines {
		return nil, fmt.Errorf("domains: %d machine kinds for %d machines", len(kinds), machines)
	}
	var groups [][]int
	switch s.Strategy {
	case "":
		groups = [][]int{seq(machines)}
	case "hash":
		groups = make([][]int, s.N)
		for i := 0; i < machines; i++ {
			groups[i%s.N] = append(groups[i%s.N], i)
		}
	case "block":
		groups = make([][]int, s.N)
		for i := 0; i < machines; i++ {
			// Balanced contiguous blocks: machine i joins block i*N/M, so
			// block sizes differ by at most one (larger blocks first).
			groups[i*s.N/machines] = append(groups[i*s.N/machines], i)
		}
	case "kind":
		if kinds == nil {
			groups = [][]int{seq(machines)}
			break
		}
		index := map[string]int{}
		for i, k := range kinds {
			d, ok := index[k]
			if !ok {
				d = len(groups)
				index[k] = d
				groups = append(groups, nil)
			}
			groups[d] = append(groups[d], i)
		}
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out, nil
}

func seq(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// Capacity summarizes what a domain can ever hold, for the admissibility
// check: a job no domain admits can never be placed and is rejected at
// routing time instead of deadlocking a queue.
type Capacity struct {
	// GPUs is the domain's total GPU count.
	GPUs int
	// Machines is the domain's machine count (anti-collocated jobs need
	// one machine per task).
	Machines int
	// MaxMachineGPUs is the largest per-machine GPU count (single-node
	// jobs need one machine this big).
	MaxMachineGPUs int
}

// CapacityOf summarizes a domain topology for the admissibility check.
func CapacityOf(t *topology.Topology) Capacity {
	c := Capacity{GPUs: t.NumGPUs(), Machines: t.NumMachines()}
	for m := 0; m < t.NumMachines(); m++ {
		if n := len(t.GPUsOfMachine(m)); n > c.MaxMachineGPUs {
			c.MaxMachineGPUs = n
		}
	}
	return c
}

// Admits reports whether the domain could place the job on an otherwise
// empty cluster — the invariant routing must preserve so every routed
// job eventually runs.
func (c Capacity) Admits(j *job.Job) bool {
	if j.GPUs > c.GPUs {
		return false
	}
	if j.SingleNode && j.GPUs > c.MaxMachineGPUs {
		return false
	}
	if j.AntiCollocate && j.GPUs > c.Machines {
		return false
	}
	return true
}

// RouteStatic assigns each job, in submission order, to an admissible
// domain, balancing cumulative routed GPU demand relative to domain
// capacity. This is the router the batch engines use: with the whole
// submission sequence known up front there is no live occupancy to
// consult, so "least relative load so far" is the admissible heuristic
// and the spill to the next-least-loaded admissible domain is implicit
// in the argmin. Returns assign[i] = domain of jobs[i], or an error
// naming the first job no domain admits.
func RouteStatic(caps []Capacity, jobs []*job.Job) ([]int, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("domains: routing needs at least one domain")
	}
	assign := make([]int, len(jobs))
	demand := make([]int, len(caps))
	for i, j := range jobs {
		best := -1
		var bestLoad float64
		for d, c := range caps {
			if !c.Admits(j) {
				continue
			}
			load := float64(demand[d]+j.GPUs) / float64(c.GPUs)
			if best < 0 || load < bestLoad {
				best, bestLoad = d, load
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("domains: job %s (gpus=%d single_node=%v anti_collocate=%v) is admissible in no domain", j.ID, j.GPUs, j.SingleNode, j.AntiCollocate)
		}
		assign[i] = best
		demand[best] += j.GPUs
	}
	return assign, nil
}
