package domains

import (
	"reflect"
	"testing"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

func TestParseAndKey(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
		key  string
	}{
		{"", Spec{}, ""},
		{"hash:4", Spec{Strategy: "hash", N: 4}, "hash:4"},
		{"block:2", Spec{Strategy: "block", N: 2}, "block:2"},
		{"kind", Spec{Strategy: "kind"}, "kind"},
		{" hash:1 ", Spec{Strategy: "hash", N: 1}, "hash:1"},
	} {
		sp, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if sp != tc.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
		if sp.Key() != tc.key {
			t.Fatalf("Parse(%q).Key() = %q, want %q", tc.in, sp.Key(), tc.key)
		}
	}
	for _, bad := range []string{"hash", "hash:0", "hash:-1", "hash:x", "kind:2", "rack:3", ":4"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestPartitionStrategies(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		n     int
		kinds []string
		want  [][]int
	}{
		{"hash:2", 5, nil, [][]int{{0, 2, 4}, {1, 3}}},
		{"hash:4", 2, nil, [][]int{{0}, {1}}}, // empty domains dropped
		{"block:2", 5, nil, [][]int{{0, 1, 2}, {3, 4}}},
		{"block:3", 6, nil, [][]int{{0, 1}, {2, 3}, {4, 5}}},
		{"kind", 3, nil, [][]int{{0, 1, 2}}},
		{"kind", 4, []string{"a", "b", "a", "c"}, [][]int{{0, 2}, {1}, {3}}},
		{"", 3, nil, [][]int{{0, 1, 2}}},
	} {
		sp, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		got, err := sp.Partition(tc.n, tc.kinds)
		if err != nil {
			t.Fatalf("Partition(%q, %d): %v", tc.spec, tc.n, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("Partition(%q, %d) = %v, want %v", tc.spec, tc.n, got, tc.want)
		}
	}
	if _, err := (Spec{Strategy: "hash", N: 2}).Partition(0, nil); err == nil {
		t.Fatal("partitioning zero machines accepted")
	}
	if _, err := (Spec{Strategy: "kind"}).Partition(3, []string{"a"}); err == nil {
		t.Fatal("mismatched kind labels accepted")
	}
}

func mkJob(id string, gpus int, singleNode, anti bool) *job.Job {
	j := job.New(id, perfmodel.AlexNet, 1, gpus, 0, 0)
	j.SingleNode = singleNode
	j.AntiCollocate = anti
	return j
}

func TestCapacityAdmits(t *testing.T) {
	c := Capacity{GPUs: 8, Machines: 2, MaxMachineGPUs: 4}
	for _, tc := range []struct {
		j    *job.Job
		want bool
	}{
		{mkJob("a", 4, true, false), true},
		{mkJob("b", 5, true, false), false},  // no machine that big
		{mkJob("c", 5, false, false), true},  // multi-node spans machines
		{mkJob("d", 9, false, false), false}, // exceeds the domain
		{mkJob("e", 2, false, true), true},   // one machine per task
		{mkJob("f", 3, false, true), false},  // needs 3 machines, has 2
	} {
		if got := c.Admits(tc.j); got != tc.want {
			t.Fatalf("Admits(%s) = %v, want %v", tc.j.ID, got, tc.want)
		}
	}
}

func TestCapacityOf(t *testing.T) {
	topo, err := topology.HeterogeneousCluster([]topology.MachineSpec{
		{Kind: topology.KindMinsky, Count: 1},
		{Kind: topology.KindDGX1, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := CapacityOf(topo)
	if c.Machines != 2 || c.GPUs != 12 || c.MaxMachineGPUs != 8 {
		t.Fatalf("CapacityOf(minsky+dgx1) = %+v", c)
	}
}

func TestRouteStaticBalancesAndSpills(t *testing.T) {
	caps := []Capacity{
		{GPUs: 4, Machines: 1, MaxMachineGPUs: 4},
		{GPUs: 8, Machines: 1, MaxMachineGPUs: 8},
	}
	jobs := []*job.Job{
		mkJob("j0", 2, true, false), // relative load 0.5 vs 0.25 -> domain 1
		mkJob("j1", 2, true, false), // 0.5 vs 0.5 -> tie, lowest index 0
		mkJob("j2", 6, true, false), // only domain 1 admits
		mkJob("j3", 2, true, false), // 1.0 vs 1.25 -> domain 0
	}
	assign, err := RouteStatic(caps, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 0, 1, 0}; !reflect.DeepEqual(assign, want) {
		t.Fatalf("assign = %v, want %v", assign, want)
	}
	if _, err := RouteStatic(caps, []*job.Job{mkJob("big", 9, true, false)}); err == nil {
		t.Fatal("inadmissible job routed")
	}
	if _, err := RouteStatic(nil, nil); err == nil {
		t.Fatal("routing with no domains accepted")
	}
}

func TestRouterPrefersSeatsNowAndSpills(t *testing.T) {
	caps := []Capacity{
		{GPUs: 8, Machines: 2, MaxMachineGPUs: 4},
		{GPUs: 8, Machines: 2, MaxMachineGPUs: 4},
	}
	free := map[int][3]int{}
	r := NewRouter(caps, func(d int) (int, int, int) { return free[d][0], free[d][1], free[d][2] })

	// Domain 0 has more free GPUs overall but no machine can seat a
	// 3-GPU single-node job; the router spills to domain 1.
	free[0] = [3]int{6, 2, 2}
	free[1] = [3]int{4, 4, 1}
	d, err := r.Route(mkJob("a", 3, true, false))
	if err != nil || d != 1 {
		t.Fatalf("Route(a) = %d, %v; want 1", d, err)
	}
	// An anti-collocated job needs one free machine per task: domain 0
	// has more free GPUs but only one machine with any, so only domain 1
	// seats a 2-GPU anti-collocate job now.
	free[0] = [3]int{5, 5, 1}
	free[1] = [3]int{3, 2, 2}
	d, err = r.Route(mkJob("ac", 2, false, true))
	if err != nil || d != 1 {
		t.Fatalf("Route(ac) = %d, %v; want 1", d, err)
	}
	// Both at their watermark: queue on the domain with the most free.
	free[0] = [3]int{2, 1, 2}
	free[1] = [3]int{1, 1, 1}
	d, err = r.Route(mkJob("b", 3, true, false))
	if err != nil || d != 0 {
		t.Fatalf("Route(b) = %d, %v; want 0", d, err)
	}
	// Inadmissible everywhere is an error, not a queue.
	if _, err := r.Route(mkJob("c", 5, true, false)); err == nil {
		t.Fatal("inadmissible job routed")
	}

	r.Bind("a", 1)
	if d, ok := r.Home("a"); !ok || d != 1 {
		t.Fatalf("Home(a) = %d, %v", d, ok)
	}
	r.Unbind("a")
	if _, ok := r.Home("a"); ok {
		t.Fatal("Unbind left the binding")
	}
}
