// Package schedcore is the driver-agnostic scheduling core of §4.4
// (Algorithm 1): queue management, the epoch-gated placement loop, the
// wake-up index and the four placement policies of §5, behind a small
// Core API (Submit / Release / Schedule / Stats) with a pluggable Clock
// and QueueDiscipline.
//
// The core is deliberately pure: it performs no I/O, reads time only
// through its Clock (decision-latency instrumentation excepted), and is
// a deterministic function of the submission/release sequence and the
// cluster state. That is what lets two very different drivers share it
// bit for bit — the discrete-event simulator (internal/simulator) drives
// it with a virtual ManualClock, and the real-time serving front-end
// (cmd/toposerve) drives it with a wall Clock from a single-writer event
// loop. The core itself is not safe for concurrent use; exactly one
// goroutine may call its methods.
package schedcore

import (
	"slices"
	"sort"
	"time"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/schedcore/placecache"
)

// Decision records the outcome of one placement attempt.
type Decision struct {
	Job       *job.Job
	Placement *core.Placement // nil when postponed
	// Postponed is true when the job stayed in the queue this round.
	Postponed bool
	// Reason explains a postponement ("no-capacity", "low-utility").
	Reason string
	// SLOViolated is true when the job was placed with a utility below
	// its declared minimum (greedy policies and TOPO-AWARE do this;
	// TOPO-AWARE-P by construction does not, except on an idle cluster
	// where no better placement can ever exist).
	SLOViolated bool
	// Time is the Clock reading at the Schedule call that produced the
	// decision: virtual seconds under the simulator, wall seconds since
	// server start under toposerve.
	Time float64
	// Postponements, set on placement decisions only, is the number of
	// scheduling rounds the job waited in the queue before this
	// placement. It is computed from the round counters, so it is
	// identical whether the wake-up index skipped the job's doomed
	// re-evaluations or a full queue walk replayed them.
	Postponements int
	// Evictions lists the running jobs this placement preempted, in
	// eviction order. Non-empty only under SetPreemption(true) when the
	// placement went through the preemption path; the victims are
	// re-enqueued and will appear in later placement decisions.
	Evictions []Eviction
}

// Stats accumulates scheduler bookkeeping, including the decision-time
// measurements reported in §5.5.3.
type Stats struct {
	Decisions     int
	Placements    int
	Postponements int
	SLOViolations int
	// GateSkips counts queued jobs whose placement evaluation was skipped
	// because the cluster epoch had not moved since their last failed
	// attempt (version-gated rescheduling). Each skip replays the memoized
	// postponement decision instead of re-running the placement policy.
	GateSkips int
	// WakeSkips counts queued jobs the wake-up index left parked during a
	// Schedule call: capacity-blocked jobs whose wake-up key (the smallest
	// free-GPU count that could unblock them) the cluster had not reached,
	// so no decision record was materialized for them at all. They still
	// count as Postponements — the aggregate stays identical to a full
	// queue walk — but cost O(1) in bulk instead of O(1) each.
	WakeSkips int
	// Preemptions counts placements that went through the preemption
	// path (evicting at least one victim); Evictions counts the victims
	// those placements displaced. Both stay zero unless SetPreemption
	// enabled the path.
	Preemptions  int
	Evictions    int
	DecisionTime time.Duration // total time spent deciding
	MaxDecision  time.Duration
	// Placement-cache traffic (canonical-shape memoization; see
	// internal/schedcore/placecache). A hit replays a cached mapper
	// decision through a GPU relabeling instead of re-running the DRB
	// recursion; the counters never influence decisions, only the
	// observability surfaces. All zero when the cache is disabled.
	PlaceCacheHits      int
	PlaceCacheMisses    int
	PlaceCacheEvictions int
}

// MeanDecisionTime returns the average time per placement decision.
func (s Stats) MeanDecisionTime() time.Duration {
	if s.Decisions == 0 {
		return 0
	}
	return s.DecisionTime / time.Duration(s.Decisions)
}

// failedAttempt memoizes the outcome of a failed placement attempt: the
// cluster epoch it was evaluated at and the postponement reason it
// produced. Until an Allocate or Release moves the epoch, re-evaluating
// the job is guaranteed to reproduce exactly this decision, so the
// scheduler replays it instead of re-running the placement policy.
type failedAttempt struct {
	epoch  uint64
	reason string
}

// entry is one queued job plus the bookkeeping the core keeps per job:
// the submission sequence (tie-break of the queue discipline), the round
// the job entered the queue (postponement accounting), and the count of
// explicitly emitted postponement decisions (in-order policies).
type entry struct {
	job        *job.Job
	seq        int
	enterRound int
	postponed  int
	// parked is a transient flag: examine sets it when it files the entry
	// into a wake-up bucket, so the indexed walk knows not to keep the
	// entry on the active list too. Reset on every examine.
	parked bool
}

// Core owns the waiting queue and the cluster allocation state. Build one
// with New; drive it from exactly one goroutine.
type Core struct {
	policy Policy
	state  *cluster.State
	mapper *core.Mapper
	clock  Clock
	disc   QueueDiscipline

	// queue is the single ordered wait list of the full-walk path: the
	// in-order policies (FCFS, BF, TOPO-AWARE), and TOPO-AWARE-P with the
	// wake-up index disabled. Kept sorted by the discipline (§4.4:
	// arrival order avoids starvation).
	queue []entry

	// Wake-up index (TOPO-AWARE-P with the index enabled). active holds
	// the jobs that must be re-examined whenever the cluster state moves:
	// new submissions and jobs whose last failure was a placement-policy
	// outcome (low utility, constraint infeasibility) rather than raw
	// capacity. parkedSingle/parkedMulti hold the capacity-blocked jobs,
	// bucketed by their wake-up key — the smallest free-GPU count
	// (largest-free-machine count for single-node jobs, cluster-wide
	// count for multi-node ones) that could possibly unblock them — as
	// queue-order min-heaps. A Schedule call pops a bucket only while
	// the capacity its key demands is actually there, so a release
	// reschedules O(affected) jobs instead of waking (and re-parking)
	// whole buckets or walking the whole queue.
	active       []entry
	parkedSingle map[int]*entryHeap
	parkedMulti  map[int]*entryHeap
	nParked      int
	indexOff     bool

	seq    int // next submission sequence number
	rounds int // completed Schedule calls

	// place evaluates the placement policies against the live state; the
	// preemption path evaluates victim sets with victimPlacer over the
	// pooled victimScratch clone. cache is the shared placement-decision
	// cache both placers consult (nil when disabled): keys are pure
	// functions of the state being evaluated, so live-state and
	// victim-clone evaluations can safely share entries.
	place         placer
	cache         *placecache.Cache
	victimScratch *cluster.State
	victimPlacer  placer

	// Preemption bookkeeping. running mirrors the cluster state's
	// allocations as job objects, so victim selection can rank running
	// jobs by priority without a reverse lookup. pendingRequeue stages
	// the victims evicted during the current Schedule round: they rejoin
	// the queue only after the round's dispatch finishes, so the round
	// never examines a job it just evicted. deferred holds parked
	// entries whose wake-up bucket an eviction re-opened *behind* the
	// round's progress point — they re-park untouched at the end of the
	// round (see scheduleIndexed).
	preemptOn      bool
	running        map[string]*job.Job
	pendingRequeue []*job.Job
	deferred       []entry
	evictedInRound bool

	stats Stats
	// lastFailed holds the version-gate memo per queued job ID. Entries
	// are dropped when the job places (it leaves the queue). gateOff
	// disables the gate — only the on/off equivalence tests use it.
	lastFailed map[string]failedAttempt
	gateOff    bool

	// decBuf and decPtrs are the reusable decision buffers: at scenario-2
	// queue depths every event produces many postponement decisions, and
	// allocating them fresh per Schedule call dominated the scheduler's
	// allocation profile. The returned slice is valid until the next
	// Schedule call.
	decBuf  []Decision
	decPtrs []*Decision
	// evalScratch double-buffers the active list across indexed Schedule
	// rounds. Its contents are dead once the owning call returns.
	evalScratch []entry
}

// Option configures a Core at construction.
type Option func(*Core)

// WithClock sets the core's clock (default: a ManualClock at 0).
func WithClock(clk Clock) Option { return func(c *Core) { c.clock = clk } }

// WithQueueDiscipline sets the queue ordering (default: FIFOByArrival).
func WithQueueDiscipline(d QueueDiscipline) Option { return func(c *Core) { c.disc = d } }

// New returns a core with the given policy over the state. The mapper is
// required for the topology-aware policies and used by the greedy ones
// only to score their decisions for the metrics.
func New(policy Policy, state *cluster.State, mapper *core.Mapper, opts ...Option) *Core {
	// The parked buckets materialize lazily on the first park: only
	// TOPO-AWARE-P ever uses them, and a scheduler-per-decision
	// micro-benchmark should not pay for maps it never touches.
	c := &Core{
		policy:     policy,
		state:      state,
		mapper:     mapper,
		lastFailed: map[string]failedAttempt{},
		running:    map[string]*job.Job{},
		place:      placer{policy: policy, state: state, mapper: mapper},
		cache:      placecache.New(0),
	}
	c.place.cache = c.cache
	for _, opt := range opts {
		opt(c)
	}
	if c.clock == nil {
		c.clock = zeroClock{}
	}
	if c.disc == nil {
		c.disc = FIFOByArrival()
	}
	return c
}

// SetEpochGate toggles the version-gated rescheduling (on by default).
// Gating never changes decisions — a placement attempt is a deterministic
// function of the cluster state, and the gate only skips attempts whose
// state provably has not changed — so the switch exists for the
// equivalence tests that prove exactly that, and as an escape hatch.
func (c *Core) SetEpochGate(enabled bool) { c.gateOff = !enabled }

// SetWakeIndex toggles the wake-up index (on by default; only
// TOPO-AWARE-P uses it — the in-order policies stop at the first blocked
// job, so their walks are already O(affected)). Like the epoch gate, the
// index never changes aggregate results: the equivalence tests prove
// artifacts byte-identical either way. Toggling mid-run migrates the
// queued jobs between the two representations.
func (c *Core) SetWakeIndex(enabled bool) {
	if c.indexOff == !enabled {
		return
	}
	wasIndexed := c.indexed()
	c.indexOff = !enabled
	if c.policy != TopoAwareP {
		return
	}
	if wasIndexed && !c.indexed() {
		// Flush active + parked back into the single queue.
		c.queue = append(c.queue, c.active...)
		c.active = c.active[:0]
		for g, h := range c.parkedSingle {
			c.queue = append(c.queue, h.es...)
			delete(c.parkedSingle, g)
		}
		for g, h := range c.parkedMulti {
			c.queue = append(c.queue, h.es...)
			delete(c.parkedMulti, g)
		}
		c.nParked = 0
		c.sortEntries(c.queue)
	} else if !wasIndexed && c.indexed() {
		c.active = append(c.active, c.queue...)
		c.queue = c.queue[:0]
		c.sortEntries(c.active)
	}
}

// SetPlaceCache toggles the placement-decision cache (on by default).
// Like the epoch gate and the wake-up index, the cache never changes
// decisions — a hit replays the exact mapper decision the key's state
// would recompute, through a GPU relabeling — so the switch exists for
// the equivalence tests that prove exactly that, and as an escape
// hatch. Toggling drops any cached state.
func (c *Core) SetPlaceCache(enabled bool) {
	if enabled {
		c.cache = placecache.New(0)
	} else {
		c.cache = nil
	}
	c.place.cache = c.cache
	c.victimPlacer.cache = c.cache
}

// PlaceCache returns the core's placement-decision cache (nil when
// disabled) — the sharded serving tests reach it to assert shared-cache
// behavior under -race.
func (c *Core) PlaceCache() *placecache.Cache { return c.cache }

// indexed reports whether the wake-up index drives Schedule.
func (c *Core) indexed() bool { return c.policy == TopoAwareP && !c.indexOff }

// Discipline returns the name of the queue discipline ordering the wait
// queue.
func (c *Core) Discipline() string { return c.disc.Name() }

// Policy returns the core's placement policy.
func (c *Core) Policy() Policy { return c.policy }

// State returns the cluster allocation state the core mutates.
func (c *Core) State() *cluster.State { return c.state }

// Stats returns a copy of the accumulated statistics, with the
// placement-cache counters merged in from the live cache.
func (c *Core) Stats() Stats {
	st := c.stats
	if c.cache != nil {
		cs := c.cache.Stats()
		st.PlaceCacheHits = cs.Hits
		st.PlaceCacheMisses = cs.Misses
		st.PlaceCacheEvictions = cs.Evictions
	}
	return st
}

// Now returns the core's clock reading — virtual time under a
// ManualClock driver, wall seconds under WallClock.
func (c *Core) Now() float64 { return c.clock.Now() }

// entryCmp orders entries by the queue discipline, submission order on
// ties — exactly the order a stable arrival sort of the append-ordered
// queue produces.
func (c *Core) entryCmp(a, b entry) int {
	if c.disc.Less(a.job, b.job) {
		return -1
	}
	if c.disc.Less(b.job, a.job) {
		return 1
	}
	return a.seq - b.seq
}

func (c *Core) sortEntries(es []entry) {
	slices.SortFunc(es, c.entryCmp)
}

// insertOrdered appends e, re-sorting only when e is out of order — jobs
// arriving in discipline order (the common case, driven by event loops
// and monotonic wall clocks) insert in O(1).
func (c *Core) insertOrdered(q []entry, e entry) []entry {
	needSort := len(q) > 0 && c.disc.Less(e.job, q[len(q)-1].job)
	q = append(q, e)
	if needSort {
		sort.SliceStable(q, func(i, k int) bool {
			return c.disc.Less(q[i].job, q[k].job)
		})
	}
	return q
}

// Submit enqueues a job.
func (c *Core) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	e := entry{job: j, seq: c.seq, enterRound: c.rounds}
	c.seq++
	if c.indexed() {
		// New jobs are always active: they have never been evaluated, so
		// no wake-up key is known for them yet.
		c.active = c.insertOrdered(c.active, e)
	} else {
		c.queue = c.insertOrdered(c.queue, e)
	}
	return nil
}

// QueueLen returns the number of waiting jobs.
func (c *Core) QueueLen() int {
	if c.indexed() {
		return len(c.active) + c.nParked
	}
	return len(c.queue)
}

// Queued returns the waiting jobs in queue order. Under the wake-up
// index this merges the active and parked sets (O(n log n)); it is a
// reporting accessor, not a hot path.
func (c *Core) Queued() []*job.Job {
	var es []entry
	if c.indexed() {
		es = make([]entry, 0, c.QueueLen())
		es = append(es, c.active...)
		for _, h := range c.parkedSingle {
			es = append(es, h.es...)
		}
		for _, h := range c.parkedMulti {
			es = append(es, h.es...)
		}
		c.sortEntries(es)
	} else {
		es = c.queue
	}
	out := make([]*job.Job, len(es))
	for i, e := range es {
		out[i] = e.job
	}
	return out
}

// Release frees the allocation of a finished job.
func (c *Core) Release(jobID string) error {
	if err := c.state.Release(jobID); err != nil {
		return err
	}
	delete(c.running, jobID)
	return nil
}

// Restore re-registers a recovered running job with its original
// placement — the replay path of a durable driver restoring a snapshot.
// Unlike allocating on the cluster state directly, it also registers the
// job in the core's running set, so preemption can see (and evict)
// recovered jobs exactly like freshly placed ones.
func (c *Core) Restore(j *job.Job, gpus []int, bandwidth float64) error {
	if err := c.state.Allocate(j.ID, gpus, bandwidth, j.Traits()); err != nil {
		return err
	}
	c.running[j.ID] = j
	return nil
}

// Withdraw removes a still-queued job (it never placed) from the queue
// and the wake-up index — the serving front-end's cancellation path. It
// returns false when no queued job has the ID.
func (c *Core) Withdraw(jobID string) bool {
	remove := func(es []entry) ([]entry, bool) {
		for i := range es {
			if es[i].job.ID == jobID {
				return append(es[:i], es[i+1:]...), true
			}
		}
		return es, false
	}
	removeParked := func(buckets map[int]*entryHeap) bool {
		for g, h := range buckets {
			if c.heapRemoveByID(h, jobID) {
				c.nParked--
				if h.Len() == 0 {
					delete(buckets, g)
				}
				return true
			}
		}
		return false
	}
	found := false
	if c.indexed() {
		if c.active, found = remove(c.active); !found {
			found = removeParked(c.parkedSingle) || removeParked(c.parkedMulti)
		}
	} else {
		c.queue, found = remove(c.queue)
	}
	if found {
		delete(c.lastFailed, jobID)
	}
	return found
}

// Schedule runs one iteration of Algorithm 1: it examines the waiting
// queue in discipline order, attempting to place each job, and returns
// the decisions made. Jobs that cannot be placed stay queued. The
// in-order policies (FCFS, BF, TOPO-AWARE) stop at the first job blocked
// on capacity, preserving FIFO fairness; TOPO-AWARE-P skips postponed
// jobs and continues (out-of-order execution, §4.4).
//
// Version gate: a failed attempt is memoized with the cluster epoch it
// saw. While the epoch stands still the attempt would reproduce the exact
// same postponement, so the gate replays the memoized decision instead of
// re-running the placement policy.
//
// Wake-up index (TOPO-AWARE-P): capacity-blocked jobs are parked under
// the smallest free-GPU count that could unblock them and are not even
// visited — much less given decision records — until the cluster reaches
// it, making events O(affected) instead of O(queue). Parked-and-skipped
// jobs still count as postponements in bulk, so Stats (and every
// artifact metric) is bit-identical with the index on or off; only the
// returned decision stream omits their replayed records.
//
// The returned slice and the decisions it points to are reused by the
// next Schedule call — consume them before scheduling again (the
// simulation engines do).
func (c *Core) Schedule() []*Decision {
	c.rounds++
	c.decBuf = c.decBuf[:0]
	c.evictedInRound = false
	now := c.clock.Now()
	if c.indexed() {
		c.scheduleIndexed(now)
	} else {
		c.scheduleWalk(now)
	}
	c.requeueVictims()
	// Build the pointer view only after the value buffer stopped growing:
	// append may relocate decBuf, so taking addresses mid-walk would hand
	// out dangling pointers.
	c.decPtrs = c.decPtrs[:0]
	for i := range c.decBuf {
		c.decPtrs = append(c.decPtrs, &c.decBuf[i])
	}
	return c.decPtrs
}

// waited returns the placement-decision postponement count for e: the
// number of completed scheduling rounds the job sat in the queue. For
// TOPO-AWARE-P a full walk emits exactly one postponement decision per
// queued job per round, so this equals the emitted count; the in-order
// policies skip the jobs behind a blocked head, so they report the
// explicitly emitted count instead.
func (c *Core) waited(e *entry) int {
	if c.policy == TopoAwareP {
		return c.rounds - 1 - e.enterRound
	}
	return e.postponed
}

// scheduleWalk is the full-queue path: the in-order policies, and
// TOPO-AWARE-P with the wake-up index disabled. Surviving jobs are
// compacted into the queue's own backing array: keep < idx always holds,
// so the write never clobbers an unread entry.
func (c *Core) scheduleWalk(now float64) {
	keep := 0
	blocked := false
	for idx := range c.queue {
		e := &c.queue[idx]
		if blocked {
			keep += copy(c.queue[keep:], c.queue[idx:])
			break
		}
		placed := c.examine(e, now)
		if !placed {
			c.queue[keep] = *e
			keep++
			if c.policy != TopoAwareP {
				blocked = true
			}
		}
	}
	// Clear the dropped tail so placed jobs do not linger in the backing
	// array and keep their allocations reachable.
	for i := keep; i < len(c.queue); i++ {
		c.queue[i] = entry{}
	}
	c.queue = c.queue[:keep]
}

// scheduleIndexed is the wake-up-index path (TOPO-AWARE-P only). It
// merge-walks the active list against the heads of the parked buckets in
// exact queue order, but consults a bucket only while the capacity its
// wake-up key demands is actually there — so a parked job is popped only
// when its availableResources gate is about to pass, and a release event
// costs O(active + unblocked) instead of O(queue).
//
// Decision-equivalence: capacity only shrinks during the walk (Schedule
// never releases), so a bucket whose key exceeds the current capacity is
// guaranteed to fail the O(1) gate at this and every later position of a
// full walk — its jobs would each receive a rubber-stamp no-capacity
// postponement and stay queued. The index skips materializing those
// records and accounts them in bulk, which keeps Stats (and every
// artifact metric) bit-identical to the full walk.
//
// Preemption is the one event that grows capacity mid-round, and it
// breaks the only-shrinks invariant in exactly one way: an eviction can
// re-open a bucket whose head sits *behind* the round's progress point —
// a job a full walk already rubber-stamped at its earlier queue position
// and will not revisit this round. Picking it now would diverge from the
// walk, so such heads are deferred (popped, stashed, re-parked after the
// round); heads at or past the watermark are picked normally, which is
// precisely the walk's behavior of later positions seeing post-eviction
// capacity. The watermark is the queue order of the last examined entry.
func (c *Core) scheduleIndexed(now float64) {
	queueLen := c.QueueLen()
	next := c.evalScratch[:0] // survivors that stay active, in queue order
	ai := 0
	var watermark entry
	haveMark := false
	for {
		// Candidates: the next active entry and the head of every bucket
		// the *current* capacity reaches. Re-reading the capacity per pick
		// is what makes mid-walk placements gate later picks exactly like
		// the full walk's per-position check. The map iteration order is
		// irrelevant: the queue-order minimum wins regardless of the order
		// the candidates are inspected in.
		curMax := c.state.MaxFreeGPUs()
		curTotal := c.state.FreeGPUCount()
		var best *entry
		var bestHeap *entryHeap
		var bestKey int
		var bestSingle bool
		if ai < len(c.active) {
			best = &c.active[ai]
		}
		consider := func(h *entryHeap, key int, single bool) {
			if head := h.peek(); best == nil || c.entryCmp(*head, *best) < 0 {
				best, bestHeap, bestKey, bestSingle = head, h, key, single
			}
		}
		for g, h := range c.parkedSingle {
			if g <= curMax {
				consider(h, g, true)
			}
		}
		for g, h := range c.parkedMulti {
			if g <= curTotal {
				consider(h, g, false)
			}
		}
		if best == nil {
			break
		}
		var e entry
		if bestHeap != nil {
			e = c.heapPop(bestHeap)
			c.nParked--
			if bestHeap.Len() == 0 {
				if bestSingle {
					delete(c.parkedSingle, bestKey)
				} else {
					delete(c.parkedMulti, bestKey)
				}
			}
			if c.evictedInRound && haveMark && c.entryCmp(e, watermark) < 0 {
				// This bucket only became eligible through an eviction, and
				// its head's queue position was already passed: the full
				// walk gave the job its no-capacity record back then and
				// will not revisit it this round. Defer it — it re-parks
				// untouched once the round ends.
				c.deferred = append(c.deferred, e)
				continue
			}
		} else {
			e = c.active[ai]
			ai++
		}
		watermark, haveMark = e, true
		if !c.examine(&e, now) {
			// A popped bucket entry passed its capacity gate by
			// construction, so examine either placed it or moved it to the
			// memo'd active set; an active entry may also have just parked
			// itself (examine pushed it into a — now ineligible — bucket).
			if !e.parked {
				next = append(next, e)
			}
		}
	}
	// Zero the recycled buffer before swapping so placed jobs do not
	// linger reachable through its backing array (the walk path clears
	// its dropped tail for the same reason).
	old := c.active
	clear(old)
	c.active, c.evalScratch = next, old[:0]

	// Entries deferred by the watermark check re-park under their
	// original wake-up keys, exactly as the full walk leaves them queued.
	for i := range c.deferred {
		c.park(&c.deferred[i])
		c.deferred[i] = entry{}
	}
	c.deferred = c.deferred[:0]

	// Bulk accounting for the jobs the index never visited: a full walk
	// would have given each one a no-capacity (or replayed) postponement
	// decision this round. Every visited job appended exactly one
	// decision, so the skip count falls out of the buffer length.
	// Deferred entries land here too — the walk's record for them was
	// issued before the eviction, at their original queue position.
	skipped := queueLen - len(c.decBuf)
	c.stats.Postponements += skipped
	c.stats.WakeSkips += skipped
}

// examine runs the per-job step of Algorithm 1 on e: the O(1)
// availableResources gate, the epoch-gate memo, and the placement policy.
// It appends the job's decision to decBuf and updates stats. A job that
// does not place stays with its caller — the walk path compacts the
// queue, the indexed path keeps non-parked survivors active — except
// that under the index a capacity-blocked job is filed straight into its
// wake-up bucket here (and e.parked tells the caller so). Returns true
// when the job placed.
func (c *Core) examine(e *entry, now float64) bool {
	j := e.job
	e.parked = false
	// availableResources(P) gate: skip the placement evaluation entirely
	// when no machine (or, for multi-node jobs, the whole cluster) can
	// hold the request. O(1) thanks to the cluster state's incremental
	// free counters.
	single := j.SingleNode
	enough := c.state.MaxFreeGPUs() >= j.GPUs
	if !single {
		enough = c.state.FreeGPUCount() >= j.GPUs
	}
	if !enough {
		if c.preemptEligible(j) && c.preemptAndPlace(e, now) {
			return true
		}
		c.stats.Postponements++
		e.postponed++
		c.decBuf = append(c.decBuf, Decision{Job: j, Postponed: true, Reason: "no-capacity", Time: now})
		if c.indexed() && !c.preemptEligible(j) {
			// Park under the wake-up key: the free-GPU count that must be
			// reached before the gate above can pass again. Preemption-
			// eligible jobs never park — their chance to place changes
			// whenever a lower-priority job starts running, an event the
			// capacity-keyed index cannot wake them for, so they stay
			// active and are re-examined every round like a full walk
			// would.
			c.park(e)
		}
		return false
	}

	if memo, ok := c.lastFailed[j.ID]; !c.gateOff && ok && memo.epoch == c.state.Epoch() {
		// Version gate hit: nothing changed since this job last failed
		// to place, so replay the memoized postponement verbatim.
		c.stats.GateSkips++
		c.stats.Postponements++
		e.postponed++
		c.decBuf = append(c.decBuf, Decision{Job: j, Postponed: true, Reason: memo.reason, Time: now})
		return false
	}

	start := time.Now() //lint:ignore wallclock decision-latency instrumentation, the documented exception: elapsed feeds Stats only, never scheduling decisions
	d := c.tryPlace(j)
	elapsed := time.Since(start) //lint:ignore wallclock decision-latency instrumentation, the documented exception
	c.stats.Decisions++
	c.stats.DecisionTime += elapsed
	if elapsed > c.stats.MaxDecision {
		c.stats.MaxDecision = elapsed
	}
	d.Time = now
	if d.Postponed {
		// The gate passed but placement still failed (fragmentation,
		// bandwidth, DRB infeasibility): eviction can fix those too.
		// Attempting it before the memo is what keeps the version gate
		// sound under preemption — a memo now means "placement AND
		// preemption both failed at this epoch", and both are
		// deterministic functions of the cluster state.
		if d.Reason == "no-capacity" && c.preemptEligible(j) && c.preemptAndPlace(e, now) {
			return true
		}
		c.lastFailed[j.ID] = failedAttempt{epoch: c.state.Epoch(), reason: d.Reason}
		c.stats.Postponements++
		e.postponed++
		c.decBuf = append(c.decBuf, d)
		return false
	}
	delete(c.lastFailed, j.ID)
	c.stats.Placements++
	if d.SLOViolated {
		c.stats.SLOViolations++
	}
	d.Postponements = c.waited(e)
	c.decBuf = append(c.decBuf, d)
	return true
}

// park files a capacity-blocked entry into its wake-up bucket: the
// free-GPU count that must be reached before its availableResources gate
// can pass again. Buckets materialize lazily — only TOPO-AWARE-P ever
// pays for them.
func (c *Core) park(e *entry) {
	e.parked = true
	buckets := &c.parkedSingle
	if !e.job.SingleNode {
		buckets = &c.parkedMulti
	}
	if *buckets == nil {
		*buckets = map[int]*entryHeap{}
	}
	h := (*buckets)[e.job.GPUs]
	if h == nil {
		h = &entryHeap{}
		(*buckets)[e.job.GPUs] = h
	}
	c.heapPush(h, *e)
	c.nParked++
}

// tryPlace attempts to place one job according to the policy, committing
// the allocation on success. It returns by value so Schedule can append
// into its reusable decision buffer.
func (c *Core) tryPlace(j *job.Job) Decision {
	placement, reason := c.place.attempt(j)
	if placement == nil {
		return Decision{Job: j, Postponed: true, Reason: reason}
	}
	if err := c.state.Allocate(j.ID, placement.GPUs, placement.BusDemand, j.Traits()); err != nil {
		return Decision{Job: j, Postponed: true, Reason: "no-capacity"}
	}
	c.running[j.ID] = j
	return Decision{
		Job:         j,
		Placement:   placement,
		SLOViolated: placement.Utility < j.MinUtility,
	}
}

// minGPUsPerHost is the minimum free GPUs a host must offer to be a
// candidate: all of them for single-node jobs, one otherwise.
func minGPUsPerHost(j *job.Job) int {
	if j.SingleNode {
		return j.GPUs
	}
	return 1
}

// estimateDemand conservatively estimates the job's shared-bus demand
// using its best-case allocation on the empty topology.
func estimateDemand(j *job.Job, st *cluster.State) float64 {
	topo := st.Topology()
	g := j.GPUs
	if n := topo.NumGPUs(); g > n {
		g = n
	}
	return perfmodel.BusDemand(j.Model, j.BatchSize, topo, topo.BestAllocation(g))
}
