package schedcore

import (
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/topology"
)

func newSched(t *testing.T, policy Policy, topo *topology.Topology) *Core {
	t.Helper()
	return newSchedWith(t, policy, topo)
}

func newSchedWith(t *testing.T, policy Policy, topo *topology.Topology, opts ...Option) *Core {
	t.Helper()
	st := cluster.NewState(topo)
	m, err := core.NewMapper(profile.Generate(topo, topo.NumGPUs()), core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	return New(policy, st, m, opts...)
}

func mkJob(id string, batch, gpus int, minU, arrival float64) *job.Job {
	return job.New(id, perfmodel.AlexNet, batch, gpus, minU, arrival)
}

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range AllPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must render")
	}
	if len(AllPolicies()) != 4 {
		t.Fatal("expected four policies")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSched(t, FCFS, topology.Power8Minsky())
	if err := s.Submit(mkJob("", 1, 1, 0.3, 0)); err == nil {
		t.Fatal("invalid job accepted")
	}
	if err := s.Submit(mkJob("a", 1, 1, 0.3, 5)); err != nil {
		t.Fatal(err)
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queue = %d", s.QueueLen())
	}
}

func TestQueueSortedByArrival(t *testing.T) {
	s := newSched(t, FCFS, topology.Power8Minsky())
	_ = s.Submit(mkJob("late", 1, 1, 0.3, 10))
	_ = s.Submit(mkJob("early", 1, 1, 0.3, 1))
	q := s.Queued()
	if q[0].ID != "early" || q[1].ID != "late" {
		t.Fatalf("queue order: %v, %v", q[0].ID, q[1].ID)
	}
}

func TestFCFSPlacesFirstFreeGPUs(t *testing.T) {
	s := newSched(t, FCFS, topology.Power8Minsky())
	_ = s.Submit(mkJob("a", 1, 2, 0.0, 0))
	ds := s.Schedule()
	if len(ds) != 1 || ds[0].Postponed {
		t.Fatalf("decisions = %+v", ds)
	}
	got := ds[0].Placement.GPUs
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("FCFS GPUs = %v, want [0 1]", got)
	}
}

func TestBestFitPrefersUsedSocket(t *testing.T) {
	s := newSched(t, BestFit, topology.Power8Minsky())
	// Occupy GPU0 (socket 0).
	if err := s.State().Allocate("occ", []int{0}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("a", 1, 1, 0.0, 0))
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatal("postponed unexpectedly")
	}
	// Bin packing: the most-used socket (socket 0) is filled first.
	if got := ds[0].Placement.GPUs[0]; got != 1 {
		t.Fatalf("BF chose GPU %d, want 1 (socket 0)", got)
	}
}

func TestBestFitTightestMachineFirst(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	s := newSched(t, BestFit, topo)
	// Machine 0 has 3 free GPUs, machine 1 has 4.
	if err := s.State().Allocate("occ", []int{0}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("a", 1, 2, 0.0, 0))
	ds := s.Schedule()
	ms := s.State().MachinesOf(ds[0].Placement.GPUs)
	if len(ms) != 1 || ms[0] != 0 {
		t.Fatalf("BF machines = %v, want tightest machine 0", ms)
	}
}

func TestTopoAwarePacksPair(t *testing.T) {
	s := newSched(t, TopoAware, topology.Power8Minsky())
	_ = s.Submit(mkJob("a", 1, 2, 0.5, 0))
	ds := s.Schedule()
	p := ds[0].Placement
	if !s.State().Topology().SameSocket(p.GPUs[0], p.GPUs[1]) {
		t.Fatalf("TOPO-AWARE placement %v not packed", p.GPUs)
	}
	if !p.P2P {
		t.Fatal("expected P2P placement")
	}
}

func TestInOrderPoliciesBlockOnHead(t *testing.T) {
	for _, pol := range []Policy{FCFS, BestFit, TopoAware} {
		s := newSched(t, pol, topology.Power8Minsky())
		// Take 3 GPUs so only one remains.
		if err := s.State().Allocate("occ", []int{0, 1, 2}, 0, perfmodel.Traits{}); err != nil {
			t.Fatal(err)
		}
		_ = s.Submit(mkJob("big", 1, 2, 0.0, 0))   // cannot fit
		_ = s.Submit(mkJob("small", 1, 1, 0.0, 1)) // could fit, but is behind
		s.Schedule()
		if got := s.State().Owner(3); got != "" {
			t.Fatalf("[%v] head-of-line blocking violated: GPU3 given to %q", pol, got)
		}
		if s.QueueLen() != 2 {
			t.Fatalf("[%v] queue = %d, want 2", pol, s.QueueLen())
		}
	}
}

func TestTopoAwarePSkipsBlockedHead(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	if err := s.State().Allocate("occ", []int{0, 1, 2}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("big", 1, 2, 0.0, 0))
	_ = s.Submit(mkJob("small", 1, 1, 0.0, 1))
	s.Schedule()
	// Out-of-order execution: the single-GPU job runs past the blocked head.
	if got := s.State().Owner(3); got != "small" {
		t.Fatalf("out-of-order execution failed: GPU3 owned by %q", got)
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1 (big still waiting)", s.QueueLen())
	}
}

func TestTopoAwarePPostponesLowUtility(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	// Occupy one GPU per socket so only a cross-socket pair remains.
	if err := s.State().Allocate("occ", []int{1, 3}, 0,
		perfmodel.Traits{Model: perfmodel.GoogLeNet, Class: 3, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	// A communication-hungry 2-GPU job with the Table 1 threshold 0.5:
	// the only placement is {0, 2} (cross-socket), scoring below 0.5.
	_ = s.Submit(mkJob("comm", 4, 2, 0.5, 0))
	ds := s.Schedule()
	if !ds[0].Postponed || ds[0].Reason != "low-utility" {
		t.Fatalf("decision = %+v, want low-utility postponement", ds[0])
	}
	if s.QueueLen() != 1 {
		t.Fatal("job left the queue")
	}
	if s.Stats().Postponements == 0 {
		t.Fatal("postponement not counted")
	}
}

func TestTopoAwarePlacesLowUtilityAnyway(t *testing.T) {
	s := newSched(t, TopoAware, topology.Power8Minsky())
	if err := s.State().Allocate("occ", []int{1, 3}, 0,
		perfmodel.Traits{Model: perfmodel.GoogLeNet, Class: 3, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("comm", 4, 2, 0.5, 0))
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatal("TOPO-AWARE must place when resources are available")
	}
	if !ds[0].SLOViolated {
		t.Fatal("placement below the job's minimum utility must be flagged")
	}
	if s.Stats().SLOViolations != 1 {
		t.Fatalf("violations = %d", s.Stats().SLOViolations)
	}
}

func TestTopoAwarePIdleClusterEscape(t *testing.T) {
	// On an idle cluster no future placement can be better, so even a
	// below-threshold job is placed best-effort (deadlock avoidance).
	topo := topology.Power8Minsky()
	s := newSched(t, TopoAwareP, topo)
	j := mkJob("impossible", 1, 2, 0.999, 0)
	_ = s.Submit(j)
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatal("idle-cluster escape did not fire")
	}
}

func TestReleaseFreesResources(t *testing.T) {
	s := newSched(t, FCFS, topology.Power8Minsky())
	_ = s.Submit(mkJob("a", 1, 4, 0.0, 0))
	s.Schedule()
	if s.State().FreeGPUCount() != 0 {
		t.Fatal("allocation missing")
	}
	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	if s.State().FreeGPUCount() != 4 {
		t.Fatal("release did not free")
	}
	if err := s.Release("a"); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestScheduleStats(t *testing.T) {
	s := newSched(t, FCFS, topology.Power8Minsky())
	_ = s.Submit(mkJob("a", 1, 2, 0.0, 0))
	_ = s.Submit(mkJob("b", 1, 2, 0.0, 1))
	_ = s.Submit(mkJob("c", 1, 2, 0.0, 2)) // cannot fit after a and b
	s.Schedule()
	st := s.Stats()
	if st.Placements != 2 {
		t.Fatalf("placements = %d", st.Placements)
	}
	if st.Postponements != 1 {
		t.Fatalf("postponements = %d", st.Postponements)
	}
	if st.MeanDecisionTime() <= 0 {
		t.Fatal("decision time not measured")
	}
	// Stats on an empty scheduler divide safely.
	var zero Stats
	if zero.MeanDecisionTime() != 0 {
		t.Fatal("zero stats mean decision time should be 0")
	}
}

func TestMultiNodeJobSpansMachines(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	s := newSched(t, TopoAware, topo)
	// Fill all of machine 0 and half of machine 1: a 6-GPU multi-node
	// job must span machines.
	j := mkJob("wide", 128, 6, 0.0, 0)
	j.SingleNode = false
	_ = s.Submit(j)
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatalf("multi-node placement failed: %+v", ds[0])
	}
	ms := s.State().MachinesOf(ds[0].Placement.GPUs)
	if len(ms) != 2 {
		t.Fatalf("6-GPU job spans %v machines, want 2", ms)
	}
}

func TestSingleNodeJobNeverSpans(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	for _, pol := range AllPolicies() {
		s := newSched(t, pol, topo)
		// 2 free on machine 0, 3 free on machine 1: a 4-GPU single-node
		// job cannot be placed even though 5 GPUs are free in total.
		if err := s.State().Allocate("o1", []int{0, 1}, 0, perfmodel.Traits{}); err != nil {
			t.Fatal(err)
		}
		if err := s.State().Allocate("o2", []int{4}, 0, perfmodel.Traits{}); err != nil {
			t.Fatal(err)
		}
		_ = s.Submit(mkJob("sn", 1, 4, 0.0, 0))
		ds := s.Schedule()
		// The capacity gate skips the job without a decision record, or
		// the policy records a postponement; either way nothing is placed.
		if len(ds) > 0 && !ds[0].Postponed {
			t.Fatalf("[%v] single-node constraint violated: %v", pol, ds[0].Placement.GPUs)
		}
		if s.QueueLen() != 1 {
			t.Fatalf("[%v] queue = %d, want 1", pol, s.QueueLen())
		}
	}
}

func TestCapacityGateSkipsEvaluation(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	if err := s.State().Allocate("occ", []int{0, 1, 2, 3}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("a", 1, 1, 0.0, 0))
	ds := s.Schedule()
	// Gate fires before tryPlace: a no-capacity postponement is reported
	// but no placement evaluation is timed or counted.
	if len(ds) != 1 || !ds[0].Postponed || ds[0].Reason != "no-capacity" {
		t.Fatalf("decisions = %+v, want one no-capacity postponement", ds)
	}
	if s.QueueLen() != 1 {
		t.Fatal("job dropped by the capacity gate")
	}
	if s.Stats().Decisions != 0 {
		t.Fatal("gated job counted as a timed decision")
	}
	if s.Stats().Postponements != 1 {
		t.Fatal("gated job not counted as postponed")
	}
}
