package schedcore

import "gputopo/internal/job"

// QueueDiscipline orders the waiting queue. Less reports whether a must
// be served strictly before b; ties (neither Less(a,b) nor Less(b,a))
// keep submission order, so a discipline only has to express priority,
// not a total order. The discipline must be consistent for the lifetime
// of the Core and must not mutate the jobs it compares.
type QueueDiscipline interface {
	// Name labels the discipline in state dumps and logs.
	Name() string
	Less(a, b *job.Job) bool
}

// fifoByArrival is the paper's §4.4 discipline: oldest arrival first,
// submission order on ties. It is the default and the only discipline the
// simulation artifacts are recorded under.
type fifoByArrival struct{}

// FIFOByArrival returns the default arrival-time FIFO discipline.
func FIFOByArrival() QueueDiscipline { return fifoByArrival{} }

func (fifoByArrival) Name() string { return "fifo-arrival" }

func (fifoByArrival) Less(a, b *job.Job) bool { return a.Arrival < b.Arrival }
