package schedcore

import (
	"fmt"

	"gputopo/internal/job"
)

// QueueDiscipline orders the waiting queue. Less reports whether a must
// be served strictly before b; ties (neither Less(a,b) nor Less(b,a))
// keep submission order, so a discipline only has to express priority,
// not a total order. The discipline must be consistent for the lifetime
// of the Core and must not mutate the jobs it compares.
type QueueDiscipline interface {
	// Name labels the discipline in state dumps and logs.
	Name() string
	Less(a, b *job.Job) bool
}

// fifoByArrival is the paper's §4.4 discipline: oldest arrival first,
// submission order on ties. It is the default and the only discipline the
// simulation artifacts are recorded under.
type fifoByArrival struct{}

// FIFOByArrival returns the default arrival-time FIFO discipline.
func FIFOByArrival() QueueDiscipline { return fifoByArrival{} }

func (fifoByArrival) Name() string { return "fifo-arrival" }

func (fifoByArrival) Less(a, b *job.Job) bool { return a.Arrival < b.Arrival }

// priorityThenArrival serves strictly higher Priority first and falls
// back to arrival order inside a priority class — the discipline of the
// co-located-workload scenarios, where latency-sensitive jobs overtake
// throughput training but each class stays FIFO-fair internally.
type priorityThenArrival struct{}

// PriorityThenArrival returns the priority-first queue discipline.
func PriorityThenArrival() QueueDiscipline { return priorityThenArrival{} }

func (priorityThenArrival) Name() string { return "priority-arrival" }

func (priorityThenArrival) Less(a, b *job.Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Arrival < b.Arrival
}

// ParseDiscipline maps a discipline name to its implementation. The
// empty string selects the default (arrival FIFO), so configs can leave
// the field unset.
func ParseDiscipline(name string) (QueueDiscipline, error) {
	switch name {
	case "", "fifo", "fifo-arrival":
		return FIFOByArrival(), nil
	case "priority", "priority-arrival":
		return PriorityThenArrival(), nil
	}
	return nil, fmt.Errorf("sched: unknown queue discipline %q (want fifo or priority)", name)
}
