package schedcore

import (
	"testing"

	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

// heteroDegraded builds minsky:1+minsky-1g:1 — machine 0 healthy
// (GPUs 0..3), machine 1 degraded (GPUs 4..6).
func heteroDegraded(t *testing.T) *topology.Topology {
	t.Helper()
	specs, err := topology.ParseMix("minsky:1+minsky-1g:1")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.HeterogeneousCluster(specs)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestWakeIndexPartialReleaseOnDegradedMachine covers the asymmetric
// wake-up: a 3-GPU job parked under key 3 must stay skipped while the
// largest free block is smaller, and wake when a partial release on the
// degraded 3-GPU machine reaches exactly its key.
func TestWakeIndexPartialReleaseOnDegradedMachine(t *testing.T) {
	topo := heteroDegraded(t)
	s := newSched(t, TopoAwareP, topo)
	// Fill the healthy machine entirely and 2 of the degraded machine's 3
	// GPUs, leaving max-free = 1.
	if err := s.State().Allocate("full", []int{0, 1, 2, 3}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	if err := s.State().Allocate("part", []int{4, 5}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(mkJob("three", 1, 3, 0.0, 0)); err != nil {
		t.Fatal(err)
	}
	ds := s.Schedule()
	if len(ds) != 1 || !ds[0].Postponed || ds[0].Reason != "no-capacity" {
		t.Fatalf("want one no-capacity postponement, got %+v", ds)
	}
	// Parked now: further rounds skip it wholesale — no decision records,
	// but the postponement still counts.
	base := s.Stats()
	for i := 0; i < 3; i++ {
		if ds := s.Schedule(); len(ds) != 0 {
			t.Fatalf("round %d: parked job produced decisions %+v", i, ds)
		}
	}
	st := s.Stats()
	if st.WakeSkips != base.WakeSkips+3 {
		t.Fatalf("WakeSkips = %d, want %d", st.WakeSkips, base.WakeSkips+3)
	}
	if st.Postponements != base.Postponements+3 {
		t.Fatalf("Postponements = %d, want %d (skips must keep counting)", st.Postponements, base.Postponements+3)
	}
	// The partial release frees 2 GPUs on the degraded machine: max-free
	// reaches 3 — exactly the wake-up key — and the job must place there.
	if err := s.Release("part"); err != nil {
		t.Fatal(err)
	}
	ds = s.Schedule()
	if len(ds) != 1 || ds[0].Postponed {
		t.Fatalf("after release: want placement, got %+v", ds)
	}
	ms := s.State().MachinesOf(ds[0].Placement.GPUs)
	if len(ms) != 1 || ms[0] != 1 {
		t.Fatalf("placed on machines %v, want the degraded machine [1]", ms)
	}
	if got := ds[0].Postponements; got != 4 {
		t.Fatalf("placement carries %d postponements, want 4 (1 decision + 3 skips)", got)
	}
	if s.QueueLen() != 0 {
		t.Fatalf("queue = %d", s.QueueLen())
	}
}

// TestWakeIndexSharedKey covers two jobs parked under one wake-up key:
// the first (by queue order) is popped and takes the freed GPUs; the
// second is never even visited — its bucket turned ineligible the moment
// the capacity was consumed — and is accounted as a bulk postponement,
// exactly the aggregate a full walk produces.
func TestWakeIndexSharedKey(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	if err := s.State().Allocate("x", []int{0, 1}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	if err := s.State().Allocate("y", []int{2, 3}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("a", 1, 2, 0.0, 0))
	_ = s.Submit(mkJob("b", 1, 2, 0.0, 1))
	ds := s.Schedule()
	if len(ds) != 2 || !ds[0].Postponed || !ds[1].Postponed {
		t.Fatalf("want two postponements, got %+v", ds)
	}
	// Both parked under key 2; rounds skip both in bulk.
	if ds := s.Schedule(); len(ds) != 0 {
		t.Fatalf("parked jobs produced decisions %+v", ds)
	}
	if got := s.Stats().WakeSkips; got != 2 {
		t.Fatalf("WakeSkips = %d, want 2", got)
	}
	if err := s.Release("x"); err != nil {
		t.Fatal(err)
	}
	preSkips := s.Stats().WakeSkips
	prePost := s.Stats().Postponements
	ds = s.Schedule()
	if len(ds) != 1 || ds[0].Job.ID != "a" || ds[0].Postponed {
		t.Fatalf("want exactly a's placement, got %+v", ds)
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1 (b still parked)", s.QueueLen())
	}
	// b was skipped in bulk: one more wake skip, and the aggregate
	// postponement count still advances as if a full walk had stamped it.
	if got := s.Stats().WakeSkips; got != preSkips+1 {
		t.Fatalf("WakeSkips = %d, want %d", got, preSkips+1)
	}
	if got := s.Stats().Postponements; got != prePost+1 {
		t.Fatalf("Postponements = %d, want %d", got, prePost+1)
	}
	if err := s.Release("y"); err != nil {
		t.Fatal(err)
	}
	ds = s.Schedule()
	if len(ds) != 1 || ds[0].Postponed || ds[0].Job.ID != "b" {
		t.Fatalf("want b placed after second release, got %+v", ds)
	}
}

// TestWakeIndexWithEpochGateDisabled pins the interaction of the two
// mechanisms: with the gate off, active jobs (low-utility postponed) are
// re-evaluated every round — the index must not memoize them — while
// capacity-parked jobs are still legitimately skipped, because parking
// derives from the O(1) capacity check, not from the epoch memo.
func TestWakeIndexWithEpochGateDisabled(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	s.SetEpochGate(false)
	// blocker keeps the cluster non-idle; picky postpones on low utility
	// and stays active; hungry is capacity-parked (needs 4, only 2 free).
	if err := s.Submit(mkJob("blocker", 1, 1, 0.0, 0)); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	_ = s.Submit(mkJob("picky", 1, 2, 0.99, 1))
	_ = s.Submit(mkJob("hungry", 1, 4, 0.0, 2))
	ds := s.Schedule()
	if len(ds) != 2 || !ds[0].Postponed || !ds[1].Postponed {
		t.Fatalf("want two postponements, got %+v", ds)
	}
	base := s.Stats()
	for i := 0; i < 3; i++ {
		ds := s.Schedule()
		// Only the active job is re-examined; the parked one is skipped.
		if len(ds) != 1 || ds[0].Job.ID != "picky" || ds[0].Reason != "low-utility" {
			t.Fatalf("round %d: decisions %+v", i, ds)
		}
	}
	st := s.Stats()
	if st.Decisions != base.Decisions+3 {
		t.Fatalf("gate off must re-decide the active job each round: %d -> %d", base.Decisions, st.Decisions)
	}
	if st.GateSkips != 0 {
		t.Fatalf("disabled gate recorded %d skips", st.GateSkips)
	}
	if st.WakeSkips != base.WakeSkips+3 {
		t.Fatalf("WakeSkips = %d, want %d", st.WakeSkips, base.WakeSkips+3)
	}
}

// TestSetWakeIndexMigratesQueue toggles the index off mid-run: parked
// and active jobs must merge back into one discipline-ordered queue and
// the full walk must emit decisions for all of them again.
func TestSetWakeIndexMigratesQueue(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	if err := s.State().Allocate("occ", []int{0, 1, 2, 3}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("a", 1, 2, 0.0, 0))
	_ = s.Submit(mkJob("b", 1, 1, 0.0, 1))
	s.Schedule() // both parked
	if ds := s.Schedule(); len(ds) != 0 {
		t.Fatalf("parked jobs produced decisions %+v", ds)
	}
	s.SetWakeIndex(false)
	q := s.Queued()
	if len(q) != 2 || q[0].ID != "a" || q[1].ID != "b" {
		t.Fatalf("queue after toggle = %v", q)
	}
	ds := s.Schedule()
	if len(ds) != 2 {
		t.Fatalf("full walk must decide every queued job, got %+v", ds)
	}
	// Toggling back on restores the indexed behavior (jobs re-park on the
	// next round's capacity checks).
	s.SetWakeIndex(true)
	s.Schedule() // evaluates (all active after migration), re-parks
	if ds := s.Schedule(); len(ds) != 0 {
		t.Fatalf("re-enabled index still walking: %+v", ds)
	}
	if s.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2", s.QueueLen())
	}
}

// TestWithdrawRemovesQueuedJob covers the serving front-end's cancel
// path across the queue representations.
func TestWithdrawRemovesQueuedJob(t *testing.T) {
	s := newSched(t, TopoAwareP, topology.Power8Minsky())
	if err := s.State().Allocate("occ", []int{0, 1, 2, 3}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("parkme", 1, 2, 0.0, 0))
	_ = s.Submit(mkJob("active", 1, 1, 0.0, 1))
	s.Schedule() // both parked (no capacity at all)
	if !s.Withdraw("parkme") {
		t.Fatal("parked job not withdrawn")
	}
	if s.Withdraw("parkme") {
		t.Fatal("double withdraw succeeded")
	}
	if s.Withdraw("nosuch") {
		t.Fatal("unknown job withdrawn")
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1", s.QueueLen())
	}
	if err := s.Release("occ"); err != nil {
		t.Fatal(err)
	}
	ds := s.Schedule()
	if len(ds) != 1 || ds[0].Job.ID != "active" || ds[0].Postponed {
		t.Fatalf("want only the surviving job placed, got %+v", ds)
	}
	// Withdraw on the full-walk representation too.
	w := newSched(t, FCFS, topology.Power8Minsky())
	if err := w.State().Allocate("occ", []int{0, 1, 2, 3}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = w.Submit(mkJob("q", 1, 1, 0.0, 0))
	if !w.Withdraw("q") || w.QueueLen() != 0 {
		t.Fatal("walk-mode withdraw failed")
	}
}

// TestDecisionTimestampsFollowClock pins the Clock plumbing: decisions
// carry the driver's clock reading at Schedule time.
func TestDecisionTimestampsFollowClock(t *testing.T) {
	topo := topology.Power8Minsky()
	clk := NewManualClock(0)
	s := newSchedWith(t, TopoAwareP, topo, WithClock(clk))
	_ = s.Submit(mkJob("a", 1, 1, 0.0, 0))
	clk.Set(12.5)
	ds := s.Schedule()
	if len(ds) != 1 || ds[0].Time != 12.5 {
		t.Fatalf("decision time = %+v, want 12.5", ds)
	}
	if s.Now() != 12.5 {
		t.Fatalf("Now() = %g", s.Now())
	}
	wc := WallClock()
	a := wc.Now()
	b := wc.Now()
	if a < 0 || b < a {
		t.Fatalf("wall clock not monotone from start: %g, %g", a, b)
	}
}
