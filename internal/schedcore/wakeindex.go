package schedcore

// entryHeap is a queue-order min-heap of parked entries: the head is the
// entry the discipline would serve first. One heap backs each wake-up
// bucket, so the indexed Schedule can interleave parked jobs with the
// active list in exact queue order while popping only the jobs whose
// capacity gate can actually pass — everything deeper in the heap is
// provably blocked for the rest of the round and is never touched.
type entryHeap struct {
	es []entry
}

func (h *entryHeap) Len() int { return len(h.es) }

func (h *entryHeap) peek() *entry { return &h.es[0] }

// push inserts e under the core's queue order.
func (c *Core) heapPush(h *entryHeap, e entry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.entryCmp(h.es[i], h.es[parent]) >= 0 {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

// pop removes and returns the queue-order minimum.
func (c *Core) heapPop(h *entryHeap) entry {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es[last] = entry{}
	h.es = h.es[:last]
	c.siftDown(h, 0)
	return top
}

// removeByID deletes the entry with the job ID, re-heapifying. O(n) —
// only Withdraw (the serving cancel path) uses it.
func (c *Core) heapRemoveByID(h *entryHeap, jobID string) bool {
	for i := range h.es {
		if h.es[i].job.ID == jobID {
			h.es[i] = h.es[len(h.es)-1]
			h.es[len(h.es)-1] = entry{}
			h.es = h.es[:len(h.es)-1]
			// Sift-down from every interior node restores the heap in
			// O(n) without tracking which direction i must move.
			for j := len(h.es)/2 - 1; j >= 0; j-- {
				c.siftDown(h, j)
			}
			return true
		}
	}
	return false
}

func (c *Core) siftDown(h *entryHeap, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.es) && c.entryCmp(h.es[l], h.es[smallest]) < 0 {
			smallest = l
		}
		if r < len(h.es) && c.entryCmp(h.es[r], h.es[smallest]) < 0 {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
}
