package schedcore

import "time"

// Clock abstracts the scheduler's notion of "now" (seconds since an
// arbitrary epoch) so one Core serves two very different drivers: the
// discrete-event simulator advances a ManualClock to its virtual event
// time, while the real-time serving front-end reads the wall clock. The
// core itself never calls time.Now for timestamps — decision latency
// instrumentation (Stats.DecisionTime) is the one deliberate exception,
// because it measures real CPU cost regardless of the driver.
type Clock interface {
	// Now returns the current time in seconds since the clock's epoch.
	Now() float64
}

// ManualClock is a Clock advanced explicitly by its driver — the
// simulator sets it to each event's virtual time. The zero value reads 0.
// It is not safe for concurrent use; the single-writer rule that guards
// the Core covers its clock too.
type ManualClock struct {
	now float64
}

// NewManualClock returns a manual clock reading start.
func NewManualClock(start float64) *ManualClock { return &ManualClock{now: start} }

// Now returns the last value set.
func (m *ManualClock) Now() float64 { return m.now }

// Set moves the clock to t. Moving backwards is allowed; the Core does
// not interpret timestamps, it only stamps them onto decisions.
func (m *ManualClock) Set(t float64) { m.now = t }

// Advance moves the clock forward by d seconds.
func (m *ManualClock) Advance(d float64) { m.now += d }

// zeroClock is the allocation-free default for drivers that never read
// time (the legacy sched.New construction): every decision is stamped 0.
type zeroClock struct{}

func (zeroClock) Now() float64 { return 0 }

// wallClock reads real time as seconds since its creation, so arrival
// stamps line up with the simulator's seconds-since-experiment-start
// convention (and stay comfortably inside job.Validate's Arrival >= 0).
type wallClock struct {
	epoch time.Time
}

// WallClock returns a Clock reading real time in seconds since the call.
func WallClock() Clock { return wallClock{epoch: time.Now()} } //lint:ignore wallclock WallClock IS the sanctioned wall-clock Clock implementation; reading real time here is its whole job

func (w wallClock) Now() float64 { return time.Since(w.epoch).Seconds() } //lint:ignore wallclock WallClock IS the sanctioned wall-clock Clock implementation
