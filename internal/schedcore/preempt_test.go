package schedcore

import (
	"testing"

	"gputopo/internal/job"
	"gputopo/internal/topology"
)

func mkPrioJob(id string, gpus, prio int, arrival float64) *job.Job {
	j := mkJob(id, 1, gpus, 0, arrival)
	j.Priority = prio
	return j
}

// placedIDs extracts the IDs of the placed decisions, in order.
func placedIDs(decs []*Decision) []string {
	var ids []string
	for _, d := range decs {
		if !d.Postponed {
			ids = append(ids, d.Job.ID)
		}
	}
	return ids
}

func TestPriorityDisciplineOrdersQueue(t *testing.T) {
	s := newSchedWith(t, FCFS, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	_ = s.Submit(mkPrioJob("low-early", 1, 0, 1))
	_ = s.Submit(mkPrioJob("high-late", 1, 1, 10))
	_ = s.Submit(mkPrioJob("high-early", 1, 1, 5))
	q := s.Queued()
	if q[0].ID != "high-early" || q[1].ID != "high-late" || q[2].ID != "low-early" {
		t.Fatalf("priority queue order: %v %v %v", q[0].ID, q[1].ID, q[2].ID)
	}
	if s.Discipline() != "priority-arrival" {
		t.Fatalf("discipline name %q", s.Discipline())
	}
}

func TestPreemptionEvictsYoungestLowerPriority(t *testing.T) {
	s := newSchedWith(t, TopoAwareP, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	_ = s.Submit(mkPrioJob("low1", 2, 0, 0))
	_ = s.Submit(mkPrioJob("low2", 2, 0, 1))
	if ids := placedIDs(s.Schedule()); len(ids) != 2 {
		t.Fatalf("setup placements: %v", ids)
	}

	_ = s.Submit(mkPrioJob("high", 2, 1, 2))
	decs := s.Schedule()
	if ids := placedIDs(decs); len(ids) != 1 || ids[0] != "high" {
		t.Fatalf("expected preemptive placement of high, got %v", ids)
	}
	var evs []Eviction
	for _, d := range decs {
		if d.Job.ID == "high" {
			evs = d.Evictions
		}
	}
	// Victim order prefers the youngest job inside the lowest tier: low2
	// loses less progress than low1.
	if len(evs) != 1 || evs[0].Job.ID != "low2" || len(evs[0].GPUs) != 2 {
		t.Fatalf("evictions: %+v", evs)
	}
	if st := s.Stats(); st.Preemptions != 1 || st.Evictions != 1 {
		t.Fatalf("stats: preemptions=%d evictions=%d", st.Preemptions, st.Evictions)
	}
	// The victim is back in the queue; the preemptor and survivor run.
	if q := s.Queued(); len(q) != 1 || q[0].ID != "low2" {
		t.Fatalf("queue after eviction: %v", q)
	}
	if run := s.Running(); len(run) != 2 || run[0] != "high" || run[1] != "low1" {
		t.Fatalf("running after eviction: %v", run)
	}

	// When the preemptor finishes, the victim resumes on the freed GPUs.
	if err := s.Release("high"); err != nil {
		t.Fatal(err)
	}
	if ids := placedIDs(s.Schedule()); len(ids) != 1 || ids[0] != "low2" {
		t.Fatalf("victim not re-placed: %v", ids)
	}
}

func TestPreemptionOffPostpones(t *testing.T) {
	s := newSchedWith(t, TopoAwareP, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	_ = s.Submit(mkPrioJob("low1", 2, 0, 0))
	_ = s.Submit(mkPrioJob("low2", 2, 0, 1))
	_ = s.Schedule()
	_ = s.Submit(mkPrioJob("high", 2, 1, 2))
	decs := s.Schedule()
	if ids := placedIDs(decs); len(ids) != 0 {
		t.Fatalf("placements with preemption off: %v", ids)
	}
	if st := s.Stats(); st.Preemptions != 0 || st.Evictions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPreemptionEvictsLowestTierFirst(t *testing.T) {
	s := newSchedWith(t, TopoAwareP, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	// prio-1 arrived later than prio-0: tier must beat recency.
	_ = s.Submit(mkPrioJob("tier0", 2, 0, 0))
	_ = s.Submit(mkPrioJob("tier1", 2, 1, 5))
	_ = s.Schedule()
	_ = s.Submit(mkPrioJob("top", 2, 2, 6))
	decs := s.Schedule()
	if ids := placedIDs(decs); len(ids) != 1 || ids[0] != "top" {
		t.Fatalf("expected top placed, got %v", ids)
	}
	for _, d := range decs {
		if d.Job.ID == "top" {
			if len(d.Evictions) != 1 || d.Evictions[0].Job.ID != "tier0" {
				t.Fatalf("expected tier0 evicted, got %+v", d.Evictions)
			}
		}
	}
}

func TestPreemptionNeverEvictsEqualPriority(t *testing.T) {
	s := newSchedWith(t, TopoAwareP, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	_ = s.Submit(mkPrioJob("a", 2, 1, 0))
	_ = s.Submit(mkPrioJob("b", 2, 1, 1))
	_ = s.Schedule()
	_ = s.Submit(mkPrioJob("c", 2, 1, 2))
	if ids := placedIDs(s.Schedule()); len(ids) != 0 {
		t.Fatalf("equal-priority eviction happened: %v", ids)
	}
	if st := s.Stats(); st.Preemptions != 0 {
		t.Fatalf("preemptions: %d", st.Preemptions)
	}
}

func TestZeroPriorityNeverPreempts(t *testing.T) {
	// Preemption enabled, but the arriving job has the default priority 0:
	// it must park/postpone like before — only positive priorities are
	// eligible, which is also what keeps the wake-up index sound.
	s := newSchedWith(t, TopoAwareP, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	_ = s.Submit(mkPrioJob("a", 2, 0, 0))
	_ = s.Submit(mkPrioJob("b", 2, 0, 1))
	_ = s.Schedule()
	_ = s.Submit(mkPrioJob("c", 2, 0, 2))
	if ids := placedIDs(s.Schedule()); len(ids) != 0 {
		t.Fatalf("zero-priority job preempted: %v", ids)
	}
}

func TestPreemptionGreedyVictimPrefix(t *testing.T) {
	// Machine holds a 2-GPU job and two 1-GPU jobs; a high-priority 2-GPU
	// arrival needs 2 GPUs freed.
	s := newSchedWith(t, TopoAwareP, topology.Power8Minsky(), WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	_ = s.Submit(mkPrioJob("pair", 2, 0, 0))
	_ = s.Submit(mkPrioJob("solo1", 1, 0, 1))
	_ = s.Submit(mkPrioJob("solo2", 1, 0, 2))
	if ids := placedIDs(s.Schedule()); len(ids) != 3 {
		t.Fatalf("setup placements: %v", ids)
	}
	_ = s.Submit(mkPrioJob("high", 2, 1, 3))
	decs := s.Schedule()
	var evs []Eviction
	for _, d := range decs {
		if d.Job.ID == "high" && !d.Postponed {
			evs = d.Evictions
		}
	}
	// The per-machine greedy walks candidates youngest-first and stops at
	// the first prefix that frees enough GPUs: [solo2, solo1] frees 2, so
	// the pair job — oldest, most progress to lose — survives.
	if len(evs) != 2 || evs[0].Job.ID != "solo2" || evs[1].Job.ID != "solo1" {
		t.Fatalf("victim set: %+v", evs)
	}
}

func TestPreemptionMultiNode(t *testing.T) {
	// A 6-GPU multi-node job on a full 2×Minsky cluster must evict across
	// machines via the cluster-wide greedy.
	topo := topology.Cluster(2, topology.KindMinsky)
	s := newSchedWith(t, TopoAwareP, topo, WithQueueDiscipline(PriorityThenArrival()))
	s.SetPreemption(true)
	for i, id := range []string{"a", "b", "c", "d"} {
		_ = s.Submit(mkPrioJob(id, 2, 0, float64(i)))
	}
	if ids := placedIDs(s.Schedule()); len(ids) != 4 {
		t.Fatalf("setup placements: %v", ids)
	}
	big := mkPrioJob("big", 6, 1, 10)
	big.SingleNode = false
	_ = s.Submit(big)
	decs := s.Schedule()
	var placed bool
	for _, d := range decs {
		if d.Job.ID == "big" && !d.Postponed {
			placed = true
			if len(d.Evictions) != 3 {
				t.Fatalf("multi-node evictions: %+v", d.Evictions)
			}
		}
	}
	if !placed {
		t.Fatal("multi-node preemption did not place")
	}
	if st := s.Stats(); st.Preemptions != 1 || st.Evictions != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPreemptionWalkIndexEquivalence runs one scripted mixed-priority
// session under all four gate/wake-index configurations and demands
// identical placement streams — the compact, deterministic cousin of the
// randomized difftest harness.
func TestPreemptionWalkIndexEquivalence(t *testing.T) {
	type round struct {
		submit   []*job.Job
		release  []string
		expected []string // placed IDs, in order
	}
	script := func() []round {
		return []round{
			{submit: []*job.Job{mkPrioJob("l1", 2, 0, 0), mkPrioJob("l2", 2, 0, 1), mkPrioJob("l3", 2, 0, 2), mkPrioJob("l4", 2, 0, 3)}},
			{submit: []*job.Job{mkPrioJob("h1", 2, 1, 4), mkPrioJob("h2", 4, 2, 5)}},
			{release: []string{"h1"}},
			{submit: []*job.Job{mkPrioJob("l5", 1, 0, 6)}},
			{release: []string{"h2"}},
		}
	}
	var baseline [][]string
	for i, cfg := range []struct{ gate, index bool }{{true, true}, {true, false}, {false, true}, {false, false}} {
		topo := topology.Cluster(2, topology.KindMinsky)
		s := newSchedWith(t, TopoAwareP, topo, WithQueueDiscipline(PriorityThenArrival()))
		s.SetPreemption(true)
		s.SetEpochGate(cfg.gate)
		s.SetWakeIndex(cfg.index)
		var got [][]string
		for _, r := range script() {
			for _, j := range r.submit {
				if err := s.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range r.release {
				if err := s.Release(id); err != nil {
					t.Fatal(err)
				}
			}
			got = append(got, placedIDs(s.Schedule()))
		}
		if i == 0 {
			baseline = got
			continue
		}
		for ri := range baseline {
			if len(baseline[ri]) != len(got[ri]) {
				t.Fatalf("config %+v round %d: %v vs %v", cfg, ri, got[ri], baseline[ri])
			}
			for k := range baseline[ri] {
				if baseline[ri][k] != got[ri][k] {
					t.Fatalf("config %+v round %d: %v vs %v", cfg, ri, got[ri], baseline[ri])
				}
			}
		}
	}
}
