package schedcore

import (
	"testing"

	"gputopo/internal/perfmodel"
	"gputopo/internal/topology"
)

// TestBandwidthConstraintFiltersHosts exercises the §4.3 capacity
// constraint t_bw <= p_bw end to end: a machine whose shared bus is fully
// committed must not receive new topology-aware placements.
func TestBandwidthConstraintFiltersHosts(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	s := newSched(t, TopoAwareP, topo)
	// Saturate machine 0's bus bookkeeping with a high-demand occupant.
	cap0 := s.State().BusCapacity()
	if err := s.State().Allocate("hog", []int{0}, cap0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	// A communication-heavy job must land on machine 1 even though
	// machine 0 has three free GPUs.
	_ = s.Submit(mkJob("bw", 1, 2, 0.0, 0))
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatalf("postponed: %+v", ds[0])
	}
	ms := s.State().MachinesOf(ds[0].Placement.GPUs)
	if len(ms) != 1 || ms[0] != 1 {
		t.Fatalf("placed on machines %v, want [1] (machine 0 bus saturated)", ms)
	}
}

// TestBandwidthConstraintCanPostpone verifies that when every machine's
// bus is committed, the topology-aware scheduler postpones rather than
// oversubscribing.
func TestBandwidthConstraintCanPostpone(t *testing.T) {
	topo := topology.Power8Minsky()
	s := newSched(t, TopoAwareP, topo)
	if err := s.State().Allocate("hog", []int{0}, s.State().BusCapacity(), perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(mkJob("bw", 1, 2, 0.0, 0))
	ds := s.Schedule()
	if !ds[0].Postponed || ds[0].Reason != "no-capacity" {
		t.Fatalf("decision = %+v, want no-capacity postponement", ds[0])
	}
}

// TestMultiNodeFCFS covers the FCFS multi-node path: a job allowed to span
// machines takes the first free GPUs across the cluster.
func TestMultiNodeFCFS(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	s := newSched(t, FCFS, topo)
	if err := s.State().Allocate("occ", []int{0, 1, 2}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	j := mkJob("wide", 1, 3, 0.0, 0)
	j.SingleNode = false
	_ = s.Submit(j)
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatalf("multi-node FCFS postponed: %+v", ds[0])
	}
	got := ds[0].Placement.GPUs
	want := []int{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS multi-node GPUs = %v, want %v", got, want)
		}
	}
}

// TestMultiNodeBestFit covers the Best-Fit multi-node path: GPUs come from
// the tightest machines first.
func TestMultiNodeBestFit(t *testing.T) {
	topo := topology.Cluster(2, topology.KindMinsky)
	s := newSched(t, BestFit, topo)
	// Machine 0: 1 free GPU; machine 1: 4 free.
	if err := s.State().Allocate("occ", []int{0, 1, 2}, 0, perfmodel.Traits{}); err != nil {
		t.Fatal(err)
	}
	j := mkJob("wide", 1, 3, 0.0, 0)
	j.SingleNode = false
	_ = s.Submit(j)
	ds := s.Schedule()
	if ds[0].Postponed {
		t.Fatal("multi-node BF postponed")
	}
	// Bin packing: the single free GPU of the tight machine 0 is consumed
	// before machine 1 contributes.
	got := ds[0].Placement.GPUs
	if got[0] != 3 {
		t.Fatalf("BF multi-node GPUs = %v, want GPU 3 first", got)
	}
}

// TestMultiNodeShortfall covers the not-enough-GPUs error paths of the
// multi-node branches.
func TestMultiNodeShortfall(t *testing.T) {
	topo := topology.Power8Minsky()
	for _, pol := range []Policy{FCFS, BestFit, TopoAware} {
		s := newSched(t, pol, topo)
		if err := s.State().Allocate("occ", []int{0, 1}, 0, perfmodel.Traits{}); err != nil {
			t.Fatal(err)
		}
		j := mkJob("wide", 1, 3, 0.0, 0)
		j.SingleNode = false
		_ = s.Submit(j)
		ds := s.Schedule()
		if len(ds) > 0 && !ds[0].Postponed {
			t.Fatalf("[%v] 3-GPU job placed with 2 free GPUs", pol)
		}
	}
}

// TestTopoAwareMultiNodePrefersOneMachine checks that a multi-node-capable
// job still packs onto a single machine when it fits (the paper's
// "preferentially places as many tasks as possible in the same node").
func TestTopoAwareMultiNodePrefersOneMachine(t *testing.T) {
	topo := topology.Cluster(3, topology.KindMinsky)
	s := newSched(t, TopoAware, topo)
	j := mkJob("pack", 1, 2, 0.5, 0)
	j.SingleNode = false
	_ = s.Submit(j)
	ds := s.Schedule()
	ms := s.State().MachinesOf(ds[0].Placement.GPUs)
	if len(ms) != 1 {
		t.Fatalf("2-GPU multi-node job spread over machines %v", ms)
	}
	if !topo.SameSocket(ds[0].Placement.GPUs[0], ds[0].Placement.GPUs[1]) {
		t.Fatal("pair not packed within a socket")
	}
}

// TestDecisionTimeAccumulates checks the §5.5.3 measurement plumbing.
func TestDecisionTimeAccumulates(t *testing.T) {
	s := newSched(t, TopoAware, topology.Power8Minsky())
	for i := 0; i < 3; i++ {
		_ = s.Submit(mkJob(jobIDs(i), 1, 1, 0.0, float64(i)))
	}
	s.Schedule()
	st := s.Stats()
	if st.Decisions != 3 || st.DecisionTime <= 0 || st.MaxDecision <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxDecision > st.DecisionTime {
		t.Fatal("max decision exceeds total")
	}
}

func jobIDs(i int) string { return string(rune('a' + i)) }
