package sweep

import (
	"math"
	"os"
	"strings"
	"testing"
)

// makeReport builds a two-cell report with the given makespans, bypassing
// the engine — diffing is pure data-joining.
func makeReport(name string, makespans map[string]float64) *Report {
	rep := &Report{Grid: Grid{Name: name}}
	for _, key := range []string{"A", "B", "C"} {
		m, ok := makespans[key]
		if !ok {
			continue
		}
		c := CellSummary{Jobs: 10, Replicas: 1}
		switch key {
		case "A":
			c.Machines = 1
		case "B":
			c.Machines = 2
		case "C":
			c.Machines = 3
		}
		c.Makespan.Mean = m
		c.MeanQoS.Mean = 1
		c.MeanQoSWait.Mean = 1
		c.TotalWait.Mean = 1
		rep.Cells = append(rep.Cells, c)
	}
	return rep
}

func TestDiffExactEqual(t *testing.T) {
	old := makeReport("g", map[string]float64{"A": 100, "B": 200})
	d := Diff(old, old, DiffOptions{})
	if d.HasRegressions() || d.Improvements != 0 {
		t.Fatalf("self-diff not clean: %+v", d)
	}
	if d.Unchanged != 2*len(diffMetrics) {
		t.Fatalf("unchanged = %d, want %d", d.Unchanged, 2*len(diffMetrics))
	}
	if md := d.Markdown(); !strings.Contains(md, "✅ no regressions") {
		t.Fatalf("markdown verdict wrong:\n%s", md)
	}
}

func TestDiffToleranceEdges(t *testing.T) {
	old := makeReport("g", map[string]float64{"A": 100})
	// +4.9% under a 5% tolerance: equal. +5.1%: regression. -5.1%:
	// improvement (never a CI failure).
	for _, tc := range []struct {
		new    float64
		status DeltaStatus
	}{
		{104.9, DeltaEqual},
		{105.1, DeltaRegression},
		{94.9, DeltaImprovement},
		{100, DeltaEqual},
	} {
		d := Diff(old, makeReport("g", map[string]float64{"A": tc.new}), DiffOptions{RelTol: 0.05})
		if got := d.Deltas[0].Status; got != tc.status {
			t.Fatalf("new=%g: status %v, want %v", tc.new, got, tc.status)
		}
	}
	// Per-metric override beats the default.
	d := Diff(old, makeReport("g", map[string]float64{"A": 110}),
		DiffOptions{RelTol: 0.05, PerMetric: map[string]float64{"makespan_s": 0.2}})
	if d.HasRegressions() {
		t.Fatalf("per-metric tolerance not applied: %+v", d.Deltas[0])
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old := makeReport("g", map[string]float64{"A": 0})
	d := Diff(old, makeReport("g", map[string]float64{"A": 1}), DiffOptions{RelTol: 0.5})
	if !d.HasRegressions() || !math.IsInf(d.Deltas[0].Rel, 1) {
		t.Fatalf("0 -> 1 not flagged: %+v", d.Deltas[0])
	}
	d = Diff(old, makeReport("g", map[string]float64{"A": 0}), DiffOptions{})
	if d.HasRegressions() {
		t.Fatal("0 -> 0 flagged as regression")
	}
}

func TestDiffNaN(t *testing.T) {
	nan := math.NaN()
	old := makeReport("g", map[string]float64{"A": nan})
	// NaN on both sides: consistently degenerate, equal.
	if d := Diff(old, makeReport("g", map[string]float64{"A": nan}), DiffOptions{}); d.HasRegressions() {
		t.Fatal("NaN == NaN flagged as regression")
	}
	// NaN appearing or disappearing: regression either way.
	if d := Diff(makeReport("g", map[string]float64{"A": 5}), old, DiffOptions{}); !d.HasRegressions() {
		t.Fatal("5 -> NaN not flagged")
	}
	if d := Diff(old, makeReport("g", map[string]float64{"A": 5}), DiffOptions{}); !d.HasRegressions() {
		t.Fatal("NaN -> 5 not flagged")
	}
}

func TestDiffMissingAndAddedCells(t *testing.T) {
	old := makeReport("g", map[string]float64{"A": 100, "B": 200})
	new := makeReport("g", map[string]float64{"A": 100, "C": 300})
	d := Diff(old, new, DiffOptions{})
	if len(d.MissingCells) != 1 || !d.HasRegressions() {
		t.Fatalf("missing cell not flagged: %+v", d)
	}
	if len(d.AddedCells) != 1 {
		t.Fatalf("added cell not reported: %+v", d)
	}
	md := d.Markdown()
	if !strings.Contains(md, "missing from the new report") || !strings.Contains(md, "only in the new report") {
		t.Fatalf("markdown missing cell sections:\n%s", md)
	}
}

func TestDiffMarkdownTable(t *testing.T) {
	old := makeReport("g", map[string]float64{"A": 100})
	d := Diff(old, makeReport("g", map[string]float64{"A": 150}), DiffOptions{})
	md := d.Markdown()
	for _, want := range []string{"| cell | metric |", "makespan_s", "+50.00%", "REGRESSION", "❌"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// Unchanged metrics stay out of the table.
	if strings.Contains(md, "| mean_slowdown_qos |") {
		t.Fatalf("unchanged metric listed in delta table:\n%s", md)
	}
}

// TestGoldenBaseline keeps the committed CI baseline honest: it must
// load, self-diff clean, and belong to the smoke grid. (CI's bench-smoke
// job diffs a fresh run against it; regenerate with
// `go run ./cmd/toposweep -smoke -out internal/sweep/testdata/golden_smoke.json`
// whenever an intentional behavior change shifts the numbers.)
func TestGoldenBaseline(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(data, "golden_smoke")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Name != "smoke" || len(rep.Cells) == 0 {
		t.Fatalf("golden baseline is grid %q with %d cells", rep.Grid.Name, len(rep.Cells))
	}
	if d := Diff(rep, rep, DiffOptions{}); d.HasRegressions() {
		t.Fatalf("golden self-diff not clean:\n%s", d.Markdown())
	}
}

// TestGoldenHeteroBaseline does the same for the heterogeneous-cluster
// baseline CI diffs against the `hetero` named grid. Regenerate with
// `go run ./cmd/toposweep -grid hetero -out internal/sweep/testdata/golden_hetero.json`.
func TestGoldenHeteroBaseline(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_hetero.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(data, "golden_hetero")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Name != "hetero" || len(rep.Cells) == 0 {
		t.Fatalf("golden hetero baseline is grid %q with %d cells", rep.Grid.Name, len(rep.Cells))
	}
	// Every cell of the baseline runs on a heterogeneous mix.
	for _, c := range rep.Cells {
		if len(c.Topology.Mix) == 0 {
			t.Fatalf("hetero baseline cell %q has no machine mix", c.Key())
		}
	}
	if d := Diff(rep, rep, DiffOptions{}); d.HasRegressions() {
		t.Fatalf("golden hetero self-diff not clean:\n%s", d.Markdown())
	}
}

// TestDiffRealSweepRoundTrip exercises the full artifact path: run, write
// JSON, load, self-diff.
func TestDiffRealSweepRoundTrip(t *testing.T) {
	rep, err := Run(testGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(js, "x")
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(rep, loaded, DiffOptions{})
	if d.HasRegressions() || d.Improvements != 0 {
		t.Fatalf("artifact round-trip self-diff not clean:\n%s", d.Markdown())
	}
	if _, err := LoadReport([]byte(`{"grid":{}}`), "x"); err == nil {
		t.Fatal("cell-less artifact accepted")
	}
	if _, err := LoadReport([]byte(`nope`), "x"); err == nil {
		t.Fatal("malformed artifact accepted")
	}
}

// TestDiffDistributionMetrics covers the stddev/P95 companions: a change
// that keeps every mean but fattens the spread or the tail must register
// under the distribution metrics' own tolerances.
func TestDiffDistributionMetrics(t *testing.T) {
	old := makeReport("g", map[string]float64{"A": 100})
	old.Cells[0].Makespan.Stddev = 10
	old.Cells[0].Makespan.P95 = 120
	upd := makeReport("g", map[string]float64{"A": 100})
	upd.Cells[0].Makespan.Stddev = 16 // +60% spread
	upd.Cells[0].Makespan.P95 = 132   // +10% tail

	// Exact mode: both distribution drifts are regressions, the mean is
	// unchanged.
	d := Diff(old, upd, DiffOptions{})
	if d.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (stddev + p95)", d.Regressions)
	}
	md := d.Markdown()
	if !strings.Contains(md, "makespan_s.stddev") || !strings.Contains(md, "makespan_s.p95") {
		t.Fatalf("markdown missing distribution rows:\n%s", md)
	}

	// Suffix-level tolerances gate independently: a 100% stddev
	// allowance forgives the spread, a 5% p95 allowance still fails the
	// tail.
	d = Diff(old, upd, DiffOptions{StddevRelTol: 1.0, P95RelTol: 0.05})
	if d.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (p95 only)", d.Regressions)
	}
	if d.Deltas[0].Metric == "makespan_s.p95" && d.Deltas[0].Status != DeltaRegression {
		t.Fatalf("p95 delta: %+v", d.Deltas)
	}

	// Per-metric overrides beat the suffix defaults.
	d = Diff(old, upd, DiffOptions{StddevRelTol: 0.01, P95RelTol: 0.01,
		PerMetric: map[string]float64{"makespan_s.stddev": 1.0, "makespan_s.p95": 1.0}})
	if d.HasRegressions() {
		t.Fatalf("per-metric overrides ignored: %+v", d)
	}

	// The metric list advertises the new names.
	names := DiffMetricNames()
	want := map[string]bool{"makespan_s": true, "makespan_s.stddev": true, "makespan_s.p95": true,
		"slo_violations.p95": true, "high_pri_wait_s": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("DiffMetricNames missing %v (got %v)", want, names)
	}
	if len(names) != 18 {
		t.Fatalf("expected 18 metrics (6 bases × mean/stddev/p95), got %d", len(names))
	}
}
