package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BenchSchema versions the BENCH_sweep.json artifact layout.
const BenchSchema = "gputopo-bench/1"

// GridBench records the execution cost of one sweep run: wall clock and
// the throughput rates derived from it. Unlike the result artifacts these
// numbers are machine-dependent — the differ compares them under generous
// relative thresholds, while allocation counts (from Go benchmarks) gate
// tightly because they are deterministic across machines.
type GridBench struct {
	Grid          string  `json:"grid"`
	Points        int     `json:"points"`
	JobsSimulated int     `json:"jobs_simulated"`
	Workers       int     `json:"workers"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	PointsPerSec  float64 `json:"points_per_sec"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
}

// GoBench is one parsed `go test -bench` result line.
type GoBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// ServeBench records one topoload run against a toposerve instance
// (BENCH_serve.json): how much traffic was driven, how it fared, and
// the placement-latency distribution observed at the client. Jobs and
// Errors are deterministic (the differ gates them even under
// -wallclock-off: losing traffic coverage or growing a nonzero error
// count is a regression on any machine); everything else depends on
// scheduling timing or wall clock and gates only in timed mode.
type ServeBench struct {
	Name string `json:"name"` // e.g. "serve/minsky:2/topo-p"
	// Mode records the traffic model: "closed-loop" (N workers, next
	// submit waits for the previous decision) or "open-loop" (arrivals
	// paced at a target rate regardless of server latency). Empty in
	// artifacts written before open-loop existed, meaning closed-loop.
	Mode string `json:"mode,omitempty"`
	// TargetJobsPerSec is the open-loop pacing target (0 when closed
	// loop). Config echo, not a measurement — the differ does not gate
	// it; compare it to JobsPerSec to see whether the server kept up.
	TargetJobsPerSec float64 `json:"target_jobs_per_sec,omitempty"`
	// Jobs is the number of submissions driven; Errors counts requests
	// that failed for any reason other than an eventually-admitted 429.
	Jobs   int `json:"jobs"`
	Errors int `json:"errors"`
	// Placed counts jobs the submitting POST itself placed; Retries429
	// counts admission-control retries the client absorbed.
	Placed     int `json:"placed,omitempty"`
	Retries429 int `json:"retries_429,omitempty"`
	// Decisions is the server's decision count over the run.
	Decisions  int     `json:"decisions,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"`
	// DecisionsPerSec is scheduler decision throughput (decisions /
	// elapsed) — the batching loop's amortization shows up here.
	DecisionsPerSec float64 `json:"decisions_per_sec,omitempty"`
	// Latency percentiles of the submit round trip (request sent to
	// decision received), in milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms,omitempty"`
	LatencyP95Ms float64 `json:"latency_p95_ms,omitempty"`
	LatencyP99Ms float64 `json:"latency_p99_ms,omitempty"`
}

// BenchReport is the perf-tracking artifact (BENCH_sweep.json /
// BENCH_serve.json): sweep wall-clock/throughput entries,
// micro-benchmark figures and serving load-harness runs, diffable
// across commits with DiffBench.
type BenchReport struct {
	Schema     string       `json:"schema"`
	Grids      []GridBench  `json:"grids,omitempty"`
	Benchmarks []GoBench    `json:"benchmarks,omitempty"`
	Serving    []ServeBench `json:"serving,omitempty"`
}

// NewGridBench distills a completed report (with Elapsed/Workers set by
// the caller, as toposweep does) into its bench entry.
func NewGridBench(rep *Report) GridBench {
	jobs := 0
	for _, p := range rep.Points {
		jobs += p.JobsFinished
	}
	gb := GridBench{
		Grid:          rep.Grid.Name,
		Points:        len(rep.Points),
		JobsSimulated: jobs,
		Workers:       rep.Workers,
		ElapsedSec:    rep.Elapsed.Seconds(),
	}
	if gb.ElapsedSec > 0 {
		gb.PointsPerSec = float64(gb.Points) / gb.ElapsedSec
		gb.JobsPerSec = float64(gb.JobsSimulated) / gb.ElapsedSec
	}
	return gb
}

// AddGrid inserts or replaces the entry for the grid name.
func (b *BenchReport) AddGrid(gb GridBench) {
	for i := range b.Grids {
		if b.Grids[i].Grid == gb.Grid {
			b.Grids[i] = gb
			return
		}
	}
	b.Grids = append(b.Grids, gb)
}

// AddServe inserts or replaces the serving entry for the run name.
func (b *BenchReport) AddServe(sb ServeBench) {
	for i := range b.Serving {
		if b.Serving[i].Name == sb.Name {
			b.Serving[i] = sb
			return
		}
	}
	b.Serving = append(b.Serving, sb)
}

// JSON serializes the bench report deterministically (grids and
// benchmarks sorted by name).
func (b *BenchReport) JSON() ([]byte, error) {
	b.Schema = BenchSchema
	sort.Slice(b.Grids, func(i, j int) bool { return b.Grids[i].Grid < b.Grids[j].Grid })
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	sort.Slice(b.Serving, func(i, j int) bool { return b.Serving[i].Name < b.Serving[j].Name })
	js, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(js, '\n'), nil
}

// LoadBenchReport parses a BENCH_sweep.json artifact.
func LoadBenchReport(data []byte, name string) (*BenchReport, error) {
	var b BenchReport
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("sweep: parsing bench report %s: %w", name, err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("sweep: bench report %s has schema %q, want %q", name, b.Schema, BenchSchema)
	}
	return &b, nil
}

// ParseGoBenchOutput extracts benchmark result lines from `go test
// -bench` text output (the `-benchmem` columns are optional). Lines that
// are not benchmark results are ignored; the per-benchmark custom metrics
// (b.ReportMetric) are skipped — they are experiment values, not costs.
func ParseGoBenchOutput(text string) []GoBench {
	var out []GoBench
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -N GOMAXPROCS suffix so names are stable across
		// runner core counts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		gb := GoBench{Name: name}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				gb.NsPerOp = v
				ok = true
			case "B/op":
				gb.BytesPerOp = v
			case "allocs/op":
				gb.AllocsPerOp = v
			}
		}
		if ok {
			out = append(out, gb)
		}
	}
	return out
}

// BenchDiffOptions tunes the perf differ. Perf metrics are noisy and
// machine-dependent, so unlike the result differ the zero value is not
// exact comparison: tolerances express the relative change below which a
// delta is not called a regression or an improvement — the
// relative-improvement threshold mode the PR 2 differ left open.
type BenchDiffOptions struct {
	// RelTol is the default relative threshold (e.g. 0.25 = 25%).
	RelTol float64
	// PerMetric overrides RelTol by metric name (keys from
	// BenchDiffMetricNames).
	PerMetric map[string]float64
	// WallClockOff skips every wall-clock-derived metric (elapsed_sec,
	// points_per_sec, jobs_per_sec, ns_per_op) and gates only the
	// deterministic allocation counts (allocs_per_op, bytes_per_op) —
	// the CI mode for noisy shared runners, where a 5x wall-clock
	// tolerance still pages on a slow neighbor while allocation counts
	// catch every real hot-path regression.
	WallClockOff bool
}

// wallClockMetric reports whether a bench metric depends on real time
// or load timing (latencies, rates, and the timing-dependent serving
// counts) rather than deterministic work (allocation counts, traffic
// coverage, error totals).
func wallClockMetric(name string) bool {
	switch name {
	case "elapsed_sec", "points_per_sec", "jobs_per_sec", "ns_per_op",
		"decisions_per_sec", "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
		"placed", "retries_429", "decisions":
		return true
	}
	return false
}

func (o BenchDiffOptions) tol(metric string) float64 {
	if t, ok := o.PerMetric[metric]; ok {
		return t
	}
	return o.RelTol
}

// benchMetrics declares the compared perf metrics and their direction.
var benchGridMetrics = []struct {
	name   string
	higher bool // higher is better
	get    func(GridBench) float64
}{
	// points and jobs_simulated are deterministic and survive
	// -wallclock-off: a shrunken count means the sweep lost coverage (a
	// grid quietly dropped points or points stopped finishing their
	// jobs), which is a regression on any machine.
	{"points", true, func(g GridBench) float64 { return float64(g.Points) }},
	{"jobs_simulated", true, func(g GridBench) float64 { return float64(g.JobsSimulated) }},
	{"elapsed_sec", false, func(g GridBench) float64 { return g.ElapsedSec }},
	{"points_per_sec", true, func(g GridBench) float64 { return g.PointsPerSec }},
	{"jobs_per_sec", true, func(g GridBench) float64 { return g.JobsPerSec }},
}

var benchGoMetrics = []struct {
	name string
	get  func(GoBench) float64
}{
	{"ns_per_op", func(g GoBench) float64 { return g.NsPerOp }},
	{"bytes_per_op", func(g GoBench) float64 { return g.BytesPerOp }},
	{"allocs_per_op", func(g GoBench) float64 { return g.AllocsPerOp }},
}

// benchServeMetrics declares the serving load-harness metrics. Jobs and
// errors are deterministic and survive -wallclock-off: a shrunken jobs
// count means lost coverage, and any errors growth from zero compares
// as an infinite relative change, regressing at every tolerance.
var benchServeMetrics = []struct {
	name   string
	higher bool // higher is better
	get    func(ServeBench) float64
}{
	{"jobs", true, func(s ServeBench) float64 { return float64(s.Jobs) }},
	{"errors", false, func(s ServeBench) float64 { return float64(s.Errors) }},
	{"placed", true, func(s ServeBench) float64 { return float64(s.Placed) }},
	{"retries_429", false, func(s ServeBench) float64 { return float64(s.Retries429) }},
	{"decisions", true, func(s ServeBench) float64 { return float64(s.Decisions) }},
	{"elapsed_sec", false, func(s ServeBench) float64 { return s.ElapsedSec }},
	{"jobs_per_sec", true, func(s ServeBench) float64 { return s.JobsPerSec }},
	{"decisions_per_sec", true, func(s ServeBench) float64 { return s.DecisionsPerSec }},
	{"latency_p50_ms", false, func(s ServeBench) float64 { return s.LatencyP50Ms }},
	{"latency_p95_ms", false, func(s ServeBench) float64 { return s.LatencyP95Ms }},
	{"latency_p99_ms", false, func(s ServeBench) float64 { return s.LatencyP99Ms }},
}

// BenchDiffMetricNames lists the metric names the perf differ compares
// (deduplicated: grid and serving entries share rate names).
func BenchDiffMetricNames() []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, m := range benchGridMetrics {
		add(m.name)
	}
	for _, m := range benchGoMetrics {
		add(m.name)
	}
	for _, m := range benchServeMetrics {
		add(m.name)
	}
	return names
}

// DiffBench joins two bench reports by grid and benchmark name and
// classifies every metric delta. All Go benchmark metrics are
// lower-is-better; grid throughput rates are higher-is-better. Entries
// missing from the new report count as regressions (lost coverage);
// added entries are informational. The result reuses the sweep differ's
// DiffResult, so rendering and exit-code policy stay uniform.
func DiffBench(oldRep, newRep *BenchReport, opt BenchDiffOptions) *DiffResult {
	d := &DiffResult{OldName: "bench-baseline", NewName: "bench-current"}

	newGrids := map[string]GridBench{}
	for _, g := range newRep.Grids {
		newGrids[g.Grid] = g
	}
	seenGrids := map[string]bool{}
	for _, og := range oldRep.Grids {
		key := "grid:" + og.Grid
		seenGrids[og.Grid] = true
		ng, ok := newGrids[og.Grid]
		if !ok {
			d.MissingCells = append(d.MissingCells, key)
			d.Regressions++
			continue
		}
		for _, m := range benchGridMetrics {
			if opt.WallClockOff && wallClockMetric(m.name) {
				continue
			}
			oldV, newV := m.get(og), m.get(ng)
			if m.higher {
				// Compare reciprocals (cost per unit of work): that turns
				// the rate into a lower-is-better metric whose relative
				// growth is unbounded as the rate collapses — negating the
				// values instead would cap any drop at -100% and let a
				// total throughput collapse slip under tolerances >= 1.
				rel, status := compareMetric(invert(oldV), invert(newV), opt.tol(m.name))
				// Report the natural relative change of the rate itself.
				if !math.IsNaN(rel) && oldV != 0 {
					rel = (newV - oldV) / math.Abs(oldV)
				}
				d.add(key, m.name, oldV, newV, rel, status)
				continue
			}
			rel, status := compareMetric(oldV, newV, opt.tol(m.name))
			d.add(key, m.name, oldV, newV, rel, status)
		}
	}
	for _, g := range newRep.Grids {
		if !seenGrids[g.Grid] {
			d.AddedCells = append(d.AddedCells, "grid:"+g.Grid)
		}
	}

	newBench := map[string]GoBench{}
	for _, b := range newRep.Benchmarks {
		newBench[b.Name] = b
	}
	seenBench := map[string]bool{}
	for _, ob := range oldRep.Benchmarks {
		key := "go:" + ob.Name
		seenBench[ob.Name] = true
		nb, ok := newBench[ob.Name]
		if !ok {
			d.MissingCells = append(d.MissingCells, key)
			d.Regressions++
			continue
		}
		for _, m := range benchGoMetrics {
			if opt.WallClockOff && wallClockMetric(m.name) {
				continue
			}
			oldV, newV := m.get(ob), m.get(nb)
			if oldV == 0 && newV == 0 {
				continue // metric not recorded on either side
			}
			rel, status := compareMetric(oldV, newV, opt.tol(m.name))
			d.add(key, m.name, oldV, newV, rel, status)
		}
	}
	for _, b := range newRep.Benchmarks {
		if !seenBench[b.Name] {
			d.AddedCells = append(d.AddedCells, "go:"+b.Name)
		}
	}

	newServe := map[string]ServeBench{}
	for _, s := range newRep.Serving {
		newServe[s.Name] = s
	}
	seenServe := map[string]bool{}
	for _, os := range oldRep.Serving {
		key := "serve:" + os.Name
		seenServe[os.Name] = true
		ns, ok := newServe[os.Name]
		if !ok {
			d.MissingCells = append(d.MissingCells, key)
			d.Regressions++
			continue
		}
		for _, m := range benchServeMetrics {
			if opt.WallClockOff && wallClockMetric(m.name) {
				continue
			}
			oldV, newV := m.get(os), m.get(ns)
			if m.higher {
				rel, status := compareMetric(invert(oldV), invert(newV), opt.tol(m.name))
				if !math.IsNaN(rel) && oldV != 0 {
					rel = (newV - oldV) / math.Abs(oldV)
				}
				d.add(key, m.name, oldV, newV, rel, status)
				continue
			}
			rel, status := compareMetric(oldV, newV, opt.tol(m.name))
			d.add(key, m.name, oldV, newV, rel, status)
		}
	}
	for _, s := range newRep.Serving {
		if !seenServe[s.Name] {
			d.AddedCells = append(d.AddedCells, "serve:"+s.Name)
		}
	}
	sort.Strings(d.AddedCells)
	return d
}

// invert maps a rate to its per-unit cost; a zero rate becomes an
// infinite cost so collapses register as unbounded regressions.
func invert(v float64) float64 {
	if v == 0 {
		return math.Inf(1)
	}
	return 1 / v
}

// add appends one classified delta and updates the counters.
func (d *DiffResult) add(cell, metric string, oldV, newV, rel float64, status DeltaStatus) {
	d.Deltas = append(d.Deltas, MetricDelta{
		Cell:   cell,
		Metric: metric,
		Old:    oldV,
		New:    newV,
		Rel:    rel,
		Status: status,
	})
	switch status {
	case DeltaRegression:
		d.Regressions++
	case DeltaImprovement:
		d.Improvements++
	default:
		d.Unchanged++
	}
}
