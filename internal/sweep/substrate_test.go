package sweep

import (
	"bytes"
	"testing"
)

// TestSubstrateCacheSharesAcrossPoints asserts the cache hands out one
// substrate per distinct (spec, machines, standalone) key: pointer
// equality on both the topology and the profile store.
func TestSubstrateCacheSharesAcrossPoints(t *testing.T) {
	c := newSubstrateCache()
	spec := TopologySpec{Builder: "minsky"}
	t1, p1, err := c.substrate(spec, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	t2, p2, err := c.substrate(spec, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 || p1 != p2 {
		t.Fatal("identical specs must share one substrate")
	}
	t3, _, err := c.substrate(spec, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Fatal("different machine counts must not share a substrate")
	}
	if t3.NumMachines() != 5 || t1.NumMachines() != 3 {
		t.Fatalf("machines = %d/%d, want 5/3", t3.NumMachines(), t1.NumMachines())
	}
	t4, _, err := c.substrate(spec, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if t4 == t1 {
		t.Fatal("standalone and cluster builds must not share a substrate")
	}
}

// TestSubstrateCacheErrorPropagates keeps build failures per-point errors
// rather than panics or silent nils.
func TestSubstrateCacheErrorPropagates(t *testing.T) {
	c := newSubstrateCache()
	_, _, err := c.substrate(TopologySpec{MatrixFile: "no/such/file.matrix"}, 1, false)
	if err == nil {
		t.Fatal("missing matrix file must fail")
	}
	// The error is memoized, not recomputed.
	_, _, err2 := c.substrate(TopologySpec{MatrixFile: "no/such/file.matrix"}, 1, false)
	if err2 == nil {
		t.Fatal("memoized entry must keep failing")
	}
}

// TestSharedSubstrateManyWorkers hammers one shared substrate from eight
// workers — under -race (CI runs it) this is the proof that sharing one
// topology and profile store across the pool is safe, and the 1-vs-8
// byte-comparison is the proof it is deterministic. The grid is a single
// topology × many seeds, so every point hits the same cached substrate.
func TestSharedSubstrateManyWorkers(t *testing.T) {
	grid := Grid{
		Name:           "substrate-race",
		Machines:       []int{4},
		Jobs:           []int{30},
		Replicas:       4,
		BaseSeed:       11,
		RatePerMachine: 2,
	}
	rep8, err := Run(grid, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Run(grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	js8, err := rep8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	js1, err := rep1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js8) {
		t.Fatal("1-worker and 8-worker artifacts differ on a shared substrate")
	}
}

// TestEpochGateEquivalence runs grids with the version gate on (default)
// and off and requires byte-identical artifacts: the gate may only skip
// placement evaluations whose outcome is already determined, never change
// one. Both a homogeneous scenario-1-style grid and a heterogeneous mix
// grid are covered; all four policies are in the default policy set, so
// the blocked/out-of-order queue paths are all exercised.
func TestEpochGateEquivalence(t *testing.T) {
	grids := []struct {
		grid Grid
		// expectSkips marks grids congested enough that the gate provably
		// fires (high postponement thresholds force low-utility postpones,
		// the only walk-surviving memo source — capacity-doomed jobs are
		// screened by the O(1) availableResources gate before tryPlace).
		expectSkips bool
	}{
		{
			grid: Grid{
				Name:           "gate-equiv-scenario1",
				Machines:       []int{3},
				Jobs:           []int{150},
				Thresholds:     []float64{0.9},
				Replicas:       1,
				BaseSeed:       42,
				RatePerMachine: 8,
			},
			expectSkips: true,
		},
		{
			grid: Grid{
				Name: "gate-equiv-hetero",
				Topologies: []TopologySpec{
					{Mix: []MixEntry{{Kind: "minsky", Count: 1}, {Kind: "dgx1", Count: 1}}},
				},
				Jobs:     []int{40},
				Replicas: 2,
				BaseSeed: 7,
			},
		},
	}
	for _, tc := range grids {
		grid, expectSkips := tc.grid, tc.expectSkips
		t.Run(grid.Name, func(t *testing.T) {
			gated, err := Run(grid, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			ungatedCache := newSubstrateCache()
			ungated, err := Run(grid, Options{
				Workers: 4,
				Runner: func(p Point) (*RunOutput, error) {
					return ungatedCache.runPoint(p, schedTweaks{disableEpochGate: true})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			jsGated, err := gated.JSON()
			if err != nil {
				t.Fatal(err)
			}
			jsUngated, err := ungated.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsGated, jsUngated) {
				t.Fatal("gated and ungated artifacts differ — the version gate changed a decision")
			}
			csvGated, csvUngated := gated.CSV(), ungated.CSV()
			if !bytes.Equal(csvGated, csvUngated) {
				t.Fatal("gated and ungated CSV artifacts differ")
			}
			// On grids engineered for it the gate must actually fire, or
			// the equivalence above proves nothing.
			skips := 0
			for _, pr := range gated.Points {
				skips += pr.Sim.SchedStats.GateSkips
			}
			if expectSkips && skips == 0 {
				t.Fatal("version gate never fired; grid not congested enough to exercise it")
			}
			for _, pr := range ungated.Points {
				if pr.Sim.SchedStats.GateSkips != 0 {
					t.Fatal("ungated run recorded gate skips")
				}
			}
		})
	}
}

// TestWakeIndexEquivalence runs grids with the wake-up index on (the
// default) and off and requires byte-identical JSON and CSV artifacts:
// the index may only skip visiting queued jobs whose availableResources
// gate provably cannot pass — it must never change a placement, a
// timing, or an aggregate postponement count. A congested scenario-1
// style grid (deep capacity-blocked queues, the index's target workload)
// and a heterogeneous mix grid are covered; the scenario-1 grid must
// actually record wake skips or the equivalence proves nothing.
func TestWakeIndexEquivalence(t *testing.T) {
	grids := []struct {
		grid Grid
		// expectSkips marks grids congested enough that parked jobs
		// provably stay parked across events.
		expectSkips bool
	}{
		{
			grid: Grid{
				Name:           "wake-equiv-scenario1",
				Machines:       []int{3},
				Jobs:           []int{150},
				Replicas:       1,
				BaseSeed:       42,
				RatePerMachine: 8,
			},
			expectSkips: true,
		},
		{
			grid: Grid{
				Name: "wake-equiv-hetero",
				Topologies: []TopologySpec{
					{Mix: []MixEntry{{Kind: "minsky", Count: 1}, {Kind: "dgx1", Count: 1}}},
				},
				Jobs:     []int{40},
				Replicas: 2,
				BaseSeed: 7,
			},
		},
	}
	for _, tc := range grids {
		grid, expectSkips := tc.grid, tc.expectSkips
		t.Run(grid.Name, func(t *testing.T) {
			indexed, err := Run(grid, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			walkedCache := newSubstrateCache()
			walked, err := Run(grid, Options{
				Workers: 4,
				Runner: func(p Point) (*RunOutput, error) {
					return walkedCache.runPoint(p, schedTweaks{disableWakeIndex: true})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			jsIndexed, err := indexed.JSON()
			if err != nil {
				t.Fatal(err)
			}
			jsWalked, err := walked.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsIndexed, jsWalked) {
				t.Fatal("indexed and full-walk artifacts differ — the wake-up index changed a decision")
			}
			if !bytes.Equal(indexed.CSV(), walked.CSV()) {
				t.Fatal("indexed and full-walk CSV artifacts differ")
			}
			skips := 0
			for _, pr := range indexed.Points {
				skips += pr.Sim.SchedStats.WakeSkips
			}
			if expectSkips && skips == 0 {
				t.Fatal("wake-up index never skipped a parked job; grid not congested enough to exercise it")
			}
			for _, pr := range walked.Points {
				if pr.Sim.SchedStats.WakeSkips != 0 {
					t.Fatal("full-walk run recorded wake skips")
				}
			}
			// The per-job postponement counts (not part of the serialized
			// artifact) must also agree: the index derives them from round
			// counters instead of materialized decisions.
			for i := range indexed.Points {
				a, b := indexed.Points[i].Sim.Jobs, walked.Points[i].Sim.Jobs
				for k := range a {
					if a[k].Postponements != b[k].Postponements {
						t.Fatalf("point %d job %s: postponements %d (indexed) vs %d (walk)",
							i, a[k].Job.ID, a[k].Postponements, b[k].Postponements)
					}
				}
			}
		})
	}
}
