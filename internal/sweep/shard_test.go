package sweep

import (
	"bytes"
	"os"
	"regexp"
	"testing"

	"gputopo/internal/sched"
)

func TestParseTopologyArgDomains(t *testing.T) {
	ts, err := ParseTopologyArg("minsky:8/domains[hash:4]")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Builder != "minsky" || ts.Machines != 8 || ts.Domains != "hash:4" {
		t.Fatalf("parsed %+v", ts)
	}
	if key := ts.Key(); key != "minsky:8/domains[hash:4]" {
		t.Fatalf("Key() = %q", key)
	}
	if _, err := ParseTopologyArg("minsky/domains[]"); err == nil {
		t.Fatal("empty domains[] accepted")
	}
	if _, err := ParseTopologyArg("minsky/domains[rack:2]"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	ts, err = ParseTopologyArg("mix[minsky:2+dgx1:2]/domains[kind]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Mix) != 2 || ts.Domains != "kind" {
		t.Fatalf("parsed %+v", ts)
	}
}

func TestPartitionDomainsSpecs(t *testing.T) {
	// Homogeneous hash split: 4 identical sub-specs sharing one cache key.
	ts := TopologySpec{Builder: "minsky", Machines: 8, Domains: "hash:4"}
	_, subs, groups, err := ts.PartitionDomains(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("%d domains, want 4", len(subs))
	}
	for d, sub := range subs {
		if sub.Key() != "minsky:2" {
			t.Fatalf("domain %d spec %q, want minsky:2", d, sub.Key())
		}
		if len(groups[d]) != 2 {
			t.Fatalf("domain %d owns %v", d, groups[d])
		}
	}
	// Heterogeneous kind split: one domain per machine generation, runs
	// recompressed.
	ts = TopologySpec{Mix: []MixEntry{{Kind: "minsky", Count: 2}, {Kind: "dgx1", Count: 1}}, Domains: "kind"}
	_, subs, groups, err = ts.PartitionDomains(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0].Key() != "mix[minsky:2]" || subs[1].Key() != "mix[dgx1:1]" {
		t.Fatalf("kind split: %+v", subs)
	}
	if len(groups[0]) != 2 || groups[1][0] != 2 {
		t.Fatalf("kind groups: %v", groups)
	}
	// A hash split of a mix interleaves generations; runs recompress
	// per domain.
	ts = TopologySpec{Mix: []MixEntry{{Kind: "minsky", Count: 2}, {Kind: "dgx1", Count: 2}}, Domains: "hash:2"}
	_, subs, _, err = ts.PartitionDomains(0)
	if err != nil {
		t.Fatal(err)
	}
	if subs[0].Key() != "mix[minsky:1+dgx1:1]" || subs[1].Key() != "mix[minsky:1+dgx1:1]" {
		t.Fatalf("hash-split mix: %q, %q", subs[0].Key(), subs[1].Key())
	}
}

func TestGridDomainsValidation(t *testing.T) {
	g := testGrid()
	g.Domains = []string{}
	if err := g.Validate(); err == nil {
		t.Fatal("empty domains axis accepted")
	}
	g.Domains = []string{"warp:3"}
	if err := g.Validate(); err == nil {
		t.Fatal("bad domains value accepted")
	}
	g.Domains = []string{"", "hash:2"}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid domains axis rejected: %v", err)
	}
	// A spec-pinned split conflicts with the axis.
	g.Topologies = []TopologySpec{{Builder: "minsky", Domains: "hash:2"}}
	if err := g.Validate(); err == nil {
		t.Fatal("pinned domains + domains axis accepted")
	}
	g.Domains = nil
	if err := g.Validate(); err != nil {
		t.Fatalf("pinned domains rejected: %v", err)
	}
	// Sharding needs the sim engine on generated workloads.
	g.Source = SourceTable1
	if err := g.Validate(); err == nil {
		t.Fatal("sharded Table 1 grid accepted")
	}
	g.Source = SourceGenerated
	g.Engine = EngineProto
	if err := g.Validate(); err == nil {
		t.Fatal("sharded proto grid accepted")
	}
}

// stripOneDomainMarkers removes every trace of a domains[hash:1] axis
// from a serialized report, so a 1-domain run can be compared byte for
// byte against an unsharded artifact: the grid's axis entry, the
// per-spec domains field, and the cell-key/CSV marker.
var (
	gridDomainsRe = regexp.MustCompile(`,\n\s*"domains": \[\n\s*"hash:1"\n\s*\]`)
	specDomainsRe = regexp.MustCompile(`,\n\s*"domains": "hash:1"`)
)

func stripOneDomainMarkers(b []byte) []byte {
	b = gridDomainsRe.ReplaceAll(b, nil)
	b = specDomainsRe.ReplaceAll(b, nil)
	return bytes.ReplaceAll(b, []byte("/domains[hash:1]"), nil)
}

// TestShardedOneDomainMatchesGoldens is the sharded counterpart of
// TestWakeIndexEquivalence: scheduling through the domain router, the
// sharded simulator and the merge path with a single domain must
// reproduce the committed smoke/hetero/priority goldens byte for byte —
// same substrate, same seed, identity GPU map. The goldens are the ones
// CI's bench gate regenerates, so this pins the sharded engine to the
// exact artifacts every previous release produced.
func TestShardedOneDomainMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full grids")
	}
	for _, name := range []string{"smoke", "hetero", "priority"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			golden, err := os.ReadFile("testdata/golden_" + name + ".json")
			if err != nil {
				t.Fatal(err)
			}
			g, err := Named(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			g.Domains = []string{"hash:1"}
			rep, err := Run(g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			js, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(js, []byte(`"domains": "hash:1"`)) {
				t.Fatal("sharded run did not record the domain split — the equivalence is vacuous")
			}
			got := stripOneDomainMarkers(js)
			if !bytes.Equal(got, golden) {
				t.Fatalf("1-domain %s run differs from golden (%d vs %d bytes)", name, len(got), len(golden))
			}
		})
	}
}

// TestGoldenShardedBaseline keeps the committed sharded baseline honest:
// it must load, self-diff clean, and cover every partition strategy.
// (CI's shard job diffs a fresh `sharded` grid run against it;
// regenerate with
// `go run ./cmd/toposweep -grid sharded -out internal/sweep/testdata/golden_sharded.json`
// whenever an intentional behavior change shifts the numbers.)
func TestGoldenShardedBaseline(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_sharded.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(data, "golden_sharded")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Name != "sharded" || len(rep.Cells) == 0 {
		t.Fatalf("sharded baseline is grid %q with %d cells", rep.Grid.Name, len(rep.Cells))
	}
	seen := map[string]bool{}
	for _, c := range rep.Cells {
		seen[c.Topology.Domains] = true
	}
	for _, dom := range []string{"", "hash:4", "block:4", "kind"} {
		if !seen[dom] {
			t.Fatalf("sharded baseline covers domains %v; missing %q", seen, dom)
		}
	}
	if d := Diff(rep, rep, DiffOptions{}); d.HasRegressions() {
		t.Fatalf("sharded golden self-diff not clean:\n%s", d.Markdown())
	}
}

// TestShardedDeterminismAcrossWorkerCounts pins the merge contract on a
// genuinely multi-domain grid: 1 worker and 8 workers must serialize to
// identical bytes, both for the sweep pool and the per-domain workers
// underneath RunSharded.
func TestShardedDeterminismAcrossWorkerCounts(t *testing.T) {
	g := Grid{
		Name:           "shard-det",
		Policies:       []sched.Policy{sched.TopoAwareP},
		Topologies:     []TopologySpec{{Builder: "minsky"}},
		Machines:       []int{6},
		Jobs:           []int{40},
		Domains:        []string{"hash:3"},
		Replicas:       2,
		BaseSeed:       7,
		RatePerMachine: 2,
	}
	rep1, err := Run(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := Run(g, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	js1, _ := rep1.JSON()
	js8, _ := rep8.JSON()
	if !bytes.Equal(js1, js8) {
		t.Fatal("sharded sweep artifacts differ across worker counts")
	}
	if !bytes.Equal(rep1.CSV(), rep8.CSV()) {
		t.Fatal("sharded CSV artifacts differ across worker counts")
	}
	for _, p := range rep1.Points {
		if p.JobsFinished != p.Point.Jobs {
			t.Fatalf("point %d finished %d of %d jobs", p.Index, p.JobsFinished, p.Point.Jobs)
		}
	}
}
