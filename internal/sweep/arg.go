package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"gputopo/internal/schedcore/domains"
	"gputopo/internal/topology"
)

// ParseTopologyArg parses the compact topology syntax used in cell keys
// and CLI flags (the inverse of TopologySpec.Key, minus weight
// overrides) into a validated spec:
//
//	minsky                 one Minsky machine (count from context)
//	dgx1:4                 four DGX-1 machines
//	mix[minsky:2+dgx1:1]   heterogeneous cluster (degraded kinds like
//	                       minsky-1g:1 included)
//	matrix[dgx1.matrix]:3  a discovered machine stamped three times
//
// A trailing /domains[...] segment declares sharded multi-domain
// scheduling (docs/sharding.md), e.g. "minsky:8/domains[hash:4]".
//
// cmd/toposerve resolves its -topology flag through this, so a grid cell
// key pasted from a sweep artifact serves the identical substrate.
func ParseTopologyArg(s string) (TopologySpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return TopologySpec{}, fmt.Errorf("sweep: empty topology spec")
	}
	var ts TopologySpec
	// Strip the domains extension first: it always trails the topology
	// source, so a matrix path containing "/domains[" cannot be confused
	// with it unless it also ends the argument.
	if i := strings.LastIndex(s, "/domains["); i >= 0 && strings.HasSuffix(s, "]") {
		inner := s[i+len("/domains[") : len(s)-1]
		sp, err := domains.Parse(inner)
		if err != nil {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: %w", s, err)
		}
		if !sp.Enabled() {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: empty domains[] — omit the segment for single-core scheduling", s)
		}
		ts.Domains = sp.Key()
		s = s[:i]
	}
	rest := s
	switch {
	case strings.HasPrefix(s, "mix["):
		end := strings.Index(s, "]")
		if end < 0 {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: unterminated mix[", s)
		}
		specs, err := topology.ParseMix(s[len("mix["):end])
		if err != nil {
			return TopologySpec{}, err
		}
		for _, sp := range specs {
			ts.Mix = append(ts.Mix, MixEntry{Kind: sp.Label(), Count: sp.Count})
		}
		rest = s[end+1:]
		if rest != "" {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: a mix pins its own machine count", s)
		}
	case strings.HasPrefix(s, "matrix["):
		end := strings.Index(s, "]")
		if end < 0 {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: unterminated matrix[", s)
		}
		ts.MatrixFile = s[len("matrix["):end]
		rest = s[end+1:]
	default:
		// builder[:count] — count is the suffix after the LAST colon so
		// builder aliases keep their dashes and digits.
		name := s
		if i := strings.LastIndex(s, ":"); i >= 0 {
			name, rest = s[:i], s[i:]
		} else {
			rest = ""
		}
		ts.Builder = name
	}
	if rest != "" {
		count, ok := strings.CutPrefix(rest, ":")
		if !ok {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: trailing %q", s, rest)
		}
		n, err := strconv.Atoi(count)
		if err != nil || n < 1 {
			return TopologySpec{}, fmt.Errorf("sweep: topology %q: machine count %q must be an integer >= 1", s, count)
		}
		ts.Machines = n
	}
	if err := ts.Validate(); err != nil {
		return TopologySpec{}, err
	}
	return ts, nil
}
