package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gputopo/internal/topology"
)

func TestParseGridSpecValid(t *testing.T) {
	g, err := ParseGridSpec([]byte(`{
		"name": "adhoc",
		"policies": ["FCFS", "TOPO-AWARE-P"],
		"topologies": [
			{"builder": "minsky", "machines": 4},
			{"builder": "dgx1", "machines": 2, "weights": {"socket": 40}}
		],
		"jobs": [50],
		"alphas_cc": [0.5],
		"replicas": 2,
		"base_seed": 42
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Points()) != 2*2*2 {
		t.Fatalf("points = %d, want 8", len(g.Points()))
	}
	if g.Topologies[1].Weights.Socket != 40 {
		t.Fatalf("weights lost: %+v", g.Topologies[1])
	}
	// Pinned machine counts flow into the points.
	if pts := g.Points(); pts[0].Machines != 4 || pts[len(pts)-1].Machines != 2 {
		t.Fatalf("pinned machine counts not applied: %d/%d", pts[0].Machines, pts[len(pts)-1].Machines)
	}
}

// errCase asserts ParseGridSpec rejects the spec with an error mentioning
// every fragment.
func errCase(t *testing.T, label, spec string, fragments ...string) {
	t.Helper()
	_, err := ParseGridSpec([]byte(spec))
	if err == nil {
		t.Fatalf("%s: spec accepted", label)
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Fatalf("%s: error %q does not mention %q", label, err, f)
		}
	}
}

func TestParseGridSpecErrors(t *testing.T) {
	errCase(t, "malformed JSON", `{"name": "x",`)
	errCase(t, "trailing data", `{"name": "x"} {"name": "y"}`, "trailing")
	errCase(t, "unknown field", `{"name": "x", "polices": ["FCFS"]}`, "polices")
	errCase(t, "unknown policy", `{"policies": ["SJF"]}`, "SJF")
	errCase(t, "unknown engine", `{"engine": "fpga"}`, "fpga")
	errCase(t, "unknown source", `{"source": "replay"}`, "replay")
	errCase(t, "empty policies axis", `{"policies": []}`, "policies", "empty")
	errCase(t, "empty machines axis", `{"machines": []}`, "machines", "empty")
	errCase(t, "empty topologies axis", `{"topologies": []}`, "topologies", "empty")
	errCase(t, "bad topology builder", `{"topologies": [{"builder": "tpu-pod"}]}`, "tpu-pod")
	errCase(t, "negative spec machines", `{"topologies": [{"machines": -1}]}`, "machines")
	errCase(t, "negative weight", `{"topologies": [{"weights": {"socket": -3}}]}`, "socket")
	errCase(t, "zero machines", `{"machines": [0]}`, "machines")
	errCase(t, "negative jobs", `{"jobs": [-5]}`, "jobs")
	errCase(t, "alpha out of range", `{"alphas_cc": [1.5]}`, "alphas_cc")
	errCase(t, "threshold out of range", `{"thresholds": [2]}`, "thresholds")
	errCase(t, "negative replicas", `{"replicas": -1}`, "replicas")
	errCase(t, "negative rate", `{"rate_per_machine": -2}`, "rate_per_machine")
	errCase(t, "pinned machines with machines axis",
		`{"topologies": [{"builder": "minsky", "machines": 2}], "machines": [2]}`,
		"machines axis")
}

// writeMatrixFile drops a rendered connectivity matrix into a temp dir
// and returns its path.
func writeMatrixFile(t *testing.T, topo *topology.Topology) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "machine.matrix")
	if err := os.WriteFile(path, []byte(topo.RenderMatrix()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseGridSpecMixAndMatrixErrors(t *testing.T) {
	errCase(t, "mix with builder",
		`{"topologies": [{"builder": "minsky", "mix": [{"kind": "dgx1", "count": 1}]}]}`,
		"mix and builder")
	errCase(t, "mix with matrix_file",
		`{"topologies": [{"mix": [{"kind": "dgx1", "count": 1}], "matrix_file": "x"}]}`,
		"mix and matrix_file")
	errCase(t, "mix with pinned machines",
		`{"topologies": [{"mix": [{"kind": "dgx1", "count": 1}], "machines": 2}]}`,
		"pins its own machine count")
	errCase(t, "mix with unknown kind",
		`{"topologies": [{"mix": [{"kind": "tpu-pod", "count": 1}]}]}`,
		"tpu-pod")
	errCase(t, "mix with zero count",
		`{"topologies": [{"mix": [{"kind": "dgx1", "count": 0}]}]}`,
		"count >= 1")
	errCase(t, "empty mix",
		`{"topologies": [{"mix": []}]}`,
		"mix is present but empty")
	errCase(t, "mix with machines axis",
		`{"topologies": [{"mix": [{"kind": "dgx1", "count": 1}]}], "machines": [2]}`,
		"machines axis")
	errCase(t, "matrix_file missing",
		`{"topologies": [{"matrix_file": "no/such/file.matrix"}]}`,
		"no/such/file.matrix")
	errCase(t, "matrix_file with builder",
		`{"topologies": [{"builder": "dgx1", "matrix_file": "x"}]}`,
		"matrix_file and builder")
	badMatrix := filepath.Join(t.TempDir(), "bad.matrix")
	if err := os.WriteFile(badMatrix, []byte("not a matrix at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	errCase(t, "matrix_file unparseable",
		`{"topologies": [{"matrix_file": "`+badMatrix+`"}]}`,
		"matrix")
}

func TestMixSpecKeyBuildAndPoints(t *testing.T) {
	spec := TopologySpec{Mix: []MixEntry{{Kind: "minsky", Count: 2}, {Kind: "dgx1", Count: 1}}}
	if got, want := spec.Key(), "mix[minsky:2+dgx1:1]"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if got := spec.EffectiveMachines(7); got != 3 {
		t.Fatalf("EffectiveMachines = %d, want 3 (mix pins its total)", got)
	}
	topo, err := spec.Build(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 2*4+8 || topo.NumMachines() != 3 {
		t.Fatalf("mix built %d GPUs on %d machines", topo.NumGPUs(), topo.NumMachines())
	}

	g, err := ParseGridSpec([]byte(`{
		"name": "hetero-adhoc",
		"policies": ["TOPO-AWARE-P"],
		"topologies": [{"mix": [{"kind": "minsky", "count": 2}, {"kind": "dgx1", "count": 1}]}],
		"jobs": [10],
		"base_seed": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Points()
	if len(pts) != 1 || pts[0].Machines != 3 {
		t.Fatalf("mix grid expanded to %d points, machines %d", len(pts), pts[0].Machines)
	}
}

func TestMatrixFileSpecKeyAndBuild(t *testing.T) {
	path := writeMatrixFile(t, topology.DGX1())
	spec := TopologySpec{MatrixFile: path, Machines: 2}
	if got, want := spec.Key(), "matrix["+path+"]:2"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cluster build stamps the parsed machine per machine count.
	topo, err := spec.Build(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 16 || topo.NumMachines() != 2 {
		t.Fatalf("matrix cluster built %d GPUs on %d machines", topo.NumGPUs(), topo.NumMachines())
	}
	// Standalone single-machine build goes through ParseMatrix directly.
	topo, err = TopologySpec{MatrixFile: path}.Build(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 8 || topo.NumMachines() != 1 {
		t.Fatalf("standalone matrix build: %d GPUs on %d machines", topo.NumGPUs(), topo.NumMachines())
	}
}

// TestHeteroAndMatrixSweep runs a real sweep over a mixed cluster and a
// discovered-matrix substrate and checks both land in distinct cells.
func TestHeteroAndMatrixSweep(t *testing.T) {
	path := writeMatrixFile(t, topology.Power8Minsky())
	g := Grid{
		Name: "hetero-matrix",
		Topologies: []TopologySpec{
			{Mix: []MixEntry{{Kind: "minsky", Count: 1}, {Kind: "dgx1", Count: 1}}},
			{MatrixFile: path, Machines: 2},
		},
		Jobs:           []int{10},
		BaseSeed:       7,
		RatePerMachine: 2,
	}
	rep, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(rep.Cells))
	}
	csv := string(rep.CSV())
	if !strings.Contains(csv, "mix[minsky:1+dgx1:1]") || !strings.Contains(csv, "matrix["+path+"]:2") {
		t.Fatalf("CSV missing hetero/matrix topology keys:\n%s", csv)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range GridNames() {
		g, err := Named(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		js, err := g.SpecJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseGridSpec(js)
		if err != nil {
			t.Fatalf("grid %q template does not parse back: %v", name, err)
		}
		if len(back.Points()) != len(g.Points()) {
			t.Fatalf("grid %q round-trip changed point count %d -> %d",
				name, len(g.Points()), len(back.Points()))
		}
	}
}

func TestTopologySpecKeyAndBuild(t *testing.T) {
	cases := []struct {
		spec TopologySpec
		key  string
	}{
		{TopologySpec{}, "minsky"},
		{TopologySpec{Builder: "dgx1", Machines: 2}, "dgx1:2"},
		{TopologySpec{Builder: "pcie", Weights: &topology.LevelWeights{Socket: 5}}, "pcie[socket=5]"},
		{TopologySpec{Weights: &topology.LevelWeights{GPUPeer: 2, Machine: 50}}, "minsky[gpupeer=2;machine=50]"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.key {
			t.Fatalf("Key() = %q, want %q", got, c.key)
		}
	}

	// Standalone build matches the plain builders.
	topo, err := TopologySpec{}.Build(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := topology.Power8Minsky(); topo.Name != want.Name || topo.NumGPUs() != want.NumGPUs() {
		t.Fatalf("standalone minsky built %q with %d GPUs", topo.Name, topo.NumGPUs())
	}
	// Cluster build for generated workloads, even at one machine.
	topo, err = TopologySpec{}.Build(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := topology.Cluster(1, topology.KindMinsky); topo.Name != want.Name {
		t.Fatalf("generated single-machine topology %q, want %q", topo.Name, want.Name)
	}
	// DGX-1 cluster has 8 GPUs per machine.
	topo, err = TopologySpec{Builder: "dgx1", Machines: 2}.Build(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 16 {
		t.Fatalf("dgx1:2 has %d GPUs, want 16", topo.NumGPUs())
	}
	if _, err := (TopologySpec{Builder: "bogus"}).Build(1, false); err == nil {
		t.Fatal("bogus builder did not error")
	}
}

// TestTopologyAxisSweep runs a real sweep over the topology axis and
// checks that the axis lands in cells, keys and artifacts.
func TestTopologyAxisSweep(t *testing.T) {
	g := Grid{
		Name: "topo-axis",
		Topologies: []TopologySpec{
			{Builder: "minsky", Machines: 2},
			{Builder: "pcie", Machines: 2},
		},
		Jobs:           []int{10},
		BaseSeed:       7,
		RatePerMachine: 2,
	}
	rep, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2*4 {
		t.Fatalf("points = %d, want 8", len(rep.Points))
	}
	if len(rep.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(rep.Cells))
	}
	keys := map[string]bool{}
	for _, c := range rep.Cells {
		keys[c.Key()] = true
	}
	if len(keys) != 8 {
		t.Fatalf("cell keys collide across topologies: %v", keys)
	}
	// The same workload stream placed on NVLink vs PCIe machines must not
	// be identical in every metric — otherwise the axis is not reaching
	// the engine.
	if rep.Cells[0].Makespan.Mean == rep.Cells[4].Makespan.Mean &&
		rep.Cells[0].TotalWait.Mean == rep.Cells[4].TotalWait.Mean &&
		rep.Cells[0].MeanQoS.Mean == rep.Cells[4].MeanQoS.Mean {
		t.Fatal("minsky and pcie cells are metric-identical; topology axis ineffective")
	}
	csv := string(rep.CSV())
	if !strings.Contains(csv, "minsky:2") || !strings.Contains(csv, "pcie:2") {
		t.Fatalf("CSV missing topology keys:\n%s", csv)
	}
}

// TestMatrixFileResolvesAgainstSpecDir proves spec files are relocatable:
// a matrix_file path relative to the spec file's directory resolves even
// when the working directory is somewhere else entirely.
func TestMatrixFileResolvesAgainstSpecDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "machine.matrix"),
		[]byte(topology.DGX1().RenderMatrix()), 0o644); err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(`{
		"name": "relocatable",
		"policies": ["FCFS"],
		"topologies": [{"matrix_file": "machine.matrix", "machines": 2}],
		"jobs": [5],
		"base_seed": 7
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// The working directory (the package dir) has no machine.matrix, so
	// only spec-dir resolution can make this load.
	g, err := LoadGridSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.Topologies[0].Build(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 16 || topo.NumMachines() != 2 {
		t.Fatalf("built %d GPUs on %d machines", topo.NumGPUs(), topo.NumMachines())
	}
	// The artifact key records the path exactly as written — resolution
	// must not leak temp-dir prefixes into cell keys.
	if got, want := g.Topologies[0].Key(), "matrix[machine.matrix]:2"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

// TestMatrixFileSpecDirFallsBackToCWD keeps the legacy behavior: when the
// path does not exist next to the spec file, it resolves against the
// working directory (how examples/sweeps/hetero.json addresses its
// matrix from the repo root).
func TestMatrixFileSpecDirFallsBackToCWD(t *testing.T) {
	cwd := t.TempDir()
	if err := os.MkdirAll(filepath.Join(cwd, "shared"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cwd, "shared", "machine.matrix"),
		[]byte(topology.DGX1().RenderMatrix()), 0o644); err != nil {
		t.Fatal(err)
	}
	specDir := t.TempDir() // no matrix here
	specPath := filepath.Join(specDir, "grid.json")
	if err := os.WriteFile(specPath, []byte(`{
		"name": "cwd-fallback",
		"policies": ["FCFS"],
		"topologies": [{"matrix_file": "shared/machine.matrix", "machines": 1}],
		"jobs": [5],
		"base_seed": 7
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(cwd)
	g, err := LoadGridSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.Topologies[0].Build(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 8 {
		t.Fatalf("built %d GPUs, want 8", topo.NumGPUs())
	}
}

// TestMatrixFileBareSpecUsesCWD covers specs with no file origin (named
// grids, hand-built TopologySpec values): resolution stays working-
// directory based.
func TestMatrixFileBareSpecUsesCWD(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "m.matrix"),
		[]byte(topology.DGX1().RenderMatrix()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	spec := TopologySpec{MatrixFile: "m.matrix"}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(1, true); err != nil {
		t.Fatal(err)
	}
}

// TestMixSpecDegradedKinds covers the "-<n>g" degraded-machine syntax at
// the sweep layer: key rendering, building, validation errors, and grid
// expansion through a spec file.
func TestMixSpecDegradedKinds(t *testing.T) {
	spec := TopologySpec{Mix: []MixEntry{{Kind: "minsky", Count: 2}, {Kind: "minsky-1g", Count: 1}}}
	if got, want := spec.Key(), "mix[minsky:2+minsky-1g:1]"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	topo, err := spec.Build(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumGPUs() != 2*4+3 || topo.NumMachines() != 3 {
		t.Fatalf("degraded mix built %d GPUs on %d machines, want 11 on 3", topo.NumGPUs(), topo.NumMachines())
	}

	// Too many failed GPUs must fail validation before any simulation.
	bad := TopologySpec{Mix: []MixEntry{{Kind: "minsky-4g", Count: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("minsky-4g (no GPUs left) accepted")
	}

	g, err := ParseGridSpec([]byte(`{
		"name": "degraded-adhoc",
		"policies": ["TOPO-AWARE-P"],
		"topologies": [{"mix": [{"kind": "dgx1-5g", "count": 1}, {"kind": "pcie", "count": 1}]}],
		"jobs": [5],
		"base_seed": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Points()
	if len(pts) != 1 || pts[0].Machines != 2 {
		t.Fatalf("degraded grid expanded to %d points, machines %d", len(pts), pts[0].Machines)
	}
	if _, err := Run(g, Options{Workers: 2}); err != nil {
		t.Fatalf("degraded-mix grid failed to run: %v", err)
	}
}
