package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"gputopo/internal/topology"
)

// TestParseTopologyArgRoundTrip pins the arg syntax against Key(): a
// parsed spec's key reproduces the input for every supported form.
func TestParseTopologyArgRoundTrip(t *testing.T) {
	matrix := filepath.Join(t.TempDir(), "m.matrix")
	if err := os.WriteFile(matrix, []byte(topology.DGX1().RenderMatrix()), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		arg      string
		key      string // "" = same as arg
		machines int    // expected EffectiveMachines(1)
		gpus     int    // expected NumGPUs of the built topology
	}{
		{"minsky", "", 1, 4},
		{"dgx1:2", "", 2, 16},
		{"pcie:3", "", 3, 12},
		{"mix[minsky:2+dgx1:1]", "", 3, 16},
		{"mix[minsky:1+minsky-1g:1]", "", 2, 7},
		{matrix, "matrix[" + matrix + "]:3", 3, 24},
	}
	for _, tc := range cases {
		arg := tc.arg
		if tc.key != "" {
			arg = tc.key // matrix case: parse the key form
		}
		ts, err := ParseTopologyArg(arg)
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if got := ts.Key(); got != arg {
			t.Fatalf("Key round trip: %q -> %q", arg, got)
		}
		if got := ts.EffectiveMachines(1); got != tc.machines {
			t.Fatalf("%s: machines = %d, want %d", arg, got, tc.machines)
		}
		topo, err := ts.Build(ts.EffectiveMachines(1), false)
		if err != nil {
			t.Fatal(err)
		}
		if topo.NumGPUs() != tc.gpus {
			t.Fatalf("%s: %d GPUs, want %d", arg, topo.NumGPUs(), tc.gpus)
		}
	}
}

// TestParseTopologyArgErrors rejects malformed and invalid args with
// named errors instead of building something surprising.
func TestParseTopologyArgErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"nosuch",
		"minsky:0",
		"minsky:x",
		"mix[minsky:2",
		"mix[minsky:2]:3", // a mix pins its own count
		"mix[]",
		"matrix[/no/such/file.matrix]",
		"mix[minsky-4g:1]", // no GPUs left
	} {
		if _, err := ParseTopologyArg(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
