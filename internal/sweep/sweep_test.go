package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gputopo/internal/sched"
	"gputopo/internal/stats"
)

// testGrid is small enough to run in well under a second but still spans
// every axis: 4 policies × 1 machine count × 2 job counts × 2 replicas.
func testGrid() Grid {
	return Grid{
		Name:           "test",
		Machines:       []int{2},
		Jobs:           []int{20, 40},
		Replicas:       2,
		BaseSeed:       7,
		RatePerMachine: 2,
	}
}

func TestGridExpansion(t *testing.T) {
	pts := testGrid().Points()
	if len(pts) != 4*2*2 {
		t.Fatalf("points = %d, want 16", len(pts))
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
	}
	// Policies vary innermost: the first four points share one workload.
	for i := 1; i < 4; i++ {
		if pts[i].Seed != pts[0].Seed || pts[i].Jobs != pts[0].Jobs {
			t.Fatalf("point %d does not share the first point's workload", i)
		}
		if pts[i].Policy == pts[0].Policy {
			t.Fatalf("point %d repeats policy %v", i, pts[0].Policy)
		}
	}
	// Replicas of one cell get distinct derived seeds.
	if pts[0].Seed == pts[4].Seed {
		t.Fatal("replica 0 and 1 share a seed")
	}
	// Expansion is a pure function: expanding twice gives identical points.
	again := testGrid().Points()
	for i := range pts {
		if pts[i].Seed != again[i].Seed || pts[i].cellKey() != again[i].cellKey() {
			t.Fatalf("expansion not deterministic at point %d", i)
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	if stats.DeriveSeed(1, "a") == stats.DeriveSeed(1, "b") {
		t.Fatal("different keys collide")
	}
	if stats.DeriveSeed(1, "a") == stats.DeriveSeed(2, "a") {
		t.Fatal("different bases collide")
	}
	if stats.DeriveSeed(1, "a") != stats.DeriveSeed(1, "a") {
		t.Fatal("derivation not pure")
	}
	seeds := stats.ReplicaSeeds(42, 5)
	longer := stats.ReplicaSeeds(42, 8)
	for i := range seeds {
		if seeds[i] != longer[i] {
			t.Fatalf("replica %d seed changed when more replicas requested", i)
		}
	}
	// Grids inherit the same continuity: growing Replicas from 1 to 2
	// must not change replica 0's seed.
	one := Grid{BaseSeed: 42, Replicas: 1}.Points()
	two := Grid{BaseSeed: 42, Replicas: 2}.Points()
	if one[0].Seed != two[0].Seed {
		t.Fatalf("replica 0 seed changed when grid grew: %d != %d", one[0].Seed, two[0].Seed)
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// serialized artifact is byte-identical whether the sweep runs serially
// or on a saturated pool.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := testGrid()
	serial, err := Run(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("JSON artifacts differ between -workers=1 and -workers=8:\nserial %d bytes, parallel %d bytes", len(sj), len(pj))
	}
	if !bytes.Equal(serial.CSV(), parallel.CSV()) {
		t.Fatal("CSV artifacts differ between worker counts")
	}
}

func TestReportShape(t *testing.T) {
	rep, err := Run(testGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 16 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// 4 policies × 2 job counts = 8 cells, 2 replicas each.
	if len(rep.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Replicas != 2 {
			t.Fatalf("cell %v replicas = %d", c.Policy, c.Replicas)
		}
		if c.Makespan.N != 2 || c.Makespan.Mean <= 0 {
			t.Fatalf("cell %v makespan summary %+v", c.Policy, c.Makespan)
		}
	}
	for _, p := range rep.Points {
		if p.JobsFinished != p.Point.Jobs {
			t.Fatalf("point %d finished %d of %d jobs", p.Index, p.JobsFinished, p.Point.Jobs)
		}
		if p.Sim == nil {
			t.Fatalf("point %d missing raw result", p.Index)
		}
		if p.Makespan <= 0 {
			t.Fatalf("point %d makespan %f", p.Index, p.Makespan)
		}
	}
	if out := rep.Render(); !strings.Contains(out, "TOPO-AWARE-P") {
		t.Fatal("render missing policy row")
	}
	// JSON round-trips through the enum marshalers.
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(js, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Points[0].Policy != rep.Points[0].Policy {
		t.Fatal("policy did not round-trip")
	}
	if lines := bytes.Count(rep.CSV(), []byte("\n")); lines != 17 {
		t.Fatalf("CSV lines = %d, want header+16", lines)
	}
}

func TestProtoEngineSweep(t *testing.T) {
	rep, err := Run(Grid{Name: "proto", Source: SourceTable1, Engine: EngineProto, BaseSeed: 42}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Proto == nil {
			t.Fatalf("point %d missing prototype result", p.Index)
		}
		if p.JobsFinished != 6 {
			t.Fatalf("point %d finished %d jobs, want 6 (Table 1)", p.Index, p.JobsFinished)
		}
	}
	if rep.ByPolicy(sched.TopoAwareP) == nil {
		t.Fatal("ByPolicy lookup failed")
	}
}

func TestNamedGrids(t *testing.T) {
	for _, name := range GridNames() {
		g, err := Named(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name != name {
			t.Fatalf("grid %q reports name %q", name, g.Name)
		}
		if len(g.Points()) == 0 {
			t.Fatalf("grid %q expands to zero points", name)
		}
		if GridDescription(name) == "" {
			t.Fatalf("grid %q has no description", name)
		}
	}
	if _, err := Named("no-such-grid", 1); err == nil {
		t.Fatal("unknown grid did not error")
	}
	if g, _ := Named("smoke", 42); len(g.Points()) < 24 {
		t.Fatalf("smoke grid has %d points, want >= 24", len(g.Points()))
	}
}

func TestForEachErrorAndOrder(t *testing.T) {
	out := make([]int, 50)
	err := ForEach(50, 8, func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	err = ForEach(10, 4, func(i int) error {
		if i == 3 || i == 7 {
			return errTest(i)
		}
		return nil
	})
	if err == nil || err.Error() != "err-3" {
		t.Fatalf("want lowest-index error err-3, got %v", err)
	}
}

type errTest int

func (e errTest) Error() string { return "err-" + string(rune('0'+int(e))) }
