package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"gputopo/internal/caffesim"
	"gputopo/internal/metrics"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/stats"
)

// PointResult pairs a point with the scalar metrics distilled from its
// run. The raw engine results are retained for callers (the experiments
// package rebuilds its figure structures from them) but excluded from
// serialization: artifacts carry only deterministic scalars.
type PointResult struct {
	Point
	Makespan        float64 `json:"makespan_s"`
	SLOViolations   int     `json:"slo_violations"`
	MeanQoS         float64 `json:"mean_slowdown_qos"`
	MeanQoSWait     float64 `json:"mean_slowdown_qos_wait"`
	TotalWait       float64 `json:"total_wait_s"`
	JobsFinished    int     `json:"jobs_finished"`
	Placements      int     `json:"placements"`
	Postponements   int     `json:"postponements"`
	SLOViolationPct float64 `json:"slo_violation_pct"`
	// Priority-class metrics, all zero — and omitted, keeping
	// pre-priority artifacts byte-identical — unless the workload carries
	// positive-priority jobs or the scheduler preempted.
	Preemptions int     `json:"preemptions,omitempty"`
	HighPriJobs int     `json:"high_pri_jobs,omitempty"`
	HighPriWait float64 `json:"high_pri_wait_s,omitempty"`

	// Sim is always populated; Proto only for EngineProto points.
	Sim   *simulator.Result `json:"-"`
	Proto *caffesim.Result  `json:"-"`
}

func newPointResult(p Point, out *RunOutput) PointResult {
	res := out.Sim
	pr := PointResult{
		Point:         p,
		Makespan:      res.Makespan,
		SLOViolations: res.SLOViolations(),
		MeanQoS:       res.MeanSlowdownQoS(),
		MeanQoSWait:   res.MeanSlowdownQoSWait(),
		TotalWait:     res.TotalWait(),
		JobsFinished:  len(res.Jobs),
		Placements:    res.SchedStats.Placements,
		Postponements: res.SchedStats.Postponements,
		Sim:           res,
		Proto:         out.Proto,
	}
	if pr.JobsFinished > 0 {
		pr.SLOViolationPct = 100 * float64(pr.SLOViolations) / float64(pr.JobsFinished)
	}
	pr.Preemptions = res.SchedStats.Preemptions
	var hiWait float64
	for _, jr := range res.Jobs {
		if jr.Job.Priority > 0 {
			pr.HighPriJobs++
			hiWait += jr.Wait
		}
	}
	if pr.HighPriJobs > 0 {
		pr.HighPriWait = hiWait / float64(pr.HighPriJobs)
	}
	return pr
}

// CellSummary aggregates the seed replicas of one grid cell (all axes
// except the replica) with descriptive statistics from internal/stats.
type CellSummary struct {
	Engine        Engine        `json:"engine"`
	Source        Source        `json:"source"`
	Policy        sched.Policy  `json:"policy"`
	Topology      TopologySpec  `json:"topology"`
	Machines      int           `json:"machines"`
	Jobs          int           `json:"jobs"`
	AlphaCC       float64       `json:"alpha_cc"`
	Threshold     float64       `json:"threshold"`
	Replicas      int           `json:"replicas"`
	Makespan      stats.Summary `json:"makespan_s"`
	MeanQoS       stats.Summary `json:"mean_slowdown_qos"`
	MeanQoSWait   stats.Summary `json:"mean_slowdown_qos_wait"`
	TotalWait     stats.Summary `json:"total_wait_s"`
	SLOViolations stats.Summary `json:"slo_violations"`
	// Discipline and the priority-class summaries appear only for cells
	// whose points set them, so pre-priority artifacts round-trip
	// byte-identically.
	Discipline  string         `json:"discipline,omitempty"`
	Preemptions *stats.Summary `json:"preemptions,omitempty"`
	HighPriWait *stats.Summary `json:"high_pri_wait_s,omitempty"`
}

// Key identifies the cell across reports: every axis except the replica,
// in a fixed order. Diffing two artifacts joins their cells by this key.
func (c CellSummary) Key() string {
	return cellKeyOf(c.Engine, c.Source, c.Policy, c.Topology, c.Machines, c.Jobs, c.AlphaCC, c.Threshold, c.Discipline)
}

// summarizeCells groups point results by cell, preserving first-seen
// order (which is deterministic because expansion is).
func summarizeCells(points []Point, results []PointResult) []CellSummary {
	type acc struct {
		first                                     Point
		makespan, qos, qosWait, totalWait, sloved []float64
		preempts, hiWait                          []float64
		hiJobs                                    int
	}
	order := []string{}
	cells := map[string]*acc{}
	for i, p := range points {
		k := p.cellKey()
		a := cells[k]
		if a == nil {
			a = &acc{first: p}
			cells[k] = a
			order = append(order, k)
		}
		a.makespan = append(a.makespan, results[i].Makespan)
		a.qos = append(a.qos, results[i].MeanQoS)
		a.qosWait = append(a.qosWait, results[i].MeanQoSWait)
		a.totalWait = append(a.totalWait, results[i].TotalWait)
		a.sloved = append(a.sloved, float64(results[i].SLOViolations))
		a.preempts = append(a.preempts, float64(results[i].Preemptions))
		a.hiWait = append(a.hiWait, results[i].HighPriWait)
		a.hiJobs += results[i].HighPriJobs
	}
	out := make([]CellSummary, 0, len(order))
	for _, k := range order {
		a := cells[k]
		c := CellSummary{
			Engine:        a.first.Engine,
			Source:        a.first.Source,
			Policy:        a.first.Policy,
			Topology:      a.first.Topology,
			Machines:      a.first.Machines,
			Jobs:          a.first.Jobs,
			AlphaCC:       a.first.AlphaCC,
			Threshold:     a.first.Threshold,
			Replicas:      len(a.makespan),
			Makespan:      stats.Summarize(a.makespan),
			MeanQoS:       stats.Summarize(a.qos),
			MeanQoSWait:   stats.Summarize(a.qosWait),
			TotalWait:     stats.Summarize(a.totalWait),
			SLOViolations: stats.Summarize(a.sloved),
			Discipline:    a.first.Discipline,
		}
		// The priority summaries exist only for cells that actually saw
		// high-priority jobs: cells of single-class workloads keep the
		// nil (omitted) fields their artifacts were recorded with.
		if a.hiJobs > 0 {
			hw := stats.Summarize(a.hiWait)
			pe := stats.Summarize(a.preempts)
			c.HighPriWait = &hw
			c.Preemptions = &pe
		}
		out = append(out, c)
	}
	return out
}

// Report is the aggregated outcome of one sweep. Elapsed and Workers
// describe the execution, not the results, and stay out of the serialized
// artifact so that worker count and machine speed cannot perturb it.
type Report struct {
	Grid   Grid          `json:"grid"`
	Points []PointResult `json:"points"`
	Cells  []CellSummary `json:"cells"`

	Elapsed time.Duration `json:"-"`
	Workers int           `json:"-"`
}

// ByPolicy returns the lowest-indexed point result with the given policy,
// or nil when the grid never ran it. On a single-cell grid (only the
// policy axis varied) that is the cell's result for the policy; on a
// multi-cell grid it is merely the first matching point, so callers
// comparing policies across cells should walk Points or Cells instead.
func (r *Report) ByPolicy(pol sched.Policy) *PointResult {
	for i := range r.Points {
		if r.Points[i].Policy == pol {
			return &r.Points[i]
		}
	}
	return nil
}

// JSON serializes the report deterministically (indented, stable field
// order, no volatile fields).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSV renders one row per point with a fixed column set, for spreadsheet
// and pandas consumption.
func (r *Report) CSV() []byte {
	var buf bytes.Buffer
	buf.WriteString("index,engine,source,policy,topology,machines,jobs,alpha_cc,threshold,replica,seed,discipline," +
		"makespan_s,slo_violations,mean_slowdown_qos,mean_slowdown_qos_wait,total_wait_s," +
		"jobs_finished,placements,postponements,preemptions,high_pri_jobs,high_pri_wait_s\n")
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, p := range r.Points {
		fmt.Fprintf(&buf, "%d,%s,%s,%s,%s,%d,%d,%s,%s,%d,%d,%s,%s,%d,%s,%s,%s,%d,%d,%d,%d,%d,%s\n",
			p.Index, p.Engine, p.Source, p.Policy, p.Topology.Key(), p.Point.Machines, p.Point.Jobs,
			f(p.AlphaCC), f(p.Point.Threshold), p.Replica, p.Seed, p.Discipline,
			f(p.Makespan), p.SLOViolations, f(p.MeanQoS), f(p.MeanQoSWait), f(p.TotalWait),
			p.JobsFinished, p.Placements, p.Postponements, p.Preemptions, p.HighPriJobs, f(p.HighPriWait))
	}
	return buf.Bytes()
}

// Render formats the report as an ASCII summary: the per-cell aggregate
// table plus the execution footer (points, workers, wall clock).
func (r *Report) Render() string {
	var rows [][]string
	for _, c := range r.Cells {
		alpha, th := "-", "-"
		if c.AlphaCC >= 0 {
			alpha = strconv.FormatFloat(c.AlphaCC, 'g', 3, 64)
		}
		if c.Threshold >= 0 {
			th = strconv.FormatFloat(c.Threshold, 'g', 3, 64)
		}
		rows = append(rows, []string{
			c.Policy.String(),
			c.Topology.Key(),
			fmt.Sprintf("%d", c.Machines),
			fmt.Sprintf("%d", c.Jobs),
			alpha,
			th,
			fmt.Sprintf("%d", c.Replicas),
			fmt.Sprintf("%.1f±%.1f", c.Makespan.Mean, c.Makespan.Stddev),
			fmt.Sprintf("%.3f", c.MeanQoS.Mean),
			fmt.Sprintf("%.1f", c.TotalWait.Mean),
			fmt.Sprintf("%.1f", c.SLOViolations.Mean),
		})
	}
	out := fmt.Sprintf("Sweep %q — %d points, %d cells (engine %s, source %s)\n",
		r.Grid.Name, len(r.Points), len(r.Cells), r.Grid.Engine, r.Grid.Source) +
		metrics.Table([]string{
			"policy", "topology", "machines", "jobs", "αcc", "thresh", "reps",
			"makespan(s)", "QoS slow", "wait(s)", "SLO-viol",
		}, rows)
	if r.Elapsed > 0 {
		out += fmt.Sprintf("\n%d points on %d workers in %s (%.1f points/s)\n",
			len(r.Points), r.Workers, r.Elapsed.Round(time.Millisecond),
			float64(len(r.Points))/r.Elapsed.Seconds())
	}
	return out
}

// SortPointsByCell orders a copy of the report's points by cell key then
// replica — handy for diffing two artifacts whose grids enumerated axes
// in different orders.
func (r *Report) SortPointsByCell() []PointResult {
	pts := append([]PointResult(nil), r.Points...)
	sort.SliceStable(pts, func(i, j int) bool {
		ki, kj := pts[i].cellKey(), pts[j].cellKey()
		if ki != kj {
			return ki < kj
		}
		return pts[i].Replica < pts[j].Replica
	})
	return pts
}
