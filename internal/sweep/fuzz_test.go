package sweep_test

import (
	"strings"
	"testing"

	"gputopo/internal/sweep"
)

// FuzzParseTopologyArg fuzzes the cell-key / -topology flag syntax.
// Accepted specs must reach a Key() fixed point — Key output reparses,
// and the reparse renders the same Key — because sweep artifacts and
// toposerve exchange substrates through exactly that string.
func FuzzParseTopologyArg(f *testing.F) {
	f.Add("minsky")
	f.Add("dgx1:4")
	f.Add("pcie:2")
	f.Add("power8-minsky:1")
	f.Add("mix[minsky:2+minsky-1g:1+dgx1:1]")
	f.Add("matrix[testdata/dgx1.matrix]:3")
	f.Add("matrix[testdata/dgx1.matrix]")
	f.Add("mix[")
	f.Add("minsky:0")
	f.Add("mix[minsky:2]:3")
	f.Add("minsky:8/domains[hash:4]")
	f.Add("mix[minsky:2+dgx1:2]/domains[kind]")
	f.Add("dgx1/domains[block:0]")
	f.Add(":")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1024 {
			t.Skip()
		}
		// Validate reads matrix[...] files; keep the fuzzer inside the
		// package directory so it cannot stumble into device files or
		// other blocking reads via absolute or parent-relative paths.
		if i := strings.Index(s, "matrix["); i >= 0 {
			file := s[i+len("matrix["):]
			if strings.HasPrefix(file, "/") || strings.HasPrefix(file, "~") || strings.Contains(file, "..") {
				t.Skip()
			}
		}
		ts, err := sweep.ParseTopologyArg(s)
		if err != nil {
			return
		}
		key := ts.Key()
		if key == "" {
			t.Fatalf("ParseTopologyArg(%q) accepted input but renders an empty key", s)
		}
		ts2, err := sweep.ParseTopologyArg(key)
		if err != nil {
			t.Fatalf("key %q of accepted spec %q does not reparse: %v", key, s, err)
		}
		if again := ts2.Key(); again != key {
			t.Fatalf("key is not a fixed point: %q -> %q -> %q", s, key, again)
		}
	})
}
