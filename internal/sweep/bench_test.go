package sweep

import (
	"runtime"
	"testing"
)

// benchGrid is the smoke grid's shape: 32 points of generated workloads.
func benchGrid() Grid {
	return Grid{
		Name:           "bench",
		Machines:       []int{2, 5},
		Jobs:           []int{40, 100},
		Replicas:       2,
		BaseSeed:       42,
		RatePerMachine: 2,
	}
}

// BenchmarkSweepSerial and BenchmarkSweepParallel bracket the worker
// pool: their ratio is the parallel speedup on the benchmark machine
// (≈1 on a single-core runner, approaching NumCPU on larger ones).
func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchGrid(), Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchGrid(), Options{Workers: runtime.NumCPU()}); err != nil {
			b.Fatal(err)
		}
	}
}
