// Package sweep is the concurrent scenario-sweep engine: it expands a
// grid of simulator configurations (policy × cluster size × job count ×
// α-weights × postponement thresholds × seed replicas) into points, fans
// the points across a bounded worker pool, and aggregates the results into
// machine-readable reports (JSON/CSV) with per-cell summary statistics.
//
// Determinism is the load-bearing property: grid expansion is serial and
// derives every point's random seed up front (stats.DeriveSeed), each
// point runs a self-contained simulation on freshly generated inputs, and
// results land in pre-assigned slots. A sweep therefore produces
// byte-identical artifacts whether it runs on one worker or sixteen —
// sweep_test.go asserts exactly that — which is what lets CI compare
// artifacts across commits and lets the experiments package replay paper
// figures through the same machinery.
package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gputopo/internal/caffesim"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/stats"
)

// Engine selects the execution engine for a point.
type Engine int

const (
	// EngineSim runs the trace-driven cluster simulator (§5.3).
	EngineSim Engine = iota
	// EngineProto runs the iteration-granularity prototype emulator (§5.1).
	EngineProto
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineSim:
		return "sim"
	case EngineProto:
		return "proto"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// MarshalJSON encodes the engine by name.
func (e Engine) MarshalJSON() ([]byte, error) { return json.Marshal(e.String()) }

// UnmarshalJSON decodes the engine from its name.
func (e *Engine) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "sim":
		*e = EngineSim
	case "proto":
		*e = EngineProto
	default:
		return fmt.Errorf("sweep: unknown engine %q", name)
	}
	return nil
}

// Source selects the workload of a point.
type Source int

const (
	// SourceGenerated draws a random §5.3 stream from the point's seed.
	SourceGenerated Source = iota
	// SourceTable1 replays the fixed six-job prototype scenario (Table 1).
	SourceTable1
)

// String names the workload source.
func (s Source) String() string {
	switch s {
	case SourceGenerated:
		return "generated"
	case SourceTable1:
		return "table1"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// MarshalJSON encodes the source by name.
func (s Source) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes the source from its name.
func (s *Source) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "generated":
		*s = SourceGenerated
	case "table1":
		*s = SourceTable1
	default:
		return fmt.Errorf("sweep: unknown source %q", name)
	}
	return nil
}

// NoOverride is the sentinel for axes that leave the engine default in
// place (α weights, postponement thresholds).
const NoOverride = -1

// Grid declares a scenario sweep as the cross product of its axes. Slice
// axes left nil default to a single neutral value, so a Grid only spells
// out the dimensions it actually varies.
type Grid struct {
	// Name labels the sweep in reports and artifacts.
	Name string `json:"name"`
	// Engine and Source apply to every point.
	Engine Engine `json:"engine"`
	Source Source `json:"source"`
	// Policies defaults to sched.AllPolicies().
	Policies []sched.Policy `json:"policies,omitempty"`
	// Topologies is the topology axis: each spec names a builder, an
	// optional pinned machine count and optional level-weight overrides.
	// Empty defaults to one zero spec — a Minsky cluster sized by the
	// Machines axis (the legacy behavior).
	Topologies []TopologySpec `json:"topologies,omitempty"`
	// Machines is the cluster-size axis (default {1}; ignored by
	// SourceTable1, which runs on one standalone machine, and by
	// topology specs that pin their own machine count).
	Machines []int `json:"machines,omitempty"`
	// Jobs is the workload-size axis (default {0}; ignored by
	// SourceTable1).
	Jobs []int `json:"jobs,omitempty"`
	// AlphasCC is the utility-weight axis: each value αcc gets weights
	// {αcc, (1-αcc)/2, (1-αcc)/2}; NoOverride keeps the engine default.
	AlphasCC []float64 `json:"alphas_cc,omitempty"`
	// Thresholds overrides every multi-GPU job's minimum utility;
	// NoOverride keeps the generated values.
	Thresholds []float64 `json:"thresholds,omitempty"`
	// Domains is the sharded-scheduling axis: each value is a domain spec
	// in domains.Parse syntax ("hash:4", "block:2", "kind"; "" keeps the
	// single-core engine), applied to every topology of the point. Left
	// nil it defaults to the single empty value — locally in Points, like
	// Disciplines, so recorded artifacts stay byte-identical. EngineSim +
	// generated workloads only.
	Domains []string `json:"domains,omitempty"`
	// Disciplines is the queue-discipline axis: "" or "fifo" (the default
	// arrival FIFO), "priority" (priority-then-arrival ordering), or
	// "priority-preempt" (priority ordering plus topology-aware
	// preemption). Left nil it defaults to the single empty value —
	// deliberately NOT filled in by withDefaults, so the Grid embedded in
	// existing artifacts stays byte-identical. EngineSim only.
	Disciplines []string `json:"disciplines,omitempty"`
	// PriorityShare is the fraction of generated jobs tagged Priority 1
	// (workload.GenConfig.HighPriorityShare). 0 keeps the single-class
	// streams every artifact was recorded with.
	PriorityShare float64 `json:"priority_share,omitempty"`
	// Seeds is the replica axis: each seed drives one workload/jitter
	// stream. Leave nil and set Replicas to derive seeds from BaseSeed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Replicas expands BaseSeed into this many derived seeds when Seeds
	// is nil (default 1 → {BaseSeed}).
	Replicas int    `json:"replicas,omitempty"`
	BaseSeed uint64 `json:"base_seed"`
	// RatePerMachine is the Poisson arrival rate in jobs/minute per
	// machine (scenario 1 pressure is 10 jobs/min on 5 machines = 2);
	// 0 keeps the generator's cluster-wide default of λ = 10.
	RatePerMachine float64 `json:"rate_per_machine,omitempty"`
	// SampleInterval and JitterStddev pass through to the engine config.
	SampleInterval float64 `json:"sample_interval,omitempty"`
	JitterStddev   float64 `json:"jitter_stddev,omitempty"`
}

// withDefaults fills neutral values for unspecified axes.
func (g Grid) withDefaults() Grid {
	if len(g.Policies) == 0 {
		g.Policies = sched.AllPolicies()
	}
	if len(g.Topologies) == 0 {
		g.Topologies = []TopologySpec{{}}
	}
	if len(g.Machines) == 0 {
		g.Machines = []int{1}
	}
	if len(g.Jobs) == 0 {
		g.Jobs = []int{0}
	}
	if len(g.AlphasCC) == 0 {
		g.AlphasCC = []float64{NoOverride}
	}
	if len(g.Thresholds) == 0 {
		g.Thresholds = []float64{NoOverride}
	}
	if len(g.Seeds) == 0 {
		n := g.Replicas
		if n <= 0 {
			n = 1
		}
		// Always derive, even for a single replica: replica i's seed must
		// not change when a grid later grows more replicas, or artifacts
		// stop being comparable across sweep configurations.
		g.Seeds = stats.ReplicaSeeds(g.BaseSeed, n)
	}
	return g
}

// Point is one fully resolved simulator configuration of a grid. Every
// field needed to reproduce the run is embedded — including the derived
// seed — so execution order cannot influence the result.
type Point struct {
	Index     int          `json:"index"`
	Engine    Engine       `json:"engine"`
	Source    Source       `json:"source"`
	Policy    sched.Policy `json:"policy"`
	Topology  TopologySpec `json:"topology"`
	Machines  int          `json:"machines"`
	Jobs      int          `json:"jobs"`
	AlphaCC   float64      `json:"alpha_cc"`
	Threshold float64      `json:"threshold"`
	Replica   int          `json:"replica"`
	Seed      uint64       `json:"seed"`
	// Discipline is the queue-discipline axis value; empty (the default
	// FIFO) is omitted so pre-discipline artifacts parse and re-serialize
	// unchanged.
	Discipline string `json:"discipline,omitempty"`

	grid Grid // expansion-time copy, for the default runner
}

// cellKey identifies the aggregation cell of a point: every axis except
// the seed replica. Replicas of one cell are summarized together. The
// format matches CellSummary.Key so point- and cell-level joins agree.
// The discipline suffix appears only when the axis is in play, keeping
// every pre-discipline key — and with it every recorded artifact and
// diff join — byte-identical.
func (p Point) cellKey() string {
	return cellKeyOf(p.Engine, p.Source, p.Policy, p.Topology, p.Machines, p.Jobs, p.AlphaCC, p.Threshold, p.Discipline)
}

func cellKeyOf(e Engine, s Source, pol sched.Policy, ts TopologySpec, machines, jobs int, alpha, th float64, disc string) string {
	k := fmt.Sprintf("%s/%s/%s/%s/m%d/j%d/a%g/t%g",
		e, s, pol, ts.Key(), machines, jobs, alpha, th)
	if disc != "" {
		k += "/d" + disc
	}
	return k
}

// Points expands the grid into its cross product. Expansion is serial and
// deterministic: point i of a given grid is always the same configuration
// with the same seed. Topologies vary outermost; policies vary innermost
// so the points comparing policies on one workload sit next to each other
// in reports. A point's Machines field records the effective machine
// count: the topology spec's pinned count when set, else the Machines-axis
// value.
func (g Grid) Points() []Point {
	g = g.withDefaults()
	// The discipline axis defaults locally rather than in withDefaults:
	// the Report embeds the defaulted Grid, so a global default would
	// rewrite the Grid section of every existing golden artifact.
	discs := g.Disciplines
	if len(discs) == 0 {
		discs = []string{""}
	}
	// The domains axis defaults locally for the same reason.
	doms := g.Domains
	if len(doms) == 0 {
		doms = []string{""}
	}
	var pts []Point
	for _, baseTS := range g.Topologies {
		for _, dom := range doms {
			ts := baseTS
			if dom != "" {
				// The axis value rides inside the point's topology spec, so
				// cell keys, CSV columns and the substrate cache pick it up
				// through TopologySpec.Key with no extra plumbing.
				ts.Domains = dom
			}
			for _, m := range g.Machines {
				for _, j := range g.Jobs {
					for _, a := range g.AlphasCC {
						for _, th := range g.Thresholds {
							for rep, seed := range g.Seeds {
								for _, disc := range discs {
									for _, pol := range g.Policies {
										pts = append(pts, Point{
											Index:      len(pts),
											Engine:     g.Engine,
											Source:     g.Source,
											Policy:     pol,
											Topology:   ts,
											Machines:   ts.EffectiveMachines(m),
											Jobs:       j,
											AlphaCC:    a,
											Threshold:  th,
											Replica:    rep,
											Seed:       seed,
											Discipline: disc,
											grid:       g,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// RunOutput is the raw engine result of one point. Proto is non-nil only
// for EngineProto points (Sim is always populated: the prototype result
// embeds a simulator.Result).
type RunOutput struct {
	Sim   *simulator.Result
	Proto *caffesim.Result
}

// Runner executes one point. The default runner covers the grid axes;
// experiments with bespoke per-point setup (e.g. Figure 5's batch-size
// series) supply their own via Options or use ForEach directly.
type Runner func(Point) (*RunOutput, error)

// Options tunes a sweep execution. The zero value runs the default runner
// on one worker per CPU.
type Options struct {
	// Workers bounds the pool; <=0 means runtime.NumCPU().
	Workers int
	// Runner overrides the default point runner.
	Runner Runner
	// Progress, when non-nil, is called after each completed point with
	// the number done so far and the total. Calls are serialized.
	Progress func(done, total int)
	// DisablePlaceCache runs the default runner's simulations without
	// the canonical-shape placement cache. Deterministic metrics are
	// identical either way; the cache-bench CI job uses the switch to
	// measure the on-vs-off wall-clock ratio. Ignored when Runner is
	// set.
	DisablePlaceCache bool
}

// ForEach runs fn(0..n-1) across a pool of at most workers goroutines
// (<=0 → NumCPU) and returns the error of the lowest-indexed failure.
// Callers write results into index i of a pre-sized slice, which keeps
// output order — and therefore serialized artifacts — independent of
// scheduling. The first failure stops dispatch: in-flight points finish,
// undispatched ones never start, so an early error on a long sweep does
// not burn the rest of the grid's wall clock.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run expands the grid and executes every point across the worker pool,
// returning the aggregated report. The report's serialized form is
// byte-identical for any worker count.
func Run(g Grid, opt Options) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.withDefaults()
	points := g.Points()
	runner := opt.Runner
	if runner == nil {
		// The default runner shares one substrate cache across all of this
		// Run's points: a grid's points overwhelmingly reuse a handful of
		// distinct topologies, and both the topology and its profile store
		// are immutable once built (see newSubstrateCache).
		c := newSubstrateCache()
		tweaks := schedTweaks{disablePlaceCache: opt.DisablePlaceCache}
		runner = func(p Point) (*RunOutput, error) { return c.runPoint(p, tweaks) }
	}
	results := make([]PointResult, len(points))
	var mu sync.Mutex
	done := 0
	err := ForEach(len(points), opt.Workers, func(i int) error {
		out, err := runner(points[i])
		if err != nil {
			return fmt.Errorf("sweep %s point %d (%s): %w", g.Name, i, points[i].cellKey(), err)
		}
		results[i] = newPointResult(points[i], out)
		if opt.Progress != nil {
			mu.Lock()
			done++
			opt.Progress(done, len(points))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Report{
		Grid:    g,
		Points:  results,
		Cells:   summarizeCells(points, results),
		Workers: workers,
	}, nil
}
