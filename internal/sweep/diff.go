package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"gputopo/internal/stats"
)

// The per-cell metrics the differ compares, in report order. Every base
// metric is compared as its replica mean plus two distribution shapes —
// stddev (run-to-run spread) and P95 (tail) — so a change that keeps the
// mean but fattens the tail still fails the gate once replica counts
// grow. Lower is better for all of them: shrinking variance or tail is
// an improvement, growing them a regression.
var diffMetrics = buildDiffMetrics()

type diffMetric struct {
	name string
	// kind is "" for the mean, "stddev" or "p95" for the distribution
	// companions; it selects the suffix-level tolerance default.
	kind string
	get  func(CellSummary) float64
}

func buildDiffMetrics() []diffMetric {
	bases := []struct {
		name string
		get  func(CellSummary) stats.Summary
	}{
		{"makespan_s", func(c CellSummary) stats.Summary { return c.Makespan }},
		{"mean_slowdown_qos", func(c CellSummary) stats.Summary { return c.MeanQoS }},
		{"mean_slowdown_qos_wait", func(c CellSummary) stats.Summary { return c.MeanQoSWait }},
		{"total_wait_s", func(c CellSummary) stats.Summary { return c.TotalWait }},
		{"slo_violations", func(c CellSummary) stats.Summary { return c.SLOViolations }},
		// Priority cells only: a nil summary compares as NaN, which
		// compareMetric treats as equal against another NaN (both cells
		// priority-free) and as a regression against a real value (the
		// metric vanished or appeared — either way the artifacts disagree
		// about what was measured).
		{"high_pri_wait_s", func(c CellSummary) stats.Summary {
			if c.HighPriWait == nil {
				nan := math.NaN()
				return stats.Summary{Mean: nan, Stddev: nan, P95: nan}
			}
			return *c.HighPriWait
		}},
	}
	var ms []diffMetric
	for _, b := range bases {
		get := b.get
		ms = append(ms,
			diffMetric{name: b.name, kind: "", get: func(c CellSummary) float64 { return get(c).Mean }},
			diffMetric{name: b.name + ".stddev", kind: "stddev", get: func(c CellSummary) float64 { return get(c).Stddev }},
			diffMetric{name: b.name + ".p95", kind: "p95", get: func(c CellSummary) float64 { return get(c).P95 }},
		)
	}
	return ms
}

// DiffMetricNames lists the metric names the differ compares (the keys
// accepted by DiffOptions.PerMetric), in output order: each base metric's
// mean, then its ".stddev" and ".p95" distribution companions.
func DiffMetricNames() []string {
	names := make([]string, len(diffMetrics))
	for i, m := range diffMetrics {
		names[i] = m.name
	}
	return names
}

// DiffOptions tunes the differ's tolerances. The zero value compares
// exactly: any increase of any metric is a regression. The distribution
// metrics (".stddev", ".p95") get their own suffix-level defaults —
// spread and tail estimates are noisier than means at small replica
// counts, so they usually want looser gates.
type DiffOptions struct {
	// RelTol is the default relative tolerance: a metric change counts
	// only when |new-old| > RelTol·|old|.
	RelTol float64
	// StddevRelTol, when > 0, replaces RelTol for every ".stddev"
	// metric.
	StddevRelTol float64
	// P95RelTol, when > 0, replaces RelTol for every ".p95" metric.
	P95RelTol float64
	// PerMetric overrides all of the above for individual metrics (keys
	// from DiffMetricNames).
	PerMetric map[string]float64
}

func (o DiffOptions) tol(m diffMetric) float64 {
	if t, ok := o.PerMetric[m.name]; ok {
		return t
	}
	switch m.kind {
	case "stddev":
		if o.StddevRelTol > 0 {
			return o.StddevRelTol
		}
	case "p95":
		if o.P95RelTol > 0 {
			return o.P95RelTol
		}
	}
	return o.RelTol
}

// DeltaStatus classifies one cell-metric comparison.
type DeltaStatus int

// Comparison outcomes. Every metric is lower-is-better, so an increase
// beyond tolerance is a regression and a decrease an improvement.
const (
	DeltaEqual DeltaStatus = iota
	DeltaImprovement
	DeltaRegression
)

// String names the status for tables and logs.
func (s DeltaStatus) String() string {
	switch s {
	case DeltaEqual:
		return "ok"
	case DeltaImprovement:
		return "improved"
	case DeltaRegression:
		return "REGRESSION"
	default:
		return fmt.Sprintf("DeltaStatus(%d)", int(s))
	}
}

// MetricDelta is one metric of one cell compared across two reports.
type MetricDelta struct {
	Cell   string
	Metric string
	Old    float64
	New    float64
	// Rel is (new-old)/|old|; ±Inf when old is zero and new is not, and
	// NaN when either side is NaN.
	Rel    float64
	Status DeltaStatus
}

// DiffResult is the deterministic join of two sweep reports by cell key.
type DiffResult struct {
	// OldName and NewName label the sides (grid names or file paths).
	OldName, NewName string
	// MissingCells are cell keys present in the old report but absent
	// from the new one — lost coverage, counted as regressions.
	MissingCells []string
	// AddedCells are cell keys only the new report has (informational).
	AddedCells []string
	// Deltas holds every compared cell-metric pair, in old-report cell
	// order then metric order.
	Deltas []MetricDelta
	// Regressions, Improvements and Unchanged count Deltas by status;
	// Regressions also counts MissingCells.
	Regressions  int
	Improvements int
	Unchanged    int
}

// HasRegressions reports whether any metric regressed beyond tolerance or
// any cell disappeared.
func (d *DiffResult) HasRegressions() bool { return d.Regressions > 0 }

// compareMetric classifies new against old under a relative tolerance.
// NaN on both sides is equal (the cell is consistently degenerate); NaN on
// one side is a regression — a metric silently becoming undefined (or
// recovering, which still demands a baseline refresh) must not pass CI.
func compareMetric(old, new, tol float64) (rel float64, status DeltaStatus) {
	oldNaN, newNaN := math.IsNaN(old), math.IsNaN(new)
	switch {
	case oldNaN && newNaN:
		return 0, DeltaEqual
	case oldNaN || newNaN:
		return math.NaN(), DeltaRegression
	}
	if old == new {
		return 0, DeltaEqual
	}
	if old == 0 {
		rel = math.Inf(1)
		if new < 0 {
			rel = math.Inf(-1)
		}
	} else {
		rel = (new - old) / math.Abs(old)
	}
	switch {
	case rel > tol:
		return rel, DeltaRegression
	case rel < -tol:
		return rel, DeltaImprovement
	default:
		return rel, DeltaEqual
	}
}

// Diff joins two reports' cells by key and classifies every metric delta
// under the options' tolerances. The result is deterministic: cells are
// visited in the old report's order, added cells sorted by key.
func Diff(oldRep, newRep *Report, opt DiffOptions) *DiffResult {
	d := &DiffResult{OldName: oldRep.Grid.Name, NewName: newRep.Grid.Name}
	newCells := make(map[string]CellSummary, len(newRep.Cells))
	for _, c := range newRep.Cells {
		newCells[c.Key()] = c
	}
	seen := make(map[string]bool, len(oldRep.Cells))
	for _, oc := range oldRep.Cells {
		key := oc.Key()
		seen[key] = true
		nc, ok := newCells[key]
		if !ok {
			d.MissingCells = append(d.MissingCells, key)
			d.Regressions++
			continue
		}
		for _, m := range diffMetrics {
			rel, status := compareMetric(m.get(oc), m.get(nc), opt.tol(m))
			d.Deltas = append(d.Deltas, MetricDelta{
				Cell:   key,
				Metric: m.name,
				Old:    m.get(oc),
				New:    m.get(nc),
				Rel:    rel,
				Status: status,
			})
			switch status {
			case DeltaRegression:
				d.Regressions++
			case DeltaImprovement:
				d.Improvements++
			default:
				d.Unchanged++
			}
		}
	}
	for _, c := range newRep.Cells {
		if !seen[c.Key()] {
			d.AddedCells = append(d.AddedCells, c.Key())
		}
	}
	sort.Strings(d.AddedCells)
	return d
}

// Markdown renders the diff as a GitHub-flavored markdown report: a
// verdict line, the changed cells as a delta table (unchanged metrics are
// summarized, not listed), and any missing/added cells. The output is
// deterministic, so it can be committed or posted by CI verbatim.
func (d *DiffResult) Markdown() string {
	var sb strings.Builder
	verdict := "✅ no regressions"
	if d.HasRegressions() {
		verdict = fmt.Sprintf("❌ %d regression(s)", d.Regressions)
	}
	fmt.Fprintf(&sb, "## Sweep diff: `%s` → `%s`\n\n", d.OldName, d.NewName)
	fmt.Fprintf(&sb, "%s — %d metric(s) compared, %d unchanged, %d improved, %d missing cell(s), %d added cell(s)\n",
		verdict, len(d.Deltas), d.Unchanged, d.Improvements, len(d.MissingCells), len(d.AddedCells))
	var changed []MetricDelta
	for _, md := range d.Deltas {
		if md.Status != DeltaEqual {
			changed = append(changed, md)
		}
	}
	if len(changed) > 0 {
		sb.WriteString("\n| cell | metric | old | new | Δ | status |\n")
		sb.WriteString("|---|---|---:|---:|---:|---|\n")
		for _, md := range changed {
			fmt.Fprintf(&sb, "| %s | %s | %.6g | %.6g | %+.2f%% | %s |\n",
				md.Cell, md.Metric, md.Old, md.New, 100*md.Rel, md.Status)
		}
	}
	if len(d.MissingCells) > 0 {
		sb.WriteString("\nCells missing from the new report:\n")
		for _, k := range d.MissingCells {
			fmt.Fprintf(&sb, "- ❌ `%s`\n", k)
		}
	}
	if len(d.AddedCells) > 0 {
		sb.WriteString("\nCells only in the new report:\n")
		for _, k := range d.AddedCells {
			fmt.Fprintf(&sb, "- ➕ `%s`\n", k)
		}
	}
	return sb.String()
}

// LoadReport reads a JSON sweep artifact (as written by toposweep -out or
// Report.JSON) back into a Report for diffing.
func LoadReport(data []byte, name string) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("sweep: parsing report %s: %w", name, err)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("sweep: report %s has no cells — not a sweep artifact?", name)
	}
	if rep.Grid.Name == "" {
		rep.Grid.Name = name
	}
	return &rep, nil
}
