package sweep

import (
	"fmt"

	"gputopo/internal/profile"
	"gputopo/internal/schedcore/domains"
	"gputopo/internal/topology"
)

// domainKinds labels each machine of the spec with its kind, in machine
// order, for the kind partition strategy. Homogeneous sources (builder,
// matrix) return nil — one kind, one domain.
func (ts TopologySpec) domainKinds(machines int) []string {
	if len(ts.Mix) == 0 {
		return nil
	}
	kinds := make([]string, 0, machines)
	for _, e := range ts.Mix {
		for i := 0; i < e.Count; i++ {
			kinds = append(kinds, e.Kind)
		}
	}
	return kinds
}

// PartitionDomains splits the spec into its scheduling domains: the
// parsed domain spec, one TopologySpec per non-empty domain, and the
// global machine indices each domain owns (ascending). Partitioning is
// spec-level on purpose — a hash split of minsky:8 into 4 domains yields
// four identical "minsky:2" specs, so the substrate cache builds that
// topology once and every domain shares the immutable result. Weight
// overrides and the spec-file directory carry through unchanged.
func (ts TopologySpec) PartitionDomains(machines int) (domains.Spec, []TopologySpec, [][]int, error) {
	sp, err := domains.Parse(ts.Domains)
	if err != nil {
		return domains.Spec{}, nil, nil, err
	}
	machines = ts.EffectiveMachines(machines)
	kinds := ts.domainKinds(machines)
	groups, err := sp.Partition(machines, kinds)
	if err != nil {
		return domains.Spec{}, nil, nil, err
	}
	subs := make([]TopologySpec, len(groups))
	for d, group := range groups {
		sub := TopologySpec{Weights: ts.Weights, specDir: ts.specDir}
		switch {
		case len(ts.Mix) > 0:
			// Recompress the group's kind sequence into runs: hash-splitting
			// mix[minsky:2+dgx1:2] across two domains gives each domain
			// mix[minsky:1+dgx1:1].
			for _, m := range group {
				k := kinds[m]
				if n := len(sub.Mix); n > 0 && sub.Mix[n-1].Kind == k {
					sub.Mix[n-1].Count++
				} else {
					sub.Mix = append(sub.Mix, MixEntry{Kind: k, Count: 1})
				}
			}
		case ts.MatrixFile != "":
			sub.MatrixFile = ts.MatrixFile
			sub.Machines = len(group)
		default:
			sub.Builder = ts.Builder
			sub.Machines = len(group)
		}
		subs[d] = sub
	}
	return sp, subs, groups, nil
}

// shardSubstrate pairs a domain's cached substrate with the global
// machine indices it schedules.
type shardSubstrate struct {
	topo     *topology.Topology
	profiles *profile.Store
	machines []int
}

// shardSubstrates resolves every domain's substrate through the cache
// and pairs it with its global machine indices, ready for the sharded
// simulator.
func (c *substrateCache) shardSubstrates(ts TopologySpec, machines int) ([]shardSubstrate, error) {
	_, subs, groups, err := ts.PartitionDomains(machines)
	if err != nil {
		return nil, err
	}
	shards := make([]shardSubstrate, len(subs))
	for d, sub := range subs {
		topo, profiles, err := c.substrate(sub, len(groups[d]), false)
		if err != nil {
			return nil, fmt.Errorf("domain %d (%s): %w", d, sub.Key(), err)
		}
		shards[d] = shardSubstrate{topo: topo, profiles: profiles, machines: groups[d]}
	}
	return shards, nil
}
