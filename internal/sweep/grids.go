package sweep

import (
	"fmt"
	"sort"

	"gputopo/internal/sched"
	"gputopo/internal/topology"
)

// namedGrids is the registry of predefined sweeps the toposweep CLI (and
// CI) can run by name. Each entry is a function of the base seed so the
// whole sweep reseeds coherently from one flag.
var namedGrids = map[string]struct {
	desc  string
	build func(seed uint64) Grid
}{
	"smoke": {
		desc: "CI smoke: 4 policies × {2,5} machines × {40,100} jobs × 2 replicas (32 points, sub-minute)",
		build: func(seed uint64) Grid {
			return Grid{
				Name:           "smoke",
				Topologies:     []TopologySpec{{Builder: "minsky"}},
				Machines:       []int{2, 5},
				Jobs:           []int{40, 100},
				Replicas:       2,
				BaseSeed:       seed,
				RatePerMachine: 2,
			}
		},
	},
	"default": {
		desc: "policy × cluster-size × load sweep: 4 policies × {2,5,10} machines × {50,100,200} jobs × 3 replicas (108 points)",
		build: func(seed uint64) Grid {
			return Grid{
				Name:           "default",
				Topologies:     []TopologySpec{{Builder: "minsky"}},
				Machines:       []int{2, 5, 10},
				Jobs:           []int{50, 100, 200},
				Replicas:       3,
				BaseSeed:       seed,
				RatePerMachine: 2,
			}
		},
	},
	"scenario1": {
		desc: "§5.5 scenario 1 at paper scale with replicas: 4 policies × 5 machines × 100 jobs × 5 replicas",
		build: func(seed uint64) Grid {
			return Grid{
				Name:           "scenario1",
				Topologies:     []TopologySpec{{Builder: "minsky"}},
				Machines:       []int{5},
				Jobs:           []int{100},
				Replicas:       5,
				BaseSeed:       seed,
				RatePerMachine: 2,
			}
		},
	},
	"scenario2": {
		desc: "§5.5 scenario 2 at paper scale: 4 policies × 1000 machines × 10000 jobs (slow)",
		build: func(seed uint64) Grid {
			return Grid{
				Name:           "scenario2",
				Topologies:     []TopologySpec{{Builder: "minsky"}},
				Machines:       []int{1000},
				Jobs:           []int{10000},
				BaseSeed:       seed,
				RatePerMachine: 2,
			}
		},
	},
	"alpha": {
		desc: "αcc utility-weight ablation under TOPO-AWARE-P, 3 replicas",
		build: func(seed uint64) Grid {
			return Grid{
				Name:       "alpha",
				Policies:   []sched.Policy{sched.TopoAwareP},
				Topologies: []TopologySpec{{Builder: "minsky"}},
				Machines:   []int{5},
				Jobs:       []int{100},
				AlphasCC:   []float64{0, 0.2, 1.0 / 3, 0.5, 0.8, 1},
				Replicas:   3,
				BaseSeed:   seed,
			}
		},
	},
	"threshold": {
		desc: "TOPO-AWARE-P postponement-threshold ablation, 3 replicas",
		build: func(seed uint64) Grid {
			return Grid{
				Name:       "threshold",
				Policies:   []sched.Policy{sched.TopoAwareP},
				Topologies: []TopologySpec{{Builder: "minsky"}},
				Machines:   []int{5},
				Jobs:       []int{100},
				Thresholds: []float64{0, 0.3, 0.5, 0.7, 0.9},
				Replicas:   3,
				BaseSeed:   seed,
			}
		},
	},
	"table1": {
		desc: "Table 1 six-job prototype scenario across all 4 policies (simulator engine)",
		build: func(seed uint64) Grid {
			return Grid{
				Name:       "table1",
				Source:     SourceTable1,
				Topologies: []TopologySpec{{Builder: "minsky"}},
				BaseSeed:   seed,
			}
		},
	},
	"topology": {
		desc: "topology ablation: 4 policies × {4×Minsky, 2×DGX-1, 4×PCIe} (16 GPUs each) × 3 replicas",
		build: func(seed uint64) Grid {
			return Grid{
				Name: "topology",
				// Equal GPU capacity per variant (16 GPUs) so the axis
				// isolates interconnect structure, not cluster size. The
				// cluster-wide default arrival rate (λ = 10 jobs/min)
				// keeps the offered load identical across variants too.
				Topologies: []TopologySpec{
					{Builder: "minsky", Machines: 4},
					{Builder: "dgx1", Machines: 2},
					{Builder: "pcie", Machines: 4},
				},
				Jobs:     []int{80},
				Replicas: 3,
				BaseSeed: seed,
			}
		},
	},
	"hetero": {
		desc: "heterogeneous clusters: 4 policies × {minsky:2+dgx1:1, dgx1:1+pcie:2, minsky:1+dgx1:1+pcie:1} (16 GPUs each) × 2 replicas (24 points)",
		build: func(seed uint64) Grid {
			return Grid{
				Name: "hetero",
				// Equal GPU capacity per mix (16 GPUs) so the axis
				// isolates machine heterogeneity, not cluster size —
				// mixed-generation fleets are the datacenter norm, and
				// they exercise the allocator's per-shape extremal
				// search (alloc.go) that homogeneous clusters mask.
				Topologies: []TopologySpec{
					{Mix: []MixEntry{{Kind: "minsky", Count: 2}, {Kind: "dgx1", Count: 1}}},
					{Mix: []MixEntry{{Kind: "dgx1", Count: 1}, {Kind: "pcie", Count: 2}}},
					{Mix: []MixEntry{{Kind: "minsky", Count: 1}, {Kind: "dgx1", Count: 1}, {Kind: "pcie", Count: 1}}},
				},
				Jobs:     []int{60},
				Replicas: 2,
				BaseSeed: seed,
			}
		},
	},
	"priority": {
		desc: "queue-discipline ablation: TOPO-AWARE-P × {fifo, priority, priority-preempt} on minsky:2, 60 jobs (20% priority-1) × 3 replicas (9 points)",
		build: func(seed uint64) Grid {
			return Grid{
				Name:     "priority",
				Policies: []sched.Policy{sched.TopoAwareP},
				// Two machines keep the cluster contended enough that the
				// disciplines actually diverge: priority jobs must overtake
				// (and, preemptively, evict) to win their wait-time edge on
				// both makespan and high_pri_wait_s.
				Topologies:    []TopologySpec{{Mix: []MixEntry{{Kind: "minsky", Count: 2}}}},
				Jobs:          []int{60},
				Disciplines:   []string{"fifo", "priority", "priority-preempt"},
				PriorityShare: 0.2,
				Replicas:      3,
				BaseSeed:      seed,
			}
		},
	},
	"sharded": {
		desc: "sharded multi-domain scheduling: TOPO-AWARE{,-P} × {minsky:8, minsky:2+dgx1:2} × domains {single-core, hash:4, block:4, kind} × 2 replicas (32 points)",
		build: func(seed uint64) Grid {
			return Grid{
				Name:     "sharded",
				Policies: []sched.Policy{sched.TopoAware, sched.TopoAwareP},
				// One homogeneous fleet (hash and block split it 4 ways;
				// kind degenerates to a single domain) and one mixed fleet
				// (kind gives one domain per machine generation), so the
				// golden pins every partition strategy including the
				// sub-spec recompression of heterogeneous runs.
				Topologies: []TopologySpec{
					{Builder: "minsky", Machines: 8},
					{Mix: []MixEntry{{Kind: "minsky", Count: 2}, {Kind: "dgx1", Count: 2}}},
				},
				Domains:        []string{"", "hash:4", "block:4", "kind"},
				Jobs:           []int{60},
				Replicas:       2,
				BaseSeed:       seed,
				RatePerMachine: 2,
			}
		},
	},
	"cachebench": {
		desc: "placement-cache speedup point: TOPO-AWARE × minsky:1000 × 2000 jobs × 3 replicas (scenario-2 scale; run twice with -place-cache on/off and compare elapsed)",
		build: func(seed uint64) Grid {
			return Grid{
				Name: "cachebench",
				// One policy, one big homogeneous point: 200 identical
				// minsky machines mean almost every single-node subproblem
				// the candidate sweep evaluates repeats across machines and
				// rounds, which is exactly the regime the canonical-shape
				// cache accelerates. Heterogeneous fleets split the key
				// space per machine shape and hit less — the hetero grid
				// already covers correctness there.
				Policies:       []sched.Policy{sched.TopoAware},
				Topologies:     []TopologySpec{{Builder: "minsky"}},
				Machines:       []int{1000},
				Jobs:           []int{2000},
				Replicas:       3,
				BaseSeed:       seed,
				RatePerMachine: 2,
			}
		},
	},
	"levelweights": {
		desc: "§4.1.2 level-weight ablation: Table 1 under TOPO-AWARE-P with socket weights {5,10,20,40,100}",
		build: func(seed uint64) Grid {
			specs := make([]TopologySpec, 0, 5)
			for _, w := range []float64{5, 10, 20, 40, 100} {
				specs = append(specs, TopologySpec{
					Builder: "minsky",
					Weights: &topology.LevelWeights{Socket: w},
				})
			}
			return Grid{
				Name:       "levelweights",
				Source:     SourceTable1,
				Policies:   []sched.Policy{sched.TopoAwareP},
				Topologies: specs,
				BaseSeed:   seed,
			}
		},
	},
}

// Named builds the predefined grid with the given name, reseeded from
// seed.
func Named(name string, seed uint64) (Grid, error) {
	entry, ok := namedGrids[name]
	if !ok {
		return Grid{}, fmt.Errorf("sweep: unknown grid %q (use one of %v)", name, GridNames())
	}
	return entry.build(seed), nil
}

// GridNames lists the registered grid names, sorted.
func GridNames() []string {
	names := make([]string, 0, len(namedGrids))
	for name := range namedGrids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GridDescription returns the one-line description of a registered grid
// ("" when unknown).
func GridDescription(name string) string {
	return namedGrids[name].desc
}
