package sweep

import "fmt"

// ParseDisciplineMode splits a disciplines-axis value into the schedcore
// queue-discipline name and the preemption switch. The axis deliberately
// folds preemption into the discipline name ("priority-preempt") instead
// of adding a second boolean axis: preemption without priority ordering
// is meaningless (only positive-priority jobs may preempt), so the
// combined name keeps impossible grid corners unrepresentable.
func ParseDisciplineMode(v string) (disc string, preempt bool, err error) {
	switch v {
	case "", "fifo":
		return v, false, nil
	case "priority":
		return "priority", false, nil
	case "priority-preempt":
		return "priority", true, nil
	}
	return "", false, fmt.Errorf("sweep: unknown discipline %q (want fifo, priority or priority-preempt)", v)
}
