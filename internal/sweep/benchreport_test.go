package sweep

import (
	"strings"
	"testing"
	"time"
)

const sampleGoBenchOutput = `goos: linux
goarch: amd64
pkg: gputopo
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig11Scenario2            	       1	610786475 ns/op	         0 topoP-SLO-violations	108440456 B/op	 2433719 allocs/op
BenchmarkOverheadDecisionTopoAware-8 	       1	   2781217 ns/op	  420224 B/op	   20074 allocs/op
BenchmarkSimulatorThroughput       	       2	   1154490 ns/op
PASS
ok  	gputopo	4.675s
`

func TestParseGoBenchOutput(t *testing.T) {
	got := ParseGoBenchOutput(sampleGoBenchOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	fig11 := got[0]
	if fig11.Name != "BenchmarkFig11Scenario2" || fig11.NsPerOp != 610786475 ||
		fig11.BytesPerOp != 108440456 || fig11.AllocsPerOp != 2433719 {
		t.Fatalf("Fig11 parsed as %+v", fig11)
	}
	// The -8 GOMAXPROCS suffix is stripped so names compare across runners.
	if got[1].Name != "BenchmarkOverheadDecisionTopoAware" {
		t.Fatalf("suffix not stripped: %q", got[1].Name)
	}
	// Without -benchmem only ns/op is present.
	if got[2].Name != "BenchmarkSimulatorThroughput" || got[2].NsPerOp != 1154490 || got[2].AllocsPerOp != 0 {
		t.Fatalf("benchmem-less line parsed as %+v", got[2])
	}
	if out := ParseGoBenchOutput("no benchmarks here\n"); len(out) != 0 {
		t.Fatalf("junk input parsed as %+v", out)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep, err := Run(Grid{
		Name:           "bench-rt",
		Machines:       []int{1},
		Jobs:           []int{5},
		BaseSeed:       7,
		RatePerMachine: 2,
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep.Elapsed = 250 * time.Millisecond
	rep.Workers = 2

	var br BenchReport
	br.AddGrid(NewGridBench(rep))
	br.Benchmarks = ParseGoBenchOutput(sampleGoBenchOutput)
	js, err := br.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchReport(js, "mem")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Grids) != 1 || back.Grids[0].Grid != "bench-rt" {
		t.Fatalf("round trip lost grids: %+v", back.Grids)
	}
	gb := back.Grids[0]
	if gb.Points != len(rep.Points) || gb.ElapsedSec != 0.25 {
		t.Fatalf("grid bench %+v", gb)
	}
	if gb.JobsPerSec != float64(gb.JobsSimulated)/0.25 {
		t.Fatalf("jobs/sec = %g, want %g", gb.JobsPerSec, float64(gb.JobsSimulated)/0.25)
	}
	if len(back.Benchmarks) != 3 {
		t.Fatalf("round trip lost benchmarks: %+v", back.Benchmarks)
	}
	if _, err := LoadBenchReport([]byte(`{"schema":"other/9"}`), "mem"); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestDiffBenchThresholds(t *testing.T) {
	old := &BenchReport{
		Grids: []GridBench{{Grid: "smoke", Points: 32, JobsSimulated: 1000, ElapsedSec: 10, PointsPerSec: 3.2, JobsPerSec: 100}},
		Benchmarks: []GoBench{
			{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 10},
		},
	}
	within := &BenchReport{
		Grids: []GridBench{{Grid: "smoke", Points: 32, JobsSimulated: 1000, ElapsedSec: 11, PointsPerSec: 2.9, JobsPerSec: 91}},
		Benchmarks: []GoBench{
			{Name: "BenchmarkA", NsPerOp: 1100, BytesPerOp: 510, AllocsPerOp: 10},
		},
	}
	res := DiffBench(old, within, BenchDiffOptions{RelTol: 0.25})
	if res.HasRegressions() {
		t.Fatalf("noise within 25%% flagged as regression:\n%s", res.Markdown())
	}

	// A 2x slowdown must trip the gate even under the generous tolerance.
	slower := &BenchReport{
		Grids: []GridBench{{Grid: "smoke", Points: 32, JobsSimulated: 1000, ElapsedSec: 20, PointsPerSec: 1.6, JobsPerSec: 50}},
		Benchmarks: []GoBench{
			{Name: "BenchmarkA", NsPerOp: 2000, BytesPerOp: 500, AllocsPerOp: 10},
		},
	}
	res = DiffBench(old, slower, BenchDiffOptions{RelTol: 0.25})
	if !res.HasRegressions() {
		t.Fatalf("2x slowdown passed the gate:\n%s", res.Markdown())
	}
	// Higher-is-better metrics regress when they drop.
	foundRate := false
	for _, d := range res.Deltas {
		if d.Metric == "jobs_per_sec" && d.Status == DeltaRegression {
			foundRate = true
			if d.Rel >= 0 {
				t.Fatalf("jobs_per_sec drop reported with rel %+.2f", d.Rel)
			}
		}
	}
	if !foundRate {
		t.Fatalf("jobs_per_sec drop not flagged:\n%s", res.Markdown())
	}

	// A throughput collapse must trip the gate even under tolerances >= 1:
	// the relative drop of a rate is bounded by 100%, so the differ
	// compares per-unit costs (reciprocals), which grow without bound.
	collapsed := &BenchReport{
		Grids:      []GridBench{{Grid: "smoke", Points: 32, JobsSimulated: 1000, ElapsedSec: 10, PointsPerSec: 0.1, JobsPerSec: 3}},
		Benchmarks: old.Benchmarks,
	}
	res = DiffBench(old, collapsed, BenchDiffOptions{RelTol: 5})
	if !res.HasRegressions() {
		t.Fatalf("throughput collapse passed a tol>=1 gate:\n%s", res.Markdown())
	}

	// Per-metric override: allocs/op gates exactly while wall-clock is loose.
	moreAllocs := &BenchReport{
		Grids: old.Grids,
		Benchmarks: []GoBench{
			{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 12},
		},
	}
	res = DiffBench(old, moreAllocs, BenchDiffOptions{RelTol: 5, PerMetric: map[string]float64{"allocs_per_op": 0.05}})
	if !res.HasRegressions() {
		t.Fatalf("allocs/op growth passed the tight per-metric gate:\n%s", res.Markdown())
	}

	// Improvements are classified as such beyond the threshold, not
	// regressions — the differ is direction-aware.
	faster := &BenchReport{
		Grids: []GridBench{{Grid: "smoke", Points: 32, JobsSimulated: 1000, ElapsedSec: 5, PointsPerSec: 6.4, JobsPerSec: 200}},
		Benchmarks: []GoBench{
			{Name: "BenchmarkA", NsPerOp: 400, BytesPerOp: 200, AllocsPerOp: 4},
		},
	}
	res = DiffBench(old, faster, BenchDiffOptions{RelTol: 0.25})
	if res.HasRegressions() || res.Improvements == 0 {
		t.Fatalf("speedup misclassified (%d regressions, %d improvements):\n%s",
			res.Regressions, res.Improvements, res.Markdown())
	}

	// Lost coverage is a regression; new entries are informational.
	missing := &BenchReport{Grids: old.Grids}
	res = DiffBench(old, missing, BenchDiffOptions{RelTol: 0.25})
	if !res.HasRegressions() || len(res.MissingCells) != 1 {
		t.Fatalf("missing benchmark not flagged: %+v", res)
	}
	added := &BenchReport{
		Grids: old.Grids,
		Benchmarks: append([]GoBench{{Name: "BenchmarkB", NsPerOp: 5}},
			old.Benchmarks...),
	}
	res = DiffBench(old, added, BenchDiffOptions{RelTol: 0.25})
	if res.HasRegressions() || len(res.AddedCells) != 1 {
		t.Fatalf("added benchmark misreported: %+v", res)
	}
	if !strings.Contains(res.Markdown(), "go:BenchmarkB") {
		t.Fatalf("markdown missing added entry:\n%s", res.Markdown())
	}
}

// TestDiffBenchServing pins the serving section's gate semantics: jobs
// and errors are deterministic and survive -wallclock-off (errors
// growing from zero is an infinite relative change — a regression at
// ANY tolerance), while latencies, rates and the timing-dependent
// counts gate only in timed mode.
func TestDiffBenchServing(t *testing.T) {
	old := &BenchReport{Serving: []ServeBench{{
		Name: "serve/minsky:2/topo-p", Jobs: 200, Errors: 0, Placed: 80, Retries429: 5,
		Decisions: 900, ElapsedSec: 2, JobsPerSec: 100, DecisionsPerSec: 450,
		LatencyP50Ms: 1.5, LatencyP95Ms: 4, LatencyP99Ms: 9,
	}}}
	same := &BenchReport{Serving: []ServeBench{{
		Name: "serve/minsky:2/topo-p", Jobs: 200, Errors: 0, Placed: 75, Retries429: 9,
		Decisions: 850, ElapsedSec: 3, JobsPerSec: 66, DecisionsPerSec: 280,
		LatencyP50Ms: 2.5, LatencyP95Ms: 7, LatencyP99Ms: 16,
	}}}
	// Wallclock-off: noisy timing differences are not compared at all.
	d := DiffBench(old, same, BenchDiffOptions{RelTol: 0.25, WallClockOff: true})
	if d.HasRegressions() {
		t.Fatalf("timing noise gated under wallclock-off:\n%s", d.Markdown())
	}
	for _, md := range d.Deltas {
		if wallClockMetric(md.Metric) {
			t.Fatalf("wall-clock serve metric %s compared in wallclock-off mode", md.Metric)
		}
	}

	// A single error appearing regresses at any tolerance, even with the
	// wall-clock gate off: 0 -> 1 is an infinite relative change.
	erring := &BenchReport{Serving: []ServeBench{func() ServeBench {
		s := old.Serving[0]
		s.Errors = 1
		return s
	}()}}
	if d := DiffBench(old, erring, BenchDiffOptions{RelTol: 1000, WallClockOff: true}); !d.HasRegressions() {
		t.Fatal("serving errors growth passed the gate")
	}
	// Lost traffic coverage (jobs collapse) also gates deterministically.
	fewer := &BenchReport{Serving: []ServeBench{func() ServeBench {
		s := old.Serving[0]
		s.Jobs = 10
		return s
	}()}}
	if d := DiffBench(old, fewer, BenchDiffOptions{RelTol: 0.5, WallClockOff: true}); !d.HasRegressions() {
		t.Fatal("jobs collapse passed the gate")
	}
	// In timed mode a latency blowup gates.
	slower := &BenchReport{Serving: []ServeBench{func() ServeBench {
		s := old.Serving[0]
		s.LatencyP95Ms = 40
		return s
	}()}}
	if d := DiffBench(old, slower, BenchDiffOptions{RelTol: 0.5}); !d.HasRegressions() {
		t.Fatal("latency blowup passed the timed gate")
	}
	// A vanished serving entry is lost coverage.
	if d := DiffBench(old, &BenchReport{}, BenchDiffOptions{RelTol: 0.5, WallClockOff: true}); !d.HasRegressions() || len(d.MissingCells) != 1 {
		t.Fatalf("missing serving entry not flagged: %+v", d)
	}
	// Round trip through the artifact keeps the section.
	js, err := old.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchReport(js, "mem")
	if err != nil || len(back.Serving) != 1 || back.Serving[0].Jobs != 200 {
		t.Fatalf("serving round trip: %+v %v", back, err)
	}
}

// TestDiffBenchWallClockOff pins the noisy-runner CI mode: with
// WallClockOff every time-derived metric is skipped entirely — a 100x
// wall-clock collapse passes — while allocation regressions still gate.
func TestDiffBenchWallClockOff(t *testing.T) {
	old := &BenchReport{
		Grids:      []GridBench{{Grid: "smoke", Points: 32, ElapsedSec: 1, PointsPerSec: 32, JobsPerSec: 1000}},
		Benchmarks: []GoBench{{Name: "BenchmarkX", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2}},
	}
	slow := &BenchReport{
		Grids:      []GridBench{{Grid: "smoke", Points: 32, ElapsedSec: 100, PointsPerSec: 0.32, JobsPerSec: 10}},
		Benchmarks: []GoBench{{Name: "BenchmarkX", NsPerOp: 10000, BytesPerOp: 64, AllocsPerOp: 2}},
	}
	// Default mode: the collapse is a regression even at huge tolerance.
	if d := DiffBench(old, slow, BenchDiffOptions{RelTol: 5}); !d.HasRegressions() {
		t.Fatal("wall-clock collapse passed the default gate")
	}
	// WallClockOff: time metrics are not even compared.
	d := DiffBench(old, slow, BenchDiffOptions{RelTol: 0.5, WallClockOff: true})
	if d.HasRegressions() {
		t.Fatalf("wallclock-off still gated a time metric: %+v", d.Deltas)
	}
	for _, md := range d.Deltas {
		if wallClockMetric(md.Metric) {
			t.Fatalf("wall-clock metric %s compared in wallclock-off mode", md.Metric)
		}
	}
	// Allocation regressions still fail.
	leaky := &BenchReport{
		Grids:      old.Grids,
		Benchmarks: []GoBench{{Name: "BenchmarkX", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 4}},
	}
	if d := DiffBench(old, leaky, BenchDiffOptions{RelTol: 0.5, WallClockOff: true}); !d.HasRegressions() {
		t.Fatal("allocs/op regression passed the wallclock-off gate")
	}
}
